module incranneal

go 1.22
