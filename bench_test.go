package incranneal

// bench_test.go drives every figure of the paper's evaluation through the
// experiment harness at smoke scale, so `go test -bench=.` regenerates a
// miniature of each plot in minutes. Full-scale runs (including the
// paper's exact dimensions) go through cmd/mqobench with -scale reduced or
// -scale paper. Micro-benchmarks of the hot code paths follow.

import (
	"context"
	"testing"

	"incranneal/internal/bench"
	"incranneal/internal/da"
	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/partition"
	"incranneal/internal/qubo"
	"incranneal/internal/sa"
	"incranneal/internal/solver"
	"incranneal/internal/workload"
)

// benchFigure runs one figure driver per benchmark iteration and reports
// the resulting table once.
func benchFigure(b *testing.B, run func(ctx context.Context, cfg bench.Config, scale bench.Scale) (*bench.Report, error)) {
	b.Helper()
	scale := bench.SmokeScale()
	cfg := bench.ConfigFor(scale)
	ctx := context.Background()
	var report *bench.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := run(ctx, cfg, scale)
		if err != nil {
			b.Fatal(err)
		}
		report = r
	}
	b.StopTimer()
	if report != nil && testing.Verbose() {
		b.Log("\n" + report.String())
	}
}

// BenchmarkFig1QubitRequirements regenerates the qubit-capacity figure
// (pure arithmetic — the baseline the partitioning method removes).
func BenchmarkFig1QubitRequirements(b *testing.B) {
	benchFigure(b, func(ctx context.Context, cfg bench.Config, scale bench.Scale) (*bench.Report, error) {
		return bench.Fig1(scale), nil
	})
}

// BenchmarkFig3Scalability regenerates the queries × PPQ sweep with all
// eight approaches.
func BenchmarkFig3Scalability(b *testing.B) { benchFigure(b, bench.Fig3) }

// BenchmarkFig4Communities regenerates the community-structure comparison
// of the DA processing strategies.
func BenchmarkFig4Communities(b *testing.B) { benchFigure(b, bench.Fig4) }

// BenchmarkFig5Densities regenerates the density-interval comparison of DA
// default vs. incremental processing.
func BenchmarkFig5Densities(b *testing.B) { benchFigure(b, bench.Fig5) }

// BenchmarkFig6QOBenchmarks regenerates the TPC-H/LDBC/JOB scenarios.
func BenchmarkFig6QOBenchmarks(b *testing.B) { benchFigure(b, bench.Fig6) }

// BenchmarkFig7Runtimes regenerates the optimisation-time comparison.
func BenchmarkFig7Runtimes(b *testing.B) { benchFigure(b, bench.Fig7) }

// BenchmarkAblationDSS regenerates the DSS on/off ablation.
func BenchmarkAblationDSS(b *testing.B) { benchFigure(b, bench.AblationDSS) }

// BenchmarkAblationPostProcess regenerates the Algorithm 1 on/off ablation.
func BenchmarkAblationPostProcess(b *testing.B) { benchFigure(b, bench.AblationPostProcess) }

// BenchmarkAblationLagrange regenerates the ω_A sweep around the
// Theorem 4.5 bound.
func BenchmarkAblationLagrange(b *testing.B) { benchFigure(b, bench.AblationLagrange) }

// BenchmarkAblationDynamicOffset covers the DA enhancement ablations
// (dynamic offset and parallel trial vs. single flip).
func BenchmarkAblationDynamicOffset(b *testing.B) { benchFigure(b, bench.AblationDigitalAnnealer) }

// --- micro-benchmarks of hot paths ---

func benchInstance(b *testing.B, queries, ppq int) *mqo.Problem {
	b.Helper()
	in, err := workload.GenerateSweep(workload.SweepConfig{
		Queries: queries, PPQ: ppq, Communities: 4,
		DensityLow: 0.05, DensityHigh: 0.6, Seed: 99,
	})
	if err != nil {
		b.Fatal(err)
	}
	return in.Problem
}

// BenchmarkEncodeMQO measures building the Trummer–Koch QUBO.
func BenchmarkEncodeMQO(b *testing.B) {
	p := benchInstance(b, 64, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encoding.EncodeMQO(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQUBOFlip measures the O(degree) incremental state update.
func BenchmarkQUBOFlip(b *testing.B) {
	p := benchInstance(b, 64, 6)
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		b.Fatal(err)
	}
	st := qubo.NewState(enc.Model)
	n := enc.Model.NumVariables()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Flip(i % n)
	}
}

// BenchmarkQUBOEnergy measures full energy evaluation (the slow path the
// incremental state avoids).
func BenchmarkQUBOEnergy(b *testing.B) {
	p := benchInstance(b, 64, 6)
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]int8, enc.Model.NumVariables())
	for i := range x {
		x[i] = int8(i % 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enc.Model.Energy(x)
	}
}

// BenchmarkDASolve measures one Digital Annealer run on an encoded
// partition-sized problem.
func BenchmarkDASolve(b *testing.B) {
	p := benchInstance(b, 32, 4)
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		b.Fatal(err)
	}
	dev := &da.Solver{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Solve(context.Background(), solver.Request{Model: enc.Model, Runs: 1, Sweeps: 2000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSASolve measures one classical SA run on the same problem.
func BenchmarkSASolve(b *testing.B) {
	p := benchInstance(b, 32, 4)
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		b.Fatal(err)
	}
	dev := &sa.Solver{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Solve(context.Background(), solver.Request{Model: enc.Model, Runs: 1, Sweeps: 200, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartition measures the full annealer-backed recursive
// partitioning of a 96-query instance down to 64-variable devices.
func BenchmarkPartition(b *testing.B) {
	p := benchInstance(b, 96, 4)
	dev := &sa.Solver{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Partition(context.Background(), p, partition.Options{
			Capacity: 64, Solver: dev, Runs: 2, Sweeps: 200, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndIncremental measures the complete pipeline (partition +
// DSS + solve) on a medium instance.
func BenchmarkEndToEndIncremental(b *testing.B) {
	p := benchInstance(b, 48, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(context.Background(), p, Options{
			Capacity: 64, Runs: 2, TotalSweeps: 6000, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateSweep measures the instance generator.
func BenchmarkGenerateSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.GenerateSweep(workload.SweepConfig{
			Queries: 128, PPQ: 6, Communities: 4,
			DensityLow: 0.05, DensityHigh: 0.6, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceShootout regenerates the device comparison (paper
// contribution 3, extended with the VA and the DA's tempering mode).
func BenchmarkDeviceShootout(b *testing.B) { benchFigure(b, bench.DeviceShootout) }

// BenchmarkAblationBudget regenerates the quality-vs-budget sweep.
func BenchmarkAblationBudget(b *testing.B) { benchFigure(b, bench.AblationBudget) }
