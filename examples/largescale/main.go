// Large scale: a 1,000-query MQO batch — the paper's headline problem size,
// intractable for the original unpartitioned quantum encoding (Fig. 1 shows
// it exceeds every QPU's capacity by orders of magnitude) — processed end
// to end by the incremental pipeline on the emulated capacity-limited
// Digital Annealer.
//
// Run with: go run ./examples/largescale
// Flags shrink or grow the instance, e.g. -queries 250 -ppq 8.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"incranneal"
)

func main() {
	var (
		queries  = flag.Int("queries", 1000, "number of queries")
		ppq      = flag.Int("ppq", 4, "plans per query")
		capacity = flag.Int("capacity", 512, "emulated device variable capacity")
	)
	flag.Parse()

	genStart := time.Now()
	p, err := incranneal.GenerateSweep(incranneal.SweepConfig{
		Queries: *queries, PPQ: *ppq,
		Communities: 4,
		DensityLow:  0.05, DensityHigh: 0.4,
		Seed: 2025,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d queries × %d plans (%d QUBO variables, %d savings) in %v\n",
		p.NumQueries(), *ppq, p.NumPlans(), p.NumSavings(), time.Since(genStart).Round(time.Millisecond))
	fmt.Printf("solution space: 10^%.0f candidate plan selections\n", p.SolutionSpaceSize())
	fmt.Printf("device capacity: %d variables → partitioning required\n\n", *capacity)

	_, greedyCost := incranneal.Greedy(p)

	start := time.Now()
	out, err := incranneal.Solve(context.Background(), p, incranneal.Options{
		Capacity:    *capacity,
		Runs:        8,
		TotalSweeps: 60000,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental DA solved in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  partitions:         %d\n", out.NumPartitions)
	fmt.Printf("  discarded savings:  %.1f (crossing partition boundaries)\n", out.DiscardedSavings)
	fmt.Printf("  re-applied via DSS: %.1f\n", out.ReappliedSavings)
	fmt.Printf("  solution cost:      %.1f\n", out.Cost)
	fmt.Printf("  greedy baseline:    %.1f (%.1f%% worse)\n",
		greedyCost, 100*(greedyCost-out.Cost)/out.Cost)
}
