// Serving: the MQO pipeline as a long-running shared service. A client
// submits a batch of query-optimisation problems to an mqoserve daemon over
// HTTP, consumes each solve's incumbent stream (one NDJSON event per merged
// partial problem) while the annealer is still working, and prints the
// final plan selection.
//
// Run with: go run ./examples/serving
//
// With no flags the example starts an in-process server on a loopback
// listener — the full mqoserve stack: admission queue, solver fleet,
// streaming sessions — so it is self-contained. Point -addr at a real
// daemon (`mqoserve -addr :8080`, then -addr localhost:8080) to drive that
// instead.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"incranneal"
	"incranneal/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "", "mqoserve address (host:port); empty starts an in-process server")
		batch   = flag.Int("batch", 3, "problems in the submitted batch")
		queries = flag.Int("queries", 48, "queries per problem")
		ppq     = flag.Int("ppq", 3, "plans per query")
	)
	flag.Parse()

	target := *addr
	if target == "" {
		// Self-contained mode: the whole serving stack in-process, solves
		// partitioned on an emulated 40-variable device so the incumbent
		// stream has several merge points to show.
		srv, err := serve.New(serve.Config{Fleet: 2, Capacity: 40})
		if err != nil {
			log.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(l) //nolint:errcheck // ErrServerClosed after Shutdown
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck
		}()
		target = l.Addr().String()
		fmt.Printf("started in-process mqoserve on %s (fleet 2, capacity 40)\n", target)
	}
	url := "http://" + target + "/v1/solve?stream=1"

	fmt.Printf("submitting a batch of %d problems (%d queries × %d plans each)\n\n", *batch, *queries, *ppq)
	var wg sync.WaitGroup
	for i := 0; i < *batch; i++ {
		p, err := incranneal.GenerateSweep(incranneal.SweepConfig{
			Queries: *queries, PPQ: *ppq, Communities: 4,
			DensityLow: 0.05, DensityHigh: 0.8,
			Seed: int64(1000 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		_, greedy := incranneal.Greedy(p)
		wg.Add(1)
		go func(i int, greedy float64) {
			defer wg.Done()
			if err := solveStreaming(url, i, p, greedy); err != nil {
				log.Fatalf("problem %d: %v", i, err)
			}
		}(i, greedy)
	}
	wg.Wait()
}

// solveStreaming submits one problem with streaming enabled and prints the
// incumbent trajectory as the server reports it.
func solveStreaming(url string, i int, p *incranneal.Problem, greedy float64) error {
	body, err := json.Marshal(map[string]any{
		"problem": p,
		"options": map[string]any{"runs": 4, "totalSweeps": 4000, "seed": int64(100 + i)},
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}

	// Each NDJSON line is one event: accepted, then incumbents, then the
	// outcome (or error). The incumbent cost covers the queries merged so
	// far, so it grows toward the final cost as coverage completes.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var e struct {
			Type          string  `json:"type"`
			ID            string  `json:"id"`
			Merged        int     `json:"merged"`
			Cost          float64 `json:"cost"`
			ElapsedMillis int64   `json:"elapsedMillis"`
			Error         string  `json:"error"`
			Outcome       *struct {
				Cost       float64 `json:"cost"`
				Selected   []int   `json:"selected"`
				Partitions int     `json:"partitions"`
				Strategy   string  `json:"strategy"`
			} `json:"outcome"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return fmt.Errorf("bad stream line %q: %w", sc.Text(), err)
		}
		switch e.Type {
		case "accepted":
			fmt.Printf("problem %d: accepted as %s\n", i, e.ID)
		case "incumbent":
			fmt.Printf("problem %d: incumbent after %d merged partitions: cost %.2f (t=%dms)\n",
				i, e.Merged, e.Cost, e.ElapsedMillis)
		case "outcome":
			fmt.Printf("problem %d: final cost %.2f over %d partitions (%s strategy) — greedy pays %.2f\n",
				i, e.Outcome.Cost, e.Outcome.Partitions, e.Outcome.Strategy, greedy)
			sel := e.Outcome.Selected
			n := 4
			if len(sel) < n {
				n = len(sel)
			}
			for q := 0; q < n; q++ {
				fmt.Printf("problem %d:   q%d -> plan %d\n", i, q, sel[q])
			}
			if len(sel) > n {
				fmt.Printf("problem %d:   ... %d more queries\n", i, len(sel)-n)
			}
		case "error":
			return fmt.Errorf("server: %s", e.Error)
		}
	}
	return sc.Err()
}
