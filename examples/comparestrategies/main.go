// Compare processing strategies on a community-structured MQO batch that
// exceeds the (emulated) device capacity, reproducing the paper's central
// comparison in miniature: the device's default decomposition, independent
// parallel processing of partitions, and the paper's incremental strategy
// with dynamic search steering (DSS).
//
// Run with: go run ./examples/comparestrategies
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"incranneal"
)

func main() {
	// 120 queries with 6 plans each = 720 QUBO variables, structured into
	// four communities of varying size with densities up to 100%; the
	// emulated device holds only 128 variables, so every strategy must
	// decompose.
	p, err := incranneal.GenerateSweep(incranneal.SweepConfig{
		Queries: 120, PPQ: 6,
		Communities: 4,
		DensityLow:  0.05, DensityHigh: 1.0,
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d queries, %d plans, %d savings\n\n",
		p.NumQueries(), p.NumPlans(), p.NumSavings())

	strategies := []struct {
		name string
		s    incranneal.Strategy
	}{
		{"DA (Default)    – vendor decomposition", incranneal.StrategyDefault},
		{"DA (Parallel)   – independent partitions", incranneal.StrategyParallel},
		{"DA (Incremental) – paper's method (DSS)", incranneal.StrategyIncremental},
	}
	best := 0.0
	results := make([]float64, len(strategies))
	for i, st := range strategies {
		start := time.Now()
		out, err := incranneal.Solve(context.Background(), p, incranneal.Options{
			Strategy: st.s,
			Capacity: 128,
			Runs:     8,
			Seed:     42,
		})
		if err != nil {
			log.Fatal(err)
		}
		results[i] = out.Cost
		if best == 0 || out.Cost < best {
			best = out.Cost
		}
		fmt.Printf("%-42s cost %10.1f   partitions %2d   reapplied %8.1f   %v\n",
			st.name, out.Cost, out.NumPartitions, out.ReappliedSavings,
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nnormalised costs (1.00 = best):")
	for i, st := range strategies {
		fmt.Printf("  %-42s %.3f\n", st.name, results[i]/best)
	}
}
