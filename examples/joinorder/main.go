// Join ordering: the paper's Sec. 7 sketches generalising its framework
// from MQO to join ordering — both have graph representations, so the same
// compress → partition-on-the-annealer → incrementally-steer recipe
// applies. This example orders a 40-relation join (far beyond exact DP)
// by bisecting the query graph along its least-selective predicates and
// ordering each partition optimally, steered by the global join prefix.
//
// Run with: go run ./examples/joinorder
package main

import (
	"context"
	"fmt"
	"log"

	"incranneal/internal/joinorder"
)

func main() {
	// Five predicate-dense relation groups with weak links between them —
	// the community structure the partitioning exploits.
	g, err := joinorder.GenerateCommunities(5, 8, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join query: %d relations, %d predicates\n",
		g.NumRelations(), len(g.Predicates()))
	fmt.Printf("exact DP would need 2^%d subset states — intractable\n\n", g.NumRelations())

	res, err := joinorder.Solve(context.Background(), g, joinorder.Options{
		Capacity: 10, Runs: 4, Sweeps: 500, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned incremental ordering:\n")
	fmt.Printf("  partitions:          %d (≤ 10 relations each, exact DP inside)\n", res.Partitions)
	fmt.Printf("  cut importance:      %.1f (−log₁₀ selectivity crossing partitions)\n", res.CutSelectivityWeight)
	fmt.Printf("  C_out cost:          %.3g\n\n", res.Cost)

	unsteered, err := joinorder.Solve(context.Background(), g, joinorder.Options{
		Capacity: 10, Runs: 4, Sweeps: 500, Seed: 7, DisableSteering: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	_, greedyCost := joinorder.GreedyOrder(g)
	fmt.Printf("comparison:\n")
	fmt.Printf("  steered (DSS-style): %.3g\n", res.Cost)
	fmt.Printf("  unsteered partitions: %.3g\n", unsteered.Cost)
	fmt.Printf("  greedy (GOO):        %.3g\n", greedyCost)
	fmt.Printf("\nfirst joins: %v ...\n", res.Order[:8])
}
