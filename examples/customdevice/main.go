// Custom device: the paper's contribution 4 is a framework decoupling MQO
// from hardware constraints — "device-independent and compatible with all
// existing and future quantum-inspired annealing systems". This example
// demonstrates that boundary by plugging a hand-written device (a small
// tabu-search QUBO solver with an artificial 64-variable capacity) into the
// unchanged partition + DSS pipeline via Options.CustomDevice.
//
// Run with: go run ./examples/customdevice
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"incranneal"
	"incranneal/internal/qubo"
	"incranneal/internal/solver"
)

// tabuSolver is a deliberately simple QUBO minimiser: steepest-descent
// with a tabu list, restarted a few times. It knows nothing about MQO —
// the pipeline feeds it partition-sized QUBOs and steers it through DSS
// like any annealer.
type tabuSolver struct {
	capacity int
	tenure   int
}

func (t *tabuSolver) Name() string  { return "tabu" }
func (t *tabuSolver) Capacity() int { return t.capacity }

func (t *tabuSolver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	if err := solver.CheckCapacity(t, req.Model); err != nil {
		return nil, err
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(req.Seed))
	m := req.Model
	n := m.NumVariables()
	runs := req.Runs
	if runs <= 0 {
		runs = 4
	}
	iters := req.Sweeps
	if iters <= 0 {
		iters = 50 * n
	}
	res := &solver.Result{}
	for run := 0; run < runs; run++ {
		st := qubo.NewRandomState(m, rng)
		best := st.Copy()
		tabuUntil := make([]int, n)
		for it := 0; it < iters; it++ {
			if solver.Interrupted(ctx) {
				break
			}
			// Best admissible single flip; tabu moves allowed only when
			// they improve on the incumbent (aspiration).
			bestV, bestDelta := -1, 0.0
			for v := 0; v < n; v++ {
				d := st.DeltaEnergy(v)
				if tabuUntil[v] > it && st.Energy()+d >= best.Energy() {
					continue
				}
				if bestV < 0 || d < bestDelta {
					bestV, bestDelta = v, d
				}
			}
			if bestV < 0 {
				break
			}
			st.Flip(bestV)
			tabuUntil[bestV] = it + t.tenure
			if st.Energy() < best.Energy() {
				best = st.Copy()
			}
		}
		res.Samples = append(res.Samples, solver.Sample{Assignment: best.Assignment(), Energy: best.Energy()})
		res.Sweeps += iters
	}
	res.SortSamples()
	res.Elapsed = time.Since(start)
	return res, nil
}

func main() {
	p, err := incranneal.GenerateSweep(incranneal.SweepConfig{
		Queries: 80, PPQ: 5, Communities: 4,
		DensityLow: 0.05, DensityHigh: 0.8,
		Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d queries, %d plans (device capacity 64 → partitioning required)\n",
		p.NumQueries(), p.NumPlans())

	dev := &tabuSolver{capacity: 64, tenure: 7}
	out, err := incranneal.Solve(context.Background(), p, incranneal.Options{
		CustomDevice: dev,
		Runs:         4,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	_, greedyCost := incranneal.Greedy(p)
	fmt.Printf("tabu device through the incremental pipeline:\n")
	fmt.Printf("  partitions: %d\n", out.NumPartitions)
	fmt.Printf("  reapplied:  %.1f savings via DSS\n", out.ReappliedSavings)
	fmt.Printf("  cost:       %.1f (greedy: %.1f)\n", out.Cost, greedyCost)
}
