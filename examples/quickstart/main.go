// Quickstart: define a small MQO batch by hand, solve it on the software
// Digital Annealer and compare against the naive greedy optimiser.
//
// The instance is the paper's running example (Fig. 2): four queries with
// two alternative plans each and ten cost-saving opportunities. Greedy
// per-query selection costs 34; exploiting shared intermediate results the
// optimal batch plan costs 25.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"incranneal"
)

func main() {
	// Plan costs per query: query q owns consecutive global plan indices,
	// so q1 has plans 0,1; q2 has 2,3; and so on.
	planCosts := [][]float64{
		{9, 10}, // q1
		{9, 10}, // q2
		{11, 9}, // q3
		{14, 9}, // q4
	}
	// Savings apply when both referenced plans are selected, e.g. plans 1
	// and 3 (the paper's p2 and p4) share an intermediate result worth 5.
	savings := []incranneal.Saving{
		{P1: 0, P2: 2, Value: 1}, {P1: 0, P2: 3, Value: 1},
		{P1: 1, P2: 2, Value: 1}, {P1: 1, P2: 3, Value: 5},
		{P1: 1, P2: 6, Value: 5}, {P1: 3, P2: 4, Value: 5},
		{P1: 4, P2: 6, Value: 5}, {P1: 4, P2: 7, Value: 1},
		{P1: 5, P2: 6, Value: 1}, {P1: 5, P2: 7, Value: 1},
	}
	p, err := incranneal.NewProblem(planCosts, savings)
	if err != nil {
		log.Fatal(err)
	}

	_, greedyCost := incranneal.Greedy(p)
	fmt.Printf("greedy per-query selection: %.0f\n", greedyCost)

	out, err := incranneal.Solve(context.Background(), p, incranneal.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MQO solution cost:          %.0f\n", out.Cost)
	for q, plan := range out.Solution.Selected {
		fmt.Printf("  query %d -> plan %d (cost %.0f)\n", q+1, plan, p.Cost(plan))
	}
	fmt.Printf("speed-up over greedy:       %.1f%%\n", 100*(greedyCost-out.Cost)/greedyCost)
}
