// TPC-H workload: extrapolate an MQO batch from TPC-H relation statistics
// (the paper's Sec. 5.3 procedure) and optimise it with the incremental
// annealing pipeline, contrasting against hill climbing — the strongest
// conventional heuristic of the evaluation.
//
// TPC-H-derived batches exhibit the paper's reported community structure:
// one large (~55%), one moderate (~28%) and one small (~17%) query
// community, which is exactly the non-uniform shape the targeted
// partitioning and DSS exploit.
//
// Run with: go run ./examples/tpch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"incranneal"
)

func main() {
	p, err := incranneal.GenerateBenchmark(incranneal.BenchmarkTPCH, 150, 5, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-H-derived batch: %d queries, %d plans, %d savings\n",
		p.NumQueries(), p.NumPlans(), p.NumSavings())

	_, greedyCost := incranneal.Greedy(p)
	fmt.Printf("greedy baseline: %.1f\n\n", greedyCost)

	ctx := context.Background()
	for _, run := range []struct {
		name string
		opt  incranneal.Options
	}{
		{"DA (Incremental)", incranneal.Options{Capacity: 160, Runs: 8, Seed: 3}},
		{"DA (Default)", incranneal.Options{Strategy: incranneal.StrategyDefault, Capacity: 160, Runs: 8, Seed: 3}},
		{"SA (Incremental)", incranneal.Options{Device: incranneal.DeviceSA, Capacity: 160, Runs: 8, Seed: 3}},
	} {
		start := time.Now()
		out, err := incranneal.Solve(ctx, p, run.opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s cost %10.1f  (%.1f%% below greedy, %d partitions, %v)\n",
			run.name, out.Cost, 100*(greedyCost-out.Cost)/greedyCost,
			out.NumPartitions, time.Since(start).Round(time.Millisecond))
	}
}
