package incranneal_test

import (
	"context"
	"fmt"

	"incranneal"
)

// ExampleSolve optimises the paper's running example (Fig. 2): four
// queries with two plans each. The naive greedy optimiser pays 34; the
// annealing pipeline finds the optimal batch plan at cost 25.
func ExampleSolve() {
	p := incranneal.PaperExample()
	out, err := incranneal.Solve(context.Background(), p, incranneal.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("cost %.0f, plans %v\n", out.Cost, out.Solution.Selected)
	// Output: cost 25, plans [1 3 4 6]
}

// ExampleGreedy shows the per-query baseline MQO improves on.
func ExampleGreedy() {
	p := incranneal.PaperExample()
	_, cost := incranneal.Greedy(p)
	fmt.Printf("greedy cost %.0f\n", cost)
	// Output: greedy cost 34
}

// ExampleNewProblem builds a two-query instance by hand: plan costs per
// query, one saving between plan 1 (query 0) and plan 3 (query 1).
func ExampleNewProblem() {
	p, err := incranneal.NewProblem(
		[][]float64{{9, 10}, {9, 10}},
		[]incranneal.Saving{{P1: 1, P2: 3, Value: 5}},
	)
	if err != nil {
		panic(err)
	}
	out, err := incranneal.Solve(context.Background(), p, incranneal.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("cost %.0f\n", out.Cost)
	// Output: cost 15
}

// ExampleSolve_partitioned forces partitioning by emulating a 4-variable
// device: the 8-plan example splits into two partial problems that the
// incremental strategy coordinates through dynamic search steering.
func ExampleSolve_partitioned() {
	p := incranneal.PaperExample()
	out, err := incranneal.Solve(context.Background(), p, incranneal.Options{
		Capacity: 4,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("partitions %d, discarded %.0f, cost %.0f\n",
		out.NumPartitions, out.DiscardedSavings, out.Cost)
	// Output: partitions 2, discarded 10, cost 25
}
