package incranneal

import (
	"context"
	"testing"

	"incranneal/internal/solver"
)

func TestDeviceMapping(t *testing.T) {
	cases := []struct {
		dev  Device
		name string
		cap  int
	}{
		{DeviceDA, "da", 8192},
		{DeviceHQA, "hqa", 0},
		{DeviceSA, "sa", 0},
		{DeviceVA, "va", 100000},
	}
	for _, tc := range cases {
		s := Options{Device: tc.dev}.device()
		if s.Name() != tc.name {
			t.Errorf("device %d name = %q, want %q", tc.dev, s.Name(), tc.name)
		}
		if s.Capacity() != tc.cap {
			t.Errorf("device %d capacity = %d, want %d", tc.dev, s.Capacity(), tc.cap)
		}
	}
}

type fakeDevice struct{}

func (fakeDevice) Name() string  { return "fake" }
func (fakeDevice) Capacity() int { return 0 }
func (fakeDevice) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	return &solver.Result{Samples: []solver.Sample{{Assignment: make([]int8, req.Model.NumVariables())}}}, nil
}

func TestCustomDeviceOverrides(t *testing.T) {
	opt := Options{Device: DeviceHQA, CustomDevice: fakeDevice{}}
	if got := opt.device().Name(); got != "fake" {
		t.Errorf("CustomDevice ignored, got %q", got)
	}
}

func TestCoreOptionsDefaultsRuns(t *testing.T) {
	c := Options{}.coreOptions()
	if c.Runs != 16 {
		t.Errorf("default runs = %d, want the paper's 16", c.Runs)
	}
	c = Options{Runs: 4}.coreOptions()
	if c.Runs != 4 {
		t.Errorf("explicit runs = %d, want 4", c.Runs)
	}
}

func TestSolveWithCustomDeviceRepairsEmptySamples(t *testing.T) {
	// The fake device always returns the all-zero assignment; the repair
	// path must still yield a valid complete solution.
	p := PaperExample()
	out, err := Solve(context.Background(), p, Options{CustomDevice: fakeDevice{}, Runs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Solution.Validate(p); err != nil || !out.Solution.Complete() {
		t.Errorf("repair failed: %v, complete=%v", err, out.Solution.Complete())
	}
}
