// Command qubosolve minimises an arbitrary QUBO in qbsolv ".qubo" format
// with any of the repository's quantum(-inspired) device simulators. It
// exposes the substrate beneath the MQO pipeline as a general-purpose
// tool, in the spirit of the paper's closing claim that the framework
// "lays the ground for other database use-cases on quantum-inspired
// hardware".
//
// Usage:
//
//	qubosolve -in problem.qubo -device da -runs 16
//	qubosolve -in problem.qubo -device da-pt        # parallel tempering
//	qubosolve -in problem.qubo -device hqa -print-assignment
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"incranneal/internal/da"
	"incranneal/internal/hqa"
	"incranneal/internal/qubo"
	"incranneal/internal/sa"
	"incranneal/internal/solver"
	"incranneal/internal/va"
)

func main() {
	var (
		in       = flag.String("in", "-", ".qubo file (\"-\" for stdin)")
		device   = flag.String("device", "da", "device: da, da-pt, da-large, va, hqa or sa")
		runs     = flag.Int("runs", 16, "independent runs")
		sweeps   = flag.Int("sweeps", 0, "iteration budget (0 = device default)")
		seed     = flag.Int64("seed", 1, "random seed")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget (0 = unbounded)")
		printSol = flag.Bool("print-assignment", false, "print the best variable assignment")
	)
	flag.Parse()

	m, err := readModel(*in)
	if err != nil {
		fail(err)
	}
	req := solver.Request{Model: m, Runs: *runs, Sweeps: *sweeps, Seed: *seed, TimeBudget: *timeout}
	start := time.Now()
	res, name, err := solve(context.Background(), *device, req)
	if err != nil {
		fail(err)
	}
	best, ok := res.Best()
	if !ok {
		fail(fmt.Errorf("device returned no samples"))
	}
	fmt.Printf("device:    %s\n", name)
	fmt.Printf("variables: %d (%d quadratic terms)\n", m.NumVariables(), m.NumTerms())
	fmt.Printf("energy:    %g\n", best.Energy)
	fmt.Printf("samples:   %d\n", len(res.Samples))
	fmt.Printf("sweeps:    %d\n", res.Sweeps)
	fmt.Printf("elapsed:   %v\n", time.Since(start).Round(time.Millisecond))
	if *printSol {
		for i, x := range best.Assignment {
			if x != 0 {
				fmt.Printf("x%d = 1\n", i)
			}
		}
	}
}

func solve(ctx context.Context, device string, req solver.Request) (*solver.Result, string, error) {
	switch device {
	case "da":
		s := &da.Solver{}
		res, err := s.Solve(ctx, req)
		return res, "Digital Annealer (annealing mode)", err
	case "da-pt":
		s := &da.Solver{}
		res, err := s.SolvePT(ctx, req)
		return res, "Digital Annealer (parallel tempering)", err
	case "da-large":
		s := &da.Solver{}
		res, err := s.SolveLarge(ctx, req)
		return res, "Digital Annealer (vendor decomposition)", err
	case "va":
		s := &va.Solver{}
		res, err := s.Solve(ctx, req)
		return res, "Vector Annealer", err
	case "hqa":
		s := &hqa.Solver{}
		res, err := s.Solve(ctx, req)
		return res, "Hybrid Quantum Annealer", err
	case "sa":
		s := &sa.Solver{}
		res, err := s.Solve(ctx, req)
		return res, "Simulated Annealing", err
	default:
		return nil, "", fmt.Errorf("unknown device %q", device)
	}
}

func readModel(path string) (*qubo.Model, error) {
	if path == "-" {
		return qubo.ReadModel(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return qubo.ReadModel(f)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qubosolve:", err)
	os.Exit(1)
}
