// Command mqobench regenerates the paper's evaluation figures: it runs the
// experiment harness for each figure (and the ablation studies) and prints
// the rows behind the plots as aligned text tables or CSV.
//
// Usage:
//
//	mqobench                      # every figure at reduced scale
//	mqobench -fig 3 -scale paper  # Fig. 3 at the paper's full dimensions
//	mqobench -fig ablation        # the ablation studies
//	mqobench -csv -out results/   # CSV files, one per figure
//	mqobench -fig convergence -trace run.jsonl -metrics
//
// Observability:
//
//	-trace out.jsonl   record pipeline trace events (JSONL, one per line)
//	-metrics           print a metrics summary table on exit
//	-pprof :6060       serve net/http/pprof and expvar on this address
//
// SIGINT flushes the partial trace before exiting, so interrupted long runs
// keep everything recorded so far.
//
// Resilience: -retries, -solve-timeout, -breaker and -fallback wrap every
// annealing device in retry/timeout/circuit-breaker/fallback middleware;
// -inject-faults applies a deterministic fault schedule to the primary
// devices (chaos benchmarking — the phases report's "deg" column counts the
// partial problems completed by greedy repair); -fail-fast aborts instead.
//
// Scheduling: -dag-parallel=false forces every incremental solve onto the
// strictly sequential chain, -dag-density tunes the fallback threshold, and
// -fig dag runs the execution-order ablation (sequential vs. DAG-parallel
// vs. DSS off on sparse-dependency workloads).
//
// Caching: -fig warm measures the cross-solve cache on recurring workloads —
// cold vs. structure-hit vs. warm-start latency and sweeps-to-parity
// (BENCH_warm.json records a reference run); the phases report carries a
// cached-second-run row attributing the saved time to the partition phase.
//
// Serving: -fig serve load-tests the mqoserve HTTP stack in-process — N
// concurrent clients per scale level against a 2-worker fleet over loopback
// HTTP — and reports throughput with p50/p95/p99 latency per level
// (BENCH_serve.json records a reference run). -fig chaos soaks the same
// stack under injected worker kills, slow workers and journal write
// failures, asserting the crash-safety invariants — every request answered,
// every OK cost bit-identical to a standalone solve via checkpoint resume,
// every stream well-formed (BENCH_chaos.json records a reference run).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"incranneal/internal/bench"
	"incranneal/internal/obs"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 1, 3, 4, 5, 6, 7, devices, phases, convergence, dag, warm, serve, chaos, ablation or all")
		scale     = flag.String("scale", "reduced", "experiment scale: smoke, reduced or paper")
		csv       = flag.Bool("csv", false, "emit CSV instead of text tables")
		outDir    = flag.String("out", "", "write per-figure files to this directory instead of stdout")
		timeout   = flag.Duration("timeout", 0, "per-algorithm run budget for the runtime figure (0 = 3m)")
		workers   = flag.Int("parallelism", 0, "worker goroutines per solve (0 = all cores, results identical for any value)")
		trace     = flag.String("trace", "", "write a JSONL pipeline trace to this file")
		metrics   = flag.Bool("metrics", false, "print a metrics summary on exit")
		pprofAddr = flag.String("pprof", "", "serve pprof/expvar on this address (e.g. :6060)")

		retries      = flag.Int("retries", 0, "re-attempts per device solve on transient failures (0 = no retry layer)")
		solveTimeout = flag.Duration("solve-timeout", 0, "per-solve deadline; expiry keeps the device's best-so-far samples (0 = none)")
		breaker      = flag.Int("breaker", 0, "consecutive solve failures tripping the per-device circuit breaker (0 = no breaker)")
		fallback     = flag.String("fallback", "", "comma-separated fallback devices tried after the primary (da, da-pt, sa, hqa, va)")
		injectFaults = flag.String("inject-faults", "", "deterministic fault schedule for every primary device, e.g. transient-first=2,terminal-after=4")
		failFast     = flag.Bool("fail-fast", false, "abort a run on terminal device failure instead of degrading to greedy repair")

		dagParallel = flag.Bool("dag-parallel", true, "schedule independent partial problems concurrently over the DSS dependency DAG (false = strictly sequential incremental chain)")
		dagDensity  = flag.Float64("dag-density", 0, "DSS dependency-graph edge density above which the DAG scheduler falls back to the sequential chain (0 = default 0.5, >=1 = never)")
	)
	flag.Parse()

	sc, err := scaleFor(*scale)
	if err != nil {
		fail(err)
	}
	cfg := bench.ConfigFor(sc)
	if *timeout > 0 {
		cfg.TimeBudget = *timeout
	}
	cfg.Parallelism = *workers
	mw, err := bench.MiddlewareSpec{
		Retries:      *retries,
		SolveTimeout: *solveTimeout,
		Breaker:      *breaker,
		Fallback:     *fallback,
		InjectFaults: *injectFaults,
		Seed:         1,
		DACapacity:   cfg.DACapacity,
	}.Middleware()
	if err != nil {
		fail(err)
	}
	cfg.Middleware = mw
	cfg.FailFast = *failFast
	cfg.Pipeline = bench.PipelineSpec{DisableDAG: !*dagParallel, DAGDensity: *dagDensity}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sink, flush, err := obs.SetupCLI("mqobench", *trace, *metrics, *pprofAddr)
	if err != nil {
		fail(err)
	}
	defer flush()
	if sink.Enabled() {
		ctx = obs.NewContext(ctx, sink)
	}

	type job struct {
		name string
		run  func() (*bench.Report, error)
	}
	jobs := []job{
		{"1", func() (*bench.Report, error) { return bench.Fig1(sc), nil }},
		{"3", func() (*bench.Report, error) { return bench.Fig3(ctx, cfg, sc) }},
		{"4", func() (*bench.Report, error) { return bench.Fig4(ctx, cfg, sc) }},
		{"5", func() (*bench.Report, error) { return bench.Fig5(ctx, cfg, sc) }},
		{"6", func() (*bench.Report, error) { return bench.Fig6(ctx, cfg, sc) }},
		{"7", func() (*bench.Report, error) { return bench.Fig7(ctx, cfg, sc) }},
		{"devices", func() (*bench.Report, error) { return bench.DeviceShootout(ctx, cfg, sc) }},
		{"phases", func() (*bench.Report, error) { return bench.PhaseReport(ctx, cfg, sc) }},
		{"convergence", func() (*bench.Report, error) { return bench.Convergence(ctx, cfg, sc) }},
		{"dag", func() (*bench.Report, error) { return bench.AblationDAG(ctx, cfg, sc) }},
		{"warm", func() (*bench.Report, error) { return bench.WarmStarts(ctx, cfg, sc) }},
		{"serve", func() (*bench.Report, error) { return bench.ServeLoad(ctx, cfg, sc) }},
		{"chaos", func() (*bench.Report, error) { return bench.ChaosSoak(ctx, cfg, sc) }},
		{"ablation", func() (*bench.Report, error) { return nil, nil }}, // expanded below
	}
	selected := map[string]bool{}
	if *fig == "all" {
		for _, j := range jobs {
			selected[j.name] = true
		}
	} else {
		for _, f := range strings.Split(*fig, ",") {
			selected[strings.TrimSpace(f)] = true
		}
	}

	emit := func(r *bench.Report) {
		if r == nil {
			return
		}
		if *outDir != "" {
			ext := ".txt"
			body := r.String()
			if *csv {
				ext = ".csv"
				body = r.CSV()
			}
			path := filepath.Join(*outDir, r.ID+ext)
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			return
		}
		if *csv {
			fmt.Println(r.CSV())
		} else {
			fmt.Println(r)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fail(err)
		}
	}

	// checkJob distinguishes a genuine failure from an interrupt: SIGINT
	// cancels ctx, the in-flight figure returns the cancellation error, and
	// the partial trace must still reach disk.
	checkJob := func(name string, err error) {
		if err == nil {
			return
		}
		flush()
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "mqobench: interrupted — partial trace and metrics flushed")
			os.Exit(130)
		}
		fail(fmt.Errorf("fig %s: %w", name, err))
	}

	start := time.Now()
	for _, j := range jobs[:len(jobs)-1] {
		if !selected[j.name] {
			continue
		}
		r, err := j.run()
		checkJob(j.name, err)
		emit(r)
	}
	if selected["ablation"] {
		for _, run := range []func(context.Context, bench.Config, bench.Scale) (*bench.Report, error){
			bench.AblationDSS, bench.AblationPostProcess, bench.AblationLagrange,
			bench.AblationDigitalAnnealer, bench.AblationBudget, bench.AblationDAG,
		} {
			r, err := run(ctx, cfg, sc)
			checkJob("ablation", err)
			emit(r)
		}
	}
	fmt.Fprintf(os.Stderr, "mqobench: done in %v (%s scale)\n", time.Since(start).Round(time.Second), sc.Name)
}

func scaleFor(name string) (bench.Scale, error) {
	switch name {
	case "smoke":
		return bench.SmokeScale(), nil
	case "reduced":
		return bench.ReducedScale(), nil
	case "paper":
		return bench.PaperScale(), nil
	default:
		return bench.Scale{}, fmt.Errorf("unknown scale %q (want smoke, reduced or paper)", name)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mqobench:", err)
	os.Exit(1)
}
