// Command mqogen generates MQO problem instances to JSON: either synthetic
// parameter-sweep instances with controlled community structure and
// savings densities (Sec. 5.2.1 of the paper), or scenarios extrapolated
// from the TPC-H, LDBC BI and JOB query-optimisation benchmarks
// (Sec. 5.3.1).
//
// Usage:
//
//	mqogen -queries 250 -ppq 30 -communities 4 -density-high 1.0 > sweep.json
//	mqogen -benchmark tpch -queries 500 -ppq 30 > tpch500.json
//	mqogen -corpus instances/ -corpus-divisor 8   # the paper's 240-problem corpus, scaled 8×
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"incranneal/internal/mqo"
	"incranneal/internal/workload"
)

func main() {
	var (
		queries     = flag.Int("queries", 250, "number of queries |Q|")
		ppq         = flag.Int("ppq", 30, "plans per query")
		communities = flag.Int("communities", 4, "number of query communities (sweep mode)")
		equal       = flag.Bool("equal-communities", false, "equal community sizes (sweep mode; default: varying)")
		densityLow  = flag.Float64("density-low", 0.05, "community density interval lower bound (sweep mode)")
		densityHigh = flag.Float64("density-high", 1.0, "community density interval upper bound (sweep mode)")
		cross       = flag.Float64("cross-density", 0.05, "cross-community savings density (sweep mode)")
		benchmark   = flag.String("benchmark", "", "derive from a QO benchmark instead: tpch, ldbc or job")
		seed        = flag.Int64("seed", 1, "generator seed")
		corpus      = flag.String("corpus", "", "write the full evaluation corpus (Sec. 5) to this directory instead")
		corpusDiv   = flag.Int("corpus-divisor", 1, "shrink the corpus query axis by this divisor (1 = the paper's dimensions)")
	)
	flag.Parse()

	if *corpus != "" {
		if err := writeCorpus(*corpus, *corpusDiv); err != nil {
			fmt.Fprintln(os.Stderr, "mqogen:", err)
			os.Exit(1)
		}
		return
	}

	p, err := generate(*benchmark, workload.SweepConfig{
		Queries: *queries, PPQ: *ppq,
		Communities: *communities, EqualCommunities: *equal,
		DensityLow: *densityLow, DensityHigh: *densityHigh, CrossDensity: *cross,
		Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mqogen:", err)
		os.Exit(1)
	}
	if err := mqo.WriteProblem(os.Stdout, p); err != nil {
		fmt.Fprintln(os.Stderr, "mqogen: writing instance:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "generated %q: %d queries, %d plans, %d savings\n",
		p.Name, p.NumQueries(), p.NumPlans(), p.NumSavings())
}

func generate(benchmark string, cfg workload.SweepConfig) (*mqo.Problem, error) {
	if benchmark == "" {
		in, err := workload.GenerateSweep(cfg)
		if err != nil {
			return nil, err
		}
		return in.Problem, nil
	}
	cat, ok := workload.Catalogues()[benchmark]
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q (want tpch, ldbc or job)", benchmark)
	}
	in, err := workload.GenerateBench(workload.BenchConfig{
		Catalogue: cat, Queries: cfg.Queries, PPQ: cfg.PPQ, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return in.Problem, nil
}

// writeCorpus materialises the evaluation corpus into dir: one JSON
// instance per entry plus a manifest listing every ID and class.
func writeCorpus(dir string, divisor int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	spec := workload.PaperCorpus()
	if divisor > 1 {
		spec = workload.ScaledCorpus(divisor)
	}
	entries := spec.Entries()
	manifest, err := os.Create(filepath.Join(dir, "MANIFEST.txt"))
	if err != nil {
		return err
	}
	defer manifest.Close()
	for _, e := range entries {
		sweepIn, benchIn, err := e.Generate()
		if err != nil {
			return fmt.Errorf("generating %s: %w", e.ID, err)
		}
		p := (*mqo.Problem)(nil)
		if sweepIn != nil {
			p = sweepIn.Problem
		} else {
			p = benchIn.Problem
		}
		f, err := os.Create(filepath.Join(dir, e.ID+".json"))
		if err != nil {
			return err
		}
		if err := mqo.WriteProblem(f, p); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(manifest, "%s\t%s\t%d queries\t%d plans\t%d savings\n",
			e.ID, e.Class, p.NumQueries(), p.NumPlans(), p.NumSavings())
	}
	fmt.Fprintf(os.Stderr, "wrote %d instances to %s\n", len(entries), dir)
	return nil
}
