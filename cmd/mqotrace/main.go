// Command mqotrace analyses the JSONL span traces the pipeline writes
// (mqoserve -trace, mqosolve -trace): it reconstructs each request's span
// tree and prints per-request phase breakdowns, the critical path through
// the DAG waves, the top-N slowest requests and an aggregate phase×device
// latency summary.
//
// Usage:
//
//	mqotrace trace.jsonl
//	mqoserve -trace - ... 2>/dev/null | mqotrace -top 3 -
//	mqotrace -req 1a2b3c4d5e6f7081 trace.jsonl
//
// With -req the report narrows to one trace (by full or unambiguous prefix
// of its hex id); otherwise the critical path of the slowest request is
// shown. Events without span identity (un-traced runs) are ignored, so a
// mixed trace file still analyses cleanly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"incranneal/internal/tracetool"
)

func main() {
	var (
		top   = flag.Int("top", 5, "show the N slowest requests")
		req   = flag.String("req", "", "narrow to one trace id (full or unambiguous hex prefix)")
		check = flag.Bool("check", false, "only verify span-tree well-formedness; exit non-zero on violation")
	)
	flag.Parse()
	if err := run(*top, *req, *check, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "mqotrace:", err)
		os.Exit(1)
	}
}

func run(top int, req string, check bool, path string) error {
	var r io.Reader = os.Stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	events, err := tracetool.Parse(r)
	if err != nil {
		return err
	}
	traces := tracetool.BuildForest(events)
	if len(traces) == 0 {
		return fmt.Errorf("no traced requests in input (%d events without span identity)", len(events))
	}
	if err := tracetool.WellFormed(traces); err != nil {
		return fmt.Errorf("span tree not well-formed: %w", err)
	}
	if check {
		fmt.Printf("ok: %d traces, %d events, span trees well-formed\n", len(traces), len(events))
		return nil
	}
	if req != "" {
		t, err := findTrace(traces, req)
		if err != nil {
			return err
		}
		traces = []*tracetool.Trace{t}
	}
	out := os.Stdout
	tracetool.RenderSlowest(out, traces, top)
	fmt.Fprintln(out)
	// Critical path of the slowest (or the requested) trace.
	slowest := tracetool.SortBySlowest(traces, 1)
	tracetool.RenderCriticalPath(out, slowest[0])
	fmt.Fprintln(out)
	tracetool.RenderAggregate(out, traces)
	return nil
}

// findTrace resolves a full or prefix trace id.
func findTrace(traces []*tracetool.Trace, id string) (*tracetool.Trace, error) {
	var matches []*tracetool.Trace
	for _, t := range traces {
		if t.ID == id {
			return t, nil
		}
		if strings.HasPrefix(t.ID, id) {
			matches = append(matches, t)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return nil, fmt.Errorf("no trace with id %s", id)
	default:
		return nil, fmt.Errorf("trace id prefix %s is ambiguous (%d matches)", id, len(matches))
	}
}
