// Command mqoserve runs the long-running MQO optimisation service: an
// HTTP/JSON daemon that accepts problem batches, schedules them over a
// bounded fleet of annealing-solver workers with admission control, and
// streams incremental incumbents to clients while solves run.
//
// Usage:
//
//	mqoserve -addr :8080 -fleet 4 -queue 128
//	curl -s localhost:8080/v1/solve -d @instance.json
//	curl -sN 'localhost:8080/v1/solve?stream=1' -d @request.json
//
// Endpoints: POST /v1/solve (solve one instance; ?stream=1 switches to
// NDJSON incumbent streaming), GET /healthz (liveness + queue occupancy),
// GET /readyz (readiness — 503 while draining or replaying the journal),
// GET /statsz (metrics registry snapshot), GET /metricsz (Prometheus
// exposition). See docs/mqoserve.md for the full API, the streaming
// protocol and tuning guidance.
//
// Admission: the queue holds at most -queue requests; beyond that the
// server answers 503 with a Retry-After hint. Every request carries a
// deadline (default -deadline, capped by -max-deadline) propagated through
// queueing and solving; expired work is never performed. Requests queue in
// priority classes (high before normal before low, FIFO within a class;
// -priority sets the default) and deadline-expired queued requests are
// evicted eagerly. -shed-target arms adaptive overload control: while the
// p99 queue wait exceeds the target, low/normal-priority requests are shed
// with 503 + Retry-After.
//
// Crash safety: -journal-dir fsyncs every accepted request to an
// append-only journal before admission and tombstones it once answered; a
// restarted daemon replays the unanswered remainder (at-least-once) while
// /readyz reports 503. -checkpoint-interval paces the per-solve session
// checkpoints that let a killed solve attempt resume without re-annealing
// finished partial problems; -watchdog-factor quarantines fleet slots
// whose solves ignore cancellation.
//
// Resilience: -retries, -solve-timeout, -breaker and -fallback wrap each
// fleet worker's devices in the same middleware stack mqosolve uses;
// breaker and retry state is kept per fleet slot.
//
// Caching: -cache-entries enables the fleet-wide cross-solve cache for
// recurring workloads — structurally identical problems skip recursive
// partitioning and rebind cached encoding skeletons; -warm-drift
// additionally seeds annealing from the cached incumbent when plan costs
// drifted within the bound. Hit/miss/eviction counters appear under
// cache.* in /statsz. Off by default: with caching on, repeated solves of
// the same structure are no longer bit-identical to a cold standalone run
// whenever warm starts engage.
//
// Determinism: a problem solved through mqoserve yields a bit-identical
// outcome to a standalone mqosolve run with the same seed and options,
// regardless of fleet size, queue depth or concurrent load.
//
// SIGINT/SIGTERM triggers a graceful drain: new work is rejected, running
// solves finish and deliver their responses, then the process exits.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -pprof: registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"incranneal/internal/obs"
	"incranneal/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		fleet    = flag.Int("fleet", 2, "solver workers (maximum concurrent solves)")
		queue    = flag.Int("queue", 64, "admission queue depth; beyond it requests get 503 + Retry-After")
		device   = flag.String("device", "da", "default annealing device: da, da-pt, sa, hqa, va (requests may override)")
		capacity = flag.Int("capacity", 0, "override device variable capacity (0 = device default)")
		runs     = flag.Int("runs", 16, "default annealing runs per (partial) problem")
		sweeps   = flag.Int("sweeps", 0, "default total annealing iteration budget (0 = device default)")
		parallel = flag.Int("parallelism", 0, "total worker-goroutine budget per solve, divided across the fleet (0 = GOMAXPROCS)")

		deadline    = flag.Duration("deadline", time.Minute, "default per-request deadline (queue wait + solve)")
		maxDeadline = flag.Duration("max-deadline", 10*time.Minute, "cap on client-requested deadlines")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint returned with 503 rejections")
		drain       = flag.Duration("drain", 2*time.Minute, "graceful-shutdown budget for in-flight solves")

		retries      = flag.Int("retries", 0, "re-attempts per device solve on transient failures (0 = no retry layer)")
		solveTimeout = flag.Duration("solve-timeout", 0, "per-device-solve deadline; expiry keeps best-so-far samples (0 = none)")
		breaker      = flag.Int("breaker", 0, "consecutive solve failures tripping the per-device circuit breaker (0 = no breaker)")
		fallback     = flag.String("fallback", "", "comma-separated fallback devices tried after the primary (da, da-pt, sa, hqa, va)")
		seed         = flag.Int64("seed", 1, "seed for the resilience middleware's deterministic backoff jitter")

		cacheEntries = flag.Int("cache-entries", 0, "cross-solve cache bound: distinct problem structures kept for partitioning/skeleton reuse, shared by the fleet (0 = caching off, -1 = default bound)")
		warmDrift    = flag.Float64("warm-drift", 0, "seed annealing from the cached incumbent when relative weight drift is within (0, bound]; requires -cache-entries (0 = warm starts off)")

		journalDir     = flag.String("journal-dir", "", "fsync accepted requests to an append-only journal in this directory and replay the unanswered remainder on restart (empty = journaling off)")
		ckptInterval   = flag.Duration("checkpoint-interval", 0, "minimum spacing between per-solve session checkpoints used for kill-and-resume (0 = checkpoint after every partial-problem merge)")
		shedTarget     = flag.Duration("shed-target", 0, "adaptive overload shedding: reject low/normal-priority requests while the p99 queue wait exceeds this target (0 = shedding off)")
		priority       = flag.String("priority", "", "default queue class for requests that carry none: low, normal or high (empty = normal)")
		watchdogFactor = flag.Float64("watchdog-factor", 0, "quarantine a fleet slot whose solve overruns its remaining deadline times this factor and ignores cancellation (0 = watchdog off)")

		trace     = flag.String("trace", "", "write a JSONL pipeline trace of every solve to this file")
		pprofAddr = flag.String("pprof", "", "serve pprof/expvar on this address (e.g. :6060)")
	)
	flag.Parse()

	// Metrics are always on for a daemon: /statsz serves the registry and
	// -pprof exposes it as expvar too.
	reg := obs.NewRegistry()
	var sink *obs.Sink
	var flushTrace func()
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fail(err)
		}
		bw := bufio.NewWriter(f)
		sink = obs.NewSink(bw, reg)
		flushTrace = func() {
			sink.Close() //nolint:errcheck
			f.Close()    //nolint:errcheck
		}
	} else {
		sink = obs.NewSink(nil, reg)
		flushTrace = func() {}
	}
	if *pprofAddr != "" {
		obs.PublishExpvar(reg)
		go func() {
			// The default mux carries the net/http/pprof and expvar handlers.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "mqoserve: pprof listener: %v\n", err)
			}
		}()
	}

	var fallbacks []string
	for _, fb := range strings.Split(*fallback, ",") {
		if fb = strings.TrimSpace(fb); fb != "" {
			fallbacks = append(fallbacks, fb)
		}
	}

	srv, err := serve.New(serve.Config{
		QueueDepth:      *queue,
		Fleet:           *fleet,
		Device:          *device,
		Fallback:        fallbacks,
		Capacity:        *capacity,
		DefaultRuns:     *runs,
		DefaultSweeps:   *sweeps,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		RetryAfter:      *retryAfter,
		Retries:         *retries,
		SolveTimeout:    *solveTimeout,
		Breaker:         *breaker,
		Seed:            *seed,
		Parallelism:     *parallel,
		CacheEntries:    *cacheEntries,
		WarmStartDrift:  *warmDrift,
		Sink:            sink,

		JournalDir:         *journalDir,
		CheckpointInterval: *ckptInterval,
		ShedTarget:         *shedTarget,
		DefaultPriority:    *priority,
		WatchdogFactor:     *watchdogFactor,
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("mqoserve: listening on %s (fleet %d × %s, queue %d)\n", *addr, *fleet, *device, *queue)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		flushTrace()
		fail(err)
	case sig := <-sigc:
		fmt.Printf("mqoserve: %v — draining (budget %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(ctx)
		cancel()
		flushTrace()
		if err != nil {
			fail(fmt.Errorf("drain incomplete: %w", err))
		}
		fmt.Println("mqoserve: drained cleanly")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mqoserve:", err)
	os.Exit(1)
}
