// Command mqosolve optimises a JSON-encoded MQO instance (as produced by
// mqogen) with any of the repository's algorithms and prints the solution
// cost, pipeline statistics and optionally the full plan selection.
//
// Usage:
//
//	mqogen -queries 100 -ppq 10 | mqosolve -algorithm da-incremental
//	mqosolve -in instance.json -algorithm hc -print-solution
//
// Algorithms: da-incremental (paper's method, default), da-parallel,
// da-default, da-pt, sa-default, sa-incremental, hqa, va, hc, genetic,
// greedy, exact, astar.
//
// Observability: -trace out.jsonl records pipeline trace events, -metrics
// prints a metrics summary on exit, -pprof :6060 serves net/http/pprof and
// expvar. SIGINT flushes the partial trace before exiting.
//
// Resilience: -retries, -solve-timeout, -breaker and -fallback wrap the
// annealing device in retry/timeout/circuit-breaker/fallback middleware;
// -inject-faults applies a deterministic fault schedule to the primary
// device (for chaos testing); -fail-fast aborts on terminal device failure
// instead of completing the affected partial problems by greedy repair.
//
// Scheduling: the incremental strategy solves independent partial problems
// concurrently over the DSS dependency DAG by default; -dag-parallel=false
// forces the strictly sequential chain and -dag-density tunes the edge
// density above which the scheduler falls back to it. Results are identical
// either way.
//
// Recurring workloads: -repeat N solves the instance N times; -cache turns
// on the cross-solve cache so later epochs reuse the first epoch's
// partitioning and encoding skeletons (a "cache:" line reports the reuse
// level), and -warm-drift additionally seeds annealing from the cached
// incumbent when plan costs drifted within the bound.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"incranneal/internal/baseline"
	"incranneal/internal/bench"
	"incranneal/internal/core"
	"incranneal/internal/da"
	"incranneal/internal/hqa"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
	"incranneal/internal/sa"
	"incranneal/internal/solvecache"
	"incranneal/internal/solver"
	"incranneal/internal/va"
)

func main() {
	var (
		in        = flag.String("in", "-", "instance file (\"-\" for stdin)")
		algorithm = flag.String("algorithm", "da-incremental", "algorithm to run")
		capacity  = flag.Int("capacity", 0, "override device variable capacity (0 = device default)")
		runs      = flag.Int("runs", 16, "annealing runs per (partial) problem")
		sweeps    = flag.Int("sweeps", 0, "total annealing iteration budget (0 = device default)")
		seed      = flag.Int64("seed", 1, "random seed")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget (0 = unbounded)")
		printSol  = flag.Bool("print-solution", false, "print the selected plan per query")
		trace     = flag.String("trace", "", "write a JSONL pipeline trace to this file")
		metrics   = flag.Bool("metrics", false, "print a metrics summary on exit")
		pprofAddr = flag.String("pprof", "", "serve pprof/expvar on this address (e.g. :6060)")

		retries      = flag.Int("retries", 0, "re-attempts per device solve on transient failures (0 = no retry layer)")
		solveTimeout = flag.Duration("solve-timeout", 0, "per-solve deadline; expiry keeps the device's best-so-far samples (0 = none)")
		breaker      = flag.Int("breaker", 0, "consecutive solve failures tripping the per-device circuit breaker (0 = no breaker)")
		fallback     = flag.String("fallback", "", "comma-separated fallback devices tried after the primary (da, da-pt, sa, hqa, va)")
		injectFaults = flag.String("inject-faults", "", "deterministic fault schedule for the primary device, e.g. transient-first=2,terminal-after=4,corrupt")
		failFast     = flag.Bool("fail-fast", false, "abort on terminal device failure instead of degrading to greedy repair")

		dagParallel = flag.Bool("dag-parallel", true, "schedule independent partial problems concurrently over the DSS dependency DAG (false = strictly sequential incremental chain)")
		dagDensity  = flag.Float64("dag-density", 0, "DSS dependency-graph edge density above which the DAG scheduler falls back to the sequential chain (0 = default 0.5, >=1 = never)")

		useCache  = flag.Bool("cache", false, "enable the cross-solve cache: later -repeat epochs reuse the partitioning and encoding skeletons of earlier ones")
		repeat    = flag.Int("repeat", 1, "solve the instance this many times (recurring-workload emulation; combine with -cache)")
		warmDrift = flag.Float64("warm-drift", 0, "seed annealing from the cached incumbent when relative weight drift is within (0, bound]; implies -cache (0 = warm starts off)")
	)
	flag.Parse()

	p, err := readProblem(*in)
	if err != nil {
		fail(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sink, flush, err := obs.SetupCLI("mqosolve", *trace, *metrics, *pprofAddr)
	if err != nil {
		fail(err)
	}
	defer flush()
	if sink.Enabled() {
		ctx = obs.NewContext(ctx, sink)
	}
	mw, err := bench.MiddlewareSpec{
		Retries:      *retries,
		SolveTimeout: *solveTimeout,
		Breaker:      *breaker,
		Fallback:     *fallback,
		InjectFaults: *injectFaults,
		Seed:         *seed,
		DACapacity:   *capacity,
	}.Middleware()
	if err != nil {
		fail(err)
	}
	var cache *solvecache.Cache
	if *useCache || *warmDrift > 0 {
		cache = solvecache.New(0)
	}
	ps := bench.PipelineSpec{DisableDAG: !*dagParallel, DAGDensity: *dagDensity}
	start := time.Now()
	var (
		sol   *mqo.Solution
		cost  float64
		stats string
	)
	for epoch := 0; epoch < max(1, *repeat); epoch++ {
		epochStart := time.Now()
		// Root the epoch's span tree so mqotrace can reconstruct it; the
		// trace id derives from the seed and epoch, never wall clock.
		epochCtx := ctx
		var rootSpan *obs.Span
		if sink.Enabled() {
			epochCtx, rootSpan = sink.StartTrace(ctx, "solve",
				obs.NewTraceID(*seed, fmt.Sprintf("%s/%d", *algorithm, epoch)))
			rootSpan.Attr("algorithm", *algorithm)
		}
		sol, cost, stats, err = run(epochCtx, *algorithm, p, *capacity, *runs, *sweeps, *seed, *timeout, mw, *failFast, ps, cache, *warmDrift)
		if err != nil {
			rootSpan.Attr("error", err.Error())
		}
		rootSpan.End()
		if err != nil {
			// SIGINT cancels ctx mid-solve; flush whatever the trace recorded
			// before reporting the interrupt.
			flush()
			if ctx.Err() != nil && *timeout == 0 {
				fmt.Fprintln(os.Stderr, "mqosolve: interrupted — partial trace and metrics flushed")
				os.Exit(130)
			}
			fail(err)
		}
		if *repeat > 1 {
			fmt.Printf("epoch %d:    cost %.4f in %v\n", epoch, cost, time.Since(epochStart).Round(time.Millisecond))
		}
	}
	fmt.Printf("instance:   %s (%d queries, %d plans, %d savings)\n", p.Name, p.NumQueries(), p.NumPlans(), p.NumSavings())
	fmt.Printf("algorithm:  %s\n", *algorithm)
	fmt.Printf("cost:       %.4f\n", cost)
	if g := mqo.GreedySolution(p); true {
		fmt.Printf("greedy:     %.4f (naive per-query selection)\n", g.Cost(p))
	}
	fmt.Printf("elapsed:    %v\n", time.Since(start).Round(time.Millisecond))
	if stats != "" {
		fmt.Print(stats)
	}
	if *printSol {
		for q, pl := range sol.Selected {
			fmt.Printf("q%d -> plan %d (cost %.2f)\n", q, pl, p.Cost(pl))
		}
	}
}

func run(ctx context.Context, algorithm string, p *mqo.Problem, capacity, runs, sweeps int, seed int64, timeout time.Duration, mw func(solver.Solver) solver.Solver, failFast bool, ps bench.PipelineSpec, cache *solvecache.Cache, warmDrift float64) (*mqo.Solution, float64, string, error) {
	copt := core.Options{Capacity: capacity, Runs: runs, TotalSweeps: sweeps, Seed: seed, FailFast: failFast, Cache: cache, WarmStartDrift: warmDrift}
	ps.Apply(&copt)
	bopt := baseline.Options{Seed: seed, TimeBudget: timeout}
	annealOutcome := func(out *core.Outcome, err error) (*mqo.Solution, float64, string, error) {
		if err != nil {
			return nil, 0, "", err
		}
		stats := fmt.Sprintf("partitions: %d\ndiscarded:  %.2f (savings crossing partitions)\nreapplied:  %.2f (via DSS)\nsweeps:     %d\n",
			out.NumPartitions, out.DiscardedSavings, out.ReappliedSavings, out.Sweeps)
		if out.DAG != nil {
			mode := fmt.Sprintf("%d waves, width %d", out.DAG.Waves, out.DAG.Width)
			if out.DAG.Fallback {
				mode = "sequential fallback (graph too dense)"
			}
			stats += fmt.Sprintf("dss dag:    %d edges, density %.2f — %s\n", out.DAG.Edges, out.DAG.Density, mode)
		}
		if out.Cache != nil {
			state := "miss"
			if out.Cache.StructureHit {
				state = "hit (partitioning reused)"
			}
			warm := ""
			if out.Cache.WarmStart {
				warm = fmt.Sprintf(", warm start (drift %.3f)", out.Cache.Drift)
			}
			stats += fmt.Sprintf("cache:      structure %s, skeletons %d/%d rebound%s\n",
				state, out.Cache.SkeletonHits, out.Cache.SkeletonHits+out.Cache.SkeletonMisses, warm)
		}
		if len(out.Degradations) > 0 {
			stats += fmt.Sprintf("degraded:   %d partial problem(s) completed by greedy repair\n", len(out.Degradations))
			for _, d := range out.Degradations {
				scope := fmt.Sprintf("sub %d", d.Sub)
				if d.Sub < 0 {
					scope = "whole problem"
				}
				stats += fmt.Sprintf("  %s on %s after %d attempt(s): %s\n", scope, d.Device, d.Attempts, d.Reason)
			}
		}
		return out.Solution, out.Cost, stats, nil
	}
	baselineOutcome := func(res *baseline.Result, err error) (*mqo.Solution, float64, string, error) {
		if err != nil {
			return nil, 0, "", err
		}
		return res.Solution, res.Cost, fmt.Sprintf("iterations: %d\n", res.Iterations), nil
	}
	// The annealing algorithms share the device middleware path; wrap is
	// applied after the device is chosen, so -retries/-fallback/-inject-
	// faults compose with every device. The partitioning phase reuses the
	// wrapped device (PartitionSolver is nil), so bisection solves are
	// protected too.
	wrap := func(dev solver.Solver) solver.Solver {
		if mw != nil {
			return mw(dev)
		}
		return dev
	}
	switch algorithm {
	case "da-incremental":
		copt.Device = wrap(&da.Solver{})
		return annealOutcome(core.SolveIncremental(ctx, p, copt))
	case "da-parallel":
		copt.Device = wrap(&da.Solver{})
		return annealOutcome(core.SolveParallel(ctx, p, copt))
	case "da-default":
		copt.Device = wrap(&da.Solver{})
		return annealOutcome(core.SolveDefault(ctx, p, copt))
	case "da-pt":
		copt.Device = wrap(&ptSolver{Solver: &da.Solver{}})
		return annealOutcome(core.SolveIncremental(ctx, p, copt))
	case "va":
		copt.Device = wrap(&va.Solver{})
		return annealOutcome(core.SolveIncremental(ctx, p, copt))
	case "sa-default":
		copt.Device = wrap(&sa.Solver{})
		return annealOutcome(core.SolveDefault(ctx, p, copt))
	case "sa-incremental":
		copt.Device = wrap(&sa.Solver{})
		if copt.Capacity == 0 {
			copt.Capacity = da.HardwareCapacity
		}
		return annealOutcome(core.SolveIncremental(ctx, p, copt))
	case "hqa":
		copt.Device = wrap(&hqa.Solver{})
		if copt.Capacity == 0 {
			copt.Capacity = da.HardwareCapacity
		}
		return annealOutcome(core.SolveIncremental(ctx, p, copt))
	case "hc":
		return baselineOutcome(baseline.HillClimb(ctx, p, bopt))
	case "genetic":
		return baselineOutcome(baseline.Genetic(ctx, p, baseline.GeneticOptions{Options: bopt}))
	case "greedy":
		sol := mqo.GreedySolution(p)
		return sol, sol.Cost(p), "", nil
	case "exact":
		return baselineOutcome(baseline.Exact(ctx, p, bopt))
	case "astar":
		return baselineOutcome(baseline.AStar(ctx, p, bopt))
	default:
		return nil, 0, "", fmt.Errorf("unknown algorithm %q", algorithm)
	}
}

func readProblem(path string) (*mqo.Problem, error) {
	if path == "-" {
		return mqo.ReadProblem(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mqo.ReadProblem(f)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mqosolve:", err)
	os.Exit(1)
}

// ptSolver routes Solve through the Digital Annealer's parallel-tempering
// mode so the pipeline can use it as a drop-in device.
type ptSolver struct{ *da.Solver }

func (s *ptSolver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	return s.SolvePT(ctx, req)
}
