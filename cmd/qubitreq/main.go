// Command qubitreq prints the qubit-capacity requirement table behind
// Fig. 1 of the paper: the physical qubits the original (unpartitioned)
// Trummer–Koch MQO encoding needs per problem size, against the capacities
// of the D-Wave 2X and Advantage annealers.
//
// Usage:
//
//	qubitreq -max-queries 40 -ppq 10
package main

import (
	"flag"
	"fmt"

	"incranneal/internal/embed"
)

func main() {
	var (
		maxQueries = flag.Int("max-queries", 40, "largest query count to tabulate")
		ppq        = flag.Int("ppq", 10, "plans per query")
	)
	flag.Parse()

	dw2x, adv := embed.DWave2X(), embed.Advantage()
	fmt.Printf("%-8s %-13s %-22s %-22s\n", "queries", "logical vars",
		fmt.Sprintf("%s (%d q)", "2X qubits", dw2x.Qubits),
		fmt.Sprintf("%s (%d q)", "Advantage qubits", adv.Qubits))
	for q := 2; q <= *maxQueries; q += 2 {
		a := embed.RequiredQubits(dw2x, q, *ppq)
		b := embed.RequiredQubits(adv, q, *ppq)
		fmt.Printf("%-8d %-13d %-22s %-22s\n", q, a.LogicalVariables, mark(a), mark(b))
	}
	fmt.Printf("\nmax clique variables: 2X %d, Advantage %d\n", dw2x.MaxCliqueVariables(), adv.MaxCliqueVariables())
}

func mark(r embed.Requirement) string {
	if r.Exceeded {
		return fmt.Sprintf("%d ✗ exceeded", r.PhysicalQubits)
	}
	return fmt.Sprintf("%d", r.PhysicalQubits)
}
