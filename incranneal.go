// Package incranneal is the public facade of the incremental
// quantum(-inspired) annealing library for large-scale multiple query
// optimisation (MQO), reproducing Schönberger, Trummer and Mauerer
// (SIGMOD 2025).
//
// The library solves the classical MQO plan-selection problem — pick one
// execution plan per query so that total execution cost minus inter-plan
// cost savings is minimal — at scales far beyond the variable capacity of
// any single annealing device, by
//
//  1. compressing the MQO instance into a partitioning graph and bisecting
//     it recursively *on the annealer itself* (weighted graph-partitioning
//     QUBO), and
//  2. solving the resulting partial problems incrementally under dynamic
//     search steering (DSS), which re-applies the savings the partitioning
//     discarded by adjusting plan costs between partial solves.
//
// A minimal session:
//
//	p, _ := incranneal.NewProblem([][]float64{{9, 10}, {9, 10}}, []incranneal.Saving{{P1: 1, P2: 3, Value: 5}})
//	out, _ := incranneal.Solve(context.Background(), p, incranneal.Options{})
//	fmt.Println(out.Cost, out.Solution.Selected)
//
// Devices: the library ships a software Digital Annealer (DeviceDA, the
// default), a hybrid quantum annealer simulator (DeviceHQA), classical
// simulated annealing (DeviceSA) and a Vector Annealer simulator
// (DeviceVA); any custom solver.Solver can be plugged in through
// Options.CustomDevice. Problems within device capacity are
// solved directly; larger problems flow through the partition + DSS
// pipeline automatically.
package incranneal

import (
	"context"
	"fmt"

	"incranneal/internal/core"
	"incranneal/internal/da"
	"incranneal/internal/hqa"
	"incranneal/internal/mqo"
	"incranneal/internal/sa"
	"incranneal/internal/solvecache"
	"incranneal/internal/solver"
	"incranneal/internal/va"
	"incranneal/internal/workload"
)

// Problem is an immutable MQO instance; see NewProblem.
type Problem = mqo.Problem

// Saving is a cost-sharing opportunity between two plans of different
// queries.
type Saving = mqo.Saving

// Solution assigns one plan to each query.
type Solution = mqo.Solution

// Outcome reports a completed solve: the solution, its cost and pipeline
// statistics (partitions, discarded and re-applied savings, iterations).
type Outcome = core.Outcome

// NewProblem constructs an MQO problem from per-query plan costs and
// inter-plan savings. planCosts[q] lists the execution costs of query q's
// plans; global plan indices number plans consecutively query by query.
func NewProblem(planCosts [][]float64, savings []Saving) (*Problem, error) {
	return mqo.NewProblem(planCosts, savings)
}

// PaperExample returns the four-query running example of the paper
// (Fig. 2), whose optimum costs 25.
func PaperExample() *Problem { return mqo.PaperExample() }

// Device selects the annealing backend.
type Device int

const (
	// DeviceDA is the software Digital Annealer (default): parallel-trial
	// Monte Carlo with dynamic offset escape and an 8,192-variable
	// capacity, after Aramon et al. 2019.
	DeviceDA Device = iota
	// DeviceHQA is the hybrid quantum annealer simulator: classical
	// orchestration around a noisy, capacity-limited simulated QPU.
	DeviceHQA
	// DeviceSA is classical simulated annealing without a capacity limit.
	DeviceSA
	// DeviceVA is the NEC Vector Annealer simulator: lockstep replica
	// annealing with resampling (assessed by the paper and found dominated
	// by the DA).
	DeviceVA
)

// Strategy selects how problems beyond device capacity are processed.
type Strategy int

const (
	// StrategyIncremental is the paper's method: annealer-backed
	// partitioning, then sequential solves steered by DSS (default).
	StrategyIncremental Strategy = iota
	// StrategyParallel solves partitions independently and merges.
	StrategyParallel
	// StrategyDefault hands the unpartitioned QUBO to the device's own
	// large-problem mode (vendor decomposition).
	StrategyDefault
)

// Options configures Solve. The zero value uses the Digital Annealer with
// the incremental strategy and the paper's run count.
type Options struct {
	// Device selects the annealing backend; DeviceDA if unset.
	Device Device
	// CustomDevice overrides Device with any solver implementation.
	CustomDevice solver.Solver
	// Strategy selects the processing mode; StrategyIncremental if unset.
	Strategy Strategy
	// Capacity overrides the device's variable capacity for partitioning
	// (useful to emulate smaller devices); zero uses the device's own.
	Capacity int
	// Runs is the number of annealing runs per (partial) problem; zero
	// means 16, the paper's setting.
	Runs int
	// TotalSweeps is the overall annealing iteration budget divided across
	// partitions; zero uses device defaults.
	TotalSweeps int
	// Seed makes the pipeline deterministic.
	Seed int64
	// Parallelism bounds the worker goroutines used for independent
	// annealing runs and concurrent partition solves. Zero uses every
	// core (GOMAXPROCS), negative forces sequential execution. Results
	// are identical for every setting: per-run RNG streams derive from
	// Seed before any work is dispatched.
	Parallelism int
	// DisableDSS turns dynamic search steering off (ablation).
	DisableDSS bool
	// PostProcessParses configures Algorithm 1 (0 = the paper's 4 parses,
	// negative disables post-processing).
	PostProcessParses int
	// FailFast aborts the solve on a terminal device failure instead of
	// completing the affected partial problem by deterministic greedy
	// repair. With the default (false), failures are recorded in
	// Outcome.Degradations and the solve always returns a complete,
	// valid solution.
	FailFast bool
	// Cache enables cross-solve reuse for recurring workloads: solves of
	// structurally identical problems (same shape, possibly different
	// costs) skip recursive partitioning and rebind cached encoding
	// skeletons instead of preparing fresh ones. Share one Cache across
	// the sessions that should reuse each other's work; nil disables
	// caching. Cold solves (cache miss or nil Cache) are bit-identical to
	// an uncached solve.
	Cache *Cache
	// WarmStartDrift additionally seeds annealing runs from the cached
	// incumbent when the relative weight drift against the cached solve is
	// within (0, WarmStartDrift]. Zero (default) disables warm starts.
	// Drift-0 hits stay cold-seeded so identical re-solves remain
	// bit-identical.
	WarmStartDrift float64
}

func (o Options) device() solver.Solver {
	if o.CustomDevice != nil {
		return o.CustomDevice
	}
	switch o.Device {
	case DeviceHQA:
		return &hqa.Solver{}
	case DeviceSA:
		return &sa.Solver{}
	case DeviceVA:
		return &va.Solver{}
	default:
		return &da.Solver{}
	}
}

func (o Options) coreOptions() core.Options {
	runs := o.Runs
	if runs == 0 {
		runs = 16
	}
	return core.Options{
		Device:            o.device(),
		Capacity:          o.Capacity,
		Runs:              runs,
		TotalSweeps:       o.TotalSweeps,
		Seed:              o.Seed,
		Parallelism:       o.Parallelism,
		DisableDSS:        o.DisableDSS,
		PostProcessParses: o.PostProcessParses,
		FailFast:          o.FailFast,
		Cache:             o.Cache,
		WarmStartDrift:    o.WarmStartDrift,
	}
}

// Solve optimises p end to end: it selects one plan per query minimising
// total cost minus realised savings, partitioning the problem and steering
// the search per the configured strategy whenever p exceeds the device
// capacity. It is shorthand for running a Session to completion; callers
// that want progress visibility use NewSession directly.
func Solve(ctx context.Context, p *Problem, opt Options) (*Outcome, error) {
	sess, err := NewSession(p, opt)
	if err != nil {
		return nil, err
	}
	return sess.Run(ctx)
}

// Incumbent is one point of an in-progress solve's incumbent-solution
// trajectory, streamed by Session.Incumbents.
type Incumbent = core.Incumbent

// Session is the lifecycle handle on a single MQO solve: Start it, consume
// the incumbent stream while partial problems merge, and Wait for the
// final Outcome. Results are bit-identical to the one-shot Solve with the
// same problem, options and seed.
type Session struct {
	inner *core.Session
}

// NewSession prepares a solve of p under opt without starting it.
func NewSession(p *Problem, opt Options) (*Session, error) {
	if p == nil {
		return nil, fmt.Errorf("incranneal: nil problem")
	}
	sess := core.NewSession(p, opt.coreOptions())
	switch opt.Strategy {
	case StrategyParallel:
		sess.Strategy = core.StrategyParallel
	case StrategyDefault:
		sess.Strategy = core.StrategyDefault
	default:
		sess.Strategy = core.StrategyIncremental
	}
	return &Session{inner: sess}, nil
}

// Start launches the solve in the background; cancelling ctx cancels it.
func (s *Session) Start(ctx context.Context) error { return s.inner.Start(ctx) }

// Incumbents streams incumbent points while the solve runs. The channel
// closes after the final point; slow consumers drop old points, never the
// final one.
func (s *Session) Incumbents() <-chan Incumbent { return s.inner.Incumbents() }

// Wait blocks until the solve completes and returns its Outcome.
func (s *Session) Wait() (*Outcome, error) { return s.inner.Wait() }

// Run is Start followed by Wait.
func (s *Session) Run(ctx context.Context) (*Outcome, error) { return s.inner.Run(ctx) }

// Problem returns the problem this session solves.
func (s *Session) Problem() *Problem { return s.inner.Problem() }

// ApplyDelta derives a fresh, unstarted Session solving this session's
// problem with d applied. With Options.Cache set, the cached partitioning,
// incumbent and encoding skeletons migrate to the delta'd problem, so the
// derived session re-partitions only the touched region. The receiver is
// unaffected and may be running or finished.
func (s *Session) ApplyDelta(d Delta) (*Session, error) {
	inner, err := s.inner.ApplyDelta(d)
	if err != nil {
		return nil, err
	}
	return &Session{inner: inner}, nil
}

// Cache is a cross-solve cache for recurring workloads; see Options.Cache.
// Safe for concurrent use by any number of sessions.
type Cache = solvecache.Cache

// CacheStats is a point-in-time snapshot of a Cache's counters.
type CacheStats = solvecache.Stats

// CacheOutcome describes one solve's cache interaction (Outcome.Cache).
type CacheOutcome = core.CacheOutcome

// NewCache returns a cross-solve cache bounded to maxEntries distinct
// problem structures (LRU eviction); maxEntries <= 0 selects the default
// bound.
func NewCache(maxEntries int) *Cache { return solvecache.New(maxEntries) }

// Delta is an incremental edit to an MQO problem, applied through
// Session.ApplyDelta: plan-cost and saving-value adjustments, query
// removals and query additions.
type Delta = mqo.Delta

// AddedQuery describes one query a Delta introduces.
type AddedQuery = mqo.AddedQuery

// Greedy returns the naive per-query cheapest-plan selection and its total
// cost — the baseline MQO improves on (Example 3.1).
func Greedy(p *Problem) (*Solution, float64) {
	s := mqo.GreedySolution(p)
	return s, s.Cost(p)
}

// Cost evaluates a solution's total cost on p (plan costs minus realised
// savings).
func Cost(p *Problem, s *Solution) float64 { return s.Cost(p) }

// SweepConfig re-exports the parameter-sweep generator configuration
// (Sec. 5.2.1 of the paper).
type SweepConfig = workload.SweepConfig

// GenerateSweep produces a synthetic MQO instance with controlled query
// communities and savings densities.
func GenerateSweep(cfg SweepConfig) (*Problem, error) {
	in, err := workload.GenerateSweep(cfg)
	if err != nil {
		return nil, err
	}
	return in.Problem, nil
}

// BenchConfig re-exports the benchmark-derived generator configuration
// (Sec. 5.3.1 of the paper).
type BenchConfig = workload.BenchConfig

// Benchmark names accepted by GenerateBenchmark.
const (
	BenchmarkTPCH = "tpch"
	BenchmarkLDBC = "ldbc"
	BenchmarkJOB  = "job"
)

// GenerateBenchmark extrapolates an MQO scenario from one of the built-in
// query-optimisation benchmark catalogues (tpch, ldbc, job).
func GenerateBenchmark(benchmark string, queries, ppq int, seed int64) (*Problem, error) {
	cat, ok := workload.Catalogues()[benchmark]
	if !ok {
		return nil, fmt.Errorf("incranneal: unknown benchmark %q (want tpch, ldbc or job)", benchmark)
	}
	in, err := workload.GenerateBench(workload.BenchConfig{Catalogue: cat, Queries: queries, PPQ: ppq, Seed: seed})
	if err != nil {
		return nil, err
	}
	return in.Problem, nil
}
