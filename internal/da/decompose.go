package da

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"incranneal/internal/qubo"
	"incranneal/internal/solver"
)

// SolveLarge solves a QUBO of arbitrary size on the capacity-limited
// device, standing in for Fujitsu's *default partitioning* mode ("DA
// (Default)" in the paper). Fujitsu does not disclose its algorithm (paper
// footnote 1); this implementation is the standard vendor-style
// clamp-and-refine decomposition, deliberately MQO-oblivious so it contrasts
// with the paper's tailored partitioning:
//
//  1. Block the variables into groups of at most the device capacity by
//     greedily growing blocks along the variable-interaction graph
//     (breadth-first from high-degree seeds), which keeps strongly coupled
//     variables together without any knowledge of the problem's semantics.
//  2. Starting from a random full assignment, repeatedly sweep over the
//     blocks: clamp all variables outside the block, fold the clamped
//     couplings into the block's linear terms, solve the resulting
//     sub-QUBO on the device, and adopt the block solution when it lowers
//     the global energy.
//
// The per-block step budget divides the request's total budget so the
// overall number of annealing steps matches a direct solve, mirroring the
// paper's constant-iteration comparisons.
func (s *Solver) SolveLarge(ctx context.Context, req solver.Request) (*solver.Result, error) {
	m := req.Model
	if m == nil || m.NumVariables() == 0 {
		return nil, errEmptyModel
	}
	if m.NumVariables() <= s.Capacity() {
		return s.Solve(ctx, req)
	}
	start := time.Now()
	blocks := s.blockVariables(m)
	rounds := 3
	// Keep the overall annealing budget identical to a direct solve, as
	// the paper does when comparing processing strategies: the request's
	// total step budget divides across every block solve of every round.
	perBlock := s.steps(req) / (len(blocks) * rounds)
	if perBlock < 500 {
		perBlock = 500
	}
	rng := rand.New(rand.NewSource(req.Seed))
	x := make([]int8, m.NumVariables())
	for i := range x {
		x[i] = int8(rng.Intn(2))
	}
	st := qubo.NewState(m)
	st.Reset(x)
	best := st.Copy()
	sweeps := 0
	for round := 0; round < rounds; round++ {
		improvedAny := false
		for _, block := range blocks {
			if solver.Interrupted(ctx) {
				break
			}
			sub, err := clampedSubModel(m, block, st)
			if err != nil {
				return nil, err
			}
			subReq := solver.Request{Model: sub, Runs: req.Runs, Sweeps: perBlock, Seed: rng.Int63()}
			subRes, err := s.Solve(ctx, subReq)
			if err != nil {
				return nil, err
			}
			sweeps += subRes.Sweeps
			bestSub, ok := subRes.Best()
			if !ok {
				// A cancelled block solve yields no sample; keep the current
				// assignment and let the outer loop wind down.
				continue
			}
			// Adopt the block assignment when it lowers global energy; the
			// clamped sub-model's energy differs from the global energy by
			// a constant, so any sub-improvement is a global improvement.
			before := st.Energy()
			prev := make([]int8, len(block))
			for bi, v := range block {
				prev[bi] = st.Get(v)
				if st.Get(v) != bestSub.Assignment[bi] {
					st.Flip(v)
				}
			}
			if st.Energy() < before {
				improvedAny = true
			} else if st.Energy() > before {
				for bi, v := range block {
					if st.Get(v) != prev[bi] {
						st.Flip(v)
					}
				}
			}
			if st.Energy() < best.Energy() {
				best = st.Copy()
			}
		}
		if !improvedAny || solver.Interrupted(ctx) {
			break
		}
	}
	res := &solver.Result{
		Samples: []solver.Sample{{Assignment: best.Assignment(), Energy: best.Energy()}},
		Sweeps:  sweeps,
		Elapsed: time.Since(start),
	}
	return res, nil
}

// blockVariables greedily grows variable blocks of at most the device
// capacity along the interaction graph, seeding each block at the
// highest-degree unassigned variable.
func (s *Solver) blockVariables(m *qubo.Model) [][]int {
	n := m.NumVariables()
	capacity := s.Capacity()
	assigned := make([]bool, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return m.Degree(order[a]) > m.Degree(order[b]) })
	neighbours := make([][]int, n)
	for _, t := range m.Terms() {
		neighbours[t.I] = append(neighbours[t.I], t.J)
		neighbours[t.J] = append(neighbours[t.J], t.I)
	}
	var blocks [][]int
	for _, seed := range order {
		if assigned[seed] {
			continue
		}
		block := []int{seed}
		assigned[seed] = true
		queue := []int{seed}
		for len(queue) > 0 && len(block) < capacity {
			v := queue[0]
			queue = queue[1:]
			for _, nb := range neighbours[v] {
				if assigned[nb] || len(block) >= capacity {
					continue
				}
				assigned[nb] = true
				block = append(block, nb)
				queue = append(queue, nb)
			}
		}
		blocks = append(blocks, block)
	}
	return blocks
}

// clampedSubModel builds the sub-QUBO over the block's variables with all
// other variables clamped to their value in st: couplings between a block
// variable and an outside variable fold into the block variable's linear
// coefficient when the outside variable is 1.
func clampedSubModel(m *qubo.Model, block []int, st *qubo.State) (*qubo.Model, error) {
	localOf := make(map[int]int, len(block))
	for li, v := range block {
		localOf[v] = li
	}
	b := qubo.NewBuilder(len(block))
	for li, v := range block {
		b.AddLinear(li, m.Linear(v))
	}
	for _, t := range m.Terms() {
		li, inI := localOf[t.I]
		lj, inJ := localOf[t.J]
		switch {
		case inI && inJ:
			b.AddQuadratic(li, lj, t.Coeff)
		case inI && st.Get(t.J) != 0:
			b.AddLinear(li, t.Coeff)
		case inJ && st.Get(t.I) != 0:
			b.AddLinear(lj, t.Coeff)
		}
	}
	return b.Build(), nil
}
