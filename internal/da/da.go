// Package da implements a software Digital Annealer: a faithful simulator
// of Fujitsu's quantum-inspired annealing unit as published by Aramon et
// al. (Frontiers in Physics, 2019), which the paper uses as its primary
// device. The simulator reproduces the algorithmic properties the paper's
// results depend on:
//
//   - parallel-trial Monte Carlo: every Monte-Carlo step evaluates the
//     energy delta of flipping each of the N variables (the hardware does
//     this concurrently) and performs one flip drawn uniformly from the
//     accepted candidates, which substantially boosts the state-update
//     probability over single-flip SA;
//   - dynamic offset escape: if no flip is accepted in a step, an energy
//     offset is added to every subsequent acceptance test and grows until a
//     move is accepted, helping escape local minima; any accepted move
//     resets the offset;
//   - an exponential temperature schedule; and
//   - a hard variable capacity (8,192 on the real device) that forces
//     partitioning of larger problems, which is precisely the limitation
//     the paper's incremental method addresses.
//
// Problems above capacity can be handed to SolveLarge (see decompose.go),
// which stands in for Fujitsu's undisclosed default partitioning method.
package da

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"incranneal/internal/obs"
	"incranneal/internal/qubo"
	"incranneal/internal/solver"
)

// HardwareCapacity is the variable capacity of the second-generation
// Fujitsu Digital Annealer the paper reports (8,192 variables).
const HardwareCapacity = 8192

// Solver is a Digital Annealer simulator. The zero value models the real
// device: capacity 8,192, 16 runs, dynamic offset enabled, parallel-trial
// acceptance.
type Solver struct {
	// CapacityVars is the device variable capacity; zero means
	// HardwareCapacity. Tests and scaled-down experiments configure smaller
	// devices, exercising the same code paths the real 8,192-variable
	// device would.
	CapacityVars int
	// DefaultRuns is used when a request leaves Runs zero (default 16, the
	// paper's setting).
	DefaultRuns int
	// DefaultSteps is used when a request leaves Sweeps zero; zero derives
	// a budget from the problem size. For the DA, Request.Sweeps is the
	// total number of Monte-Carlo steps per run (each step evaluates all
	// variables once and performs at most one flip).
	DefaultSteps int
	// OffsetIncreaseRate controls how fast the dynamic offset grows while
	// the state is stuck, in units of the mean absolute coefficient. Zero
	// means the default of 1.
	OffsetIncreaseRate float64
	// DisableDynamicOffset turns the escape mechanism off (ablation).
	DisableDynamicOffset bool
	// SingleFlip replaces parallel-trial acceptance with conventional
	// single-variable Metropolis sweeps (ablation: what the special-purpose
	// architecture adds over its own algorithm run serially).
	SingleFlip bool
	// PTReplicas sets the temperature-ladder size of the parallel
	// tempering mode (SolvePT); zero means PTReplicasDefault.
	PTReplicas int
}

// errEmptyModel reports a request without variables.
var errEmptyModel = fmt.Errorf("da: empty model")

// Name implements solver.Solver.
func (s *Solver) Name() string { return "da" }

// Capacity implements solver.Solver.
func (s *Solver) Capacity() int {
	if s.CapacityVars > 0 {
		return s.CapacityVars
	}
	return HardwareCapacity
}

func (s *Solver) runs(req solver.Request) int {
	if req.Runs > 0 {
		return req.Runs
	}
	if s.DefaultRuns > 0 {
		return s.DefaultRuns
	}
	return 16
}

func (s *Solver) steps(req solver.Request) int {
	if req.Sweeps > 0 {
		return req.Sweeps
	}
	if s.DefaultSteps > 0 {
		return s.DefaultSteps
	}
	n := req.Model.NumVariables()
	st := 20 * n
	if st < 2000 {
		st = 2000
	}
	if st > 60000 {
		st = 60000
	}
	return st
}

// runParams carries the model-derived invariants of a Solve shared by all
// of its runs: the schedule endpoints, the precomputed per-step temperature
// table and the dynamic-offset unit. They depend only on the model and the
// step budget, so they are computed once per Solve instead of once per run.
type runParams struct {
	temps   []float64 // temps[step] of the exponential schedule
	offUnit float64
}

// newRunParams hoists the per-run invariants of a Solve.
func (s *Solver) newRunParams(m *qubo.Model, steps int) runParams {
	tHot, tCold := temperatureRange(m)
	offRate := s.OffsetIncreaseRate
	if offRate <= 0 {
		offRate = 1
	}
	offUnit := meanAbsCoefficient(m) * offRate
	if offUnit == 0 {
		offUnit = 1
	}
	temps := make([]float64, steps)
	denom := float64(max(steps-1, 1))
	for step := range temps {
		temps[step] = tHot * math.Pow(tCold/tHot, float64(step)/denom)
	}
	return runParams{temps: temps, offUnit: offUnit}
}

// expVariate returns −ln(u) for u drawn uniformly from (0,1]. rand.Float64
// covers the half-open [0,1): drawing it directly would occasionally yield
// exactly 0 and make the acceptance threshold +Inf, silently accepting
// every variable for that step, so the draw is mirrored onto (0,1].
func expVariate(rng *rand.Rand) float64 {
	return -math.Log(1 - rng.Float64())
}

// Solve implements solver.Solver for problems within device capacity. The
// request's independent runs execute on a bounded worker pool (see
// Request.Parallelism); per-run RNGs derive from the request seed before
// dispatch, so results are identical for every worker count.
func (s *Solver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	m := req.Model
	if m == nil || m.NumVariables() == 0 {
		return nil, errEmptyModel
	}
	if err := solver.CheckCapacity(s, m); err != nil {
		return nil, err
	}
	start := time.Now()
	deadline := time.Time{}
	if req.TimeBudget > 0 {
		deadline = start.Add(req.TimeBudget)
	}
	sink := obs.FromContext(ctx)
	label := ""
	if sink.Enabled() {
		label = obs.LabelFromContext(ctx)
	}
	runs, steps := s.runs(req), s.steps(req)
	prm := s.newRunParams(m, steps)
	seeds := solver.RunSeeds(req.Seed, runs)
	samples := make([]solver.Sample, runs)
	performed := make([]int, runs)
	done := make([]bool, runs)
	body := func(run int) {
		// The first run always executes (a Result must hold at least one
		// sample; anneal returns quickly under cancellation); later runs
		// are skipped once the budget is exhausted, mirroring the
		// sequential early exit.
		if run > 0 && (solver.Interrupted(ctx) || (!deadline.IsZero() && time.Now().After(deadline))) {
			return
		}
		rt := sink.StartRun("da", label, run)
		rng := rand.New(rand.NewSource(seeds[run]))
		st := solver.InitialState(req, run, runs, rng)
		sample, p := s.anneal(ctx, m, prm, st, rng, deadline, rt)
		samples[run], performed[run], done[run] = sample, p, true
	}
	workers := solver.Workers(req.Parallelism)
	if sink.Enabled() {
		ps := solver.ForEachRunStats(runs, workers, body)
		sink.Pool("da", label, ps.Runs, ps.Workers, ps.Busy, ps.Wall)
	} else {
		solver.ForEachRun(runs, workers, body)
	}
	res := &solver.Result{}
	for run := range samples {
		if done[run] {
			res.Samples = append(res.Samples, samples[run])
			res.Sweeps += performed[run]
		}
	}
	res.SortSamples()
	res.Elapsed = time.Since(start)
	return res, nil
}

// anneal performs one Digital Annealer run over the precomputed schedule
// and returns the best sample seen. rt records the run's convergence
// trajectory and acceptance counters; a nil rt (tracing disabled) keeps the
// loop allocation-free — every recorder call is one nil-check branch.
func (s *Solver) anneal(ctx context.Context, m *qubo.Model, prm runParams, st *qubo.State, rng *rand.Rand, deadline time.Time, rt *obs.RunTrace) (solver.Sample, int) {
	n := m.NumVariables()
	var best qubo.BestTracker
	best.Observe(st)
	rt.Observe(0, best.Energy())
	offset := 0.0
	performed := 0
	var flips int64
	checkEvery := 256
	for step := 0; step < len(prm.temps); step++ {
		if step%checkEvery == 0 {
			if solver.Interrupted(ctx) || (!deadline.IsZero() && time.Now().After(deadline)) {
				break
			}
		}
		temp := prm.temps[step]
		if s.SingleFlip {
			// Ablation: conventional SA step — one uniformly chosen
			// variable per step, Metropolis acceptance.
			v := rng.Intn(n)
			delta := st.DeltaEnergy(v)
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				st.Flip(v)
				flips++
			}
			performed++
			if best.Observe(st) {
				rt.Observe(step, best.Energy())
			}
			continue
		}
		// Parallel trial: acceptance test rand < exp(−(ΔE−offset)/T) is
		// equivalent to ΔE < offset − T·ln(rand). Drawing one shared rand
		// per step yields the same per-variable marginal acceptance
		// probability while letting the scan run as two tight passes over
		// the state's flat delta array: count candidates below the
		// threshold, then pick one uniformly.
		theta := offset + temp*expVariate(rng)
		accepted := st.CountBelow(theta)
		if accepted == 0 {
			if !s.DisableDynamicOffset {
				offset += prm.offUnit
			}
			performed++
			continue
		}
		st.Flip(st.PickKthBelow(theta, rng.Intn(accepted)))
		flips++
		offset = 0
		performed++
		if best.Observe(st) {
			rt.Observe(step, best.Energy())
		}
	}
	rt.Finish(performed, flips, int64(performed))
	return solver.Sample{Assignment: best.Assignment(), Energy: best.Energy()}, performed
}

// temperatureRange derives the exponential schedule endpoints from the
// model's coefficient magnitudes: hot enough to accept the worst move with
// probability ~1/2, cold enough to freeze the smallest move.
func temperatureRange(m *qubo.Model) (hot, cold float64) {
	maxDelta, minDelta := 0.0, math.Inf(1)
	incident := make([]float64, m.NumVariables())
	for _, t := range m.Terms() {
		a := math.Abs(t.Coeff)
		incident[t.I] += a
		incident[t.J] += a
		if a > 0 && a < minDelta {
			minDelta = a
		}
	}
	for i := 0; i < m.NumVariables(); i++ {
		l := math.Abs(m.Linear(i))
		if l > 0 && l < minDelta {
			minDelta = l
		}
		maxDelta = math.Max(maxDelta, l+incident[i])
	}
	if maxDelta == 0 {
		maxDelta = 1
	}
	if math.IsInf(minDelta, 1) {
		minDelta = 1
	}
	hot = maxDelta / math.Ln2
	cold = minDelta / math.Log(100)
	if cold >= hot {
		cold = hot / 100
	}
	return hot, cold
}

func meanAbsCoefficient(m *qubo.Model) float64 {
	var sum float64
	var count int
	for i := 0; i < m.NumVariables(); i++ {
		if l := m.Linear(i); l != 0 {
			sum += math.Abs(l)
			count++
		}
	}
	for _, t := range m.Terms() {
		sum += math.Abs(t.Coeff)
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
