package da

import (
	"testing"

	"incranneal/internal/qubo"
	"incranneal/internal/solver"
)

func modelOf(n int) *qubo.Model {
	b := qubo.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddLinear(i, 1)
	}
	return b.Build()
}

func TestStepBudgetDefaults(t *testing.T) {
	s := &Solver{}
	// Explicit request wins.
	if got := s.steps(solver.Request{Model: modelOf(10), Sweeps: 123}); got != 123 {
		t.Errorf("explicit sweeps = %d, want 123", got)
	}
	// Solver default wins next.
	s2 := &Solver{DefaultSteps: 777}
	if got := s2.steps(solver.Request{Model: modelOf(10)}); got != 777 {
		t.Errorf("solver default = %d, want 777", got)
	}
	// Derived budget: 20·n clamped to [2,000, 60,000].
	if got := s.steps(solver.Request{Model: modelOf(10)}); got != 2000 {
		t.Errorf("small-model floor = %d, want 2000", got)
	}
	if got := s.steps(solver.Request{Model: modelOf(1000)}); got != 20000 {
		t.Errorf("mid-model budget = %d, want 20000", got)
	}
	if got := s.steps(solver.Request{Model: modelOf(10000)}); got != 60000 {
		t.Errorf("large-model cap = %d, want 60000", got)
	}
}

func TestRunsDefaults(t *testing.T) {
	s := &Solver{}
	if got := s.runs(solver.Request{}); got != 16 {
		t.Errorf("default runs = %d, want the paper's 16", got)
	}
	if got := s.runs(solver.Request{Runs: 3}); got != 3 {
		t.Errorf("explicit runs = %d, want 3", got)
	}
	s.DefaultRuns = 5
	if got := s.runs(solver.Request{}); got != 5 {
		t.Errorf("solver default runs = %d, want 5", got)
	}
}

func TestTemperatureRangeOrdering(t *testing.T) {
	b := qubo.NewBuilder(3)
	b.AddLinear(0, 4)
	b.AddQuadratic(1, 2, -0.5)
	hot, cold := temperatureRange(b.Build())
	if !(cold > 0 && hot > cold) {
		t.Errorf("temperatureRange = (%v, %v), want hot > cold > 0", hot, cold)
	}
	// Degenerate all-zero model.
	hot, cold = temperatureRange(qubo.NewBuilder(2).Build())
	if !(cold > 0 && hot > cold) {
		t.Errorf("degenerate range = (%v, %v)", hot, cold)
	}
}

func TestMeanAbsCoefficient(t *testing.T) {
	b := qubo.NewBuilder(3)
	b.AddLinear(0, -4)
	b.AddQuadratic(1, 2, 2)
	if got := meanAbsCoefficient(b.Build()); got != 3 {
		t.Errorf("meanAbsCoefficient = %v, want 3", got)
	}
	if got := meanAbsCoefficient(qubo.NewBuilder(2).Build()); got != 0 {
		t.Errorf("empty model mean = %v, want 0", got)
	}
}
