package da

import (
	"context"
	"testing"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/qubo"
	"incranneal/internal/solver"
)

func TestSolvePTReachesPaperOptimum(t *testing.T) {
	p := mqo.PaperExample()
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	s := &Solver{}
	res, err := s.SolvePT(context.Background(), solver.Request{Model: enc.Model, Sweeps: 8000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Best()
	sol, err := enc.Decode(best.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Cost(p); got != 25 {
		t.Errorf("PT cost on paper example = %v, want 25", got)
	}
}

func TestSolvePTCapacityAndEmpty(t *testing.T) {
	s := &Solver{CapacityVars: 4}
	b := qubo.NewBuilder(8)
	b.AddLinear(0, 1)
	if _, err := s.SolvePT(context.Background(), solver.Request{Model: b.Build(), Seed: 1}); err == nil {
		t.Error("PT accepted over-capacity model")
	}
	if _, err := s.SolvePT(context.Background(), solver.Request{}); err == nil {
		t.Error("PT accepted nil model")
	}
}

func TestSolvePTSamplesAndRunsClamp(t *testing.T) {
	p := mqo.PaperExample()
	enc, _ := encoding.EncodeMQO(p)
	s := &Solver{PTReplicas: 4}
	res, err := s.SolvePT(context.Background(), solver.Request{Model: enc.Model, Runs: 2, Sweeps: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 2 {
		t.Errorf("samples = %d, want clamped 2", len(res.Samples))
	}
	res, err = s.SolvePT(context.Background(), solver.Request{Model: enc.Model, Sweeps: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Best + one per replica.
	if len(res.Samples) != 5 {
		t.Errorf("samples = %d, want 5 (best + 4 replicas)", len(res.Samples))
	}
}

func TestSolvePTEscapesFrustratedModel(t *testing.T) {
	// The two-cluster barrier model of the dynamic-offset test; tempering
	// must also reach the global optimum of −9.
	b := qubo.NewBuilder(6)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			b.AddQuadratic(i, j, -2)
			b.AddQuadratic(i+3, j+3, -3)
		}
	}
	for i := 0; i < 3; i++ {
		b.AddQuadratic(i, i+3, 10)
	}
	s := &Solver{}
	res, err := s.SolvePT(context.Background(), solver.Request{Model: b.Build(), Sweeps: 16000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if best, _ := res.Best(); best.Energy != -9 {
		t.Errorf("PT best energy = %v, want −9", best.Energy)
	}
}

func TestSolvePTDeterministic(t *testing.T) {
	p := mqo.PaperExample()
	enc, _ := encoding.EncodeMQO(p)
	s := &Solver{}
	req := solver.Request{Model: enc.Model, Sweeps: 1600, Seed: 9}
	r1, err := s.SolvePT(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.SolvePT(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := r1.Best()
	b2, _ := r2.Best()
	if b1.Energy != b2.Energy {
		t.Error("PT non-deterministic for fixed seed")
	}
}
