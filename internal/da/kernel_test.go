package da

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/qubo"
	"incranneal/internal/solver"
)

// zeroSource is a rand.Source that always yields 0, forcing
// rand.Float64() to return exactly 0 — the edge the acceptance threshold
// must survive.
type zeroSource struct{}

func (zeroSource) Int63() int64 { return 0 }
func (zeroSource) Seed(int64)   {}

// TestExpVariateFiniteOnZeroDraw is the regression test for the parallel
// trial threshold: Float64 can return exactly 0, and −ln(0) = +Inf would
// make theta infinite and silently accept every variable for that step.
// The (0,1]-mirrored draw keeps the variate finite and non-negative.
func TestExpVariateFiniteOnZeroDraw(t *testing.T) {
	rng := rand.New(zeroSource{})
	if got := rng.Float64(); got != 0 {
		t.Fatalf("zeroSource sanity: Float64 = %v, want 0", got)
	}
	v := expVariate(rand.New(zeroSource{}))
	if math.IsInf(v, 0) || math.IsNaN(v) || v < 0 {
		t.Fatalf("expVariate on zero draw = %v, want finite ≥ 0", v)
	}
}

func TestExpVariateDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := expVariate(rng)
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("expVariate = %v", v)
		}
		sum += v
	}
	// Exp(1) has mean 1.
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("expVariate mean = %v, want ≈ 1", mean)
	}
}

// parallelismSettings are the worker counts the determinism contract is
// checked against: sequential, a fixed small pool and whatever this
// machine's GOMAXPROCS resolves to.
func parallelismSettings() []int {
	return []int{-1, 1, 4, runtime.GOMAXPROCS(0)}
}

// assertSamplesIdentical solves req once per parallelism setting and
// requires bit-identical samples (energies and assignments).
func assertSamplesIdentical(t *testing.T, solve func(solver.Request) (*solver.Result, error), req solver.Request) {
	t.Helper()
	var ref *solver.Result
	for _, par := range parallelismSettings() {
		r := req
		r.Parallelism = par
		res, err := solve(r)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res.Samples) != len(ref.Samples) {
			t.Fatalf("parallelism %d: %d samples, want %d", par, len(res.Samples), len(ref.Samples))
		}
		for i := range res.Samples {
			if res.Samples[i].Energy != ref.Samples[i].Energy ||
				!reflect.DeepEqual(res.Samples[i].Assignment, ref.Samples[i].Assignment) {
				t.Fatalf("parallelism %d: sample %d differs", par, i)
			}
		}
		if res.Sweeps != ref.Sweeps {
			t.Errorf("parallelism %d: %d sweeps, want %d", par, res.Sweeps, ref.Sweeps)
		}
	}
}

func TestSolveDeterministicAcrossParallelism(t *testing.T) {
	p := mqo.PaperExample()
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	s := &Solver{}
	assertSamplesIdentical(t, func(r solver.Request) (*solver.Result, error) {
		return s.Solve(context.Background(), r)
	}, solver.Request{Model: enc.Model, Runs: 8, Sweeps: 400, Seed: 42})
}

func TestSolvePTDeterministicAcrossParallelism(t *testing.T) {
	p := mqo.PaperExample()
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	s := &Solver{}
	assertSamplesIdentical(t, func(r solver.Request) (*solver.Result, error) {
		return s.SolvePT(context.Background(), r)
	}, solver.Request{Model: enc.Model, Sweeps: 2000, Seed: 42})
}

// BenchmarkKernelDAStep measures one parallel-trial Monte-Carlo step — the
// threshold draw plus the two delta-array scans — at a partition-sized
// variable count.
func BenchmarkKernelDAStep(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	bld := qubo.NewBuilder(512)
	for i := 0; i < 512; i++ {
		bld.AddLinear(i, rng.NormFloat64()*10)
	}
	for k := 0; k < 512*13; k++ {
		i, j := rng.Intn(512), rng.Intn(512)
		if i != j {
			bld.AddQuadratic(i, j, rng.NormFloat64()*10)
		}
	}
	m := bld.Build()
	s := &Solver{}
	st := qubo.NewRandomState(m, rng)
	hot, cold := temperatureRange(m)
	temp := math.Sqrt(hot * cold)
	offUnit := meanAbsCoefficient(m)
	offset := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.parallelTrialStep(st, temp, &offset, offUnit, rng)
	}
}
