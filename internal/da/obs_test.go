package da

import (
	"context"
	"io"
	"math"
	"math/rand"
	"testing"
	"time"

	"incranneal/internal/obs"
	"incranneal/internal/qubo"
	"incranneal/internal/solver"
)

func obsBenchModel(n int) *qubo.Model {
	rng := rand.New(rand.NewSource(42))
	bld := qubo.NewBuilder(n)
	for i := 0; i < n; i++ {
		bld.AddLinear(i, rng.NormFloat64()*10)
	}
	for k := 0; k < n*13; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			bld.AddQuadratic(i, j, rng.NormFloat64()*10)
		}
	}
	return bld.Build()
}

// TestDisabledSinkStepNoAllocs pins the zero-overhead contract at the kernel
// level: one parallel-trial Monte-Carlo step allocates nothing, with the
// instrumentation compiled in but disabled (nil RunTrace).
func TestDisabledSinkStepNoAllocs(t *testing.T) {
	m := obsBenchModel(256)
	s := &Solver{}
	rng := rand.New(rand.NewSource(7))
	st := qubo.NewRandomState(m, rng)
	hot, cold := temperatureRange(m)
	temp := math.Sqrt(hot * cold)
	offUnit := meanAbsCoefficient(m)
	offset := 0.0
	allocs := testing.AllocsPerRun(200, func() {
		s.parallelTrialStep(st, temp, &offset, offUnit, rng)
	})
	if allocs != 0 {
		t.Errorf("kernel step allocates %.1f objects/op with tracing disabled, want 0", allocs)
	}
}

// TestDisabledSinkAnnealNoPerStepAllocs pins that a full disabled-sink
// anneal's allocation count is independent of the sweep count: everything it
// allocates is per-run setup, nothing accumulates per Monte-Carlo step.
func TestDisabledSinkAnnealNoPerStepAllocs(t *testing.T) {
	m := obsBenchModel(128)
	s := &Solver{}
	ctx := context.Background()
	annealAllocs := func(steps int) float64 {
		prm := s.newRunParams(m, steps)
		return testing.AllocsPerRun(10, func() {
			rng := rand.New(rand.NewSource(3))
			s.anneal(ctx, m, prm, qubo.NewRandomState(m, rng), rng, time.Time{}, nil)
		})
	}
	short, long := annealAllocs(100), annealAllocs(4000)
	if short != long {
		t.Errorf("anneal allocations scale with sweeps when disabled: %v @100 vs %v @4000", short, long)
	}
}

// BenchmarkObsOverhead compares a full DA solve with the observability sink
// disabled (the default; must match the pre-instrumentation cost recorded in
// BENCH_kernels.json) against one tracing to a discarded JSONL stream with
// metrics — the worst-case enabled cost (BENCH_obs.json).
func BenchmarkObsOverhead(b *testing.B) {
	m := obsBenchModel(128)
	s := &Solver{}
	req := solver.Request{Model: m, Runs: 4, Sweeps: 2000, Seed: 11, Parallelism: -1}
	b.Run("disabled", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		sink := obs.NewSink(io.Discard, obs.NewRegistry())
		ctx := obs.NewContext(context.Background(), sink)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}
