package da

import (
	"context"
	"math"
	"testing"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/qubo"
	"incranneal/internal/solver"
)

func TestCapacityDefaultsToHardware(t *testing.T) {
	s := &Solver{}
	if got := s.Capacity(); got != HardwareCapacity {
		t.Errorf("Capacity = %d, want %d", got, HardwareCapacity)
	}
	s.CapacityVars = 64
	if got := s.Capacity(); got != 64 {
		t.Errorf("Capacity override = %d, want 64", got)
	}
}

func TestSolveRejectsOverCapacity(t *testing.T) {
	s := &Solver{CapacityVars: 4}
	b := qubo.NewBuilder(8)
	b.AddLinear(0, 1)
	_, err := s.Solve(context.Background(), solver.Request{Model: b.Build(), Seed: 1})
	if err == nil {
		t.Fatal("Solve accepted over-capacity model")
	}
}

func TestSolvesPaperExampleToOptimum(t *testing.T) {
	p := mqo.PaperExample()
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	s := &Solver{}
	res, err := s.Solve(context.Background(), solver.Request{Model: enc.Model, Runs: 8, Sweeps: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Best()
	sol, err := enc.Decode(best.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Cost(p); got != 25 {
		t.Errorf("DA cost on paper example = %v, want 25", got)
	}
}

func TestDynamicOffsetEscapesLocalMinimum(t *testing.T) {
	// A frustrated two-cluster model with a deep local minimum: strong
	// negative couplings inside clusters, a large barrier between them.
	// With the dynamic offset disabled and a cold start the sampler tends
	// to stay near its start; with the offset enabled it escapes. We only
	// assert the enabled variant reaches the global optimum reliably.
	b := qubo.NewBuilder(6)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			b.AddQuadratic(i, j, -2)
			b.AddQuadratic(i+3, j+3, -3)
		}
	}
	for i := 0; i < 3; i++ {
		b.AddQuadratic(i, i+3, 10) // clusters exclude each other
	}
	m := b.Build()
	// Global optimum: second cluster all ones → −9.
	s := &Solver{}
	res, err := s.Solve(context.Background(), solver.Request{Model: m, Runs: 4, Sweeps: 3000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if best, _ := res.Best(); best.Energy != -9 {
		t.Errorf("best energy = %v, want −9", best.Energy)
	}
}

func TestSingleFlipAblationStillSolves(t *testing.T) {
	p := mqo.PaperExample()
	enc, _ := encoding.EncodeMQO(p)
	s := &Solver{SingleFlip: true}
	res, err := s.Solve(context.Background(), solver.Request{Model: enc.Model, Runs: 8, Sweeps: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := res.Best()
	sol, _ := enc.Decode(b.Assignment)
	if err := sol.Validate(p); err != nil {
		t.Fatalf("single-flip produced invalid solution: %v", err)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	p := mqo.PaperExample()
	enc, _ := encoding.EncodeMQO(p)
	s := &Solver{}
	req := solver.Request{Model: enc.Model, Runs: 3, Sweeps: 500, Seed: 77}
	r1, _ := s.Solve(context.Background(), req)
	r2, _ := s.Solve(context.Background(), req)
	for i := range r1.Samples {
		if r1.Samples[i].Energy != r2.Samples[i].Energy {
			t.Fatalf("non-deterministic DA for fixed seed")
		}
	}
}

func TestSampleEnergyMatchesAssignment(t *testing.T) {
	p := mqo.PaperExample()
	enc, _ := encoding.EncodeMQO(p)
	s := &Solver{}
	res, err := s.Solve(context.Background(), solver.Request{Model: enc.Model, Runs: 4, Sweeps: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range res.Samples {
		if got := enc.Model.Energy(smp.Assignment); math.Abs(got-smp.Energy) > 1e-9 {
			t.Errorf("reported energy %v, recomputed %v", smp.Energy, got)
		}
	}
}

func TestSolveLargeDecomposes(t *testing.T) {
	// 12 variables on a 4-variable device: SolveLarge must still produce
	// a full-length assignment and a reasonable energy.
	p := mqo.PaperExample() // 8 plans
	enc, _ := encoding.EncodeMQO(p)
	s := &Solver{CapacityVars: 4}
	res, err := s.SolveLarge(context.Background(), solver.Request{Model: enc.Model, Runs: 4, Sweeps: 1500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	best, ok := res.Best()
	if !ok {
		t.Fatal("no samples")
	}
	if len(best.Assignment) != 8 {
		t.Fatalf("assignment length = %d, want 8", len(best.Assignment))
	}
	sol, err := enc.Decode(best.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatalf("decomposed solve produced invalid solution: %v", err)
	}
	// The vendor-style decomposition is the weak baseline; it must still
	// beat a never-shared selection on this tiny instance.
	if cost := sol.Cost(p); cost > 36 {
		t.Errorf("decomposed cost = %v, want ≤ 36", cost)
	}
}

func TestSolveLargeWithinCapacityDelegates(t *testing.T) {
	p := mqo.PaperExample()
	enc, _ := encoding.EncodeMQO(p)
	s := &Solver{CapacityVars: 64}
	res, err := s.SolveLarge(context.Background(), solver.Request{Model: enc.Model, Runs: 4, Sweeps: 1000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 4 {
		t.Errorf("direct delegation should keep per-run samples, got %d", len(res.Samples))
	}
}

func TestBlockVariablesCoverAllOnce(t *testing.T) {
	b := qubo.NewBuilder(50)
	for i := 0; i < 49; i++ {
		b.AddQuadratic(i, i+1, -1)
	}
	m := b.Build()
	s := &Solver{CapacityVars: 8}
	blocks := s.blockVariables(m)
	seen := make([]bool, 50)
	for _, blk := range blocks {
		if len(blk) > 8 {
			t.Fatalf("block exceeds capacity: %d", len(blk))
		}
		for _, v := range blk {
			if seen[v] {
				t.Fatalf("variable %d in two blocks", v)
			}
			seen[v] = true
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("variable %d in no block", v)
		}
	}
}

func TestClampedSubModelEnergyAlignment(t *testing.T) {
	// For fixed outside variables, sub-model energy differences must equal
	// global energy differences.
	b := qubo.NewBuilder(6)
	for i := 0; i < 6; i++ {
		b.AddLinear(i, float64(i)-2.5)
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddQuadratic(i, j, float64(i-j))
		}
	}
	m := b.Build()
	st := qubo.NewState(m)
	st.Reset([]int8{1, 0, 1, 1, 0, 1})
	block := []int{1, 3, 5}
	sub, err := clampedSubModel(m, block, st)
	if err != nil {
		t.Fatal(err)
	}
	full := st.Assignment()
	subX := []int8{full[1], full[3], full[5]}
	baseSub, baseFull := sub.Energy(subX), m.Energy(full)
	// Flip each block variable and compare deltas.
	for bi, v := range block {
		subX[bi] ^= 1
		full[v] ^= 1
		dSub := sub.Energy(subX) - baseSub
		dFull := m.Energy(full) - baseFull
		if math.Abs(dSub-dFull) > 1e-9 {
			t.Errorf("block var %d: sub delta %v, full delta %v", v, dSub, dFull)
		}
		subX[bi] ^= 1
		full[v] ^= 1
	}
}
