package da

import (
	"context"
	"math"
	"math/rand"
	"time"

	"incranneal/internal/obs"
	"incranneal/internal/qubo"
	"incranneal/internal/solver"
)

// Parallel tempering is the Digital Annealer's second operating mode
// described by Aramon et al. (2019): instead of sweeping one state through
// a cooling schedule, the device holds a ladder of replicas at *fixed*
// temperatures, advances each with the same parallel-trial Monte-Carlo
// step, and periodically attempts replica exchanges between neighbouring
// temperatures with the Metropolis criterion
//
//	P(swap i↔i+1) = min(1, exp((1/T_i − 1/T_{i+1})·(E_i − E_{i+1}))).
//
// Hot replicas roam the landscape while cold replicas exploit, and swaps
// carry good configurations down the ladder — stronger than annealing on
// rugged energy landscapes at the cost of running several replicas.

// PTReplicasDefault is the default temperature-ladder size.
const PTReplicasDefault = 8

// SolvePT runs the Digital Annealer in parallel-tempering mode. The
// request's Sweeps is the per-replica Monte-Carlo step budget; exchanges
// are attempted every exchange interval. Samples of the result are the
// per-replica best states.
func (s *Solver) SolvePT(ctx context.Context, req solver.Request) (*solver.Result, error) {
	m := req.Model
	if m == nil || m.NumVariables() == 0 {
		return nil, errEmptyModel
	}
	if err := solver.CheckCapacity(s, m); err != nil {
		return nil, err
	}
	start := time.Now()
	deadline := time.Time{}
	if req.TimeBudget > 0 {
		deadline = start.Add(req.TimeBudget)
	}
	rng := rand.New(rand.NewSource(req.Seed))
	replicas := s.PTReplicas
	if replicas <= 0 {
		replicas = PTReplicasDefault
	}
	steps := s.steps(req) / replicas
	if steps < 100 {
		steps = 100
	}
	tHot, tCold := temperatureRange(m)
	// Geometric temperature ladder from cold (index 0) to hot.
	temps := make([]float64, replicas)
	for i := range temps {
		frac := float64(i) / float64(maxIntPT(replicas-1, 1))
		temps[i] = tCold * math.Pow(tHot/tCold, frac)
	}
	states := make([]*qubo.State, replicas)
	rngs := make([]*rand.Rand, replicas)
	for i := range states {
		states[i] = solver.InitialState(req, i, replicas, rng)
		rngs[i] = rand.New(rand.NewSource(rng.Int63()))
	}
	// Per-slot best trackers: replicas interact only at exchange barriers,
	// so between exchanges every ladder slot advances independently on the
	// worker pool with its own pre-derived RNG stream — results match the
	// sequential schedule for every worker count. The global best is the
	// minimum over all slot observations, taken at the end.
	trackers := make([]qubo.BestTracker, replicas)
	for i, st := range states {
		trackers[i].Observe(st)
	}
	offsets := make([]float64, replicas)
	offUnit := meanAbsCoefficient(m)
	if offUnit == 0 {
		offUnit = 1
	}
	exchangeEvery := 20
	workers := solver.Workers(req.Parallelism)
	performed := 0
	// Observability: one RunTrace covers the whole ladder (the ladder is one
	// logical anneal); per-slot flip counters and the incumbent scan after
	// each segment exist only when a sink is present, so the disabled path
	// allocates and computes exactly what the pre-instrumentation code did.
	sink := obs.FromContext(ctx)
	var rt *obs.RunTrace
	var flipCounts []int64
	var pool solver.PoolStats
	bestSeen := math.Inf(1)
	if sink.Enabled() {
		rt = sink.StartRun("da-pt", obs.LabelFromContext(ctx), 0)
		flipCounts = make([]int64, replicas)
		for _, t := range trackers {
			if t.Energy() < bestSeen {
				bestSeen = t.Energy()
			}
		}
		rt.Observe(0, bestSeen)
	}
	for done := 0; done < steps; done += exchangeEvery {
		if solver.Interrupted(ctx) || (!deadline.IsZero() && time.Now().After(deadline)) {
			break
		}
		segment := exchangeEvery
		if rest := steps - done; segment > rest {
			segment = rest
		}
		body := func(i int) {
			st := states[i]
			for k := 0; k < segment; k++ {
				if s.parallelTrialStep(st, temps[i], &offsets[i], offUnit, rngs[i]) && flipCounts != nil {
					flipCounts[i]++
				}
				trackers[i].Observe(st)
			}
		}
		if rt != nil {
			pool.Add(solver.ForEachRunStats(replicas, workers, body))
			improved := false
			for i := range trackers {
				if e := trackers[i].Energy(); e < bestSeen {
					bestSeen, improved = e, true
				}
			}
			if improved {
				rt.Observe((done+segment)*replicas, bestSeen)
			}
		} else {
			solver.ForEachRun(replicas, workers, body)
		}
		performed += segment
		// A full interval ends with an exchange pass; the trailing partial
		// segment (if any) does not, matching the per-step schedule.
		if segment == exchangeEvery {
			for i := 0; i+1 < replicas; i++ {
				delta := (1/temps[i] - 1/temps[i+1]) * (states[i].Energy() - states[i+1].Energy())
				if delta >= 0 || rng.Float64() < math.Exp(delta) {
					states[i], states[i+1] = states[i+1], states[i]
					offsets[i], offsets[i+1] = offsets[i+1], offsets[i]
				}
			}
		}
	}
	if rt != nil {
		var flips int64
		for _, f := range flipCounts {
			flips += f
		}
		rt.Finish(performed*replicas, flips, int64(performed*replicas))
		sink.Pool("da-pt", obs.LabelFromContext(ctx), pool.Runs, pool.Workers, pool.Busy, pool.Wall)
	}
	bestIdx := 0
	for i := 1; i < replicas; i++ {
		if trackers[i].Energy() < trackers[bestIdx].Energy() {
			bestIdx = i
		}
	}
	res := &solver.Result{Sweeps: performed * replicas, Elapsed: time.Since(start)}
	res.Samples = append(res.Samples, solver.Sample{Assignment: trackers[bestIdx].Assignment(), Energy: trackers[bestIdx].Energy()})
	for _, st := range states {
		res.Samples = append(res.Samples, solver.Sample{Assignment: st.Assignment(), Energy: st.Energy()})
	}
	res.SortSamples()
	if runs := req.Runs; runs > 0 && runs < len(res.Samples) {
		res.Samples = res.Samples[:runs]
	}
	return res, nil
}

// parallelTrialStep performs one Digital Annealer Monte-Carlo step on st at
// the given temperature: the shared-random threshold scan of Solve.anneal,
// factored out so annealing and tempering share the exact hardware step.
// It reports whether a flip was performed.
func (s *Solver) parallelTrialStep(st *qubo.State, temp float64, offset *float64, offUnit float64, rng *rand.Rand) bool {
	theta := *offset + temp*expVariate(rng)
	accepted := st.CountBelow(theta)
	if accepted == 0 {
		if !s.DisableDynamicOffset {
			*offset += offUnit
		}
		return false
	}
	st.Flip(st.PickKthBelow(theta, rng.Intn(accepted)))
	*offset = 0
	return true
}

func maxIntPT(a, b int) int {
	if a > b {
		return a
	}
	return b
}
