package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSinkIsFree exercises every exported entry point on the disabled
// (nil) sink: all must be no-ops, and none may allocate. This is the
// zero-overhead contract the kernels rely on.
func TestNilSinkIsFree(t *testing.T) {
	var s *Sink
	if s.Enabled() {
		t.Fatal("nil sink reports enabled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Emit(Event{Name: "x"})
		s.Pool("da", "", 4, 2, time.Second, time.Second)
		rt := s.StartRun("da", "", 0)
		rt.Observe(1, -2.5)
		rt.Finish(100, 5, 100)
		s.Metrics().Counter("c").Add(1)
		s.Metrics().Gauge("g").Set(1)
		s.Metrics().Histogram("h").Observe(1)
		if s.Events() != nil {
			t.Error("nil sink returned events")
		}
		if err := s.Close(); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("nil sink allocated %.1f times per run, want 0", allocs)
	}
}

func TestFromContextDefaultsToNil(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext on bare context = %v, want nil", got)
	}
	if got := LabelFromContext(context.Background()); got != "" {
		t.Fatalf("LabelFromContext on bare context = %q, want empty", got)
	}
	sink := NewCollector(nil)
	ctx := NewContext(context.Background(), sink)
	if got := FromContext(ctx); got != sink {
		t.Fatal("FromContext did not return the installed sink")
	}
	ctx = WithLabel(ctx, "sub07")
	if got := LabelFromContext(ctx); got != "sub07" {
		t.Fatalf("LabelFromContext = %q, want sub07", got)
	}
	// NewContext with a nil sink must leave the context untouched.
	if got := FromContext(NewContext(context.Background(), nil)); got != nil {
		t.Fatal("NewContext(nil) installed a sink")
	}
}

// TestJSONLRoundTrip checks that emitted trace lines are valid JSON with
// the expected fields, and that zero fields are omitted.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf, nil)
	s.Emit(Event{
		Name: "run", Device: "da", Label: "sub03", Run: 2,
		Dur: 1500 * time.Millisecond, Sweeps: 2000, Flips: 930, Steps: 2000,
		Value: -123.5, Points: []ConvPoint{{Sweep: 10, Energy: -50}, {Sweep: 120, Energy: -123.5}},
	})
	s.Emit(Event{Name: "dss", Value: 8.25, N: 3})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d trace lines, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 is not valid JSON: %v\n%s", err, lines[0])
	}
	for key, want := range map[string]any{
		"ev": "run", "dev": "da", "label": "sub03", "run": 2.0,
		"sweeps": 2000.0, "flips": 930.0, "steps": 2000.0, "value": -123.5,
	} {
		if got := first[key]; got != want {
			t.Errorf("line 1 %q = %v, want %v", key, got, want)
		}
	}
	if pts, ok := first["points"].([]any); !ok || len(pts) != 2 {
		t.Errorf("line 1 points = %v, want 2 pairs", first["points"])
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 is not valid JSON: %v", err)
	}
	if _, present := second["dev"]; present {
		t.Error("zero-valued dev field was not omitted")
	}
	if second["value"] != 8.25 || second["n"] != 3.0 {
		t.Errorf("line 2 = %v", second)
	}
}

func TestCollectorAndChain(t *testing.T) {
	var buf bytes.Buffer
	outer := NewSink(&buf, nil)
	inner := NewCollector(NewRegistry()).Chain(outer)
	rt := inner.StartRun("sa", "sub00", 1)
	rt.Observe(5, -1)
	rt.Observe(9, -4)
	rt.Finish(10, 7, 100)
	events := inner.Events()
	if len(events) != 1 || events[0].Name != "run" {
		t.Fatalf("collector events = %+v", events)
	}
	if got := events[0].Points; len(got) != 2 || got[1] != (ConvPoint{Sweep: 9, Energy: -4}) {
		t.Fatalf("trajectory = %v", got)
	}
	if events[0].Value != -4 {
		t.Fatalf("run event final energy = %v, want -4", events[0].Value)
	}
	if !strings.Contains(buf.String(), `"ev":"run"`) {
		t.Fatal("chained sink did not receive the event")
	}
	reg := inner.Metrics()
	if got := reg.Counter("anneal.sweeps.sa").Value(); got != 10 {
		t.Errorf("anneal.sweeps.sa = %v, want 10", got)
	}
	if got := reg.Counter("anneal.flips.sa").Value(); got != 7 {
		t.Errorf("anneal.flips.sa = %v, want 7", got)
	}
}

func TestSinkCloseFlushes(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriterSize(&buf, 1<<16)
	s := NewSink(bw, nil)
	s.Emit(Event{Name: "partition"})
	if buf.Len() != 0 {
		t.Skip("bufio flushed early; buffer too small for the test premise")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ev":"partition"`) {
		t.Fatal("Close did not flush the buffered trace tail")
	}
}

func TestSinkConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf, NewRegistry())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rt := s.StartRun("da", "", w)
				rt.Observe(i, float64(-i))
				rt.Finish(i, int64(i), int64(i+1))
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("interleaved line is not valid JSON: %v\n%s", err, l)
		}
	}
}

func TestPoolUtilisation(t *testing.T) {
	s := NewCollector(NewRegistry())
	s.Pool("da", "", 8, 4, 2*time.Second, time.Second)
	ev := s.Events()
	if len(ev) != 1 {
		t.Fatalf("events = %d, want 1", len(ev))
	}
	if ev[0].Value != 0.5 {
		t.Fatalf("utilisation = %v, want 0.5", ev[0].Value)
	}
	snap := s.Metrics().Histogram("pool.utilisation").Snapshot()
	if snap.Count != 1 || snap.Mean != 0.5 {
		t.Fatalf("histogram snapshot = %+v", snap)
	}
}
