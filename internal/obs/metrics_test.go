package obs

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsFree(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(100, func() {
		r.Counter("a").Add(1)
		r.Gauge("b").Set(2)
		r.Histogram("c").Observe(3)
		if r.Snapshot() != nil {
			t.Error("nil registry snapshot not nil")
		}
		if r.Summary() != "" {
			t.Error("nil registry summary not empty")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil registry allocated %.1f times per run, want 0", allocs)
	}
}

func TestCounterConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			for i := 0; i < 1000; i++ {
				c.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 4000 {
		t.Fatalf("counter = %v, want 4000", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x")
	for _, v := range []float64{1, 2, 3, -6} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 0 || s.Min != -6 || s.Max != 3 || s.Mean != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
	empty := r.Histogram("y").Snapshot()
	if empty.Count != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Fatalf("empty snapshot = %+v", empty)
	}
}

func TestSummaryAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("anneal.sweeps.da").Add(2000)
	r.Gauge("pipeline.partitions").Set(4)
	r.Histogram("pool.utilisation").Observe(0.75)
	sum := r.Summary()
	for _, want := range []string{"anneal.sweeps.da", "2000", "pipeline.partitions", "pool.utilisation", "count=1"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	// Sorted output: counters before histograms alphabetically here.
	if strings.Index(sum, "anneal") > strings.Index(sum, "pool") {
		t.Error("summary lines not sorted")
	}
	snap := r.Snapshot()
	if snap["anneal.sweeps.da"] != 2000.0 {
		t.Errorf("snapshot counter = %v", snap["anneal.sweeps.da"])
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("decode.valid").Add(12)
	PublishExpvar(r)
	v := expvar.Get("mqo")
	if v == nil {
		t.Fatal("expvar mqo not published")
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("expvar value is not JSON: %v", err)
	}
	if m["decode.valid"] != 12.0 {
		t.Fatalf("expvar decode.valid = %v", m["decode.valid"])
	}
	// Re-publishing swaps registries instead of panicking.
	r2 := NewRegistry()
	r2.Counter("decode.valid").Add(5)
	PublishExpvar(r2)
	if err := json.Unmarshal([]byte(expvar.Get("mqo").String()), &m); err != nil {
		t.Fatal(err)
	}
	if m["decode.valid"] != 5.0 {
		t.Fatalf("swapped expvar decode.valid = %v", m["decode.valid"])
	}
}

// TestEmptyHistogramExportsZeros is the regression test for the
// created-but-never-observed histogram export: Snapshot and expvar used to
// leak the ±Inf min/max sentinels, which encoding/json rejects. Every
// field must be exactly zero.
func TestEmptyHistogramExportsZeros(t *testing.T) {
	r := NewRegistry()
	r.Histogram("serve.queue.wait_ms") // created, never observed
	snap := r.Snapshot()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot with empty histogram not JSON-encodable: %v", err)
	}
	if strings.Contains(string(blob), "Inf") {
		t.Fatalf("snapshot leaks Inf: %s", blob)
	}
	hm, ok := snap["serve.queue.wait_ms"].(map[string]any)
	if !ok {
		t.Fatalf("histogram export missing: %v", snap)
	}
	for _, k := range []string{"count", "mean", "min", "max", "p50", "p90", "p99", "p999"} {
		v, ok := hm[k]
		if !ok {
			t.Fatalf("histogram export missing field %q: %v", k, hm)
		}
		switch x := v.(type) {
		case int64:
			if x != 0 {
				t.Errorf("empty histogram %s = %v, want 0", k, x)
			}
		case float64:
			if x != 0 {
				t.Errorf("empty histogram %s = %v, want 0", k, x)
			}
		}
	}
	// The summary path must render zeros too.
	if sum := r.Summary(); strings.Contains(sum, "Inf") {
		t.Fatalf("summary leaks Inf:\n%s", sum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 1000 observations 1..1000: p50 ≈ 500, p90 ≈ 900, p99 ≈ 990.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	// Log buckets bound relative error at 2^(1/8)-1 ≈ 9%; allow 10%.
	check := func(name string, got, want float64) {
		t.Helper()
		if got < want*0.99 || got > want*1.10 {
			t.Errorf("%s = %v, want within [%v, %v]", name, got, want*0.99, want*1.10)
		}
	}
	check("p50", s.P50, 500)
	check("p90", s.P90, 900)
	check("p99", s.P99, 990)
	if s.P999 > s.Max || s.P999 < s.P99 {
		t.Errorf("p999 = %v out of order (p99=%v max=%v)", s.P999, s.P99, s.Max)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Errorf("quantiles not monotone: %+v", s)
	}
}

func TestHistogramQuantileSingleValue(t *testing.T) {
	h := &Histogram{}
	h.Observe(42)
	s := h.Snapshot()
	// One observation: every quantile clamps to the exact value.
	for name, got := range map[string]float64{"p50": s.P50, "p90": s.P90, "p99": s.P99, "p999": s.P999} {
		if got != 42 {
			t.Errorf("%s = %v, want 42", name, got)
		}
	}
}

func TestHistogramNegativeAndZeroMasses(t *testing.T) {
	h := &Histogram{}
	for _, v := range []float64{-5, -1, 0, 0, 10, 20} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Min != -5 || s.Max != 20 || s.Count != 6 {
		t.Fatalf("snapshot = %+v", s)
	}
	// Ranks: 1-2 negative → min; 3-4 zero; 5-6 positive buckets.
	if got := s.P50; got != 0 {
		t.Errorf("p50 = %v, want 0 (rank 3 is the zero mass)", got)
	}
	if s.P99 < 20*0.99 || s.P99 > 20*1.10 {
		t.Errorf("p99 = %v, want ~20", s.P99)
	}
	buckets := h.CumulativeBuckets()
	if len(buckets) == 0 || buckets[0].Upper != 0 || buckets[0].Count != 4 {
		t.Fatalf("cumulative buckets = %+v, want le=0 bucket count 4 first", buckets)
	}
	last := buckets[len(buckets)-1]
	if last.Count != 6 {
		t.Fatalf("last cumulative bucket = %+v, want count 6", last)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].Upper <= buckets[i-1].Upper || buckets[i].Count < buckets[i-1].Count {
			t.Fatalf("buckets not cumulative/ordered: %+v", buckets)
		}
	}
}

func TestHistogramObserveNoAllocs(t *testing.T) {
	h := &Histogram{}
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(3.5) })
	if allocs != 0 {
		t.Fatalf("Observe allocated %.1f times per run, want 0", allocs)
	}
}

func TestHistogramBucketGeometry(t *testing.T) {
	// Every bucket's upper bound must land back in a bucket with index >= its
	// own, and indexes must be monotone in the value.
	prev := -1
	for _, v := range []float64{1e-9, 0.001, 0.5, 1, 1.5, 2, 3, 10, 1000, 1e6, 1e12} {
		idx := histBucketIndex(v)
		if idx < prev {
			t.Fatalf("bucket index not monotone at %v: %d < %d", v, idx, prev)
		}
		prev = idx
		if up := histBucketUpper(idx); up < v && idx < histNBuckets-1 {
			t.Errorf("histBucketUpper(%d) = %v < value %v", idx, up, v)
		}
	}
}
