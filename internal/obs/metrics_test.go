package obs

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsFree(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(100, func() {
		r.Counter("a").Add(1)
		r.Gauge("b").Set(2)
		r.Histogram("c").Observe(3)
		if r.Snapshot() != nil {
			t.Error("nil registry snapshot not nil")
		}
		if r.Summary() != "" {
			t.Error("nil registry summary not empty")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil registry allocated %.1f times per run, want 0", allocs)
	}
}

func TestCounterConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			for i := 0; i < 1000; i++ {
				c.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 4000 {
		t.Fatalf("counter = %v, want 4000", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x")
	for _, v := range []float64{1, 2, 3, -6} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 0 || s.Min != -6 || s.Max != 3 || s.Mean != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
	empty := r.Histogram("y").Snapshot()
	if empty.Count != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Fatalf("empty snapshot = %+v", empty)
	}
}

func TestSummaryAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("anneal.sweeps.da").Add(2000)
	r.Gauge("pipeline.partitions").Set(4)
	r.Histogram("pool.utilisation").Observe(0.75)
	sum := r.Summary()
	for _, want := range []string{"anneal.sweeps.da", "2000", "pipeline.partitions", "pool.utilisation", "count=1"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	// Sorted output: counters before histograms alphabetically here.
	if strings.Index(sum, "anneal") > strings.Index(sum, "pool") {
		t.Error("summary lines not sorted")
	}
	snap := r.Snapshot()
	if snap["anneal.sweeps.da"] != 2000.0 {
		t.Errorf("snapshot counter = %v", snap["anneal.sweeps.da"])
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("decode.valid").Add(12)
	PublishExpvar(r)
	v := expvar.Get("mqo")
	if v == nil {
		t.Fatal("expvar mqo not published")
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("expvar value is not JSON: %v", err)
	}
	if m["decode.valid"] != 12.0 {
		t.Fatalf("expvar decode.valid = %v", m["decode.valid"])
	}
	// Re-publishing swaps registries instead of panicking.
	r2 := NewRegistry()
	r2.Counter("decode.valid").Add(5)
	PublishExpvar(r2)
	if err := json.Unmarshal([]byte(expvar.Get("mqo").String()), &m); err != nil {
		t.Fatal(err)
	}
	if m["decode.valid"] != 5.0 {
		t.Fatalf("swapped expvar decode.valid = %v", m["decode.valid"])
	}
}
