// Package obs is the pipeline's observability substrate: span-style trace
// events, a metrics registry and exporters (JSONL trace files, an in-memory
// collector for programmatic analysis, a human-readable summary table and
// expvar), threaded through the whole incremental MQO stack — the Monte-Carlo
// kernels, the run-level worker pool, the partitioning recursion, dynamic
// search steering and the prepared-encoding cache.
//
// Two hard contracts shape the API:
//
//   - Zero overhead when disabled. A nil *Sink is the disabled sink; every
//     method has a nil receiver fast path, and the kernel-facing types
//     (RunTrace) are only allocated when a sink is present, so the
//     instrumented-off hot paths execute the exact pre-instrumentation
//     machine code shape: no allocations, one predictable branch.
//     BenchmarkObsOverhead in internal/da pins this (BENCH_obs.json).
//   - No determinism perturbation. Instrumentation only reads pipeline
//     state; it never touches an RNG stream, never reorders work, and never
//     feeds back into the optimisation. Result.Samples and Outcome.Cost are
//     bit-identical with any sink, for any Request.Parallelism
//     (TestObsDeterminism* in internal/core and the device packages).
package obs

import (
	"context"
	"io"
	"sync"
	"time"
)

// ConvPoint is one point of an incumbent-energy convergence trajectory: the
// best energy a run had observed after the given sweep (Monte-Carlo step).
type ConvPoint struct {
	Sweep  int
	Energy float64
}

// Event is one trace record. The struct is deliberately flat — fixed typed
// fields instead of an attribute map — so emission needs no reflection and
// the JSONL encoder is a straight append loop. Unused fields stay zero and
// are omitted from the encoded line.
type Event struct {
	// T is the emission time relative to the sink's start.
	T time.Duration
	// Name identifies the event kind: "run" (one annealing run finished,
	// with its convergence trajectory), "anneal", "encode", "decode",
	// "dss", "merge", "bisect", "partition", "pool", "prepared", "solve",
	// and the DAG scheduler's "dag" (graph built: edges, waves, density),
	// "wave" (one topological wave solved) and "join" (one dependency edge
	// applied its DSS adjustments at a wave boundary).
	Name string
	// Device is the solver that produced the event ("da", "sa", ...).
	Device string
	// Label is the pipeline scope, e.g. "sub03" for the third partial
	// problem (see WithLabel).
	Label string
	// Run is the run index within a solve, where applicable.
	Run int
	// Dur is the span duration for span-style events (zero for points).
	Dur time.Duration
	// Sweeps counts Monte-Carlo sweeps/steps covered by the event.
	Sweeps int
	// Flips and Steps carry kernel acceptance counters: Flips accepted
	// moves out of Steps proposals.
	Flips, Steps int64
	// N is a generic count (queries in a bisection, samples decoded,
	// dirty re-materialisations, ...).
	N int
	// Value is the event's primary magnitude (best energy, applied DSS
	// savings, incumbent cost, pool utilisation, ...).
	Value float64
	// Extra is a secondary magnitude (invalid-sample count, discarded
	// savings, ...).
	Extra float64
	// Points is the convergence trajectory of "run" events.
	Points []ConvPoint
	// Trace, Span and Parent link the event into a request's span tree
	// (see span.go): span events carry all three, point events emitted
	// under a span carry Trace and Parent. Zero means un-traced; ids are
	// deterministic functions of the request seed, never wall-clock
	// randomness.
	Trace, Span, Parent uint64
	// Attrs are flat key/value span attributes (cache tier, degradation
	// reason, device routing); nil for point events.
	Attrs []Attr
}

// Sink receives trace events and routes them to a JSONL writer, an
// in-memory collector and/or a metrics registry. The nil *Sink is the
// disabled sink: every method is nil-safe and free, so call sites need no
// guards beyond not allocating event payloads (use Enabled for that).
//
// Sinks are safe for concurrent use; annealing runs on the worker pool emit
// from multiple goroutines. Event order in the trace therefore follows
// completion order, which may vary between executions — the *results* of the
// pipeline stay bit-identical, only the observational interleaving differs.
type Sink struct {
	mu      sync.Mutex
	start   time.Time
	w       io.Writer
	collect bool
	events  []Event
	reg     *Registry
	buf     []byte
	// forward chains events to another sink (see Chain), letting the
	// convergence figure collect in memory while a -trace file still
	// records the run.
	forward *Sink
	// cb, when set, is invoked for every emitted event (see
	// NewCallbackSink). It runs outside the sink mutex, on whichever
	// goroutine emitted the event.
	cb func(Event)
}

// NewSink returns a sink writing JSONL trace lines to w (which may be nil
// for a metrics-only sink) and recording metrics into reg (which may be nil
// for a trace-only sink).
func NewSink(w io.Writer, reg *Registry) *Sink {
	return &Sink{start: time.Now(), w: w, reg: reg}
}

// NewCollector returns a sink that retains every event in memory for
// programmatic analysis (Events), recording metrics into reg when non-nil.
func NewCollector(reg *Registry) *Sink {
	return &Sink{start: time.Now(), collect: true, reg: reg}
}

// NewCallbackSink returns a sink that invokes fn for every emitted event.
// It is the streaming counterpart of NewCollector: instead of retaining
// events for later analysis, each event is delivered as it happens —
// core.Session uses it to surface the incremental phase's incumbent
// ("merge" events) while the solve is still running.
//
// fn runs on whichever pipeline goroutine emitted the event (annealing
// runs emit from worker-pool goroutines), so it must be safe for
// concurrent use and should return quickly; slow callbacks stall the
// emitting solve. Like every sink, a callback sink only observes — it
// must not feed back into the optimisation, or the determinism contract
// breaks. Chain forwards to a second sink as usual, so callers can both
// stream and trace.
func NewCallbackSink(fn func(Event)) *Sink {
	return &Sink{start: time.Now(), cb: fn}
}

// Chain forwards every event emitted on s to next as well. It returns s for
// convenience. Chaining a nil next is a no-op; chaining on a nil s returns
// nil. The chained sink adopts next's clock, so time offsets stamped
// through s (span starts, event times) align with events next records
// directly — one consistent timeline per trace file.
func (s *Sink) Chain(next *Sink) *Sink {
	if s == nil || next == nil {
		return s
	}
	s.mu.Lock()
	s.forward = next
	s.start = next.start
	s.mu.Unlock()
	return s
}

// Enabled reports whether s records anything. Callers use it to skip
// building event payloads (labels, per-run recorders) on the disabled path.
func (s *Sink) Enabled() bool { return s != nil }

// since converts an absolute time into the sink's relative clock (the
// stamp spans record as their start offset).
func (s *Sink) since(t time.Time) time.Duration { return t.Sub(s.start) }

// Metrics returns the sink's registry, or nil when disabled or trace-only.
// A sink without its own registry (callback sinks chained in front of the
// configured sink) answers with its forward target's registry, so metrics
// recorded through a chain land where the operator configured them.
func (s *Sink) Metrics() *Registry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	reg, fwd := s.reg, s.forward
	s.mu.Unlock()
	if reg == nil {
		return fwd.Metrics()
	}
	return reg
}

// Emit records one event, stamping its relative time when unset.
func (s *Sink) Emit(e Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if e.T == 0 {
		e.T = time.Since(s.start)
	}
	if s.w != nil {
		s.buf = appendEventJSON(s.buf[:0], &e)
		s.w.Write(s.buf) //nolint:errcheck // tracing is best-effort
	}
	if s.collect {
		s.events = append(s.events, e)
	}
	fwd := s.forward
	s.mu.Unlock()
	if s.cb != nil {
		s.cb(e)
	}
	fwd.Emit(e)
}

// Events returns a copy of the collected events (collector sinks only).
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Close flushes the underlying writer when it is buffered. Traces written
// through a bufio.Writer lose their tail without it, which is exactly what
// the CLIs' SIGINT handling must avoid.
func (s *Sink) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.w.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// RunTrace accumulates one annealing run's convergence trajectory and
// acceptance counters. It is only ever allocated by an enabled sink
// (StartRun returns nil otherwise), so kernels hold a nil pointer on the
// disabled path and every method call is a single predictable branch.
type RunTrace struct {
	sink   *Sink
	device string
	label  string
	run    int
	points []ConvPoint
}

// StartRun opens a run trace for one annealing run of device. Returns nil —
// the free recorder — when the sink is disabled.
func (s *Sink) StartRun(device, label string, run int) *RunTrace {
	if s == nil {
		return nil
	}
	return &RunTrace{sink: s, device: device, label: label, run: run}
}

// Observe appends one convergence point: the run's incumbent (best-so-far)
// energy after the given sweep. Kernels call it whenever their best tracker
// improves, which is rare relative to the sweep count.
func (rt *RunTrace) Observe(sweep int, energy float64) {
	if rt == nil {
		return
	}
	rt.points = append(rt.points, ConvPoint{Sweep: sweep, Energy: energy})
}

// Finish emits the run's "run" event (trajectory, sweep count, acceptance
// counters) and feeds the metrics registry: sweep/flip/proposal counters
// per device plus the flip-acceptance histogram.
func (rt *RunTrace) Finish(sweeps int, flips, steps int64) {
	if rt == nil {
		return
	}
	e := Event{
		Name: "run", Device: rt.device, Label: rt.label, Run: rt.run,
		Sweeps: sweeps, Flips: flips, Steps: steps, Points: rt.points,
	}
	if len(rt.points) > 0 {
		e.Value = rt.points[len(rt.points)-1].Energy
	}
	rt.sink.Emit(e)
	if reg := rt.sink.Metrics(); reg != nil {
		reg.Counter("anneal.sweeps." + rt.device).Add(float64(sweeps))
		reg.Counter("anneal.flips." + rt.device).Add(float64(flips))
		reg.Counter("anneal.proposals." + rt.device).Add(float64(steps))
		if steps > 0 {
			reg.Histogram("anneal.acceptance." + rt.device).Observe(float64(flips) / float64(steps))
		}
	}
}

// Pool records one worker-pool dispatch: how much of the pool's theoretical
// capacity (workers × wall-clock) the runs actually used.
func (s *Sink) Pool(device, label string, runs, workers int, busy, wall time.Duration) {
	if s == nil {
		return
	}
	util := 0.0
	if wall > 0 && workers > 0 {
		util = busy.Seconds() / (wall.Seconds() * float64(workers))
	}
	s.Emit(Event{Name: "pool", Device: device, Label: label, N: runs, Run: workers, Dur: wall, Value: util})
	if reg := s.Metrics(); reg != nil {
		reg.Counter("pool.dispatches").Add(1)
		reg.Histogram("pool.utilisation").Observe(util)
	}
}

// sinkKey and labelKey carry the sink and the pipeline scope through
// context. Context is the carrier because it already flows through every
// layer (Solve(ctx, ...), Partition(ctx, ...)) — no signature changes, and
// a missing value means the disabled sink.
type sinkKey struct{}
type labelKey struct{}

// NewContext returns ctx carrying sink. A nil sink is allowed and keeps the
// context clean (FromContext then returns nil).
func NewContext(ctx context.Context, sink *Sink) context.Context {
	if sink == nil {
		return ctx
	}
	return context.WithValue(ctx, sinkKey{}, sink)
}

// FromContext returns the sink carried by ctx, or nil (the disabled sink).
func FromContext(ctx context.Context) *Sink {
	s, _ := ctx.Value(sinkKey{}).(*Sink)
	return s
}

// WithLabel returns ctx carrying a pipeline scope label (e.g. "sub03"),
// attached by the strategies so device-level events can be correlated with
// the partial problem they served. Callers guard with Sink.Enabled to avoid
// allocating labels on the disabled path.
func WithLabel(ctx context.Context, label string) context.Context {
	return context.WithValue(ctx, labelKey{}, label)
}

// LabelFromContext returns the pipeline scope label of ctx, if any.
func LabelFromContext(ctx context.Context) string {
	l, _ := ctx.Value(labelKey{}).(string)
	return l
}
