package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus/OpenMetrics text exposition of a Registry — the payload of
// mqoserve's /metricsz endpoint. Naming is stable and derived mechanically
// from registry names:
//
//   - every metric is prefixed "mqo_" and dots/dashes become underscores:
//     serve.request.latency_ms → mqo_serve_request_latency_ms
//   - a trailing ".<device>" segment (da, da-pt, sa, hqa, va) becomes a
//     device label instead of a name suffix, so per-device series of one
//     family aggregate naturally: anneal.sweeps.da →
//     mqo_anneal_sweeps_total{device="da"}
//   - counters get the conventional _total suffix; gauges export as-is;
//     histograms export cumulative _bucket{le="..."} series (non-empty
//     buckets only, plus +Inf) with _sum and _count.
//
// Output is deterministic: families and series sort alphabetically.

// promDevices are the device names recognised as a trailing label segment.
var promDevices = map[string]bool{
	"da": true, "da-pt": true, "sa": true, "hqa": true, "va": true,
}

// promName sanitises a registry name into a Prometheus metric name and
// splits off a trailing device segment as a label, if present.
func promName(name string) (metric, device string) {
	if i := strings.LastIndexByte(name, '.'); i >= 0 && promDevices[name[i+1:]] {
		device = name[i+1:]
		name = name[:i]
	}
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("mqo_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String(), device
}

// promLabels renders a label set ({device="da"} or ""), with an optional
// le pair appended for histogram buckets.
func promLabels(device, le string) string {
	var parts []string
	if device != "" {
		parts = append(parts, `device="`+device+`"`)
	}
	if le != "" {
		parts = append(parts, `le="`+le+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promValue formats a sample value ('g', shortest round-trip).
func promValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promSeries is one exportable series of a family.
type promSeries struct {
	device string
	value  float64
	hist   *Histogram
}

// promFamily groups same-named series under one TYPE header.
type promFamily struct {
	name   string // exposition name, without the counter _total suffix
	kind   string // counter, gauge, histogram
	series []promSeries
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4, also parseable as OpenMetrics minus the EOF
// marker). Nil-safe: a nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := map[string]*promFamily{}
	add := func(name, kind string, s promSeries) {
		metric, device := promName(name)
		key := kind + " " + metric
		f, ok := fams[key]
		if !ok {
			f = &promFamily{name: metric, kind: kind}
			fams[key] = f
		}
		s.device = device
		f.series = append(f.series, s)
	}
	for name, c := range r.counters {
		add(name, "counter", promSeries{value: c.Value()})
	}
	for name, g := range r.gauges {
		add(name, "gauge", promSeries{value: g.Value()})
	}
	for name, h := range r.histograms {
		add(name, "histogram", promSeries{hist: h})
	}
	r.mu.Unlock()

	keys := make([]string, 0, len(fams))
	for k := range fams {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return fams[keys[i]].name < fams[keys[j]].name || (fams[keys[i]].name == fams[keys[j]].name && keys[i] < keys[j])
	})
	bw := bufio.NewWriter(w)
	for _, k := range keys {
		f := fams[k]
		name := f.name
		if f.kind == "counter" {
			name += "_total"
		}
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].device < f.series[j].device })
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, f.kind)
		for _, s := range f.series {
			if f.kind != "histogram" {
				fmt.Fprintf(bw, "%s%s %s\n", name, promLabels(s.device, ""), promValue(s.value))
				continue
			}
			snap := s.hist.Snapshot()
			for _, b := range s.hist.CumulativeBuckets() {
				fmt.Fprintf(bw, "%s_bucket%s %d\n", name, promLabels(s.device, promValue(b.Upper)), b.Count)
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", name, promLabels(s.device, "+Inf"), snap.Count)
			fmt.Fprintf(bw, "%s_sum%s %s\n", name, promLabels(s.device, ""), promValue(snap.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", name, promLabels(s.device, ""), snap.Count)
		}
	}
	return bw.Flush()
}
