package obs

import (
	"flag"
	"os"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := []struct{ in, metric, device string }{
		{"serve.request.latency_ms", "mqo_serve_request_latency_ms", ""},
		{"anneal.sweeps.da", "mqo_anneal_sweeps", "da"},
		{"anneal.acceptance.da-pt", "mqo_anneal_acceptance", "da-pt"},
		{"cache.hits", "mqo_cache_hits", ""},
		{"resilience.breaker.hqa", "mqo_resilience_breaker", "hqa"},
	}
	for _, c := range cases {
		metric, device := promName(c.in)
		if metric != c.metric || device != c.device {
			t.Errorf("promName(%q) = (%q, %q), want (%q, %q)", c.in, metric, device, c.metric, c.device)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("anneal.sweeps.da").Add(2000)
	r.Counter("anneal.sweeps.sa").Add(500)
	r.Gauge("serve.queue.depth").Set(3)
	h := r.Histogram("serve.solve.latency_ms")
	for _, v := range []float64{1, 5, 12, 80} {
		h.Observe(v)
	}
	r.Histogram("serve.queue.wait_ms") // empty: exports zero-count summary

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE mqo_anneal_sweeps_total counter",
		`mqo_anneal_sweeps_total{device="da"} 2000`,
		`mqo_anneal_sweeps_total{device="sa"} 500`,
		"# TYPE mqo_serve_queue_depth gauge",
		"mqo_serve_queue_depth 3",
		"# TYPE mqo_serve_solve_latency_ms histogram",
		`mqo_serve_solve_latency_ms_bucket{le="+Inf"} 4`,
		"mqo_serve_solve_latency_ms_sum 98",
		"mqo_serve_solve_latency_ms_count 4",
		`mqo_serve_queue_wait_ms_bucket{le="+Inf"} 0`,
		"mqo_serve_queue_wait_ms_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Inf}") && !strings.Contains(out, `le="+Inf"`) {
		t.Errorf("stray Inf in exposition:\n%s", out)
	}

	// Deterministic: a second render is byte-identical.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("exposition not deterministic across renders")
	}

	// The in-repo linter accepts our own output (CI round-trips a live
	// scrape through the same check).
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("self-lint failed: %v\n%s", err, out)
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil registry wrote %q", sb.String())
	}
}

func TestLintPrometheusRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad comment":      "# BOGUS foo bar\nmqo_x 1\n",
		"bad type":         "# TYPE mqo_x flavour\nmqo_x 1\n",
		"bad name":         "9metric 1\n",
		"bad value":        "mqo_x one\n",
		"bad label":        `mqo_x{le=5} 1` + "\n",
		"bucket sans le":   "mqo_h_bucket 3\nmqo_h_bucket{le=\"+Inf\"} 3\nmqo_h_count 3\n",
		"non-cumulative":   "mqo_h_bucket{le=\"1\"} 5\nmqo_h_bucket{le=\"2\"} 3\nmqo_h_bucket{le=\"+Inf\"} 5\nmqo_h_count 5\n",
		"le out of order":  "mqo_h_bucket{le=\"2\"} 1\nmqo_h_bucket{le=\"1\"} 2\nmqo_h_bucket{le=\"+Inf\"} 2\nmqo_h_count 2\n",
		"missing inf":      "mqo_h_bucket{le=\"1\"} 1\nmqo_h_count 1\n",
		"count mismatch":   "mqo_h_bucket{le=\"1\"} 1\nmqo_h_bucket{le=\"+Inf\"} 2\nmqo_h_count 3\n",
		"empty exposition": "\n",
		"type conflict":    "# TYPE mqo_x counter\n# TYPE mqo_x gauge\nmqo_x 1\n",
	}
	for name, in := range cases {
		if err := LintPrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: lint accepted %q", name, in)
		}
	}
}

func TestLintPrometheusAcceptsWellFormed(t *testing.T) {
	in := `# HELP mqo_x a counter
# TYPE mqo_x counter
mqo_x{device="da"} 12
# TYPE mqo_h histogram
mqo_h_bucket{le="0.5"} 1
mqo_h_bucket{le="1"} 4
mqo_h_bucket{le="+Inf"} 5
mqo_h_sum 3.5
mqo_h_count 5
mqo_g 2.5e-3
`
	if err := LintPrometheus(strings.NewReader(in)); err != nil {
		t.Fatalf("lint rejected well-formed exposition: %v", err)
	}
}

// liveExposition points at a Prometheus text file captured from a running
// server; CI scrapes /metricsz from a traced daemon and lints it here.
// Without the flag the test is a no-op, so local `go test` stays hermetic.
var liveExposition = flag.String("live-exposition", "", "lint this captured /metricsz exposition file")

func TestLintLiveScrape(t *testing.T) {
	if *liveExposition == "" {
		t.Skip("no -live-exposition file given")
	}
	f, err := os.Open(*liveExposition)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := LintPrometheus(f); err != nil {
		t.Fatalf("live /metricsz exposition invalid: %v", err)
	}
}
