package obs

import (
	"context"
	"strings"
	"testing"
)

func TestSpanDisabledIsFree(t *testing.T) {
	var s *Sink
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		ctx2, sp := s.StartTrace(ctx, "request", 7)
		if ctx2 != ctx || sp != nil {
			t.Error("disabled StartTrace not a no-op")
		}
		ctx3, sp2 := s.StartSpan(ctx, "child")
		if ctx3 != ctx || sp2 != nil {
			t.Error("disabled StartSpan not a no-op")
		}
		sp.Attr("k", "v").End()
		sp2.EndWith(Event{Name: "x"})
		s.EmitCtx(ctx, Event{})
		if sp.ID() != 0 || sp.TraceID() != 0 {
			t.Error("nil span has identity")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocated %.1f times per run, want 0", allocs)
	}
}

// StartSpan without a parent span in context is a no-op even on an enabled
// sink: spans only exist inside a trace.
func TestStartSpanWithoutParentIsNoop(t *testing.T) {
	s := NewCollector(nil)
	ctx, sp := s.StartSpan(context.Background(), "orphan")
	if sp != nil {
		t.Fatal("span minted without a parent")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("context gained a span")
	}
	if got := s.Events(); len(got) != 0 {
		t.Fatalf("events emitted: %v", got)
	}
}

func TestTraceIDDeterministic(t *testing.T) {
	a := NewTraceID(42, "req-1")
	b := NewTraceID(42, "req-1")
	c := NewTraceID(42, "req-2")
	d := NewTraceID(43, "req-1")
	if a != b {
		t.Fatal("same inputs, different trace ids")
	}
	if a == c || a == d || c == d {
		t.Fatal("different inputs collide")
	}
	if NewTraceID(0, "") == 0 {
		t.Fatal("trace id zero")
	}
}

func TestSpanTreeDeterministicIDs(t *testing.T) {
	build := func() []Event {
		s := NewCollector(nil)
		ctx, root := s.StartTrace(context.Background(), "request", NewTraceID(7, "r"))
		wctx, wave := s.StartSpanIndexed(ctx, "wave", 0)
		_, sub := s.StartSpanIndexed(wctx, "sub", 3)
		sub.End()
		wave.End()
		root.Attr("cache", "cold").End()
		return s.Events()
	}
	a, b := build(), build()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("events = %d, %d; want 3 each", len(a), len(b))
	}
	for i := range a {
		if a[i].Trace != b[i].Trace || a[i].Span != b[i].Span || a[i].Parent != b[i].Parent {
			t.Fatalf("run-to-run span identity differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Tree shape: sub's parent is wave, wave's parent is root, root has none.
	sub, wave, root := a[0], a[1], a[2]
	if sub.Name != "sub" || wave.Name != "wave" || root.Name != "request" {
		t.Fatalf("event order: %v %v %v", sub.Name, wave.Name, root.Name)
	}
	if sub.Parent != wave.Span || wave.Parent != root.Span || root.Parent != 0 {
		t.Fatalf("broken tree: sub.parent=%x wave=%x wave.parent=%x root=%x",
			sub.Parent, wave.Span, wave.Parent, root.Span)
	}
	if sub.Trace != root.Trace || wave.Trace != root.Trace {
		t.Fatal("trace ids differ within one trace")
	}
	if root.Span == wave.Span || wave.Span == sub.Span || root.Span == 0 {
		t.Fatal("span ids not distinct")
	}
}

func TestStartSpanSequentialSiblingsDistinct(t *testing.T) {
	s := NewCollector(nil)
	ctx, root := s.StartTrace(context.Background(), "t", 1)
	_, a := s.StartSpan(ctx, "phase")
	_, b := s.StartSpan(ctx, "phase")
	if a.ID() == b.ID() {
		t.Fatal("same-named sequential siblings share an id")
	}
	a.End()
	b.End()
	root.End()
}

func TestSpanEndWithMergesPayload(t *testing.T) {
	s := NewCollector(nil)
	ctx, root := s.StartTrace(context.Background(), "request", 9)
	_, sp := s.StartSpan(ctx, "wave")
	sp.Attr("device", "da").EndWith(Event{N: 4, Value: 1.5})
	root.End()
	evs := s.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	w := evs[0]
	if w.Name != "wave" || w.N != 4 || w.Value != 1.5 {
		t.Fatalf("payload not merged: %+v", w)
	}
	if len(w.Attrs) != 1 || w.Attrs[0] != (Attr{"device", "da"}) {
		t.Fatalf("attrs = %+v", w.Attrs)
	}
	if w.Span == 0 || w.Trace == 0 || w.Parent == 0 {
		t.Fatalf("identity missing: %+v", w)
	}
	// Double End emits once.
	sp.End()
	if got := len(s.Events()); got != 2 {
		t.Fatalf("double End emitted: %d events", got)
	}
}

func TestEmitCtxStampsParent(t *testing.T) {
	s := NewCollector(nil)
	ctx, root := s.StartTrace(context.Background(), "request", 11)
	s.EmitCtx(ctx, Event{Name: "merge", Value: 3})
	root.End()
	evs := s.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	m := evs[0]
	if m.Name != "merge" || m.Trace != root.TraceID() || m.Parent != evs[1].Span {
		t.Fatalf("point event not linked: %+v", m)
	}
	if m.Span != 0 {
		t.Fatalf("point event has its own span id: %+v", m)
	}
}

func TestSpanJSONLEncoding(t *testing.T) {
	var sb strings.Builder
	s := NewSink(&sb, nil)
	ctx, root := s.StartTrace(context.Background(), "request", NewTraceID(5, "r"))
	_, sp := s.StartSpan(ctx, "solve")
	sp.Attr("tier", "warm").End()
	root.End()
	out := sb.String()
	for _, want := range []string{`"trace":"`, `"span":"`, `"parent":"`, `"attrs":{"tier":"warm"}`, `"ev":"solve"`, `"ev":"request"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}
