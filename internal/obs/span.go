package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Request-scoped tracing. A span is a named, timed scope of one request's
// journey through the serving stack — admission, queue wait, worker slot,
// session, partial-problem waves, device solves — linked into a tree by
// (TraceID, SpanID, parent SpanID). Spans ride the existing Sink as plain
// Events: End emits one event whose T is the span's *start* offset and Dur
// its length, so a JSONL trace replays the timeline and cmd/mqotrace can
// reconstruct per-request critical paths.
//
// Two contracts carry over from the rest of the package:
//
//   - Zero cost when disabled. StartSpan on a nil/absent sink returns the
//     original context and a nil *Span; every Span method is nil-safe, so
//     instrumented paths hold one predictable branch and allocate nothing.
//   - Deterministic identity. IDs never come from wall-clock time or a
//     global RNG: a trace id derives from the request seed and tag
//     (NewTraceID), and span ids hash down from their parent's id, the
//     span name and an explicit index (child counter or caller-provided),
//     so the same request produces the same tree on every run. Only the
//     recorded timings differ between executions.

// splitmix64 is the finalising mix of the SplitMix64 generator — a cheap,
// well-distributed 64-bit hash used for all span identity derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString folds s into a 64-bit value (FNV-1a).
func hashString(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime
	}
	return h
}

// NewTraceID derives a deterministic trace id from a request seed and a
// tag (request id, problem name, ...). Identical inputs give identical
// ids; the result is never zero (zero means "no trace").
func NewTraceID(seed int64, tag string) uint64 {
	id := splitmix64(uint64(seed) ^ hashString(tag))
	if id == 0 {
		id = 1
	}
	return id
}

// Attr is one span attribute. Attributes are flat string pairs — enough
// for cache tiers, device names and degradation reasons — encoded as a
// JSON object on the span's event.
type Attr struct{ Key, Value string }

// Span is one open scope of a trace. Create with StartSpan/StartTrace,
// close with End (or EndWith to merge payload fields into the emitted
// event). The nil *Span is the disabled span; every method is free.
type Span struct {
	sink   *Sink
	name   string
	trace  uint64
	id     uint64
	parent uint64
	start  time.Time
	label  string
	attrs  []Attr
	// children counts child spans started without an explicit index, so
	// sequential StartSpan calls get distinct, deterministic ids.
	children atomic.Uint64
	ended    atomic.Bool
}

// spanKey carries the current span through context, next to the sink.
type spanKey struct{}

// SpanFromContext returns the innermost span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// ContextWithSpan returns ctx carrying sp (no-op for a nil span).
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// StartTrace opens a root span for a new trace. traceID should come from
// NewTraceID so identity stays deterministic. Disabled sinks return
// (ctx, nil), the free span.
func (s *Sink) StartTrace(ctx context.Context, name string, traceID uint64) (context.Context, *Span) {
	if s == nil {
		return ctx, nil
	}
	sp := &Span{
		sink: s, name: name, trace: traceID,
		id:    splitmix64(traceID ^ hashString(name)),
		start: time.Now(), label: LabelFromContext(ctx),
	}
	return ContextWithSpan(ctx, sp), sp
}

// StartSpan opens a child of the span in ctx. Without a parent span it is
// a no-op (returns ctx and nil): spans only exist inside a trace, so
// un-traced pipeline entry points stay span-free rather than minting
// nondeterministic root ids. The child id derives from the parent id, the
// name and the parent's running child count — deterministic as long as
// same-named siblings start in a fixed order; concurrent sibling creation
// should use StartSpanIndexed instead.
func (s *Sink) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if s == nil {
		return ctx, nil
	}
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	return s.startChild(ctx, parent, name, parent.children.Add(1)-1)
}

// StartSpanIndexed opens a child of the span in ctx whose id derives from
// the caller-provided index instead of a creation counter — the right
// form when siblings start concurrently (wave workers, fleet slots):
// identity then depends only on (parent, name, idx), never on goroutine
// interleaving.
func (s *Sink) StartSpanIndexed(ctx context.Context, name string, idx int) (context.Context, *Span) {
	if s == nil {
		return ctx, nil
	}
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	return s.startChild(ctx, parent, name, uint64(idx))
}

func (s *Sink) startChild(ctx context.Context, parent *Span, name string, idx uint64) (context.Context, *Span) {
	sp := &Span{
		sink: s, name: name, trace: parent.trace,
		id:     splitmix64(parent.id ^ hashString(name) ^ (idx + 0x51ed270b)),
		parent: parent.id,
		start:  time.Now(), label: LabelFromContext(ctx),
	}
	return ContextWithSpan(ctx, sp), sp
}

// Attr attaches a key/value pair to the span, returned for chaining.
// Nil-safe; call sites guard payload construction with Sink.Enabled (or a
// nil check on the span) to keep the disabled path allocation-free.
func (sp *Span) Attr(key, value string) *Span {
	if sp == nil {
		return nil
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
	return sp
}

// TraceID returns the span's trace id (0 for the nil span).
func (sp *Span) TraceID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.trace
}

// ID returns the span's id (0 for the nil span).
func (sp *Span) ID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.id
}

// End closes the span and emits its event: Name is the span name, T the
// start offset, Dur the elapsed time. Ending twice emits once; ending the
// nil span is free.
func (sp *Span) End() { sp.EndWith(Event{}) }

// EndWith closes the span, merging e's payload fields (counts, values,
// device, ...) into the emitted event. e.Name defaults to the span name
// and the span's identity, timing and attributes always win, so one event
// serves as both the span record and the payload the pre-span trace
// format carried (waves, anneals).
func (sp *Span) EndWith(e Event) {
	if sp == nil || !sp.ended.CompareAndSwap(false, true) {
		return
	}
	if e.Name == "" {
		e.Name = sp.name
	}
	if e.Label == "" {
		e.Label = sp.label
	}
	e.Trace, e.Span, e.Parent = sp.trace, sp.id, sp.parent
	e.T = sp.sink.since(sp.start)
	e.Dur = time.Since(sp.start)
	e.Attrs = sp.attrs
	sp.sink.Emit(e)
}

// EmitCtx emits e annotated with the trace identity of the span carried
// by ctx (the event becomes a point child of that span). Without a span —
// or on the disabled sink — it behaves exactly like Emit.
func (s *Sink) EmitCtx(ctx context.Context, e Event) {
	if s == nil {
		return
	}
	if sp := SpanFromContext(ctx); sp != nil {
		e.Trace, e.Parent = sp.trace, sp.id
	}
	s.Emit(e)
}
