package obs

import (
	"strconv"
	"time"
)

// appendEventJSON appends one JSONL trace line for e to dst. The encoder is
// hand-rolled over the flat Event struct — no reflection, no intermediate
// map — and reuses the sink's scratch buffer, so an enabled trace costs one
// buffered write per event. Zero-valued fields are omitted to keep traces
// compact and greppable.
func appendEventJSON(dst []byte, e *Event) []byte {
	dst = append(dst, `{"t":`...)
	dst = appendSeconds(dst, e.T)
	dst = append(dst, `,"ev":`...)
	dst = strconv.AppendQuote(dst, e.Name)
	if e.Device != "" {
		dst = append(dst, `,"dev":`...)
		dst = strconv.AppendQuote(dst, e.Device)
	}
	if e.Label != "" {
		dst = append(dst, `,"label":`...)
		dst = strconv.AppendQuote(dst, e.Label)
	}
	if e.Run != 0 {
		dst = append(dst, `,"run":`...)
		dst = strconv.AppendInt(dst, int64(e.Run), 10)
	}
	if e.Dur != 0 {
		dst = append(dst, `,"dur":`...)
		dst = appendSeconds(dst, e.Dur)
	}
	if e.Sweeps != 0 {
		dst = append(dst, `,"sweeps":`...)
		dst = strconv.AppendInt(dst, int64(e.Sweeps), 10)
	}
	if e.Flips != 0 {
		dst = append(dst, `,"flips":`...)
		dst = strconv.AppendInt(dst, e.Flips, 10)
	}
	if e.Steps != 0 {
		dst = append(dst, `,"steps":`...)
		dst = strconv.AppendInt(dst, e.Steps, 10)
	}
	if e.N != 0 {
		dst = append(dst, `,"n":`...)
		dst = strconv.AppendInt(dst, int64(e.N), 10)
	}
	if e.Value != 0 {
		dst = append(dst, `,"value":`...)
		dst = appendFloat(dst, e.Value)
	}
	if e.Extra != 0 {
		dst = append(dst, `,"extra":`...)
		dst = appendFloat(dst, e.Extra)
	}
	if e.Trace != 0 {
		dst = append(dst, `,"trace":`...)
		dst = appendHexID(dst, e.Trace)
	}
	if e.Span != 0 {
		dst = append(dst, `,"span":`...)
		dst = appendHexID(dst, e.Span)
	}
	if e.Parent != 0 {
		dst = append(dst, `,"parent":`...)
		dst = appendHexID(dst, e.Parent)
	}
	if len(e.Attrs) > 0 {
		dst = append(dst, `,"attrs":{`...)
		for i, a := range e.Attrs {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendQuote(dst, a.Key)
			dst = append(dst, ':')
			dst = strconv.AppendQuote(dst, a.Value)
		}
		dst = append(dst, '}')
	}
	if len(e.Points) > 0 {
		dst = append(dst, `,"points":[`...)
		for i, p := range e.Points {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, '[')
			dst = strconv.AppendInt(dst, int64(p.Sweep), 10)
			dst = append(dst, ',')
			dst = appendFloat(dst, p.Energy)
			dst = append(dst, ']')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, '}', '\n')
	return dst
}

// appendSeconds encodes a duration as fractional seconds with microsecond
// resolution — the natural unit for both trace analysis and plotting.
func appendSeconds(dst []byte, d time.Duration) []byte {
	return strconv.AppendFloat(dst, d.Seconds(), 'f', 6, 64)
}

// appendFloat encodes a float compactly ('g', shortest round-trip).
func appendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// appendHexID encodes a span/trace id as a fixed-width quoted hex string —
// the OpenTelemetry-style rendering, immune to JSON number precision loss.
func appendHexID(dst []byte, id uint64) []byte {
	const hexDigits = "0123456789abcdef"
	dst = append(dst, '"')
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[id>>uint(shift)&0xf])
	}
	return append(dst, '"')
}
