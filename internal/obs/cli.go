package obs

import (
	"bufio"
	"fmt"
	"net/http"
	"os"

	_ "net/http/pprof" // -pprof: registers /debug/pprof on the default mux
)

// SetupCLI builds the observability sink shared by the CLIs' flags: a JSONL
// trace writer when tracePath is set, a metrics registry when withMetrics or
// pprofAddr is set (published to expvar), and a pprof/expvar HTTP listener
// when pprofAddr is set. The returned sink is nil (disabled) when no flag
// asked for anything.
//
// flush is idempotent and safe to call both deferred and on the interrupt
// path: it flushes the buffered trace tail to disk and prints the metrics
// summary to stderr. prog prefixes the diagnostics ("mqobench", "mqosolve").
func SetupCLI(prog, tracePath string, withMetrics bool, pprofAddr string) (*Sink, func(), error) {
	var reg *Registry
	if withMetrics || pprofAddr != "" {
		reg = NewRegistry()
		PublishExpvar(reg)
	}
	var sink *Sink
	var traceFile *os.File
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, nil, err
		}
		traceFile = f
		sink = NewSink(bufio.NewWriter(f), reg)
	} else if reg != nil {
		sink = NewSink(nil, reg)
	}
	if pprofAddr != "" {
		go func() {
			// The default mux carries the net/http/pprof and expvar handlers.
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "%s: pprof listener: %v\n", prog, err)
			}
		}()
	}
	done := false
	flush := func() {
		if done {
			return
		}
		done = true
		if traceFile != nil {
			if err := sink.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: trace flush: %v\n", prog, err)
			}
			traceFile.Close()
			fmt.Fprintf(os.Stderr, "%s: trace written to %s\n", prog, tracePath)
		}
		if withMetrics && reg != nil {
			fmt.Fprint(os.Stderr, reg.Summary())
		}
	}
	return sink, flush, nil
}
