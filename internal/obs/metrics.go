package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a process-local metrics registry: named counters, gauges and
// histograms, created on first use. All operations are safe for concurrent
// use and every method is nil-safe, so a disabled registry (nil) costs a
// branch per call and instrumentation code never guards.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// a nil registry returns the nil counter, whose Add is free.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		// The zero value is the empty histogram: min/max backfill on the
		// first Observe, so a never-observed histogram exports zeros
		// instead of ±Inf sentinels that would break JSON encoding.
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing float64, updated lock-free. Floats
// rather than ints because several pipeline magnitudes (applied DSS
// savings, discarded savings) are fractional.
type Counter struct{ bits atomic.Uint64 }

// Add increments the counter. Nil-safe.
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count. Nil-safe (zero).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a last-value metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value. Nil-safe (zero).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket geometry: HDR-style base-2 buckets with histSubPerOct
// sub-buckets per octave, covering positive magnitudes in
// [2^histMinExp, 2^histMaxExp). Values outside clamp into the first/last
// bucket; the exact min/max are tracked separately, so clamped tails only
// coarsen mid-distribution quantiles. 8 sub-buckets per octave bound the
// relative quantile error at 2^(1/8)-1 ≈ 9%, plenty for latency tails,
// while keeping a histogram at ~3 KB of fixed, allocation-free state.
const (
	histSubBits   = 3
	histSubPerOct = 1 << histSubBits
	histMinExp    = -20 // ~1e-6: sub-millisecond when observing milliseconds
	histMaxExp    = 30  // ~1e9: ~12 days of milliseconds
	histNBuckets  = (histMaxExp - histMinExp) * histSubPerOct
)

// histBucketIndex maps a positive value to its bucket: the exponent and the
// top three mantissa bits, read straight from the float's bit pattern — no
// log calls on the Observe path.
func histBucketIndex(v float64) int {
	bits := math.Float64bits(v)
	exp := int(bits>>52&0x7ff) - 1023
	sub := int(bits >> (52 - histSubBits) & (histSubPerOct - 1))
	idx := (exp-histMinExp)<<histSubBits | sub
	if idx < 0 {
		return 0
	}
	if idx >= histNBuckets {
		return histNBuckets - 1
	}
	return idx
}

// histBucketUpper is the exclusive upper bound of bucket idx:
// 2^exp · (1 + (sub+1)/8).
func histBucketUpper(idx int) float64 {
	exp := histMinExp + idx>>histSubBits
	sub := idx & (histSubPerOct - 1)
	return math.Ldexp(1+float64(sub+1)/histSubPerOct, exp)
}

// Histogram summarises an observed distribution with fixed log-bucketed
// counts: count, sum, exact min/max, and HDR-style base-2 buckets fine
// enough to export tail quantiles (p50/p90/p99/p999). Observe takes one
// short mutex hold and allocates nothing — the bucket array is inline —
// so it is safe on per-request serving paths; a nil histogram is free.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	// buckets counts positive observations by log-scale index
	// (histBucketIndex); zero counts exact zeros and neg counts v < 0
	// (kept as single masses below every positive bucket — pipeline
	// histograms are latencies, rates and counts, where negatives are
	// exceptional).
	buckets [histNBuckets]int64
	zero    int64
	neg     int64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	switch {
	case v == 0:
		h.zero++
	case v < 0:
		h.neg++
	default:
		h.buckets[histBucketIndex(v)]++
	}
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram's summary. A
// histogram that never observed anything snapshots to all zeros — never
// ±Inf — so registry snapshots stay JSON-encodable.
type HistogramSnapshot struct {
	Count    int64
	Sum      float64
	Min, Max float64
	Mean     float64
	// P50..P999 are quantiles read off the log buckets: each is the upper
	// bound of the bucket holding the rank, clamped to [Min, Max], so the
	// relative error is bounded by the bucket width (~9%).
	P50, P90, P99, P999 float64
}

// quantileLocked returns the value at rank (1-based) of the bucketed
// distribution. Caller holds h.mu.
func (h *Histogram) quantileLocked(rank int64) float64 {
	if rank <= h.neg {
		return h.min // all negatives collapse to the exact minimum
	}
	cum := h.neg + h.zero
	if rank <= cum {
		return 0
	}
	for i := range h.buckets {
		cum += h.buckets[i]
		if rank <= cum {
			v := histBucketUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Snapshot returns the histogram's current summary. Nil-safe (zeroes).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		Mean: h.sum / float64(h.count),
	}
	rank := func(q float64) int64 {
		r := int64(math.Ceil(q * float64(h.count)))
		if r < 1 {
			r = 1
		}
		return r
	}
	s.P50 = h.quantileLocked(rank(0.50))
	s.P90 = h.quantileLocked(rank(0.90))
	s.P99 = h.quantileLocked(rank(0.99))
	s.P999 = h.quantileLocked(rank(0.999))
	return s
}

// HistogramBucket is one cumulative bucket of a histogram export: Count
// observations were <= Upper.
type HistogramBucket struct {
	Upper float64
	Count int64
}

// CumulativeBuckets returns the non-empty buckets of the distribution in
// Prometheus's cumulative form (each count includes all smaller buckets),
// without the implicit +Inf bucket — that is Snapshot().Count. Negative
// observations surface under an le="0" bucket together with exact zeros.
// Nil-safe (nil slice).
func (h *Histogram) CumulativeBuckets() []HistogramBucket {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []HistogramBucket
	cum := h.neg + h.zero
	if cum > 0 {
		out = append(out, HistogramBucket{Upper: 0, Count: cum})
	}
	for i := range h.buckets {
		if h.buckets[i] == 0 {
			continue
		}
		cum += h.buckets[i]
		out = append(out, HistogramBucket{Upper: histBucketUpper(i), Count: cum})
	}
	return out
}

// Snapshot renders the registry as a plain map, suitable for JSON encoding
// (this is what the expvar export publishes). Histograms export their
// count/mean/min/max.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		s := h.Snapshot()
		// Every field of an empty snapshot is exactly zero (never ±Inf),
		// so the map always survives encoding/json — /statsz and the
		// expvar export depend on it (TestEmptyHistogramExportsZeros).
		out[name] = map[string]any{
			"count": s.Count, "mean": s.Mean, "min": s.Min, "max": s.Max,
			"p50": s.P50, "p90": s.P90, "p99": s.P99, "p999": s.P999,
		}
	}
	return out
}

// Summary renders the registry as an aligned, alphabetically sorted
// human-readable table — the "-metrics" output of the CLIs.
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	type line struct{ name, value string }
	lines := make([]line, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		lines = append(lines, line{name, fmt.Sprintf("%.6g", c.Value())})
	}
	for name, g := range r.gauges {
		lines = append(lines, line{name, fmt.Sprintf("%.6g", g.Value())})
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	r.mu.Unlock()
	for name, h := range hists {
		s := h.Snapshot()
		lines = append(lines, line{name, fmt.Sprintf("count=%d p50=%.4g p90=%.4g p99=%.4g mean=%.4g min=%.4g max=%.4g",
			s.Count, s.P50, s.P90, s.P99, s.Mean, s.Min, s.Max)})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	width := 0
	for _, l := range lines {
		if len(l.name) > width {
			width = len(l.name)
		}
	}
	var sb strings.Builder
	for _, l := range lines {
		fmt.Fprintf(&sb, "%-*s  %s\n", width, l.name, l.value)
	}
	return sb.String()
}

// expvarOnce guards the process-wide expvar name: expvar.Publish panics on
// duplicates, and tests may wire several sinks.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// PublishExpvar exposes reg under the expvar name "mqo" (served on
// /debug/vars by the default HTTP mux, which the CLIs' -pprof flag
// starts). Calling it again swaps the published registry; the expvar name
// is registered once per process.
func PublishExpvar(reg *Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("mqo", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}
