package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a process-local metrics registry: named counters, gauges and
// histograms, created on first use. All operations are safe for concurrent
// use and every method is nil-safe, so a disabled registry (nil) costs a
// branch per call and instrumentation code never guards.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// a nil registry returns the nil counter, whose Add is free.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{min: math.Inf(1), max: math.Inf(-1)}
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing float64, updated lock-free. Floats
// rather than ints because several pipeline magnitudes (applied DSS
// savings, discarded savings) are fractional.
type Counter struct{ bits atomic.Uint64 }

// Add increments the counter. Nil-safe.
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count. Nil-safe (zero).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a last-value metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value. Nil-safe (zero).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of base-2 magnitude buckets a histogram keeps
// on each side of 1.0 (covering ~[2^-16, 2^16) — utilisation ratios,
// acceptance rates, energies and durations all land inside).
const histBuckets = 16

// Histogram summarises an observed distribution: count, sum, min, max and
// coarse base-2 magnitude buckets (enough to tell "mostly near zero" from
// "mostly near one" for rates, and to spot outliers for durations, without
// the memory or code weight of a full quantile sketch).
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	// buckets[i] counts observations v with 2^(i-histBuckets) <= |v| <
	// 2^(i-histBuckets+1); index 0 also absorbs smaller magnitudes and the
	// last index larger ones. zero counts exact zeros; neg counts v < 0.
	buckets [2 * histBuckets]int64
	zero    int64
	neg     int64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	switch {
	case v == 0:
		h.zero++
	default:
		if v < 0 {
			h.neg++
		}
		e := int(math.Floor(math.Log2(math.Abs(v)))) + histBuckets
		if e < 0 {
			e = 0
		}
		if e >= len(h.buckets) {
			e = len(h.buckets) - 1
		}
		h.buckets[e]++
	}
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram's summary.
type HistogramSnapshot struct {
	Count    int64
	Sum      float64
	Min, Max float64
	Mean     float64
}

// Snapshot returns the histogram's current summary. Nil-safe (zeroes).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	} else {
		s.Min, s.Max = 0, 0
	}
	return s
}

// Snapshot renders the registry as a plain map, suitable for JSON encoding
// (this is what the expvar export publishes). Histograms export their
// count/mean/min/max.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		s := h.Snapshot()
		out[name] = map[string]any{"count": s.Count, "mean": s.Mean, "min": s.Min, "max": s.Max}
	}
	return out
}

// Summary renders the registry as an aligned, alphabetically sorted
// human-readable table — the "-metrics" output of the CLIs.
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	type line struct{ name, value string }
	lines := make([]line, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		lines = append(lines, line{name, fmt.Sprintf("%.6g", c.Value())})
	}
	for name, g := range r.gauges {
		lines = append(lines, line{name, fmt.Sprintf("%.6g", g.Value())})
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	r.mu.Unlock()
	for name, h := range hists {
		s := h.Snapshot()
		lines = append(lines, line{name, fmt.Sprintf("count=%d mean=%.4g min=%.4g max=%.4g", s.Count, s.Mean, s.Min, s.Max)})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	width := 0
	for _, l := range lines {
		if len(l.name) > width {
			width = len(l.name)
		}
	}
	var sb strings.Builder
	for _, l := range lines {
		fmt.Fprintf(&sb, "%-*s  %s\n", width, l.name, l.value)
	}
	return sb.String()
}

// expvarOnce guards the process-wide expvar name: expvar.Publish panics on
// duplicates, and tests may wire several sinks.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// PublishExpvar exposes reg under the expvar name "mqo" (served on
// /debug/vars by the default HTTP mux, which the CLIs' -pprof flag
// starts). Calling it again swaps the published registry; the expvar name
// is registered once per process.
func PublishExpvar(reg *Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("mqo", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}
