package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// LintPrometheus validates Prometheus text-exposition syntax — the small
// in-repo linter CI runs against a live /metricsz scrape, so a rendering
// regression fails fast instead of surfacing as a scrape error in
// production monitoring. It checks line syntax (TYPE/HELP comments,
// sample lines with optional labels and a parseable value), that no
// metric declares two TYPEs, and histogram invariants: every _bucket
// carries an le label, bucket counts are cumulative (non-decreasing in
// ascending le order per series), a +Inf bucket exists and equals _count.
func LintPrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	types := map[string]string{}
	// histogram bucket state per series key (name + non-le labels)
	type bucketState struct {
		lastLe    float64
		lastCount float64
		infCount  float64
		hasInf    bool
	}
	buckets := map[string]*bucketState{}
	counts := map[string]float64{}
	lineNo := 0
	samples := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 || (fields[1] != "TYPE" && fields[1] != "HELP" && fields[1] != "EOF") {
				return fmt.Errorf("line %d: unknown comment form %q (want # TYPE, # HELP or # EOF)", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, kind := fields[2], fields[3]
				if !metricNameRE.MatchString(name) {
					return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: invalid metric type %q", lineNo, kind)
				}
				if prev, ok := types[name]; ok && prev != kind {
					return fmt.Errorf("line %d: metric %s declared both %s and %s", lineNo, name, prev, kind)
				}
				types[name] = kind
			}
			continue
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: unparseable sample line %q", lineNo, line)
		}
		name, labels, valueStr := m[1], m[2], m[3]
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil && valueStr != "+Inf" && valueStr != "-Inf" && valueStr != "NaN" {
			return fmt.Errorf("line %d: unparseable value %q", lineNo, valueStr)
		}
		le, rest, err := splitLe(labels)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if le == "" {
				return fmt.Errorf("line %d: histogram bucket %s has no le label", lineNo, name)
			}
			key := name + "|" + rest
			st, ok := buckets[key]
			if !ok {
				st = &bucketState{lastLe: math.Inf(-1)}
				buckets[key] = st
			}
			if le == "+Inf" {
				st.hasInf = true
				st.infCount = value
				break
			}
			leV, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("line %d: unparseable le %q", lineNo, le)
			}
			if leV < st.lastLe {
				return fmt.Errorf("line %d: bucket le %g out of order (previous %g)", lineNo, leV, st.lastLe)
			}
			if value < st.lastCount {
				return fmt.Errorf("line %d: bucket count %g not cumulative (previous %g)", lineNo, value, st.lastCount)
			}
			st.lastLe, st.lastCount = leV, value
		case strings.HasSuffix(name, "_count"):
			counts[strings.TrimSuffix(name, "_count")+"|"+rest] = value
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	for key, st := range buckets {
		name := strings.TrimSuffix(strings.SplitN(key, "|", 2)[0], "_bucket")
		rest := strings.SplitN(key, "|", 2)[1]
		if !st.hasInf {
			return fmt.Errorf("histogram %s{%s}: no +Inf bucket", name, rest)
		}
		if st.lastCount > st.infCount {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %g below last bucket %g", name, rest, st.infCount, st.lastCount)
		}
		if c, ok := counts[name+"|"+rest]; ok && c != st.infCount {
			return fmt.Errorf("histogram %s{%s}: _count %g != +Inf bucket %g", name, rest, c, st.infCount)
		}
	}
	return nil
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRE     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})?\s+(\S+)(?:\s+\d+)?$`)
	labelRE      = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// splitLe validates a label body ("a=\"x\",le=\"5\"") and splits off the
// le value, returning the remaining labels as a normalised key.
func splitLe(labels string) (le, rest string, err error) {
	if labels == "" {
		return "", "", nil
	}
	var others []string
	for _, part := range strings.Split(labels, ",") {
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return "", "", fmt.Errorf("malformed label %q", part)
		}
		k, v := part[:eq], part[eq+1:]
		if !labelRE.MatchString(k) {
			return "", "", fmt.Errorf("invalid label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return "", "", fmt.Errorf("label %s value %q not quoted", k, v)
		}
		if k == "le" {
			le = v[1 : len(v)-1]
			continue
		}
		others = append(others, part)
	}
	return le, strings.Join(others, ","), nil
}
