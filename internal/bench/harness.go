// Package bench is the experiment harness reproducing the paper's
// evaluation (Sec. 5): it assembles the eight competing MQO approaches,
// runs them over generated instance corpora, normalises solution costs
// against the per-instance best (the paper's "normalised solution costs"),
// and renders the rows behind every figure.
package bench

import (
	"context"
	"fmt"
	"time"

	"incranneal/internal/baseline"
	"incranneal/internal/core"
	"incranneal/internal/da"
	"incranneal/internal/hqa"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
	"incranneal/internal/sa"
	"incranneal/internal/solver"
)

// Config budgets the experiment roster. The zero value is usable and
// corresponds to a laptop-scale reduction of the paper's setup; Paper()
// returns the full-scale configuration.
type Config struct {
	// DACapacity is the simulated Digital Annealer variable capacity. The
	// real device holds 8,192 variables; reduced-scale experiments shrink
	// the device proportionally so partitioning still kicks in. Zero
	// means 512.
	DACapacity int
	// Runs is the number of annealing runs per (partial) problem; the
	// paper uses 16. Zero means 4 (reduced scale).
	Runs int
	// SweepsPerVar scales the Digital Annealer's total step budget with
	// the problem size (total steps = SweepsPerVar × #plans, split across
	// partitions so the overall iteration count stays constant between
	// strategies, as in the paper's setup). Zero means 100.
	SweepsPerVar int
	// HCIterations bounds hill climbing move evaluations. Zero means
	// 200,000.
	HCIterations int
	// GeneticGenerations and GeneticPopulations configure the GA runs;
	// the paper evaluates population sizes 50 and 200 and reports the
	// best. Zeros mean 60 generations over populations {50, 200}.
	GeneticGenerations int
	GeneticPopulations []int
	// TimeBudget bounds each algorithm run's wall-clock time. Zero means
	// unbounded.
	TimeBudget time.Duration
	// Parallelism bounds each solve's worker pool (annealing runs and
	// partition-level concurrency). Zero means GOMAXPROCS; results are
	// identical for every setting, so reports stay comparable across
	// machines.
	Parallelism int
	// Middleware, when non-nil, wraps every annealing device the roster
	// constructs (fault injection, retry/timeout/breaker/fallback stacks —
	// see MiddlewareSpec). Baselines without a device are unaffected. With
	// no faults injected the wrapped rosters score bit-identically.
	Middleware func(solver.Solver) solver.Solver
	// FailFast forwards to core.Options.FailFast: abort a run on terminal
	// device failure instead of degrading to greedy repair.
	FailFast bool
	// Pipeline forwards the incremental-phase scheduling flags
	// (-dag-parallel, -dag-density) into every incremental solve the
	// roster constructs. The zero value is the default pipeline: DAG
	// scheduling on. Results are identical either way — the spec only
	// moves wall-clock.
	Pipeline PipelineSpec
}

// wrap applies the configured device middleware.
func (c Config) wrap(dev solver.Solver) solver.Solver {
	if c.Middleware != nil {
		return c.Middleware(dev)
	}
	return dev
}

// Paper returns the configuration matching the paper's experimental setup
// (Sec. 5.1): the 8,192-variable DA, 16 runs, and the heuristics' larger
// budgets. Running the full corpus at this configuration takes hours.
func Paper() Config {
	return Config{
		DACapacity:         8192,
		Runs:               16,
		SweepsPerVar:       100,
		HCIterations:       2000000,
		GeneticGenerations: 500,
		GeneticPopulations: []int{50, 200},
	}
}

func (c Config) withDefaults() Config {
	if c.DACapacity <= 0 {
		c.DACapacity = 512
	}
	if c.Runs <= 0 {
		c.Runs = 4
	}
	if c.SweepsPerVar <= 0 {
		c.SweepsPerVar = 100
	}
	if c.HCIterations <= 0 {
		c.HCIterations = 200000
	}
	if c.GeneticGenerations <= 0 {
		c.GeneticGenerations = 60
	}
	if len(c.GeneticPopulations) == 0 {
		c.GeneticPopulations = []int{50, 200}
	}
	return c
}

// headerLines renders the effective run configuration for report headers:
// everything a reader needs to reproduce a table from the binary alone.
// Per-instance seeds derive deterministically from the figure label and the
// instance axes (classSeed), so naming the derivation pins them.
func (c Config) headerLines(scale Scale) []string {
	c = c.withDefaults()
	par := "GOMAXPROCS"
	switch {
	case c.Parallelism > 0:
		par = fmt.Sprintf("%d", c.Parallelism)
	case c.Parallelism < 0:
		par = "sequential"
	}
	budget := "unbounded"
	if c.TimeBudget > 0 {
		budget = c.TimeBudget.String()
	}
	return []string{
		fmt.Sprintf("scale=%s instances=%d device=da(capacity=%d)", scale.Name, scale.Instances, c.DACapacity),
		fmt.Sprintf("runs=%d sweeps_per_var=%d (total sweeps = sweeps_per_var × #plans) parallelism=%s time_budget=%s", c.Runs, c.SweepsPerVar, par, budget),
		"seeds: classSeed(figure label, axes, instance) — fixed per cell, independent of execution order",
	}
}

// Score is the result of one algorithm run: the solution cost plus, for the
// pipeline-based approaches, the per-phase wall-clock breakdown. Baselines
// without pipeline phases leave Timings zero.
type Score struct {
	Cost    float64
	Timings core.PhaseTimings
	// Degraded counts partial problems completed by greedy repair after a
	// terminal device failure (see core.Outcome.Degradations).
	Degraded int
}

// Algorithm is one competing MQO approach of the evaluation.
type Algorithm struct {
	// Name as used in the paper's figures.
	Name string
	// Run optimises p and returns the solution score.
	Run func(ctx context.Context, p *mqo.Problem, seed int64) (Score, error)
}

// Roster assembles the eight approaches of Sec. 5.1 under the given
// budget configuration:
//
//	HC, Genetic, SA (Default), SA (Incremental), HQA,
//	DA (Default), DA (Parallel), DA (Incremental).
func Roster(cfg Config) []Algorithm {
	cfg = cfg.withDefaults()
	return []Algorithm{
		HC(cfg), Genetic(cfg),
		SADefault(cfg), SAIncremental(cfg),
		HQAIncremental(cfg),
		DADefault(cfg), DAParallel(cfg), DAIncremental(cfg),
	}
}

// ProcessingRoster returns only the DA processing-strategy comparison used
// by Figs. 4 and 5: default vs. parallel vs. incremental.
func ProcessingRoster(cfg Config) []Algorithm {
	cfg = cfg.withDefaults()
	return []Algorithm{DADefault(cfg), DAParallel(cfg), DAIncremental(cfg)}
}

// HC is the hill-climbing baseline (Dokeroglu et al.).
func HC(cfg Config) Algorithm {
	cfg = cfg.withDefaults()
	return Algorithm{
		Name: "HC",
		Run: func(ctx context.Context, p *mqo.Problem, seed int64) (Score, error) {
			res, err := baseline.HillClimb(ctx, p, baseline.Options{
				MaxIterations: cfg.HCIterations, TimeBudget: cfg.TimeBudget, Seed: seed,
			})
			if err != nil {
				return Score{}, err
			}
			return Score{Cost: res.Cost}, nil
		},
	}
}

// Genetic is the GA baseline (Bayir et al.); like the paper it evaluates
// the configured population sizes and reports the best result.
func Genetic(cfg Config) Algorithm {
	cfg = cfg.withDefaults()
	return Algorithm{
		Name: "Genetic",
		Run: func(ctx context.Context, p *mqo.Problem, seed int64) (Score, error) {
			best := 0.0
			for i, pop := range cfg.GeneticPopulations {
				res, err := baseline.Genetic(ctx, p, baseline.GeneticOptions{
					Options:        baseline.Options{MaxIterations: cfg.GeneticGenerations, TimeBudget: cfg.TimeBudget, Seed: seed + int64(i)},
					PopulationSize: pop,
				})
				if err != nil {
					return Score{}, err
				}
				if i == 0 || res.Cost < best {
					best = res.Cost
				}
			}
			return Score{Cost: best}, nil
		},
	}
}

// SADefault runs classical simulated annealing on the unpartitioned QUBO.
func SADefault(cfg Config) Algorithm {
	cfg = cfg.withDefaults()
	return Algorithm{
		Name: "SA (Default)",
		Run: func(ctx context.Context, p *mqo.Problem, seed int64) (Score, error) {
			out, err := core.SolveDefault(ctx, p, core.Options{
				Device: cfg.wrap(&sa.Solver{}), Runs: cfg.Runs,
				TotalSweeps: saSweeps(cfg, p), Seed: seed, Parallelism: cfg.Parallelism,
				FailFast: cfg.FailFast,
			})
			if err != nil {
				return Score{}, err
			}
			return Score{Cost: out.Cost, Timings: out.Timings, Degraded: len(out.Degradations)}, nil
		},
	}
}

// SAIncremental applies the paper's incremental strategy with classical SA
// as the annealing backend (same partitioning capacity as the DA, reduced
// per-partition iteration budgets keeping the total constant).
func SAIncremental(cfg Config) Algorithm {
	cfg = cfg.withDefaults()
	return Algorithm{
		Name: "SA (Incremental)",
		Run: func(ctx context.Context, p *mqo.Problem, seed int64) (Score, error) {
			opt := core.Options{
				Device: cfg.wrap(&sa.Solver{}), Capacity: cfg.DACapacity, Runs: cfg.Runs,
				TotalSweeps: saSweeps(cfg, p), Seed: seed, Parallelism: cfg.Parallelism,
				FailFast: cfg.FailFast,
			}
			cfg.Pipeline.Apply(&opt)
			out, err := core.SolveIncremental(ctx, p, opt)
			if err != nil {
				return Score{}, err
			}
			return Score{Cost: out.Cost, Timings: out.Timings, Degraded: len(out.Degradations)}, nil
		},
	}
}

// HQAIncremental runs the hybrid quantum annealer simulator with the
// incremental strategy (the only HQA variant the paper could afford).
func HQAIncremental(cfg Config) Algorithm {
	cfg = cfg.withDefaults()
	return Algorithm{
		Name: "HQA",
		Run: func(ctx context.Context, p *mqo.Problem, seed int64) (Score, error) {
			opt := core.Options{
				Device: cfg.wrap(&hqa.Solver{}), Capacity: cfg.DACapacity, Runs: 1,
				Seed: seed, Parallelism: cfg.Parallelism,
				FailFast: cfg.FailFast,
			}
			cfg.Pipeline.Apply(&opt)
			out, err := core.SolveIncremental(ctx, p, opt)
			if err != nil {
				return Score{}, err
			}
			return Score{Cost: out.Cost, Timings: out.Timings, Degraded: len(out.Degradations)}, nil
		},
	}
}

// DADefault runs the Digital Annealer with its vendor decomposition on the
// unpartitioned QUBO.
func DADefault(cfg Config) Algorithm {
	cfg = cfg.withDefaults()
	return Algorithm{
		Name: "DA (Default)",
		Run: func(ctx context.Context, p *mqo.Problem, seed int64) (Score, error) {
			out, err := core.SolveDefault(ctx, p, core.Options{
				Device: cfg.wrap(&da.Solver{CapacityVars: cfg.DACapacity}), Runs: cfg.Runs,
				TotalSweeps: daSweeps(cfg, p), Seed: seed, Parallelism: cfg.Parallelism,
				FailFast: cfg.FailFast,
			})
			if err != nil {
				return Score{}, err
			}
			return Score{Cost: out.Cost, Timings: out.Timings, Degraded: len(out.Degradations)}, nil
		},
	}
}

// DAParallel runs the DA over independently processed partitions.
func DAParallel(cfg Config) Algorithm {
	cfg = cfg.withDefaults()
	return Algorithm{
		Name: "DA (Parallel)",
		Run: func(ctx context.Context, p *mqo.Problem, seed int64) (Score, error) {
			out, err := core.SolveParallel(ctx, p, core.Options{
				Device: cfg.wrap(&da.Solver{CapacityVars: cfg.DACapacity}), Runs: cfg.Runs,
				TotalSweeps: daSweeps(cfg, p), Seed: seed, Parallelism: cfg.Parallelism,
				FailFast: cfg.FailFast,
			})
			if err != nil {
				return Score{}, err
			}
			return Score{Cost: out.Cost, Timings: out.Timings, Degraded: len(out.Degradations)}, nil
		},
	}
}

// DAIncremental is the paper's method: DA with annealer-backed partitioning
// and DSS-steered incremental processing.
func DAIncremental(cfg Config) Algorithm {
	cfg = cfg.withDefaults()
	return Algorithm{
		Name: "DA (Incremental)",
		Run: func(ctx context.Context, p *mqo.Problem, seed int64) (Score, error) {
			opt := core.Options{
				Device: cfg.wrap(&da.Solver{CapacityVars: cfg.DACapacity}), Runs: cfg.Runs,
				TotalSweeps: daSweeps(cfg, p), Seed: seed, Parallelism: cfg.Parallelism,
				FailFast: cfg.FailFast,
			}
			cfg.Pipeline.Apply(&opt)
			out, err := core.SolveIncremental(ctx, p, opt)
			if err != nil {
				return Score{}, err
			}
			return Score{Cost: out.Cost, Timings: out.Timings, Degraded: len(out.Degradations)}, nil
		},
	}
}

// daSweeps is the Digital Annealer's total step budget for p: proportional
// to the problem size so the effective number of sweeps per variable stays
// constant across the corpus, exactly as a fixed per-run optimisation time
// on the real device would behave.
func daSweeps(cfg Config, p *mqo.Problem) int {
	return cfg.SweepsPerVar * p.NumPlans()
}

// saSweeps is the classical SA budget: the dwave-neal default of 1,000
// sweeps the paper uses; the incremental strategy divides it across
// partitions to keep the total constant (Sec. 5.1).
func saSweeps(Config, *mqo.Problem) int { return 1000 }

// Measurement is one (algorithm, instance) result.
type Measurement struct {
	Algorithm string
	Instance  string
	Cost      float64
	// Normalised is Cost divided by the best cost any algorithm achieved
	// on the same instance; the winner scores exactly 1.
	Normalised float64
	Elapsed    time.Duration
	// Timings breaks Elapsed down by pipeline phase for the pipeline-based
	// approaches (zero for the baselines).
	Timings core.PhaseTimings
	// Degraded counts greedy-repaired partial problems (device failures
	// absorbed by graceful degradation).
	Degraded int
	// AnnealP50/AnnealP99 are the per-device-call anneal latency quantiles
	// in milliseconds, from a metrics-only sink injected around the run
	// (zero for baselines that never touch a device).
	AnnealP50 float64
	AnnealP99 float64
	Err       error
}

// RunInstance executes every algorithm on p and fills in normalised costs.
// Each run observes through a private metrics registry (chained to any sink
// already on ctx), so per-phase latency quantiles are attributable per
// measurement without the algorithms sharing histogram state.
func RunInstance(ctx context.Context, algos []Algorithm, p *mqo.Problem, seed int64) []Measurement {
	ms := make([]Measurement, len(algos))
	best := 0.0
	haveBest := false
	for i, a := range algos {
		reg := obs.NewRegistry()
		runCtx := obs.NewContext(ctx, obs.NewSink(nil, reg).Chain(obs.FromContext(ctx)))
		start := time.Now()
		score, err := a.Run(runCtx, p, seed+int64(i)*7919)
		anneal := reg.Histogram("latency.anneal_ms").Snapshot()
		ms[i] = Measurement{Algorithm: a.Name, Instance: p.Name, Cost: score.Cost, Elapsed: time.Since(start), Timings: score.Timings, Degraded: score.Degraded, AnnealP50: anneal.P50, AnnealP99: anneal.P99, Err: err}
		if err == nil && (!haveBest || score.Cost < best) {
			best = score.Cost
			haveBest = true
		}
	}
	for i := range ms {
		if ms[i].Err == nil && best != 0 {
			ms[i].Normalised = ms[i].Cost / best
		}
	}
	return ms
}
