package bench

import (
	"context"
	"fmt"
	"time"

	"incranneal/internal/core"
	"incranneal/internal/da"
	"incranneal/internal/workload"
)

// PipelineSpec captures the incremental-pipeline CLI flags shared by
// mqosolve and mqobench (the MiddlewareSpec pattern): how the incremental
// phase schedules its partial problems. The zero value is the default
// pipeline — DAG scheduling enabled at the core's density threshold.
type PipelineSpec struct {
	// DisableDAG is -dag-parallel=false: force the strictly sequential
	// chain of Algorithm 2.
	DisableDAG bool
	// DAGDensity is -dag-density: the DSS dependency-graph edge density
	// above which the scheduler falls back to the sequential chain. Zero
	// keeps the core default (0.5); >= 1 never falls back.
	DAGDensity float64
}

// Apply writes the spec into a solve's options.
func (s PipelineSpec) Apply(opt *core.Options) {
	opt.DisableDAG = s.DisableDAG
	opt.DAGDensityThreshold = s.DAGDensity
}

// AblationDAG compares the incremental phase's execution orders on
// topology-controlled sparse-DAG instances (workload.GenerateDAGSweep, one
// partial problem per community): the sequential chain of Algorithm 2, the
// DAG-parallel wave schedule, and the DSS-off ablation (an edgeless graph —
// maximal concurrency, no steering). Quality columns (final cost,
// re-applied savings) must agree bit for bit between sequential and DAG;
// the wall columns show what the dependency slack buys.
func AblationDAG(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:      "ablation-dag",
		Title:   "Incremental phase: sequential chain vs. DAG-parallel vs. DSS off",
		Header:  cfg.headerLines(scale),
		Columns: []string{"instance", "dag (waves×width)", "cost (seq)", "cost (dag)", "cost (dss off)", "reapplied (seq)", "reapplied (dag)", "wall (seq)", "wall (dag)"},
	}
	queries := scale.QuerySet[len(scale.QuerySet)-1]
	const communities = 8
	for inst := 0; inst < scale.Instances; inst++ {
		in, err := workload.GenerateDAGSweep(workload.DAGSweepConfig{
			Queries: queries, PPQ: scale.StandardPPQ, Communities: communities,
			IntraDensity: 0.4, CrossDensity: 0.1,
			Seed: classSeed("abl-dag", inst, 0, 0),
		})
		if err != nil {
			return nil, err
		}
		p := in.Problem
		solve := func(disableDAG, disableDSS bool) (*core.Outcome, time.Duration, error) {
			subs, err := in.SubProblems()
			if err != nil {
				return nil, 0, err
			}
			opt := core.Options{
				Device: cfg.wrap(&da.Solver{CapacityVars: cfg.DACapacity}), Runs: cfg.Runs,
				TotalSweeps: daSweeps(cfg, p), Seed: classSeed("abl-dag-run", inst, 0, 0),
				Parallelism: cfg.Parallelism, FailFast: cfg.FailFast,
				DisableDAG: disableDAG, DisableDSS: disableDSS,
			}
			start := time.Now()
			out, err := core.IncrementalOverSubProblems(ctx, p, subs, opt)
			return out, time.Since(start), err
		}
		seq, seqWall, err := solve(true, false)
		if err != nil {
			return nil, err
		}
		dag, dagWall, err := solve(false, false)
		if err != nil {
			return nil, err
		}
		off, _, err := solve(false, true)
		if err != nil {
			return nil, err
		}
		shape := "fallback"
		if dag.DAG != nil && !dag.DAG.Fallback {
			shape = fmt.Sprintf("%d×%d", dag.DAG.Waves, dag.DAG.Width)
		}
		r.AddRow(p.Name, shape,
			fmt.Sprintf("%.1f", seq.Cost),
			fmt.Sprintf("%.1f", dag.Cost),
			fmt.Sprintf("%.1f", off.Cost),
			fmt.Sprintf("%.1f", seq.ReappliedSavings),
			fmt.Sprintf("%.1f", dag.ReappliedSavings),
			seqWall.Round(time.Millisecond).String(),
			dagWall.Round(time.Millisecond).String())
	}
	r.Notes = append(r.Notes,
		"sequential and DAG columns are bit-identical by construction (same solves, same seeds, deterministic join order); any difference is a bug",
		"wall-clock gains require Parallelism > 1 and spare cores (or a latency-bound device); on one core the schedule is cost-neutral",
		"DSS off solves every partial problem independently — the quality gap to the other columns is what steering is worth on this topology")
	return r, nil
}
