package bench

import (
	"context"
	"fmt"

	"incranneal/internal/core"
	"incranneal/internal/da"
)

// AblationBudget sweeps the Digital Annealer's step budget (in sweeps per
// variable) and reports the incremental pipeline's solution cost at each
// level — the quality-vs-effort curve behind the choice of a constant
// total iteration budget in the paper's comparisons. Diminishing returns
// past ~100 sweeps/variable justify the harness default.
func AblationBudget(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:      "ablation-budget",
		Title:   "Solution cost vs. annealing budget (DA incremental)",
		Header:  cfg.headerLines(scale),
		Columns: []string{"instance", "sweeps/var", "cost", "sweeps performed"},
	}
	levels := []int{10, 40, 100, 200}
	for inst := 0; inst < scale.Instances; inst++ {
		// A mid-sized instance keeps the 4-level sweep affordable.
		p, err := ablationInstance(scale, inst)
		if err != nil {
			return nil, err
		}
		for _, perVar := range levels {
			out, err := core.SolveIncremental(ctx, p, core.Options{
				Device:      &da.Solver{CapacityVars: cfg.DACapacity},
				Runs:        cfg.Runs,
				TotalSweeps: perVar * p.NumPlans(),
				Seed:        classSeed("abl-budget", inst, perVar, 0),
			})
			if err != nil {
				return nil, err
			}
			r.AddRow(p.Name, fmt.Sprintf("%d", perVar),
				fmt.Sprintf("%.1f", out.Cost), fmt.Sprintf("%d", out.Sweeps))
		}
	}
	r.Notes = append(r.Notes, "costs should be non-increasing in the budget, flattening past ~100 sweeps/variable")
	return r, nil
}
