package bench

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"incranneal/internal/obs"
)

func TestThinPoints(t *testing.T) {
	pts := make([]obs.ConvPoint, 11)
	for i := range pts {
		pts[i] = obs.ConvPoint{Sweep: i * 10, Energy: float64(-i)}
	}
	out := thinPoints(pts, 5)
	if len(out) != 5 {
		t.Fatalf("len = %d, want 5", len(out))
	}
	if out[0] != pts[0] || out[4] != pts[10] {
		t.Errorf("first/last not kept: %v", out)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Sweep <= out[i-1].Sweep {
			t.Errorf("thinned points not increasing: %v", out)
		}
	}
	if got := thinPoints(pts[:3], 5); len(got) != 3 {
		t.Errorf("short curve altered: %v", got)
	}
}

func TestConvergenceRowsMergeRuns(t *testing.T) {
	events := []obs.Event{
		// Two runs of the same sub, completion order scrambled: the curve
		// must be the running min over the union of the points.
		{Name: "run", Device: "da", Label: "sub01", Run: 1, Points: []obs.ConvPoint{{Sweep: 0, Energy: -5}, {Sweep: 20, Energy: -9}}},
		{Name: "run", Device: "da", Label: "sub00", Run: 0, Points: []obs.ConvPoint{{Sweep: 0, Energy: -4}, {Sweep: 10, Energy: -8}, {Sweep: 30, Energy: -12}}},
		{Name: "run", Device: "da", Label: "sub00", Run: 1, Points: []obs.ConvPoint{{Sweep: 0, Energy: -6}, {Sweep: 25, Energy: -10}}},
		// Bisection solves must not pollute the MQO convergence table.
		{Name: "run", Device: "da", Label: "bisect", Run: 0, Points: []obs.ConvPoint{{Sweep: 0, Energy: -99}}},
		{Name: "merge", Label: "sub00", N: 1, Value: 40},
		{Name: "merge", Label: "sub01", N: 2, Value: 33},
	}
	rows := convergenceRows(events)
	var scopes []string
	for _, r := range rows {
		scopes = append(scopes, r.scope)
	}
	joined := strings.Join(scopes, ",")
	if strings.Contains(joined, "bisect") {
		t.Errorf("bisection runs leaked into rows: %v", rows)
	}
	// sub scopes sorted first, global last.
	if rows[len(rows)-1].scope != "global" || rows[len(rows)-2].scope != "global" {
		t.Errorf("global rows not last: %v", scopes)
	}
	var sub00 []convRow
	for _, r := range rows {
		if r.scope == "sub00" {
			sub00 = append(sub00, r)
		}
	}
	// Union of sub00's runs: (0,-6) then (10,-8), (20 absent), (25,-10), (30,-12).
	want := []convRow{{"sub00", 0, -6}, {"sub00", 10, -8}, {"sub00", 25, -10}, {"sub00", 30, -12}}
	if len(sub00) != len(want) {
		t.Fatalf("sub00 rows = %v, want %v", sub00, want)
	}
	for i := range want {
		if sub00[i] != want[i] {
			t.Errorf("sub00[%d] = %v, want %v", i, sub00[i], want[i])
		}
	}
	for i := 1; i < len(sub00); i++ {
		if sub00[i].energy >= sub00[i-1].energy {
			t.Errorf("incumbent curve not strictly decreasing: %v", sub00)
		}
	}
}

// TestConvergenceDSSAblation pins the figure's reason to exist: with dynamic
// search steering on, discarded savings are re-applied (reapplied > 0) and
// the trajectory differs from the DSS-off run under the identical seed and
// sweep budget.
func TestConvergenceDSSAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full incremental pipeline twice")
	}
	scale := SmokeScale()
	cfg := ConfigFor(scale)
	r, err := Convergence(context.Background(), cfg, scale)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "convergence" || len(r.Header) == 0 {
		t.Fatalf("malformed report: %+v", r)
	}
	byVariant := map[string][]string{}
	for _, row := range r.Rows {
		if len(row) != len(r.Columns) {
			t.Fatalf("row width %d != %d columns: %v", len(row), len(r.Columns), row)
		}
		byVariant[row[0]] = append(byVariant[row[0]], strings.Join(row[1:], "|"))
	}
	for _, v := range []string{"dss-on", "dss-off"} {
		rows := byVariant[v]
		if len(rows) == 0 {
			t.Fatalf("no rows for variant %s", v)
		}
		var haveSub, haveGlobal bool
		for _, row := range rows {
			if strings.HasPrefix(row, "sub") {
				haveSub = true
			}
			if strings.HasPrefix(row, "global") {
				haveGlobal = true
			}
		}
		if !haveSub || !haveGlobal {
			t.Errorf("%s missing scopes (sub=%v global=%v):\n%v", v, haveSub, haveGlobal, rows)
		}
	}
	if strings.Join(byVariant["dss-on"], "\n") == strings.Join(byVariant["dss-off"], "\n") {
		t.Error("DSS on and off produced identical trajectories — ablation indistinguishable")
	}
	reapplied := map[string]float64{}
	for _, n := range r.Notes {
		var cost, reap float64
		var parts, sweeps int
		var name string
		if _, err := fmt.Sscanf(n, "%s final cost %f over %d partitions, reapplied savings %f, %d sweeps",
			&name, &cost, &parts, &reap, &sweeps); err == nil {
			reapplied[strings.TrimSuffix(name, ":")] = reap
			if parts < 2 {
				t.Errorf("%s did not partition (%d partial problems) — convergence figure needs the incremental path", name, parts)
			}
		}
	}
	if v, ok := reapplied["dss-on"]; !ok || v <= 0 {
		t.Errorf("dss-on reapplied savings = %v, want > 0 (notes: %v)", v, r.Notes)
	}
	if v, ok := reapplied["dss-off"]; !ok || v != 0 {
		t.Errorf("dss-off reapplied savings = %v, want 0 (notes: %v)", v, r.Notes)
	}
}
