package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"incranneal/internal/da"
	"incranneal/internal/faultinject"
	"incranneal/internal/hqa"
	"incranneal/internal/resilience"
	"incranneal/internal/sa"
	"incranneal/internal/solver"
	"incranneal/internal/va"
)

// DeviceByName constructs one of the repository's annealing devices for a
// fallback chain. daCapacity sizes the DA-backed devices (0: hardware
// default). Names: da, da-pt, sa, hqa, va.
func DeviceByName(name string, daCapacity int) (solver.Solver, error) {
	switch strings.TrimSpace(name) {
	case "da":
		return &da.Solver{CapacityVars: daCapacity}, nil
	case "da-pt":
		return &ptDevice{Solver: &da.Solver{CapacityVars: daCapacity}}, nil
	case "sa":
		return &sa.Solver{}, nil
	case "hqa":
		return &hqa.Solver{}, nil
	case "va":
		return &va.Solver{}, nil
	default:
		return nil, fmt.Errorf("unknown device %q (want da, da-pt, sa, hqa or va)", name)
	}
}

// ptDevice routes Solve through the DA's parallel-tempering mode.
type ptDevice struct{ *da.Solver }

func (s *ptDevice) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	return s.SolvePT(ctx, req)
}

// MiddlewareSpec captures the resilience and fault-injection CLI flags
// shared by mqosolve and mqobench, and builds the device middleware they
// configure: the (optionally fault-injected) primary device wrapped in the
// canonical resilience composition, chained before the -fallback devices.
type MiddlewareSpec struct {
	// Retries is the -retries flag: re-attempts per solve for transient
	// failures.
	Retries int
	// SolveTimeout is the -solve-timeout flag: per-solve deadline.
	SolveTimeout time.Duration
	// Breaker is the -breaker flag: consecutive failures tripping the
	// per-device circuit breaker.
	Breaker int
	// Fallback is the -fallback flag: comma-separated device names tried
	// in order after the primary (e.g. "da,sa").
	Fallback string
	// InjectFaults is the -inject-faults flag, in faultinject.ParseSpec
	// grammar. Faults wrap only the primary device, so fallback devices
	// model healthy spares.
	InjectFaults string
	// Seed drives backoff jitter and fault corruption.
	Seed int64
	// DACapacity sizes DA-backed fallback devices.
	DACapacity int
}

// Enabled reports whether any middleware is configured.
func (s MiddlewareSpec) Enabled() bool {
	return s.Retries > 0 || s.SolveTimeout > 0 || s.Breaker > 0 ||
		strings.TrimSpace(s.Fallback) != "" || strings.TrimSpace(s.InjectFaults) != ""
}

// Middleware returns the device wrapper the spec describes, or nil when
// nothing is configured.
func (s MiddlewareSpec) Middleware() (func(solver.Solver) solver.Solver, error) {
	if !s.Enabled() {
		return nil, nil
	}
	ficfg, err := faultinject.ParseSpec(s.InjectFaults)
	if err != nil {
		return nil, err
	}
	if ficfg.Seed == 0 {
		ficfg.Seed = s.Seed
	}
	var chainTail []solver.Solver
	if fb := strings.TrimSpace(s.Fallback); fb != "" {
		for _, name := range strings.Split(fb, ",") {
			dev, err := DeviceByName(name, s.DACapacity)
			if err != nil {
				return nil, err
			}
			chainTail = append(chainTail, dev)
		}
	}
	rcfg := resilience.Config{
		Retries:          s.Retries,
		SolveTimeout:     s.SolveTimeout,
		BreakerThreshold: s.Breaker,
		Seed:             s.Seed,
	}
	return func(dev solver.Solver) solver.Solver {
		chain := append([]solver.Solver{faultinject.Wrap(dev, ficfg)}, chainTail...)
		return resilience.Wrap(chain, rcfg)
	}, nil
}
