package bench

import (
	"context"
	"strconv"
	"testing"
	"time"
)

// TestServeLoadSmoke runs the mqoserve load figure at smoke scale: one row
// per concurrency level, every request answered, none rejected. The
// determinism cross-check (identical costs at every level) happens inside
// ServeLoad, which errors on divergence.
func TestServeLoadSmoke(t *testing.T) {
	scale := SmokeScale()
	r, err := ServeLoad(context.Background(), ConfigFor(scale), scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(scale.ServeClients) {
		t.Fatalf("rows = %d, want one per concurrency level (%d)", len(r.Rows), len(scale.ServeClients))
	}
	for _, row := range r.Rows {
		clients, requests, ok, rejected := row[0], row[1], row[2], row[3]
		if ok != requests {
			t.Errorf("%s clients: %s/%s requests answered", clients, ok, requests)
		}
		if rejected != "0" {
			t.Errorf("%s clients: %s rejected; the queue is sized to the load", clients, rejected)
		}
		n, err := strconv.Atoi(clients)
		if err != nil || n <= 0 {
			t.Errorf("bad clients cell %q", clients)
		}
	}
}

// TestPercentile pins the nearest-rank quantiles the load figure reports.
func TestPercentile(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond // 1..100ms
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(lats, c.q); got != c.want {
			t.Errorf("p%v = %v, want %v", c.q*100, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}
