package bench

import (
	"context"
	"fmt"
	"math"
	"time"

	"incranneal/internal/core"
	"incranneal/internal/da"
	"incranneal/internal/embed"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
	"incranneal/internal/solvecache"
	"incranneal/internal/workload"
)

// Fig1 reproduces the qubit-capacity figure: the physical-qubit requirement
// of the original (unpartitioned) Trummer–Koch method per query count at 10
// PPQ, with "exceeded" crosses against the D-Wave 2X (used by the original
// study) and the current-generation Advantage.
func Fig1(scale Scale) *Report {
	r := &Report{
		ID:      "fig1",
		Title:   "Qubit capacity requirements of the original quantum MQO method (10 PPQ)",
		Header:  []string{fmt.Sprintf("scale=%s (analytic figure: no solver runs, no seeds)", scale.Name)},
		Columns: []string{"queries", "logical vars", "2X qubits", "2X fits", "Advantage qubits", "Advantage fits"},
	}
	dw2x, adv := embed.DWave2X(), embed.Advantage()
	for q := 2; q <= scale.Fig1MaxQueries; q += 2 {
		a := embed.RequiredQubits(dw2x, q, 10)
		b := embed.RequiredQubits(adv, q, 10)
		r.AddRow(
			fmt.Sprintf("%d", q),
			fmt.Sprintf("%d", a.LogicalVariables),
			fmt.Sprintf("%d", a.PhysicalQubits), fits(a),
			fmt.Sprintf("%d", b.PhysicalQubits), fits(b),
		)
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("D-Wave 2X capacity %d qubits; Advantage capacity %d qubits", dw2x.Qubits, adv.Qubits),
		"crosses (✗) correspond to the N/A crosses of Fig. 1")
	return r
}

func fits(req embed.Requirement) string {
	if req.Exceeded {
		return "✗"
	}
	return "✓"
}

// classStats aggregates normalised costs per algorithm over the instances
// of one problem class.
type classStats struct {
	min, max, sum float64
	n             int
	errs          int
}

func (cs *classStats) add(m Measurement) {
	if m.Err != nil {
		cs.errs++
		return
	}
	if cs.n == 0 || m.Normalised < cs.min {
		cs.min = m.Normalised
	}
	if cs.n == 0 || m.Normalised > cs.max {
		cs.max = m.Normalised
	}
	cs.sum += m.Normalised
	cs.n++
}

func (cs *classStats) mean() float64 {
	if cs.n == 0 {
		return math.NaN()
	}
	return cs.sum / float64(cs.n)
}

// runClass generates the instances of one problem class, runs the roster
// and returns per-algorithm stats keyed by algorithm name in roster order.
func runClass(ctx context.Context, algos []Algorithm, gen func(instance int) (*mqo.Problem, error), instances int, seed int64) (map[string]*classStats, error) {
	stats := make(map[string]*classStats, len(algos))
	for _, a := range algos {
		stats[a.Name] = &classStats{}
	}
	for inst := 0; inst < instances; inst++ {
		p, err := gen(inst)
		if err != nil {
			return nil, err
		}
		for _, m := range RunInstance(ctx, algos, p, seed+int64(inst)*104729) {
			stats[m.Algorithm].add(m)
		}
	}
	return stats, nil
}

// statCells renders min/mean/max for one algorithm with the figure's N/A
// cut-off.
func statCells(cs *classStats, cutoff float64) string {
	if cs.n == 0 {
		return "err"
	}
	mean := cs.mean()
	if cutoff > 0 && mean >= cutoff {
		return "N/A"
	}
	return fmt.Sprintf("%s [%s,%s]", fmtNorm(mean, cutoff), fmtNorm(cs.min, 0), fmtNorm(cs.max, 0))
}

// Fig3 reproduces the scalability-robustness figure: normalised solution
// costs for all eight approaches over the queries × PPQ grid, with four
// query communities of varying sizes and densities sampled from [0.05, 1].
func Fig3(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "fig3",
		Title:  fmt.Sprintf("Normalised costs, 4 varying communities, densities [0.05,1] (%s scale)", scale.Name),
		Header: cfg.headerLines(scale),
	}
	algos := Roster(cfg)
	r.Columns = append([]string{"queries", "PPQ"}, algoNames(algos)...)
	for _, ppq := range scale.PPQSet {
		for _, q := range scale.QuerySet {
			q, ppq := q, ppq
			roster := algos
			if q > scale.MaxQueriesHQA {
				roster = withoutAlgorithm(algos, "HQA")
			}
			stats, err := runClass(ctx, roster, func(inst int) (*mqo.Problem, error) {
				in, err := workload.GenerateSweep(workload.SweepConfig{
					Queries: q, PPQ: ppq, Communities: 4,
					DensityLow: 0.05, DensityHigh: 1.0,
					Seed: classSeed("fig3", q, ppq, inst),
				})
				if err != nil {
					return nil, err
				}
				return in.Problem, nil
			}, scale.Instances, classSeed("fig3run", q, ppq, 0))
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("%d", q), fmt.Sprintf("%d", ppq)}
			for _, a := range algos {
				cs, ok := stats[a.Name]
				if !ok || (a.Name == "HQA" && q > scale.MaxQueriesHQA) {
					row = append(row, "—")
					continue
				}
				row = append(row, statCells(cs, 20))
			}
			r.AddRow(row...)
		}
	}
	r.Notes = append(r.Notes,
		"cells show mean [min,max] normalised cost over instances; N/A marks costs ≥ 20 as in the paper",
		fmt.Sprintf("HQA limited to ≤ %d queries (paper: 500, for budget reasons)", scale.MaxQueriesHQA))
	return r, nil
}

// Fig4 reproduces the community-structure figure: DA default vs. parallel
// vs. incremental over increasing community counts, equal and varying
// community sizes.
func Fig4(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "fig4",
		Title:  fmt.Sprintf("Normalised costs vs. number of communities, %d PPQ (%s scale)", scale.StandardPPQ, scale.Name),
		Header: cfg.headerLines(scale),
	}
	algos := ProcessingRoster(cfg)
	r.Columns = append([]string{"sizes", "communities", "queries"}, algoNames(algos)...)
	for _, equal := range []bool{false, true} {
		sizes := "varying"
		if equal {
			sizes = "equal"
		}
		for _, comm := range scale.CommunitySet {
			for _, q := range scale.QuerySet {
				stats, err := runClass(ctx, algos, func(inst int) (*mqo.Problem, error) {
					in, err := workload.GenerateSweep(workload.SweepConfig{
						Queries: q, PPQ: scale.StandardPPQ, Communities: comm,
						EqualCommunities: equal,
						DensityLow:       0.05, DensityHigh: 1.0,
						Seed: classSeed("fig4", q, comm*2+boolInt(equal), inst),
					})
					if err != nil {
						return nil, err
					}
					return in.Problem, nil
				}, scale.Instances, classSeed("fig4run", q, comm, 0))
				if err != nil {
					return nil, err
				}
				row := []string{sizes, fmt.Sprintf("%d", comm), fmt.Sprintf("%d", q)}
				for _, a := range algos {
					row = append(row, statCells(stats[a.Name], 5))
				}
				r.AddRow(row...)
			}
		}
	}
	r.Notes = append(r.Notes, "N/A marks normalised costs ≥ 5 as in the paper's Fig. 4")
	return r, nil
}

// Fig5 reproduces the density figure: DA default vs. incremental over
// density intervals of increasing width, four varying communities.
func Fig5(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "fig5",
		Title:  fmt.Sprintf("Normalised costs vs. community density interval, %d PPQ, 4 varying communities (%s scale)", scale.StandardPPQ, scale.Name),
		Header: cfg.headerLines(scale),
	}
	algos := []Algorithm{DADefault(cfg), DAIncremental(cfg)}
	r.Columns = append([]string{"densities", "queries"}, algoNames(algos)...)
	for _, high := range scale.DensityHighs {
		for _, q := range scale.QuerySet {
			stats, err := runClass(ctx, algos, func(inst int) (*mqo.Problem, error) {
				in, err := workload.GenerateSweep(workload.SweepConfig{
					Queries: q, PPQ: scale.StandardPPQ, Communities: 4,
					DensityLow: 0.05, DensityHigh: high,
					Seed: classSeed("fig5", q, int(high*100), inst),
				})
				if err != nil {
					return nil, err
				}
				return in.Problem, nil
			}, scale.Instances, classSeed("fig5run", q, int(high*100), 0))
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("[0.05,%.2f]", high), fmt.Sprintf("%d", q)}
			for _, a := range algos {
				row = append(row, statCells(stats[a.Name], 5))
			}
			r.AddRow(row...)
		}
	}
	r.Notes = append(r.Notes, "N/A marks normalised costs ≥ 5 as in the paper's Fig. 5")
	return r, nil
}

// Fig6 reproduces the conventional-benchmark figure: normalised costs on
// MQO scenarios extrapolated from TPC-H, LDBC BI and JOB.
func Fig6(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "fig6",
		Title:  fmt.Sprintf("Normalised costs on QO-benchmark scenarios, %d PPQ (%s scale)", scale.StandardPPQ, scale.Name),
		Header: cfg.headerLines(scale),
	}
	// The paper's Fig. 6 omits DA (Parallel) and SA (Default), whose
	// relative weakness is unchanged from Fig. 3.
	algos := []Algorithm{HC(cfg), Genetic(cfg), SAIncremental(cfg), HQAIncremental(cfg), DADefault(cfg), DAIncremental(cfg)}
	r.Columns = append([]string{"benchmark", "queries"}, algoNames(algos)...)
	for _, bm := range []string{"tpch", "ldbc", "job"} {
		cat := workload.Catalogues()[bm]
		for _, q := range scale.QuerySet {
			roster := algos
			if q > scale.MaxQueriesHQA {
				roster = withoutAlgorithm(algos, "HQA")
			}
			stats, err := runClass(ctx, roster, func(inst int) (*mqo.Problem, error) {
				in, err := workload.GenerateBench(workload.BenchConfig{
					Catalogue: cat, Queries: q, PPQ: scale.StandardPPQ,
					Seed: classSeed("fig6"+bm, q, 0, inst),
				})
				if err != nil {
					return nil, err
				}
				return in.Problem, nil
			}, scale.Instances, classSeed("fig6run"+bm, q, 0, 0))
			if err != nil {
				return nil, err
			}
			row := []string{bm, fmt.Sprintf("%d", q)}
			for _, a := range algos {
				cs, ok := stats[a.Name]
				if !ok || (a.Name == "HQA" && q > scale.MaxQueriesHQA) {
					row = append(row, "—")
					continue
				}
				row = append(row, statCells(cs, 20))
			}
			r.AddRow(row...)
		}
	}
	return r, nil
}

// Fig7 reproduces the runtime figure: wall-clock optimisation times of the
// annealing-based methods over increasing query counts and savings
// densities.
func Fig7(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "fig7",
		Title:  fmt.Sprintf("Optimisation times, %d PPQ (%s scale)", scale.StandardPPQ, scale.Name),
		Header: cfg.headerLines(scale),
	}
	algos := []Algorithm{
		SADefault(cfg), SAIncremental(cfg), HQAIncremental(cfg),
		DADefault(cfg), DAParallel(cfg), DAIncremental(cfg),
	}
	r.Columns = append([]string{"density", "queries"}, algoNames(algos)...)
	budget := cfg.TimeBudget
	if budget <= 0 {
		budget = 3 * time.Minute // the paper's 180 s cut-off
	}
	for _, d := range scale.RuntimeDensities {
		for _, q := range scale.QuerySet {
			p, err := runtimeInstance(q, scale.StandardPPQ, d)
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("%.1f", d), fmt.Sprintf("%d", q)}
			for i, a := range algos {
				if a.Name == "HQA" && q > scale.MaxQueriesHQA {
					row = append(row, "—")
					continue
				}
				start := time.Now()
				runCtx, cancel := context.WithTimeout(ctx, budget)
				_, err := a.Run(runCtx, p, classSeed("fig7run", q, int(d*100), i))
				cancel()
				elapsed := time.Since(start)
				switch {
				case err != nil:
					row = append(row, "err")
				case elapsed >= budget:
					row = append(row, "N/A")
				default:
					row = append(row, fmt.Sprintf("%.2fs", elapsed.Seconds()))
				}
			}
			r.AddRow(row...)
		}
	}
	r.Notes = append(r.Notes, fmt.Sprintf("N/A marks runs exceeding the %v budget (paper: 180 s)", budget))
	return r, nil
}

// PhaseReport breaks the DA processing strategies' wall-clock time down by
// pipeline phase (partitioning, encoding, annealing, decoding+merging) over
// increasing query counts. It is not a figure of the paper; it exists to
// attribute the runtime differences Fig. 7 reports to the phases causing
// them.
func PhaseReport(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:      "phases",
		Title:   fmt.Sprintf("Phase timings of the DA processing strategies, %d PPQ (%s scale)", scale.StandardPPQ, scale.Name),
		Header:  cfg.headerLines(scale),
		Columns: []string{"strategy", "queries", "total", "partition", "encode", "anneal", "anneal p99", "decode+merge", "dss", "deg", "cost", "cache"},
	}
	algos := ProcessingRoster(cfg)
	for _, q := range scale.QuerySet {
		p, err := runtimeInstance(q, scale.StandardPPQ, 0.3)
		if err != nil {
			return nil, err
		}
		for _, m := range RunInstance(ctx, algos, p, classSeed("phasesrun", q, 0, 0)) {
			if m.Err != nil {
				r.AddRow(m.Algorithm, fmt.Sprintf("%d", q), "err", "—", "—", "—", "—", "—", "—", "—", "—", "—")
				continue
			}
			r.AddRow(m.Algorithm, fmt.Sprintf("%d", q),
				fmtDur(m.Elapsed),
				fmtDur(m.Timings.Partition), fmtDur(m.Timings.Encode),
				fmtDur(m.Timings.Anneal), fmtQuantileMs(m.AnnealP99),
				fmtDur(m.Timings.Decode),
				fmtDur(m.Timings.DSS),
				fmt.Sprintf("%d", m.Degraded),
				fmt.Sprintf("%.0f", m.Cost), "—")
		}
		// Cached second run of the incremental strategy: same problem and
		// seed against a primed cross-solve cache, so the partition column
		// collapses and the cost stays bit-identical to the cold run above.
		cachedOpt := core.Options{
			Device: cfg.wrap(&da.Solver{CapacityVars: cfg.DACapacity}), Runs: cfg.Runs,
			TotalSweeps: daSweeps(cfg, p), Seed: classSeed("phasesrun", q, 0, 0) + int64(len(algos)-1)*7919,
			Parallelism: cfg.Parallelism, FailFast: cfg.FailFast,
			Cache: solvecache.New(0),
		}
		cfg.Pipeline.Apply(&cachedOpt)
		if _, err := core.SolveIncremental(ctx, p, cachedOpt); err != nil {
			return nil, err
		}
		cachedReg := obs.NewRegistry()
		cachedCtx := obs.NewContext(ctx, obs.NewSink(nil, cachedReg))
		start := time.Now()
		out, err := core.SolveIncremental(cachedCtx, p, cachedOpt)
		if err != nil {
			return nil, err
		}
		r.AddRow("DA (Incremental, cached)", fmt.Sprintf("%d", q),
			fmtDur(time.Since(start)),
			fmtDur(out.Timings.Partition), fmtDur(out.Timings.Encode),
			fmtDur(out.Timings.Anneal), fmtQuantileMs(cachedReg.Histogram("latency.anneal_ms").Snapshot().P99),
			fmtDur(out.Timings.Decode),
			fmtDur(out.Timings.DSS),
			fmt.Sprintf("%d", len(out.Degradations)),
			fmt.Sprintf("%.0f", out.Cost), cacheCell(out.Cache))
	}
	r.Notes = append(r.Notes,
		"phase columns measure the work itself; the incremental strategy overlaps encoding with annealing, so phases may sum past the total",
		"the cached row re-solves the same instance with the same seed against a primed cross-solve cache: partition time collapses to the Refit check and the cost matches DA (Incremental) bit for bit")
	return r, nil
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// fmtQuantileMs renders a latency quantile in milliseconds; zero (baseline
// without device calls, or an empty histogram) renders as a dash.
func fmtQuantileMs(ms float64) string {
	if ms == 0 {
		return "—"
	}
	return fmt.Sprintf("%.2fms", ms)
}

// runtimeInstance builds the Fig. 7 instance: four varying communities
// whose densities all equal d.
func runtimeInstance(queries, ppq int, d float64) (*mqo.Problem, error) {
	in, err := workload.GenerateSweep(workload.SweepConfig{
		Queries: queries, PPQ: ppq, Communities: 4,
		DensityLow: d, DensityHigh: d,
		Seed: classSeed("fig7", queries, int(d*100), 0),
	})
	if err != nil {
		return nil, err
	}
	return in.Problem, nil
}

func algoNames(algos []Algorithm) []string {
	names := make([]string, len(algos))
	for i, a := range algos {
		names[i] = a.Name
	}
	return names
}

func withoutAlgorithm(algos []Algorithm, name string) []Algorithm {
	out := make([]Algorithm, 0, len(algos))
	for _, a := range algos {
		if a.Name != name {
			out = append(out, a)
		}
	}
	return out
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// classSeed derives a stable seed for a problem class from its label and
// dimensions.
func classSeed(label string, a, b, inst int) int64 {
	h := int64(1469598103934665603)
	for _, c := range label {
		h ^= int64(c)
		h *= 1099511628211
	}
	h ^= int64(a)*1000003 + int64(b)*10007 + int64(inst)*97
	if h < 0 {
		h = -h
	}
	return h
}
