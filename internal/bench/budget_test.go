package bench

import (
	"context"
	"strconv"
	"testing"

	"incranneal/internal/mqo"
)

func TestDaSweepsScalesWithProblemSize(t *testing.T) {
	cfg := Config{SweepsPerVar: 50}.withDefaults()
	small := daSweeps(cfg, smallProblem(t, 4))
	large := daSweeps(cfg, smallProblem(t, 8))
	if large != 2*small {
		t.Errorf("daSweeps: %d vs %d, want exact 2× scaling", small, large)
	}
}

func TestSaSweepsIsTheNealDefault(t *testing.T) {
	if got := saSweeps(Config{}, nil); got != 1000 {
		t.Errorf("saSweeps = %d, want dwave-neal's 1000", got)
	}
}

func TestAblationBudgetMonotoneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("budget sweep is slow")
	}
	scale := SmokeScale()
	scale.Instances = 1
	scale.QuerySet = []int{12}
	scale.StandardPPQ = 3
	cfg := Config{DACapacity: 18, Runs: 2, SweepsPerVar: 30}
	r, err := AblationBudget(context.Background(), cfg, scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 budget levels", len(r.Rows))
	}
	// On a tiny smoke instance individual levels are noisy; assert the
	// structural invariants instead: positive costs, and the best level is
	// no worse than the smallest budget.
	costs := make([]float64, 0, len(r.Rows))
	for _, row := range r.Rows {
		c, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if c <= 0 {
			t.Fatalf("non-positive cost %v in %v", c, row)
		}
		costs = append(costs, c)
	}
	best := costs[0]
	for _, c := range costs {
		if c < best {
			best = c
		}
	}
	if best > costs[0]*1.02 {
		t.Errorf("no budget level within 2%% of the smallest budget's cost: %v", costs)
	}
}

// smallProblem builds a minimal real instance with the given plan count
// (single query owning all plans).
func smallProblem(t *testing.T, plans int) *mqo.Problem {
	t.Helper()
	costs := make([]float64, plans)
	for i := range costs {
		costs[i] = 1
	}
	p, err := mqo.NewProblem([][]float64{costs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
