package bench

// Scale selects the problem dimensions of an experiment run. PaperScale
// reproduces the paper's exact dimensions (hours of compute on the software
// simulators); ReducedScale shrinks every dimension proportionally so the
// whole suite finishes in minutes while partitioning, DSS and all device
// code paths stay exercised; SmokeScale is for tests.
type Scale struct {
	// Name labels the scale in reports.
	Name string
	// QuerySet is the |Q| axis (paper: 250, 500, 750, 1000).
	QuerySet []int
	// PPQSet is the plans-per-query axis of Fig. 3 (paper: 20, 30, 40).
	PPQSet []int
	// StandardPPQ is the fixed PPQ of Figs. 4–7 (paper: 30).
	StandardPPQ int
	// Instances per problem class (paper: 3).
	Instances int
	// CommunitySet is the community-count axis of Fig. 4 (paper-style: 1,
	// 2, 4, 6).
	CommunitySet []int
	// DensityHighs are the upper bounds of the Fig. 5 density intervals,
	// all starting at 0.05 (paper: 0.25, 0.5, 0.75, 1.0).
	DensityHighs []float64
	// RuntimeDensities is the density axis of Fig. 7 (paper: up to 0.8).
	RuntimeDensities []float64
	// MaxQueriesHQA bounds HQA experiments (the paper stops at 500
	// queries for budget reasons; the simulator inherits the limit so the
	// reports match).
	MaxQueriesHQA int
	// Fig1MaxQueries is the query axis bound of the qubit-requirement
	// figure (paper: ~40 at 10 PPQ).
	Fig1MaxQueries int
	// ServeClients is the concurrency axis of the mqoserve load figure:
	// each entry is a number of simultaneous clients hammering the
	// service.
	ServeClients []int
	// ServeRequests is the number of solve requests each client issues
	// per concurrency level.
	ServeRequests int
	// ChaosRequests is the request count of the serve-layer chaos soak
	// (`-fig chaos`): how many seeded solves are pushed through the
	// fault-injected serving stack while its crash-safety invariants are
	// checked.
	ChaosRequests int
}

// PaperScale returns the paper's exact experiment dimensions.
func PaperScale() Scale {
	return Scale{
		Name:             "paper",
		QuerySet:         []int{250, 500, 750, 1000},
		PPQSet:           []int{20, 30, 40},
		StandardPPQ:      30,
		Instances:        3,
		CommunitySet:     []int{1, 2, 4, 6},
		DensityHighs:     []float64{0.25, 0.5, 0.75, 1.0},
		RuntimeDensities: []float64{0.2, 0.5, 0.8},
		MaxQueriesHQA:    500,
		Fig1MaxQueries:   40,
		ServeClients:     []int{1, 4, 8, 16},
		ServeRequests:    8,
		ChaosRequests:    400,
	}
}

// ReducedScale shrinks the corpus ~8× per axis while preserving the ratios
// that drive the paper's effects (several partitions per problem, four
// communities, the same density intervals).
func ReducedScale() Scale {
	return Scale{
		Name:             "reduced",
		QuerySet:         []int{64, 128, 256},
		PPQSet:           []int{4, 6, 8},
		StandardPPQ:      6,
		Instances:        2,
		CommunitySet:     []int{1, 2, 4, 6},
		DensityHighs:     []float64{0.25, 0.5, 0.75, 1.0},
		RuntimeDensities: []float64{0.2, 0.5, 0.8},
		MaxQueriesHQA:    128,
		Fig1MaxQueries:   40,
		ServeClients:     []int{1, 4, 8},
		ServeRequests:    6,
		ChaosRequests:    200,
	}
}

// SmokeScale is the minimal corpus used by unit tests and the default
// `go test -bench` run.
func SmokeScale() Scale {
	return Scale{
		Name:             "smoke",
		QuerySet:         []int{16, 32},
		PPQSet:           []int{3, 4},
		StandardPPQ:      3,
		Instances:        1,
		CommunitySet:     []int{1, 2, 4},
		DensityHighs:     []float64{0.5, 1.0},
		RuntimeDensities: []float64{0.2, 0.8},
		MaxQueriesHQA:    32,
		Fig1MaxQueries:   30,
		ServeClients:     []int{1, 2, 4},
		ServeRequests:    3,
		ChaosRequests:    24,
	}
}

// ConfigFor pairs a scale with a matching budget configuration: the device
// capacity shrinks with the instance sizes so partitioning stays active.
func ConfigFor(s Scale) Config {
	switch s.Name {
	case "paper":
		return Paper()
	case "smoke":
		return Config{DACapacity: 24, Runs: 2, SweepsPerVar: 40, HCIterations: 20000, GeneticGenerations: 15, GeneticPopulations: []int{20}}
	default:
		return Config{DACapacity: 512, Runs: 8, SweepsPerVar: 100, HCIterations: 100000, GeneticGenerations: 40, GeneticPopulations: []int{50}}
	}
}
