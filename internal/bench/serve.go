package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"incranneal/internal/serve"
	"incranneal/internal/workload"
)

// ServeLoad is the mqoserve load figure: it starts an in-process serving
// stack (real HTTP over a loopback listener, the same code path as the
// mqoserve binary), hammers it with N concurrent clients at each
// concurrency level of the scale, and reports throughput and latency
// percentiles per level. Every request is a seeded solve of a
// partition-sized instance, so the figure measures the serving layer —
// queueing, admission, fleet scheduling — on top of a realistic solve, not
// an empty handler.
//
// Sanity invariants checked while measuring: all responses for the same
// (instance, seed) pair must agree on cost at every concurrency level
// (serving-layer determinism), and no request may be rejected (the queue is
// sized to the offered load; rejections would make throughput numbers
// meaningless).
func ServeLoad(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	clients := scale.ServeClients
	if len(clients) == 0 {
		clients = []int{1, 2, 4}
	}
	perClient := scale.ServeRequests
	if perClient <= 0 {
		perClient = 3
	}
	maxClients := clients[len(clients)-1]

	// One partition-sized instance per class: big enough to exercise the
	// incremental path, small enough that a load sweep stays minutes.
	queries := scale.QuerySet[0]
	in, err := workload.GenerateSweep(workload.SweepConfig{
		Queries: queries, PPQ: scale.StandardPPQ, Communities: 4,
		DensityLow: 0.05, DensityHigh: 0.8,
		Seed: classSeed("serve", queries, scale.StandardPPQ, 0),
	})
	if err != nil {
		return nil, err
	}
	p := in.Problem
	body, err := json.Marshal(map[string]any{
		"problem": p,
		"options": map[string]any{
			"runs":        cfg.Runs,
			"totalSweeps": daSweeps(cfg, p),
			"seed":        classSeed("serve-req", queries, 0, 0),
		},
	})
	if err != nil {
		return nil, err
	}

	srv, err := serve.New(serve.Config{
		Fleet:      2,
		QueueDepth: maxClients * perClient, // sized to the offered load: no rejects
		Capacity:   cfg.DACapacity,
	})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(l) //nolint:errcheck // ErrServerClosed after Shutdown
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		srv.Shutdown(sctx) //nolint:errcheck
	}()
	url := "http://" + l.Addr().String() + "/v1/solve"
	httpc := &http.Client{}

	r := &Report{
		ID:    "serve",
		Title: "mqoserve load: throughput and latency vs. concurrent clients",
		Header: append(cfg.headerLines(scale),
			fmt.Sprintf("fleet=2 queue=%d instance=%dq×%dppq requests_per_client=%d transport=loopback HTTP",
				maxClients*perClient, queries, scale.StandardPPQ, perClient)),
		Columns: []string{"clients", "requests", "ok", "rejected", "wall", "throughput (req/s)", "p50", "p95", "p99"},
		Notes: []string{
			"Each request solves the same seeded instance; identical costs across all responses double-check serving-layer determinism under load.",
			"The queue is sized to the offered load, so 'rejected' must read 0; admission control itself is covered by the serve package tests.",
		},
	}

	var refCost float64
	for li, n := range clients {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lats := make([]time.Duration, 0, n*perClient)
		costs := make([]float64, 0, n*perClient)
		var rejected int
		var mu sync.Mutex
		var wg sync.WaitGroup
		var firstErr error
		start := time.Now()
		for c := 0; c < n; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for q := 0; q < perClient; q++ {
					t0 := time.Now()
					resp, err := httpc.Post(url, "application/json", bytes.NewReader(body))
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					rb, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					lat := time.Since(t0)
					mu.Lock()
					switch {
					case err != nil:
						if firstErr == nil {
							firstErr = err
						}
					case resp.StatusCode == http.StatusServiceUnavailable:
						rejected++
					case resp.StatusCode != http.StatusOK:
						if firstErr == nil {
							firstErr = fmt.Errorf("status %d: %s", resp.StatusCode, rb)
						}
					default:
						var out struct {
							Cost float64 `json:"cost"`
						}
						if err := json.Unmarshal(rb, &out); err != nil {
							if firstErr == nil {
								firstErr = err
							}
						} else {
							lats = append(lats, lat)
							costs = append(costs, out.Cost)
						}
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start)
		if firstErr != nil {
			return nil, fmt.Errorf("serve load, %d clients: %w", n, firstErr)
		}
		for _, c := range costs {
			if li == 0 && refCost == 0 {
				refCost = c
			}
			if c != refCost {
				return nil, fmt.Errorf("serve load, %d clients: cost %v diverges from %v — serving layer leaked scheduling into results", n, c, refCost)
			}
		}
		tput := float64(len(lats)) / wall.Seconds()
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", n*perClient),
			fmt.Sprintf("%d", len(lats)),
			fmt.Sprintf("%d", rejected),
			wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", tput),
			percentile(lats, 0.50).Round(time.Millisecond).String(),
			percentile(lats, 0.95).Round(time.Millisecond).String(),
			percentile(lats, 0.99).Round(time.Millisecond).String(),
		})
	}
	return r, nil
}

// percentile returns the q-quantile of lats (nearest-rank); zero when
// empty.
func percentile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
