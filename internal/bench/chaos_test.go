package bench

import (
	"context"
	"strconv"
	"testing"
)

// TestChaosSoakSmoke runs the serve-layer chaos figure at smoke scale. The
// crash-safety invariants (terminal response for every request, OK costs
// bit-identical to standalone, well-formed NDJSON) are asserted inside
// ChaosSoak, which errors on any violation — the test just checks the
// report shape and that faults were actually injected.
func TestChaosSoakSmoke(t *testing.T) {
	scale := SmokeScale()
	r, err := ChaosSoak(context.Background(), ConfigFor(scale), scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (no-fault + chaos)", len(r.Rows))
	}
	noFault, chaos := r.Rows[0], r.Rows[1]
	if noFault[0] != "no-fault" || chaos[0] != "chaos" {
		t.Fatalf("phase labels %q, %q", noFault[0], chaos[0])
	}
	for _, row := range r.Rows {
		if row[1] != row[2] {
			t.Errorf("%s phase: %s/%s requests answered", row[0], row[2], row[1])
		}
	}
	if n, err := strconv.Atoi(chaos[1]); err != nil || n < scale.ChaosRequests {
		t.Errorf("chaos phase ran %s requests, want >= %d", chaos[1], scale.ChaosRequests)
	}
	if kills, err := strconv.Atoi(chaos[4]); err != nil || kills == 0 {
		t.Errorf("chaos phase injected %s kills, want > 0", chaos[4])
	}
	if noFault[4] != "0" {
		t.Errorf("no-fault phase reports %s kills", noFault[4])
	}
}
