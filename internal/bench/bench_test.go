package bench

import (
	"context"
	"strings"
	"testing"

	"incranneal/internal/mqo"
)

func TestReportRendering(t *testing.T) {
	r := &Report{
		ID:      "test",
		Title:   "a table",
		Columns: []string{"alpha", "b"},
	}
	r.AddRow("1", "longer-cell")
	r.AddRow("22", "x")
	r.Notes = append(r.Notes, "a note")
	out := r.String()
	for _, want := range []string{"== test: a table ==", "alpha", "longer-cell", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
	csv := r.CSV()
	if !strings.Contains(csv, `"alpha","b"`) || !strings.Contains(csv, `"22","x"`) {
		t.Errorf("CSV malformed:\n%s", csv)
	}
}

func TestCSVQuotesEmbeddedQuotes(t *testing.T) {
	r := &Report{Columns: []string{`say "hi"`}}
	r.AddRow(`a "quoted" cell`)
	csv := r.CSV()
	if !strings.Contains(csv, `"say ""hi"""`) || !strings.Contains(csv, `"a ""quoted"" cell"`) {
		t.Errorf("CSV quoting broken:\n%s", csv)
	}
}

func TestFmtNorm(t *testing.T) {
	if got := fmtNorm(1.234, 20); got != "1.23" {
		t.Errorf("fmtNorm = %q", got)
	}
	if got := fmtNorm(25, 20); got != "N/A" {
		t.Errorf("fmtNorm cutoff = %q", got)
	}
	if got := fmtNorm(0, 20); got != "err" {
		t.Errorf("fmtNorm zero = %q", got)
	}
}

func TestRosterNamesMatchPaper(t *testing.T) {
	algos := Roster(Config{})
	want := []string{
		"HC", "Genetic", "SA (Default)", "SA (Incremental)",
		"HQA", "DA (Default)", "DA (Parallel)", "DA (Incremental)",
	}
	if len(algos) != len(want) {
		t.Fatalf("roster size = %d, want %d", len(algos), len(want))
	}
	for i, a := range algos {
		if a.Name != want[i] {
			t.Errorf("roster[%d] = %q, want %q", i, a.Name, want[i])
		}
	}
}

func TestRunInstanceNormalises(t *testing.T) {
	p := mqo.PaperExample()
	algos := []Algorithm{
		{Name: "best", Run: func(context.Context, *mqo.Problem, int64) (Score, error) { return Score{Cost: 25}, nil }},
		{Name: "worst", Run: func(context.Context, *mqo.Problem, int64) (Score, error) { return Score{Cost: 50}, nil }},
	}
	ms := RunInstance(context.Background(), algos, p, 1)
	if ms[0].Normalised != 1 {
		t.Errorf("best normalised = %v, want 1", ms[0].Normalised)
	}
	if ms[1].Normalised != 2 {
		t.Errorf("worst normalised = %v, want 2", ms[1].Normalised)
	}
}

func TestRunInstanceToleratesErrors(t *testing.T) {
	p := mqo.PaperExample()
	algos := []Algorithm{
		{Name: "ok", Run: func(context.Context, *mqo.Problem, int64) (Score, error) { return Score{Cost: 30}, nil }},
		{Name: "broken", Run: func(context.Context, *mqo.Problem, int64) (Score, error) {
			return Score{}, context.DeadlineExceeded
		}},
	}
	ms := RunInstance(context.Background(), algos, p, 1)
	if ms[0].Err != nil || ms[0].Normalised != 1 {
		t.Errorf("ok algorithm mis-measured: %+v", ms[0])
	}
	if ms[1].Err == nil {
		t.Error("broken algorithm's error lost")
	}
}

func TestClassStats(t *testing.T) {
	cs := &classStats{}
	cs.add(Measurement{Normalised: 2})
	cs.add(Measurement{Normalised: 1})
	cs.add(Measurement{Normalised: 3})
	cs.add(Measurement{Err: context.Canceled})
	if cs.min != 1 || cs.max != 3 || cs.mean() != 2 || cs.errs != 1 {
		t.Errorf("stats = min %v max %v mean %v errs %d", cs.min, cs.max, cs.mean(), cs.errs)
	}
}

func TestFig1Shape(t *testing.T) {
	r := Fig1(SmokeScale())
	if r.ID != "fig1" || len(r.Rows) == 0 {
		t.Fatalf("empty fig1 report")
	}
	// The last row (30 queries × 10 PPQ) must exceed both devices.
	last := r.Rows[len(r.Rows)-1]
	if last[3] != "✗" || last[5] != "✗" {
		t.Errorf("30 queries should exceed both devices: %v", last)
	}
	// The first row (2 queries) must fit both.
	first := r.Rows[0]
	if first[3] != "✓" || first[5] != "✓" {
		t.Errorf("2 queries should fit both devices: %v", first)
	}
}

func TestFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure drivers are slow")
	}
	scale := SmokeScale()
	scale.QuerySet = []int{12}
	scale.PPQSet = []int{3}
	scale.CommunitySet = []int{2}
	scale.DensityHighs = []float64{0.5}
	scale.RuntimeDensities = []float64{0.3}
	scale.Instances = 1
	cfg := Config{DACapacity: 18, Runs: 2, SweepsPerVar: 30, HCIterations: 5000, GeneticGenerations: 5, GeneticPopulations: []int{10}}
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		run  func() (*Report, error)
	}{
		{"fig3", func() (*Report, error) { return Fig3(ctx, cfg, scale) }},
		{"fig4", func() (*Report, error) { return Fig4(ctx, cfg, scale) }},
		{"fig5", func() (*Report, error) { return Fig5(ctx, cfg, scale) }},
		{"fig6", func() (*Report, error) { return Fig6(ctx, cfg, scale) }},
		{"fig7", func() (*Report, error) { return Fig7(ctx, cfg, scale) }},
		{"ablation-dss", func() (*Report, error) { return AblationDSS(ctx, cfg, scale) }},
		{"ablation-postprocess", func() (*Report, error) { return AblationPostProcess(ctx, cfg, scale) }},
		{"ablation-lagrange", func() (*Report, error) { return AblationLagrange(ctx, cfg, scale) }},
		{"ablation-da", func() (*Report, error) { return AblationDigitalAnnealer(ctx, cfg, scale) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Rows) == 0 {
				t.Fatal("empty report")
			}
			for _, row := range r.Rows {
				if len(row) != len(r.Columns) {
					t.Fatalf("row width %d != %d columns: %v", len(row), len(r.Columns), row)
				}
				for _, cell := range row {
					if cell == "err" {
						t.Errorf("measurement error in report: %v", row)
					}
				}
			}
		})
	}
}

func TestClassSeedStable(t *testing.T) {
	a := classSeed("fig3", 250, 30, 1)
	b := classSeed("fig3", 250, 30, 1)
	if a != b {
		t.Error("classSeed not deterministic")
	}
	if classSeed("fig3", 250, 30, 1) == classSeed("fig3", 250, 30, 2) {
		t.Error("classSeed ignores the instance index")
	}
	if classSeed("fig3", 250, 30, 1) == classSeed("fig4", 250, 30, 1) {
		t.Error("classSeed ignores the label")
	}
	if a < 0 {
		t.Error("classSeed negative")
	}
}

func TestWithoutAlgorithm(t *testing.T) {
	algos := Roster(Config{})
	got := withoutAlgorithm(algos, "HQA")
	if len(got) != len(algos)-1 {
		t.Fatalf("len = %d", len(got))
	}
	for _, a := range got {
		if a.Name == "HQA" {
			t.Fatal("HQA still present")
		}
	}
}

func TestScalesAreConsistent(t *testing.T) {
	for _, s := range []Scale{PaperScale(), ReducedScale(), SmokeScale()} {
		if len(s.QuerySet) == 0 || len(s.PPQSet) == 0 || s.Instances <= 0 || s.StandardPPQ <= 0 {
			t.Errorf("scale %q incomplete: %+v", s.Name, s)
		}
		cfg := ConfigFor(s).withDefaults()
		if cfg.DACapacity <= 0 || cfg.Runs <= 0 {
			t.Errorf("scale %q config incomplete: %+v", s.Name, cfg)
		}
		// Partitioning must actually trigger at the largest class.
		largest := s.QuerySet[len(s.QuerySet)-1] * s.StandardPPQ
		if largest <= cfg.DACapacity {
			t.Errorf("scale %q never partitions: %d plans vs capacity %d", s.Name, largest, cfg.DACapacity)
		}
	}
}
