package bench

import (
	"context"
	"fmt"

	"incranneal/internal/core"
	"incranneal/internal/da"
	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/partition"
	"incranneal/internal/sa"
	"incranneal/internal/solver"
	"incranneal/internal/workload"
)

// The ablations isolate the design choices DESIGN.md calls out: DSS,
// partition post-processing, the Theorem 4.5 Lagrange multiplier, and the
// two Digital Annealer algorithm enhancements (dynamic offset, parallel
// trial). Each returns a Report comparing the design choice against its
// ablated variant on a community-structured corpus.

// ablationInstance builds the standard ablation corpus instance.
func ablationInstance(scale Scale, inst int) (*mqo.Problem, error) {
	in, err := workload.GenerateSweep(workload.SweepConfig{
		Queries: scale.QuerySet[len(scale.QuerySet)-1], PPQ: scale.StandardPPQ,
		Communities: 4, DensityLow: 0.05, DensityHigh: 1.0,
		Seed: classSeed("ablation", inst, 0, 0),
	})
	if err != nil {
		return nil, err
	}
	return in.Problem, nil
}

// AblationDSS compares the incremental strategy with DSS enabled and
// disabled (sequential processing without cost re-application).
func AblationDSS(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:      "ablation-dss",
		Title:   "Dynamic search steering on vs. off (sequential, no re-applied savings)",
		Header:  cfg.headerLines(scale),
		Columns: []string{"instance", "cost with DSS", "cost without DSS", "reapplied savings"},
	}
	for inst := 0; inst < scale.Instances; inst++ {
		p, err := ablationInstance(scale, inst)
		if err != nil {
			return nil, err
		}
		opt := core.Options{
			Device: &da.Solver{CapacityVars: cfg.DACapacity}, Runs: cfg.Runs,
			TotalSweeps: daSweeps(cfg, p), Seed: classSeed("abl-dss", inst, 0, 0),
		}
		with, err := core.SolveIncremental(ctx, p, opt)
		if err != nil {
			return nil, err
		}
		opt.DisableDSS = true
		without, err := core.SolveIncremental(ctx, p, opt)
		if err != nil {
			return nil, err
		}
		r.AddRow(p.Name,
			fmt.Sprintf("%.1f", with.Cost),
			fmt.Sprintf("%.1f", without.Cost),
			fmt.Sprintf("%.1f", with.ReappliedSavings))
	}
	return r, nil
}

// AblationPostProcess compares partitioning with Algorithm 1 enabled
// (4 parses) and disabled, measuring the discarded-savings magnitude and
// the final incremental cost.
func AblationPostProcess(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:      "ablation-postprocess",
		Title:   "Partition post-processing (Algorithm 1) on vs. off",
		Header:  cfg.headerLines(scale),
		Columns: []string{"instance", "discarded (4 parses)", "discarded (off)", "cost (4 parses)", "cost (off)"},
	}
	for inst := 0; inst < scale.Instances; inst++ {
		p, err := ablationInstance(scale, inst)
		if err != nil {
			return nil, err
		}
		dev := &da.Solver{CapacityVars: cfg.DACapacity}
		measure := func(parses int) (float64, float64, error) {
			part, err := partition.Partition(ctx, p, partition.Options{
				Capacity: cfg.DACapacity, Solver: dev, Runs: cfg.Runs,
				Sweeps: daSweeps(cfg, p) / 8, Seed: classSeed("abl-pp", inst, parses, 0),
				PostProcessParses: parses,
			})
			if err != nil {
				return 0, 0, err
			}
			out, err := core.IncrementalOverSubProblems(ctx, p, part.SubProblems, core.Options{
				Device: dev, Runs: cfg.Runs, TotalSweeps: daSweeps(cfg, p),
				Seed: classSeed("abl-pp-solve", inst, parses, 0),
			})
			if err != nil {
				return 0, 0, err
			}
			return part.DiscardedSavings, out.Cost, nil
		}
		discOn, costOn, err := measure(4)
		if err != nil {
			return nil, err
		}
		discOff, costOff, err := measure(-1)
		if err != nil {
			return nil, err
		}
		r.AddRow(p.Name,
			fmt.Sprintf("%.1f", discOn), fmt.Sprintf("%.1f", discOff),
			fmt.Sprintf("%.1f", costOn), fmt.Sprintf("%.1f", costOff))
	}
	return r, nil
}

// AblationLagrange sweeps the balance multiplier ω_A around the Theorem 4.5
// bound and reports the resulting bisection imbalance and cut weight on the
// instances' partitioning graphs.
func AblationLagrange(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:      "ablation-lagrange",
		Title:   "Balance multiplier ω_A below/at/above the Theorem 4.5 bound",
		Header:  cfg.headerLines(scale),
		Columns: []string{"instance", "ω_A scale", "imbalance (plans)", "cut weight"},
	}
	dev := &sa.Solver{}
	for inst := 0; inst < scale.Instances; inst++ {
		p, err := ablationInstance(scale, inst)
		if err != nil {
			return nil, err
		}
		g := partition.BuildGraph(p)
		for _, s := range []float64{0.01, 1, 10} {
			enc, err := encoding.EncodePartition(g.NodeWeights, g.Edges)
			if err != nil {
				return nil, err
			}
			model := enc.Model
			if s != 1 {
				scaled, err := encoding.EncodePartitionScaled(g.NodeWeights, g.Edges, s)
				if err != nil {
					return nil, err
				}
				model = scaled.Model
				enc = scaled
			}
			res, err := dev.Solve(ctx, solver.Request{Model: model, Runs: cfg.Runs, Sweeps: 800, Seed: classSeed("abl-lag", inst, int(s*100), 0)})
			if err != nil {
				return nil, err
			}
			best, ok := res.Best()
			if !ok {
				return nil, fmt.Errorf("ablation: device returned no samples")
			}
			in1 := make([]bool, g.NumNodes())
			for i, x := range best.Assignment {
				in1[i] = x != 0
			}
			r.AddRow(p.Name, fmt.Sprintf("%.2f·ω_A", s),
				fmt.Sprintf("%.0f", enc.Imbalance(in1)),
				fmt.Sprintf("%.1f", enc.CutWeight(in1)))
		}
	}
	r.Notes = append(r.Notes, "below the bound (0.01·ω_A) the annealer trades balance for cut weight; at and above the bound partitions stay balanced (Theorem 4.5)")
	return r, nil
}

// AblationDigitalAnnealer compares the full DA algorithm against its two
// ablations — dynamic offset disabled, and single-flip acceptance — on the
// encoded corpus, reporting mean best energies.
func AblationDigitalAnnealer(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:      "ablation-da",
		Title:   "Digital Annealer enhancements: parallel trial and dynamic offset",
		Header:  cfg.headerLines(scale),
		Columns: []string{"instance", "full DA", "no dynamic offset", "single flip"},
	}
	variants := []struct {
		name string
		dev  *da.Solver
	}{
		{"full DA", &da.Solver{CapacityVars: 1 << 20}},
		{"no dynamic offset", &da.Solver{CapacityVars: 1 << 20, DisableDynamicOffset: true}},
		{"single flip", &da.Solver{CapacityVars: 1 << 20, SingleFlip: true}},
	}
	for inst := 0; inst < scale.Instances; inst++ {
		// Smaller instances keep the unpartitioned QUBO tractable.
		in, err := workload.GenerateSweep(workload.SweepConfig{
			Queries: scale.QuerySet[0], PPQ: scale.StandardPPQ,
			Communities: 4, DensityLow: 0.05, DensityHigh: 1.0,
			Seed: classSeed("abl-da", inst, 0, 0),
		})
		if err != nil {
			return nil, err
		}
		enc, err := encoding.EncodeMQO(in.Problem)
		if err != nil {
			return nil, err
		}
		row := []string{in.Problem.Name}
		for _, v := range variants {
			res, err := v.dev.Solve(ctx, solver.Request{
				Model: enc.Model, Runs: cfg.Runs, Sweeps: daSweeps(cfg, in.Problem), Seed: classSeed("abl-da-run", inst, 0, 0),
			})
			if err != nil {
				return nil, err
			}
			best, ok := res.Best()
			if !ok {
				return nil, fmt.Errorf("ablation: device returned no samples")
			}
			row = append(row, fmt.Sprintf("%.1f", best.Energy))
		}
		r.AddRow(row...)
	}
	r.Notes = append(r.Notes, "values are best QUBO energies (lower is better) under a constant step budget")
	return r, nil
}
