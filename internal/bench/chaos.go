package bench

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"incranneal/internal/core"
	"incranneal/internal/da"
	"incranneal/internal/faultinject"
	"incranneal/internal/mqo"
	"incranneal/internal/serve"
	"incranneal/internal/workload"
)

// ChaosSoak is the serve-layer chaos figure: it runs the mqoserve stack
// in-process twice over the same seeded instances — once clean, once with
// the fault harness killing workers mid-solve, slowing solves and failing
// journal writes — and checks the crash-safety invariants instead of
// timing them:
//
//   - No-fault phase: with journaling on but no injected faults, every
//     response (unary and streamed) is bit-identical to a standalone
//     core solve of the same instance, options and seed.
//   - Chaos phase: ≥ Scale.ChaosRequests requests under continuous worker
//     kills (each killed attempt resumes from its session checkpoint),
//     slow workers and journal write failures. Every accepted request
//     must still receive a terminal response, every OK cost must equal
//     the standalone reference, and every streamed response must be
//     well-formed NDJSON ending in an outcome event.
//
// A violated invariant is an error, not a table cell: the figure's value
// is that it ran, its rows just record the fault and throughput counts.
func ChaosSoak(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	soak := scale.ChaosRequests
	if soak <= 0 {
		soak = 200
	}
	clients := 8
	if n := len(scale.ServeClients); n > 0 && scale.ServeClients[n-1] < clients {
		clients = scale.ServeClients[n-1]
	}

	queries := scale.QuerySet[0]
	in, err := workload.GenerateSweep(workload.SweepConfig{
		Queries: queries, PPQ: scale.StandardPPQ, Communities: 4,
		DensityLow: 0.05, DensityHigh: 0.8,
		Seed: classSeed("chaos", queries, scale.StandardPPQ, 0),
	})
	if err != nil {
		return nil, err
	}
	p := in.Problem
	// Capacity far below the instance size so every solve partitions:
	// kills only resume from checkpoints, and checkpoints only exist for
	// partitioned solves.
	capacity := p.NumPlans() / 4
	if capacity < 16 {
		capacity = 16
	}
	const runs, sweeps = 2, 400

	// Standalone references, one per request seed. The soak cycles these
	// seeds, so every response has a known-good cost to compare against.
	seeds := []int64{classSeed("chaos-req", queries, 0, 0), classSeed("chaos-req", queries, 0, 1),
		classSeed("chaos-req", queries, 0, 2), classSeed("chaos-req", queries, 0, 3)}
	refs := make(map[int64]*core.Outcome, len(seeds))
	for _, sd := range seeds {
		out, err := core.SolveIncremental(ctx, p, core.Options{
			Device: &da.Solver{CapacityVars: capacity}, Capacity: capacity,
			Runs: runs, TotalSweeps: sweeps, Seed: sd, Parallelism: cfg.Parallelism,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos reference seed %d: %w", sd, err)
		}
		refs[sd] = out
	}

	r := &Report{
		ID:    "chaos",
		Title: "Serve-layer chaos soak: crash-safety invariants under injected faults",
		Header: append(cfg.headerLines(scale),
			fmt.Sprintf("instance=%dq×%dppq capacity=%d runs=%d sweeps=%d clients=%d journal=on",
				queries, scale.StandardPPQ, capacity, runs, sweeps, clients)),
		Columns: []string{"phase", "requests", "ok", "streamed", "kills", "slowed", "journal faults", "wall", "throughput (req/s)", "invariants"},
		Notes: []string{
			"no-fault phase: every response is bit-identical (cost, plans, sweeps) to a standalone solve of the same seed — the harness errors on divergence",
			"chaos phase: worker kills resume from session checkpoints, so OK responses still match the standalone references; every request must get a terminal response and every streamed response must be well-formed NDJSON",
			"journal write failures degrade durability for the affected request but never reject it",
		},
	}

	// Phase 1 — no faults, journal on: the crash-safety plumbing must be
	// invisible. One unary and one streamed request per reference seed.
	{
		n, streamed, wall, err := soakPhase(ctx, p, refs, seeds, soakConfig{
			capacity: capacity, runs: runs, sweeps: sweeps,
			requests: 2 * len(seeds), clients: 2, everyOtherStreams: true,
		}, nil)
		if err != nil {
			return nil, fmt.Errorf("chaos no-fault phase: %w", err)
		}
		r.AddRow("no-fault", fmt.Sprintf("%d", n), fmt.Sprintf("%d", n), fmt.Sprintf("%d", streamed),
			"0", "0", "0", wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", float64(n)/wall.Seconds()), "bit-identical ✓")
	}

	// Phase 2 — the soak: kills, slow workers and journal write failures
	// all active at once.
	chaos := faultinject.NewChaos(faultinject.Config{
		KillWorkerEvery: 3,
		SlowWorkerEvery: 5, SlowWorkerDelay: 2 * time.Millisecond,
		JournalFailEvery: 17,
	})
	n, streamed, wall, err := soakPhase(ctx, p, refs, seeds, soakConfig{
		capacity: capacity, runs: runs, sweeps: sweeps,
		requests: soak, clients: clients, everyOtherStreams: false,
	}, chaos)
	if err != nil {
		return nil, fmt.Errorf("chaos soak phase: %w", err)
	}
	st := chaos.Stats()
	if st.WorkerKills == 0 {
		return nil, fmt.Errorf("chaos soak injected no worker kills over %d requests", n)
	}
	r.AddRow("chaos", fmt.Sprintf("%d", n), fmt.Sprintf("%d", n), fmt.Sprintf("%d", streamed),
		fmt.Sprintf("%d", st.WorkerKills), fmt.Sprintf("%d", st.SlowedSolves), fmt.Sprintf("%d", st.JournalFailures),
		wall.Round(time.Millisecond).String(),
		fmt.Sprintf("%.1f", float64(n)/wall.Seconds()), "all held ✓")
	return r, nil
}

// soakConfig parameterises one soakPhase run.
type soakConfig struct {
	capacity, runs, sweeps int
	requests, clients      int
	// everyOtherStreams streams every second request; otherwise every
	// third streams (mixing protocols keeps both response paths under
	// fault pressure).
	everyOtherStreams bool
}

// soakPhase starts a journaled in-process server (chaos optionally armed),
// issues sc.requests seeded solves from sc.clients concurrent clients —
// cycling seeds, priorities and the streaming protocol — and verifies
// every response against refs. It returns the request and streamed counts
// and the wall time.
func soakPhase(ctx context.Context, p *mqo.Problem, refs map[int64]*core.Outcome, seeds []int64, sc soakConfig, chaos *faultinject.Chaos) (int, int, time.Duration, error) {
	dir, err := os.MkdirTemp("", "mqobench-chaos-*")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(dir)

	srv, err := serve.New(serve.Config{
		Fleet:      2,
		QueueDepth: sc.requests,
		Capacity:   sc.capacity,
		JournalDir: dir,
		Chaos:      chaos,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, err
	}
	go srv.Serve(l) //nolint:errcheck // ErrServerClosed after Shutdown
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		srv.Shutdown(sctx) //nolint:errcheck
	}()
	url := "http://" + l.Addr().String() + "/v1/solve"
	httpc := &http.Client{}
	priorities := []string{"low", "normal", "high"}

	var next atomic.Int64
	var streamedCount atomic.Int64
	var mu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < sc.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= sc.requests || ctx.Err() != nil {
					return
				}
				seed := seeds[i%len(seeds)]
				want := refs[seed]
				stream := i%2 == 1
				if !sc.everyOtherStreams {
					stream = i%3 == 1
				}
				body, err := json.Marshal(serve.SolveRequest{
					Problem: p, Stream: stream,
					Options: serve.SolveOptions{
						Runs: sc.runs, TotalSweeps: sc.sweeps, Seed: seed,
						Priority: priorities[i%len(priorities)],
					},
				})
				if err != nil {
					setErr(err)
					return
				}
				resp, err := httpc.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					setErr(fmt.Errorf("request %d: %w", i, err))
					return
				}
				out, err := decodeSoakResponse(resp, stream)
				if err != nil {
					setErr(fmt.Errorf("request %d (seed %d): %w", i, seed, err))
					return
				}
				if stream {
					streamedCount.Add(1)
				}
				if out.Cost != want.Cost {
					setErr(fmt.Errorf("request %d: cost %v diverges from standalone %v", i, out.Cost, want.Cost))
					return
				}
				if out.Sweeps != want.Sweeps {
					setErr(fmt.Errorf("request %d: sweeps %d diverge from standalone %d", i, out.Sweeps, want.Sweeps))
					return
				}
				for q, pl := range out.Selected {
					if want.Solution.Selected[q] != pl {
						setErr(fmt.Errorf("request %d: query %d plan %d diverges from standalone %d", i, q, pl, want.Solution.Selected[q]))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return 0, 0, 0, firstErr
	}
	if err := ctx.Err(); err != nil {
		return 0, 0, 0, err
	}
	return sc.requests, int(streamedCount.Load()), time.Since(start), nil
}

// decodeSoakResponse reads one soak response — unary JSON or NDJSON
// stream — and returns the final SolveResponse. Every NDJSON line must
// parse and the stream must terminate in an outcome event.
func decodeSoakResponse(resp *http.Response, stream bool) (*serve.SolveResponse, error) {
	defer resp.Body.Close()
	if !stream {
		rb, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, rb)
		}
		var out serve.SolveResponse
		if err := json.Unmarshal(rb, &out); err != nil {
			return nil, fmt.Errorf("malformed response body %q: %w", rb, err)
		}
		return &out, nil
	}
	if resp.StatusCode != http.StatusOK {
		rb, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("stream status %d: %s", resp.StatusCode, rb)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 16<<20)
	var last serve.StreamEvent
	lines := 0
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			return nil, fmt.Errorf("malformed NDJSON line %q: %w", sc.Text(), err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if lines == 0 || last.Type != "outcome" || last.Outcome == nil {
		if last.Type == "error" {
			return nil, fmt.Errorf("stream ended in error: %s", last.Error)
		}
		return nil, fmt.Errorf("stream did not end in an outcome (%d lines, last %q)", lines, last.Type)
	}
	return last.Outcome, nil
}
