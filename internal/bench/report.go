package bench

import (
	"fmt"
	"strings"
)

// Report is the tabular result behind one figure of the paper.
type Report struct {
	// ID is the experiment identifier, e.g. "fig3".
	ID string
	// Title describes the figure.
	Title string
	// Header lists effective-run-configuration lines (seed derivation,
	// runs, sweep budgets, parallelism, scale, device) rendered as comments
	// above the table, so a table or CSV alone suffices to reproduce it.
	Header []string
	// Columns are the header labels.
	Columns []string
	// Rows hold the formatted cells, aligned with Columns.
	Rows [][]string
	// Notes collects free-form observations (e.g. which algorithms were
	// skipped and why).
	Notes []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	for _, h := range r.Header {
		fmt.Fprintf(&sb, "# %s\n", h)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the report as comma-separated values (quoted cells).
func (r *Report) CSV() string {
	var sb strings.Builder
	quote := func(cells []string) string {
		qs := make([]string, len(cells))
		for i, c := range cells {
			qs[i] = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return strings.Join(qs, ",")
	}
	for _, h := range r.Header {
		fmt.Fprintf(&sb, "# %s\n", h)
	}
	sb.WriteString(quote(r.Columns))
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		sb.WriteString(quote(row))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// fmtNorm formats a normalised cost the way the paper plots it: values at
// or above the figure's cut-off render as "N/A" (prohibitively large).
func fmtNorm(v float64, cutoff float64) string {
	if v <= 0 {
		return "err"
	}
	if cutoff > 0 && v >= cutoff {
		return "N/A"
	}
	return fmt.Sprintf("%.2f", v)
}
