package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"incranneal/internal/core"
	"incranneal/internal/da"
	"incranneal/internal/mqo"
	"incranneal/internal/solvecache"
)

// DriftWeights returns a copy of p whose plan costs and saving values are
// multiplicatively jittered by up to ±rel (uniform), emulating the
// cost-model drift between epochs of a recurring workload. Zero-valued
// savings stay zero and no saving changes sign, so the drifted problem has
// p's exact structure fingerprint and skeleton zero pattern — it exercises
// the cache's reweight path, never the cold path.
func DriftWeights(p *mqo.Problem, rel float64, seed int64) (*mqo.Problem, error) {
	if rel < 0 {
		rel = 0
	}
	if rel > 0.9 {
		rel = 0.9 // keep costs positive and savings non-negative
	}
	rng := rand.New(rand.NewSource(seed))
	jitter := func(v float64) float64 { return v * (1 + rel*(2*rng.Float64()-1)) }
	planCosts := make([][]float64, p.NumQueries())
	for q := range planCosts {
		plans := p.Plans(q)
		row := make([]float64, len(plans))
		for i, pl := range plans {
			row[i] = jitter(p.Cost(pl))
		}
		planCosts[q] = row
	}
	savings := append([]mqo.Saving(nil), p.Savings()...)
	for i := range savings {
		if savings[i].Value != 0 {
			savings[i].Value = jitter(savings[i].Value)
		}
	}
	np, err := mqo.NewProblem(planCosts, savings)
	if err != nil {
		return nil, err
	}
	np.Name = p.Name + "+drift"
	return np, nil
}

// WarmStarts measures what the cross-solve cache buys on a recurring
// workload (the -fig warm figure): per instance size it compares
//
//   - cold — the first epoch, nothing cached;
//   - structure hit — the identical problem re-solved against a primed
//     cache: recursive partitioning is skipped (partition.Refit keeps the
//     cached query sets) and encoding skeletons are rebound in place, so
//     cost is bit-identical to cold while wall-clock drops;
//   - cold (drift) — an epoch whose weights drifted, solved without a
//     cache: the fair baseline for warm starts and the parity target;
//   - warm (drift) — the drifted epoch against a primed cache with warm
//     starts on: annealing runs seed from the previous incumbent.
//
// The parity column reports the smallest fraction of the sweep budget at
// which the mode's final cost already matches the drifted cold full-budget
// cost ("sweeps to parity"); each warm probe primes a fresh cache with a
// full base-problem solve first, so probes never warm-start off each other.
func WarmStarts(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	const (
		driftRel  = 0.05 // per-epoch weight jitter
		warmBound = 0.2  // core.Options.WarmStartDrift
	)
	r := &Report{
		ID:    "warm",
		Title: fmt.Sprintf("Cross-solve caching and warm starts on recurring workloads, %d PPQ (%s scale)", scale.StandardPPQ, scale.Name),
		Header: append(cfg.headerLines(scale),
			fmt.Sprintf("drifted epochs jitter weights ±%.0f%% (zero savings pinned); warm-start drift bound %.2f", driftRel*100, warmBound)),
		Columns: []string{"queries", "mode", "wall", "speedup", "cost", "partition", "cache", "parity"},
	}
	fracs := [][2]int{{1, 8}, {1, 4}, {1, 2}, {1, 1}}
	skipped := 0
	for _, q := range scale.QuerySet {
		p, err := runtimeInstance(q, scale.StandardPPQ, 0.3)
		if err != nil {
			return nil, err
		}
		if p.NumPlans() <= cfg.DACapacity {
			// The instance fits the device whole: no partitioning runs, so
			// the structure tier has nothing to reuse. The cache targets the
			// partitioned incremental path.
			skipped++
			continue
		}
		budget := daSweeps(cfg, p)
		seed := classSeed("warmrun", q, 0, 0)
		solve := func(pp *mqo.Problem, cache *solvecache.Cache, drift float64, sweeps int, s int64) (*core.Outcome, time.Duration, error) {
			opt := core.Options{
				Device: cfg.wrap(&da.Solver{CapacityVars: cfg.DACapacity}), Runs: cfg.Runs,
				TotalSweeps: sweeps, Seed: s, Parallelism: cfg.Parallelism,
				FailFast: cfg.FailFast, Cache: cache, WarmStartDrift: drift,
			}
			cfg.Pipeline.Apply(&opt)
			start := time.Now()
			out, err := core.SolveIncremental(ctx, pp, opt)
			return out, time.Since(start), err
		}

		cold, coldWall, err := solve(p, nil, 0, budget, seed)
		if err != nil {
			return nil, err
		}
		cache := solvecache.New(0)
		if _, _, err := solve(p, cache, 0, budget, seed); err != nil {
			return nil, err
		}
		hit, hitWall, err := solve(p, cache, 0, budget, seed)
		if err != nil {
			return nil, err
		}

		dp, err := DriftWeights(p, driftRel, seed+1)
		if err != nil {
			return nil, err
		}
		coldDrift, coldDriftWall, err := solve(dp, nil, 0, budget, seed+2)
		if err != nil {
			return nil, err
		}

		// Parity probes: both modes solve the drifted problem against a
		// freshly primed cache per fraction — a structure hit on the SAME
		// cached partitioning — and differ only in the warm-start bound
		// (0 keeps the anneal cold-seeded). Holding the partitioning fixed
		// isolates the seeding effect; an uncached cold solve partitions the
		// drifted weights fresh and can land on a different decomposition
		// with a systematically different reachable cost.
		runProbes := func(bound float64) ([]*core.Outcome, []time.Duration, error) {
			outs := make([]*core.Outcome, len(fracs))
			walls := make([]time.Duration, len(fracs))
			for i, f := range fracs {
				c := solvecache.New(0)
				if _, _, err := solve(p, c, 0, budget, seed); err != nil {
					return nil, nil, err
				}
				out, wall, err := solve(dp, c, bound, budget*f[0]/f[1], seed+2)
				if err != nil {
					return nil, nil, err
				}
				outs[i], walls[i] = out, wall
			}
			return outs, walls, nil
		}
		coldOuts, _, err := runProbes(0)
		if err != nil {
			return nil, err
		}
		warmOuts, warmWalls, err := runProbes(warmBound)
		if err != nil {
			return nil, err
		}
		// Parity target: the cold-seeded full-budget cost on the shared
		// partitioning.
		target := coldOuts[len(fracs)-1].Cost + 1e-9
		parityOf := func(outs []*core.Outcome) string {
			for i, f := range fracs {
				if outs[i].Cost <= target {
					return fmt.Sprintf("%d/%d", f[0], f[1])
				}
			}
			return "—"
		}
		parityCold, parityWarm := parityOf(coldOuts), parityOf(warmOuts)
		warm, warmWall := warmOuts[len(fracs)-1], warmWalls[len(fracs)-1]

		qs := fmt.Sprintf("%d", q)
		r.AddRow(qs, "cold", fmtDur(coldWall), "1.00×",
			fmt.Sprintf("%.1f", cold.Cost), fmtDur(cold.Timings.Partition), "—", "—")
		r.AddRow(qs, "structure hit", fmtDur(hitWall),
			fmt.Sprintf("%.2f×", coldWall.Seconds()/hitWall.Seconds()),
			fmt.Sprintf("%.1f", hit.Cost), fmtDur(hit.Timings.Partition), cacheCell(hit.Cache), "—")
		r.AddRow(qs, "cold (drift)", fmtDur(coldDriftWall), "1.00×",
			fmt.Sprintf("%.1f", coldDrift.Cost), fmtDur(coldDrift.Timings.Partition), "—", parityCold)
		r.AddRow(qs, "warm (drift)", fmtDur(warmWall),
			fmt.Sprintf("%.2f×", coldDriftWall.Seconds()/warmWall.Seconds()),
			fmt.Sprintf("%.1f", warm.Cost), fmtDur(warm.Timings.Partition), cacheCell(warm.Cache), parityWarm)
	}
	r.Notes = append(r.Notes,
		"structure-hit cost is bit-identical to cold by construction (Refit keeps the partitioning, Rebind equals a fresh prepare, warm seeding stays off at drift 0) — any difference is a bug",
		"speedup rows compare against the cold solve of the same problem (base or drifted); the partition column shows the phase the structure hit removes",
		"parity = smallest fraction of the sweep budget whose final cost reaches the cold-seeded full-budget cost; cold and warm parity probes share one cached partitioning (fresh-primed per fraction), so parity isolates the warm-seeding effect")
	if skipped > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf("%d instance size(s) skipped: they fit the device capacity whole, so no partitioning runs and the cache has nothing to reuse", skipped))
	}
	return r, nil
}

// cacheCell renders one solve's cache interaction for a report cell.
func cacheCell(c *core.CacheOutcome) string {
	if c == nil {
		return "—"
	}
	if !c.StructureHit {
		return "miss"
	}
	cell := fmt.Sprintf("hit, skel %d/%d", c.SkeletonHits, c.SkeletonHits+c.SkeletonMisses)
	if c.WarmStart {
		cell += fmt.Sprintf(", warm (drift %.3f)", c.Drift)
	}
	return cell
}
