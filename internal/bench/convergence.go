package bench

import (
	"context"
	"fmt"
	"sort"

	"incranneal/internal/core"
	"incranneal/internal/da"
	"incranneal/internal/obs"
)

// convMaxPointsPerScope bounds the rows one scope (partial problem)
// contributes to the convergence table: the full trajectory lives in the
// JSONL trace; the table keeps the first and last improvement plus evenly
// spaced points in between, enough to see the convergence shape.
const convMaxPointsPerScope = 6

// Convergence runs the paper's method (DA, incremental) with dynamic search
// steering on and off on one partitioned instance and tabulates the
// incumbent-energy convergence trajectories the observability layer
// records: per partial problem the best-so-far QUBO energy over
// Monte-Carlo steps (merged across the annealing runs), and per merge the
// incumbent global plan cost. The DSS variants share the seed and sweep
// budget, so every difference between their rows is attributable to the
// re-applied savings steering later partial solves.
//
// Events are also forwarded to the sink carried by ctx (if any), so a
// -trace file records the raw trajectories alongside the rendered table.
func Convergence(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	q := scale.QuerySet[len(scale.QuerySet)-1]
	p, err := runtimeInstance(q, scale.StandardPPQ, 0.3)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "convergence",
		Title:   fmt.Sprintf("Incumbent-energy convergence, DA incremental, %d queries, %d PPQ, DSS on vs. off (%s scale)", q, scale.StandardPPQ, scale.Name),
		Header:  cfg.headerLines(scale),
		Columns: []string{"variant", "scope", "sweep", "incumbent"},
	}
	for _, variant := range []struct {
		name       string
		disableDSS bool
	}{{"dss-on", false}, {"dss-off", true}} {
		// Chain forwards events to an outer -trace sink; metrics are recorded
		// by the innermost sink only, so inherit the outer registry too.
		outer := obs.FromContext(ctx)
		collector := obs.NewCollector(outer.Metrics()).Chain(outer)
		runCtx := obs.NewContext(ctx, collector)
		out, err := core.SolveIncremental(runCtx, p, core.Options{
			Device:      &da.Solver{CapacityVars: cfg.DACapacity},
			Runs:        cfg.Runs,
			TotalSweeps: daSweeps(cfg, p),
			Seed:        classSeed("convergence", q, scale.StandardPPQ, 0),
			Parallelism: cfg.Parallelism,
			DisableDSS:  variant.disableDSS,
		})
		if err != nil {
			return nil, err
		}
		for _, row := range convergenceRows(collector.Events()) {
			r.AddRow(variant.name, row.scope, fmt.Sprintf("%d", row.sweep), fmt.Sprintf("%.3f", row.energy))
		}
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s: final cost %.3f over %d partitions, reapplied savings %.3f, %d sweeps",
			variant.name, out.Cost, out.NumPartitions, out.ReappliedSavings, out.Sweeps))
	}
	r.Notes = append(r.Notes,
		"sub* scopes: best-so-far QUBO energy of the partial problem over Monte-Carlo steps, min across runs",
		"global scope: incumbent total plan cost after each partial solution merge (sweep column counts merges)",
		"full per-run trajectories are in the JSONL trace when -trace is set")
	return r, nil
}

// convRow is one rendered convergence point.
type convRow struct {
	scope  string
	sweep  int
	energy float64
}

// convergenceRows turns collected trace events into table rows. Device
// "run" events may arrive in any completion order (the worker pool races),
// so rows are rebuilt from the events' own fields and sorted — the table is
// deterministic for a deterministic pipeline even though the trace
// interleaving is not.
func convergenceRows(events []obs.Event) []convRow {
	// Merge every run's trajectory per label into one incumbent-over-sweeps
	// curve: sort the union of points by sweep and keep the running min.
	bySub := make(map[string][]obs.ConvPoint)
	var rows []convRow
	for _, e := range events {
		switch e.Name {
		case "run":
			if e.Device == "da" && e.Label != "bisect" {
				bySub[e.Label] = append(bySub[e.Label], e.Points...)
			}
		case "merge":
			rows = append(rows, convRow{scope: "global", sweep: e.N, energy: e.Value})
		}
	}
	labels := make([]string, 0, len(bySub))
	for l := range bySub {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		pts := bySub[l]
		sort.Slice(pts, func(a, b int) bool {
			if pts[a].Sweep != pts[b].Sweep {
				return pts[a].Sweep < pts[b].Sweep
			}
			return pts[a].Energy < pts[b].Energy
		})
		var curve []obs.ConvPoint
		for _, pt := range pts {
			if len(curve) == 0 || pt.Energy < curve[len(curve)-1].Energy {
				curve = append(curve, pt)
			}
		}
		for _, pt := range thinPoints(curve, convMaxPointsPerScope) {
			rows = append(rows, convRow{scope: l, sweep: pt.Sweep, energy: pt.Energy})
		}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		if rows[a].scope != rows[b].scope {
			// Global merge trajectory last: it summarises the sub curves.
			if rows[a].scope == "global" {
				return false
			}
			if rows[b].scope == "global" {
				return true
			}
			return rows[a].scope < rows[b].scope
		}
		return rows[a].sweep < rows[b].sweep
	})
	return rows
}

// thinPoints keeps at most n points of a curve: always the first and last,
// with the rest evenly spaced.
func thinPoints(pts []obs.ConvPoint, n int) []obs.ConvPoint {
	if len(pts) <= n || n < 2 {
		return pts
	}
	out := make([]obs.ConvPoint, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pts[i*(len(pts)-1)/(n-1)])
	}
	return out
}
