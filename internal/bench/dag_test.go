package bench

import (
	"context"
	"strings"
	"testing"

	"incranneal/internal/core"
)

// TestAblationDAGSmoke runs the execution-order ablation at smoke scale and
// pins its acceptance property: sequential and DAG-parallel quality columns
// are identical (the solves are bit-identical; the formatted cells must be
// too).
func TestAblationDAGSmoke(t *testing.T) {
	scale := SmokeScale()
	r, err := AblationDAG(context.Background(), ConfigFor(scale), scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != scale.Instances {
		t.Fatalf("rows = %d, want %d", len(r.Rows), scale.Instances)
	}
	for _, row := range r.Rows {
		shape, costSeq, costDAG, reapSeq, reapDAG := row[1], row[2], row[3], row[5], row[6]
		if shape == "fallback" {
			t.Errorf("%s: sparse stride topology fell back to sequential", row[0])
		}
		if costSeq != costDAG {
			t.Errorf("%s: cost diverged between orders: seq %s, dag %s", row[0], costSeq, costDAG)
		}
		if reapSeq != reapDAG {
			t.Errorf("%s: reapplied savings diverged: seq %s, dag %s", row[0], reapSeq, reapDAG)
		}
	}
	if !strings.Contains(r.String(), "ablation-dag") {
		t.Error("report missing its ID")
	}
}

// TestPipelineSpecApply pins the flag plumbing shared by the CLIs.
func TestPipelineSpecApply(t *testing.T) {
	var opt core.Options
	PipelineSpec{}.Apply(&opt)
	if opt.DisableDAG || opt.DAGDensityThreshold != 0 {
		t.Errorf("zero spec mutated options: %+v", opt)
	}
	PipelineSpec{DisableDAG: true, DAGDensity: 0.8}.Apply(&opt)
	if !opt.DisableDAG || opt.DAGDensityThreshold != 0.8 {
		t.Errorf("spec not applied: %+v", opt)
	}
}
