package bench

import (
	"context"
	"fmt"
	"time"

	"incranneal/internal/da"
	"incranneal/internal/encoding"
	"incranneal/internal/hqa"
	"incranneal/internal/sa"
	"incranneal/internal/solver"
	"incranneal/internal/va"
	"incranneal/internal/workload"
)

// DeviceShootout reproduces the paper's device comparison (contribution 3:
// "benchmark the performance of two contemporary quantum and
// quantum-inspired HW types ... identify the most capable device"),
// extended with the NEC Vector Annealer the paper assessed and dismissed
// (Sec. 2.3) and the DA's parallel-tempering mode: every device minimises
// the same encoded MQO QUBOs under a comparable budget, reporting best
// energies and solve times.
func DeviceShootout(ctx context.Context, cfg Config, scale Scale) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "devices",
		Title:  "Quantum(-inspired) device comparison on identical MQO QUBOs",
		Header: cfg.headerLines(scale),
	}
	type device struct {
		name  string
		solve func(ctx context.Context, req solver.Request) (*solver.Result, error)
	}
	daDev := &da.Solver{CapacityVars: 1 << 20}
	devices := []device{
		{"DA", daDev.Solve},
		{"DA (PT)", daDev.SolvePT},
		{"VA", (&va.Solver{}).Solve},
		{"HQA", (&hqa.Solver{}).Solve},
		{"SA", (&sa.Solver{}).Solve},
	}
	r.Columns = []string{"instance", "vars"}
	for _, d := range devices {
		r.Columns = append(r.Columns, d.name+" energy", d.name+" time")
	}
	for inst := 0; inst < scale.Instances; inst++ {
		in, err := workload.GenerateSweep(workload.SweepConfig{
			Queries: scale.QuerySet[0], PPQ: scale.StandardPPQ,
			Communities: 4, DensityLow: 0.05, DensityHigh: 1.0,
			Seed: classSeed("devices", inst, 0, 0),
		})
		if err != nil {
			return nil, err
		}
		enc, err := encoding.EncodeMQO(in.Problem)
		if err != nil {
			return nil, err
		}
		row := []string{in.Problem.Name, fmt.Sprintf("%d", enc.Model.NumVariables())}
		for _, d := range devices {
			req := solver.Request{
				Model: enc.Model, Runs: cfg.Runs,
				Sweeps: deviceSweeps(d.name, cfg, enc.Model.NumVariables()),
				Seed:   classSeed("devices-run", inst, 0, 0),
			}
			start := time.Now()
			res, err := d.solve(ctx, req)
			if err != nil {
				return nil, fmt.Errorf("device %s: %w", d.name, err)
			}
			best, ok := res.Best()
			if !ok {
				return nil, fmt.Errorf("device %s: no samples", d.name)
			}
			row = append(row,
				fmt.Sprintf("%.1f", best.Energy),
				time.Since(start).Round(time.Millisecond).String())
		}
		r.AddRow(row...)
	}
	r.Notes = append(r.Notes,
		"energies are best QUBO energies (lower is better); budgets are normalised to comparable step counts per device",
		"the paper finds the DA dominating the HQA and both dominating SA; the VA was assessed and found dominated by the DA (Sec. 2.3)")
	return r, nil
}

// deviceSweeps normalises budgets: the DA counts single-flip steps, the VA
// full sweeps, the HQA hybrid iterations, and SA full sweeps.
func deviceSweeps(name string, cfg Config, vars int) int {
	switch name {
	case "DA", "DA (PT)":
		return cfg.SweepsPerVar * vars
	case "VA":
		return cfg.SweepsPerVar / 4
	case "SA":
		return 1000
	default: // HQA derives its own iteration budget
		return 0
	}
}
