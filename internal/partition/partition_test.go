package partition

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"incranneal/internal/da"
	"incranneal/internal/mqo"
	"incranneal/internal/sa"
)

func TestBuildGraphPaperExample(t *testing.T) {
	p := mqo.PaperExample()
	g := BuildGraph(p)
	if got := g.NumNodes(); got != 4 {
		t.Fatalf("nodes = %d, want 4", got)
	}
	for q, w := range g.NodeWeights {
		if w != 2 {
			t.Errorf("node weight of q%d = %v, want 2", q+1, w)
		}
	}
	// Example 4.1 edge weights.
	cases := []struct {
		q1, q2 int
		want   float64
	}{
		{0, 1, 8}, {0, 3, 5}, {1, 2, 5}, {2, 3, 8},
		{0, 2, 0}, {1, 3, 0}, // explicitly absent
	}
	for _, tc := range cases {
		if got := g.EdgeWeight(tc.q1, tc.q2); got != tc.want {
			t.Errorf("ω(q%d,q%d) = %v, want %v", tc.q1+1, tc.q2+1, got, tc.want)
		}
	}
	if got := len(g.Edges); got != 4 {
		t.Errorf("edges = %d, want 4", got)
	}
}

func TestGraphHelpers(t *testing.T) {
	p := mqo.PaperExample()
	g := BuildGraph(p)
	if got := g.PlanWeight([]int{0, 1}); got != 4 {
		t.Errorf("PlanWeight = %v, want 4", got)
	}
	// Example 4.4: cut between (q1,q2) and (q3,q4) is 10.
	if got := g.CutWeight([]int{0, 1}, []int{2, 3}); got != 10 {
		t.Errorf("CutWeight = %v, want 10", got)
	}
	if got := g.CutWeight([]int{0, 3}, []int{1, 2}); got != 16 {
		t.Errorf("CutWeight alt = %v, want 16", got)
	}
	if got := g.CutWeight([]int{0, 2}, []int{1, 3}); got != 26 {
		t.Errorf("CutWeight worst = %v, want 26", got)
	}
	// Conformance of q1 to (q1,q2): ω(q1,q2) = 8 (self excluded).
	if got := g.AccumulatedSavings(0, []int{0, 1}); got != 8 {
		t.Errorf("AccumulatedSavings = %v, want 8", got)
	}
}

func TestSubgraphPreservesWeights(t *testing.T) {
	p := mqo.PaperExample()
	g := BuildGraph(p)
	sub := g.Subgraph([]int{0, 1, 3}) // q1, q2, q4
	if got := sub.NumNodes(); got != 3 {
		t.Fatalf("subgraph nodes = %d", got)
	}
	if got := sub.EdgeWeight(0, 1); got != 8 { // q1–q2
		t.Errorf("subgraph ω(q1,q2) = %v, want 8", got)
	}
	if got := sub.EdgeWeight(0, 2); got != 5 { // q1–q4
		t.Errorf("subgraph ω(q1,q4) = %v, want 5", got)
	}
	if got := sub.EdgeWeight(1, 2); got != 0 { // q2–q4 absent
		t.Errorf("subgraph ω(q2,q4) = %v, want 0", got)
	}
}

func TestPostProcessMovesMisassignedQuery(t *testing.T) {
	p := mqo.PaperExample()
	g := BuildGraph(p)
	// Start from the worst cut (q1,q3)|(q2,q4): q3 conforms to q4's side
	// (ω(q3,q4)=8 vs ω(q3,q1)=0), q1 to q2's (8 vs 0).
	p1, p2 := PostProcess(g, []int{0, 2}, []int{1, 3}, 4, 1)
	if g.CutWeight(p1, p2) >= 26 {
		t.Errorf("post-processing did not reduce cut: %v | %v (cut %v)", p1, p2, g.CutWeight(p1, p2))
	}
}

func TestPostProcessRespectsMinSize(t *testing.T) {
	p := mqo.PaperExample()
	g := BuildGraph(p)
	p1, p2 := PostProcess(g, []int{0, 2}, []int{1, 3}, 10, 2)
	if len(p1) < 2 {
		t.Errorf("part1 shrank below minSize: %v | %v", p1, p2)
	}
	if len(p1)+len(p2) != 4 {
		t.Errorf("queries lost: %v | %v", p1, p2)
	}
}

func TestPostProcessStableOnGoodCut(t *testing.T) {
	p := mqo.PaperExample()
	g := BuildGraph(p)
	// The optimal cut (q1,q2)|(q3,q4) must not change.
	p1, p2 := PostProcess(g, []int{0, 1}, []int{2, 3}, 4, 1)
	if len(p1) != 2 || len(p2) != 2 {
		t.Errorf("optimal cut disturbed: %v | %v", p1, p2)
	}
}

func TestPostProcessBestPicksLowerCut(t *testing.T) {
	p := mqo.PaperExample()
	g := BuildGraph(p)
	a1, a2 := PostProcessBest(g, []int{0, 2}, []int{1, 3}, 4, 1)
	cut := g.CutWeight(a1, a2)
	b1, b2 := PostProcess(g, []int{0, 2}, []int{1, 3}, 4, 1)
	c1, c2 := PostProcess(g, []int{1, 3}, []int{0, 2}, 4, 1)
	minCut := g.CutWeight(b1, b2)
	if alt := g.CutWeight(c1, c2); alt < minCut {
		minCut = alt
	}
	if cut != minCut {
		t.Errorf("PostProcessBest cut = %v, want %v", cut, minCut)
	}
}

func TestPartitionPaperExample(t *testing.T) {
	p := mqo.PaperExample()
	res, err := Partition(context.Background(), p, Options{
		Capacity: 4,
		Solver:   &da.Solver{CapacityVars: 64},
		Runs:     4,
		Sweeps:   500,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SubProblems) != 2 {
		t.Fatalf("partitions = %d, want 2", len(res.SubProblems))
	}
	// The minimal cut is (q1,q2)|(q3,q4) with 10 discarded savings.
	if res.DiscardedSavings != 10 {
		t.Errorf("discarded savings = %v, want 10", res.DiscardedSavings)
	}
	for _, qs := range res.QuerySets {
		if len(qs) != 2 {
			t.Errorf("unbalanced query sets: %v", res.QuerySets)
		}
	}
	if res.Bisections != 1 {
		t.Errorf("bisections = %d, want 1", res.Bisections)
	}
}

func TestPartitionRequiresCapacity(t *testing.T) {
	p := mqo.PaperExample()
	if _, err := Partition(context.Background(), p, Options{}); err == nil {
		t.Error("Partition accepted zero capacity")
	}
}

func TestPartitionNoOpWithinCapacity(t *testing.T) {
	p := mqo.PaperExample()
	res, err := Partition(context.Background(), p, Options{Capacity: 100, Solver: &sa.Solver{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SubProblems) != 1 || res.Bisections != 0 {
		t.Errorf("within-capacity problem was split: %d partitions, %d bisections", len(res.SubProblems), res.Bisections)
	}
}

func TestPartitionCapacityInvariantProperty(t *testing.T) {
	// Property: every partial problem respects the capacity; every query
	// lands in exactly one partition.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		queries := 6 + rng.Intn(10)
		ppq := 2 + rng.Intn(3)
		p := randomProblem(rng, queries, ppq, 0.2)
		capacity := ppq * (2 + rng.Intn(3))
		res, err := Partition(context.Background(), p, Options{
			Capacity: capacity,
			Solver:   &sa.Solver{},
			Runs:     2,
			Sweeps:   100,
			Seed:     seed,
		})
		if err != nil {
			return false
		}
		seen := make([]bool, queries)
		for _, qs := range res.QuerySets {
			weight := 0
			for _, q := range qs {
				if seen[q] {
					return false
				}
				seen[q] = true
				weight += len(p.Plans(q))
			}
			if len(qs) > 1 && weight > capacity {
				return false
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFallbackSplitBalances(t *testing.T) {
	p := mqo.PaperExample()
	g := BuildGraph(p)
	p1, p2 := fallbackSplit(g)
	if len(p1) == 0 || len(p2) == 0 {
		t.Fatalf("fallback produced empty side: %v | %v", p1, p2)
	}
	if g.PlanWeight(p1) != g.PlanWeight(p2) {
		t.Errorf("fallback imbalanced: %v vs %v", g.PlanWeight(p1), g.PlanWeight(p2))
	}
}

// randomProblem builds a random valid instance for property tests.
func randomProblem(rng *rand.Rand, queries, ppq int, density float64) *mqo.Problem {
	costs := make([][]float64, queries)
	for q := range costs {
		cs := make([]float64, ppq)
		for i := range cs {
			cs[i] = 1 + rng.Float64()*19
		}
		costs[q] = cs
	}
	var savings []mqo.Saving
	for q1 := 0; q1 < queries; q1++ {
		for q2 := q1 + 1; q2 < queries; q2++ {
			for i := 0; i < ppq; i++ {
				for j := 0; j < ppq; j++ {
					if rng.Float64() < density {
						savings = append(savings, mqo.Saving{
							P1:    q1*ppq + i,
							P2:    q2*ppq + j,
							Value: 1 + rng.Float64()*9,
						})
					}
				}
			}
		}
	}
	p, err := mqo.NewProblem(costs, savings)
	if err != nil {
		panic(err)
	}
	return p
}
