package partition

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"incranneal/internal/sa"
)

// TestRefitReproducesPartition pins the cross-solve cache's structure-hit
// contract: feeding Partition's own query sets back through Refit (same
// problem, same capacity) reproduces the Result bit-identically with zero
// bisections.
func TestRefitReproducesPartition(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 8+rng.Intn(8), 3, 0.2)
		opt := Options{Capacity: 9, Solver: &sa.Solver{}, Runs: 2, Sweeps: 100, Seed: seed}
		cold, err := Partition(context.Background(), p, opt)
		if err != nil {
			t.Fatal(err)
		}
		hit, err := Refit(context.Background(), p, cold.QuerySets, opt)
		if err != nil {
			t.Fatal(err)
		}
		if hit.Bisections != 0 {
			t.Fatalf("seed %d: refit of a conforming partitioning ran %d bisections", seed, hit.Bisections)
		}
		if !reflect.DeepEqual(hit.QuerySets, cold.QuerySets) {
			t.Fatalf("seed %d: query sets diverged\ncold %v\nhit  %v", seed, cold.QuerySets, hit.QuerySets)
		}
		if hit.DiscardedSavings != cold.DiscardedSavings {
			t.Fatalf("seed %d: discarded savings %v vs %v", seed, hit.DiscardedSavings, cold.DiscardedSavings)
		}
		if len(hit.SubProblems) != len(cold.SubProblems) {
			t.Fatalf("seed %d: %d vs %d sub-problems", seed, len(hit.SubProblems), len(cold.SubProblems))
		}
		for i := range hit.SubProblems {
			a, b := hit.SubProblems[i], cold.SubProblems[i]
			if a.Local.NumPlans() != b.Local.NumPlans() || a.DiscardedMagnitude() != b.DiscardedMagnitude() {
				t.Fatalf("seed %d: sub-problem %d diverged", seed, i)
			}
		}
	}
}

// TestRefitReBisectsOverflow gives Refit a partitioning whose single set
// outgrew the capacity: only that set is re-bisected, conforming sets are
// kept verbatim.
func TestRefitReBisectsOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomProblem(rng, 12, 3, 0.2) // 36 plans
	conforming := []int{0, 1}           // weight 6
	overflowing := make([]int, 0, 10)
	for q := 2; q < 12; q++ {
		overflowing = append(overflowing, q) // weight 30 > 12
	}
	opt := Options{Capacity: 12, Solver: &sa.Solver{}, Runs: 2, Sweeps: 100, Seed: 7}
	res, err := Refit(context.Background(), p, [][]int{conforming, overflowing}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bisections == 0 {
		t.Fatal("overflowing set was not re-bisected")
	}
	found := false
	seen := make([]bool, 12)
	for _, qs := range res.QuerySets {
		w := 0
		for _, q := range qs {
			if seen[q] {
				t.Fatalf("query %d covered twice: %v", q, res.QuerySets)
			}
			seen[q] = true
			w += len(p.Plans(q))
		}
		if len(qs) > 1 && w > 12 {
			t.Fatalf("set %v exceeds capacity: weight %d", qs, w)
		}
		if len(qs) == 2 && qs[0] == 0 && qs[1] == 1 {
			found = true
		}
	}
	for q, s := range seen {
		if !s {
			t.Fatalf("query %d lost: %v", q, res.QuerySets)
		}
	}
	if !found {
		t.Fatalf("conforming set {0,1} was not kept verbatim: %v", res.QuerySets)
	}
}

// TestRefitRejectsBadCoverage is the fingerprint-collision safety net: query
// sets that do not cover p exactly once must error, never partition.
func TestRefitRejectsBadCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, 4, 2, 0.3)
	opt := Options{Capacity: 8, Solver: &sa.Solver{}, Seed: 3}
	cases := []struct {
		name string
		sets [][]int
	}{
		{"missing query", [][]int{{0, 1}, {2}}},
		{"duplicate query", [][]int{{0, 1}, {1, 2, 3}}},
		{"out of range", [][]int{{0, 1}, {2, 4}}},
		{"negative", [][]int{{0, 1}, {2, -1}}},
		{"foreign partitioning", [][]int{{0, 1, 2, 3, 4, 5}}},
	}
	for _, tc := range cases {
		if _, err := Refit(context.Background(), p, tc.sets, opt); err == nil {
			t.Errorf("%s: Refit accepted %v", tc.name, tc.sets)
		}
	}
	if _, err := Refit(context.Background(), p, [][]int{{0, 1, 2, 3}}, Options{Solver: &sa.Solver{}}); err == nil {
		t.Error("Refit accepted zero capacity")
	}
}
