package partition

import (
	"math"
	"math/rand"
	"testing"
)

// TestCutWeightBitIdentical pins the sorted-edge accumulation: the cut
// weight of a partition must be bit-identical across repeated calls and
// symmetric in its arguments. Summing adjacency maps in iteration order
// made mirror-image orientations differ by an ulp at random, which flipped
// PostProcessBest's orientation choice between otherwise identical runs.
func TestCutWeightBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(rng, 20, 3, 0.4)
		g := BuildGraph(p)
		var part1, part2 []int
		for q := 0; q < g.NumNodes(); q++ {
			if rng.Intn(2) == 0 {
				part1 = append(part1, q)
			} else {
				part2 = append(part2, q)
			}
		}
		ref := g.CutWeight(part1, part2)
		for call := 0; call < 20; call++ {
			if got := g.CutWeight(part1, part2); math.Float64bits(got) != math.Float64bits(ref) {
				t.Fatalf("trial %d: CutWeight varied across calls: %v vs %v", trial, got, ref)
			}
			if got := g.CutWeight(part2, part1); math.Float64bits(got) != math.Float64bits(ref) {
				t.Fatalf("trial %d: CutWeight not symmetric: %v vs %v", trial, got, ref)
			}
		}
	}
}
