// Package partition implements the problem-partitioning phase of the
// paper's incremental method (Sec. 4.1): compressing an MQO problem into a
// partitioning graph, bisecting that graph on a quantum(-inspired) device
// via the QUBO encoding of Sec. 4.1.2, refining the split with the
// post-processing pass of Algorithm 1, and recursing until every partial
// problem fits the device's variable capacity.
package partition

import (
	"sort"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
)

// Graph is the partitioning graph of Sec. 4.1.1: one weighted node per
// query (weight = number of alternative plans) and one weighted edge per
// query pair sharing at least one cost saving (weight = accumulated saving
// value between their plans).
type Graph struct {
	// NodeWeights[q] = |P_q|.
	NodeWeights []float64
	// Edges lists query pairs with accumulated savings, U < V, sorted.
	Edges []encoding.WeightedEdge
	// adjacency[q] maps neighbour query -> accumulated saving weight.
	adjacency []map[int]float64
}

// BuildGraph compresses p into its partitioning graph.
func BuildGraph(p *mqo.Problem) *Graph {
	g := &Graph{
		NodeWeights: make([]float64, p.NumQueries()),
		adjacency:   make([]map[int]float64, p.NumQueries()),
	}
	for q := 0; q < p.NumQueries(); q++ {
		g.NodeWeights[q] = float64(len(p.Plans(q)))
		g.adjacency[q] = make(map[int]float64)
	}
	for _, s := range p.Savings() {
		q1, q2 := p.QueryOf(s.P1), p.QueryOf(s.P2)
		g.adjacency[q1][q2] += s.Value
		g.adjacency[q2][q1] += s.Value
	}
	for u, nb := range g.adjacency {
		for v, w := range nb {
			if u < v {
				g.Edges = append(g.Edges, encoding.WeightedEdge{U: u, V: v, Weight: w})
			}
		}
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].U != g.Edges[j].U {
			return g.Edges[i].U < g.Edges[j].U
		}
		return g.Edges[i].V < g.Edges[j].V
	})
	return g
}

// NumNodes returns the number of query nodes.
func (g *Graph) NumNodes() int { return len(g.NodeWeights) }

// EdgeWeight returns the accumulated saving weight between two queries, or
// zero when their plans share no savings.
func (g *Graph) EdgeWeight(q1, q2 int) float64 { return g.adjacency[q1][q2] }

// AccumulatedSavings returns Σ_{other∈set, other≠query} ω(query, other):
// the conformance of query to the given query set (AccSavToP1/AccSavToP2 of
// Algorithm 1).
func (g *Graph) AccumulatedSavings(query int, set []int) float64 {
	var t float64
	nb := g.adjacency[query]
	for _, other := range set {
		if other != query {
			t += nb[other]
		}
	}
	return t
}

// PlanWeight returns the accumulated node weight (total plan count) of a
// query set — the variable count its partial problem's QUBO will need.
func (g *Graph) PlanWeight(set []int) float64 {
	var t float64
	for _, q := range set {
		t += g.NodeWeights[q]
	}
	return t
}

// CutWeight returns the accumulated edge weight between the two query sets:
// the savings magnitude a partitioning into these sets discards. It sums
// over the sorted Edges slice, not the adjacency maps, so the float
// accumulation order — and therefore the result down to the last ulp — is
// identical on every call. PostProcessBest compares the cut weights of two
// orientations that can be mirror images of each other; summing in map
// iteration order made that comparison flip at random between processes.
func (g *Graph) CutWeight(part1, part2 []int) float64 {
	in1 := make(map[int]bool, len(part1))
	for _, q := range part1 {
		in1[q] = true
	}
	in2 := make(map[int]bool, len(part2))
	for _, q := range part2 {
		in2[q] = true
	}
	var cut float64
	for _, e := range g.Edges {
		if (in1[e.U] && in2[e.V]) || (in2[e.U] && in1[e.V]) {
			cut += e.Weight
		}
	}
	return cut
}

// Subgraph returns the induced partitioning graph over the given queries,
// re-numbered 0..len(queries)-1 in the given order.
func (g *Graph) Subgraph(queries []int) *Graph {
	localOf := make(map[int]int, len(queries))
	for li, q := range queries {
		localOf[q] = li
	}
	sub := &Graph{
		NodeWeights: make([]float64, len(queries)),
		adjacency:   make([]map[int]float64, len(queries)),
	}
	for li, q := range queries {
		sub.NodeWeights[li] = g.NodeWeights[q]
		sub.adjacency[li] = make(map[int]float64)
	}
	for li, q := range queries {
		for other, w := range g.adjacency[q] {
			lo, ok := localOf[other]
			if !ok {
				continue
			}
			sub.adjacency[li][lo] = w
			if li < lo {
				sub.Edges = append(sub.Edges, encoding.WeightedEdge{U: li, V: lo, Weight: w})
			}
		}
	}
	sort.Slice(sub.Edges, func(i, j int) bool {
		if sub.Edges[i].U != sub.Edges[j].U {
			return sub.Edges[i].U < sub.Edges[j].U
		}
		return sub.Edges[i].V < sub.Edges[j].V
	})
	return sub
}
