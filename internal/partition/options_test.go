package partition

import "testing"

func TestOptionsParsesDefaults(t *testing.T) {
	cases := []struct {
		in   int
		want int
	}{
		{0, 4},  // paper default
		{-1, 0}, // disabled
		{7, 7},  // explicit
	}
	for _, tc := range cases {
		o := Options{PostProcessParses: tc.in}
		if got := o.parses(); got != tc.want {
			t.Errorf("parses(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestOptionsMinSize(t *testing.T) {
	o := Options{} // default fraction 0.25
	if got := o.minSize(40); got != 10 {
		t.Errorf("minSize(40) = %d, want 10", got)
	}
	if got := o.minSize(2); got != 1 {
		t.Errorf("minSize(2) = %d, want floor 1", got)
	}
	o.MinPartFraction = 0.5
	if got := o.minSize(40); got != 20 {
		t.Errorf("minSize(40) at 0.5 = %d, want 20", got)
	}
}

func TestPostProcessZeroParsesIsNoOp(t *testing.T) {
	p1, p2 := PostProcess(nil, []int{0, 2}, []int{1, 3}, 0, 1)
	if len(p1) != 2 || len(p2) != 2 {
		t.Errorf("zero parses changed partitions: %v | %v", p1, p2)
	}
}
