package partition

import (
	"context"
	"fmt"
	"sort"
	"time"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
	"incranneal/internal/sa"
	"incranneal/internal/solver"
)

// Options configures the partitioning phase.
type Options struct {
	// Capacity is the target device's variable capacity: no partial
	// problem may need more QUBO variables (= execution plans) than this.
	// Required.
	Capacity int
	// Solver is the quantum(-inspired) device used to minimise the
	// bisection QUBOs — the paper's second use of the annealer. When nil,
	// or when a partitioning graph itself exceeds the device capacity,
	// classical simulated annealing is used for that graph.
	Solver solver.Solver
	// Runs and Sweeps budget each bisection solve. Zero uses solver
	// defaults.
	Runs, Sweeps int
	// Seed makes partitioning deterministic.
	Seed int64
	// PostProcessParses is the numParses parameter of Algorithm 1; zero
	// uses the paper's value of 4 and a negative value disables
	// post-processing (ablation).
	PostProcessParses int
	// MinPartFraction bounds the post-processing shrinkage: part1 never
	// drops below this fraction of the subset's queries. Zero means 0.25.
	MinPartFraction float64
	// Parallelism forwards to the bisection solves' Request.Parallelism,
	// bounding each device's run-level worker pool; zero means GOMAXPROCS.
	Parallelism int
	// FailFast aborts the partitioning phase on the first bisection solve
	// error instead of degrading that bisection to the deterministic
	// weight-balancing split.
	FailFast bool
}

func (o *Options) parses() int {
	switch {
	case o.PostProcessParses < 0:
		return 0
	case o.PostProcessParses == 0:
		return 4
	default:
		return o.PostProcessParses
	}
}

func (o *Options) minSize(n int) int {
	f := o.MinPartFraction
	if f <= 0 {
		f = 0.25
	}
	m := int(f * float64(n))
	if m < 1 {
		m = 1
	}
	return m
}

// Result is the outcome of partitioning an MQO problem.
type Result struct {
	// SubProblems are the capacity-conforming partial problems, ordered by
	// descending plan count so incremental processing anchors the global
	// solution on the largest partial solution first.
	SubProblems []*mqo.SubProblem
	// QuerySets holds the parent-problem query indices of each partial
	// problem, aligned with SubProblems.
	QuerySets [][]int
	// Bisections counts annealer-backed graph bisections performed.
	Bisections int
	// DiscardedSavings is the total magnitude of savings crossing
	// partition boundaries — the information DSS later re-applies. Each
	// crossing saving is counted once.
	DiscardedSavings float64
	// DegradedBisections counts bisections whose annealer solve failed (or
	// returned no samples) and that fell back to the deterministic
	// weight-balancing split instead of aborting the phase.
	DegradedBisections int
}

// Partition splits p into partial problems that each fit the device
// capacity, using annealer-backed weighted graph bisection (Sec. 4.1.2)
// refined by Algorithm 1, applied recursively (Sec. 4.1.2: "we may
// recursively repeat this process until none of them exceed the capacity
// limit").
func Partition(ctx context.Context, p *mqo.Problem, opt Options) (*Result, error) {
	if opt.Capacity <= 0 {
		return nil, fmt.Errorf("partition: capacity must be positive, got %d", opt.Capacity)
	}
	start := time.Now()
	g := BuildGraph(p)
	all := make([]int, p.NumQueries())
	for i := range all {
		all[i] = i
	}
	return refit(ctx, g, p, [][]int{all}, opt, start)
}

// Refit re-validates an existing partitioning of p — typically the
// cross-solve cache's partitioning of a recurring problem structure, or a
// delta-migrated one — against the current capacity: conforming query sets
// are kept verbatim with no annealer work, and only sets whose plan weight
// outgrew the capacity are recursively re-bisected, exactly as Partition
// would split them. querySets must cover every query of p exactly once
// (violations return an error — this is also the safety net that turns a
// structure-fingerprint collision into a recoverable failure instead of a
// wrong answer). For a partitioning Partition itself produced on a problem
// with unchanged structure and unchanged capacity, Refit reproduces
// Partition's Result bit-identically: every set already conforms, and the
// stable descending-weight re-sort and parallel extraction are the same
// tail Partition runs.
func Refit(ctx context.Context, p *mqo.Problem, querySets [][]int, opt Options) (*Result, error) {
	if opt.Capacity <= 0 {
		return nil, fmt.Errorf("partition: capacity must be positive, got %d", opt.Capacity)
	}
	start := time.Now()
	seen := make([]bool, p.NumQueries())
	count := 0
	initial := make([][]int, len(querySets))
	for i, qs := range querySets {
		for _, q := range qs {
			if q < 0 || q >= p.NumQueries() {
				return nil, fmt.Errorf("partition: refit query %d out of range [0,%d)", q, p.NumQueries())
			}
			if seen[q] {
				return nil, fmt.Errorf("partition: refit covers query %d twice", q)
			}
			seen[q] = true
			count++
		}
		initial[i] = append([]int(nil), qs...)
	}
	if count != p.NumQueries() {
		return nil, fmt.Errorf("partition: refit covers %d of %d queries", count, p.NumQueries())
	}
	return refit(ctx, BuildGraph(p), p, initial, opt, start)
}

// refit is the shared partitioning core: recursively bisect every initial
// query set that exceeds the capacity, then sort, extract and account the
// conforming sets. Partition passes the all-queries set; Refit passes a
// previous partitioning.
func refit(ctx context.Context, g *Graph, p *mqo.Problem, initial [][]int, opt Options, start time.Time) (*Result, error) {
	sink := obs.FromContext(ctx)
	res := &Result{}
	seed := opt.Seed
	var recurse func(queries []int) error
	recurse = func(queries []int) error {
		if g.PlanWeight(queries) <= float64(opt.Capacity) || len(queries) == 1 {
			res.QuerySets = append(res.QuerySets, queries)
			return nil
		}
		seed++
		t0 := time.Now()
		part1, part2, degraded, err := bisect(ctx, g, queries, opt, seed)
		if err != nil {
			return err
		}
		res.Bisections++
		if degraded {
			res.DegradedBisections++
		}
		if sink.Enabled() {
			sink.Emit(obs.Event{Name: "bisect", Dur: time.Since(t0), N: len(queries)})
		}
		if err := recurse(part1); err != nil {
			return err
		}
		return recurse(part2)
	}
	for _, qs := range initial {
		if err := recurse(qs); err != nil {
			return nil, err
		}
	}
	// Largest partial problems first: the incumbent solution they seed
	// steers all remaining solves.
	sort.SliceStable(res.QuerySets, func(i, j int) bool {
		return g.PlanWeight(res.QuerySets[i]) > g.PlanWeight(res.QuerySets[j])
	})
	// Extracting partial problems is independent per query set; fan the
	// extractions out over the run-level worker pool. Results are addressed
	// by index, so the outcome is identical at any parallelism.
	res.SubProblems = make([]*mqo.SubProblem, len(res.QuerySets))
	extractErrs := make([]error, len(res.QuerySets))
	solver.ForEachRun(len(res.QuerySets), solver.Workers(opt.Parallelism), func(i int) {
		res.SubProblems[i], extractErrs[i] = mqo.Extract(p, res.QuerySets[i])
	})
	for _, err := range extractErrs {
		if err != nil {
			return nil, err
		}
	}
	// Sum each crossing saving once: every discarded saving appears in
	// exactly two sub-problems' Discarded lists.
	var total float64
	for _, sp := range res.SubProblems {
		total += sp.DiscardedMagnitude()
	}
	res.DiscardedSavings = total / 2
	if sink.Enabled() {
		sink.Emit(obs.Event{
			Name: "partition", Dur: time.Since(start),
			N: len(res.SubProblems), Value: res.DiscardedSavings, Extra: float64(res.Bisections),
		})
		if reg := sink.Metrics(); reg != nil {
			reg.Gauge("partition.subproblems").Set(float64(len(res.SubProblems)))
			reg.Counter("partition.bisections").Add(float64(res.Bisections))
			reg.Counter("partition.discarded").Add(res.DiscardedSavings)
		}
	}
	return res, nil
}

// bisect splits one query subset into two non-empty parts using the
// annealer on the induced partitioning graph, then post-processes with
// Algorithm 1 (both orientations, best cut kept). When the device solve
// fails terminally — or returns an empty sample set — the bisection degrades
// to the deterministic weight-balancing split (reported via the third
// return) rather than aborting the whole partitioning phase, unless
// Options.FailFast asks for the error.
func bisect(ctx context.Context, g *Graph, queries []int, opt Options, seed int64) ([]int, []int, bool, error) {
	sub := g.Subgraph(queries)
	enc, err := encoding.EncodePartition(sub.NodeWeights, sub.Edges)
	if err != nil {
		return nil, nil, false, err
	}
	dev := opt.Solver
	if dev == nil || (dev.Capacity() > 0 && enc.Model.NumVariables() > dev.Capacity()) {
		// Precondition of Sec. 4.1.2: the device must hold one variable
		// per query node. Degrade to classical SA when it cannot.
		dev = &sa.Solver{}
	}
	req := solver.Request{Model: enc.Model, Runs: opt.Runs, Sweeps: opt.Sweeps, Seed: seed, Parallelism: opt.Parallelism}
	sink := obs.FromContext(ctx)
	if sink.Enabled() {
		// Distinguish the device's bisection solves from the MQO-phase
		// solves in traces.
		ctx = obs.WithLabel(ctx, "bisect")
	}
	var l1, l2 []int
	degraded := false
	result, err := dev.Solve(ctx, req)
	best, haveSample := solver.Sample{}, false
	if err == nil {
		best, haveSample = result.Best()
	} else if opt.FailFast {
		return nil, nil, false, fmt.Errorf("partition: bisection solve: %w", err)
	}
	if haveSample {
		l1, l2, err = enc.Decode(best.Assignment)
		if err != nil {
			return nil, nil, false, err
		}
	} else {
		// The solve failed terminally or yielded no sample: split by
		// alternating descending node weights instead of aborting the
		// phase. The split is deterministic, so the degraded pipeline
		// stays reproducible.
		degraded = true
		if sink.Enabled() {
			sink.Emit(obs.Event{Name: "degrade", Device: dev.Name(), Label: "bisect", N: len(queries)})
			if reg := sink.Metrics(); reg != nil {
				reg.Counter("partition.degraded").Add(1)
			}
		}
	}
	if len(l1) == 0 || len(l2) == 0 {
		l1, l2 = fallbackSplit(sub)
	}
	if parses := opt.parses(); parses > 0 {
		l1, l2 = PostProcessBest(sub, l1, l2, parses, opt.minSize(len(queries)))
	}
	if len(l1) == 0 || len(l2) == 0 {
		l1, l2 = fallbackSplit(sub)
	}
	toGlobal := func(local []int) []int {
		out := make([]int, len(local))
		for i, l := range local {
			out[i] = queries[l]
		}
		sort.Ints(out)
		return out
	}
	return toGlobal(l1), toGlobal(l2), degraded, nil
}

// fallbackSplit deterministically halves a subset by alternating
// descending node weights across the parts, guaranteeing progress when the
// annealer degenerates to an empty side.
func fallbackSplit(g *Graph) ([]int, []int) {
	order := make([]int, g.NumNodes())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if g.NodeWeights[order[a]] != g.NodeWeights[order[b]] {
			return g.NodeWeights[order[a]] > g.NodeWeights[order[b]]
		}
		return order[a] < order[b]
	})
	var p1, p2 []int
	var w1, w2 float64
	for _, v := range order {
		if w1 <= w2 {
			p1 = append(p1, v)
			w1 += g.NodeWeights[v]
		} else {
			p2 = append(p2, v)
			w2 += g.NodeWeights[v]
		}
	}
	return p1, p2
}
