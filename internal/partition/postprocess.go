package partition

// PostProcess implements Algorithm 1 of the paper: it shifts queries from
// part1 to part2 whenever their accumulated savings (conformance) to part2
// exceed those to their own partition, repeating for numParses parses so
// that shifts of strongly associated queries can cascade, and never
// shrinking part1 below minSize queries. It returns the adjusted
// partitions; the inputs are not modified.
//
// The QUBO minimisation guarantees *balanced* partitions (Theorem 4.5);
// this pass re-introduces controlled imbalance when that recovers discarded
// savings, with minSize giving full control over the minimum partition size
// required to achieve a sufficient problem-size reduction.
func PostProcess(g *Graph, part1, part2 []int, numParses, minSize int) ([]int, []int) {
	p1 := append([]int(nil), part1...)
	p2 := append([]int(nil), part2...)
	if numParses <= 0 {
		return p1, p2
	}
	if minSize < 1 {
		minSize = 1
	}
	for parse := 0; parse < numParses; parse++ {
		moved := false
		// Iterate over a snapshot: Algorithm 1 removes from part1 while
		// scanning it.
		snapshot := append([]int(nil), p1...)
		for _, query := range snapshot {
			if len(p1) <= minSize {
				break
			}
			p1Conf := g.AccumulatedSavings(query, p1)
			p2Conf := g.AccumulatedSavings(query, p2)
			if p1Conf < p2Conf {
				p1 = remove(p1, query)
				p2 = append(p2, query)
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return p1, p2
}

// PostProcessBest runs PostProcess on both possible partition orientations
// — the outcome depends on which set sheds queries — and returns the result
// with the lower cut weight, as the paper recommends.
func PostProcessBest(g *Graph, part1, part2 []int, numParses, minSize int) ([]int, []int) {
	a1, a2 := PostProcess(g, part1, part2, numParses, minSize)
	b2, b1 := PostProcess(g, part2, part1, numParses, minSize)
	if g.CutWeight(a1, a2) <= g.CutWeight(b1, b2) {
		return a1, a2
	}
	return b1, b2
}

func remove(set []int, query int) []int {
	for i, q := range set {
		if q == query {
			return append(set[:i], set[i+1:]...)
		}
	}
	return set
}
