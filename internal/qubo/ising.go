package qubo

import "sort"

// Ising is the spin formulation equivalent to a QUBO (footnote 2 of the
// paper): H(s) = Σ_i h_i·s_i + Σ_{i<j} J_ij·s_i·s_j with s_i ∈ {−1,+1}.
// The partitioning encoding of Sec. 4.1.2 is naturally expressed over
// spins; ToQUBO converts it for the binary-variable devices via the
// substitution s = 2x − 1.
type Ising struct {
	n        int
	h        []float64
	j        map[[2]int]float64
	constant float64
}

// NewIsing returns an empty Ising model over n spins.
func NewIsing(n int) *Ising {
	return &Ising{n: n, h: make([]float64, n), j: make(map[[2]int]float64)}
}

// NumSpins returns the number of spin variables.
func (is *Ising) NumSpins() int { return is.n }

// AddField adds c to the external field h_i of spin i.
func (is *Ising) AddField(i int, c float64) { is.h[i] += c }

// AddCoupling adds c to the coupling J_ij between distinct spins i and j
// (order-insensitive). Coupling a spin to itself adds a constant, since
// s·s = 1.
func (is *Ising) AddCoupling(i, jj int, c float64) {
	if i == jj {
		is.constant += c
		return
	}
	if i > jj {
		i, jj = jj, i
	}
	is.j[[2]int{i, jj}] += c
}

// AddConstant adds c to the constant energy offset.
func (is *Ising) AddConstant(c float64) { is.constant += c }

// Energy evaluates H(s) for spins s_i ∈ {−1,+1}.
func (is *Ising) Energy(s []int8) float64 {
	e := is.constant
	for i, hi := range is.h {
		e += hi * float64(s[i])
	}
	for k, c := range is.j {
		e += c * float64(s[k[0]]) * float64(s[k[1]])
	}
	return e
}

// ToQUBO converts the Ising model to an equivalent QUBO via s_i = 2x_i − 1.
// Minima correspond one-to-one: spin +1 maps to x = 1. The constant energy
// shift is dropped (it does not affect minima).
//
// Couplings are emitted in sorted key order, not map order: each coupling
// folds −2J into both endpoints' linear coefficients, so iterating the map
// directly would accumulate those floats in a different order — and round
// differently in the last bits — on every call. Downstream consumers
// compare energies of degenerate optima (e.g. the two orientations of a
// graph bisection), where that noise flips ties at random.
func (is *Ising) ToQUBO() *Model {
	b := NewBuilder(is.n)
	for i, hi := range is.h {
		// h·s = h·(2x−1) = 2h·x − h.
		b.AddLinear(i, 2*hi)
	}
	for _, k := range is.sortedCouplings() {
		c := is.j[k]
		// J·s_i·s_j = J·(2x_i−1)(2x_j−1) = 4J·x_i·x_j − 2J·x_i − 2J·x_j + J.
		b.AddQuadratic(k[0], k[1], 4*c)
		b.AddLinear(k[0], -2*c)
		b.AddLinear(k[1], -2*c)
	}
	return b.Build()
}

// sortedCouplings returns the coupling keys in ascending (i, j) order so
// float accumulation over them is reproducible.
func (is *Ising) sortedCouplings() [][2]int {
	keys := make([][2]int, 0, len(is.j))
	for k := range is.j {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	return keys
}

// SpinsFromBinary converts a binary assignment to spins (+1 for 1, −1 for 0).
func SpinsFromBinary(x []int8) []int8 {
	s := make([]int8, len(x))
	for i, xi := range x {
		if xi != 0 {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	return s
}

// BinaryFromSpins converts spins to binary variables (1 for +1, 0 for −1).
func BinaryFromSpins(s []int8) []int8 {
	x := make([]int8, len(s))
	for i, si := range s {
		if si > 0 {
			x[i] = 1
		}
	}
	return x
}
