package qubo

import "math/rand"

// State is a mutable variable assignment for a Model with an incrementally
// maintained flat delta array: delta[i] = (1−2x_i)·field_i where
// field_i = c_ii + Σ_j c_ij·x_j, i.e. the energy change of flipping
// variable i. Keeping the deltas themselves — rather than the raw local
// fields annealing hardware stores — means the annealers' candidate scans
// reduce to tight loops over one contiguous float64 slice (see CountBelow
// and PickKthBelow) and the acceptance test is a single array read. A flip
// updates the array in O(degree) with one branch-free signed addition per
// neighbour. This is the data structure behind both the classical SA
// baseline and the Digital Annealer simulator's parallel trial step.
type State struct {
	m *Model
	x []int8
	// xsign[i] = 1−2x_i as a float64 (+1 when x_i = 0, −1 when x_i = 1),
	// kept alongside x so neighbour delta updates multiply instead of
	// branching on the neighbour's bit.
	xsign []float64
	// delta[i] caches DeltaEnergy(i); a flip of i negates delta[i] and
	// adjusts each neighbour j by xsign[i]·c_ij·xsign[j].
	delta  []float64
	energy float64
}

// NewState returns the all-zero state of m (energy 0 by construction, since
// constants are dropped at build time).
func NewState(m *Model) *State {
	s := &State{m: m, x: make([]int8, m.n), xsign: make([]float64, m.n), delta: make([]float64, m.n)}
	for i := range s.xsign {
		s.xsign[i] = 1
	}
	copy(s.delta, m.linear) // x ≡ 0 ⇒ delta[i] = field[i] = linear[i]
	return s
}

// NewRandomState returns a uniformly random state of m drawn from rng.
func NewRandomState(m *Model, rng *rand.Rand) *State {
	s := NewState(m)
	for i := 0; i < m.n; i++ {
		if rng.Intn(2) == 1 {
			s.Flip(i)
		}
	}
	return s
}

// Reset sets every variable of s to the given assignment, recomputing
// deltas and energy from scratch.
func (s *State) Reset(x []int8) {
	if len(x) != s.m.n {
		panic("qubo: reset with wrong state length")
	}
	copy(s.x, x)
	copy(s.delta, s.m.linear)
	for _, t := range s.m.terms {
		if s.x[t.J] != 0 {
			s.delta[t.I] += t.Coeff
		}
		if s.x[t.I] != 0 {
			s.delta[t.J] += t.Coeff
		}
	}
	for i := range s.delta {
		if s.x[i] != 0 {
			s.xsign[i] = -1
			s.delta[i] = -s.delta[i]
		} else {
			s.xsign[i] = 1
		}
	}
	s.energy = s.m.Energy(s.x)
}

// Model returns the model s assigns.
func (s *State) Model() *Model { return s.m }

// Get returns the value of variable i (0 or 1).
func (s *State) Get(i int) int8 { return s.x[i] }

// Assignment returns a copy of the current variable assignment.
func (s *State) Assignment() []int8 {
	out := make([]int8, len(s.x))
	copy(out, s.x)
	return out
}

// Energy returns the current energy f(x), maintained incrementally.
func (s *State) Energy() float64 { return s.energy }

// DeltaEnergy returns the energy change that flipping variable i would
// cause, in O(1) from the maintained delta array.
func (s *State) DeltaEnergy(i int) float64 { return s.delta[i] }

// Deltas exposes the flat per-variable flip deltas. The slice is owned by
// the state and valid only until the next Flip or Reset; callers must not
// modify it. Annealing kernels scan it directly instead of calling
// DeltaEnergy per variable.
func (s *State) Deltas() []float64 { return s.delta }

// CountBelow returns the number of variables whose flip delta is strictly
// below theta — the accepted-candidate count of the Digital Annealer's
// parallel trial step — as one tight pass over the delta array.
func (s *State) CountBelow(theta float64) int {
	count := 0
	for _, d := range s.delta {
		if d < theta {
			count++
		}
	}
	return count
}

// PickKthBelow returns the index of the k-th variable (0-based, ascending
// index order) whose flip delta is strictly below theta, or -1 when fewer
// than k+1 variables qualify. Together with CountBelow it implements the
// two-pass candidate selection of the parallel trial step.
func (s *State) PickKthBelow(theta float64, k int) int {
	for i, d := range s.delta {
		if d < theta {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

// Flip toggles variable i, updating energy and neighbour deltas in
// O(degree(i)).
func (s *State) Flip(i int) {
	d := s.delta[i]
	sign := s.xsign[i]
	s.x[i] ^= 1
	s.xsign[i] = -sign
	s.energy += d
	s.delta[i] = -d
	for _, nb := range s.m.adj[i] {
		// field_j changes by sign·c_ij; delta_j = xsign_j·field_j.
		s.delta[nb.j] += sign * nb.coeff * s.xsign[nb.j]
	}
}

// Copy returns an independent deep copy of s.
func (s *State) Copy() *State {
	c := &State{
		m:      s.m,
		x:      make([]int8, len(s.x)),
		xsign:  make([]float64, len(s.xsign)),
		delta:  make([]float64, len(s.delta)),
		energy: s.energy,
	}
	copy(c.x, s.x)
	copy(c.xsign, s.xsign)
	copy(c.delta, s.delta)
	return c
}
