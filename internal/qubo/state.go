package qubo

import "math/rand"

// State is a mutable variable assignment for a Model with incrementally
// maintained local fields, mirroring what annealing hardware keeps per
// variable: field[i] = c_ii + Σ_j c_ij·x_j, so that the energy change of
// flipping variable i is available in O(1) and a flip updates neighbours in
// O(degree). This is the data structure behind both the classical SA
// baseline and the Digital Annealer simulator's parallel trial step.
type State struct {
	m      *Model
	x      []int8
	fields []float64
	energy float64
}

// NewState returns the all-zero state of m (energy 0 by construction, since
// constants are dropped at build time).
func NewState(m *Model) *State {
	s := &State{m: m, x: make([]int8, m.n), fields: make([]float64, m.n)}
	copy(s.fields, m.linear)
	return s
}

// NewRandomState returns a uniformly random state of m drawn from rng.
func NewRandomState(m *Model, rng *rand.Rand) *State {
	s := NewState(m)
	for i := 0; i < m.n; i++ {
		if rng.Intn(2) == 1 {
			s.Flip(i)
		}
	}
	return s
}

// Reset sets every variable of s to the given assignment, recomputing
// fields and energy from scratch.
func (s *State) Reset(x []int8) {
	if len(x) != s.m.n {
		panic("qubo: reset with wrong state length")
	}
	copy(s.x, x)
	copy(s.fields, s.m.linear)
	for _, t := range s.m.terms {
		if s.x[t.J] != 0 {
			s.fields[t.I] += t.Coeff
		}
		if s.x[t.I] != 0 {
			s.fields[t.J] += t.Coeff
		}
	}
	s.energy = s.m.Energy(s.x)
}

// Model returns the model s assigns.
func (s *State) Model() *Model { return s.m }

// Get returns the value of variable i (0 or 1).
func (s *State) Get(i int) int8 { return s.x[i] }

// Assignment returns a copy of the current variable assignment.
func (s *State) Assignment() []int8 {
	out := make([]int8, len(s.x))
	copy(out, s.x)
	return out
}

// Energy returns the current energy f(x), maintained incrementally.
func (s *State) Energy() float64 { return s.energy }

// DeltaEnergy returns the energy change that flipping variable i would
// cause, in O(1): (1−2x_i)·field_i.
func (s *State) DeltaEnergy(i int) float64 {
	if s.x[i] == 0 {
		return s.fields[i]
	}
	return -s.fields[i]
}

// Flip toggles variable i, updating energy and neighbour fields in
// O(degree(i)).
func (s *State) Flip(i int) {
	delta := s.DeltaEnergy(i)
	var sign float64 = 1
	if s.x[i] != 0 {
		sign = -1
	}
	s.x[i] ^= 1
	s.energy += delta
	for _, nb := range s.m.adj[i] {
		s.fields[nb.j] += sign * nb.coeff
	}
}

// Copy returns an independent deep copy of s.
func (s *State) Copy() *State {
	c := &State{m: s.m, x: make([]int8, len(s.x)), fields: make([]float64, len(s.fields)), energy: s.energy}
	copy(c.x, s.x)
	copy(c.fields, s.fields)
	return c
}
