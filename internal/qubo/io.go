package qubo

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the de-facto standard ".qubo" interchange format
// popularised by D-Wave's qbsolv tool, so models can move between this
// repository's device simulators and external QUBO tooling:
//
//	c comment lines
//	p qubo topology maxNodes nNodes nCouplers
//	i i w        (node line: linear coefficient of variable i)
//	i j w        (coupler line: quadratic coefficient, i < j)

// WriteModel writes m in qbsolv .qubo format.
func WriteModel(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	nodes := 0
	for i := 0; i < m.NumVariables(); i++ {
		if m.Linear(i) != 0 {
			nodes++
		}
	}
	fmt.Fprintf(bw, "c QUBO written by incranneal\n")
	fmt.Fprintf(bw, "p qubo 0 %d %d %d\n", m.NumVariables(), nodes, m.NumTerms())
	for i := 0; i < m.NumVariables(); i++ {
		if c := m.Linear(i); c != 0 {
			fmt.Fprintf(bw, "%d %d %g\n", i, i, c)
		}
	}
	for _, t := range m.Terms() {
		fmt.Fprintf(bw, "%d %d %g\n", t.I, t.J, t.Coeff)
	}
	return bw.Flush()
}

// ReadModel parses a qbsolv .qubo file. The topology and counts of the
// program line are validated loosely (several producers emit inexact
// counts); coefficients for repeated entries accumulate, as in qbsolv.
func ReadModel(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "p" {
			if b != nil {
				return nil, fmt.Errorf("qubo: line %d: duplicate program line", line)
			}
			if len(fields) < 4 || fields[1] != "qubo" {
				return nil, fmt.Errorf("qubo: line %d: malformed program line %q", line, text)
			}
			maxNodes, err := strconv.Atoi(fields[3])
			if err != nil || maxNodes <= 0 {
				return nil, fmt.Errorf("qubo: line %d: invalid variable count %q", line, fields[3])
			}
			b = NewBuilder(maxNodes)
			continue
		}
		if b == nil {
			return nil, fmt.Errorf("qubo: line %d: coefficient before program line", line)
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("qubo: line %d: want 'i j w', got %q", line, text)
		}
		i, err1 := strconv.Atoi(fields[0])
		j, err2 := strconv.Atoi(fields[1])
		wv, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("qubo: line %d: malformed coefficient %q", line, text)
		}
		if i < 0 || j < 0 || i >= b.n || j >= b.n {
			return nil, fmt.Errorf("qubo: line %d: variable out of range in %q", line, text)
		}
		if i == j {
			b.AddLinear(i, wv)
		} else {
			b.AddQuadratic(i, j, wv)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("qubo: no program line found")
	}
	return b.Build(), nil
}
