package qubo

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadModel hardens the .qubo parser: any accepted input must produce
// a model that serialises and round-trips to identical energies.
func FuzzReadModel(f *testing.F) {
	f.Add("p qubo 0 3 2 1\n0 0 1\n1 1 -2\n0 2 0.5\n")
	f.Add("c only a comment\n")
	f.Add("p qubo 0 1 0 0\n")
	f.Add("0 0 1\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ReadModel(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteModel(&buf, m); err != nil {
			t.Fatalf("accepted model does not serialise: %v", err)
		}
		back, err := ReadModel(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumVariables() != m.NumVariables() {
			t.Fatal("round trip changed variable count")
		}
		x := make([]int8, m.NumVariables())
		for i := range x {
			x[i] = int8(i % 2)
		}
		a, b := m.Energy(x), back.Energy(x)
		diff := a - b
		if diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("round trip changed energy: %v vs %v", a, b)
		}
	})
}
