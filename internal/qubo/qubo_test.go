package qubo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomModel builds a random QUBO for property tests.
func randomModel(rng *rand.Rand, n int, density float64) *Model {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddLinear(i, rng.NormFloat64()*10)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				b.AddQuadratic(i, j, rng.NormFloat64()*10)
			}
		}
	}
	return b.Build()
}

func randomAssignment(rng *rand.Rand, n int) []int8 {
	x := make([]int8, n)
	for i := range x {
		x[i] = int8(rng.Intn(2))
	}
	return x
}

func TestBuilderAccumulates(t *testing.T) {
	b := NewBuilder(3)
	b.AddLinear(0, 2)
	b.AddLinear(0, 3)
	b.AddQuadratic(0, 1, 1)
	b.AddQuadratic(1, 0, 2) // order-insensitive, sums to 3
	b.AddQuadratic(2, 2, 7) // folds into linear of 2
	m := b.Build()
	if got := m.Linear(0); got != 5 {
		t.Errorf("Linear(0) = %v, want 5", got)
	}
	if got := m.Linear(2); got != 7 {
		t.Errorf("Linear(2) = %v, want 7 (x²=x fold)", got)
	}
	if got := m.NumTerms(); got != 1 {
		t.Fatalf("NumTerms = %d, want 1", got)
	}
	if tm := m.Terms()[0]; tm.I != 0 || tm.J != 1 || tm.Coeff != 3 {
		t.Errorf("term = %+v, want {0 1 3}", tm)
	}
}

func TestBuilderDropsZeroTerms(t *testing.T) {
	b := NewBuilder(2)
	b.AddQuadratic(0, 1, 5)
	b.AddQuadratic(0, 1, -5)
	m := b.Build()
	if m.NumTerms() != 0 {
		t.Errorf("zero-sum quadratic term kept: %v", m.Terms())
	}
}

func TestEnergyKnownValues(t *testing.T) {
	// f(x) = 2x0 − 3x1 + 4x0x1.
	b := NewBuilder(2)
	b.AddLinear(0, 2)
	b.AddLinear(1, -3)
	b.AddQuadratic(0, 1, 4)
	m := b.Build()
	cases := []struct {
		x    []int8
		want float64
	}{
		{[]int8{0, 0}, 0},
		{[]int8{1, 0}, 2},
		{[]int8{0, 1}, -3},
		{[]int8{1, 1}, 3},
	}
	for _, tc := range cases {
		if got := m.Energy(tc.x); got != tc.want {
			t.Errorf("Energy(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestStateIncrementalMatchesDirect(t *testing.T) {
	// Property: after arbitrary flip sequences, incremental energy and
	// delta match direct evaluation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng, 12, 0.5)
		st := NewRandomState(m, rng)
		for step := 0; step < 50; step++ {
			v := rng.Intn(m.NumVariables())
			before := m.Energy(st.Assignment())
			delta := st.DeltaEnergy(v)
			st.Flip(v)
			after := m.Energy(st.Assignment())
			if math.Abs(st.Energy()-after) > 1e-6 {
				return false
			}
			if math.Abs((after-before)-delta) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStateReset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomModel(rng, 10, 0.4)
	st := NewState(m)
	x := randomAssignment(rng, 10)
	st.Reset(x)
	if math.Abs(st.Energy()-m.Energy(x)) > 1e-9 {
		t.Errorf("Reset energy = %v, want %v", st.Energy(), m.Energy(x))
	}
	for v := 0; v < 10; v++ {
		if st.Get(v) != x[v] {
			t.Fatalf("Reset lost assignment at %d", v)
		}
	}
}

func TestStateCopyIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomModel(rng, 8, 0.5)
	st := NewRandomState(m, rng)
	cp := st.Copy()
	before := cp.Energy()
	st.Flip(0)
	if cp.Energy() != before {
		t.Error("Copy shares state with original")
	}
}

func TestMaxAbsCoefficient(t *testing.T) {
	b := NewBuilder(3)
	b.AddLinear(0, -7)
	b.AddQuadratic(1, 2, 3)
	m := b.Build()
	if got := m.MaxAbsCoefficient(); got != 7 {
		t.Errorf("MaxAbsCoefficient = %v, want 7", got)
	}
}

func TestIsingQUBOEquivalenceProperty(t *testing.T) {
	// Property: for every assignment, Ising energy (spins) and converted
	// QUBO energy (binaries) differ by exactly the dropped constant.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8
		is := NewIsing(n)
		for i := 0; i < n; i++ {
			is.AddField(i, rng.NormFloat64()*5)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					is.AddCoupling(i, j, rng.NormFloat64()*5)
				}
			}
		}
		m := is.ToQUBO()
		// The constant offset is assignment-independent; measure it once.
		x0 := make([]int8, n)
		offset := is.Energy(SpinsFromBinary(x0)) - m.Energy(x0)
		for trial := 0; trial < 20; trial++ {
			x := randomAssignment(rng, n)
			isingE := is.Energy(SpinsFromBinary(x))
			quboE := m.Energy(x)
			if math.Abs((isingE-quboE)-offset) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSpinBinaryConversionRoundTrip(t *testing.T) {
	x := []int8{0, 1, 1, 0, 1}
	s := SpinsFromBinary(x)
	want := []int8{-1, 1, 1, -1, 1}
	for i := range s {
		if s[i] != want[i] {
			t.Fatalf("SpinsFromBinary = %v, want %v", s, want)
		}
	}
	back := BinaryFromSpins(s)
	for i := range back {
		if back[i] != x[i] {
			t.Fatalf("round trip = %v, want %v", back, x)
		}
	}
}

func TestIsingSelfCouplingIsConstant(t *testing.T) {
	is := NewIsing(2)
	is.AddCoupling(0, 0, 5) // s·s = 1 → constant
	e1 := is.Energy([]int8{1, 1})
	e2 := is.Energy([]int8{-1, -1})
	if e1 != 5 || e2 != 5 {
		t.Errorf("self-coupling energies = %v, %v, want 5, 5", e1, e2)
	}
}
