package qubo

import (
	"math/rand"
	"testing"
)

// Kernel micro-benchmarks: the inner-loop primitives every annealing
// simulator is built from. CI runs these with -bench=BenchmarkKernel
// -benchtime=1x as a smoke test; BENCH_kernels.json records full runs.

func benchKernelState(b *testing.B) *State {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	m := randomModel(rng, 512, 0.05)
	return NewRandomState(m, rng)
}

// BenchmarkKernelFlip measures the O(degree) incremental flip including
// delta-array maintenance.
func BenchmarkKernelFlip(b *testing.B) {
	st := benchKernelState(b)
	n := st.Model().NumVariables()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Flip(i % n)
	}
}

// BenchmarkKernelCountBelow measures the candidate-count pass of the DA's
// parallel trial step: one tight scan over the flat delta array.
func BenchmarkKernelCountBelow(b *testing.B) {
	st := benchKernelState(b)
	b.ResetTimer()
	acc := 0
	for i := 0; i < b.N; i++ {
		acc += st.CountBelow(float64(i%7) - 3)
	}
	_ = acc
}

// BenchmarkKernelPickKthBelow measures the candidate-select pass.
func BenchmarkKernelPickKthBelow(b *testing.B) {
	st := benchKernelState(b)
	k := st.CountBelow(0) / 2
	if k == 0 {
		k = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.PickKthBelow(0, k)
	}
}
