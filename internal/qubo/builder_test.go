package qubo

import "testing"

func TestBuilderPanicsOnOutOfRange(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	b := NewBuilder(2)
	assertPanics("AddLinear(-1)", func() { b.AddLinear(-1, 1) })
	assertPanics("AddLinear(2)", func() { b.AddLinear(2, 1) })
	assertPanics("AddQuadratic(0,5)", func() { b.AddQuadratic(0, 5, 1) })
	assertPanics("NewBuilder(-1)", func() { NewBuilder(-1) })
}

func TestEnergyPanicsOnWrongLength(t *testing.T) {
	b := NewBuilder(3)
	b.AddLinear(0, 1)
	m := b.Build()
	defer func() {
		if recover() == nil {
			t.Error("Energy accepted short state")
		}
	}()
	m.Energy([]int8{1})
}

func TestTermsSortedAndDegree(t *testing.T) {
	b := NewBuilder(4)
	b.AddQuadratic(2, 3, 1)
	b.AddQuadratic(0, 1, 1)
	b.AddQuadratic(0, 3, 1)
	m := b.Build()
	terms := m.Terms()
	for i := 1; i < len(terms); i++ {
		prev, cur := terms[i-1], terms[i]
		if cur.I < prev.I || (cur.I == prev.I && cur.J < prev.J) {
			t.Fatalf("terms unsorted: %+v", terms)
		}
	}
	if m.Degree(0) != 2 || m.Degree(3) != 2 || m.Degree(2) != 1 {
		t.Errorf("degrees = %d, %d, %d", m.Degree(0), m.Degree(3), m.Degree(2))
	}
}

func TestAddConstantIsDropped(t *testing.T) {
	b := NewBuilder(1)
	b.AddConstant(42)
	b.AddLinear(0, -1)
	m := b.Build()
	if got := m.Energy([]int8{0}); got != 0 {
		t.Errorf("constant leaked into energy: %v", got)
	}
}
