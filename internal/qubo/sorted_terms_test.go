package qubo

import (
	"math/rand"
	"testing"
)

// randomSortedTerms draws a random strictly-increasing CSR term list over n
// variables with coefficients in [-5, 5).
func randomSortedTerms(rng *rand.Rand, n int) []Term {
	var terms []Term
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.4 {
				c := rng.Float64()*10 - 5
				if c == 0 {
					c = 1
				}
				terms = append(terms, Term{I: i, J: j, Coeff: c})
			}
		}
	}
	return terms
}

func TestNewModelFromSortedTermsMatchesBuilder(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		linear := make([]float64, n)
		for i := range linear {
			linear[i] = rng.Float64()*10 - 5
		}
		terms := randomSortedTerms(rng, n)
		b := NewBuilder(n)
		for i, c := range linear {
			b.AddLinear(i, c)
		}
		for _, tm := range terms {
			b.AddQuadratic(tm.I, tm.J, tm.Coeff)
		}
		want := b.Build()
		got := NewModelFromSortedTerms(append([]float64(nil), linear...), append([]Term(nil), terms...))
		if got.NumVariables() != want.NumVariables() || got.NumTerms() != want.NumTerms() {
			t.Fatalf("shape (%d vars, %d terms), builder (%d, %d)",
				got.NumVariables(), got.NumTerms(), want.NumVariables(), want.NumTerms())
		}
		for i := 0; i < n; i++ {
			if got.Linear(i) != want.Linear(i) {
				t.Fatalf("linear[%d] = %v, builder %v", i, got.Linear(i), want.Linear(i))
			}
			if got.Degree(i) != want.Degree(i) {
				t.Fatalf("degree[%d] = %d, builder %d", i, got.Degree(i), want.Degree(i))
			}
		}
		for i := range want.Terms() {
			if got.Terms()[i] != want.Terms()[i] {
				t.Fatalf("term[%d] = %+v, builder %+v", i, got.Terms()[i], want.Terms()[i])
			}
		}
		// Energies (and hence annealing trajectories) must agree on random
		// assignments.
		x := make([]int8, n)
		for trial := 0; trial < 20; trial++ {
			for i := range x {
				x[i] = int8(rng.Intn(2))
			}
			if ge, we := got.Energy(x), want.Energy(x); ge != we {
				t.Fatalf("energy %v, builder %v on %v", ge, we, x)
			}
		}
	}
}

func TestNewModelFromSortedTermsValidation(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	lin := func() []float64 { return make([]float64, 3) }
	expectPanic("out-of-order terms", func() {
		NewModelFromSortedTerms(lin(), []Term{{I: 0, J: 2}, {I: 0, J: 1}})
	})
	expectPanic("duplicate term", func() {
		NewModelFromSortedTerms(lin(), []Term{{I: 0, J: 1}, {I: 0, J: 1}})
	})
	expectPanic("I == J", func() {
		NewModelFromSortedTerms(lin(), []Term{{I: 1, J: 1}})
	})
	expectPanic("J out of range", func() {
		NewModelFromSortedTerms(lin(), []Term{{I: 0, J: 3}})
	})
	expectPanic("negative I", func() {
		NewModelFromSortedTerms(lin(), []Term{{I: -1, J: 1}})
	})
}

func TestReweightUpdatesAllViews(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 8
	linear := make([]float64, n)
	terms := randomSortedTerms(rng, n)
	for i := range linear {
		linear[i] = rng.Float64()
	}
	m := NewModelFromSortedTerms(append([]float64(nil), linear...), append([]Term(nil), terms...))
	for round := 0; round < 3; round++ {
		newLin := make([]float64, n)
		for i := range newLin {
			newLin[i] = rng.Float64()*8 - 4
		}
		newCoeffs := make([]float64, len(terms))
		for i := range newCoeffs {
			newCoeffs[i] = rng.Float64()*8 - 4
		}
		m.Reweight(newLin, newCoeffs)
		// The reweighted model must be indistinguishable from one built
		// fresh with the new coefficients — including the adjacency the
		// incremental energy updates read.
		fresh := terms
		fresh = append([]Term(nil), fresh...)
		for i := range fresh {
			fresh[i].Coeff = newCoeffs[i]
		}
		want := NewModelFromSortedTerms(append([]float64(nil), newLin...), fresh)
		for i := 0; i < n; i++ {
			if m.Linear(i) != want.Linear(i) {
				t.Fatalf("round %d: linear[%d] = %v, want %v", round, i, m.Linear(i), want.Linear(i))
			}
			if len(m.adj[i]) != len(want.adj[i]) {
				t.Fatalf("round %d: adj[%d] has %d entries, want %d", round, i, len(m.adj[i]), len(want.adj[i]))
			}
			for k := range want.adj[i] {
				if m.adj[i][k] != want.adj[i][k] {
					t.Fatalf("round %d: adj[%d][%d] = %+v, want %+v", round, i, k, m.adj[i][k], want.adj[i][k])
				}
			}
		}
		for i := range want.terms {
			if m.terms[i] != want.terms[i] {
				t.Fatalf("round %d: term[%d] = %+v, want %+v", round, i, m.terms[i], want.terms[i])
			}
		}
		x := make([]int8, n)
		for trial := 0; trial < 10; trial++ {
			for i := range x {
				x[i] = int8(rng.Intn(2))
			}
			if ge, we := m.Energy(x), want.Energy(x); ge != we {
				t.Fatalf("round %d: energy %v, want %v", round, ge, we)
			}
		}
	}
	// Shape mismatches must panic rather than corrupt the model.
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("short linear", func() { m.Reweight(make([]float64, n-1), make([]float64, len(terms))) })
	expectPanic("short coeffs", func() { m.Reweight(make([]float64, n), make([]float64, len(terms)+1)) })
}

func TestReweightIsAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 16
	terms := randomSortedTerms(rng, n)
	m := NewModelFromSortedTerms(make([]float64, n), terms)
	lin := make([]float64, n)
	coeffs := make([]float64, len(terms))
	m.Reweight(lin, coeffs) // first call builds the position index
	if allocs := testing.AllocsPerRun(50, func() { m.Reweight(lin, coeffs) }); allocs > 0 {
		t.Errorf("Reweight allocates %v objects per call, want 0", allocs)
	}
}
