package qubo

// BestTracker records the best (lowest-energy) assignment observed during
// an annealing run without allocating per improvement: the assignment is
// kept in one reused []int8 buffer instead of a full State.Copy (which
// would also duplicate the fields and delta arrays). Improvements happen
// thousands of times per run on hot paths, so this removes the dominant
// allocation of the simulators' inner loops.
type BestTracker struct {
	x      []int8
	energy float64
	seen   bool
}

// Observe records st's assignment when it improves on the best energy seen
// so far (or when nothing has been recorded yet) and reports whether it
// did. The assignment bytes are copied into the tracker's reused buffer;
// st is not retained.
func (t *BestTracker) Observe(st *State) bool {
	if t.seen && st.energy >= t.energy {
		return false
	}
	if t.x == nil {
		t.x = make([]int8, len(st.x))
	}
	copy(t.x, st.x)
	t.energy = st.energy
	t.seen = true
	return true
}

// Seen reports whether any state has been recorded.
func (t *BestTracker) Seen() bool { return t.seen }

// Energy returns the best energy observed. It must not be called before
// the first Observe.
func (t *BestTracker) Energy() float64 { return t.energy }

// Assignment returns an independent copy of the best assignment observed,
// safe to hand out as a Sample after the tracker's buffer is reused.
func (t *BestTracker) Assignment() []int8 {
	out := make([]int8, len(t.x))
	copy(out, t.x)
	return out
}
