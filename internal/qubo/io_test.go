package qubo

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestModelIORoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng, 10, 0.4)
		var buf bytes.Buffer
		if err := WriteModel(&buf, m); err != nil {
			return false
		}
		back, err := ReadModel(&buf)
		if err != nil {
			return false
		}
		if back.NumVariables() != m.NumVariables() || back.NumTerms() != m.NumTerms() {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			x := randomAssignment(rng, 10)
			if math.Abs(back.Energy(x)-m.Energy(x)) > 1e-9*math.Max(1, math.Abs(m.Energy(x))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestReadModelAccumulatesDuplicates(t *testing.T) {
	src := `c a comment
p qubo 0 3 1 2
0 0 2.5
0 0 1.5
0 2 -1
2 0 -1
`
	m, err := ReadModel(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Linear(0); got != 4 {
		t.Errorf("accumulated linear = %v, want 4", got)
	}
	if got := m.NumTerms(); got != 1 {
		t.Fatalf("terms = %d, want 1", got)
	}
	if got := m.Terms()[0].Coeff; got != -2 {
		t.Errorf("accumulated coupler = %v, want −2", got)
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                                 // no program line
		"0 0 1\n",                          // coefficient before program line
		"p qubo 0 zero 0 0\n",              // bad variable count
		"p qubo 0 2 0 0\np qubo 0 2 0 0\n", // duplicate program line
		"p spin 0 2 0 0\n",                 // wrong topology keyword
		"p qubo 0 2 0 0\n0 5 1\n",          // variable out of range
		"p qubo 0 2 0 0\n0 1\n",            // malformed coefficient line
		"p qubo 0 2 0 0\n0 1 xyz\n",        // non-numeric weight
	}
	for _, src := range cases {
		if _, err := ReadModel(strings.NewReader(src)); err == nil {
			t.Errorf("ReadModel accepted %q", src)
		}
	}
}

func TestWriteModelSkipsZeroLinears(t *testing.T) {
	b := NewBuilder(3)
	b.AddLinear(1, 7)
	b.AddQuadratic(0, 2, -3)
	var buf bytes.Buffer
	if err := WriteModel(&buf, b.Build()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "0 0 ") {
		t.Errorf("zero linear emitted:\n%s", out)
	}
	if !strings.Contains(out, "p qubo 0 3 1 1") {
		t.Errorf("program line wrong:\n%s", out)
	}
}
