package qubo

import (
	"math"
	"math/rand"
	"testing"
)

// TestDeltaArrayMatchesBruteForce drives a state through random flips and
// resets, checking after each mutation that the maintained delta array
// equals the energy difference a full re-evaluation reports.
func TestDeltaArrayMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		m := randomModel(rng, 24, 0.3)
		st := NewRandomState(m, rng)
		for mut := 0; mut < 40; mut++ {
			if rng.Intn(8) == 0 {
				st.Reset(randomAssignment(rng, m.NumVariables()))
			} else {
				st.Flip(rng.Intn(m.NumVariables()))
			}
			x := st.Assignment()
			base := m.Energy(x)
			deltas := st.Deltas()
			for i := 0; i < m.NumVariables(); i++ {
				x[i] ^= 1
				want := m.Energy(x) - base
				x[i] ^= 1
				if math.Abs(deltas[i]-want) > 1e-9 {
					t.Fatalf("trial %d mut %d: delta[%d] = %v, brute force %v", trial, mut, i, deltas[i], want)
				}
				if got := st.DeltaEnergy(i); got != deltas[i] {
					t.Fatalf("DeltaEnergy(%d) = %v, Deltas()[%d] = %v", i, got, i, deltas[i])
				}
			}
		}
	}
}

// TestCountBelowAndPickKthBelow checks the scan pair against the naive
// per-variable loop they replace.
func TestCountBelowAndPickKthBelow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomModel(rng, 32, 0.4)
	st := NewRandomState(m, rng)
	for trial := 0; trial < 50; trial++ {
		st.Flip(rng.Intn(m.NumVariables()))
		theta := rng.NormFloat64() * 20
		want := 0
		for v := 0; v < m.NumVariables(); v++ {
			if st.DeltaEnergy(v) < theta {
				want++
			}
		}
		if got := st.CountBelow(theta); got != want {
			t.Fatalf("CountBelow(%v) = %d, want %d", theta, got, want)
		}
		seen := 0
		for v := 0; v < m.NumVariables(); v++ {
			if st.DeltaEnergy(v) < theta {
				if got := st.PickKthBelow(theta, seen); got != v {
					t.Fatalf("PickKthBelow(%v, %d) = %d, want %d", theta, seen, got, v)
				}
				seen++
			}
		}
		if got := st.PickKthBelow(theta, want); got != -1 {
			t.Errorf("PickKthBelow past the end = %d, want -1", got)
		}
	}
}

func TestCopyCarriesDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomModel(rng, 16, 0.5)
	st := NewRandomState(m, rng)
	c := st.Copy()
	// Mutating the copy must not leak into the original's delta array.
	c.Flip(0)
	for i := 0; i < m.NumVariables(); i++ {
		if st.DeltaEnergy(i) != st.Deltas()[i] {
			t.Fatalf("original delta desynced at %d", i)
		}
	}
	c.Flip(0) // undo
	for i := 0; i < m.NumVariables(); i++ {
		if math.Abs(c.DeltaEnergy(i)-st.DeltaEnergy(i)) > 1e-9 {
			t.Fatalf("copy delta[%d] = %v, original %v", i, c.DeltaEnergy(i), st.DeltaEnergy(i))
		}
	}
}

func TestBestTracker(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomModel(rng, 12, 0.5)
	st := NewRandomState(m, rng)
	var tr BestTracker
	if tr.Seen() {
		t.Fatal("fresh tracker claims an observation")
	}
	if !tr.Observe(st) {
		t.Fatal("first Observe must record")
	}
	wantEnergy := st.Energy()
	wantX := st.Assignment()
	// Walk the state around; the tracker must always hold the minimum seen.
	for i := 0; i < 200; i++ {
		st.Flip(rng.Intn(m.NumVariables()))
		improved := st.Energy() < wantEnergy
		if got := tr.Observe(st); got != improved {
			t.Fatalf("Observe returned %v at energy %v (best %v)", got, st.Energy(), wantEnergy)
		}
		if improved {
			wantEnergy = st.Energy()
			wantX = st.Assignment()
		}
	}
	if tr.Energy() != wantEnergy {
		t.Errorf("tracker energy %v, want %v", tr.Energy(), wantEnergy)
	}
	got := tr.Assignment()
	for i := range wantX {
		if got[i] != wantX[i] {
			t.Fatalf("tracker assignment differs at %d", i)
		}
	}
	// The returned assignment must be a copy, not the reused buffer.
	got[0] ^= 1
	if again := tr.Assignment(); again[0] == got[0] {
		t.Error("Assignment returned the tracker's internal buffer")
	}
	// Incremental energies accumulate float rounding over many flips, so
	// compare against exact re-evaluation with a tolerance.
	if math.Abs(m.Energy(tr.Assignment())-tr.Energy()) > 1e-6 {
		t.Error("tracked energy does not match tracked assignment")
	}
}

// TestIsingToQUBOBitIdenticalAcrossBuilds pins the sorted coupling
// emission: converting the same Ising model repeatedly must produce
// bit-identical QUBO coefficients. Iterating the coupling map directly
// accumulates the folded −2J linear contributions in a different order —
// and rounds differently — on every conversion, which downstream flips
// ties between degenerate optima (the partitioning pipeline compares the
// two orientations of a bisection, which are exactly such a tie).
func TestIsingToQUBOBitIdenticalAcrossBuilds(t *testing.T) {
	const n = 40
	build := func() *Model {
		is := NewIsing(n)
		r := rand.New(rand.NewSource(99))
		for i := 0; i < n; i++ {
			is.AddField(i, r.NormFloat64())
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.5 {
					is.AddCoupling(i, j, r.NormFloat64()/3)
				}
			}
		}
		return is.ToQUBO()
	}
	ref := build()
	for trial := 0; trial < 20; trial++ {
		m := build()
		for i := 0; i < n; i++ {
			if math.Float64bits(m.Linear(i)) != math.Float64bits(ref.Linear(i)) {
				t.Fatalf("trial %d: linear[%d] = %v differs from reference %v", trial, i, m.Linear(i), ref.Linear(i))
			}
		}
		mt, rt := m.Terms(), ref.Terms()
		if len(mt) != len(rt) {
			t.Fatalf("trial %d: %d terms vs %d", trial, len(mt), len(rt))
		}
		for k := range mt {
			if mt[k] != rt[k] {
				t.Fatalf("trial %d: term %d differs: %+v vs %+v", trial, k, mt[k], rt[k])
			}
		}
	}
}
