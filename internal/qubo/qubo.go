// Package qubo implements the quadratic unconstrained binary optimisation
// (QUBO) formalism required by all quantum(-inspired) annealing devices
// (Sec. 2.1 of the paper), together with the equivalent Ising spin model.
//
// A QUBO instance is the multivariate polynomial
//
//	f(x) = Σ_i c_ii·x_i + Σ_{i<j} c_ij·x_i·x_j,  x_i ∈ {0,1},
//
// whose minimum-energy configurations encode optimal solutions of the
// original problem. The package provides sparse models, exact and
// incremental energy evaluation (the O(degree) local-field updates that
// hardware annealers perform in parallel), and spin/binary conversions.
package qubo

import (
	"fmt"
	"math"
	"sort"
)

// Term is one quadratic coefficient c_ij between variables I < J.
type Term struct {
	I, J  int
	Coeff float64
}

// Model is a sparse QUBO instance. Construct it with a Builder (which
// accumulates arbitrary additions through a map) or, when the caller already
// knows the sorted term structure, with NewModelFromSortedTerms. Models are
// structurally immutable; Reweight overwrites coefficients in place for
// prepared encodings that re-materialise the same structure with new
// weights.
type Model struct {
	n      int
	linear []float64
	// terms holds all quadratic terms with I < J, sorted lexicographically.
	terms []Term
	// adj[i] lists (neighbour, coefficient) pairs for variable i, covering
	// every quadratic term incident to i.
	adj [][]neighbour
	// adjPos[2t] and adjPos[2t+1] locate term t inside adj[terms[t].I] and
	// adj[terms[t].J]; built lazily by Reweight so coefficient updates need
	// no per-call scratch.
	adjPos []int32
}

type neighbour struct {
	j     int
	coeff float64
}

// Builder accumulates QUBO coefficients. Repeated additions to the same
// (pair of) variable(s) sum up, so encodings can be composed additively
// (e.g. H = ω_A·H_A + H_B).
type Builder struct {
	n      int
	linear []float64
	quad   map[[2]int]float64
}

// NewBuilder returns a builder for a QUBO over n binary variables.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("qubo: negative variable count")
	}
	return &Builder{n: n, linear: make([]float64, n), quad: make(map[[2]int]float64)}
}

// AddLinear adds c to the linear coefficient c_ii of variable i.
func (b *Builder) AddLinear(i int, c float64) {
	b.check(i)
	b.linear[i] += c
}

// AddQuadratic adds c to the quadratic coefficient c_ij of the distinct
// variables i and j (order-insensitive). Adding a quadratic term for i == j
// folds into the linear coefficient, since x·x = x for binary x.
func (b *Builder) AddQuadratic(i, j int, c float64) {
	b.check(i)
	b.check(j)
	if i == j {
		b.linear[i] += c
		return
	}
	if i > j {
		i, j = j, i
	}
	b.quad[[2]int{i, j}] += c
}

// AddConstant is accepted for encoding completeness but ignored: constants
// shift every configuration's energy equally and do not affect minima.
func (b *Builder) AddConstant(float64) {}

func (b *Builder) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("qubo: variable %d out of range [0,%d)", i, b.n))
	}
}

// Build finalises the accumulated coefficients into an immutable Model,
// dropping exact-zero quadratic terms.
func (b *Builder) Build() *Model {
	m := &Model{n: b.n, linear: make([]float64, b.n), adj: make([][]neighbour, b.n)}
	copy(m.linear, b.linear)
	m.terms = make([]Term, 0, len(b.quad))
	for k, c := range b.quad {
		if c == 0 {
			continue
		}
		m.terms = append(m.terms, Term{I: k[0], J: k[1], Coeff: c})
	}
	sort.Slice(m.terms, func(i, j int) bool {
		if m.terms[i].I != m.terms[j].I {
			return m.terms[i].I < m.terms[j].I
		}
		return m.terms[i].J < m.terms[j].J
	})
	for _, t := range m.terms {
		m.adj[t.I] = append(m.adj[t.I], neighbour{j: t.J, coeff: t.Coeff})
		m.adj[t.J] = append(m.adj[t.J], neighbour{j: t.I, coeff: t.Coeff})
	}
	return m
}

// NewModelFromSortedTerms builds a Model directly from a linear coefficient
// vector and a quadratic term list that is already in CSR order: every term
// has I < J and the (I, J) pairs are strictly lexicographically increasing.
// It is the map- and sort-free construction path used by prepared encodings
// whose term structure is known up front; the result is identical to feeding
// the same coefficients through a Builder (Build drops exact-zero quadratic
// terms, so callers must not pass them). The model takes ownership of both
// slices.
func NewModelFromSortedTerms(linear []float64, terms []Term) *Model {
	n := len(linear)
	degree := make([]int32, n)
	prevI, prevJ := -1, -1
	for _, t := range terms {
		if t.I < 0 || t.J >= n || t.I >= t.J {
			panic(fmt.Sprintf("qubo: term (%d,%d) invalid for %d variables", t.I, t.J, n))
		}
		if t.I < prevI || (t.I == prevI && t.J <= prevJ) {
			panic(fmt.Sprintf("qubo: term (%d,%d) out of CSR order after (%d,%d)", t.I, t.J, prevI, prevJ))
		}
		prevI, prevJ = t.I, t.J
		degree[t.I]++
		degree[t.J]++
	}
	m := &Model{n: n, linear: linear, terms: terms, adj: make([][]neighbour, n)}
	for i, d := range degree {
		if d > 0 {
			m.adj[i] = make([]neighbour, 0, d)
		}
	}
	for _, t := range terms {
		m.adj[t.I] = append(m.adj[t.I], neighbour{j: t.J, coeff: t.Coeff})
		m.adj[t.J] = append(m.adj[t.J], neighbour{j: t.I, coeff: t.Coeff})
	}
	return m
}

// Reweight overwrites every coefficient of the model in place, keeping the
// quadratic structure (variable count, term pairs, adjacency) fixed: linear
// must hold NumVariables values and coeffs one value per quadratic term,
// aligned with Terms(). Unlike Builder.Build, zero coefficients are kept —
// the structure is the contract. The caller must ensure no solver is
// concurrently reading the model.
func (m *Model) Reweight(linear []float64, coeffs []float64) {
	if len(linear) != m.n || len(coeffs) != len(m.terms) {
		panic(fmt.Sprintf("qubo: Reweight with %d linears / %d coeffs, model has %d / %d", len(linear), len(coeffs), m.n, len(m.terms)))
	}
	copy(m.linear, linear)
	if m.adjPos == nil {
		m.buildAdjPos()
	}
	for t := range m.terms {
		c := coeffs[t]
		m.terms[t].Coeff = c
		m.adj[m.terms[t].I][m.adjPos[2*t]].coeff = c
		m.adj[m.terms[t].J][m.adjPos[2*t+1]].coeff = c
	}
}

// buildAdjPos records, once, where each term sits inside its endpoints'
// adjacency lists. Adjacency entries are appended in term order, so a single
// cursor pass reproduces the positions.
func (m *Model) buildAdjPos() {
	m.adjPos = make([]int32, 2*len(m.terms))
	cursor := make([]int32, m.n)
	for t, term := range m.terms {
		m.adjPos[2*t] = cursor[term.I]
		cursor[term.I]++
		m.adjPos[2*t+1] = cursor[term.J]
		cursor[term.J]++
	}
}

// NumVariables returns the number of binary variables.
func (m *Model) NumVariables() int { return m.n }

// NumTerms returns the number of non-zero quadratic terms.
func (m *Model) NumTerms() int { return len(m.terms) }

// Linear returns the linear coefficient of variable i.
func (m *Model) Linear(i int) float64 { return m.linear[i] }

// Terms returns all quadratic terms, sorted with I < J. The slice is owned
// by the model and must not be modified.
func (m *Model) Terms() []Term { return m.terms }

// Degree returns the number of quadratic terms incident to variable i.
func (m *Model) Degree(i int) int { return len(m.adj[i]) }

// Energy evaluates f(x) for the given assignment (len(x) must equal
// NumVariables; entries are 0 or 1).
func (m *Model) Energy(x []int8) float64 {
	if len(x) != m.n {
		panic(fmt.Sprintf("qubo: state length %d, want %d", len(x), m.n))
	}
	var e float64
	for i, c := range m.linear {
		if x[i] != 0 {
			e += c
		}
	}
	for _, t := range m.terms {
		if x[t.I] != 0 && x[t.J] != 0 {
			e += t.Coeff
		}
	}
	return e
}

// MaxAbsCoefficient returns the largest absolute linear or quadratic
// coefficient; solvers use it to scale initial temperatures.
func (m *Model) MaxAbsCoefficient() float64 {
	var mx float64
	for _, c := range m.linear {
		mx = math.Max(mx, math.Abs(c))
	}
	for _, t := range m.terms {
		mx = math.Max(mx, math.Abs(t.Coeff))
	}
	return mx
}
