package sa

import (
	"math"
	"testing"

	"incranneal/internal/qubo"
)

func TestGeometricBetaEndpoints(t *testing.T) {
	hot, cold := 0.1, 10.0
	if got := geometricBeta(hot, cold, 0, 100); math.Abs(got-hot) > 1e-12 {
		t.Errorf("first sweep beta = %v, want %v", got, hot)
	}
	if got := geometricBeta(hot, cold, 99, 100); math.Abs(got-cold) > 1e-9 {
		t.Errorf("last sweep beta = %v, want %v", got, cold)
	}
	// Monotone non-decreasing across the schedule.
	prev := 0.0
	for s := 0; s < 100; s++ {
		b := geometricBeta(hot, cold, s, 100)
		if b < prev {
			t.Fatalf("beta decreased at sweep %d: %v < %v", s, b, prev)
		}
		prev = b
	}
	if got := geometricBeta(hot, cold, 0, 1); got != cold {
		t.Errorf("single-sweep schedule beta = %v, want cold %v", got, cold)
	}
}

func TestBetaRangeOrdering(t *testing.T) {
	b := qubo.NewBuilder(4)
	b.AddLinear(0, 5)
	b.AddQuadratic(1, 2, -0.25)
	b.AddQuadratic(2, 3, 12)
	m := b.Build()
	s := &Solver{}
	hot, cold := s.betaRange(m)
	if hot <= 0 || cold <= hot {
		t.Errorf("betaRange = (%v, %v), want 0 < hot < cold", hot, cold)
	}
	// Hot beta must accept the worst move with probability ≥ ~1/2:
	// worst |ΔE| is bounded by |linear| + incident |couplings| = 12.25.
	if p := math.Exp(-hot * 12.25); p < 0.45 {
		t.Errorf("worst-move acceptance at hot = %v, want ≈ 0.5", p)
	}
}

func TestBetaRangeDegenerateModel(t *testing.T) {
	// All-zero coefficients must still produce a usable range.
	m := qubo.NewBuilder(3).Build()
	s := &Solver{}
	hot, cold := s.betaRange(m)
	if !(hot > 0 && cold > hot) {
		t.Errorf("degenerate betaRange = (%v, %v)", hot, cold)
	}
}
