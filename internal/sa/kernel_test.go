package sa

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/solver"
)

// TestSolveDeterministicAcrossParallelism pins the worker-pool contract:
// per-run RNG streams derive from the request seed before dispatch, so the
// sample set is bit-identical for every Parallelism setting.
func TestSolveDeterministicAcrossParallelism(t *testing.T) {
	p := mqo.PaperExample()
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	s := &Solver{}
	req := solver.Request{Model: enc.Model, Runs: 8, Sweeps: 200, Seed: 42}
	var ref *solver.Result
	for _, par := range []int{-1, 1, 4, runtime.GOMAXPROCS(0)} {
		r := req
		r.Parallelism = par
		res, err := s.Solve(context.Background(), r)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res.Samples) != len(ref.Samples) || res.Sweeps != ref.Sweeps {
			t.Fatalf("parallelism %d: shape (%d samples, %d sweeps) differs from (%d, %d)",
				par, len(res.Samples), res.Sweeps, len(ref.Samples), ref.Sweeps)
		}
		for i := range res.Samples {
			if res.Samples[i].Energy != ref.Samples[i].Energy ||
				!reflect.DeepEqual(res.Samples[i].Assignment, ref.Samples[i].Assignment) {
				t.Fatalf("parallelism %d: sample %d differs", par, i)
			}
		}
	}
}

// BenchmarkKernelSASweep measures one Metropolis sweep over all variables
// (shuffle + n acceptance tests) via a fixed-budget solve, reporting
// ns/sweep alongside the per-solve figure.
func BenchmarkKernelSASweep(b *testing.B) {
	p := mqo.PaperExample()
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		b.Fatal(err)
	}
	const sweeps = 64
	s := &Solver{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(context.Background(), solver.Request{
			Model: enc.Model, Runs: 1, Sweeps: sweeps, Seed: int64(i), Parallelism: -1,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sweeps), "ns/sweep")
}
