package sa

import (
	"context"
	"math"
	"testing"
	"time"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/qubo"
	"incranneal/internal/solver"
)

func TestSolveEmptyModelFails(t *testing.T) {
	s := &Solver{}
	if _, err := s.Solve(context.Background(), solver.Request{}); err == nil {
		t.Error("Solve accepted nil model")
	}
}

func TestSolveTrivialModel(t *testing.T) {
	// f = −x0 + x1: minimum at x = (1, 0) with energy −1.
	b := qubo.NewBuilder(2)
	b.AddLinear(0, -1)
	b.AddLinear(1, 1)
	s := &Solver{}
	res, err := s.Solve(context.Background(), solver.Request{Model: b.Build(), Runs: 2, Sweeps: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	best, ok := res.Best()
	if !ok {
		t.Fatal("no samples")
	}
	if best.Energy != -1 || best.Assignment[0] != 1 || best.Assignment[1] != 0 {
		t.Errorf("best = %+v, want energy −1 at (1,0)", best)
	}
	if len(res.Samples) != 2 {
		t.Errorf("samples = %d, want 2", len(res.Samples))
	}
}

func TestSolvesPaperExampleToOptimum(t *testing.T) {
	p := mqo.PaperExample()
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	s := &Solver{}
	res, err := s.Solve(context.Background(), solver.Request{Model: enc.Model, Runs: 8, Sweeps: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := res.Best()
	sol, err := enc.Decode(b.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Cost(p); got != 25 {
		t.Errorf("SA cost on paper example = %v, want 25", got)
	}
}

func TestSampleEnergiesSorted(t *testing.T) {
	p := mqo.PaperExample()
	enc, _ := encoding.EncodeMQO(p)
	s := &Solver{}
	res, err := s.Solve(context.Background(), solver.Request{Model: enc.Model, Runs: 6, Sweeps: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Samples); i++ {
		if res.Samples[i].Energy < res.Samples[i-1].Energy {
			t.Fatalf("samples not sorted: %v then %v", res.Samples[i-1].Energy, res.Samples[i].Energy)
		}
	}
}

func TestSampleEnergyMatchesAssignment(t *testing.T) {
	p := mqo.PaperExample()
	enc, _ := encoding.EncodeMQO(p)
	s := &Solver{}
	res, err := s.Solve(context.Background(), solver.Request{Model: enc.Model, Runs: 4, Sweeps: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range res.Samples {
		if got := enc.Model.Energy(smp.Assignment); math.Abs(got-smp.Energy) > 1e-9 {
			t.Errorf("reported energy %v, recomputed %v", smp.Energy, got)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	p := mqo.PaperExample()
	enc, _ := encoding.EncodeMQO(p)
	s := &Solver{}
	req := solver.Request{Model: enc.Model, Runs: 3, Sweeps: 40, Seed: 42}
	r1, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Samples {
		if r1.Samples[i].Energy != r2.Samples[i].Energy {
			t.Fatalf("non-deterministic energies for fixed seed: %v vs %v", r1.Samples[i].Energy, r2.Samples[i].Energy)
		}
	}
}

func TestRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := mqo.PaperExample()
	enc, _ := encoding.EncodeMQO(p)
	s := &Solver{}
	res, err := s.Solve(ctx, solver.Request{Model: enc.Model, Runs: 4, Sweeps: 100000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Cancelled immediately: at most one sample's worth of setup, no
	// meaningful sweeps.
	if res.Sweeps != 0 {
		t.Errorf("performed %d sweeps despite cancelled context", res.Sweeps)
	}
}

func TestTimeBudgetBoundsRuntime(t *testing.T) {
	p := mqo.PaperExample()
	enc, _ := encoding.EncodeMQO(p)
	s := &Solver{}
	start := time.Now()
	_, err := s.Solve(context.Background(), solver.Request{
		Model: enc.Model, Runs: 1000, Sweeps: 100000, Seed: 1,
		TimeBudget: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("solve ran %v despite 50ms budget", elapsed)
	}
}

func TestBetaRangeOverride(t *testing.T) {
	b := qubo.NewBuilder(1)
	b.AddLinear(0, -1)
	s := &Solver{BetaHot: 0.5, BetaCold: 5}
	hot, cold := s.betaRange(b.Build())
	if hot != 0.5 || cold != 5 {
		t.Errorf("betaRange override = %v, %v", hot, cold)
	}
}
