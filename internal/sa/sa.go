// Package sa implements standard simulated annealing for QUBO problems on
// conventional hardware — the "SA (Default)" baseline of the paper's
// evaluation, modelled on the dwave-neal sampler it uses: single-variable
// Metropolis updates with a geometric inverse-temperature schedule derived
// from the problem's coefficient magnitudes, and independent restarts.
package sa

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"incranneal/internal/obs"
	"incranneal/internal/qubo"
	"incranneal/internal/solver"
)

// Solver is a classical simulated annealer. The zero value uses the paper's
// defaults (16 runs of 1,000 sweeps).
type Solver struct {
	// DefaultRuns is used when a request leaves Runs zero. Defaults to 16.
	DefaultRuns int
	// DefaultSweeps is used when a request leaves Sweeps zero. Defaults to
	// 1,000 (the dwave-neal default the paper uses).
	DefaultSweeps int
	// BetaHot and BetaCold override the automatically derived inverse
	// temperature range when both are positive.
	BetaHot, BetaCold float64
}

// Name implements solver.Solver.
func (s *Solver) Name() string { return "sa" }

// Capacity implements solver.Solver; classical SA has no device capacity.
func (s *Solver) Capacity() int { return 0 }

func (s *Solver) runs(req solver.Request) int {
	if req.Runs > 0 {
		return req.Runs
	}
	if s.DefaultRuns > 0 {
		return s.DefaultRuns
	}
	return 16
}

func (s *Solver) sweeps(req solver.Request) int {
	if req.Sweeps > 0 {
		return req.Sweeps
	}
	if s.DefaultSweeps > 0 {
		return s.DefaultSweeps
	}
	return 1000
}

// betaRange derives a geometric inverse-temperature schedule range from the
// model, following the dwave-neal heuristic: the hot temperature accepts
// the worst single-flip move with probability ~1/2, the cold temperature
// accepts the smallest non-zero move with probability ~1/100.
func (s *Solver) betaRange(m *qubo.Model) (hot, cold float64) {
	if s.BetaHot > 0 && s.BetaCold > 0 {
		return s.BetaHot, s.BetaCold
	}
	maxDelta, minDelta := 0.0, math.Inf(1)
	for i := 0; i < m.NumVariables(); i++ {
		d := math.Abs(m.Linear(i))
		if d > 0 && d < minDelta {
			minDelta = d
		}
		maxDelta = math.Max(maxDelta, d)
	}
	var incident = make([]float64, m.NumVariables())
	for _, t := range m.Terms() {
		a := math.Abs(t.Coeff)
		incident[t.I] += a
		incident[t.J] += a
		if a > 0 && a < minDelta {
			minDelta = a
		}
	}
	for i, inc := range incident {
		maxDelta = math.Max(maxDelta, math.Abs(m.Linear(i))+inc)
	}
	if maxDelta == 0 {
		maxDelta = 1
	}
	if math.IsInf(minDelta, 1) {
		minDelta = 1
	}
	hot = math.Ln2 / maxDelta
	cold = math.Log(100) / minDelta
	if cold <= hot {
		cold = hot * 100
	}
	return hot, cold
}

// Solve implements solver.Solver. Independent restarts execute on a
// bounded worker pool (see Request.Parallelism); per-run RNGs derive from
// the request seed before dispatch, so Samples are identical for every
// worker count. The inverse-temperature schedule is computed once per
// Solve and shared read-only by all runs.
func (s *Solver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	m := req.Model
	if m == nil || m.NumVariables() == 0 {
		return nil, fmt.Errorf("sa: empty model")
	}
	start := time.Now()
	deadline := time.Time{}
	if req.TimeBudget > 0 {
		deadline = start.Add(req.TimeBudget)
	}
	runs, sweeps := s.runs(req), s.sweeps(req)
	hot, cold := s.betaRange(m)
	betas := make([]float64, sweeps)
	for sweep := range betas {
		betas[sweep] = geometricBeta(hot, cold, sweep, sweeps)
	}
	sink := obs.FromContext(ctx)
	label := ""
	if sink.Enabled() {
		label = obs.LabelFromContext(ctx)
	}
	seeds := solver.RunSeeds(req.Seed, runs)
	samples := make([]solver.Sample, runs)
	sweepCounts := make([]int, runs)
	done := make([]bool, runs)
	body := func(run int) {
		if run > 0 && (solver.Interrupted(ctx) || (!deadline.IsZero() && time.Now().After(deadline))) {
			return
		}
		rt := sink.StartRun("sa", label, run)
		runRng := rand.New(rand.NewSource(seeds[run]))
		st := solver.InitialState(req, run, runs, runRng)
		var best qubo.BestTracker
		best.Observe(st)
		rt.Observe(0, best.Energy())
		order := make([]int, m.NumVariables())
		for i := range order {
			order[i] = i
		}
		performed := 0
		var flips, proposals int64
		for sweep := 0; sweep < sweeps; sweep++ {
			if solver.Interrupted(ctx) || (!deadline.IsZero() && time.Now().After(deadline)) {
				break
			}
			beta := betas[sweep]
			runRng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			for _, v := range order {
				delta := st.DeltaEnergy(v)
				if delta <= 0 || runRng.Float64() < math.Exp(-beta*delta) {
					st.Flip(v)
					flips++
				}
			}
			proposals += int64(len(order))
			if best.Observe(st) {
				rt.Observe(performed+1, best.Energy())
			}
			performed++
		}
		rt.Finish(performed, flips, proposals)
		samples[run] = solver.Sample{Assignment: best.Assignment(), Energy: best.Energy()}
		sweepCounts[run], done[run] = performed, true
	}
	workers := solver.Workers(req.Parallelism)
	if sink.Enabled() {
		ps := solver.ForEachRunStats(runs, workers, body)
		sink.Pool("sa", label, ps.Runs, ps.Workers, ps.Busy, ps.Wall)
	} else {
		solver.ForEachRun(runs, workers, body)
	}
	res := &solver.Result{}
	for run := range samples {
		if done[run] {
			res.Samples = append(res.Samples, samples[run])
			res.Sweeps += sweepCounts[run]
		}
	}
	res.SortSamples()
	res.Elapsed = time.Since(start)
	return res, nil
}

// geometricBeta interpolates the inverse temperature geometrically from hot
// to cold across the sweep budget.
func geometricBeta(hot, cold float64, sweep, sweeps int) float64 {
	if sweeps <= 1 {
		return cold
	}
	frac := float64(sweep) / float64(sweeps-1)
	return hot * math.Pow(cold/hot, frac)
}
