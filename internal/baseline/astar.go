package baseline

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"incranneal/internal/mqo"
)

// AStar solves MQO optimally with best-first search over per-query plan
// assignments, in the tradition of Sellis (1988) and Cosar et al. (1993):
// the paper cites A*-style methods as the way to obtain optimal solutions
// for *small* problems, with optimisation times exploding as dimensions
// grow — which is what motivates the annealing approach. Queries are
// assigned in index order; the admissible heuristic adds the cheapest
// remaining plan per query and assumes every still-obtainable saving is
// realised, so the first expanded goal is optimal.
//
// Options.MaxIterations bounds node expansions (default 1,000,000);
// exhausting the budget returns an error rather than a sub-optimal result,
// since the method's only use is exact solving.
func AStar(ctx context.Context, p *mqo.Problem, opt Options) (*Result, error) {
	start := time.Now()
	deadline := deadlineFor(opt, start)
	budget := opt.MaxIterations
	if budget <= 0 {
		budget = 1000000
	}
	n := p.NumQueries()
	// Heuristic tables, as in Exact: cheapest remaining plans and an upper
	// bound on still-obtainable savings per depth.
	minPlanCost := make([]float64, n)
	for q := 0; q < n; q++ {
		minPlanCost[q] = p.Cost(p.Plans(q)[0])
		for _, pl := range p.Plans(q) {
			if c := p.Cost(pl); c < minPlanCost[q] {
				minPlanCost[q] = c
			}
		}
	}
	suffixMin := make([]float64, n+1)
	for q := n - 1; q >= 0; q-- {
		suffixMin[q] = suffixMin[q+1] + minPlanCost[q]
	}
	savingsTail := make([]float64, n+1)
	for _, s := range p.Savings() {
		later := p.QueryOf(s.P2)
		if q1 := p.QueryOf(s.P1); q1 > later {
			later = q1
		}
		savingsTail[later] += s.Value
	}
	for q := n - 1; q >= 0; q-- {
		savingsTail[q] += savingsTail[q+1]
	}
	h := func(depth int) float64 { return suffixMin[depth] - savingsTail[depth] }

	open := &nodeHeap{}
	heap.Init(open)
	heap.Push(open, &searchNode{f: h(0)})
	expansions := 0
	for open.Len() > 0 {
		if expansions >= budget {
			return nil, fmt.Errorf("baseline: A* exceeded %d expansions (the scaling wall the paper describes)", budget)
		}
		if expired(ctx, deadline) {
			return nil, fmt.Errorf("baseline: A* interrupted after %d expansions", expansions)
		}
		node := heap.Pop(open).(*searchNode)
		if node.depth == n {
			sol := mqo.NewSolution(p)
			for nd := node; nd.parent != nil; nd = nd.parent {
				sol.Selected[nd.depth-1] = nd.plan
			}
			return &Result{Solution: sol, Cost: node.g, Iterations: expansions, Elapsed: time.Since(start)}, nil
		}
		expansions++
		q := node.depth
		for _, pl := range p.Plans(q) {
			delta := p.Cost(pl)
			for _, s := range p.SavingsOf(pl) {
				other := s.P1
				if other == pl {
					other = s.P2
				}
				if node.selects(other) {
					delta -= s.Value
				}
			}
			g := node.g + delta
			heap.Push(open, &searchNode{
				parent: node,
				plan:   pl,
				depth:  q + 1,
				g:      g,
				f:      g + h(q+1),
			})
		}
	}
	return nil, fmt.Errorf("baseline: A* exhausted the search space without a goal (invalid problem)")
}

// searchNode is one partial assignment on the A* frontier; the parent
// chain stores the selected plans, avoiding per-node copies.
type searchNode struct {
	parent *searchNode
	plan   int
	depth  int
	g, f   float64
}

// selects reports whether the node's assignment chain contains plan.
func (nd *searchNode) selects(plan int) bool {
	for cur := nd; cur.parent != nil; cur = cur.parent {
		if cur.plan == plan {
			return true
		}
	}
	return false
}

type nodeHeap []*searchNode

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].f < h[j].f }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*searchNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
