package baseline

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"incranneal/internal/mqo"
)

func TestExactSolvesPaperExample(t *testing.T) {
	p := mqo.PaperExample()
	res, err := Exact(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 25 {
		t.Errorf("exact cost = %v, want 25", res.Cost)
	}
	want := []int{1, 3, 4, 6}
	for q, pl := range res.Solution.Selected {
		if pl != want[q] {
			t.Errorf("exact selection = %v, want %v", res.Solution.Selected, want)
			break
		}
	}
}

func TestExactRejectsHugeInstances(t *testing.T) {
	costs := make([][]float64, MaxExactQueries+1)
	for i := range costs {
		costs[i] = []float64{1}
	}
	p, err := mqo.NewProblem(costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exact(context.Background(), p, Options{}); err == nil {
		t.Error("Exact accepted oversized instance")
	}
}

func TestExactMatchesBruteForceProperty(t *testing.T) {
	// Property: branch-and-bound equals full enumeration on tiny random
	// instances.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 5, 3, 0.4)
		res, err := Exact(context.Background(), p, Options{})
		if err != nil {
			return false
		}
		best := bruteForce(p)
		diff := res.Cost - best
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHillClimbReachesPaperOptimum(t *testing.T) {
	p := mqo.PaperExample()
	res, err := HillClimb(context.Background(), p, Options{MaxIterations: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 25 {
		t.Errorf("hill climbing cost = %v, want 25 on the tiny example", res.Cost)
	}
	if err := res.Solution.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestHillClimbNeverWorseThanGreedyPlusLocalOpt(t *testing.T) {
	// Property: the result is a local optimum — no single swap improves.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 8, 3, 0.3)
		res, err := HillClimb(context.Background(), p, Options{MaxIterations: 3000, Seed: seed})
		if err != nil {
			return false
		}
		e := newEvaluator(p, res.Solution)
		for q := 0; q < p.NumQueries(); q++ {
			for _, pl := range p.Plans(q) {
				if pl != e.selected[q] && e.swapDelta(q, pl) < -1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGeneticReachesPaperOptimum(t *testing.T) {
	p := mqo.PaperExample()
	res, err := Genetic(context.Background(), p, GeneticOptions{
		Options: Options{MaxIterations: 100, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 25 {
		t.Errorf("genetic cost = %v, want 25 on the tiny example", res.Cost)
	}
}

func TestGeneticProducesValidSolutionsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 10, 4, 0.2)
		res, err := Genetic(context.Background(), p, GeneticOptions{
			Options:        Options{MaxIterations: 20, Seed: seed},
			PopulationSize: 20,
		})
		if err != nil {
			return false
		}
		return res.Solution.Validate(p) == nil && res.Solution.Complete()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestGeneticImprovesOverGenerations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, 15, 5, 0.3)
	short, err := Genetic(context.Background(), p, GeneticOptions{Options: Options{MaxIterations: 1, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Genetic(context.Background(), p, GeneticOptions{Options: Options{MaxIterations: 200, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if long.Cost > short.Cost {
		t.Errorf("200 generations (%v) worse than 1 generation (%v)", long.Cost, short.Cost)
	}
}

func TestTimeBudgetStopsSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomProblem(rng, 20, 5, 0.3)
	start := time.Now()
	_, err := HillClimb(context.Background(), p, Options{
		MaxIterations: 1 << 30,
		TimeBudget:    30 * time.Millisecond,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("hill climbing ignored time budget")
	}
}

func TestEvaluatorSwapDeltaMatchesRecomputeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 6, 3, 0.4)
		sol := mqo.GreedySolution(p)
		e := newEvaluator(p, sol)
		for trial := 0; trial < 30; trial++ {
			q := rng.Intn(p.NumQueries())
			plans := p.Plans(q)
			pl := plans[rng.Intn(len(plans))]
			delta := e.swapDelta(q, pl)
			before := e.cost
			e.swap(q, pl)
			recomputed := e.solution().Cost(p)
			if d := e.cost - recomputed; d > 1e-9 || d < -1e-9 {
				return false
			}
			if d := (before + delta) - recomputed; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// bruteForce enumerates all solutions of a small problem.
func bruteForce(p *mqo.Problem) float64 {
	best := 0.0
	first := true
	sol := mqo.NewSolution(p)
	var rec func(q int)
	rec = func(q int) {
		if q == p.NumQueries() {
			c := sol.Cost(p)
			if first || c < best {
				best = c
				first = false
			}
			return
		}
		for _, pl := range p.Plans(q) {
			sol.Selected[q] = pl
			rec(q + 1)
		}
	}
	rec(0)
	return best
}

// randomProblem builds a random valid instance for property tests.
func randomProblem(rng *rand.Rand, queries, ppq int, density float64) *mqo.Problem {
	costs := make([][]float64, queries)
	for q := range costs {
		cs := make([]float64, ppq)
		for i := range cs {
			cs[i] = 1 + rng.Float64()*19
		}
		costs[q] = cs
	}
	var savings []mqo.Saving
	for q1 := 0; q1 < queries; q1++ {
		for q2 := q1 + 1; q2 < queries; q2++ {
			for i := 0; i < ppq; i++ {
				for j := 0; j < ppq; j++ {
					if rng.Float64() < density {
						savings = append(savings, mqo.Saving{
							P1:    q1*ppq + i,
							P2:    q2*ppq + j,
							Value: 1 + rng.Float64()*9,
						})
					}
				}
			}
		}
	}
	p, err := mqo.NewProblem(costs, savings)
	if err != nil {
		panic(err)
	}
	return p
}
