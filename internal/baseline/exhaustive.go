package baseline

import (
	"context"
	"fmt"
	"time"

	"incranneal/internal/mqo"
)

// MaxExactQueries bounds the instance size Exact accepts; beyond this the
// branch-and-bound blow-up makes exact solving pointless (the paper notes
// A*-style optimal methods scale exponentially, motivating annealing).
const MaxExactQueries = 24

// Exact computes a provably optimal MQO solution by depth-first
// branch-and-bound over queries, pruning with an admissible lower bound
// (cheapest remaining plan per query minus all savings still obtainable).
// It exists as the ground-truth oracle for tests and small-instance
// comparisons; Options.MaxIterations and TimeBudget are ignored.
func Exact(ctx context.Context, p *mqo.Problem, opt Options) (*Result, error) {
	start := time.Now()
	if p.NumQueries() > MaxExactQueries {
		return nil, fmt.Errorf("baseline: exact solver limited to %d queries, got %d", MaxExactQueries, p.NumQueries())
	}
	// minPlanCost[q] = cheapest plan of query q; savingsTail[q] = total
	// value of savings whose *later* query (max of the two endpoints'
	// queries) is ≥ q — an upper bound on savings still obtainable once
	// queries 0..q-1 are fixed.
	n := p.NumQueries()
	minPlanCost := make([]float64, n)
	for q := 0; q < n; q++ {
		minPlanCost[q] = p.Cost(p.Plans(q)[0])
		for _, pl := range p.Plans(q) {
			if c := p.Cost(pl); c < minPlanCost[q] {
				minPlanCost[q] = c
			}
		}
	}
	suffixMin := make([]float64, n+1)
	for q := n - 1; q >= 0; q-- {
		suffixMin[q] = suffixMin[q+1] + minPlanCost[q]
	}
	savingsTail := make([]float64, n+1)
	for _, s := range p.Savings() {
		later := p.QueryOf(s.P2)
		if q1 := p.QueryOf(s.P1); q1 > later {
			later = q1
		}
		savingsTail[later] += s.Value
	}
	for q := n - 1; q >= 0; q-- {
		savingsTail[q] += savingsTail[q+1]
	}

	best := mqo.GreedySolution(p)
	bestCost := best.Cost(p)
	cur := mqo.NewSolution(p)
	isSel := make([]bool, p.NumPlans())
	nodes := 0

	var dfs func(q int, partial float64)
	dfs = func(q int, partial float64) {
		nodes++
		if nodes%4096 == 0 {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
		if q == n {
			if partial < bestCost {
				bestCost = partial
				best = cur.Clone()
			}
			return
		}
		// Admissible bound: remaining plans at their cheapest, every
		// remaining saving realised.
		if partial+suffixMin[q]-savingsTail[q] >= bestCost {
			return
		}
		for _, pl := range p.Plans(q) {
			delta := p.Cost(pl)
			for _, s := range p.SavingsOf(pl) {
				other := s.P1
				if other == pl {
					other = s.P2
				}
				if isSel[other] {
					delta -= s.Value
				}
			}
			cur.Selected[q] = pl
			isSel[pl] = true
			dfs(q+1, partial+delta)
			isSel[pl] = false
			cur.Selected[q] = mqo.Unassigned
		}
	}
	dfs(0, 0)
	return &Result{Solution: best, Cost: bestCost, Iterations: nodes, Elapsed: time.Since(start)}, nil
}
