package baseline

import (
	"context"
	"math/rand"
	"time"

	"incranneal/internal/mqo"
)

// HillClimb runs the multi-start hill-climbing heuristic in the style of
// Dokeroglu et al. (2015): from a random valid plan selection, repeatedly
// apply the best single-query plan re-assignment until no move improves the
// cost, then restart; the best local optimum across restarts wins.
// Options.MaxIterations bounds the total number of evaluated moves
// (default 200,000).
func HillClimb(ctx context.Context, p *mqo.Problem, opt Options) (*Result, error) {
	start := time.Now()
	deadline := deadlineFor(opt, start)
	budget := opt.MaxIterations
	if budget <= 0 {
		budget = 200000
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	var best *mqo.Solution
	bestCost := 0.0
	iterations := 0
	for iterations < budget && !expired(ctx, deadline) {
		e := newEvaluator(p, randomSolution(p, rng))
		for iterations < budget && !expired(ctx, deadline) {
			bestQ, bestPl, bestDelta := -1, -1, 0.0
			for q := 0; q < p.NumQueries(); q++ {
				cur := e.selected[q]
				for _, pl := range p.Plans(q) {
					if pl == cur {
						continue
					}
					iterations++
					if d := e.swapDelta(q, pl); d < bestDelta {
						bestQ, bestPl, bestDelta = q, pl, d
					}
				}
			}
			if bestQ < 0 {
				break // local optimum
			}
			e.swap(bestQ, bestPl)
		}
		if best == nil || e.cost < bestCost {
			best, bestCost = e.solution(), e.cost
		}
	}
	return &Result{Solution: best, Cost: bestCost, Iterations: iterations, Elapsed: time.Since(start)}, nil
}

// randomSolution draws a uniformly random valid plan selection.
func randomSolution(p *mqo.Problem, rng *rand.Rand) *mqo.Solution {
	s := mqo.NewSolution(p)
	for q := 0; q < p.NumQueries(); q++ {
		plans := p.Plans(q)
		s.Selected[q] = plans[rng.Intn(len(plans))]
	}
	return s
}
