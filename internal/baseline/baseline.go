// Package baseline implements the conventional MQO methods the paper
// compares against: multi-start hill climbing (Dokeroglu et al. 2015), a
// genetic algorithm (Bayir et al. 2007, JGAP-style defaults), and an exact
// branch-and-bound solver usable as a test oracle on small instances.
package baseline

import (
	"context"
	"time"

	"incranneal/internal/mqo"
)

// Options budgets a baseline run.
type Options struct {
	// MaxIterations bounds the search effort (meaning per algorithm:
	// restarts×moves for hill climbing, generations for the genetic
	// algorithm). Zero uses a per-algorithm default.
	MaxIterations int
	// TimeBudget bounds wall-clock time; the paper gives conventional
	// heuristics 300 s. Zero means unbounded.
	TimeBudget time.Duration
	// Seed makes the run deterministic.
	Seed int64
}

// Result is a baseline outcome.
type Result struct {
	Solution *mqo.Solution
	Cost     float64
	// Iterations actually performed (algorithm-specific unit).
	Iterations int
	Elapsed    time.Duration
}

// evaluator maintains a mutable plan selection with O(degree) cost deltas,
// shared by the local-search baselines.
type evaluator struct {
	p        *mqo.Problem
	selected []int // per query, global plan index
	isSel    []bool
	cost     float64
}

func newEvaluator(p *mqo.Problem, sol *mqo.Solution) *evaluator {
	e := &evaluator{
		p:        p,
		selected: append([]int(nil), sol.Selected...),
		isSel:    make([]bool, p.NumPlans()),
	}
	for _, pl := range e.selected {
		if pl != mqo.Unassigned {
			e.isSel[pl] = true
		}
	}
	e.cost = sol.Cost(p)
	return e
}

// swapDelta returns the cost change of re-assigning query q from its
// current plan to plan newPl (which must belong to q).
func (e *evaluator) swapDelta(q, newPl int) float64 {
	old := e.selected[q]
	if old == newPl {
		return 0
	}
	delta := e.p.Cost(newPl) - e.p.Cost(old)
	for _, s := range e.p.SavingsOf(old) {
		other := s.P1
		if other == old {
			other = s.P2
		}
		if e.isSel[other] {
			delta += s.Value // lose this saving
		}
	}
	for _, s := range e.p.SavingsOf(newPl) {
		other := s.P1
		if other == newPl {
			other = s.P2
		}
		if other != old && e.isSel[other] {
			delta -= s.Value // gain this saving
		}
	}
	return delta
}

// swap applies the re-assignment of query q to plan newPl.
func (e *evaluator) swap(q, newPl int) {
	delta := e.swapDelta(q, newPl)
	old := e.selected[q]
	e.isSel[old] = false
	e.isSel[newPl] = true
	e.selected[q] = newPl
	e.cost += delta
}

func (e *evaluator) solution() *mqo.Solution {
	return &mqo.Solution{Selected: append([]int(nil), e.selected...)}
}

// deadlineFor converts a budget into an absolute deadline (zero time means
// none).
func deadlineFor(opt Options, start time.Time) time.Time {
	if opt.TimeBudget > 0 {
		return start.Add(opt.TimeBudget)
	}
	return time.Time{}
}

func expired(ctx context.Context, deadline time.Time) bool {
	select {
	case <-ctx.Done():
		return true
	default:
	}
	return !deadline.IsZero() && time.Now().After(deadline)
}
