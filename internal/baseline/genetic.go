package baseline

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"incranneal/internal/mqo"
)

// GeneticOptions extends Options with the GA's own knobs, defaulting to the
// JGAP-style configuration the paper uses (population sizes 50 and 200 with
// default operator settings).
type GeneticOptions struct {
	Options
	// PopulationSize defaults to 50.
	PopulationSize int
	// CrossoverRate is the fraction of the population replaced by
	// single-point crossover offspring each generation (JGAP default 0.35).
	CrossoverRate float64
	// MutationRate is the per-gene probability of re-randomising a plan
	// choice (JGAP default 1/12 per candidate, applied gene-wise here).
	MutationRate float64
	// Elitism keeps the best candidates unchanged each generation
	// (default 1).
	Elitism int
}

func (o GeneticOptions) withDefaults() GeneticOptions {
	if o.PopulationSize <= 0 {
		o.PopulationSize = 50
	}
	if o.CrossoverRate <= 0 {
		o.CrossoverRate = 0.35
	}
	if o.MutationRate <= 0 {
		o.MutationRate = 1.0 / 12.0
	}
	if o.Elitism <= 0 {
		o.Elitism = 1
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 500 // generations
	}
	return o
}

// chromosome is one candidate: the per-query index into Plans(q).
type chromosome struct {
	genes []int
	cost  float64
}

// Genetic runs the genetic algorithm for MQO in the style of Bayir et al.
// (2007): plan-index chromosomes, roulette-wheel selection on inverted
// cost, single-point crossover and gene-wise mutation.
// Options.MaxIterations bounds the number of generations.
func Genetic(ctx context.Context, p *mqo.Problem, gopt GeneticOptions) (*Result, error) {
	start := time.Now()
	gopt = gopt.withDefaults()
	deadline := deadlineFor(gopt.Options, start)
	rng := rand.New(rand.NewSource(gopt.Seed))
	pop := make([]chromosome, gopt.PopulationSize)
	for i := range pop {
		pop[i] = randomChromosome(p, rng)
		pop[i].cost = decode(p, pop[i]).Cost(p)
	}
	sortPop(pop)
	generations := 0
	for generations < gopt.MaxIterations && !expired(ctx, deadline) {
		next := make([]chromosome, 0, len(pop))
		for i := 0; i < gopt.Elitism && i < len(pop); i++ {
			next = append(next, cloneChromosome(pop[i]))
		}
		for len(next) < len(pop) {
			a, b := selectParent(pop, rng), selectParent(pop, rng)
			var child chromosome
			if rng.Float64() < gopt.CrossoverRate*2 { // two parents per crossover
				child = crossover(a, b, rng)
			} else {
				child = cloneChromosome(a)
			}
			mutate(p, &child, gopt.MutationRate, rng)
			child.cost = decode(p, child).Cost(p)
			next = append(next, child)
		}
		pop = next
		sortPop(pop)
		generations++
	}
	best := decode(p, pop[0])
	return &Result{Solution: best, Cost: pop[0].cost, Iterations: generations, Elapsed: time.Since(start)}, nil
}

func randomChromosome(p *mqo.Problem, rng *rand.Rand) chromosome {
	genes := make([]int, p.NumQueries())
	for q := range genes {
		genes[q] = rng.Intn(len(p.Plans(q)))
	}
	return chromosome{genes: genes}
}

func cloneChromosome(c chromosome) chromosome {
	return chromosome{genes: append([]int(nil), c.genes...), cost: c.cost}
}

func decode(p *mqo.Problem, c chromosome) *mqo.Solution {
	s := mqo.NewSolution(p)
	for q, g := range c.genes {
		s.Selected[q] = p.Plans(q)[g]
	}
	return s
}

func sortPop(pop []chromosome) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].cost < pop[j].cost })
}

// selectParent performs rank-weighted roulette selection: candidate k of n
// is drawn with weight n−k, cheap and scale-free (costs may be negative
// after offsets, ruling out fitness-proportional selection).
func selectParent(pop []chromosome, rng *rand.Rand) chromosome {
	n := len(pop)
	total := n * (n + 1) / 2
	r := rng.Intn(total)
	acc := 0
	for k := 0; k < n; k++ {
		acc += n - k
		if r < acc {
			return pop[k]
		}
	}
	return pop[n-1]
}

func crossover(a, b chromosome, rng *rand.Rand) chromosome {
	point := rng.Intn(len(a.genes))
	genes := make([]int, len(a.genes))
	copy(genes, a.genes[:point])
	copy(genes[point:], b.genes[point:])
	return chromosome{genes: genes}
}

func mutate(p *mqo.Problem, c *chromosome, rate float64, rng *rand.Rand) {
	for q := range c.genes {
		if rng.Float64() < rate {
			c.genes[q] = rng.Intn(len(p.Plans(q)))
		}
	}
}
