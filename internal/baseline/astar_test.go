package baseline

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"incranneal/internal/mqo"
)

func TestAStarSolvesPaperExample(t *testing.T) {
	p := mqo.PaperExample()
	res, err := AStar(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 25 {
		t.Errorf("A* cost = %v, want 25", res.Cost)
	}
	if err := res.Solution.Validate(p); err != nil || !res.Solution.Complete() {
		t.Fatalf("A* solution invalid: %v", err)
	}
	want := []int{1, 3, 4, 6}
	for q, pl := range res.Solution.Selected {
		if pl != want[q] {
			t.Errorf("A* selection = %v, want %v", res.Solution.Selected, want)
			break
		}
	}
}

func TestAStarMatchesExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 6, 3, 0.4)
		a, err := AStar(context.Background(), p, Options{})
		if err != nil {
			return false
		}
		e, err := Exact(context.Background(), p, Options{})
		if err != nil {
			return false
		}
		return math.Abs(a.Cost-e.Cost) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAStarReportsSolutionCostConsistently(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomProblem(rng, 7, 3, 0.3)
	res, err := AStar(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Solution.Cost(p)-res.Cost) > 1e-9 {
		t.Errorf("reported cost %v, evaluated %v", res.Cost, res.Solution.Cost(p))
	}
}

func TestAStarExpansionBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := randomProblem(rng, 14, 4, 0.4)
	if _, err := AStar(context.Background(), p, Options{MaxIterations: 10}); err == nil {
		t.Error("A* returned despite a 10-expansion budget on a 4^14 space")
	}
}

func TestAStarRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(7))
	p := randomProblem(rng, 12, 4, 0.4)
	if _, err := AStar(ctx, p, Options{}); err == nil {
		t.Error("A* ignored cancelled context")
	}
}
