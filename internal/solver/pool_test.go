package solver

import (
	"runtime"
	"sync"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-1); got != 1 {
		t.Errorf("Workers(-1) = %d, want 1 (sequential)", got)
	}
}

func TestForEachRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9, 100} {
		const runs = 23
		var mu sync.Mutex
		counts := make([]int, runs)
		ForEachRun(runs, workers, func(run int) {
			mu.Lock()
			counts[run]++
			mu.Unlock()
		})
		for run, c := range counts {
			if c != 1 {
				t.Fatalf("workers %d: run %d executed %d times", workers, run, c)
			}
		}
	}
}

func TestForEachRunSequentialOrder(t *testing.T) {
	var order []int
	ForEachRun(5, 1, func(run int) { order = append(order, run) })
	for i, run := range order {
		if run != i {
			t.Fatalf("sequential pool out of order: %v", order)
		}
	}
}

func TestForEachRunZeroRuns(t *testing.T) {
	called := false
	ForEachRun(0, 4, func(int) { called = true })
	if called {
		t.Error("fn called with zero runs")
	}
}

func TestRunSeedsDeterministicAndDistinct(t *testing.T) {
	a := RunSeeds(7, 16)
	b := RunSeeds(7, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RunSeeds not deterministic")
		}
	}
	seen := make(map[int64]bool, len(a))
	for _, s := range a {
		if seen[s] {
			t.Fatal("RunSeeds produced duplicate seeds")
		}
		seen[s] = true
	}
	// A prefix of a longer derivation matches the shorter one, so growing
	// the run count never reshuffles earlier runs' streams.
	long := RunSeeds(7, 32)
	for i := range a {
		if long[i] != a[i] {
			t.Fatal("RunSeeds prefix not stable under run-count growth")
		}
	}
}
