package solver

import (
	"math/rand"
	"testing"

	"incranneal/internal/qubo"
)

func TestWarmRunCount(t *testing.T) {
	warm := []int8{0, 1, 0, 1}
	cases := []struct {
		name string
		req  Request
		runs int
		want int
	}{
		{"no warm", Request{}, 8, 0},
		{"no warm explicit count", Request{WarmRuns: 3}, 8, 0},
		{"default half rounded up", Request{Warm: warm}, 8, 4},
		{"default half odd", Request{Warm: warm}, 5, 3},
		{"single run", Request{Warm: warm}, 1, 1},
		{"explicit", Request{Warm: warm, WarmRuns: 2}, 8, 2},
		{"explicit capped", Request{Warm: warm, WarmRuns: 20}, 8, 8},
	}
	for _, tc := range cases {
		if got := tc.req.WarmRunCount(tc.runs); got != tc.want {
			t.Errorf("%s: WarmRunCount(%d) = %d, want %d", tc.name, tc.runs, got, tc.want)
		}
	}
}

func TestInitialStateWarmAndCold(t *testing.T) {
	m := model(4)
	warm := []int8{1, 0, 1, 1}
	req := Request{Model: m, Warm: warm}
	runs := 4 // default warm count = 2
	for run := 0; run < runs; run++ {
		rng := rand.New(rand.NewSource(9))
		st := InitialState(req, run, runs, rng)
		if run < 2 {
			for i, v := range warm {
				if st.Get(i) != v {
					t.Fatalf("run %d: warm state differs at %d", run, i)
				}
			}
		} else {
			// Cold runs consume exactly the draws NewRandomState does.
			want := qubo.NewRandomState(m, rand.New(rand.NewSource(9)))
			for i := 0; i < m.NumVariables(); i++ {
				if st.Get(i) != want.Get(i) {
					t.Fatalf("run %d: cold state diverged from NewRandomState at %d", run, i)
				}
			}
		}
	}
}

// TestInitialStateColdPathUnchanged pins the determinism contract: a request
// without Warm consumes exactly the same rng stream as the pre-warm-start
// code, for consecutive runs off one shared rng.
func TestInitialStateColdPathUnchanged(t *testing.T) {
	m := model(6)
	rngA := rand.New(rand.NewSource(42))
	rngB := rand.New(rand.NewSource(42))
	req := Request{Model: m}
	for run := 0; run < 5; run++ {
		got := InitialState(req, run, 5, rngA)
		want := qubo.NewRandomState(m, rngB)
		for i := 0; i < m.NumVariables(); i++ {
			if got.Get(i) != want.Get(i) {
				t.Fatalf("run %d: cold stream shifted at variable %d", run, i)
			}
		}
	}
}

func TestInitialStateWrongLengthFallsBack(t *testing.T) {
	m := model(4)
	req := Request{Model: m, Warm: []int8{1, 0}} // wrong length
	rng := rand.New(rand.NewSource(5))
	st := InitialState(req, 0, 4, rng)
	want := qubo.NewRandomState(m, rand.New(rand.NewSource(5)))
	for i := 0; i < m.NumVariables(); i++ {
		if st.Get(i) != want.Get(i) {
			t.Fatal("wrong-length Warm did not fall back to the random state")
		}
	}
}

func TestInitialStateWarmEnergyConsistent(t *testing.T) {
	m := model(4)
	warm := []int8{1, 1, 0, 1}
	st := InitialState(Request{Model: m, Warm: warm}, 0, 2, rand.New(rand.NewSource(1)))
	if got, want := st.Energy(), m.Energy(warm); got != want {
		t.Fatalf("warm state energy = %v, want %v", got, want)
	}
}
