// Package solver defines the device-independent interface through which the
// MQO pipeline talks to QUBO solvers — classical simulated annealing, the
// Digital Annealer simulator and the hybrid quantum annealer simulator. The
// abstraction carries each device's variable capacity, so the partitioning
// phase can target any existing or future annealer (contribution 4 of the
// paper).
package solver

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"incranneal/internal/qubo"
)

// Request describes one optimisation job.
type Request struct {
	// Model is the QUBO to minimise.
	Model *qubo.Model
	// Runs is the number of independent annealing runs; each yields one
	// sample. The paper uses 16 runs per problem. Zero means the solver's
	// default.
	Runs int
	// Sweeps is the per-run iteration budget (Monte-Carlo sweeps over all
	// variables). The incremental strategy divides a constant total budget
	// across partitions, as in the paper's setup. Zero means the solver's
	// default.
	Sweeps int
	// Seed makes the run deterministic; runs derive sub-seeds from it.
	Seed int64
	// TimeBudget optionally bounds wall-clock time; zero means unbounded.
	TimeBudget time.Duration
	// Parallelism bounds the worker goroutines executing the request's
	// independent runs; zero means GOMAXPROCS, negative forces sequential
	// execution. Solvers derive every run's RNG stream from Seed before
	// dispatch, so Samples are identical for every Parallelism setting.
	Parallelism int
}

// Sample is one candidate assignment with its energy.
type Sample struct {
	Assignment []int8
	Energy     float64
}

// Result collects the samples of all runs of a request.
type Result struct {
	// Samples holds one entry per run, sorted by ascending energy.
	Samples []Sample
	// Sweeps is the total number of sweeps actually performed.
	Sweeps int
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
}

// Best returns the lowest-energy sample. Results always contain at least
// one sample.
func (r *Result) Best() Sample { return r.Samples[0] }

// SortSamples orders Samples by ascending energy (stable).
func (r *Result) SortSamples() {
	sort.SliceStable(r.Samples, func(i, j int) bool {
		return r.Samples[i].Energy < r.Samples[j].Energy
	})
}

// Solver is a QUBO minimiser with a device capacity.
type Solver interface {
	// Name identifies the device/algorithm (e.g. "sa", "da", "hqa").
	Name() string
	// Capacity returns the maximum number of variables the device can
	// encode, or 0 for no limit. Requests exceeding a non-zero capacity
	// fail with ErrCapacityExceeded.
	Capacity() int
	// Solve minimises the request's model. Implementations must respect
	// ctx cancellation and return the best state found so far on
	// cancellation rather than failing, unless no sample exists yet.
	Solve(ctx context.Context, req Request) (*Result, error)
}

// LargeSolver is implemented by devices that ship their own vendor
// decomposition for problems beyond their variable capacity (e.g. the
// Digital Annealer's default partitioning mode, which handles up to 100,000
// variables on the 8,192-variable device).
type LargeSolver interface {
	Solver
	// SolveLarge minimises a model of arbitrary size, decomposing it
	// internally when it exceeds the device capacity.
	SolveLarge(ctx context.Context, req Request) (*Result, error)
}

// ErrCapacityExceeded reports that a request's model does not fit the
// device.
var ErrCapacityExceeded = errors.New("solver: problem exceeds device variable capacity")

// CheckCapacity returns ErrCapacityExceeded (wrapped with sizes) when the
// model of req does not fit s.
func CheckCapacity(s Solver, m *qubo.Model) error {
	if c := s.Capacity(); c > 0 && m.NumVariables() > c {
		return fmt.Errorf("%w: %d variables > capacity %d of %s", ErrCapacityExceeded, m.NumVariables(), c, s.Name())
	}
	return nil
}

// Interrupted reports whether ctx has been cancelled or has expired.
func Interrupted(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
