// Package solver defines the device-independent interface through which the
// MQO pipeline talks to QUBO solvers — classical simulated annealing, the
// Digital Annealer simulator and the hybrid quantum annealer simulator. The
// abstraction carries each device's variable capacity, so the partitioning
// phase can target any existing or future annealer (contribution 4 of the
// paper).
//
// Everything above this package builds on two properties of its contract:
// solves are pure functions of (Model, Runs, Sweeps, Seed) — per-run RNG
// streams derive from the seed before any work is dispatched, so results
// are identical at every Parallelism — and implementations are safe for
// use from one goroutine at a time per instance, which lets the serving
// fleet (internal/serve) give each worker slot its own device instances.
package solver

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"incranneal/internal/qubo"
)

// Request describes one optimisation job.
type Request struct {
	// Model is the QUBO to minimise.
	Model *qubo.Model
	// Runs is the number of independent annealing runs; each yields one
	// sample. The paper uses 16 runs per problem. Zero means the solver's
	// default.
	Runs int
	// Sweeps is the per-run iteration budget (Monte-Carlo sweeps over all
	// variables). The incremental strategy divides a constant total budget
	// across partitions, as in the paper's setup. Zero means the solver's
	// default.
	Sweeps int
	// Seed makes the run deterministic; runs derive sub-seeds from it.
	Seed int64
	// TimeBudget optionally bounds wall-clock time; zero means unbounded.
	TimeBudget time.Duration
	// Parallelism bounds the worker goroutines executing the request's
	// independent runs; zero means GOMAXPROCS, negative forces sequential
	// execution. Solvers derive every run's RNG stream from Seed before
	// dispatch, so Samples are identical for every Parallelism setting.
	Parallelism int
	// Warm optionally seeds part of the runs (or replicas) from a known
	// assignment — the cross-solve cache's previous incumbent — instead of
	// a uniformly random state. Devices build starting states through
	// InitialState: the first WarmRuns-resolved runs start from Warm, the
	// rest stay random, so the warm solve keeps the cold runs' exploration.
	// Length must equal the model's variable count; an empty Warm is the
	// historical fully-random behaviour, bit for bit.
	Warm []int8
	// WarmRuns bounds how many runs start from Warm; zero means half of
	// the runs, rounded up. Ignored without Warm.
	WarmRuns int
}

// WarmRunCount resolves how many of runs start from the request's Warm
// assignment: WarmRuns when positive (capped at runs), otherwise half of
// runs rounded up. Zero without a Warm assignment.
func (r Request) WarmRunCount(runs int) int {
	if len(r.Warm) == 0 {
		return 0
	}
	w := r.WarmRuns
	if w <= 0 {
		w = (runs + 1) / 2
	}
	if w > runs {
		w = runs
	}
	return w
}

// Sample is one candidate assignment with its energy.
type Sample struct {
	Assignment []int8
	Energy     float64
}

// Result collects the samples of all runs of a request.
type Result struct {
	// Samples holds one entry per run, sorted by ascending energy.
	Samples []Sample
	// Sweeps is the total number of sweeps actually performed.
	Sweeps int
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
}

// Best returns the lowest-energy sample and true, or a zero Sample and
// false when the result holds no samples — possible when a device is
// cancelled before its first sweep completes, or when a remote call fails
// after the request was accepted. Callers must check the second return
// before using the sample.
func (r *Result) Best() (Sample, bool) {
	if len(r.Samples) == 0 {
		return Sample{}, false
	}
	return r.Samples[0], true
}

// SortSamples orders Samples by ascending energy (stable).
func (r *Result) SortSamples() {
	sort.SliceStable(r.Samples, func(i, j int) bool {
		return r.Samples[i].Energy < r.Samples[j].Energy
	})
}

// Solver is a QUBO minimiser with a device capacity.
type Solver interface {
	// Name identifies the device/algorithm (e.g. "sa", "da", "hqa").
	Name() string
	// Capacity returns the maximum number of variables the device can
	// encode, or 0 for no limit. Requests exceeding a non-zero capacity
	// fail with ErrCapacityExceeded.
	Capacity() int
	// Solve minimises the request's model. Implementations must respect
	// ctx cancellation and return the best state found so far on
	// cancellation rather than failing, unless no sample exists yet.
	Solve(ctx context.Context, req Request) (*Result, error)
}

// LargeSolver is implemented by devices that ship their own vendor
// decomposition for problems beyond their variable capacity (e.g. the
// Digital Annealer's default partitioning mode, which handles up to 100,000
// variables on the 8,192-variable device).
type LargeSolver interface {
	Solver
	// SolveLarge minimises a model of arbitrary size, decomposing it
	// internally when it exceeds the device capacity.
	SolveLarge(ctx context.Context, req Request) (*Result, error)
}

// ErrCapacityExceeded reports that a request's model does not fit the
// device.
var ErrCapacityExceeded = errors.New("solver: problem exceeds device variable capacity")

// TransientError marks a solve failure as retryable: the same request may
// succeed on a later attempt (rate limiting, a dropped connection, a busy
// remote queue). Errors not wrapped in a TransientError are terminal — the
// device cannot serve this request and callers should degrade or fail over
// instead of retrying. This is the error taxonomy the resilience middleware
// keys on: Retry only re-attempts transient errors, while terminal errors
// propagate immediately to the breaker and fallback layers.
type TransientError struct{ Err error }

func (e *TransientError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// MarkTransient wraps err as retryable. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err is marked retryable anywhere in its chain.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// CheckCapacity returns ErrCapacityExceeded (wrapped with sizes) when the
// model of req does not fit s.
func CheckCapacity(s Solver, m *qubo.Model) error {
	if c := s.Capacity(); c > 0 && m.NumVariables() > c {
		return fmt.Errorf("%w: %d variables > capacity %d of %s", ErrCapacityExceeded, m.NumVariables(), c, s.Name())
	}
	return nil
}

// Interrupted reports whether ctx has been cancelled or has expired.
func Interrupted(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
