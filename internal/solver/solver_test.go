package solver

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"incranneal/internal/qubo"
)

type fakeSolver struct {
	name string
	cap  int
}

func (f *fakeSolver) Name() string  { return f.name }
func (f *fakeSolver) Capacity() int { return f.cap }
func (f *fakeSolver) Solve(ctx context.Context, req Request) (*Result, error) {
	return &Result{Samples: []Sample{{Assignment: make([]int8, req.Model.NumVariables())}}}, nil
}

func model(n int) *qubo.Model {
	b := qubo.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddLinear(i, 1)
	}
	return b.Build()
}

func TestCheckCapacity(t *testing.T) {
	s := &fakeSolver{name: "dev", cap: 4}
	if err := CheckCapacity(s, model(4)); err != nil {
		t.Errorf("model at capacity rejected: %v", err)
	}
	err := CheckCapacity(s, model(5))
	if err == nil {
		t.Fatal("over-capacity model accepted")
	}
	if !errors.Is(err, ErrCapacityExceeded) {
		t.Errorf("error %v does not wrap ErrCapacityExceeded", err)
	}
	unlimited := &fakeSolver{name: "sa", cap: 0}
	if err := CheckCapacity(unlimited, model(100000)); err != nil {
		t.Errorf("capacity-free solver rejected model: %v", err)
	}
}

func TestResultBestAndSort(t *testing.T) {
	r := &Result{Samples: []Sample{
		{Energy: 3}, {Energy: -1}, {Energy: 0},
	}}
	r.SortSamples()
	best, ok := r.Best()
	if !ok {
		t.Fatal("Best reported no sample on a populated result")
	}
	if best.Energy != -1 {
		t.Errorf("Best = %v, want −1", best.Energy)
	}
	for i := 1; i < len(r.Samples); i++ {
		if r.Samples[i].Energy < r.Samples[i-1].Energy {
			t.Fatal("samples not sorted")
		}
	}
}

func TestResultBestEmpty(t *testing.T) {
	// Regression: a device cancelled before its first sweep returns an
	// empty sample slice; Best must report that instead of panicking.
	for _, r := range []*Result{{}, {Samples: []Sample{}}} {
		best, ok := r.Best()
		if ok {
			t.Errorf("Best on empty result reported ok with sample %+v", best)
		}
		if best.Assignment != nil || best.Energy != 0 {
			t.Errorf("Best on empty result = %+v, want zero Sample", best)
		}
	}
}

func TestTransientErrorTaxonomy(t *testing.T) {
	if MarkTransient(nil) != nil {
		t.Error("MarkTransient(nil) must stay nil")
	}
	base := errors.New("device busy")
	te := MarkTransient(base)
	if !IsTransient(te) {
		t.Error("marked error not reported transient")
	}
	if !errors.Is(te, base) {
		t.Error("MarkTransient hides the cause from errors.Is")
	}
	// Wrapping a transient error keeps it transient; plain errors are
	// terminal.
	if !IsTransient(fmt.Errorf("attempt 3: %w", te)) {
		t.Error("wrapped transient error lost its marker")
	}
	if IsTransient(base) {
		t.Error("unmarked error reported transient")
	}
	if IsTransient(ErrCapacityExceeded) {
		t.Error("capacity errors are terminal by definition")
	}
}

func TestInterrupted(t *testing.T) {
	if Interrupted(context.Background()) {
		t.Error("background context reported interrupted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if !Interrupted(ctx) {
		t.Error("cancelled context not reported interrupted")
	}
}
