package solver

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Workers resolves a request's Parallelism field into a worker count:
// positive values are honoured as given, zero falls back to GOMAXPROCS
// (use every core), negative forces sequential execution.
func Workers(parallelism int) int {
	if parallelism > 0 {
		return parallelism
	}
	if parallelism < 0 {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// RunSeeds derives one RNG seed per run from the request seed, in run
// order and before any run is dispatched. Each run then builds its own
// rand.Rand from seeds[run], which makes results bit-identical regardless
// of how runs are interleaved across workers. The derivation matches the
// sequential rng.Int63() chain the solvers historically used, so existing
// seeds reproduce the same per-run streams.
func RunSeeds(seed int64, runs int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	seeds := make([]int64, runs)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	return seeds
}

// PoolStats summarises one or more observed ForEachRun dispatches: how
// much work the pool executed (Busy, summed across runs) against its
// theoretical capacity (Workers × Wall). Devices aggregate the stats of a
// solve's dispatches and hand them to the observability sink; the
// disabled-sink path keeps calling the untimed ForEachRun, so observation
// is strictly opt-in.
type PoolStats struct {
	Runs, Workers int
	Busy, Wall    time.Duration
}

// Utilisation returns Busy / (Workers × Wall) — 1.0 means every worker was
// busy for the whole dispatch; values well below 1 mean the pool was
// starved (fewer runs than workers, or one straggler run).
func (p PoolStats) Utilisation() float64 {
	if p.Wall <= 0 || p.Workers <= 0 {
		return 0
	}
	return p.Busy.Seconds() / (p.Wall.Seconds() * float64(p.Workers))
}

// Add accumulates q into p (runs, busy and wall sum; workers takes the
// maximum), letting per-segment dispatches (tempering exchanges, VA
// lockstep sweeps) report one aggregate per solve.
func (p *PoolStats) Add(q PoolStats) {
	p.Runs += q.Runs
	if q.Workers > p.Workers {
		p.Workers = q.Workers
	}
	p.Busy += q.Busy
	p.Wall += q.Wall
}

// ForEachRunStats is ForEachRun plus per-run busy-time measurement. The
// dispatch order, worker count and fn invocations are identical to
// ForEachRun — only two time.Now calls per run are added — so results stay
// bit-identical whether or not a solve is being observed.
func ForEachRunStats(runs, workers int, fn func(run int)) PoolStats {
	if workers > runs {
		workers = runs
	}
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	var busy atomic.Int64
	ForEachRun(runs, workers, func(run int) {
		t0 := time.Now()
		fn(run)
		busy.Add(int64(time.Since(t0)))
	})
	return PoolStats{Runs: runs, Workers: workers, Busy: time.Duration(busy.Load()), Wall: time.Since(start)}
}

// ForEachRun invokes fn(run) exactly once for every run in [0, runs),
// distributing runs over at most workers goroutines. fn must only touch
// per-run state (or synchronise itself); callers pre-derive per-run
// randomness with RunSeeds so the outcome is independent of the worker
// count. With one worker — or one run — everything executes on the calling
// goroutine, keeping the sequential path allocation- and scheduler-free.
func ForEachRun(runs, workers int, fn func(run int)) {
	if workers > runs {
		workers = runs
	}
	if workers <= 1 {
		for run := 0; run < runs; run++ {
			fn(run)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				run := int(next.Add(1)) - 1
				if run >= runs {
					return
				}
				fn(run)
			}
		}()
	}
	wg.Wait()
}
