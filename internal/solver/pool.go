package solver

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a request's Parallelism field into a worker count:
// positive values are honoured as given, zero falls back to GOMAXPROCS
// (use every core), negative forces sequential execution.
func Workers(parallelism int) int {
	if parallelism > 0 {
		return parallelism
	}
	if parallelism < 0 {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// RunSeeds derives one RNG seed per run from the request seed, in run
// order and before any run is dispatched. Each run then builds its own
// rand.Rand from seeds[run], which makes results bit-identical regardless
// of how runs are interleaved across workers. The derivation matches the
// sequential rng.Int63() chain the solvers historically used, so existing
// seeds reproduce the same per-run streams.
func RunSeeds(seed int64, runs int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	seeds := make([]int64, runs)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	return seeds
}

// ForEachRun invokes fn(run) exactly once for every run in [0, runs),
// distributing runs over at most workers goroutines. fn must only touch
// per-run state (or synchronise itself); callers pre-derive per-run
// randomness with RunSeeds so the outcome is independent of the worker
// count. With one worker — or one run — everything executes on the calling
// goroutine, keeping the sequential path allocation- and scheduler-free.
func ForEachRun(runs, workers int, fn func(run int)) {
	if workers > runs {
		workers = runs
	}
	if workers <= 1 {
		for run := 0; run < runs; run++ {
			fn(run)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				run := int(next.Add(1)) - 1
				if run >= runs {
					return
				}
				fn(run)
			}
		}()
	}
	wg.Wait()
}
