// Device conformance suite: every annealing device must honour the same
// solver.Solver contract — deterministic Samples for any Parallelism, results
// unchanged by an attached observability sink, TimeBudget bounding wall-clock
// time, and graceful best-so-far returns on context cancellation. The suite
// lives outside the device packages so one table covers them all.
package solver_test

import (
	"context"
	"math"
	"testing"
	"time"

	"incranneal/internal/da"
	"incranneal/internal/faultinject"
	"incranneal/internal/hqa"
	"incranneal/internal/obs"
	"incranneal/internal/qubo"
	"incranneal/internal/resilience"
	"incranneal/internal/sa"
	"incranneal/internal/solver"
	"incranneal/internal/va"
)

// ptSolver adapts the Digital Annealer's parallel-tempering mode to the
// Solver interface, mirroring how the CLIs and benchmarks use it.
type ptSolver struct{ *da.Solver }

func (s *ptSolver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	return s.SolvePT(ctx, req)
}

func devices() []solver.Solver {
	return []solver.Solver{
		&da.Solver{},
		&ptSolver{&da.Solver{}},
		&sa.Solver{},
		&va.Solver{},
		&hqa.Solver{},
	}
}

func deviceName(s solver.Solver) string {
	if _, ok := s.(*ptSolver); ok {
		return "da-pt"
	}
	return s.Name()
}

// conformanceModel builds a deterministic, frustrated 20-variable QUBO —
// small enough for every device, structured enough that runs actually move.
func conformanceModel() *qubo.Model {
	const n = 20
	b := qubo.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddLinear(i, float64((i*7)%5)-2.0)
		for j := i + 1; j < n && j <= i+4; j++ {
			b.AddQuadratic(i, j, float64((i*3+j*5)%7)-3.0)
		}
	}
	return b.Build()
}

func sameSamples(a, b []solver.Sample) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Energy != b[i].Energy || len(a[i].Assignment) != len(b[i].Assignment) {
			return false
		}
		for k := range a[i].Assignment {
			if a[i].Assignment[k] != b[i].Assignment[k] {
				return false
			}
		}
	}
	return true
}

func checkResult(t *testing.T, m *qubo.Model, res *solver.Result) {
	t.Helper()
	if len(res.Samples) == 0 {
		t.Fatal("no samples")
	}
	for i, s := range res.Samples {
		if len(s.Assignment) != m.NumVariables() {
			t.Fatalf("sample %d: assignment length %d, want %d", i, len(s.Assignment), m.NumVariables())
		}
		if e := m.Energy(s.Assignment); math.Abs(e-s.Energy) > 1e-6 {
			t.Errorf("sample %d: reported energy %v, recomputed %v", i, s.Energy, e)
		}
		if i > 0 && res.Samples[i].Energy < res.Samples[i-1].Energy {
			t.Errorf("samples not sorted: [%d]=%v < [%d]=%v", i, res.Samples[i].Energy, i-1, res.Samples[i-1].Energy)
		}
	}
}

// TestDeviceConformanceDeterminism pins the Parallelism contract: Samples
// are bit-identical for sequential, single-worker and multi-worker
// execution, and an attached observability sink changes nothing.
func TestDeviceConformanceDeterminism(t *testing.T) {
	m := conformanceModel()
	for _, dev := range devices() {
		t.Run(deviceName(dev), func(t *testing.T) {
			base := solver.Request{Model: m, Runs: 4, Sweeps: 300, Seed: 7}
			var ref *solver.Result
			for _, par := range []int{-1, 1, 4} {
				req := base
				req.Parallelism = par
				res, err := dev.Solve(context.Background(), req)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				checkResult(t, m, res)
				if ref == nil {
					ref = res
				} else if !sameSamples(ref.Samples, res.Samples) {
					t.Errorf("parallelism %d changed samples", par)
				}
			}
			// Tracing and metrics attached: still bit-identical.
			reg := obs.NewRegistry()
			ctx := obs.NewContext(context.Background(), obs.NewCollector(reg))
			req := base
			req.Parallelism = 4
			res, err := dev.Solve(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if !sameSamples(ref.Samples, res.Samples) {
				t.Error("observability sink changed samples")
			}
		})
	}
}

// TestDeviceConformanceMiddlewareTransparency pins the resilience contract:
// with no faults in play, every middleware layer — and the full composed
// stack, including a zero-config fault injector — is invisible. Samples stay
// bit-identical to the bare device for every Parallelism value.
func TestDeviceConformanceMiddlewareTransparency(t *testing.T) {
	m := conformanceModel()
	middlewares := []struct {
		name string
		wrap func(dev solver.Solver) solver.Solver
	}{
		{"retry", func(dev solver.Solver) solver.Solver {
			return resilience.NewRetry(dev, resilience.RetryConfig{Attempts: 3, Base: time.Millisecond, Seed: 11})
		}},
		{"timeout", func(dev solver.Solver) solver.Solver {
			return &resilience.Timeout{Inner: dev, D: time.Minute}
		}},
		{"breaker", func(dev solver.Solver) solver.Solver {
			return resilience.NewBreaker(dev, 2, 0)
		}},
		{"fallback", func(dev solver.Solver) solver.Solver {
			return &resilience.Fallback{Devices: []solver.Solver{dev, &sa.Solver{}}}
		}},
		{"faultinject-disabled", func(dev solver.Solver) solver.Solver {
			return faultinject.New(dev, faultinject.Config{})
		}},
		{"full-stack", func(dev solver.Solver) solver.Solver {
			return resilience.Wrap(
				[]solver.Solver{faultinject.New(dev, faultinject.Config{}), &sa.Solver{}},
				resilience.Config{Retries: 2, SolveTimeout: time.Minute, BreakerThreshold: 3, Seed: 11},
			)
		}},
	}
	for _, dev := range devices() {
		t.Run(deviceName(dev), func(t *testing.T) {
			base := solver.Request{Model: m, Runs: 4, Sweeps: 300, Seed: 7}
			refs := map[int]*solver.Result{}
			for _, par := range []int{-1, 1, 4} {
				req := base
				req.Parallelism = par
				ref, err := dev.Solve(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				refs[par] = ref
			}
			for _, mw := range middlewares {
				t.Run(mw.name, func(t *testing.T) {
					wrapped := mw.wrap(dev)
					for _, par := range []int{-1, 1, 4} {
						req := base
						req.Parallelism = par
						res, err := wrapped.Solve(context.Background(), req)
						if err != nil {
							t.Fatalf("parallelism %d: %v", par, err)
						}
						checkResult(t, m, res)
						if !sameSamples(refs[par].Samples, res.Samples) {
							t.Errorf("parallelism %d: middleware changed samples", par)
						}
					}
				})
			}
		})
	}
}

// TestDeviceConformanceTimeBudget pins that a tiny TimeBudget cuts an
// otherwise enormous sweep budget short while still returning valid samples.
func TestDeviceConformanceTimeBudget(t *testing.T) {
	m := conformanceModel()
	for _, dev := range devices() {
		t.Run(deviceName(dev), func(t *testing.T) {
			// 2M sweeps is ~20× what 50ms can execute, while keeping the
			// precomputed temperature schedule small enough to build fast.
			req := solver.Request{
				Model: m, Runs: 2, Sweeps: 2_000_000, Seed: 3,
				TimeBudget: 50 * time.Millisecond, Parallelism: -1,
			}
			start := time.Now()
			res, err := dev.Solve(context.Background(), req)
			elapsed := time.Since(start)
			if err != nil {
				t.Fatal(err)
			}
			checkResult(t, m, res)
			// Generous bound: the budget is 50ms; devices check the deadline
			// at sweep granularity, so allow a wide margin before failing.
			if elapsed > 5*time.Second {
				t.Errorf("TimeBudget ignored: ran %v for a 50ms budget", elapsed)
			}
		})
	}
}

// TestDeviceConformanceCancellation pins the Solver doc contract:
// cancellation mid-solve returns the best state found so far, not an error.
func TestDeviceConformanceCancellation(t *testing.T) {
	m := conformanceModel()
	for _, dev := range devices() {
		t.Run(deviceName(dev), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			req := solver.Request{Model: m, Runs: 2, Sweeps: 2_000_000, Seed: 3, Parallelism: -1}
			start := time.Now()
			res, err := dev.Solve(ctx, req)
			elapsed := time.Since(start)
			if err != nil {
				t.Fatalf("cancellation must yield best-so-far, got error: %v", err)
			}
			checkResult(t, m, res)
			if elapsed > 5*time.Second {
				t.Errorf("cancellation ignored: ran %v past a 30ms context", elapsed)
			}
		})
	}
}
