package solver

import (
	"math/rand"

	"incranneal/internal/qubo"
)

// InitialState builds run number `run` of `runs`'s starting state for req:
// the request's Warm assignment for the first WarmRunCount runs, a
// uniformly random state drawn from rng otherwise. Every device kernel
// funnels its state construction through here so warm starts behave
// identically across devices.
//
// Determinism contract: a request without Warm consumes exactly the same
// rng draws as qubo.NewRandomState always did, so cold solves are
// bit-identical to the pre-warm-start code. Warm runs draw nothing from
// rng — each run owns its own seed-derived stream (or, for population
// devices, the master stream is only consumed per slot in construction
// order), so skipping draws never shifts another run's stream on the cold
// path. A Warm of the wrong length falls back to random rather than
// panicking deep inside a device.
func InitialState(req Request, run, runs int, rng *rand.Rand) *qubo.State {
	if run < req.WarmRunCount(runs) && len(req.Warm) == req.Model.NumVariables() {
		st := qubo.NewState(req.Model)
		st.Reset(req.Warm)
		return st
	}
	return qubo.NewRandomState(req.Model, rng)
}
