// Package va simulates the NEC Vector Annealer, the quantum-inspired
// alternative the paper assessed alongside the Digital Annealer
// (Sec. 2.3): a hardware-augmented simulated-annealing variant running on
// a vector engine. The device anneals many replicas of the problem in
// lockstep — the vector units process replicas SIMD-style — and
// periodically resamples the replica population towards its best members.
//
// Unlike the Digital Annealer it performs neither parallel-trial
// acceptance nor dynamic offset escapes, which is why the paper found
// "both its optimisation accuracy and runtime performance to be dominated
// by the DA"; the simulator reproduces that ranking and exists so the
// repository covers every device the paper discusses.
package va

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"incranneal/internal/obs"
	"incranneal/internal/qubo"
	"incranneal/internal/solver"
)

// HardwareCapacity is the variable capacity of the NEC Vector Annealer's
// largest advertised configuration.
const HardwareCapacity = 100000

// Solver is a Vector Annealer simulator. The zero value models the real
// device: 16 replicas annealed in lockstep with resampling every 10% of
// the schedule.
type Solver struct {
	// CapacityVars is the device variable capacity; zero means
	// HardwareCapacity.
	CapacityVars int
	// Replicas is the vector width — the number of states annealed in
	// lockstep. Zero means 16.
	Replicas int
	// DefaultSweeps is used when a request leaves Sweeps zero; zero
	// derives a budget from the problem size. For the VA, Request.Sweeps
	// counts Monte-Carlo sweeps (each replica attempts one flip per
	// variable per sweep).
	DefaultSweeps int
	// ResampleEvery controls how often (in sweeps) the replica population
	// is resampled towards its best members; zero means every 10% of the
	// schedule, negative disables resampling.
	ResampleEvery int
}

// Name implements solver.Solver.
func (s *Solver) Name() string { return "va" }

// Capacity implements solver.Solver.
func (s *Solver) Capacity() int {
	if s.CapacityVars > 0 {
		return s.CapacityVars
	}
	return HardwareCapacity
}

func (s *Solver) replicas() int {
	if s.Replicas > 0 {
		return s.Replicas
	}
	return 16
}

func (s *Solver) sweeps(req solver.Request) int {
	if req.Sweeps > 0 {
		return req.Sweeps
	}
	if s.DefaultSweeps > 0 {
		return s.DefaultSweeps
	}
	return 500
}

// Solve implements solver.Solver. One "run" of the request corresponds to
// one replica's final sample, so the result carries min(Runs, Replicas)
// samples drawn from the annealed population.
func (s *Solver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	m := req.Model
	if m == nil || m.NumVariables() == 0 {
		return nil, fmt.Errorf("va: empty model")
	}
	if err := solver.CheckCapacity(s, m); err != nil {
		return nil, err
	}
	start := time.Now()
	deadline := time.Time{}
	if req.TimeBudget > 0 {
		deadline = start.Add(req.TimeBudget)
	}
	rng := rand.New(rand.NewSource(req.Seed))
	// Replica slots get their own RNG streams, derived from the master
	// seed before the anneal starts: the slot RNG stays with the slot even
	// when resampling moves states between slots, so every Metropolis draw
	// is independent of how slots are scheduled across workers and results
	// are identical for every Parallelism setting. The master rng is only
	// consumed here and at resampling barriers.
	replicas := make([]*qubo.State, s.replicas())
	rngs := make([]*rand.Rand, len(replicas))
	for i := range replicas {
		replicas[i] = solver.InitialState(req, i, len(replicas), rng)
		rngs[i] = rand.New(rand.NewSource(rng.Int63()))
	}
	var best qubo.BestTracker
	best.Observe(replicas[0])
	sweeps := s.sweeps(req)
	resample := s.ResampleEvery
	if resample == 0 {
		resample = sweeps/10 + 1
	}
	hot, cold := temperatureRange(m)
	n := m.NumVariables()
	workers := solver.Workers(req.Parallelism)
	performed := 0
	// Observability: the lockstep population is one logical anneal, so a
	// single RunTrace covers the solve. Per-replica flip counters and the
	// dispatch-stats aggregation exist only when a sink is present; the
	// disabled path allocates exactly what the uninstrumented code did.
	sink := obs.FromContext(ctx)
	var rt *obs.RunTrace
	var flipCounts []int64
	var pool solver.PoolStats
	if sink.Enabled() {
		rt = sink.StartRun("va", obs.LabelFromContext(ctx), 0)
		flipCounts = make([]int64, len(replicas))
		rt.Observe(0, best.Energy())
	}
	for sweep := 0; sweep < sweeps; sweep++ {
		if solver.Interrupted(ctx) || (!deadline.IsZero() && time.Now().After(deadline)) {
			break
		}
		temp := hot * math.Pow(cold/hot, float64(sweep)/float64(maxInt(sweeps-1, 1)))
		// Vector step: every replica sweeps the variables at the same
		// temperature — the lockstep pattern the vector engine pipelines —
		// and the replicas are mutually independent within a sweep, so the
		// worker pool processes them concurrently between barriers.
		body := func(i int) {
			st, r := replicas[i], rngs[i]
			for v := 0; v < n; v++ {
				delta := st.DeltaEnergy(v)
				if delta <= 0 || r.Float64() < math.Exp(-delta/temp) {
					st.Flip(v)
					if flipCounts != nil {
						flipCounts[i]++
					}
				}
			}
		}
		if rt != nil {
			pool.Add(solver.ForEachRunStats(len(replicas), workers, body))
		} else {
			solver.ForEachRun(len(replicas), workers, body)
		}
		performed++
		for _, st := range replicas {
			if best.Observe(st) {
				rt.Observe(performed, best.Energy())
			}
		}
		if resample > 0 && sweep > 0 && sweep%resample == 0 {
			resamplePopulation(replicas, rng)
		}
	}
	if rt != nil {
		var flips int64
		for _, f := range flipCounts {
			flips += f
		}
		rt.Finish(performed, flips, int64(performed)*int64(len(replicas))*int64(n))
		sink.Pool("va", obs.LabelFromContext(ctx), pool.Runs, pool.Workers, pool.Busy, pool.Wall)
	}
	runs := req.Runs
	if runs <= 0 || runs > len(replicas) {
		runs = len(replicas)
	}
	res := &solver.Result{Sweeps: performed}
	res.Samples = append(res.Samples, solver.Sample{Assignment: best.Assignment(), Energy: best.Energy()})
	for i := 1; i < runs; i++ {
		res.Samples = append(res.Samples, solver.Sample{
			Assignment: replicas[i].Assignment(), Energy: replicas[i].Energy(),
		})
	}
	res.SortSamples()
	res.Elapsed = time.Since(start)
	return res, nil
}

// resamplePopulation replaces the worst half of the replicas with copies
// of the best half, keeping population diversity through subsequent
// divergent Metropolis trajectories.
func resamplePopulation(replicas []*qubo.State, rng *rand.Rand) {
	// Partial selection sort is fine at vector widths of ~16.
	for i := 0; i < len(replicas); i++ {
		for j := i + 1; j < len(replicas); j++ {
			if replicas[j].Energy() < replicas[i].Energy() {
				replicas[i], replicas[j] = replicas[j], replicas[i]
			}
		}
	}
	half := len(replicas) / 2
	for i := half; i < len(replicas); i++ {
		replicas[i] = replicas[rng.Intn(maxInt(half, 1))].Copy()
	}
}

// temperatureRange mirrors the coefficient-scaled schedule of the other
// annealers.
func temperatureRange(m *qubo.Model) (hot, cold float64) {
	maxDelta, minDelta := 0.0, math.Inf(1)
	incident := make([]float64, m.NumVariables())
	for _, t := range m.Terms() {
		a := math.Abs(t.Coeff)
		incident[t.I] += a
		incident[t.J] += a
		if a > 0 && a < minDelta {
			minDelta = a
		}
	}
	for i := 0; i < m.NumVariables(); i++ {
		l := math.Abs(m.Linear(i))
		if l > 0 && l < minDelta {
			minDelta = l
		}
		maxDelta = math.Max(maxDelta, l+incident[i])
	}
	if maxDelta == 0 {
		maxDelta = 1
	}
	if math.IsInf(minDelta, 1) {
		minDelta = 1
	}
	hot = maxDelta / math.Ln2
	cold = minDelta / math.Log(100)
	if cold >= hot {
		cold = hot / 100
	}
	return hot, cold
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
