package va

import (
	"context"
	"testing"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/qubo"
	"incranneal/internal/solver"
)

func TestSolvesPaperExampleToOptimum(t *testing.T) {
	p := mqo.PaperExample()
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	s := &Solver{}
	res, err := s.Solve(context.Background(), solver.Request{Model: enc.Model, Sweeps: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Best()
	sol, err := enc.Decode(best.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Cost(p); got != 25 {
		t.Errorf("VA cost on paper example = %v, want 25", got)
	}
}

func TestCapacityEnforced(t *testing.T) {
	s := &Solver{CapacityVars: 4}
	b := qubo.NewBuilder(8)
	b.AddLinear(0, 1)
	if _, err := s.Solve(context.Background(), solver.Request{Model: b.Build(), Seed: 1}); err == nil {
		t.Error("VA accepted over-capacity model")
	}
	if got := (&Solver{}).Capacity(); got != HardwareCapacity {
		t.Errorf("default capacity = %d, want %d", got, HardwareCapacity)
	}
}

func TestSampleCountFollowsRuns(t *testing.T) {
	p := mqo.PaperExample()
	enc, _ := encoding.EncodeMQO(p)
	s := &Solver{Replicas: 8}
	res, err := s.Solve(context.Background(), solver.Request{Model: enc.Model, Runs: 4, Sweeps: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 4 {
		t.Errorf("samples = %d, want 4", len(res.Samples))
	}
	// Runs beyond the vector width clamp to the replica count.
	res, err = s.Solve(context.Background(), solver.Request{Model: enc.Model, Runs: 100, Sweeps: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 8 {
		t.Errorf("samples = %d, want 8 (vector width)", len(res.Samples))
	}
}

func TestResamplingKeepsBest(t *testing.T) {
	p := mqo.PaperExample()
	enc, _ := encoding.EncodeMQO(p)
	with := &Solver{Replicas: 8, ResampleEvery: 20}
	without := &Solver{Replicas: 8, ResampleEvery: -1}
	rw, err := with.Solve(context.Background(), solver.Request{Model: enc.Model, Sweeps: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ro, err := without.Solve(context.Background(), solver.Request{Model: enc.Model, Sweeps: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Both must produce decodable, reasonable samples; resampling must
	// never lose the incumbent best.
	bw, _ := rw.Best()
	bo, _ := ro.Best()
	if bw.Energy > bo.Energy+1e-9 && bw.Energy > 0 {
		t.Errorf("resampling degraded best energy: %v vs %v", bw.Energy, bo.Energy)
	}
}

func TestRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := mqo.PaperExample()
	enc, _ := encoding.EncodeMQO(p)
	s := &Solver{}
	res, err := s.Solve(ctx, solver.Request{Model: enc.Model, Sweeps: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweeps != 0 {
		t.Errorf("performed %d sweeps despite cancelled context", res.Sweeps)
	}
}
