package va

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/solver"
)

// TestSolveDeterministicAcrossParallelism pins the replica-slot RNG
// design: each ladder slot owns a pre-derived RNG stream, so the lockstep
// sweep produces bit-identical samples for every worker count even though
// resampling moves states between slots.
func TestSolveDeterministicAcrossParallelism(t *testing.T) {
	p := mqo.PaperExample()
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	s := &Solver{}
	req := solver.Request{Model: enc.Model, Sweeps: 300, Seed: 42}
	var ref *solver.Result
	for _, par := range []int{-1, 1, 4, runtime.GOMAXPROCS(0)} {
		r := req
		r.Parallelism = par
		res, err := s.Solve(context.Background(), r)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res.Samples) != len(ref.Samples) || res.Sweeps != ref.Sweeps {
			t.Fatalf("parallelism %d: result shape differs", par)
		}
		for i := range res.Samples {
			if res.Samples[i].Energy != ref.Samples[i].Energy ||
				!reflect.DeepEqual(res.Samples[i].Assignment, ref.Samples[i].Assignment) {
				t.Fatalf("parallelism %d: sample %d differs", par, i)
			}
		}
	}
}
