package embed

import "testing"

func TestCliqueEmbeddingFormula(t *testing.T) {
	ch := DWave2X()
	// K_8 on Chimera: chains of ⌈8/4⌉+1 = 3 → 24 qubits.
	if got := ch.CliqueEmbeddingQubits(8); got != 24 {
		t.Errorf("Chimera K_8 = %d qubits, want 24", got)
	}
	pg := Advantage()
	// K_24 on Pegasus: chains of ⌈24/12⌉+1 = 3 → 72 qubits.
	if got := pg.CliqueEmbeddingQubits(24); got != 72 {
		t.Errorf("Pegasus K_24 = %d qubits, want 72", got)
	}
	if got := pg.CliqueEmbeddingQubits(1); got != 1 {
		t.Errorf("K_1 = %d qubits, want 1", got)
	}
}

func TestMaxCliqueVariables(t *testing.T) {
	// Chimera C12's clique capacity is in the tens of variables; Pegasus
	// P16's in the low hundreds — and Pegasus must dominate.
	ch, pg := DWave2X(), Advantage()
	chMax, pgMax := ch.MaxCliqueVariables(), pg.MaxCliqueVariables()
	if chMax < 40 || chMax > 80 {
		t.Errorf("Chimera max clique = %d, want ~60", chMax)
	}
	if pgMax < 150 || pgMax > 300 {
		t.Errorf("Pegasus max clique = %d, want ~250", pgMax)
	}
	if pgMax <= chMax {
		t.Errorf("Pegasus (%d) should exceed Chimera (%d)", pgMax, chMax)
	}
	// The returned size must actually fit, the next one must not.
	if ch.CliqueEmbeddingQubits(chMax) > ch.Qubits {
		t.Error("Chimera max clique does not fit")
	}
	if ch.CliqueEmbeddingQubits(chMax+1) <= ch.Qubits {
		t.Error("Chimera max clique is not maximal")
	}
}

func TestRequiredQubitsReproducesFig1Shape(t *testing.T) {
	// Fig. 1: the original method exceeds contemporary QPU capacity for
	// problems beyond ~21 queries at 10 PPQ; small problems fit.
	pg := Advantage()
	small := RequiredQubits(pg, 5, 10)
	if small.Exceeded {
		t.Errorf("5 queries × 10 PPQ should fit Advantage (%d qubits)", small.PhysicalQubits)
	}
	large := RequiredQubits(pg, 30, 10)
	if !large.Exceeded {
		t.Errorf("30 queries × 10 PPQ should exceed Advantage (%d qubits)", large.PhysicalQubits)
	}
	// Monotonic growth.
	prev := 0
	for q := 2; q <= 40; q++ {
		r := RequiredQubits(pg, q, 10)
		if r.PhysicalQubits <= prev {
			t.Fatalf("qubit requirement not growing at %d queries", q)
		}
		prev = r.PhysicalQubits
		if r.LogicalVariables != q*10 {
			t.Fatalf("logical variables = %d, want %d", r.LogicalVariables, q*10)
		}
	}
	// The 2X (used by the original VLDB'16 study) cuts off far earlier.
	ch := DWave2X()
	if !RequiredQubits(ch, 8, 10).Exceeded {
		t.Error("8 queries × 10 PPQ should exceed the D-Wave 2X")
	}
}
