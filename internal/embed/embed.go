// Package embed estimates the physical qubit requirements of running the
// original (unpartitioned) Trummer–Koch MQO encoding on quantum annealers,
// reproducing Fig. 1 of the paper: the number of qubits needed per problem
// size, with crosses where the quantum processing unit's capacity is
// exceeded.
//
// Quantum annealers implement a fixed sparse hardware graph; a QUBO whose
// interaction graph is denser must be *minor-embedded*, representing each
// logical variable by a chain of physical qubits. The MQO encoding couples
// every pair of plans within a query and every saving pair across queries,
// so at realistic savings densities the embedding is clique-like; the
// well-known closed forms for clique embeddings on D-Wave's Chimera and
// Pegasus topologies therefore bound the requirement.
package embed

// Topology describes a quantum annealer's hardware graph for embedding
// estimation purposes.
type Topology struct {
	// Name identifies the device generation.
	Name string
	// Qubits is the number of operable physical qubits.
	Qubits int
	// CliqueDivisor is the per-chain compression of the topology's
	// standard clique embedding: embedding K_n requires chains of about
	// n/CliqueDivisor + 1 qubits (4 for Chimera's K_{4,4} cells, 12 for
	// Pegasus' higher connectivity).
	CliqueDivisor int
}

// DWave2X returns the D-Wave 2X topology the original VLDB'16 MQO study
// ran on: a Chimera C12 graph with 1,152 qubits (1,097 operable on the
// production device; we use the nominal count).
func DWave2X() Topology {
	return Topology{Name: "D-Wave 2X (Chimera C12)", Qubits: 1152, CliqueDivisor: 4}
}

// Advantage returns the D-Wave Advantage topology available at the paper's
// time of writing: a Pegasus P16 graph with roughly 5,600 operable qubits.
func Advantage() Topology {
	return Topology{Name: "D-Wave Advantage (Pegasus P16)", Qubits: 5640, CliqueDivisor: 12}
}

// CliqueEmbeddingQubits returns the physical qubits needed to minor-embed
// a fully connected problem over n logical variables on t: each variable
// becomes a chain of ⌈n/CliqueDivisor⌉+1 qubits.
func (t Topology) CliqueEmbeddingQubits(n int) int {
	if n <= 1 {
		return n
	}
	chain := (n+t.CliqueDivisor-1)/t.CliqueDivisor + 1
	return n * chain
}

// MaxCliqueVariables returns the largest logical variable count whose
// clique embedding fits the device.
func (t Topology) MaxCliqueVariables() int {
	n := 1
	for t.CliqueEmbeddingQubits(n+1) <= t.Qubits {
		n++
	}
	return n
}

// Requirement is one Fig. 1 data point.
type Requirement struct {
	Queries int
	PPQ     int
	// LogicalVariables is the QUBO size of the unpartitioned encoding
	// (queries × PPQ).
	LogicalVariables int
	// PhysicalQubits is the clique-embedding estimate on the topology.
	PhysicalQubits int
	// Exceeded reports whether the device capacity is exceeded (plotted
	// as a cross in Fig. 1).
	Exceeded bool
}

// RequiredQubits computes the Fig. 1 data point for an MQO problem class
// of the given dimensions on t.
func RequiredQubits(t Topology, queries, ppq int) Requirement {
	n := queries * ppq
	phys := t.CliqueEmbeddingQubits(n)
	return Requirement{
		Queries:          queries,
		PPQ:              ppq,
		LogicalVariables: n,
		PhysicalQubits:   phys,
		Exceeded:         phys > t.Qubits,
	}
}
