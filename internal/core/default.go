package core

import (
	"context"
	"fmt"
	"time"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
	"incranneal/internal/solver"
)

// SolveDefault optimises the *unpartitioned* MQO QUBO using the device's
// own large-problem handling — the "Default" processing mode of the
// evaluation (e.g. Fujitsu's vendor partitioning on the DA). Problems
// within capacity are solved directly; problems beyond capacity require the
// device to implement solver.LargeSolver.
func SolveDefault(ctx context.Context, p *mqo.Problem, opt Options) (*Outcome, error) {
	start := time.Now()
	var tm PhaseTimings
	encStart := time.Now()
	pp, err := encoding.PrepareMQO(p)
	if err != nil {
		return nil, err
	}
	enc := pp.Encoding()
	tm.Encode = time.Since(encStart)
	req := solver.Request{Model: enc.Model, Runs: opt.Runs, Sweeps: opt.TotalSweeps, Seed: opt.Seed, Parallelism: opt.Parallelism}
	var res *solver.Result
	capacity := opt.Device.Capacity()
	annealCtx, annealSpan := obs.FromContext(ctx).StartSpan(ctx, "anneal")
	annealStart := time.Now()
	switch {
	case capacity == 0 || enc.Model.NumVariables() <= capacity:
		res, err = opt.Device.Solve(annealCtx, req)
	default:
		ls, ok := opt.Device.(solver.LargeSolver)
		if !ok {
			annealSpan.Attr("error", "capacity").End()
			return nil, fmt.Errorf("core: problem needs %d variables but device %s caps at %d and offers no default partitioning", enc.Model.NumVariables(), opt.Device.Name(), capacity)
		}
		res, err = ls.SolveLarge(annealCtx, req)
	}
	tm.Anneal = time.Since(annealStart)
	var degs []Degradation
	if err != nil {
		annealSpan.Attr("error", "device").End()
		if opt.FailFast {
			return nil, err
		}
		var bestSol *mqo.Solution
		var d Degradation
		bestSol, d = degrade(ctx, p, -1, opt.Device.Name(), err)
		degs = append(degs, d)
		out, err := finalize(p, bestSol, "default", start)
		if err != nil {
			return nil, err
		}
		out.NumPartitions = 1
		out.Timings = tm
		out.Degradations = degs
		return out, nil
	}
	sink := obs.FromContext(ctx)
	if sink.Enabled() {
		e := obs.Event{
			Name: "anneal", Device: opt.Device.Name(),
			Dur: tm.Anneal, Sweeps: res.Sweeps, N: enc.Model.NumVariables(),
		}
		if annealSpan != nil {
			annealSpan.Attr("device", opt.Device.Name()).EndWith(e)
		} else {
			sink.Emit(e)
		}
		if reg := sink.Metrics(); reg != nil {
			reg.Histogram("latency.anneal_ms").Observe(tm.Anneal.Seconds() * 1e3)
			reg.Histogram("latency.encode_ms").Observe(tm.Encode.Seconds() * 1e3)
		}
	}
	decStart := time.Now()
	bestSol, bestCost, repaired, err := bestDecoded(enc, res.Samples)
	tm.Decode = time.Since(decStart)
	if err != nil {
		return nil, err
	}
	if bestSol == nil {
		if opt.FailFast {
			return nil, fmt.Errorf("core: device %s returned no samples", opt.Device.Name())
		}
		var d Degradation
		bestSol, d = degrade(ctx, p, -1, opt.Device.Name(),
			fmt.Errorf("core: device %s returned no samples", opt.Device.Name()))
		degs = append(degs, d)
	}
	if sink.Enabled() {
		sink.Emit(obs.Event{
			Name: "decode", Device: opt.Device.Name(),
			Dur: tm.Decode, N: len(res.Samples), Extra: float64(repaired), Value: bestCost,
		})
		if reg := sink.Metrics(); reg != nil {
			reg.Counter("decode.samples").Add(float64(len(res.Samples)))
			reg.Counter("decode.repaired").Add(float64(repaired))
		}
	}
	out, err := finalize(p, bestSol, "default", start)
	if err != nil {
		return nil, err
	}
	out.NumPartitions = 1
	out.Sweeps = res.Sweeps
	out.Timings = tm
	out.Degradations = degs
	return out, nil
}
