package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
)

// This file implements the DAG-parallel incremental phase. Algorithm 2
// processes partial problems strictly sequentially, but dynamic search
// steering (Algorithm 3) only couples two partial problems when one's
// discarded savings have an endpoint plan inside the other — that is the
// only channel through which solving one partial problem can change
// another's costs. The scheduler makes that data dependency explicit as a
// DAG, solves independent partial problems concurrently in topological
// waves, and applies the DSS cost adjustments at the wave boundaries in a
// fixed, index-sorted order, so the final solution, its cost and the
// re-applied savings total are bit-identical to the sequential chain at any
// Options.Parallelism.
//
// Why the results coincide: in the sequential chain, a discarded saving of
// sub j with its other endpoint plan owned by sub k < j is applied by the
// DSS pass immediately after sub k merges, iff sub k selected that plan —
// and merged selections never change afterwards, so later passes can never
// apply it either. Sub j's cost adjustments therefore depend only on the
// solutions of its DAG predecessors, applied in ascending predecessor
// order; savings whose other endpoint is owned by a sub k > j are never
// applied to j sequentially, which is why applyEdge filters on the owning
// sub of the selected endpoint rather than on mere membership in the
// incumbent solution (under DAG order, sub k > j may already have merged).

// DAGStats describes the DSS dependency graph of one incremental solve.
type DAGStats struct {
	// Nodes is the number of partial problems, Edges the number of
	// dependency pairs (sub i, sub j) sharing at least one discarded
	// saving.
	Nodes, Edges int
	// Waves is the number of topological waves — also the critical path
	// length in partial problems, since every wave depends on its
	// predecessor. Width is the widest wave: the maximum concurrency the
	// schedule exposes.
	Waves, Width int
	// Density is Edges over the possible n·(n−1)/2.
	Density float64
	// Fallback reports that the graph was too dense (Options.
	// DAGDensityThreshold) and the sequential chain ran instead.
	Fallback bool
}

// dssDAG is the dependency graph the scheduler executes. Node indices are
// partial-problem indices; all edges point from lower to higher index, the
// direction the sequential chain would have propagated the information, so
// the graph is acyclic by construction.
type dssDAG struct {
	// preds[j] lists the ascending sub indices k < j owning the other
	// endpoint of at least one of subs[j].Discarded.
	preds [][]int
	// waves groups node indices (ascending within a wave) by topological
	// depth: wave 0 has no predecessors, wave w+1 depends only on waves
	// <= w.
	waves [][]int
	// planSub[pl] is the sub index owning parent plan pl, -1 if none.
	planSub []int
	edges   int
	width   int
	density float64
}

// buildDSSDAG constructs the dependency graph over the partial problems of
// p. When noEdges is set (the DisableDSS ablation) the graph is edgeless:
// no savings will ever be re-applied, so every partial problem is
// independent and the schedule is a single maximally wide wave.
func buildDSSDAG(p *mqo.Problem, subs []*mqo.SubProblem, noEdges bool) *dssDAG {
	n := len(subs)
	d := &dssDAG{
		preds:   make([][]int, n),
		planSub: mqo.PlanOwners(p, subs),
	}
	if !noEdges {
		for j, sub := range subs {
			seen := make([]bool, j)
			for _, s := range sub.Discarded {
				other := s.P1
				if _, in := sub.LocalPlan(s.P1); in {
					other = s.P2
				}
				if k := d.planSub[other]; k >= 0 && k < j && !seen[k] {
					seen[k] = true
					d.preds[j] = append(d.preds[j], k)
				}
			}
			sort.Ints(d.preds[j])
			d.edges += len(d.preds[j])
		}
	}
	if n > 1 {
		d.density = float64(d.edges) / float64(n*(n-1)/2)
	}
	// Topological depth in one ascending pass: every predecessor has a
	// smaller index, so its depth is already known.
	depth := make([]int, n)
	for j := 0; j < n; j++ {
		for _, k := range d.preds[j] {
			if depth[k]+1 > depth[j] {
				depth[j] = depth[k] + 1
			}
		}
		for len(d.waves) <= depth[j] {
			d.waves = append(d.waves, nil)
		}
		d.waves[depth[j]] = append(d.waves[depth[j]], j)
	}
	for _, w := range d.waves {
		if len(w) > d.width {
			d.width = len(w)
		}
	}
	return d
}

// stats exports the graph shape.
func (d *dssDAG) stats(fallback bool) *DAGStats {
	return &DAGStats{
		Nodes: len(d.preds), Edges: d.edges,
		Waves: len(d.waves), Width: d.width,
		Density: d.density, Fallback: fallback,
	}
}

// waveLabel names the w-th wave in trace events.
func waveLabel(w int) string { return fmt.Sprintf("wave%02d", w) }

// applyEdge applies the DSS adjustments flowing over the edge pred → node:
// every pending discarded saving of sub whose other endpoint plan is owned
// by pred and selected is consumed, reducing the local plan cost
// (Algorithm 3). The pending list is compacted in place, preserving order;
// the applied values are returned in scan order so callers can reproduce
// the sequential chain's float accumulation exactly.
func applyEdge(selected []bool, planSub []int, pred int, sub *mqo.SubProblem, pending *[]mqo.Saving) []float64 {
	var applied []float64
	kept := (*pending)[:0]
	for _, s := range *pending {
		plan, other := -1, -1
		if _, in := sub.LocalPlan(s.P1); in {
			plan, other = s.P1, s.P2
		} else if _, in := sub.LocalPlan(s.P2); in {
			plan, other = s.P2, s.P1
		}
		if plan >= 0 && planSub[other] == pred && selected[other] {
			sub.AdjustCost(plan, s.Value)
			applied = append(applied, s.Value)
			continue
		}
		kept = append(kept, s)
	}
	*pending = kept
	return applied
}

// dagJoin records the savings one edge applied, for the deterministic
// re-applied total: summing join values sorted by (pred, node) reproduces
// the sequential chain's accumulation order (DSS pass after merging pred,
// remaining subs in ascending order, pending savings in scan order).
type dagJoin struct {
	pred, node int
	values     []float64
}

// incrementalDAG executes the wave schedule: each wave's partial problems
// solve concurrently on a splitWorkers share of the budget, then a serial
// barrier merges the wave's solutions in ascending index order and applies
// the next wave's join edges (node-ascending, predecessor-ascending).
// Speculative encoding overlap is kept per node: a wave's encodings
// materialise in the background while the previous wave anneals, and a
// late join that dirties one is patched by a PreparedMQO reweight pass.
// It mutates ttlSol, pending and tm, and returns the performed sweeps, the
// re-applied savings magnitude and the degradations in sub index order.
func incrementalDAG(ctx context.Context, p *mqo.Problem, subs []*mqo.SubProblem, preps []*encoding.PreparedMQO, warms [][]int8, dag *dssDAG, pending [][]mqo.Saving, ttlSol *mqo.Solution, tm *PhaseTimings, opt Options, rec *ckptRecorder, rs *resumeState) (int, float64, []Degradation, error) {
	sink := obs.FromContext(ctx)
	n := len(subs)
	workers := parallelism(opt)
	selected := make([]bool, p.NumPlans())
	dirty := make([]bool, n)
	encs := make([]*encoding.MQOEncoding, n)
	globals := make([]*mqo.Solution, n)
	sweepCounts := make([]int, n)
	subTms := make([]subTimings, n)
	degs := make([]*Degradation, n)
	encNanos := make([]int64, n)
	var joins []dagJoin
	var overlapEncNanos int64
	merged := 0
	for w, wave := range dag.waves {
		// Materialise the next wave's encodings while this wave anneals.
		// Their costs are only touched by the join pass below, after the
		// wait; a join that does touch one sets dirty and the owning worker
		// re-materialises via an allocation-free reweight.
		var specWG sync.WaitGroup
		if w+1 < len(dag.waves) {
			for _, j := range dag.waves[w+1] {
				j := j
				dirty[j] = false
				specWG.Add(1)
				go func() {
					defer specWG.Done()
					t0 := time.Now()
					encs[j] = preps[j].Encoding()
					atomic.AddInt64(&overlapEncNanos, int64(time.Since(t0)))
				}()
			}
		}
		waveStart := time.Now()
		// One span per topological wave; sub spans hang off it, indexed by
		// node so ids never depend on worker interleaving.
		waveCtx, waveSpan := sink.StartSpanIndexed(ctx, "wave", w)
		split := splitWorkers(workers, len(wave))
		fns := make([]func() error, len(wave))
		for wi, node := range wave {
			wi, node := wi, node
			fns[wi] = func() error {
				sub := subs[node]
				subCtx := waveCtx
				if sink.Enabled() {
					subCtx = obs.WithLabel(waveCtx, subLabel(node))
				}
				var subSpan *obs.Span
				subCtx, subSpan = sink.StartSpanIndexed(subCtx, "sub", node)
				defer subSpan.End()
				if dc := rs.sub(node); dc != nil {
					// Resume replay: reinstall the checkpointed selections
					// instead of annealing. The merge barrier and join edges
					// below treat the replayed solution exactly like a fresh
					// one, so the wave schedule stays bit-identical.
					best, derr := dc.localSolution(sub)
					if derr != nil {
						return derr
					}
					global, gerr := sub.ToGlobal(p, best)
					if gerr != nil {
						return gerr
					}
					globals[node] = global
					sweepCounts[node] = dc.Sweeps
					if dc.Degraded != nil {
						d := *dc.Degraded
						degs[node] = &d
					}
					if sink.Enabled() {
						sink.EmitCtx(subCtx, obs.Event{Name: "replay", Label: subLabel(node), Sweeps: dc.Sweeps})
					}
					return nil
				}
				if encs[node] == nil || dirty[node] {
					t0 := time.Now()
					encs[node] = preps[node].Encoding()
					encNanos[node] += int64(time.Since(t0))
					dirty[node] = false
				}
				best, performed, st, err := solveEncoded(subCtx, opt.Device, encs[node], opt.Runs, opt.partitionSweeps(n, node), opt.Seed+int64(1000+node), warms[node], split[wi])
				if err != nil {
					if opt.FailFast || isPipelineError(err) {
						return err
					}
					var d Degradation
					best, d = degrade(subCtx, sub.Local, node, opt.Device.Name(), err)
					degs[node] = &d
				}
				global, err := sub.ToGlobal(p, best)
				if err != nil {
					return err
				}
				globals[node] = global
				sweepCounts[node] = performed
				subTms[node] = st
				return nil
			}
		}
		err := boundedGroup(workers, fns)
		specWG.Wait()
		if err != nil {
			return 0, 0, nil, err
		}
		// Serial barrier, fixed order: merge ascending, then apply the
		// next wave's joins node-ascending / predecessor-ascending. All of
		// a node's predecessors have merged by its wave boundary, so every
		// edge fires exactly once, with final selections.
		mergeStart := time.Now()
		for _, node := range wave {
			if err := ttlSol.Merge(globals[node]); err != nil {
				return 0, 0, nil, err
			}
			for _, q := range subs[node].Queries {
				if pl := ttlSol.Selected[q]; pl != mqo.Unassigned {
					selected[pl] = true
				}
			}
			merged++
			if sink.Enabled() {
				sink.EmitCtx(waveCtx, obs.Event{Name: "merge", Label: subLabel(node), N: merged, Value: ttlSol.Cost(p)})
			}
			// Truncated best-so-far results from a cancelled wave must not
			// enter a checkpoint (see the incremental schedule's record
			// site); replayed nodes carry exact checkpoint values.
			if waveCtx.Err() == nil || rs.sub(node) != nil {
				rec.record(node, subs[node], globals[node], sweepCounts[node], degs[node])
			}
		}
		tm.Decode += time.Since(mergeStart)
		if w+1 < len(dag.waves) && dag.edges > 0 {
			dssStart := time.Now()
			var waveApplied float64
			dirtied := 0
			for _, node := range dag.waves[w+1] {
				for _, pred := range dag.preds[node] {
					vals := applyEdge(selected, dag.planSub, pred, subs[node], &pending[node])
					if len(vals) == 0 {
						continue
					}
					if !dirty[node] {
						dirty[node] = true
						dirtied++
					}
					joins = append(joins, dagJoin{pred: pred, node: node, values: vals})
					var sum float64
					for _, v := range vals {
						sum += v
					}
					waveApplied += sum
					if sink.Enabled() {
						sink.EmitCtx(waveCtx, obs.Event{Name: "join", Label: subLabel(node), Run: pred, N: len(vals), Value: sum})
					}
				}
			}
			dssDur := time.Since(dssStart)
			tm.DSS += dssDur
			if sink.Enabled() {
				sink.EmitCtx(waveCtx, obs.Event{Name: "dss", Label: waveLabel(w), Dur: dssDur, Value: waveApplied, N: dirtied})
				if reg := sink.Metrics(); reg != nil {
					reg.Counter("dss.passes").Add(1)
					reg.Counter("dss.applied").Add(waveApplied)
				}
			}
		}
		if sink.Enabled() {
			e := obs.Event{Name: "wave", Label: waveLabel(w), N: len(wave), Run: workers, Dur: time.Since(waveStart), Value: ttlSol.Cost(p)}
			if waveSpan != nil {
				waveSpan.EndWith(e)
			} else {
				sink.Emit(e)
			}
		}
	}
	for _, ns := range encNanos {
		overlapEncNanos += ns
	}
	tm.Encode += time.Duration(overlapEncNanos)
	sweeps := 0
	for i := range subs {
		sweeps += sweepCounts[i]
		tm.Anneal += subTms[i].anneal
		tm.Decode += subTms[i].decode
	}
	// The re-applied total in the sequential chain's float association: the
	// chain sums each DSS pass into its own subtotal (dss's return value)
	// and adds that to the running total, and the pass after merging sub k
	// applies exactly the edges with pred k. So: per-pred subtotals over
	// joins sorted by (pred, node), values in scan order, then one add per
	// pred.
	sort.Slice(joins, func(a, b int) bool {
		if joins[a].pred != joins[b].pred {
			return joins[a].pred < joins[b].pred
		}
		return joins[a].node < joins[b].node
	})
	var reapplied float64
	for i := 0; i < len(joins); {
		var passTotal float64
		j := i
		for ; j < len(joins) && joins[j].pred == joins[i].pred; j++ {
			for _, v := range joins[j].values {
				passTotal += v
			}
		}
		reapplied += passTotal
		i = j
	}
	var outDegs []Degradation
	for _, d := range degs {
		if d != nil {
			outDegs = append(outDegs, *d)
		}
	}
	return sweeps, reapplied, outDegs, nil
}
