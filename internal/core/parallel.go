package core

import (
	"context"
	"sync"
	"time"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
)

// SolveParallel partitions the problem and optimises every partial problem
// *independently and concurrently* — the naive processing option of
// Sec. 4.2. Merging the partial solutions yields a complete solution whose
// cost still counts whatever cross-partition savings happen to apply
// (Example 4.6), but the optimisation itself is blind to them, which is
// what the incremental strategy improves on.
func SolveParallel(ctx context.Context, p *mqo.Problem, opt Options) (*Outcome, error) {
	start := time.Now()
	if !opt.needsPartitioning(p) {
		return solveWhole(ctx, p, opt, "parallel", start)
	}
	partStart := time.Now()
	part, err := opt.partitionProblem(ctx, p)
	if err != nil {
		return nil, err
	}
	var tm PhaseTimings
	tm.Partition = time.Since(partStart)
	subs := part.SubProblems
	globals := make([]*mqo.Solution, len(subs))
	sweepCounts := make([]int, len(subs))
	// Degradations are collected per index so the report stays in
	// partial-problem order regardless of goroutine completion order.
	degs := make([]*Degradation, len(subs))
	// The worker budget splits across the two levels: partitions run
	// concurrently out here, and each device solve gets its share for the
	// run pool, so the total stays at the configured bound instead of
	// multiplying. splitWorkers spreads the remainder, so a budget of 6
	// over 4 partitions yields run pools of 2,2,1,1 rather than rounding
	// every share down to sequential.
	workers := parallelism(opt)
	perSolve := splitWorkers(workers, len(subs))
	sink := obs.FromContext(ctx)
	var mu sync.Mutex
	fns := make([]func() error, len(subs))
	for i, sub := range subs {
		i, sub := i, sub
		fns[i] = func() error {
			subCtx := ctx
			if sink.Enabled() {
				subCtx = obs.WithLabel(ctx, subLabel(i))
			}
			encStart := time.Now()
			pp, err := encoding.PrepareMQO(sub.Local)
			if err != nil {
				return err
			}
			enc := pp.Encoding()
			encDur := time.Since(encStart)
			if sink.Enabled() {
				sink.Emit(obs.Event{Name: "encode", Label: subLabel(i), Dur: encDur, N: 1})
			}
			best, performed, st, err := solveEncoded(subCtx, opt.Device, enc, opt.Runs, opt.partitionSweeps(len(subs), i), opt.Seed+int64(1000+i), nil, perSolve[i])
			if err != nil {
				if opt.FailFast || isPipelineError(err) {
					return err
				}
				var d Degradation
				best, d = degrade(subCtx, sub.Local, i, opt.Device.Name(), err)
				mu.Lock()
				degs[i] = &d
				mu.Unlock()
			}
			decStart := time.Now()
			global, err := sub.ToGlobal(p, best)
			if err != nil {
				return err
			}
			decDur := time.Since(decStart)
			mu.Lock()
			globals[i] = global
			sweepCounts[i] = performed
			tm.Encode += encDur
			tm.Anneal += st.anneal
			tm.Decode += st.decode + decDur
			mu.Unlock()
			return nil
		}
	}
	if err := boundedGroup(workers, fns); err != nil {
		return nil, err
	}
	ttlSol := mqo.NewSolution(p)
	sweeps := 0
	mergeStart := time.Now()
	for i, g := range globals {
		if err := ttlSol.Merge(g); err != nil {
			return nil, err
		}
		sweeps += sweepCounts[i]
	}
	tm.Decode += time.Since(mergeStart)
	out, err := finalize(p, ttlSol, "parallel", start)
	if err != nil {
		return nil, err
	}
	out.NumPartitions = len(subs)
	out.DiscardedSavings = part.DiscardedSavings
	out.Sweeps = sweeps
	out.Timings = tm
	for _, d := range degs {
		if d != nil {
			out.Degradations = append(out.Degradations, *d)
		}
	}
	return out, nil
}
