package core

import (
	"context"
	"sync"
	"time"

	"incranneal/internal/mqo"
)

// SolveParallel partitions the problem and optimises every partial problem
// *independently and concurrently* — the naive processing option of
// Sec. 4.2. Merging the partial solutions yields a complete solution whose
// cost still counts whatever cross-partition savings happen to apply
// (Example 4.6), but the optimisation itself is blind to them, which is
// what the incremental strategy improves on.
func SolveParallel(ctx context.Context, p *mqo.Problem, opt Options) (*Outcome, error) {
	start := time.Now()
	if !opt.needsPartitioning(p) {
		return solveWhole(ctx, p, opt, "parallel", start)
	}
	part, err := opt.partitionProblem(ctx, p)
	if err != nil {
		return nil, err
	}
	subs := part.SubProblems
	perSub := opt.perPartitionSweeps(len(subs))
	globals := make([]*mqo.Solution, len(subs))
	sweepCounts := make([]int, len(subs))
	// The worker budget splits across the two levels: partitions run
	// concurrently out here, and each device solve gets the leftover share
	// for its run pool, so the total stays near the configured bound
	// instead of multiplying.
	workers := parallelism(opt)
	perSolve := workers / len(subs)
	if perSolve < 1 {
		perSolve = -1 // sequential runs inside each partition solve
	}
	var mu sync.Mutex
	fns := make([]func() error, len(subs))
	for i, sub := range subs {
		i, sub := i, sub
		fns[i] = func() error {
			sols, performed, err := solveSub(ctx, opt.Device, sub, opt.Runs, perSub, opt.Seed+int64(1000+i), perSolve)
			if err != nil {
				return err
			}
			best, _ := bestLocal(sub, sols)
			global, err := sub.ToGlobal(p, best)
			if err != nil {
				return err
			}
			mu.Lock()
			globals[i] = global
			sweepCounts[i] = performed
			mu.Unlock()
			return nil
		}
	}
	if err := boundedGroup(workers, fns); err != nil {
		return nil, err
	}
	ttlSol := mqo.NewSolution(p)
	sweeps := 0
	for i, g := range globals {
		if err := ttlSol.Merge(g); err != nil {
			return nil, err
		}
		sweeps += sweepCounts[i]
	}
	out, err := finalize(p, ttlSol, "parallel", start)
	if err != nil {
		return nil, err
	}
	out.NumPartitions = len(subs)
	out.DiscardedSavings = part.DiscardedSavings
	out.Sweeps = sweeps
	return out, nil
}
