package core

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"incranneal/internal/da"
	"incranneal/internal/mqo"
	"incranneal/internal/solver"
	"incranneal/internal/workload"
)

func checkpointTestProblem(t testing.TB) *mqo.Problem {
	t.Helper()
	in, err := workload.GenerateSweep(workload.SweepConfig{
		Queries: 40, PPQ: 3, Communities: 4,
		DensityLow: 0.05, DensityHigh: 0.8, Seed: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in.Problem
}

func checkpointTestOptions() Options {
	return Options{
		Device:      &da.Solver{CapacityVars: 36},
		Capacity:    36,
		Runs:        4,
		TotalSweeps: 800,
		Seed:        23,
	}
}

// assertOutcomeEqual compares the deterministic fields of two outcomes —
// everything except wall-clock timings.
func assertOutcomeEqual(t *testing.T, label string, want, got *Outcome) {
	t.Helper()
	if got.Cost != want.Cost {
		t.Errorf("%s: cost %v, want %v", label, got.Cost, want.Cost)
	}
	if !reflect.DeepEqual(got.Solution.Selected, want.Solution.Selected) {
		t.Errorf("%s: plan selections diverged", label)
	}
	if got.Sweeps != want.Sweeps {
		t.Errorf("%s: sweeps %d, want %d", label, got.Sweeps, want.Sweeps)
	}
	if got.NumPartitions != want.NumPartitions {
		t.Errorf("%s: partitions %d, want %d", label, got.NumPartitions, want.NumPartitions)
	}
	if got.DiscardedSavings != want.DiscardedSavings {
		t.Errorf("%s: discarded savings %v, want %v", label, got.DiscardedSavings, want.DiscardedSavings)
	}
	if got.ReappliedSavings != want.ReappliedSavings {
		t.Errorf("%s: reapplied savings %v, want %v", label, got.ReappliedSavings, want.ReappliedSavings)
	}
	if !reflect.DeepEqual(got.Degradations, want.Degradations) {
		t.Errorf("%s: degradations %v, want %v", label, got.Degradations, want.Degradations)
	}
}

// seedFaultSolver fails solves whose request seed is in the fail set with a
// terminal error. Unlike faultinject's call-counter schedules, the failure
// is a pure function of the request, so it reproduces exactly at any
// Parallelism and across resume (replayed subs never reach the device).
type seedFaultSolver struct {
	inner solver.Solver
	fail  map[int64]bool
}

func (s *seedFaultSolver) Name() string  { return "seedfault(" + s.inner.Name() + ")" }
func (s *seedFaultSolver) Capacity() int { return s.inner.Capacity() }
func (s *seedFaultSolver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	if s.fail[req.Seed] {
		return nil, fmt.Errorf("seedfault: injected terminal failure for seed %d", req.Seed)
	}
	return s.inner.Solve(ctx, req)
}

// TestCheckpointResumeBitIdentity is the tentpole guarantee: a solve
// interrupted after k partial problems and resumed from its checkpoint
// produces the same Outcome as the uninterrupted run — costs, selections,
// sweeps, savings totals and degradation records — for the sequential
// chain and the DAG schedule at every Parallelism, with and without
// degraded sub-problems.
func TestCheckpointResumeBitIdentity(t *testing.T) {
	ctx := context.Background()
	p := checkpointTestProblem(t)
	base := checkpointTestOptions()

	type variant struct {
		name       string
		disableDAG bool
		par        int
		failSeeds  []int64
	}
	variants := []variant{
		{name: "sequential/serial", disableDAG: true, par: -1},
		{name: "sequential/par4", disableDAG: true, par: 4},
		{name: "dag/serial", par: -1},
		{name: "dag/par2", par: 2},
		{name: "dag/par4", par: 4},
		// A degraded sub-problem (terminal failure on sub 1's seed) must
		// replay its Degradation record verbatim on resume.
		{name: "sequential/degraded", disableDAG: true, par: -1, failSeeds: []int64{base.Seed + 1001}},
		{name: "dag/degraded", par: 2, failSeeds: []int64{base.Seed + 1001}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			opt := base
			opt.DisableDAG = v.disableDAG
			opt.Parallelism = v.par
			if len(v.failSeeds) > 0 {
				fail := make(map[int64]bool, len(v.failSeeds))
				for _, s := range v.failSeeds {
					fail[s] = true
				}
				opt.Device = &seedFaultSolver{inner: &da.Solver{CapacityVars: 36}, fail: fail}
			}

			// Uninterrupted reference run, capturing one checkpoint per merge.
			var cps []*Checkpoint
			refOpt := opt
			refOpt.CheckpointFunc = func(cp *Checkpoint) { cps = append(cps, cp) }
			ref, err := SolveIncremental(ctx, p, refOpt)
			if err != nil {
				t.Fatal(err)
			}
			if ref.NumPartitions < 3 {
				t.Fatalf("instance produced %d partitions; want >= 3 for a meaningful interruption", ref.NumPartitions)
			}
			if len(cps) != ref.NumPartitions {
				t.Fatalf("%d checkpoints delivered for %d merges", len(cps), ref.NumPartitions)
			}

			// Resume after the first, a middle and the second-to-last merge
			// (resuming a fully finished solve replays everything).
			ks := []int{1, len(cps) / 2, len(cps) - 1, len(cps)}
			for _, k := range ks {
				if k < 1 {
					continue
				}
				cp := cps[k-1]
				if len(cp.Done) != k {
					t.Fatalf("checkpoint %d records %d finished subs", k, len(cp.Done))
				}
				// Journal round-trip: the serving layer persists checkpoints
				// as JSON, so resume must survive serialisation.
				raw, err := json.Marshal(cp)
				if err != nil {
					t.Fatal(err)
				}
				var thawed Checkpoint
				if err := json.Unmarshal(raw, &thawed); err != nil {
					t.Fatal(err)
				}
				resOpt := opt
				resOpt.Resume = &thawed
				got, err := SolveIncremental(ctx, p, resOpt)
				if err != nil {
					t.Fatalf("resume after %d subs: %v", k, err)
				}
				assertOutcomeEqual(t, fmt.Sprintf("resume after %d/%d subs", k, ref.NumPartitions), ref, got)
			}
		})
	}
}

// TestCheckpointRecordsBothSchedules pins checkpoint shape: per-merge
// delivery, cumulative Done lists, deep-copied query sets, and the sweep
// accounting that Outcome.Sweeps restores on resume.
func TestCheckpointRecordsBothSchedules(t *testing.T) {
	ctx := context.Background()
	p := checkpointTestProblem(t)
	for _, disableDAG := range []bool{true, false} {
		opt := checkpointTestOptions()
		opt.DisableDAG = disableDAG
		var cps []*Checkpoint
		opt.CheckpointFunc = func(cp *Checkpoint) { cps = append(cps, cp) }
		out, err := SolveIncremental(ctx, p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(cps) != out.NumPartitions {
			t.Fatalf("disableDAG=%v: %d checkpoints for %d partitions", disableDAG, len(cps), out.NumPartitions)
		}
		totalSweeps := 0
		for i, cp := range cps {
			if len(cp.Done) != i+1 {
				t.Fatalf("checkpoint %d has %d done entries", i, len(cp.Done))
			}
			if cp.Strategy != StrategyIncremental || cp.Seed != opt.Seed {
				t.Fatalf("checkpoint misidentifies itself: %+v", cp)
			}
			if cp.Queries != p.NumQueries() || cp.Plans != p.NumPlans() {
				t.Fatalf("checkpoint shape %d/%d, want %d/%d", cp.Queries, cp.Plans, p.NumQueries(), p.NumPlans())
			}
			if len(cp.QuerySets) != out.NumPartitions {
				t.Fatalf("checkpoint %d carries %d query sets", i, len(cp.QuerySets))
			}
		}
		final := cps[len(cps)-1]
		seen := make(map[int]bool)
		for _, d := range final.Done {
			if seen[d.Sub] {
				t.Fatalf("sub %d recorded twice", d.Sub)
			}
			seen[d.Sub] = true
			totalSweeps += d.Sweeps
			if len(d.Selected) != len(final.QuerySets[d.Sub]) {
				t.Fatalf("sub %d: %d selections for %d queries", d.Sub, len(d.Selected), len(final.QuerySets[d.Sub]))
			}
		}
		if totalSweeps != out.Sweeps {
			t.Fatalf("disableDAG=%v: checkpointed sweeps %d, outcome %d", disableDAG, totalSweeps, out.Sweeps)
		}
	}
}

// TestCheckpointIntervalThrottles pins the delivery throttle: a large
// interval delivers only the first merge's checkpoint, but its Done list
// still grows inside the recorder (the next delivery is complete).
func TestCheckpointIntervalThrottles(t *testing.T) {
	ctx := context.Background()
	p := checkpointTestProblem(t)
	opt := checkpointTestOptions()
	opt.DisableDAG = true
	opt.CheckpointInterval = time.Hour
	var calls int
	opt.CheckpointFunc = func(cp *Checkpoint) { calls++ }
	out, err := SolveIncremental(ctx, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumPartitions < 2 {
		t.Fatal("instance did not partition")
	}
	if calls != 1 {
		t.Fatalf("interval 1h delivered %d checkpoints, want 1", calls)
	}
}

// TestCheckpointResumeRejectsMismatch: a checkpoint from a different
// problem, seed or partitioning must fail the solve, not silently restart.
func TestCheckpointResumeRejectsMismatch(t *testing.T) {
	ctx := context.Background()
	p := checkpointTestProblem(t)
	opt := checkpointTestOptions()
	var last *Checkpoint
	capOpt := opt
	capOpt.CheckpointFunc = func(cp *Checkpoint) { last = cp }
	if _, err := SolveIncremental(ctx, p, capOpt); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no checkpoint delivered")
	}

	cases := map[string]func(*Checkpoint){
		"seed":         func(cp *Checkpoint) { cp.Seed++ },
		"shape":        func(cp *Checkpoint) { cp.Queries++ },
		"coverage":     func(cp *Checkpoint) { cp.QuerySets[0] = cp.QuerySets[0][:len(cp.QuerySets[0])-1] },
		"out-of-range": func(cp *Checkpoint) { cp.Done[0].Sub = len(cp.QuerySets) + 3 },
	}
	for name, mutate := range cases {
		cp := last.Clone()
		mutate(cp)
		bad := opt
		bad.Resume = cp
		if _, err := SolveIncremental(ctx, p, bad); err == nil {
			t.Errorf("%s mismatch: resume succeeded, want error", name)
		}
	}
}

// TestSessionCheckpointAPI covers the Session surface: EnableCheckpointing
// stores the latest restart point, Checkpoint() hands it out, resuming
// through a second session reproduces the first's outcome, and the
// non-incremental strategies simply never checkpoint.
func TestSessionCheckpointAPI(t *testing.T) {
	ctx := context.Background()
	p := checkpointTestProblem(t)
	opt := checkpointTestOptions()

	sess := NewSession(p, opt)
	sess.EnableCheckpointing(0)
	out, err := sess.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cp := sess.Checkpoint()
	if cp == nil {
		t.Fatal("finished checkpointing session has no checkpoint")
	}
	if len(cp.Done) != out.NumPartitions {
		t.Fatalf("final checkpoint records %d subs, outcome has %d", len(cp.Done), out.NumPartitions)
	}

	// Resume the full checkpoint through a fresh session: pure replay.
	resOpt := opt
	resOpt.Resume = cp
	resumed := NewSession(p, resOpt)
	got, err := resumed.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertOutcomeEqual(t, "session resume", out, got)

	// Parallel and default strategies are not checkpointable: the callback
	// must never fire and Checkpoint stays nil.
	for _, strategy := range []string{StrategyParallel, StrategyDefault} {
		sOpt := opt
		sOpt.CheckpointFunc = func(*Checkpoint) {
			t.Errorf("strategy %s delivered a checkpoint", strategy)
		}
		s2 := NewSession(p, sOpt)
		s2.Strategy = strategy
		s2.EnableCheckpointing(0)
		if _, err := s2.Run(ctx); err != nil {
			t.Fatal(err)
		}
		if s2.Checkpoint() != nil {
			t.Errorf("strategy %s stored a checkpoint", strategy)
		}
	}
}

// TestCheckpointCloneIsolation: mutating a delivered checkpoint never
// corrupts the recorder's internal state (deliveries are deep copies).
func TestCheckpointCloneIsolation(t *testing.T) {
	ctx := context.Background()
	p := checkpointTestProblem(t)
	opt := checkpointTestOptions()
	opt.DisableDAG = true
	var cps []*Checkpoint
	opt.CheckpointFunc = func(cp *Checkpoint) {
		// Vandalise every delivery; later deliveries must be unaffected.
		cp.QuerySets[0][0] = -999
		if len(cp.Done) > 0 {
			cp.Done[0].Selected[0] = -999
		}
		cps = append(cps, cp)
	}
	if _, err := SolveIncremental(ctx, p, opt); err != nil {
		t.Fatal(err)
	}
	if len(cps) < 2 {
		t.Fatal("need at least two checkpoints")
	}
	lastCp := cps[len(cps)-1]
	if lastCp.QuerySets[0][0] == -999 && len(cps) > 1 {
		// The vandalism above ran on this very delivery; check the copy the
		// recorder made for it was fresh by confirming the first Done entry
		// of the *previous* delivery did not leak forward.
		if &cps[0].Done[0] == &lastCp.Done[0] {
			t.Fatal("deliveries share Done backing store")
		}
	}
	// A vandalised earlier checkpoint must not affect a resume from the
	// final one (re-fetch a clean copy by re-running with a clean callback).
	if strings.Contains(fmt.Sprint(lastCp.QuerySets[1:]), "-999") {
		t.Fatal("vandalism of one delivery leaked into another's query sets")
	}
}
