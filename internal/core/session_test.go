package core

import (
	"context"
	"testing"

	"incranneal/internal/da"
	"incranneal/internal/obs"
	"incranneal/internal/workload"
)

func sessionTestProblem(t *testing.T) (*Options, *workload.Instance) {
	t.Helper()
	in, err := workload.GenerateSweep(workload.SweepConfig{
		Queries: 40, PPQ: 3, Communities: 4,
		DensityLow: 0.05, DensityHigh: 0.8, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := &Options{
		Device:      &da.Solver{CapacityVars: 40},
		Capacity:    40,
		Runs:        4,
		TotalSweeps: 800,
		Seed:        7,
		Parallelism: -1,
	}
	return opt, in
}

// TestSessionMatchesSolveIncremental pins the session determinism contract:
// observing a solve through a Session (callback sink, incumbent stream)
// yields a bit-identical Outcome to calling SolveIncremental directly.
func TestSessionMatchesSolveIncremental(t *testing.T) {
	ctx := context.Background()
	opt, in := sessionTestProblem(t)
	want, err := SolveIncremental(ctx, in.Problem, *opt)
	if err != nil {
		t.Fatal(err)
	}

	sess := NewSession(in.Problem, *opt)
	if err := sess.Start(ctx); err != nil {
		t.Fatal(err)
	}
	var incumbents []Incumbent
	for inc := range sess.Incumbents() {
		incumbents = append(incumbents, inc)
	}
	got, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if got.Cost != want.Cost {
		t.Errorf("session cost %v, direct solve %v", got.Cost, want.Cost)
	}
	for q, pl := range got.Solution.Selected {
		if want.Solution.Selected[q] != pl {
			t.Fatalf("query %d: session plan %d, direct %d", q, pl, want.Solution.Selected[q])
		}
	}
	if got.NumPartitions != want.NumPartitions || got.Sweeps != want.Sweeps {
		t.Errorf("stats diverge: session {parts %d, sweeps %d}, direct {parts %d, sweeps %d}",
			got.NumPartitions, got.Sweeps, want.NumPartitions, want.Sweeps)
	}

	if len(incumbents) == 0 {
		t.Fatal("no incumbents streamed")
	}
	last := incumbents[len(incumbents)-1]
	if !last.Final {
		t.Errorf("last streamed point not final: %+v", last)
	}
	if last.Cost != want.Cost {
		t.Errorf("final incumbent cost %v, outcome %v", last.Cost, want.Cost)
	}
	if last.Merged != want.NumPartitions {
		t.Errorf("final incumbent merged %d, outcome partitions %d", last.Merged, want.NumPartitions)
	}
	// The incremental strategy emits one merge point per partial problem
	// (plus the final point); with a fast consumer nothing is dropped.
	if want.NumPartitions > 1 && len(incumbents) != want.NumPartitions+1 {
		t.Errorf("streamed %d points, want %d merges + 1 final", len(incumbents), want.NumPartitions)
	}
	for i, inc := range incumbents[:len(incumbents)-1] {
		if inc.Merged != i+1 {
			t.Errorf("point %d: merged %d, want %d", i, inc.Merged, i+1)
		}
		if inc.Final {
			t.Errorf("point %d marked final", i)
		}
	}
}

// TestSessionStrategies runs every strategy through the session and checks
// each against its direct Solve* counterpart.
func TestSessionStrategies(t *testing.T) {
	ctx := context.Background()
	opt, in := sessionTestProblem(t)
	direct := map[string]func(context.Context, *Options) (*Outcome, error){
		StrategyIncremental: func(ctx context.Context, o *Options) (*Outcome, error) { return SolveIncremental(ctx, in.Problem, *o) },
		StrategyParallel:    func(ctx context.Context, o *Options) (*Outcome, error) { return SolveParallel(ctx, in.Problem, *o) },
		StrategyDefault:     func(ctx context.Context, o *Options) (*Outcome, error) { return SolveDefault(ctx, in.Problem, *o) },
	}
	for strategy, solve := range direct {
		t.Run(strategy, func(t *testing.T) {
			want, err := solve(ctx, opt)
			if err != nil {
				t.Fatal(err)
			}
			sess := NewSession(in.Problem, *opt)
			sess.Strategy = strategy
			got, err := sess.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cost != want.Cost {
				t.Errorf("cost %v, direct %v", got.Cost, want.Cost)
			}
			if got.Strategy != want.Strategy {
				t.Errorf("outcome strategy %q, direct %q", got.Strategy, want.Strategy)
			}
		})
	}
}

// TestSessionChainsContextSink verifies a sink already on the Start context
// still receives the solve's trace events alongside the incumbent stream.
func TestSessionChainsContextSink(t *testing.T) {
	opt, in := sessionTestProblem(t)
	collector := obs.NewCollector(nil)
	ctx := obs.NewContext(context.Background(), collector)

	sess := NewSession(in.Problem, *opt)
	if _, err := sess.Run(ctx); err != nil {
		t.Fatal(err)
	}
	merges := 0
	for _, e := range collector.Events() {
		if e.Name == "merge" {
			merges++
		}
	}
	if merges == 0 {
		t.Error("chained collector saw no merge events")
	}
}

// TestSessionLifecycleErrors covers the misuse paths: double Start, unknown
// strategy, nil problem.
func TestSessionLifecycleErrors(t *testing.T) {
	ctx := context.Background()
	opt, in := sessionTestProblem(t)

	sess := NewSession(in.Problem, *opt)
	if err := sess.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sess.Start(ctx); err == nil {
		t.Error("second Start succeeded")
	}
	if _, err := sess.Wait(); err != nil {
		t.Fatal(err)
	}

	bad := NewSession(in.Problem, *opt)
	bad.Strategy = "nope"
	if err := bad.Start(ctx); err == nil {
		t.Error("unknown strategy accepted")
	}

	if err := NewSession(nil, *opt).Start(ctx); err == nil {
		t.Error("nil problem accepted")
	}
}

// TestSessionPushDropsOldest pins the lossy-buffer policy directly: a full
// buffer drops the oldest point, and the final point always lands.
func TestSessionPushDropsOldest(t *testing.T) {
	s := &Session{incumbents: make(chan Incumbent, 2)}
	s.push(Incumbent{Merged: 1})
	s.push(Incumbent{Merged: 2})
	s.push(Incumbent{Merged: 3, Final: true}) // buffer full: drops Merged:1
	first := <-s.incumbents
	second := <-s.incumbents
	if first.Merged != 2 || !second.Final {
		t.Errorf("buffer after overflow: %+v, %+v; want Merged:2 then the final point", first, second)
	}
}
