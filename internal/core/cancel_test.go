package core

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"incranneal/internal/da"
	"incranneal/internal/solver"
)

// gateSolver signals when its first solve begins and holds every solve
// until the context is cancelled (or release closes), so a test can cancel
// a session at a point where a DAG wave is demonstrably in flight.
type gateSolver struct {
	inner   solver.Solver
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGateSolver(inner solver.Solver) *gateSolver {
	return &gateSolver{inner: inner, started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateSolver) Name() string  { return g.inner.Name() }
func (g *gateSolver) Capacity() int { return g.inner.Capacity() }
func (g *gateSolver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	g.once.Do(func() { close(g.started) })
	select {
	case <-g.release:
	case <-ctx.Done():
	}
	return g.inner.Solve(ctx, req)
}

// TestSessionCancelMidWaveNoLeak cancels a session while a DAG wave is in
// flight and asserts every pipeline goroutine drains: Wait returns, the
// incumbent channel closes, and the process goroutine count returns to its
// pre-session level.
func TestSessionCancelMidWaveNoLeak(t *testing.T) {
	in := dagTestInstance(t)
	gate := newGateSolver(&da.Solver{CapacityVars: 64})
	opt := dagTestOptions()
	opt.Device = gate
	opt.Parallelism = 4

	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess := NewSession(in.Problem, opt)
	sess.EnableCheckpointing(0)
	if err := sess.Start(ctx); err != nil {
		t.Fatal(err)
	}
	<-gate.started
	cancel()

	waitDone := make(chan struct{})
	go func() { sess.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		t.Fatal("session did not finish after cancellation")
	}
	// The incumbent stream must close too — a reader blocked on it after
	// cancellation would be a hang in the serving layer.
	for range sess.Incumbents() {
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after cancel: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDegradationsDeterministicAcrossParallelism injects terminal faults
// keyed on the per-sub request seed — a pure function of the request, not
// of call order — and asserts the Outcome, Degradations included, is
// identical at every Parallelism for both schedules. Counter-based fault
// schedules cannot make this promise under the DAG waves; seed-keyed ones
// must.
func TestDegradationsDeterministicAcrossParallelism(t *testing.T) {
	ctx := context.Background()
	in := dagTestInstance(t)
	base := dagTestOptions()
	// Fail two subs terminally: per-sub solve seeds are Seed+1000+i.
	fail := map[int64]bool{
		base.Seed + 1001: true,
		base.Seed + 1003: true,
	}

	for _, disableDAG := range []bool{false, true} {
		var ref *Outcome
		for _, par := range []int{-1, 1, 2, 4} {
			opt := base
			opt.DisableDAG = disableDAG
			opt.Parallelism = par
			opt.Device = &seedFaultSolver{inner: &da.Solver{CapacityVars: 64}, fail: fail}
			out, err := SolveIncremental(ctx, in.Problem, opt)
			if err != nil {
				t.Fatalf("disableDAG=%v par=%d: %v", disableDAG, par, err)
			}
			if len(out.Degradations) != len(fail) {
				t.Fatalf("disableDAG=%v par=%d: %d degradations, want %d",
					disableDAG, par, len(out.Degradations), len(fail))
			}
			if ref == nil {
				ref = out
				continue
			}
			if !reflect.DeepEqual(out.Degradations, ref.Degradations) {
				t.Errorf("disableDAG=%v par=%d: degradations diverged:\n got %+v\nwant %+v",
					disableDAG, par, out.Degradations, ref.Degradations)
			}
			assertOutcomeEqual(t, "degraded outcome", ref, out)
		}
	}
}
