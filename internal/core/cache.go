package core

import (
	"sync/atomic"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
	"incranneal/internal/solvecache"
)

// CacheOutcome describes one solve's cross-solve cache interaction (see
// Options.Cache).
type CacheOutcome struct {
	// StructureHit reports that the partitioning was reused from the
	// cache: no recursive bisection ran (partition.Refit only re-bisects
	// query sets the capacity no longer admits).
	StructureHit bool `json:"structureHit"`
	// SkeletonHits and SkeletonMisses count partial problems whose
	// encoding skeleton was rebound from the cache vs freshly prepared.
	SkeletonHits   int `json:"skeletonHits"`
	SkeletonMisses int `json:"skeletonMisses"`
	// WarmStart reports that annealing runs were seeded from the cached
	// incumbent; Drift is the relative weight drift against the cached
	// solve (meaningful on any structure hit).
	WarmStart bool    `json:"warmStart"`
	Drift     float64 `json:"drift"`
}

// Tier names the solve's cache reuse level for span attribution and log
// lines: "warm" (warm-started from the cached incumbent), "skeleton-hit"
// (structure hit with rebound encoding skeletons), "structure-hit"
// (partitioning reuse only) or "cold" (miss, or no cache configured — the
// nil receiver is valid).
func (c *CacheOutcome) Tier() string {
	switch {
	case c == nil:
		return "cold"
	case c.WarmStart:
		return "warm"
	case c.StructureHit && c.SkeletonHits > 0:
		return "skeleton-hit"
	case c.StructureHit:
		return "structure-hit"
	default:
		return "cold"
	}
}

// cacheRun threads one incremental solve's cache interaction through the
// phases: the Lookup decision up front, skeleton checkout during
// preparation, warm assignments during the anneal, and the Commit after
// finalisation.
type cacheRun struct {
	cache *solvecache.Cache
	hit   *solvecache.Hit // nil on a structure miss
	out   *CacheOutcome
	// querySets is the partitioning to commit (the Refit result on a hit,
	// the fresh Partition result on a miss).
	querySets [][]int
	// warmSel[pl] is 1 when the cached incumbent selected parent plan pl
	// and warm starts are on; nil disables warm seeding entirely.
	warmSel []int8
	// skeleton checkout counters, atomic: preparation fans out over the
	// worker pool.
	skelHits, skelMisses int32
}

// newCacheRun consults opt.Cache for p and fixes the solve's reuse level.
// Warm starts require a hit with drift within (0, WarmStartDrift]: drift 0
// means the exact problem re-solved, which deliberately stays cold-seeded
// so identical solves stay bit-identical (TestCacheHitBitIdentical).
func newCacheRun(p *mqo.Problem, opt Options) *cacheRun {
	if opt.Cache == nil {
		return nil
	}
	cr := &cacheRun{cache: opt.Cache, out: &CacheOutcome{}}
	cr.hit = opt.Cache.Lookup(p)
	if cr.hit == nil {
		return cr
	}
	cr.out.StructureHit = true
	cr.out.Drift = cr.hit.Drift
	if opt.WarmStartDrift > 0 && cr.hit.Drift > 0 && cr.hit.Drift <= opt.WarmStartDrift {
		sel := make([]int8, p.NumPlans())
		any := false
		for _, pl := range cr.hit.Incumbent {
			if pl >= 0 && pl < len(sel) {
				sel[pl] = 1
				any = true
			}
		}
		if any {
			cr.warmSel = sel
			cr.out.WarmStart = true
			opt.Cache.RecordWarmStart()
		}
	}
	return cr
}

// demote abandons the hit after a failed Refit: the solve continues as a
// structure miss over a fresh partitioning.
func (cr *cacheRun) demote() {
	cr.hit = nil
	cr.warmSel = nil
	cr.out.StructureHit = false
	cr.out.WarmStart = false
	cr.out.Drift = 0
}

// warmFor projects the warm selection into sub's local plan numbering.
// Returns nil (cold) when warm starts are off for this solve.
func (cr *cacheRun) warmFor(sub *mqo.SubProblem) []int8 {
	if cr == nil || cr.warmSel == nil {
		return nil
	}
	w := make([]int8, len(sub.PlanGlobal))
	for lp, gp := range sub.PlanGlobal {
		w[lp] = cr.warmSel[gp]
	}
	return w
}

// takeSkeleton checks a prepared skeleton for local out of the hit, nil
// when the solve must prepare fresh. Safe for concurrent use from the
// preparation fan-out.
func (cr *cacheRun) takeSkeleton(local *mqo.Problem) *encoding.PreparedMQO {
	if cr == nil || cr.hit == nil {
		return nil
	}
	pp := cr.hit.TakeSkeleton(local)
	if pp != nil {
		atomic.AddInt32(&cr.skelHits, 1)
	} else {
		atomic.AddInt32(&cr.skelMisses, 1)
	}
	return pp
}

// commit records the finished solve in the cache and stamps the outcome.
func (cr *cacheRun) commit(p *mqo.Problem, out *Outcome, preps []*encoding.PreparedMQO, sink *obs.Sink) {
	if cr == nil {
		return
	}
	cr.out.SkeletonHits = int(atomic.LoadInt32(&cr.skelHits))
	cr.out.SkeletonMisses = int(atomic.LoadInt32(&cr.skelMisses))
	out.Cache = cr.out
	cr.cache.Commit(p, cr.querySets, out.Solution.Selected, out.Cost, preps)
	if sink.Enabled() {
		cr.cache.Publish(sink.Metrics())
	}
}
