package core

import (
	"context"
	"testing"

	"incranneal/internal/da"
	"incranneal/internal/workload"
)

// BenchmarkIncrementalPipeline measures the end-to-end incremental solve
// (partitioning, encoding, annealing, DSS, decoding) on a 384-variable
// community instance split across four DA partitions — the macro benchmark
// behind BENCH_encoding.json.
func BenchmarkIncrementalPipeline(b *testing.B) {
	in, err := workload.GenerateSweep(workload.SweepConfig{
		Queries: 96, PPQ: 4, Communities: 4,
		DensityLow: 0.05, DensityHigh: 0.6, Seed: 99,
	})
	if err != nil {
		b.Fatal(err)
	}
	opt := Options{
		Device:      &da.Solver{CapacityVars: 96},
		Capacity:    96,
		Runs:        4,
		TotalSweeps: 4000,
		Seed:        7,
		Parallelism: -1,
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveIncremental(ctx, in.Problem, opt); err != nil {
			b.Fatal(err)
		}
	}
}
