package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"incranneal/internal/da"
	"incranneal/internal/faultinject"
	"incranneal/internal/workload"
)

// BenchmarkIncrementalPipeline measures the end-to-end incremental solve
// (partitioning, encoding, annealing, DSS, decoding) on a 384-variable
// community instance split across four DA partitions — the macro benchmark
// behind BENCH_encoding.json.
func BenchmarkIncrementalPipeline(b *testing.B) {
	in, err := workload.GenerateSweep(workload.SweepConfig{
		Queries: 96, PPQ: 4, Communities: 4,
		DensityLow: 0.05, DensityHigh: 0.6, Seed: 99,
	})
	if err != nil {
		b.Fatal(err)
	}
	opt := Options{
		Device:      &da.Solver{CapacityVars: 96},
		Capacity:    96,
		Runs:        4,
		TotalSweeps: 4000,
		Seed:        7,
		Parallelism: -1,
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveIncremental(ctx, in.Problem, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalDAG measures the incremental phase alone (partitions
// pre-extracted) at 2, 8 and 32 partial problems on stride-topology DAG
// instances, sequential chain vs. DAG-parallel schedule — the comparison
// behind BENCH_dag.json. Results are bit-identical between the two orders;
// only the execution order moves. On a single core the CPU-bound variant is
// cost-neutral; the latency variant models a remote annealing service
// (2ms round-trip per solve, the regime the DAG schedule targets) where
// independent partial problems overlap their round-trips.
func BenchmarkIncrementalDAG(b *testing.B) {
	for _, subs := range []int{2, 8, 32} {
		in, err := workload.GenerateDAGSweep(workload.DAGSweepConfig{
			Queries: 4 * subs, PPQ: 3, Communities: subs,
			IntraDensity: 0.4, CrossDensity: 0.25, Seed: 99,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name    string
			disable bool
		}{{"seq", true}, {"dag", false}} {
			run := func(b *testing.B, latency time.Duration, parallelism int) {
				device := &da.Solver{CapacityVars: 64}
				opt := Options{
					Device:      device,
					Runs:        4,
					TotalSweeps: 2000,
					Seed:        7,
					Parallelism: parallelism,
					DisableDAG:  mode.disable,
				}
				if latency > 0 {
					opt.Device = faultinject.New(device, faultinject.Config{Latency: latency})
				}
				ctx := context.Background()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					partial, err := in.SubProblems()
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					out, err := IncrementalOverSubProblems(ctx, in.Problem, partial, opt)
					if err != nil {
						b.Fatal(err)
					}
					if out.NumPartitions != subs {
						b.Fatalf("partitions = %d, want %d", out.NumPartitions, subs)
					}
				}
			}
			b.Run(fmt.Sprintf("subs=%d/%s", subs, mode.name), func(b *testing.B) {
				run(b, 0, -1)
			})
			b.Run(fmt.Sprintf("subs=%d/%s/latency", subs, mode.name), func(b *testing.B) {
				run(b, 2*time.Millisecond, 8)
			})
		}
	}
}
