package core

import (
	"fmt"
	"sort"
	"time"

	"incranneal/internal/mqo"
	"incranneal/internal/partition"
)

// This file implements session checkpointing for the partitioned
// incremental strategy. Algorithm 2's serial merge discipline makes every
// partial-problem merge a consistent restart point: the incumbent total
// solution is exactly the union of the merged partial solutions, and every
// DSS cost adjustment applied so far is a deterministic function of those
// merged selections and the partitioning. A Checkpoint therefore only needs
// the partitioning (query sets) and the per-sub final selections — resuming
// replays the cheap parts (extraction, merges, DSS passes) and skips the
// expensive one (device anneals) for every finished sub-problem.
//
// Bit-identity of resume: mqo.Extract is deterministic, so re-extracting
// the checkpointed query sets reproduces the original sub-problems
// (including their Discarded lists and the derived DSS DAG) exactly. A
// replayed merge re-installs the checkpointed selections; the DSS passes
// then see identical `selected` sets and identical pending-savings lists,
// so every plan-cost adjustment flowing into a *not yet finished*
// sub-problem — the only ones that still solve on the device — is float-
// identical to the uninterrupted run. Sweeps and Degradations are restored
// from the checkpoint rather than recomputed. Pinned by
// TestCheckpointResumeBitIdentity.

// Checkpoint is a consistent restart point of a partitioned incremental
// solve, as delivered to Options.CheckpointFunc after partial-problem
// merges. It is self-contained and JSON-serialisable (the serving layer
// journals checkpoints across process restarts): resuming needs only the
// original problem plus the checkpoint, via Options.Resume.
//
// Checkpoints exist only for solves that actually partitioned; problems
// fitting the device solve in one piece and restart from scratch.
type Checkpoint struct {
	// Strategy is the strategy that produced the checkpoint (currently
	// always "incremental" — the only checkpointable strategy).
	Strategy string `json:"strategy"`
	// Seed is the solve's Options.Seed; resuming under a different seed
	// would not reproduce the interrupted run and is rejected.
	Seed int64 `json:"seed"`
	// Queries and Plans fingerprint the problem shape so a checkpoint is
	// never replayed against a different problem.
	Queries int `json:"queries"`
	Plans   int `json:"plans"`
	// QuerySets is the partitioning: parent query indices per partial
	// problem, in partial-problem order (each set sorted ascending).
	QuerySets [][]int `json:"querySets"`
	// Done lists the finished partial problems in merge order.
	Done []SubCheckpoint `json:"done"`
}

// SubCheckpoint records one finished partial problem.
type SubCheckpoint struct {
	// Sub is the partial-problem index into QuerySets.
	Sub int `json:"sub"`
	// Selected holds the chosen parent plan per local query, aligned with
	// the sub-problem's sorted query list.
	Selected []int `json:"selected"`
	// Sweeps is the annealing iterations the sub-problem's device solve
	// performed (restored into Outcome.Sweeps on resume).
	Sweeps int `json:"sweeps"`
	// Degraded carries the sub-problem's degradation record when its
	// device solve failed terminally and greedy repair completed it; the
	// resumed Outcome reports it unchanged.
	Degraded *Degradation `json:"degraded,omitempty"`
}

// Clone deep-copies the checkpoint, so holders are immune to the solve
// appending further Done entries.
func (c *Checkpoint) Clone() *Checkpoint {
	if c == nil {
		return nil
	}
	n := &Checkpoint{
		Strategy: c.Strategy, Seed: c.Seed,
		Queries: c.Queries, Plans: c.Plans,
		QuerySets: make([][]int, len(c.QuerySets)),
	}
	for i, qs := range c.QuerySets {
		n.QuerySets[i] = append([]int(nil), qs...)
	}
	if c.Done != nil {
		n.Done = make([]SubCheckpoint, len(c.Done))
		for i, d := range c.Done {
			nd := SubCheckpoint{Sub: d.Sub, Sweeps: d.Sweeps,
				Selected: append([]int(nil), d.Selected...)}
			if d.Degraded != nil {
				deg := *d.Degraded
				nd.Degraded = &deg
			}
			n.Done[i] = nd
		}
	}
	return n
}

// localSolution rebuilds the sub-problem's local solution from the
// checkpointed parent-plan selections.
func (sc *SubCheckpoint) localSolution(sub *mqo.SubProblem) (*mqo.Solution, error) {
	if len(sc.Selected) != len(sub.Queries) {
		return nil, fmt.Errorf("core: checkpoint sub %d has %d selections, sub-problem has %d queries",
			sc.Sub, len(sc.Selected), len(sub.Queries))
	}
	sol := mqo.NewSolution(sub.Local)
	for lq, gp := range sc.Selected {
		lp, ok := sub.LocalPlan(gp)
		if !ok {
			return nil, fmt.Errorf("core: checkpoint sub %d selects plan %d outside the sub-problem", sc.Sub, gp)
		}
		sol.Selected[lq] = lp
	}
	return sol, nil
}

// ckptRecorder assembles and delivers checkpoints from the serial merge
// path of a partitioned incremental solve. It is only ever touched from a
// single goroutine (the sequential chain's loop, or the DAG schedule's
// merge barrier), so it needs no locking. Delivery is throttled by
// Options.CheckpointInterval; the internal Done list always grows per
// merge, so a delivered checkpoint is complete regardless of throttling.
type ckptRecorder struct {
	fn       func(*Checkpoint)
	interval time.Duration
	last     time.Time
	cp       Checkpoint
}

// newCkptRecorder builds the recorder for a solve over subs, nil when the
// solve does not checkpoint. The query sets are deep-copied up front —
// the same snapshot discipline solvecache uses for its partitionings — so
// delivered checkpoints never alias pipeline state.
func newCkptRecorder(p *mqo.Problem, subs []*mqo.SubProblem, opt Options) *ckptRecorder {
	if opt.CheckpointFunc == nil {
		return nil
	}
	qs := make([][]int, len(subs))
	for i, sub := range subs {
		qs[i] = append([]int(nil), sub.Queries...)
	}
	return &ckptRecorder{
		fn:       opt.CheckpointFunc,
		interval: opt.CheckpointInterval,
		cp: Checkpoint{
			Strategy:  StrategyIncremental,
			Seed:      opt.Seed,
			Queries:   p.NumQueries(),
			Plans:     p.NumPlans(),
			QuerySets: qs,
		},
	}
}

// record appends the finished sub-problem and delivers a deep-copied
// checkpoint unless the interval throttle suppresses this delivery.
// global is the sub-problem's merged global solution.
func (r *ckptRecorder) record(idx int, sub *mqo.SubProblem, global *mqo.Solution, sweeps int, deg *Degradation) {
	if r == nil {
		return
	}
	sel := make([]int, len(sub.Queries))
	for lq, q := range sub.Queries {
		sel[lq] = global.Selected[q]
	}
	sc := SubCheckpoint{Sub: idx, Selected: sel, Sweeps: sweeps}
	if deg != nil {
		d := *deg
		sc.Degraded = &d
	}
	r.cp.Done = append(r.cp.Done, sc)
	now := time.Now()
	if r.interval > 0 && !r.last.IsZero() && now.Sub(r.last) < r.interval {
		return
	}
	r.last = now
	r.fn(r.cp.Clone())
}

// resumeState is the finished-sub lookup of a resumed solve. Nil (no
// resume) is a valid receiver everywhere.
type resumeState struct {
	done map[int]*SubCheckpoint
}

// newResumeState validates cp against the freshly extracted sub-problems
// and indexes its finished subs. A mismatched checkpoint is an error, not
// a silent fresh solve: callers handing a checkpoint expect the replay
// semantics, and the serving layer only ever resumes checkpoints it minted
// for the same problem.
func newResumeState(subs []*mqo.SubProblem, opt Options) (*resumeState, error) {
	cp := opt.Resume
	if cp == nil {
		return nil, nil
	}
	if cp.Seed != opt.Seed {
		return nil, fmt.Errorf("core: checkpoint seed %d does not match solve seed %d", cp.Seed, opt.Seed)
	}
	if len(cp.QuerySets) != len(subs) {
		return nil, fmt.Errorf("core: checkpoint has %d partial problems, partitioning produced %d",
			len(cp.QuerySets), len(subs))
	}
	for i, qs := range cp.QuerySets {
		sorted := append([]int(nil), qs...)
		sort.Ints(sorted)
		if len(sorted) != len(subs[i].Queries) {
			return nil, fmt.Errorf("core: checkpoint sub %d covers %d queries, partitioning has %d",
				i, len(sorted), len(subs[i].Queries))
		}
		for k, q := range sorted {
			if q != subs[i].Queries[k] {
				return nil, fmt.Errorf("core: checkpoint sub %d query set diverges from partitioning", i)
			}
		}
	}
	rs := &resumeState{done: make(map[int]*SubCheckpoint, len(cp.Done))}
	for i := range cp.Done {
		sc := &cp.Done[i]
		if sc.Sub < 0 || sc.Sub >= len(subs) {
			return nil, fmt.Errorf("core: checkpoint finished sub %d out of range", sc.Sub)
		}
		rs.done[sc.Sub] = sc
	}
	return rs, nil
}

// sub returns the checkpoint record of partial problem i, nil when it must
// still be solved (nil-safe).
func (rs *resumeState) sub(i int) *SubCheckpoint {
	if rs == nil {
		return nil
	}
	return rs.done[i]
}

// resumePartition rebuilds the partitioning recorded in cp over p,
// skipping the annealer-backed recursive bisection entirely. Extraction is
// deterministic, so the sub-problems — Discarded lists, plan numbering,
// the derived DSS DAG — are identical to the interrupted run's.
func resumePartition(p *mqo.Problem, cp *Checkpoint) (*partition.Result, error) {
	if cp.Queries != p.NumQueries() || cp.Plans != p.NumPlans() {
		return nil, fmt.Errorf("core: checkpoint is for a %dq/%dp problem, got %dq/%dp",
			cp.Queries, cp.Plans, p.NumQueries(), p.NumPlans())
	}
	seen := make([]bool, p.NumQueries())
	covered := 0
	for i, qs := range cp.QuerySets {
		if len(qs) == 0 {
			return nil, fmt.Errorf("core: checkpoint sub %d covers no queries", i)
		}
		for _, q := range qs {
			if q < 0 || q >= len(seen) {
				return nil, fmt.Errorf("core: checkpoint query %d out of range", q)
			}
			if seen[q] {
				return nil, fmt.Errorf("core: checkpoint covers query %d twice", q)
			}
			seen[q] = true
			covered++
		}
	}
	if covered != p.NumQueries() {
		return nil, fmt.Errorf("core: checkpoint covers %d of %d queries", covered, p.NumQueries())
	}
	res := &partition.Result{
		SubProblems: make([]*mqo.SubProblem, len(cp.QuerySets)),
		QuerySets:   make([][]int, len(cp.QuerySets)),
	}
	var discardedTotal float64
	for i, qs := range cp.QuerySets {
		sub, err := mqo.Extract(p, qs)
		if err != nil {
			return nil, fmt.Errorf("core: re-extracting checkpoint sub %d: %w", i, err)
		}
		res.SubProblems[i] = sub
		res.QuerySets[i] = append([]int(nil), sub.Queries...)
		discardedTotal += sub.DiscardedMagnitude()
	}
	// Every boundary-crossing saving appears in exactly two sub-problems'
	// Discarded lists, so halving the magnitude sum restores the
	// partitioner's count-once total.
	res.DiscardedSavings = discardedTotal / 2
	return res, nil
}
