// Package core implements the paper's contribution: incremental
// quantum(-inspired) annealing for large-scale MQO. It combines the
// partitioning phase (internal/partition) with three processing strategies
// over the resulting partial problems:
//
//   - Incremental (Sec. 4.2, Algorithms 2 and 3): partial problems are
//     solved one after another; after each solve, dynamic search steering
//     (DSS) re-applies initially discarded savings by reducing the plan
//     costs of still-unsolved partial problems, steering their optimisation
//     towards the incumbent global solution. This is the paper's method.
//   - Parallel: partial problems are solved independently and merged —
//     faster, but blind to inter-partition savings.
//   - Default: the device's own large-problem handling (e.g. the DA's
//     vendor partitioning) on the unpartitioned QUBO.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
	"incranneal/internal/partition"
	"incranneal/internal/solvecache"
	"incranneal/internal/solver"
)

// Options configures an MQO solve.
type Options struct {
	// Device is the quantum(-inspired) annealer for the MQO phase.
	// Required.
	Device solver.Solver
	// PartitionSolver is the device for the partitioning phase's bisection
	// QUBOs; nil reuses Device (the paper's "multiple uses" of the same
	// annealer).
	PartitionSolver solver.Solver
	// Capacity overrides the partial-problem variable limit; zero uses the
	// device capacity (or leaves the problem unpartitioned for
	// capacity-free devices).
	Capacity int
	// Runs is the number of annealing runs per (partial) problem; zero
	// uses the device default (16 in the paper's setup).
	Runs int
	// TotalSweeps is the overall annealing iteration budget. The
	// incremental and parallel strategies divide it evenly across partial
	// problems so that the total matches an unpartitioned solve, as in the
	// paper's constant-budget comparisons. Zero uses device defaults per
	// partial problem.
	TotalSweeps int
	// Seed makes the full pipeline deterministic.
	Seed int64
	// PostProcessParses and MinPartFraction forward to
	// partition.Options; see there.
	PostProcessParses int
	MinPartFraction   float64
	// Parallelism bounds worker goroutines throughout the pipeline: it
	// caps concurrent partial-problem solves in the parallel strategy and
	// is forwarded to the device as Request.Parallelism, bounding its
	// run-level worker pool. Zero means GOMAXPROCS, negative forces
	// sequential execution. Any setting yields identical results.
	Parallelism int
	// DisableDSS turns dynamic search steering off in the incremental
	// strategy (ablation): partial problems are still processed
	// sequentially and merged, but discarded savings are never re-applied.
	DisableDSS bool
	// DisableDAG forces the incremental strategy's strictly sequential
	// chain (Algorithm 2 verbatim). By default the strategy schedules
	// partial problems over the DSS dependency DAG: sub-problems that share
	// no discarded savings are solved concurrently, with cost adjustments
	// applied at join points in a fixed order so results stay bit-identical
	// to the sequential chain.
	DisableDAG bool
	// DAGDensityThreshold is the DSS-DAG edge density (realised edges over
	// possible edges) above which the incremental strategy falls back to
	// the sequential chain — a dense graph serialises anyway, so the
	// scheduler would only add overhead. Zero means 0.5; a value >= 1 never
	// falls back.
	DAGDensityThreshold float64
	// FailFast restores the pre-degradation contract: a terminal device
	// failure aborts the solve with an error instead of completing the
	// affected partial problem by greedy repair. Also forwarded to the
	// partitioning phase (see partition.Options.FailFast).
	FailFast bool
	// Cache is the cross-solve cache (internal/solvecache): fingerprinted
	// partitionings, pooled encoding skeletons and warm-start incumbents,
	// shared by every solve handed the same handle. Nil disables
	// cross-solve reuse. Cache misses are bit-identical to running without
	// a cache, and a structure hit on bit-identical weights reproduces the
	// original cold solve exactly; a hit on *drifted* weights reuses the
	// shape-derived partitioning instead of re-bisecting under the new
	// weights — the cache's core trade, gated by the warm-start ablation
	// figure (mqobench -fig warm). Only the incremental strategy consults
	// the cache.
	Cache *solvecache.Cache
	// CheckpointFunc, when set, receives a consistent restart point after
	// partial-problem merges of a partitioned incremental solve (the only
	// checkpointable strategy; unpartitioned solves and the other
	// strategies never call it). Checkpoints are deep copies delivered
	// from the solve's serial merge path — the callback must not block for
	// long, but may retain them indefinitely. See Checkpoint.
	CheckpointFunc func(*Checkpoint)
	// CheckpointInterval throttles CheckpointFunc deliveries: at least
	// this much time passes between two calls (the first merge always
	// delivers). Zero delivers after every merge. Finished-sub state
	// accumulates regardless, so a throttled delivery is still complete.
	CheckpointInterval time.Duration
	// Resume restarts a partitioned incremental solve from a Checkpoint:
	// partitioning is rebuilt from the checkpoint's query sets (no
	// bisection runs), finished partial problems replay their recorded
	// selections instead of solving, and the remainder solve normally. The
	// resumed Outcome is bit-identical to the uninterrupted run (costs,
	// selections, sweeps, degradations — not wall-clock timings). The
	// checkpoint must come from the same problem, seed and capacity; a
	// mismatch fails the solve. Resume disables the cross-solve cache for
	// this solve, so a resumed run never picks up warm starts the
	// interrupted run did not have.
	Resume *Checkpoint
	// WarmStartDrift enables warm starts on structure-cache hits: when the
	// relative weight drift against the cached solve (solvecache.
	// WeightDrift) is positive and at most this bound, part of every
	// partial problem's annealing runs (solver.Request.WarmRuns) start
	// from the cached incumbent's plan selections instead of random
	// states. Zero disables warm starts. Exact recurrences (drift 0)
	// always run cold-seeded, so re-solving an identical problem stays
	// bit-identical to the first solve.
	WarmStartDrift float64
}

// Outcome reports a completed MQO solve.
type Outcome struct {
	// Solution is the complete, validated plan selection.
	Solution *mqo.Solution
	// Cost is the solution's total cost on the original problem.
	Cost float64
	// Strategy names the processing strategy used.
	Strategy string
	// NumPartitions is the number of partial problems processed (1 when
	// the problem fits the device directly).
	NumPartitions int
	// DiscardedSavings is the savings magnitude crossing partition
	// boundaries (0 without partitioning).
	DiscardedSavings float64
	// ReappliedSavings is the savings magnitude DSS re-applied through
	// plan-cost adjustments (incremental strategy only).
	ReappliedSavings float64
	// Sweeps is the total number of annealing iterations performed.
	Sweeps int
	// Elapsed is the wall-clock optimisation time.
	Elapsed time.Duration
	// Timings breaks Elapsed down by pipeline phase.
	Timings PhaseTimings
	// Degradations lists the partial problems whose device solves failed
	// terminally and were completed by greedy repair instead, in
	// partial-problem order. Empty for a fully-annealed solve; see
	// Options.FailFast to abort on failure instead.
	Degradations []Degradation
	// DAG describes the DSS dependency graph the incremental strategy
	// built over the partial problems, nil for the other strategies, for
	// unpartitioned solves, and under Options.DisableDAG.
	DAG *DAGStats
	// Cache reports the cross-solve cache's part in this solve; nil when
	// no cache was configured or the solve never reached the partitioned
	// incremental phase.
	Cache *CacheOutcome
}

// PhaseTimings attributes wall-clock time to the pipeline phases. For
// strategies that overlap phases (the incremental strategy materialises the
// next encoding while the device anneals the current one), the per-phase
// durations measure the work itself and may sum to more than Elapsed.
type PhaseTimings struct {
	// Partition is the partitioning phase (graph build, recursive bisection,
	// post-processing).
	Partition time.Duration
	// Encode covers QUBO skeleton preparation and every (re-)materialisation.
	Encode time.Duration
	// Anneal is device solve time.
	Anneal time.Duration
	// Decode covers sample decoding, repair, and solution merging.
	Decode time.Duration
	// DSS is the time spent in dynamic search steering passes (Algorithm 3):
	// scanning pending discarded savings and adjusting plan costs. Zero for
	// the parallel and default strategies, and under -dss=false.
	DSS time.Duration
}

// Total sums the per-phase durations.
func (t PhaseTimings) Total() time.Duration {
	return t.Partition + t.Encode + t.Anneal + t.Decode + t.DSS
}

func (o Options) capacity() int {
	if o.Capacity > 0 {
		return o.Capacity
	}
	if o.Device != nil {
		return o.Device.Capacity()
	}
	return 0
}

// needsPartitioning reports whether p exceeds the effective capacity.
func (o Options) needsPartitioning(p *mqo.Problem) bool {
	c := o.capacity()
	return c > 0 && p.NumPlans() > c
}

// partitionOptions assembles the partitioning phase's options; Partition
// and the cache-hit Refit path must run under the same settings so a refit
// re-bisection behaves exactly like a fresh one.
func (o Options) partitionOptions() partition.Options {
	ps := o.PartitionSolver
	if ps == nil {
		ps = o.Device
	}
	return partition.Options{
		Capacity:          o.capacity(),
		Solver:            ps,
		Runs:              o.Runs,
		Sweeps:            o.partitionSweeps(1, 0), // partitioning QUBOs are small; budget like one partition
		Seed:              o.Seed,
		PostProcessParses: o.PostProcessParses,
		MinPartFraction:   o.MinPartFraction,
		Parallelism:       o.Parallelism,
		FailFast:          o.FailFast,
	}
}

// partitionProblem runs the partitioning phase with o's settings.
func (o Options) partitionProblem(ctx context.Context, p *mqo.Problem) (*partition.Result, error) {
	return partition.Partition(ctx, p, o.partitionOptions())
}

// partitionSweeps returns the sweep budget of the i-th of n partial
// problems: TotalSweeps divided evenly, with the remainder distributed one
// sweep each over the first TotalSweeps mod n partitions so the per-partition
// budgets sum exactly to TotalSweeps (constant-budget comparisons previously
// ran up to n−1 sweeps under budget).
func (o Options) partitionSweeps(n, i int) int {
	if o.TotalSweeps <= 0 {
		return 0 // device default
	}
	if n < 1 {
		n = 1
	}
	s := o.TotalSweeps / n
	if i < o.TotalSweeps%n {
		s++
	}
	if s < 1 {
		s = 1
	}
	return s
}

// dagDensityThreshold resolves the configured fallback threshold.
func (o Options) dagDensityThreshold() float64 {
	if o.DAGDensityThreshold > 0 {
		return o.DAGDensityThreshold
	}
	return 0.5
}

// subTimings carries the per-phase durations of one partial-problem solve.
type subTimings struct {
	anneal, decode time.Duration
}

// solveEncoded solves one already-materialised encoding on the device and
// returns the lowest-cost decoded solution. Because DSS folds every saving
// towards already selected plans into the local costs, the best (adjusted)
// local cost is exactly the marginal cost w.r.t. the current total solution,
// implementing BestIntSol of Algorithm 2.
func solveEncoded(ctx context.Context, dev solver.Solver, enc *encoding.MQOEncoding, runs, sweeps int, seed int64, warm []int8, parallelism int) (*mqo.Solution, int, subTimings, error) {
	var st subTimings
	if err := solver.CheckCapacity(dev, enc.Model); err != nil {
		return nil, 0, st, err
	}
	sink := obs.FromContext(ctx)
	// The device solve is the "anneal" span of the request's trace; without
	// an enclosing span (direct Solve* calls, no trace) the same payload is
	// emitted as the historical flat event, so traces gain structure without
	// changing the un-traced event vocabulary.
	annealCtx, annealSpan := sink.StartSpan(ctx, "anneal")
	t0 := time.Now()
	res, err := dev.Solve(annealCtx, solver.Request{Model: enc.Model, Runs: runs, Sweeps: sweeps, Seed: seed, Parallelism: parallelism, Warm: warm})
	st.anneal = time.Since(t0)
	if err != nil {
		annealSpan.Attr("error", "device").End()
		return nil, 0, st, err
	}
	if sink.Enabled() {
		e := obs.Event{
			Name: "anneal", Device: dev.Name(), Label: obs.LabelFromContext(ctx),
			Dur: st.anneal, Sweeps: res.Sweeps, N: enc.Model.NumVariables(),
		}
		if annealSpan != nil {
			annealSpan.Attr("device", dev.Name()).EndWith(e)
		} else {
			sink.Emit(e)
		}
		if reg := sink.Metrics(); reg != nil {
			reg.Histogram("latency.anneal_ms").Observe(st.anneal.Seconds() * 1e3)
		}
	}
	t0 = time.Now()
	best, bestCost, repaired, err := bestDecoded(enc, res.Samples)
	st.decode = time.Since(t0)
	if err != nil {
		// Shape mismatches are pipeline bugs, not device outages: mark them
		// so the degradation paths re-raise instead of repairing them away.
		return nil, 0, st, &pipelineError{err}
	}
	if best == nil {
		// The device "succeeded" with zero samples (e.g. cancelled before
		// its first sweep, or a fault-injected empty result).
		return nil, res.Sweeps, st, fmt.Errorf("core: device %s returned no samples", dev.Name())
	}
	if sink.Enabled() {
		sink.EmitCtx(ctx, obs.Event{
			Name: "decode", Device: dev.Name(), Label: obs.LabelFromContext(ctx),
			Dur: st.decode, N: len(res.Samples), Extra: float64(repaired), Value: bestCost,
		})
		if reg := sink.Metrics(); reg != nil {
			reg.Counter("decode.samples").Add(float64(len(res.Samples)))
			reg.Counter("decode.repaired").Add(float64(repaired))
			reg.Histogram("latency.decode_ms").Observe(st.decode.Seconds() * 1e3)
		}
	}
	return best, res.Sweeps, st, nil
}

// bestDecoded scans the samples in order and returns the lowest-cost decoded
// solution on enc.Problem (first strictly-better sample wins, exactly like
// decoding every sample and comparing costs), materialising a Solution only
// when a sample improves on the incumbent. Valid samples — the common case —
// are costed directly from the selection bitset with the same float-operation
// order as Solution.Cost; only constraint-violating samples go through the
// repair path. All per-sample scratch is reused, so the loop is
// allocation-free apart from the winning solutions. The third return is the
// number of samples that needed repair (the invalid-sample rate metric).
func bestDecoded(enc *encoding.MQOEncoding, samples []solver.Sample) (*mqo.Solution, float64, int, error) {
	p := enc.Problem
	n := p.NumPlans()
	selected := make([]bool, n)
	chosen := make([]bool, n)
	cur := mqo.NewSolution(p)
	var best *mqo.Solution
	bestCost := 0.0
	repaired := 0
	for _, s := range samples {
		if len(s.Assignment) != n {
			return nil, 0, repaired, fmt.Errorf("core: sample has %d variables, problem has %d plans", len(s.Assignment), n)
		}
		for i, x := range s.Assignment {
			selected[i] = x != 0
		}
		valid := true
		var c float64
		for q := 0; q < p.NumQueries(); q++ {
			first, count := mqo.Unassigned, 0
			for _, pl := range p.Plans(q) {
				if selected[pl] {
					if count == 0 {
						first = pl
					}
					count++
				}
			}
			if count != 1 {
				valid = false
				break
			}
			cur.Selected[q] = first
			c += p.Cost(first)
		}
		if valid {
			for _, sv := range p.Savings() {
				if selected[sv.P1] && selected[sv.P2] {
					c -= sv.Value
				}
			}
		} else {
			repaired++
			mqo.RepairInto(p, selected, cur, chosen)
			c = cur.CostBuffered(p, selected)
		}
		if best == nil || c < bestCost {
			if best == nil {
				best = cur.Clone()
			} else {
				copy(best.Selected, cur.Selected)
			}
			bestCost = c
		}
	}
	return best, bestCost, repaired, nil
}

// finalize assembles an Outcome, validating the solution against p.
func finalize(p *mqo.Problem, sol *mqo.Solution, strategy string, start time.Time) (*Outcome, error) {
	if err := sol.Validate(p); err != nil {
		return nil, fmt.Errorf("core: %s produced invalid solution: %w", strategy, err)
	}
	if !sol.Complete() {
		return nil, fmt.Errorf("core: %s produced incomplete solution", strategy)
	}
	return &Outcome{
		Solution: sol,
		Cost:     sol.Cost(p),
		Strategy: strategy,
		Elapsed:  time.Since(start),
	}, nil
}

func parallelism(o Options) int {
	return solver.Workers(o.Parallelism)
}

// splitWorkers divides a worker budget over n concurrent device solves,
// distributing the remainder one worker each over the first budget mod n
// solves (the partitionSweeps discipline) so the shares sum exactly to the
// budget whenever n <= workers. Shares that would round to zero become -1 —
// the solver.Workers encoding for "sequential" — and boundedGroup's
// concurrency cap keeps the goroutine total at the budget in that regime
// too. Results never depend on the split: per-run seeds are pre-derived.
func splitWorkers(workers, n int) []int {
	if n < 1 {
		return nil
	}
	share := make([]int, n)
	q, r := workers/n, workers%n
	for i := range share {
		w := q
		if i < r {
			w++
		}
		if w < 1 {
			w = -1 // sequential runs inside this solve
		}
		share[i] = w
	}
	return share
}

// boundedGroup runs fns with at most limit concurrent goroutines and
// returns the first error.
func boundedGroup(limit int, fns []func() error) error {
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, fn := range fns {
		fn := fn
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}
