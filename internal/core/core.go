// Package core implements the paper's contribution: incremental
// quantum(-inspired) annealing for large-scale MQO. It combines the
// partitioning phase (internal/partition) with three processing strategies
// over the resulting partial problems:
//
//   - Incremental (Sec. 4.2, Algorithms 2 and 3): partial problems are
//     solved one after another; after each solve, dynamic search steering
//     (DSS) re-applies initially discarded savings by reducing the plan
//     costs of still-unsolved partial problems, steering their optimisation
//     towards the incumbent global solution. This is the paper's method.
//   - Parallel: partial problems are solved independently and merged —
//     faster, but blind to inter-partition savings.
//   - Default: the device's own large-problem handling (e.g. the DA's
//     vendor partitioning) on the unpartitioned QUBO.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/partition"
	"incranneal/internal/solver"
)

// Options configures an MQO solve.
type Options struct {
	// Device is the quantum(-inspired) annealer for the MQO phase.
	// Required.
	Device solver.Solver
	// PartitionSolver is the device for the partitioning phase's bisection
	// QUBOs; nil reuses Device (the paper's "multiple uses" of the same
	// annealer).
	PartitionSolver solver.Solver
	// Capacity overrides the partial-problem variable limit; zero uses the
	// device capacity (or leaves the problem unpartitioned for
	// capacity-free devices).
	Capacity int
	// Runs is the number of annealing runs per (partial) problem; zero
	// uses the device default (16 in the paper's setup).
	Runs int
	// TotalSweeps is the overall annealing iteration budget. The
	// incremental and parallel strategies divide it evenly across partial
	// problems so that the total matches an unpartitioned solve, as in the
	// paper's constant-budget comparisons. Zero uses device defaults per
	// partial problem.
	TotalSweeps int
	// Seed makes the full pipeline deterministic.
	Seed int64
	// PostProcessParses and MinPartFraction forward to
	// partition.Options; see there.
	PostProcessParses int
	MinPartFraction   float64
	// Parallelism bounds worker goroutines throughout the pipeline: it
	// caps concurrent partial-problem solves in the parallel strategy and
	// is forwarded to the device as Request.Parallelism, bounding its
	// run-level worker pool. Zero means GOMAXPROCS, negative forces
	// sequential execution. Any setting yields identical results.
	Parallelism int
	// DisableDSS turns dynamic search steering off in the incremental
	// strategy (ablation): partial problems are still processed
	// sequentially and merged, but discarded savings are never re-applied.
	DisableDSS bool
}

// Outcome reports a completed MQO solve.
type Outcome struct {
	// Solution is the complete, validated plan selection.
	Solution *mqo.Solution
	// Cost is the solution's total cost on the original problem.
	Cost float64
	// Strategy names the processing strategy used.
	Strategy string
	// NumPartitions is the number of partial problems processed (1 when
	// the problem fits the device directly).
	NumPartitions int
	// DiscardedSavings is the savings magnitude crossing partition
	// boundaries (0 without partitioning).
	DiscardedSavings float64
	// ReappliedSavings is the savings magnitude DSS re-applied through
	// plan-cost adjustments (incremental strategy only).
	ReappliedSavings float64
	// Sweeps is the total number of annealing iterations performed.
	Sweeps int
	// Elapsed is the wall-clock optimisation time.
	Elapsed time.Duration
}

func (o Options) capacity() int {
	if o.Capacity > 0 {
		return o.Capacity
	}
	if o.Device != nil {
		return o.Device.Capacity()
	}
	return 0
}

// needsPartitioning reports whether p exceeds the effective capacity.
func (o Options) needsPartitioning(p *mqo.Problem) bool {
	c := o.capacity()
	return c > 0 && p.NumPlans() > c
}

// partitionProblem runs the partitioning phase with o's settings.
func (o Options) partitionProblem(ctx context.Context, p *mqo.Problem) (*partition.Result, error) {
	ps := o.PartitionSolver
	if ps == nil {
		ps = o.Device
	}
	return partition.Partition(ctx, p, partition.Options{
		Capacity:          o.capacity(),
		Solver:            ps,
		Runs:              o.Runs,
		Sweeps:            o.perPartitionSweeps(1), // partitioning QUBOs are small; budget like one partition
		Seed:              o.Seed,
		PostProcessParses: o.PostProcessParses,
		MinPartFraction:   o.MinPartFraction,
		Parallelism:       o.Parallelism,
	})
}

// perPartitionSweeps divides the total budget across n partial problems.
func (o Options) perPartitionSweeps(n int) int {
	if o.TotalSweeps <= 0 {
		return 0 // device default
	}
	if n < 1 {
		n = 1
	}
	s := o.TotalSweeps / n
	if s < 1 {
		s = 1
	}
	return s
}

// solveSub encodes and solves one partial problem on the device and
// returns its samples decoded into valid local solutions.
func solveSub(ctx context.Context, dev solver.Solver, sub *mqo.SubProblem, runs, sweeps int, seed int64, parallelism int) ([]*mqo.Solution, int, error) {
	enc, err := encoding.EncodeMQO(sub.Local)
	if err != nil {
		return nil, 0, err
	}
	if err := solver.CheckCapacity(dev, enc.Model); err != nil {
		return nil, 0, err
	}
	res, err := dev.Solve(ctx, solver.Request{Model: enc.Model, Runs: runs, Sweeps: sweeps, Seed: seed, Parallelism: parallelism})
	if err != nil {
		return nil, 0, err
	}
	sols := make([]*mqo.Solution, 0, len(res.Samples))
	for _, s := range res.Samples {
		sol, err := enc.Decode(s.Assignment)
		if err != nil {
			return nil, 0, err
		}
		sols = append(sols, sol)
	}
	return sols, res.Sweeps, nil
}

// bestLocal returns the decoded sample with the lowest cost on the (DSS
// adjusted) local problem. Because DSS folds every saving towards already
// selected plans into the local costs, the adjusted local cost is exactly
// the marginal cost w.r.t. the current total solution, implementing
// BestIntSol of Algorithm 2.
func bestLocal(sub *mqo.SubProblem, sols []*mqo.Solution) (*mqo.Solution, float64) {
	var best *mqo.Solution
	bestCost := 0.0
	for _, s := range sols {
		c := s.Cost(sub.Local)
		if best == nil || c < bestCost {
			best, bestCost = s, c
		}
	}
	return best, bestCost
}

// finalize assembles an Outcome, validating the solution against p.
func finalize(p *mqo.Problem, sol *mqo.Solution, strategy string, start time.Time) (*Outcome, error) {
	if err := sol.Validate(p); err != nil {
		return nil, fmt.Errorf("core: %s produced invalid solution: %w", strategy, err)
	}
	if !sol.Complete() {
		return nil, fmt.Errorf("core: %s produced incomplete solution", strategy)
	}
	return &Outcome{
		Solution: sol,
		Cost:     sol.Cost(p),
		Strategy: strategy,
		Elapsed:  time.Since(start),
	}, nil
}

func parallelism(o Options) int {
	return solver.Workers(o.Parallelism)
}

// boundedGroup runs fns with at most limit concurrent goroutines and
// returns the first error.
func boundedGroup(limit int, fns []func() error) error {
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, fn := range fns {
		fn := fn
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}
