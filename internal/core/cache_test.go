package core

import (
	"context"
	"math/rand"
	"testing"

	"incranneal/internal/da"
	"incranneal/internal/mqo"
	"incranneal/internal/solvecache"
	"incranneal/internal/workload"
)

func cacheTestProblem(t *testing.T) *mqo.Problem {
	t.Helper()
	in, err := workload.GenerateSweep(workload.SweepConfig{
		Queries: 32, PPQ: 3, Communities: 4,
		DensityLow: 0.05, DensityHigh: 0.8, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in.Problem
}

func cacheTestOptions(cache *solvecache.Cache, warmDrift float64) Options {
	return Options{
		Device:         &da.Solver{CapacityVars: 40},
		Capacity:       40,
		Runs:           4,
		TotalSweeps:    600,
		Seed:           17,
		Parallelism:    -1,
		Cache:          cache,
		WarmStartDrift: warmDrift,
	}
}

// driftProblem jitters every weight of p by up to ±rel, preserving the
// structure (zero savings stay zero).
func driftProblem(t *testing.T, p *mqo.Problem, rel float64, seed int64) *mqo.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	jitter := func(v float64) float64 { return v * (1 + rel*(2*rng.Float64()-1)) }
	costs := make([][]float64, p.NumQueries())
	for q := range costs {
		row := make([]float64, len(p.Plans(q)))
		for i, pl := range p.Plans(q) {
			row[i] = jitter(p.Cost(pl))
		}
		costs[q] = row
	}
	savings := append([]mqo.Saving(nil), p.Savings()...)
	for i := range savings {
		if savings[i].Value != 0 {
			savings[i].Value = jitter(savings[i].Value)
		}
	}
	np, err := mqo.NewProblem(costs, savings)
	if err != nil {
		t.Fatal(err)
	}
	return np
}

func assertValidSolution(t *testing.T, p *mqo.Problem, out *Outcome) {
	t.Helper()
	if len(out.Solution.Selected) != p.NumQueries() {
		t.Fatalf("solution covers %d of %d queries", len(out.Solution.Selected), p.NumQueries())
	}
	for q, pl := range out.Solution.Selected {
		if pl == mqo.Unassigned || p.QueryOf(pl) != q {
			t.Fatalf("query %d selects invalid plan %d", q, pl)
		}
	}
}

// TestCacheHitBitIdentical pins the structure-hit contract: re-solving the
// exact same problem against a primed cache — even with warm starts enabled
// — skips partitioning and rebinds skeletons but produces a bit-identical
// outcome, because drift 0 deliberately keeps annealing cold-seeded.
func TestCacheHitBitIdentical(t *testing.T) {
	ctx := context.Background()
	p := cacheTestProblem(t)

	cold, err := SolveIncremental(ctx, p, cacheTestOptions(nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	if cold.NumPartitions < 2 {
		t.Fatalf("instance not partitioned (%d partitions); the test needs the incremental path", cold.NumPartitions)
	}

	cache := solvecache.New(0)
	prime, err := SolveIncremental(ctx, p, cacheTestOptions(cache, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if prime.Cache == nil || prime.Cache.StructureHit {
		t.Fatalf("priming solve misreported its cache outcome: %+v", prime.Cache)
	}
	if prime.Cost != cold.Cost {
		t.Fatalf("cache-enabled miss diverged from cold: %v vs %v", prime.Cost, cold.Cost)
	}

	hit, err := SolveIncremental(ctx, p, cacheTestOptions(cache, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if hit.Cache == nil || !hit.Cache.StructureHit {
		t.Fatalf("second identical solve missed: %+v", hit.Cache)
	}
	if hit.Cache.WarmStart || hit.Cache.Drift != 0 {
		t.Fatalf("zero-drift hit engaged warm starts: %+v", hit.Cache)
	}
	if hit.Cache.SkeletonHits == 0 {
		t.Fatalf("no skeletons rebound on a structure hit: %+v", hit.Cache)
	}
	if hit.Cost != cold.Cost {
		t.Fatalf("structure-hit cost %v differs from cold %v", hit.Cost, cold.Cost)
	}
	for q, pl := range hit.Solution.Selected {
		if pl != cold.Solution.Selected[q] {
			t.Fatalf("query %d: hit selects plan %d, cold %d", q, pl, cold.Solution.Selected[q])
		}
	}
	if s := cache.Stats(); s.StructureHits != 1 || s.StructureMisses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", s)
	}
}

// TestWarmStartOnDrift drives the warm tier: a drifted recurrence within the
// bound seeds annealing from the cached incumbent and still produces a valid
// complete solution; drift beyond the bound keeps the solve cold-seeded.
func TestWarmStartOnDrift(t *testing.T) {
	ctx := context.Background()
	p := cacheTestProblem(t)
	cache := solvecache.New(0)
	if _, err := SolveIncremental(ctx, p, cacheTestOptions(cache, 0.2)); err != nil {
		t.Fatal(err)
	}
	dp := driftProblem(t, p, 0.05, 99)

	warm, err := SolveIncremental(ctx, dp, cacheTestOptions(cache, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache == nil || !warm.Cache.StructureHit {
		t.Fatalf("drifted recurrence missed the structure tier: %+v", warm.Cache)
	}
	if !warm.Cache.WarmStart {
		t.Fatalf("drift %v within bound did not warm-start", warm.Cache.Drift)
	}
	if warm.Cache.Drift <= 0 || warm.Cache.Drift > 0.2 {
		t.Fatalf("reported drift %v outside (0, 0.2]", warm.Cache.Drift)
	}
	assertValidSolution(t, dp, warm)
	if s := cache.Stats(); s.WarmStarts != 1 {
		t.Fatalf("warm starts = %d, want 1", s.WarmStarts)
	}

	// Re-prime with the base problem, then bound the drift below the actual
	// drift: the hit must stay cold-seeded.
	cache2 := solvecache.New(0)
	if _, err := SolveIncremental(ctx, p, cacheTestOptions(cache2, 0)); err != nil {
		t.Fatal(err)
	}
	bounded, err := SolveIncremental(ctx, dp, cacheTestOptions(cache2, 1e-9))
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Cache == nil || !bounded.Cache.StructureHit {
		t.Fatalf("bounded solve missed the structure tier: %+v", bounded.Cache)
	}
	if bounded.Cache.WarmStart {
		t.Fatalf("drift %v beyond the bound still warm-started", bounded.Cache.Drift)
	}
}

// TestSessionApplyDelta covers the delta API end-to-end: a session's cached
// state migrates to the delta'd problem, the derived session solves it, and
// the migrated entry produces a structure hit (only the touched region would
// re-partition).
func TestSessionApplyDelta(t *testing.T) {
	ctx := context.Background()
	p := cacheTestProblem(t)
	cache := solvecache.New(0)
	opt := cacheTestOptions(cache, 0.5)

	s1 := NewSession(p, opt)
	out1, err := s1.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertValidSolution(t, p, out1)

	// Bump one plan cost and attach a new query to plan 0's saving mass.
	d := mqo.Delta{
		SetCosts: map[int]float64{0: p.Cost(0) * 1.1},
		AddQueries: []mqo.AddedQuery{{
			PlanCosts: []float64{5, 7, 9},
			Savings:   []mqo.Saving{{P1: 0, P2: 0, Value: 2}},
		}},
	}
	s2, err := s1.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	np := s2.Problem()
	if np.NumQueries() != p.NumQueries()+1 {
		t.Fatalf("delta'd problem has %d queries, want %d", np.NumQueries(), p.NumQueries()+1)
	}
	if st := cache.Stats(); st.DeltaMigrations != 1 {
		t.Fatalf("delta migrations = %d, want 1", st.DeltaMigrations)
	}
	// The receiver is unaffected and can still derive further sessions.
	if s1.Problem() != p {
		t.Fatal("ApplyDelta mutated the receiver's problem")
	}

	out2, err := s2.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertValidSolution(t, np, out2)
	if out2.Cache == nil || !out2.Cache.StructureHit {
		t.Fatalf("migrated entry did not hit: %+v", out2.Cache)
	}

	// Later epochs over the same delta'd structure are plain zero-drift
	// recurrences: they hit the migrated entry and stay cold-seeded, so two
	// of them must be bit-identical to each other. (They legitimately differ
	// from an uncached solve of the delta'd problem: the migrated
	// partitioning re-bisects only the touched region, a fresh Partition
	// starts from scratch.)
	s3 := NewSession(np, opt)
	out3, err := s3.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out3.Cache == nil || !out3.Cache.StructureHit {
		t.Fatalf("recurrence after delta missed: %+v", out3.Cache)
	}
	if out3.Cache.WarmStart {
		t.Fatalf("zero-drift recurrence warm-started: %+v", out3.Cache)
	}
	out4, err := NewSession(np, opt).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out4.Cost != out3.Cost {
		t.Fatalf("zero-drift recurrences diverged: %v vs %v", out4.Cost, out3.Cost)
	}
	for q, pl := range out4.Solution.Selected {
		if pl != out3.Solution.Selected[q] {
			t.Fatalf("query %d: recurrences select plans %d vs %d", q, pl, out3.Solution.Selected[q])
		}
	}
}

// TestApplyDeltaErrors: an invalid delta surfaces the mqo error and derives
// no session.
func TestApplyDeltaErrors(t *testing.T) {
	p := mqo.PaperExample()
	s := NewSession(p, Options{Device: &da.Solver{CapacityVars: 64}, Runs: 2, TotalSweeps: 100, Seed: 1})
	if _, err := s.ApplyDelta(mqo.Delta{RemoveQueries: []int{99}}); err == nil {
		t.Fatal("out-of-range removal accepted")
	}
	if _, err := s.ApplyDelta(mqo.Delta{RemoveQueries: []int{0, 1, 2, 3}}); err == nil {
		t.Fatal("remove-everything delta accepted")
	}
}
