package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"incranneal/internal/da"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
	"incranneal/internal/solver"
	"incranneal/internal/workload"
)

// dagTestInstance builds the canonical sparse-DAG fixture: 8 communities in
// the stride topology (0,4) (1,5) (2,6) (3,7), so the DSS dependency DAG
// has 4 edges, density 4/28, two waves of width 4.
func dagTestInstance(t testing.TB) *workload.DAGInstance {
	t.Helper()
	in, err := workload.GenerateDAGSweep(workload.DAGSweepConfig{
		Queries: 48, PPQ: 3, Communities: 8,
		IntraDensity: 0.4, CrossDensity: 0.25, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func dagTestOptions() Options {
	return Options{
		Device:      &da.Solver{CapacityVars: 64},
		Runs:        4,
		TotalSweeps: 2000,
		Seed:        17,
	}
}

// freshSubs re-extracts the partial problems; DSS consumes adjusted costs,
// so every solve needs its own set.
func freshSubs(t testing.TB, in *workload.DAGInstance) []*mqo.SubProblem {
	t.Helper()
	subs, err := in.SubProblems()
	if err != nil {
		t.Fatal(err)
	}
	return subs
}

// TestBuildDSSDAG pins the graph construction on a handcrafted instance:
// edges point low→high exactly where discarded savings couple two subs, and
// the wave decomposition is the topological depth grouping.
func TestBuildDSSDAG(t *testing.T) {
	// 6 queries x 1 plan; subs {0,1} {2,3} {4,5}. Savings couple sub0 with
	// both others; sub1 and sub2 are independent of each other.
	costs := make([][]float64, 6)
	for i := range costs {
		costs[i] = []float64{10}
	}
	p, err := mqo.NewProblem(costs, []mqo.Saving{
		{P1: 0, P2: 2, Value: 1},
		{P1: 0, P2: 4, Value: 1},
		{P1: 1, P2: 4, Value: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	var subs []*mqo.SubProblem
	for _, qs := range [][]int{{0, 1}, {2, 3}, {4, 5}} {
		sub, err := mqo.Extract(p, qs)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	d := buildDSSDAG(p, subs, false)
	if d.edges != 2 {
		t.Errorf("edges = %d, want 2", d.edges)
	}
	wantPreds := [][]int{nil, {0}, {0}}
	for j, want := range wantPreds {
		if fmt.Sprint(d.preds[j]) != fmt.Sprint(want) {
			t.Errorf("preds[%d] = %v, want %v", j, d.preds[j], want)
		}
	}
	if len(d.waves) != 2 || fmt.Sprint(d.waves[0]) != "[0]" || fmt.Sprint(d.waves[1]) != "[1 2]" {
		t.Errorf("waves = %v, want [[0] [1 2]]", d.waves)
	}
	if d.width != 2 {
		t.Errorf("width = %d, want 2", d.width)
	}
	if want := 2.0 / 3.0; d.density != want {
		t.Errorf("density = %v, want %v", d.density, want)
	}
	// The DisableDSS ablation schedules everything in one maximally wide
	// wave: no savings will be re-applied, so there are no dependencies.
	e := buildDSSDAG(p, subs, true)
	if e.edges != 0 || len(e.waves) != 1 || len(e.waves[0]) != 3 {
		t.Errorf("edgeless DAG = edges %d waves %v, want 0 edges, one wave of 3", e.edges, e.waves)
	}
}

// TestDAGMatchesSequentialSparse is the tentpole's equivalence guarantee:
// on a sparse dependency DAG the wave schedule must reproduce the
// sequential chain bit for bit — cost, plan selections, re-applied savings
// and sweep totals — at every Parallelism setting.
func TestDAGMatchesSequentialSparse(t *testing.T) {
	ctx := context.Background()
	in := dagTestInstance(t)
	opt := dagTestOptions()

	ref := func() *Outcome {
		o := opt
		o.DisableDAG = true
		o.Parallelism = -1
		out, err := IncrementalOverSubProblems(ctx, in.Problem, freshSubs(t, in), o)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}()
	if ref.DAG != nil {
		t.Errorf("DisableDAG outcome reports DAG stats: %+v", ref.DAG)
	}
	if ref.ReappliedSavings <= 0 {
		t.Fatal("fixture re-applies no savings; the equivalence test would be vacuous")
	}

	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		o := opt
		o.Parallelism = par
		out, err := IncrementalOverSubProblems(ctx, in.Problem, freshSubs(t, in), o)
		if err != nil {
			t.Fatal(err)
		}
		if out.DAG == nil {
			t.Fatalf("Parallelism=%d: no DAG stats on the DAG path", par)
		}
		if out.DAG.Fallback {
			t.Fatalf("Parallelism=%d: sparse DAG (density %v) fell back to sequential", par, out.DAG.Density)
		}
		if out.DAG.Nodes != 8 || out.DAG.Edges != 4 || out.DAG.Waves != 2 || out.DAG.Width != 4 {
			t.Errorf("Parallelism=%d: DAG stats %+v, want 8 nodes, 4 edges, 2 waves, width 4", par, out.DAG)
		}
		if out.Cost != ref.Cost {
			t.Errorf("Parallelism=%d: cost %v, sequential %v", par, out.Cost, ref.Cost)
		}
		if out.ReappliedSavings != ref.ReappliedSavings {
			t.Errorf("Parallelism=%d: reapplied %v, sequential %v", par, out.ReappliedSavings, ref.ReappliedSavings)
		}
		if out.Sweeps != ref.Sweeps {
			t.Errorf("Parallelism=%d: sweeps %d, sequential %d", par, out.Sweeps, ref.Sweeps)
		}
		for q, pl := range out.Solution.Selected {
			if pl != ref.Solution.Selected[q] {
				t.Errorf("Parallelism=%d: query %d selects plan %d, sequential %d", par, q, pl, ref.Solution.Selected[q])
				break
			}
		}
	}
}

// TestDAGDenseFallback pins the density heuristic: a complete dependency
// graph exceeds the default threshold and runs the sequential chain, while
// raising the threshold schedules it as a (serial) DAG with identical
// results — multi-predecessor joins included.
func TestDAGDenseFallback(t *testing.T) {
	ctx := context.Background()
	in, err := workload.GenerateDAGSweep(workload.DAGSweepConfig{
		Queries: 24, PPQ: 3, Communities: 4,
		IntraDensity: 0.4, CrossDensity: 0.3,
		CommunityPairs: [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := dagTestOptions()
	opt.Parallelism = 4

	out, err := IncrementalOverSubProblems(ctx, in.Problem, freshSubs(t, in), opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.DAG == nil || !out.DAG.Fallback {
		t.Fatalf("complete dependency graph did not fall back: %+v", out.DAG)
	}
	if out.DAG.Density != 1 {
		t.Errorf("density = %v, want 1", out.DAG.Density)
	}

	// Threshold >= 1 forces the schedule; the chain graph serialises into 4
	// singleton waves and must still match the sequential result exactly.
	forced := opt
	forced.DAGDensityThreshold = 1
	fOut, err := IncrementalOverSubProblems(ctx, in.Problem, freshSubs(t, in), forced)
	if err != nil {
		t.Fatal(err)
	}
	if fOut.DAG == nil || fOut.DAG.Fallback {
		t.Fatalf("threshold 1 still fell back: %+v", fOut.DAG)
	}
	if fOut.DAG.Waves != 4 || fOut.DAG.Width != 1 {
		t.Errorf("complete graph waves/width = %d/%d, want 4/1", fOut.DAG.Waves, fOut.DAG.Width)
	}
	if fOut.Cost != out.Cost || fOut.ReappliedSavings != out.ReappliedSavings {
		t.Errorf("forced DAG: cost %v reapplied %v, sequential %v / %v", fOut.Cost, fOut.ReappliedSavings, out.Cost, out.ReappliedSavings)
	}
	for q, pl := range fOut.Solution.Selected {
		if pl != out.Solution.Selected[q] {
			t.Errorf("forced DAG: query %d selects plan %d, sequential %d", q, pl, out.Solution.Selected[q])
			break
		}
	}
}

// seedFailSolver fails exactly the solve whose request seed matches. The
// incremental phase derives a unique seed per partial problem, so the
// failure hits one specific sub-problem no matter how the scheduler
// interleaves dispatches — a deterministic fault under concurrency, unlike
// faultinject's counter-based schedules.
type seedFailSolver struct {
	solver.Solver
	failSeed int64
}

func (s *seedFailSolver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	if req.Seed == s.failSeed {
		return nil, errors.New("injected: device offline for this partial problem")
	}
	return s.Solver.Solve(ctx, req)
}

// TestDAGFaultDeterminism pins graceful degradation under the wave
// schedule: a terminal failure of one mid-wave partial problem degrades
// exactly that sub, and the outcome is bit-identical across Parallelism
// settings and to the sequential chain (the greedy repair runs on the same
// DSS-adjusted costs either way).
func TestDAGFaultDeterminism(t *testing.T) {
	ctx := context.Background()
	in := dagTestInstance(t)
	opt := dagTestOptions()
	const target = 5 // wave-1 node (pred: sub 1) in the stride topology
	opt.Device = &seedFailSolver{
		Solver:   &da.Solver{CapacityVars: 64},
		failSeed: opt.Seed + int64(1000+target),
	}

	var ref *Outcome
	for _, tc := range []struct {
		name       string
		par        int
		disableDAG bool
	}{
		{"seq", -1, true},
		{"dag-par1", 1, false},
		{"dag-par4", 4, false},
		{"dag-par4-again", 4, false},
		{"dag-par0", 0, false},
	} {
		o := opt
		o.Parallelism = tc.par
		o.DisableDAG = tc.disableDAG
		out, err := IncrementalOverSubProblems(ctx, in.Problem, freshSubs(t, in), o)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(out.Degradations) != 1 || out.Degradations[0].Sub != target {
			t.Fatalf("%s: degradations = %+v, want exactly sub %d", tc.name, out.Degradations, target)
		}
		if ref == nil {
			ref = out
			continue
		}
		if out.Cost != ref.Cost {
			t.Errorf("%s: cost %v, want %v", tc.name, out.Cost, ref.Cost)
		}
		if out.ReappliedSavings != ref.ReappliedSavings {
			t.Errorf("%s: reapplied %v, want %v", tc.name, out.ReappliedSavings, ref.ReappliedSavings)
		}
		for q, pl := range out.Solution.Selected {
			if pl != ref.Solution.Selected[q] {
				t.Errorf("%s: query %d selects plan %d, want %d", tc.name, q, pl, ref.Solution.Selected[q])
				break
			}
		}
	}

	// FailFast still aborts, whichever wave the failure lands in.
	o := opt
	o.Parallelism = 4
	o.FailFast = true
	if _, err := IncrementalOverSubProblems(ctx, in.Problem, freshSubs(t, in), o); err == nil {
		t.Fatal("FailFast swallowed a terminal mid-wave failure")
	}
}

// TestDAGObsEvents verifies the scheduler's instrumentation: the dag/wave/
// join event stream, per-sub merge events, and the dag.* gauges — and that
// observing the solve does not perturb its result.
func TestDAGObsEvents(t *testing.T) {
	ctx := context.Background()
	in := dagTestInstance(t)
	opt := dagTestOptions()
	opt.Parallelism = 4

	bare, err := IncrementalOverSubProblems(ctx, in.Problem, freshSubs(t, in), opt)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sink := obs.NewCollector(reg)
	out, err := IncrementalOverSubProblems(obs.NewContext(ctx, sink), in.Problem, freshSubs(t, in), opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cost != bare.Cost {
		t.Errorf("observed cost %v, unobserved %v", out.Cost, bare.Cost)
	}
	counts := map[string]int{}
	var dagEvent obs.Event
	for _, e := range sink.Events() {
		counts[e.Name]++
		if e.Name == "dag" {
			dagEvent = e
		}
	}
	if counts["dag"] != 1 || dagEvent.Label != "scheduled" {
		t.Errorf("dag events = %d (label %q), want one 'scheduled'", counts["dag"], dagEvent.Label)
	}
	if dagEvent.N != out.DAG.Edges || dagEvent.Run != out.DAG.Waves {
		t.Errorf("dag event N/Run = %d/%d, want %d/%d", dagEvent.N, dagEvent.Run, out.DAG.Edges, out.DAG.Waves)
	}
	if counts["wave"] != out.DAG.Waves {
		t.Errorf("wave events = %d, want %d", counts["wave"], out.DAG.Waves)
	}
	if counts["merge"] != out.NumPartitions {
		t.Errorf("merge events = %d, want %d", counts["merge"], out.NumPartitions)
	}
	if out.ReappliedSavings > 0 && counts["join"] == 0 {
		t.Error("savings re-applied but no join events")
	}
	if got := reg.Gauge("dag.waves").Value(); got != float64(out.DAG.Waves) {
		t.Errorf("dag.waves gauge = %v, want %d", got, out.DAG.Waves)
	}
	if got := reg.Gauge("dag.width").Value(); got != float64(out.DAG.Width) {
		t.Errorf("dag.width gauge = %v, want %d", got, out.DAG.Width)
	}
	if got := reg.Gauge("dag.critical_path").Value(); got != float64(out.DAG.Waves) {
		t.Errorf("dag.critical_path gauge = %v, want %d", got, out.DAG.Waves)
	}
}

// TestSplitWorkers pins the two-level worker-budget split: remainders are
// distributed like partitionSweeps (first budget mod n shares get one
// extra), shares sum exactly to the budget when it covers every solve, and
// starved shares become the sequential marker instead of zero.
func TestSplitWorkers(t *testing.T) {
	cases := []struct {
		workers, n int
		want       []int
	}{
		{6, 4, []int{2, 2, 1, 1}},
		{8, 2, []int{4, 4}},
		{5, 4, []int{2, 1, 1, 1}},
		{4, 4, []int{1, 1, 1, 1}},
		{3, 4, []int{1, 1, 1, -1}},
		{1, 3, []int{1, -1, -1}},
		{2, 8, []int{1, 1, -1, -1, -1, -1, -1, -1}},
	}
	for _, c := range cases {
		got := splitWorkers(c.workers, c.n)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("splitWorkers(%d, %d) = %v, want %v", c.workers, c.n, got, c.want)
		}
		// Total bound: with boundedGroup capping concurrent solves at
		// workers, the run-pool goroutines of concurrently running solves
		// never exceed the budget. Shares of -1 count as one worker.
		if c.n <= c.workers {
			sum := 0
			for _, w := range got {
				if w < 1 {
					t.Errorf("splitWorkers(%d, %d): share %d below 1 with budget covering all solves", c.workers, c.n, w)
				}
				sum += w
			}
			if sum != c.workers {
				t.Errorf("splitWorkers(%d, %d) sums to %d, want %d", c.workers, c.n, sum, c.workers)
			}
		} else {
			for _, w := range got {
				if w != 1 && w != -1 {
					t.Errorf("splitWorkers(%d, %d): starved share %d, want 1 or -1", c.workers, c.n, w)
				}
			}
		}
	}
	if got := splitWorkers(4, 0); got != nil {
		t.Errorf("splitWorkers(4, 0) = %v, want nil", got)
	}
}
