package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"incranneal/internal/mqo"
	"incranneal/internal/obs"
)

// Strategy names accepted by Session.Strategy.
const (
	StrategyIncremental = "incremental"
	StrategyParallel    = "parallel"
	StrategyDefault     = "default"
)

// Incumbent is one point of an in-progress solve's global-solution
// trajectory: the cost of the incumbent total solution after a partial
// problem merged. The incremental strategy emits one Incumbent per partial
// problem (its "merge" trace events carry exactly this data); every
// strategy additionally emits one final Incumbent when the solve
// completes. Because the incumbent covers only the queries merged so far,
// its Cost grows with Merged — the trajectory tracks coverage, not descent.
type Incumbent struct {
	// Sub is the index of the partial problem that just merged, or -1
	// when the point is not tied to one (final points, unpartitioned
	// solves).
	Sub int
	// Merged counts the partial problems merged into the incumbent so
	// far (equal to Outcome.NumPartitions on the final point).
	Merged int
	// Cost is the incumbent global solution's cost over the merged
	// queries.
	Cost float64
	// Elapsed is the time since the session started.
	Elapsed time.Duration
	// Final marks the synthetic completion point carrying the finished
	// Outcome's cost.
	Final bool
}

// Session is the problem-lifecycle object behind a single MQO solve:
// construct it with a problem and options, Start it, consume the incumbent
// stream while the solve progresses, and Wait for the final Outcome. It
// generalises the one-shot Solve* calls for callers — the serving layer
// foremost — that need progress visibility and a handle on an in-flight
// solve rather than a blocking function call:
//
//	sess := core.NewSession(p, opt)
//	if err := sess.Start(ctx); err != nil { ... }
//	for inc := range sess.Incumbents() {
//		fmt.Printf("merged %d: cost %.2f\n", inc.Merged, inc.Cost)
//	}
//	out, err := sess.Wait()
//
// A Session runs exactly one solve; it cannot be restarted or reused.
// Cancelling the Start context cancels the solve (devices return their
// best-so-far samples, per the solver cancellation contract).
//
// Determinism: a Session observes the solve through an obs callback sink
// and never feeds back into it, so its Outcome is bit-identical to calling
// the corresponding Solve* function directly with the same problem,
// options and seed — pinned by TestSessionMatchesSolveIncremental.
type Session struct {
	// Strategy selects the processing strategy: StrategyIncremental
	// (default), StrategyParallel or StrategyDefault. Must be set before
	// Start.
	Strategy string

	p   *mqo.Problem
	opt Options

	mu      sync.Mutex
	started bool

	// ckptEnabled wires a checkpoint store into the solve at Start;
	// ckpt holds the most recent delivery (see EnableCheckpointing).
	ckptEnabled  bool
	ckptInterval time.Duration
	ckptMu       sync.Mutex
	ckpt         *Checkpoint

	incumbents chan Incumbent
	done       chan struct{}
	start      time.Time

	// out and err are written once, before done closes.
	out *Outcome
	err error
}

// NewSession prepares a solve of p under opt without starting it. The
// incumbent channel is buffered; see Incumbents for the drop policy.
func NewSession(p *mqo.Problem, opt Options) *Session {
	return &Session{
		Strategy:   StrategyIncremental,
		p:          p,
		opt:        opt,
		incumbents: make(chan Incumbent, 64),
		done:       make(chan struct{}),
	}
}

// EnableCheckpointing makes the session retain the solve's most recent
// restart point, retrievable with Checkpoint while the solve runs or after
// an interruption. interval throttles snapshot deliveries (Options.
// CheckpointInterval); zero snapshots after every partial-problem merge.
// Must be called before Start. Checkpointing is pure observation — the
// solve's Outcome is unchanged — and only the partitioned incremental
// strategy produces checkpoints; for other strategies Checkpoint stays
// nil and a "resume" is simply a fresh solve.
//
// Any Options.CheckpointFunc the caller installed keeps firing (after the
// session stores its copy), so external sinks — the serving layer's
// kill-detection, a journal writer — compose with the session store.
func (s *Session) EnableCheckpointing(interval time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.ckptEnabled = true
	s.ckptInterval = interval
}

// Checkpoint returns the most recent restart point of a session started
// after EnableCheckpointing, nil when none was delivered yet (or the
// solve is not checkpointable). The returned checkpoint is a stable deep
// copy; pass it to Options.Resume to continue an interrupted solve.
func (s *Session) Checkpoint() *Checkpoint {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.ckpt
}

// Incumbents returns the stream of incumbent points. The channel is closed
// when the solve completes (after the final point). The stream is lossy by
// design: a consumer slower than the solve drops the oldest buffered
// points rather than stalling the pipeline — the final point is always
// delivered, so the finished cost is never lost. Consumers that need every
// point attach a collecting obs sink to the Start context instead.
func (s *Session) Incumbents() <-chan Incumbent { return s.incumbents }

// Start launches the solve in a background goroutine. It returns an error
// if the session was already started, the problem is nil or the strategy
// is unknown; the solve's own error is reported by Wait.
func (s *Session) Start(ctx context.Context) error {
	if s.p == nil {
		return fmt.Errorf("core: session has no problem")
	}
	solve, err := s.strategyFunc()
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("core: session already started")
	}
	s.started = true
	s.start = time.Now()
	if s.ckptEnabled {
		// Store every delivered checkpoint, then forward to any callback
		// the caller installed. The solve invokes this from its serial
		// merge path; Checkpoint readers come from other goroutines.
		if s.opt.CheckpointInterval == 0 {
			s.opt.CheckpointInterval = s.ckptInterval
		}
		user := s.opt.CheckpointFunc
		s.opt.CheckpointFunc = func(cp *Checkpoint) {
			s.ckptMu.Lock()
			s.ckpt = cp
			s.ckptMu.Unlock()
			if user != nil {
				user(cp)
			}
		}
	}
	s.mu.Unlock()

	// Observe the solve through a callback sink: "merge" events carry the
	// incumbent cost after each partial-problem merge. Chaining preserves
	// any sink the caller put on the context (traces still record).
	cb := obs.NewCallbackSink(func(e obs.Event) {
		if e.Name != "merge" {
			return
		}
		s.push(Incumbent{
			Sub:     subIndexFromLabel(e.Label),
			Merged:  e.N,
			Cost:    e.Value,
			Elapsed: time.Since(s.start),
		})
	})
	outer := obs.FromContext(ctx)
	cb.Chain(outer)
	runCtx := obs.NewContext(ctx, cb)

	// Root the request's span tree. When the caller (serve's worker slot)
	// already opened a span, the session continues that trace; an observed
	// stand-alone session roots its own, with the trace id derived from the
	// solve seed and strategy so re-running a request reproduces identical
	// span identity. Unobserved sessions stay span-free.
	strategy := s.Strategy
	if strategy == "" {
		strategy = StrategyIncremental
	}
	var span *obs.Span
	if obs.SpanFromContext(ctx) != nil {
		runCtx, span = cb.StartSpan(runCtx, "session")
	} else if outer.Enabled() {
		runCtx, span = cb.StartTrace(runCtx, "session", obs.NewTraceID(s.opt.Seed, strategy))
	}
	span.Attr("strategy", strategy)

	go func() {
		out, err := solve(runCtx, s.p, s.opt)
		s.out, s.err = out, err
		if err == nil {
			s.push(Incumbent{
				Sub:     -1,
				Merged:  out.NumPartitions,
				Cost:    out.Cost,
				Elapsed: time.Since(s.start),
				Final:   true,
			})
		}
		if span != nil {
			if err != nil {
				span.Attr("error", err.Error()).End()
			} else {
				// Cache-tier attribution and degradation count ride the
				// session span, so one trace line answers "why was this
				// request fast/slow/degraded".
				span.Attr("cache.tier", out.Cache.Tier())
				if n := len(out.Degradations); n > 0 {
					span.Attr("degraded", strconv.Itoa(n))
				}
				span.EndWith(obs.Event{N: out.NumPartitions, Value: out.Cost})
			}
		}
		if reg := outer.Metrics(); reg != nil {
			reg.Histogram("latency.solve_ms").Observe(time.Since(s.start).Seconds() * 1e3)
		}
		close(s.incumbents)
		close(s.done)
	}()
	return nil
}

// Wait blocks until the solve completes and returns its Outcome. Safe to
// call from multiple goroutines and after completion.
func (s *Session) Wait() (*Outcome, error) {
	<-s.done
	return s.out, s.err
}

// Problem returns the problem this session solves.
func (s *Session) Problem() *mqo.Problem { return s.p }

// ApplyDelta derives a fresh, unstarted Session solving s's problem with d
// applied, carrying over the options and strategy. When the options hold a
// cross-solve cache, the cached state of s's problem — partitioning,
// incumbent, encoding skeletons — is migrated to the delta'd structure, so
// the derived session re-partitions only the region the delta touched and
// can warm-start from the previous incumbent (drift permitting). The
// receiver is unaffected: a running solve keeps running, a finished one
// keeps its outcome. ApplyDelta may be called before or after Start.
func (s *Session) ApplyDelta(d mqo.Delta) (*Session, error) {
	np, dm, err := d.Apply(s.p)
	if err != nil {
		return nil, err
	}
	if s.opt.Cache != nil {
		s.opt.Cache.MigrateDelta(s.p, np, dm, s.opt.capacity())
	}
	ns := NewSession(np, s.opt)
	ns.Strategy = s.Strategy
	return ns, nil
}

// Run is Start followed by Wait: a drop-in replacement for the one-shot
// Solve* calls. The incumbent stream is still live during Run; callers
// that ignore it lose nothing (the stream buffer drops, never blocks).
func (s *Session) Run(ctx context.Context) (*Outcome, error) {
	if err := s.Start(ctx); err != nil {
		return nil, err
	}
	return s.Wait()
}

// Done returns a channel closed when the solve completes.
func (s *Session) Done() <-chan struct{} { return s.done }

func (s *Session) strategyFunc() (func(context.Context, *mqo.Problem, Options) (*Outcome, error), error) {
	switch s.Strategy {
	case "", StrategyIncremental:
		return SolveIncremental, nil
	case StrategyParallel:
		return SolveParallel, nil
	case StrategyDefault:
		return SolveDefault, nil
	default:
		return nil, fmt.Errorf("core: unknown strategy %q (want %s, %s or %s)",
			s.Strategy, StrategyIncremental, StrategyParallel, StrategyDefault)
	}
}

// push delivers inc without ever blocking the emitting pipeline
// goroutine: when the buffer is full the oldest point is dropped to make
// room. Merge events are emitted from each strategy's serial merge loop
// (a single goroutine even under the DAG schedule), so pushes do not race
// each other; only the consumer drains concurrently.
func (s *Session) push(inc Incumbent) {
	select {
	case s.incumbents <- inc:
		return
	default:
	}
	select {
	case <-s.incumbents:
	default:
	}
	select {
	case s.incumbents <- inc:
	default:
	}
}

// subIndexFromLabel recovers the partial-problem index from a "subNN"
// trace label, -1 for anything else.
func subIndexFromLabel(label string) int {
	if !strings.HasPrefix(label, "sub") {
		return -1
	}
	n, err := strconv.Atoi(label[len("sub"):])
	if err != nil {
		return -1
	}
	return n
}
