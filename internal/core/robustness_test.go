package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"incranneal/internal/da"
	"incranneal/internal/faultinject"
	"incranneal/internal/mqo"
	"incranneal/internal/resilience"
	"incranneal/internal/sa"
	"incranneal/internal/solver"
)

func TestPipelineRepairsCorruptedSamples(t *testing.T) {
	// Even when the device corrupts every sample, the decode-and-repair
	// path (Sec. 4.2 post-processing) must produce valid, complete
	// solutions for all strategies.
	p := mqo.PaperExample()
	for _, strat := range []struct {
		name  string
		solve func(context.Context, *mqo.Problem, Options) (*Outcome, error)
	}{
		{"incremental", SolveIncremental},
		{"parallel", SolveParallel},
	} {
		opt := Options{
			Device:          faultinject.New(&da.Solver{CapacityVars: 4}, faultinject.Config{Corrupt: true, Seed: 3}),
			PartitionSolver: &da.Solver{CapacityVars: 64},
			Capacity:        4,
			Runs:            4,
			Seed:            1,
		}
		out, err := strat.solve(context.Background(), p, opt)
		if err != nil {
			t.Fatalf("%s with corrupting device: %v", strat.name, err)
		}
		if err := out.Solution.Validate(p); err != nil {
			t.Errorf("%s: invalid solution from corrupted samples: %v", strat.name, err)
		}
		if !out.Solution.Complete() {
			t.Errorf("%s: incomplete solution from corrupted samples", strat.name)
		}
		if len(out.Degradations) != 0 {
			t.Errorf("%s: sample corruption is repaired, not degraded: %+v", strat.name, out.Degradations)
		}
	}
}

func TestPipelineFailFastSurfacesDeviceErrors(t *testing.T) {
	p := mqo.PaperExample()
	opt := Options{
		Device:          faultinject.New(&da.Solver{CapacityVars: 4}, faultinject.Config{TerminalAfter: 1}),
		PartitionSolver: &da.Solver{CapacityVars: 64},
		Capacity:        4,
		Runs:            2,
		Seed:            1,
		FailFast:        true,
	}
	_, err := SolveIncremental(context.Background(), p, opt)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("device failure not surfaced under FailFast: %v", err)
	}
}

// TestPipelineDegradesOnTerminalFailure is the headline robustness
// acceptance: fault injection kills the primary device terminally mid-run,
// and every strategy still returns a valid, complete solution with the
// failures recorded in Outcome.Degradations.
func TestPipelineDegradesOnTerminalFailure(t *testing.T) {
	p := mqo.PaperExample()
	for _, strat := range []struct {
		name  string
		solve func(context.Context, *mqo.Problem, Options) (*Outcome, error)
	}{
		{"incremental", SolveIncremental},
		{"parallel", SolveParallel},
	} {
		opt := Options{
			Device:          faultinject.New(&da.Solver{CapacityVars: 4}, faultinject.Config{TerminalAfter: 1}),
			PartitionSolver: &da.Solver{CapacityVars: 64},
			Capacity:        4,
			Runs:            2,
			Seed:            1,
			// Sequential sub-problem solves keep the counter-based fault
			// schedule deterministic for the parallel strategy too.
			Parallelism: -1,
		}
		out, err := strat.solve(context.Background(), p, opt)
		if err != nil {
			t.Fatalf("%s did not degrade gracefully: %v", strat.name, err)
		}
		if err := out.Solution.Validate(p); err != nil {
			t.Errorf("%s: degraded solution invalid: %v", strat.name, err)
		}
		if !out.Solution.Complete() {
			t.Errorf("%s: degraded solution incomplete", strat.name)
		}
		if len(out.Degradations) == 0 {
			t.Errorf("%s: terminal device failure left no degradation record", strat.name)
		}
		for _, d := range out.Degradations {
			if d.Sub < 0 || d.Sub >= out.NumPartitions {
				t.Errorf("%s: degradation names sub %d of %d", strat.name, d.Sub, out.NumPartitions)
			}
			if d.Reason == "" || d.Device == "" || d.Attempts < 1 {
				t.Errorf("%s: underspecified degradation %+v", strat.name, d)
			}
		}
	}

	// The default strategy degrades the whole problem (Sub = -1).
	out, err := SolveDefault(context.Background(), p, Options{
		Device: faultinject.New(&da.Solver{CapacityVars: 64}, faultinject.Config{TerminalAfter: 0, TransientFirst: 99}),
		Runs:   2,
		Seed:   1,
	})
	if err != nil {
		t.Fatalf("default did not degrade gracefully: %v", err)
	}
	if err := out.Solution.Validate(p); err != nil || !out.Solution.Complete() {
		t.Errorf("default: degraded solution invalid/incomplete: %v", err)
	}
	if len(out.Degradations) != 1 || out.Degradations[0].Sub != -1 {
		t.Errorf("default degradations = %+v, want one whole-problem record", out.Degradations)
	}
}

// TestDegradedOutcomeDeterministic pins the reproducibility contract under
// faults: the same seed and the same fault schedule produce the identical
// Outcome — solution, cost and degradation report — for any Parallelism.
// The incremental strategy issues device solves sequentially, so the
// injector's counter-based schedule replays identically.
func TestDegradedOutcomeDeterministic(t *testing.T) {
	p := mqo.PaperExample()
	run := func(par int) *Outcome {
		t.Helper()
		opt := Options{
			Device:          faultinject.New(&da.Solver{CapacityVars: 4}, faultinject.Config{TerminalAfter: 1, Seed: 9}),
			PartitionSolver: &da.Solver{CapacityVars: 64},
			Capacity:        4,
			Runs:            2,
			Seed:            1,
			Parallelism:     par,
		}
		out, err := SolveIncremental(context.Background(), p, opt)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(-1)
	if len(ref.Degradations) == 0 {
		t.Fatal("fault schedule injected nothing")
	}
	for _, par := range []int{-1, 1, 4} {
		got := run(par)
		if got.Cost != ref.Cost {
			t.Errorf("parallelism %d: cost %v, want %v", par, got.Cost, ref.Cost)
		}
		for q, pl := range got.Solution.Selected {
			if pl != ref.Solution.Selected[q] {
				t.Errorf("parallelism %d: query %d selected plan %d, want %d", par, q, pl, ref.Solution.Selected[q])
			}
		}
		if len(got.Degradations) != len(ref.Degradations) {
			t.Fatalf("parallelism %d: %d degradations, want %d", par, len(got.Degradations), len(ref.Degradations))
		}
		for i := range got.Degradations {
			if got.Degradations[i] != ref.Degradations[i] {
				t.Errorf("parallelism %d: degradation %d = %+v, want %+v", par, i, got.Degradations[i], ref.Degradations[i])
			}
		}
	}
}

// TestResilienceStackMasksTransientFaults runs the full middleware
// composition inside the pipeline: transient faults on the primary are
// retried away and a backup device absorbs a terminal kill, so the Outcome
// reports *no* degradations at all.
func TestResilienceStackMasksTransientFaults(t *testing.T) {
	p := mqo.PaperExample()
	primary := faultinject.New(&da.Solver{CapacityVars: 4}, faultinject.Config{TransientFirst: 1, TerminalAfter: 1})
	dev := resilience.Wrap([]solver.Solver{primary, &sa.Solver{}}, resilience.Config{
		Retries: 3, RetryBase: time.Microsecond, BreakerThreshold: 4,
	})
	out, err := SolveIncremental(context.Background(), p, Options{
		Device:          dev,
		PartitionSolver: &da.Solver{CapacityVars: 64},
		Capacity:        4,
		Runs:            2,
		Seed:            1,
	})
	if err != nil {
		t.Fatalf("resilient pipeline failed: %v", err)
	}
	if err := out.Solution.Validate(p); err != nil || !out.Solution.Complete() {
		t.Errorf("resilient pipeline solution invalid/incomplete: %v", err)
	}
	if len(out.Degradations) != 0 {
		t.Errorf("middleware should have absorbed every fault, got degradations %+v", out.Degradations)
	}
	if st := primary.Stats(); st.Transients == 0 || st.Terminals == 0 {
		t.Errorf("fault schedule did not exercise the middleware: %+v", st)
	}
}

func TestPipelineRespectsCancellationMidway(t *testing.T) {
	// Cancel after the first partial solve: the pipeline must return
	// promptly (either a context error or a degraded-but-valid result from
	// already-collected samples — never hang).
	p := mqo.PaperExample()
	ctx, cancel := context.WithCancel(context.Background())
	dev := &cancellingSolver{inner: &da.Solver{CapacityVars: 4}, cancel: cancel}
	opt := Options{
		Device:          dev,
		PartitionSolver: &da.Solver{CapacityVars: 64},
		Capacity:        4,
		Runs:            2,
		Seed:            1,
	}
	out, err := SolveIncremental(ctx, p, opt)
	if err == nil {
		// Cancellation degraded the later solves but repair still yields
		// valid solutions; both outcomes are acceptable.
		if verr := out.Solution.Validate(p); verr != nil {
			t.Errorf("post-cancellation solution invalid: %v", verr)
		}
	}
}

// cancellingSolver cancels the context after its first solve.
type cancellingSolver struct {
	inner  solver.Solver
	cancel context.CancelFunc
	done   bool
}

func (c *cancellingSolver) Name() string  { return c.inner.Name() }
func (c *cancellingSolver) Capacity() int { return c.inner.Capacity() }
func (c *cancellingSolver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	res, err := c.inner.Solve(ctx, req)
	if !c.done {
		c.done = true
		c.cancel()
	}
	return res, err
}

func TestBoundedGroupLimitsAndPropagatesErrors(t *testing.T) {
	var running, peak, done atomic.Int32
	fns := make([]func() error, 8)
	for i := range fns {
		i := i
		fns[i] = func() error {
			cur := running.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			done.Add(1)
			if i == 5 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		}
	}
	err := boundedGroup(2, fns)
	if err == nil {
		t.Fatal("boundedGroup dropped the error")
	}
	if got := done.Load(); got != 8 {
		t.Errorf("completed %d tasks, want all 8 despite the error", got)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("concurrency peak %d exceeds limit 2", p)
	}
}

func TestPartitionSweepsDistribution(t *testing.T) {
	o := Options{TotalSweeps: 100}
	for i := 0; i < 4; i++ {
		if got := o.partitionSweeps(4, i); got != 25 {
			t.Errorf("partitionSweeps(4, %d) = %d, want 25", i, got)
		}
	}
	// 103 = 4·25 + 3: the remainder lands one sweep each on the first three
	// partitions, never silently dropped.
	o.TotalSweeps = 103
	want := []int{26, 26, 26, 25}
	for i, w := range want {
		if got := o.partitionSweeps(4, i); got != w {
			t.Errorf("partitionSweeps(4, %d) = %d, want %d", i, got, w)
		}
	}
	// The per-partition budgets must sum exactly to TotalSweeps whenever
	// TotalSweeps ≥ n (below that the per-partition floor of 1 dominates).
	for _, total := range []int{1, 2, 3, 4, 5, 7, 97, 100, 103, 4000} {
		for _, n := range []int{1, 2, 3, 4, 5, 8, 13} {
			o.TotalSweeps = total
			sum := 0
			for i := 0; i < n; i++ {
				sum += o.partitionSweeps(n, i)
			}
			if total >= n && sum != total {
				t.Errorf("TotalSweeps=%d over %d partitions sums to %d", total, n, sum)
			}
			if total < n && sum != n {
				t.Errorf("TotalSweeps=%d under %d partitions: floor of 1 each, got sum %d", total, n, sum)
			}
		}
	}
	o.TotalSweeps = 100
	if got := o.partitionSweeps(1000, 999); got != 1 {
		t.Errorf("partitionSweeps floors at 1, got %d", got)
	}
	o.TotalSweeps = 0
	if got := o.partitionSweeps(4, 0); got != 0 {
		t.Errorf("zero budget must stay device-default, got %d", got)
	}
}

func TestOutcomeReportsStrategyNames(t *testing.T) {
	p := mqo.PaperExample()
	opt := Options{Device: &da.Solver{CapacityVars: 64}, Runs: 4, Seed: 1}
	inc, err := SolveIncremental(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SolveParallel(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	def, err := SolveDefault(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Strategy != "incremental" || par.Strategy != "parallel" || def.Strategy != "default" {
		t.Errorf("strategies = %q, %q, %q", inc.Strategy, par.Strategy, def.Strategy)
	}
}
