package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"incranneal/internal/da"
	"incranneal/internal/mqo"
	"incranneal/internal/solver"
)

// faultySolver injects device failure modes into the pipeline: invalid
// samples (constraint violations, as noisy hardware produces) and outright
// errors after a number of successful solves.
type faultySolver struct {
	inner       solver.Solver
	corrupt     bool // return constraint-violating assignments
	failAfter   int  // error on the (failAfter+1)-th solve; -1 disables
	solvesSoFar int
}

func (f *faultySolver) Name() string  { return "faulty-" + f.inner.Name() }
func (f *faultySolver) Capacity() int { return f.inner.Capacity() }

var errInjected = errors.New("injected device failure")

func (f *faultySolver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	if f.failAfter >= 0 && f.solvesSoFar >= f.failAfter {
		return nil, errInjected
	}
	f.solvesSoFar++
	res, err := f.inner.Solve(ctx, req)
	if err != nil {
		return nil, err
	}
	if f.corrupt {
		// Corrupt every sample deterministically: flip a pattern of bits,
		// producing over- and under-selected queries.
		rng := rand.New(rand.NewSource(req.Seed))
		for i := range res.Samples {
			for v := range res.Samples[i].Assignment {
				if rng.Intn(3) == 0 {
					res.Samples[i].Assignment[v] ^= 1
				}
			}
			res.Samples[i].Energy = req.Model.Energy(res.Samples[i].Assignment)
		}
		res.SortSamples()
	}
	return res, nil
}

func TestPipelineRepairsCorruptedSamples(t *testing.T) {
	// Even when the device corrupts every sample, the decode-and-repair
	// path (Sec. 4.2 post-processing) must produce valid, complete
	// solutions for all strategies.
	p := mqo.PaperExample()
	for _, strat := range []struct {
		name  string
		solve func(context.Context, *mqo.Problem, Options) (*Outcome, error)
	}{
		{"incremental", SolveIncremental},
		{"parallel", SolveParallel},
	} {
		opt := Options{
			Device:          &faultySolver{inner: &da.Solver{CapacityVars: 4}, corrupt: true, failAfter: -1},
			PartitionSolver: &da.Solver{CapacityVars: 64},
			Capacity:        4,
			Runs:            4,
			Seed:            1,
		}
		out, err := strat.solve(context.Background(), p, opt)
		if err != nil {
			t.Fatalf("%s with corrupting device: %v", strat.name, err)
		}
		if err := out.Solution.Validate(p); err != nil {
			t.Errorf("%s: invalid solution from corrupted samples: %v", strat.name, err)
		}
		if !out.Solution.Complete() {
			t.Errorf("%s: incomplete solution from corrupted samples", strat.name)
		}
	}
}

func TestPipelineSurfacesDeviceErrors(t *testing.T) {
	p := mqo.PaperExample()
	opt := Options{
		Device:          &faultySolver{inner: &da.Solver{CapacityVars: 4}, failAfter: 1},
		PartitionSolver: &da.Solver{CapacityVars: 64},
		Capacity:        4,
		Runs:            2,
		Seed:            1,
	}
	_, err := SolveIncremental(context.Background(), p, opt)
	if !errors.Is(err, errInjected) {
		t.Errorf("device failure not surfaced: %v", err)
	}
}

func TestPipelineRespectsCancellationMidway(t *testing.T) {
	// Cancel after the first partial solve: the pipeline must return
	// promptly (either a context error or a degraded-but-valid result from
	// already-collected samples — never hang).
	p := mqo.PaperExample()
	ctx, cancel := context.WithCancel(context.Background())
	dev := &cancellingSolver{inner: &da.Solver{CapacityVars: 4}, cancel: cancel}
	opt := Options{
		Device:          dev,
		PartitionSolver: &da.Solver{CapacityVars: 64},
		Capacity:        4,
		Runs:            2,
		Seed:            1,
	}
	out, err := SolveIncremental(ctx, p, opt)
	if err == nil {
		// Cancellation degraded the later solves but repair still yields
		// valid solutions; both outcomes are acceptable.
		if verr := out.Solution.Validate(p); verr != nil {
			t.Errorf("post-cancellation solution invalid: %v", verr)
		}
	}
}

// cancellingSolver cancels the context after its first solve.
type cancellingSolver struct {
	inner  solver.Solver
	cancel context.CancelFunc
	done   bool
}

func (c *cancellingSolver) Name() string  { return c.inner.Name() }
func (c *cancellingSolver) Capacity() int { return c.inner.Capacity() }
func (c *cancellingSolver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	res, err := c.inner.Solve(ctx, req)
	if !c.done {
		c.done = true
		c.cancel()
	}
	return res, err
}

func TestBoundedGroupLimitsAndPropagatesErrors(t *testing.T) {
	var running, peak, done atomic.Int32
	fns := make([]func() error, 8)
	for i := range fns {
		i := i
		fns[i] = func() error {
			cur := running.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			done.Add(1)
			if i == 5 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		}
	}
	err := boundedGroup(2, fns)
	if err == nil {
		t.Fatal("boundedGroup dropped the error")
	}
	if got := done.Load(); got != 8 {
		t.Errorf("completed %d tasks, want all 8 despite the error", got)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("concurrency peak %d exceeds limit 2", p)
	}
}

func TestPartitionSweepsDistribution(t *testing.T) {
	o := Options{TotalSweeps: 100}
	for i := 0; i < 4; i++ {
		if got := o.partitionSweeps(4, i); got != 25 {
			t.Errorf("partitionSweeps(4, %d) = %d, want 25", i, got)
		}
	}
	// 103 = 4·25 + 3: the remainder lands one sweep each on the first three
	// partitions, never silently dropped.
	o.TotalSweeps = 103
	want := []int{26, 26, 26, 25}
	for i, w := range want {
		if got := o.partitionSweeps(4, i); got != w {
			t.Errorf("partitionSweeps(4, %d) = %d, want %d", i, got, w)
		}
	}
	// The per-partition budgets must sum exactly to TotalSweeps whenever
	// TotalSweeps ≥ n (below that the per-partition floor of 1 dominates).
	for _, total := range []int{1, 2, 3, 4, 5, 7, 97, 100, 103, 4000} {
		for _, n := range []int{1, 2, 3, 4, 5, 8, 13} {
			o.TotalSweeps = total
			sum := 0
			for i := 0; i < n; i++ {
				sum += o.partitionSweeps(n, i)
			}
			if total >= n && sum != total {
				t.Errorf("TotalSweeps=%d over %d partitions sums to %d", total, n, sum)
			}
			if total < n && sum != n {
				t.Errorf("TotalSweeps=%d under %d partitions: floor of 1 each, got sum %d", total, n, sum)
			}
		}
	}
	o.TotalSweeps = 100
	if got := o.partitionSweeps(1000, 999); got != 1 {
		t.Errorf("partitionSweeps floors at 1, got %d", got)
	}
	o.TotalSweeps = 0
	if got := o.partitionSweeps(4, 0); got != 0 {
		t.Errorf("zero budget must stay device-default, got %d", got)
	}
}

func TestOutcomeReportsStrategyNames(t *testing.T) {
	p := mqo.PaperExample()
	opt := Options{Device: &da.Solver{CapacityVars: 64}, Runs: 4, Seed: 1}
	inc, err := SolveIncremental(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SolveParallel(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	def, err := SolveDefault(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Strategy != "incremental" || par.Strategy != "parallel" || def.Strategy != "default" {
		t.Errorf("strategies = %q, %q, %q", inc.Strategy, par.Strategy, def.Strategy)
	}
}
