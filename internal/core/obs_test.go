package core

import (
	"context"
	"math"
	"testing"

	"incranneal/internal/da"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
	"incranneal/internal/workload"
)

// TestObsDeterminism pins the observability layer's no-perturbation
// contract end to end: every strategy produces a bit-identical Outcome.Cost
// and plan selection for Parallelism ∈ {-1, 1, 4}, with and without an
// attached trace/metrics sink.
func TestObsDeterminism(t *testing.T) {
	in, err := workload.GenerateSweep(workload.SweepConfig{
		Queries: 48, PPQ: 3, Communities: 3,
		DensityLow: 0.05, DensityHigh: 0.6, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	strategies := []struct {
		name string
		run  func(ctx context.Context, p *mqo.Problem, opt Options) (*Outcome, error)
	}{
		{"incremental", SolveIncremental},
		{"parallel", SolveParallel},
		{"default", SolveDefault},
	}
	for _, st := range strategies {
		t.Run(st.name, func(t *testing.T) {
			var refCost uint64
			var refSel []int
			first := true
			for _, par := range []int{-1, 1, 4} {
				for _, withSink := range []bool{false, true} {
					ctx := context.Background()
					if withSink {
						ctx = obs.NewContext(ctx, obs.NewCollector(obs.NewRegistry()))
					}
					out, err := st.run(ctx, in.Problem, Options{
						Device:      &da.Solver{CapacityVars: 96},
						Capacity:    96,
						Runs:        2,
						TotalSweeps: 2000,
						Seed:        7,
						Parallelism: par,
					})
					if err != nil {
						t.Fatalf("parallelism %d sink %v: %v", par, withSink, err)
					}
					cost := math.Float64bits(out.Cost)
					if first {
						refCost, refSel, first = cost, out.Solution.Selected, false
						continue
					}
					if cost != refCost {
						t.Errorf("parallelism %d sink %v: cost bits %x, want %x", par, withSink, cost, refCost)
					}
					if len(out.Solution.Selected) != len(refSel) {
						t.Fatalf("parallelism %d sink %v: selection length changed", par, withSink)
					}
					for q := range refSel {
						if out.Solution.Selected[q] != refSel[q] {
							t.Errorf("parallelism %d sink %v: query %d plan %d, want %d",
								par, withSink, q, out.Solution.Selected[q], refSel[q])
							break
						}
					}
				}
			}
		})
	}
}

// TestObsIncrementalEmitsPipelineEvents asserts the incremental pipeline's
// trace tells the whole story: partitioning, per-sub encodes, device runs,
// merges, DSS passes and the prepared-encoding cache counters.
func TestObsIncrementalEmitsPipelineEvents(t *testing.T) {
	in, err := workload.GenerateSweep(workload.SweepConfig{
		Queries: 48, PPQ: 3, Communities: 3,
		DensityLow: 0.05, DensityHigh: 0.6, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sink := obs.NewCollector(reg)
	ctx := obs.NewContext(context.Background(), sink)
	out, err := SolveIncremental(ctx, in.Problem, Options{
		Device:      &da.Solver{CapacityVars: 96},
		Capacity:    96,
		Runs:        2,
		TotalSweeps: 2000,
		Seed:        7,
		Parallelism: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumPartitions < 2 {
		t.Fatalf("instance did not partition (%d partial problems)", out.NumPartitions)
	}
	counts := map[string]int{}
	subLabelled := 0
	for _, e := range sink.Events() {
		counts[e.Name]++
		if e.Name == "run" && e.Label != "" && e.Label != "bisect" {
			subLabelled++
		}
	}
	for _, want := range []string{"run", "anneal", "decode", "merge", "partition", "bisect", "pool"} {
		if counts[want] == 0 {
			t.Errorf("no %q events in trace: %v", want, counts)
		}
	}
	if counts["merge"] != out.NumPartitions {
		t.Errorf("merge events = %d, want one per partition (%d)", counts["merge"], out.NumPartitions)
	}
	if subLabelled == 0 {
		t.Error("no device runs carried a subproblem label")
	}
	if out.ReappliedSavings > 0 && counts["dss"] == 0 {
		t.Error("DSS applied savings but emitted no dss events")
	}
	mat := reg.Counter("encode.materialise").Value()
	if mat < float64(out.NumPartitions) {
		t.Errorf("encode.materialise = %v, want >= %d partitions", mat, out.NumPartitions)
	}
	if reg.Counter("anneal.sweeps.da").Value() == 0 {
		t.Error("anneal.sweeps.da counter empty")
	}
}
