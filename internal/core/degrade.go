package core

import (
	"context"
	"errors"

	"incranneal/internal/mqo"
	"incranneal/internal/obs"
)

// Degradation records one partial problem whose device solve failed
// terminally and was completed by deterministic greedy repair instead. The
// pipeline keeps going — the incumbent solution, DSS state and the
// remaining partial problems are untouched — so one dead device degrades
// solution quality instead of failing the whole optimisation.
type Degradation struct {
	// Sub is the partial-problem index, or -1 when the whole unpartitioned
	// problem degraded.
	Sub int
	// Device names the solver (or fallback chain) that failed.
	Device string
	// Attempts is the number of device solve attempts consumed, including
	// retries and fallback devices when the resilience middleware is in use.
	Attempts int
	// Reason is the final error's text.
	Reason string
}

// pipelineError marks failures of the pipeline itself — sample/problem
// shape mismatches, merge conflicts — which indicate a bug rather than a
// device outage. They are never degraded away.
type pipelineError struct{ err error }

func (e *pipelineError) Error() string { return e.err.Error() }
func (e *pipelineError) Unwrap() error { return e.err }

func isPipelineError(err error) bool {
	var pe *pipelineError
	return errors.As(err, &pe)
}

// attemptsOf extracts a solve-attempt count recorded by the resilience
// middleware (structurally, so core does not import it), defaulting to 1.
func attemptsOf(err error) int {
	var ae interface{ Attempts() int }
	if errors.As(err, &ae) {
		return ae.Attempts()
	}
	return 1
}

// degrade builds the Degradation record for sub-problem i (or -1) and the
// greedy-repair local solution of local, emitting the obs "degrade" event.
// For the incremental strategy, DSS has already folded savings towards
// selected plans into local's costs, so the greedy completion is
// incumbent-aware — it picks each query's lowest *adjusted* cost plan.
func degrade(ctx context.Context, local *mqo.Problem, i int, device string, cause error) (*mqo.Solution, Degradation) {
	sol := mqo.Repair(local, make([]bool, local.NumPlans()))
	d := Degradation{Sub: i, Device: device, Attempts: attemptsOf(cause), Reason: cause.Error()}
	if sink := obs.FromContext(ctx); sink.Enabled() {
		// The enclosing sub (or session) span carries the degradation reason
		// as an attribute, so a trace query for degraded requests needs no
		// event-level join.
		obs.SpanFromContext(ctx).Attr("degrade.reason", d.Reason)
		sink.EmitCtx(ctx, obs.Event{
			Name: "degrade", Device: device, Label: obs.LabelFromContext(ctx),
			Run: d.Attempts, N: local.NumQueries(),
		})
		if reg := sink.Metrics(); reg != nil {
			reg.Counter("core.degraded").Add(1)
		}
	}
	return sol, d
}
