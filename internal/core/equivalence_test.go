package core

import (
	"context"
	"testing"

	"incranneal/internal/da"
	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/solver"
	"incranneal/internal/workload"
)

// referenceIncremental is the pre-skeleton incremental loop: every partial
// problem is re-encoded from scratch with EncodeMQO after each DSS pass and
// every sample is decoded into a fresh Solution. It exists purely as the
// behavioural reference the prepared-encoding pipeline must reproduce bit
// for bit.
func referenceIncremental(ctx context.Context, t *testing.T, p *mqo.Problem, subs []*mqo.SubProblem, opt Options) *mqo.Solution {
	t.Helper()
	ttl := mqo.NewSolution(p)
	pending := make([][]mqo.Saving, len(subs))
	for i, sub := range subs {
		pending[i] = append([]mqo.Saving(nil), sub.Discarded...)
	}
	for i, sub := range subs {
		enc, err := encoding.EncodeMQO(sub.Local)
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Device.Solve(ctx, solver.Request{
			Model: enc.Model, Runs: opt.Runs, Sweeps: opt.partitionSweeps(len(subs), i),
			Seed: opt.Seed + int64(1000+i), Parallelism: opt.Parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		var best *mqo.Solution
		bestCost := 0.0
		for _, s := range res.Samples {
			sol, err := enc.Decode(s.Assignment)
			if err != nil {
				t.Fatal(err)
			}
			if c := sol.Cost(sub.Local); best == nil || c < bestCost {
				best, bestCost = sol, c
			}
		}
		global, err := sub.ToGlobal(p, best)
		if err != nil {
			t.Fatal(err)
		}
		if err := ttl.Merge(global); err != nil {
			t.Fatal(err)
		}
		if i+1 < len(subs) && !opt.DisableDSS {
			// Rebuild the selected-plan set from scratch every pass — the
			// quadratic behaviour the pipeline's incrementally maintained
			// set must reproduce.
			selected := make([]bool, p.NumPlans())
			for _, pl := range ttl.Selected {
				if pl != mqo.Unassigned {
					selected[pl] = true
				}
			}
			dss(selected, subs[i+1:], pending[i+1:], make([]bool, len(subs)-i-1))
		}
	}
	return ttl
}

// TestIncrementalPipelineMatchesReference pins the tentpole's equivalence
// guarantee: the prepared-skeleton pipeline (up-front PrepareMQO, in-place
// reweights, speculative encode/solve overlap, buffer-reusing decode) must
// reproduce the from-scratch re-encoding loop exactly — same cost, same plan
// selections — at every Parallelism setting.
func TestIncrementalPipelineMatchesReference(t *testing.T) {
	ctx := context.Background()
	in, err := workload.GenerateSweep(workload.SweepConfig{
		Queries: 48, PPQ: 3, Communities: 4,
		DensityLow: 0.05, DensityHigh: 0.8, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := in.Problem
	opt := Options{
		Device:      &da.Solver{CapacityVars: 40},
		Capacity:    40,
		Runs:        4,
		TotalSweeps: 1000,
		Seed:        17,
		Parallelism: -1,
	}
	part, err := opt.partitionProblem(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(part.SubProblems) < 2 {
		t.Fatalf("instance not partitioned (%d sub-problems); equivalence test needs the incremental path", len(part.SubProblems))
	}
	ref := referenceIncremental(ctx, t, p, part.SubProblems, opt)
	refCost := ref.Cost(p)
	for _, par := range []int{-1, 1, 4} {
		opt := opt
		opt.Parallelism = par
		// DSS consumed the reference partition's costs; re-partition fresh.
		// Partitioning is deterministic, so the query sets are identical.
		part, err := opt.partitionProblem(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		out, err := IncrementalOverSubProblems(ctx, p, part.SubProblems, opt)
		if err != nil {
			t.Fatal(err)
		}
		if out.Cost != refCost {
			t.Errorf("Parallelism=%d: cost %v, reference %v", par, out.Cost, refCost)
		}
		for q, pl := range out.Solution.Selected {
			if pl != ref.Selected[q] {
				t.Errorf("Parallelism=%d: query %d selects plan %d, reference %d", par, q, pl, ref.Selected[q])
				break
			}
		}
	}
	// The full pipeline (partitioning included) must also be invariant
	// across Parallelism settings.
	var firstCost float64
	for i, par := range []int{-1, 2, 0} {
		opt := opt
		opt.Parallelism = par
		out, err := SolveIncremental(ctx, p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstCost = out.Cost
		} else if out.Cost != firstCost {
			t.Errorf("SolveIncremental at Parallelism=%d: cost %v, want %v", par, out.Cost, firstCost)
		}
	}
}

// TestSolveWholeMatchesFreshEncode checks the unpartitioned path: prepared
// encodings and the buffer-reusing decode must give the same outcome as the
// map-backed encode with per-sample decoding.
func TestSolveWholeMatchesFreshEncode(t *testing.T) {
	ctx := context.Background()
	p := mqo.PaperExample()
	opt := Options{Device: &da.Solver{CapacityVars: 64}, Runs: 8, TotalSweeps: 500, Seed: 3, Parallelism: -1}
	out, err := SolveIncremental(ctx, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Device.Solve(ctx, solver.Request{Model: enc.Model, Runs: opt.Runs, Sweeps: opt.TotalSweeps, Seed: opt.Seed, Parallelism: opt.Parallelism})
	if err != nil {
		t.Fatal(err)
	}
	var best *mqo.Solution
	bestCost := 0.0
	for _, s := range res.Samples {
		sol, err := enc.Decode(s.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		if c := sol.Cost(p); best == nil || c < bestCost {
			best, bestCost = sol, c
		}
	}
	if out.Cost != bestCost {
		t.Errorf("pipeline cost %v, fresh-encode reference %v", out.Cost, bestCost)
	}
	for q, pl := range out.Solution.Selected {
		if pl != best.Selected[q] {
			t.Errorf("query %d selects plan %d, reference %d", q, pl, best.Selected[q])
			break
		}
	}
}
