package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
	"incranneal/internal/partition"
	"incranneal/internal/solver"
)

// subLabel names the i-th partial problem in trace events ("sub00",
// "sub01", ...). Only built when a sink is enabled.
func subLabel(i int) string { return fmt.Sprintf("sub%02d", i) }

// SolveIncremental runs the paper's incremental optimisation with dynamic
// search steering (Algorithms 2 and 3). The problem is partitioned to the
// device capacity; partial problems are then solved, each encoded *after*
// DSS has folded the savings towards already-selected plans into its plan
// costs, and the best partial solution w.r.t. the incumbent total solution
// is merged in.
//
// By default the partial problems are scheduled over the DSS dependency
// DAG (see dag.go): sub-problems sharing no discarded savings solve
// concurrently, bounded by Options.Parallelism, with results bit-identical
// to the sequential chain. Options.DisableDAG — or a dependency graph
// denser than Options.DAGDensityThreshold — runs the strictly sequential
// chain of Algorithm 2 instead.
//
// Problems that already fit the device skip partitioning and are solved
// directly; the strategies then coincide.
func SolveIncremental(ctx context.Context, p *mqo.Problem, opt Options) (*Outcome, error) {
	start := time.Now()
	if !opt.needsPartitioning(p) {
		return solveWhole(ctx, p, opt, "incremental", start)
	}
	var cr *cacheRun
	if opt.Resume == nil {
		// A resumed solve skips the cache entirely: its partitioning comes
		// from the checkpoint, and warm starts the interrupted run did not
		// have would break resume bit-identity.
		cr = newCacheRun(p, opt)
	}
	sink := obs.FromContext(ctx)
	// The partitioning phase is the first child span of a traced request; on
	// un-traced runs StartSpan is a no-op and the partition package's own
	// events remain the only record, as before.
	partCtx, partSpan := sink.StartSpan(ctx, "partition")
	partStart := time.Now()
	var part *partition.Result
	var err error
	if opt.Resume != nil {
		// Resume: rebuild the checkpointed partitioning by re-extraction —
		// deterministic, so the sub-problems match the interrupted run's.
		part, err = resumePartition(p, opt.Resume)
		if err != nil {
			partSpan.Attr("error", "resume").End()
			return nil, err
		}
	} else if cr != nil && cr.hit != nil {
		// Structure hit: refit the cached partitioning instead of
		// re-bisecting. Refit validates coverage and only re-bisects sets
		// the capacity no longer admits, so a plain recurrence skips the
		// annealer-backed recursion entirely.
		part, err = partition.Refit(partCtx, p, cr.hit.QuerySets, opt.partitionOptions())
		if err != nil {
			// A cached partitioning that fails to refit (fingerprint
			// collision, corrupt entry) never fails the solve: drop it and
			// partition from scratch.
			opt.Cache.Invalidate(p)
			cr.demote()
			part = nil
		}
	}
	if part == nil {
		part, err = opt.partitionProblem(partCtx, p)
		if err != nil {
			partSpan.Attr("error", "partition").End()
			return nil, err
		}
	}
	partElapsed := time.Since(partStart)
	if partSpan != nil {
		source := "fresh"
		if opt.Resume != nil {
			source = "resume"
		} else if cr != nil && cr.hit != nil {
			source = "refit"
		}
		partSpan.Attr("source", source).EndWith(obs.Event{N: len(part.SubProblems)})
	}
	if reg := sink.Metrics(); reg != nil {
		reg.Histogram("latency.partition_ms").Observe(partElapsed.Seconds() * 1e3)
	}
	if cr != nil {
		cr.querySets = part.QuerySets
	}
	out, err := incrementalOverSubProblems(ctx, p, part.SubProblems, opt, cr)
	if err != nil {
		return nil, err
	}
	out.DiscardedSavings = part.DiscardedSavings
	out.Timings.Partition = partElapsed
	out.Elapsed = time.Since(start)
	return out, nil
}

// IncrementalOverSubProblems runs the incremental optimisation phase over
// an already-partitioned problem. It is the optimisation phase of
// SolveIncremental, exposed for callers that control partitioning
// themselves. The sub-problems' adjusted costs are consumed (DSS mutates
// them); do not reuse subs across calls.
//
// Encoding work is organised around prepared skeletons: every sub-problem's
// quadratic structure is prepared once, up front and in parallel on the
// run-level worker pool, because DSS only ever mutates plan costs (linear
// coefficients and, through the penalty A, the clique weights — never the
// term structure). Both execution orders overlap the materialisation of
// upcoming encodings with the current device solve and patch dirtied ones
// with an in-place reweight pass. Results are bit-identical to re-encoding
// every sub-problem from scratch after each DSS pass, and identical between
// the DAG schedule and the sequential chain.
func IncrementalOverSubProblems(ctx context.Context, p *mqo.Problem, subs []*mqo.SubProblem, opt Options) (*Outcome, error) {
	return incrementalOverSubProblems(ctx, p, subs, opt, nil)
}

// incrementalOverSubProblems is IncrementalOverSubProblems with the solve's
// cache interaction threaded through (nil when no cache is configured or
// the caller owns partitioning).
func incrementalOverSubProblems(ctx context.Context, p *mqo.Problem, subs []*mqo.SubProblem, opt Options, cr *cacheRun) (*Outcome, error) {
	start := time.Now()
	ttlSol := mqo.NewSolution(p)
	var tm PhaseTimings
	// pending[i] tracks the not-yet-applied discarded savings of subs[i];
	// DSS consumes a saving when it adjusts a plan cost, so the repeated
	// passes of Algorithm 3 never double-apply it.
	pending := make([][]mqo.Saving, len(subs))
	for i, sub := range subs {
		pending[i] = append([]mqo.Saving(nil), sub.Discarded...)
	}
	// Checkpoint recording and resume replay (see checkpoint.go). Both are
	// nil-safe no-ops on ordinary solves.
	rec := newCkptRecorder(p, subs, opt)
	rs, err := newResumeState(subs, opt)
	if err != nil {
		return nil, err
	}
	encStart := time.Now()
	preps := make([]*encoding.PreparedMQO, len(subs))
	prepErrs := make([]error, len(subs))
	solver.ForEachRun(len(subs), parallelism(opt), func(i int) {
		// On a structure hit, rebinding a pooled skeleton replaces the
		// whole PrepareMQO build with an O(terms) reweight of the cached
		// term structure.
		if pp := cr.takeSkeleton(subs[i].Local); pp != nil {
			preps[i] = pp
			return
		}
		preps[i], prepErrs[i] = encoding.PrepareMQO(subs[i].Local)
	})
	for _, err := range prepErrs {
		if err != nil {
			return nil, err
		}
	}
	// Warm assignments project the cached incumbent into each sub-problem's
	// local numbering; nil entries (no cache, miss, drift out of bounds)
	// keep the device's historical fully-random seeding.
	warms := make([][]int8, len(subs))
	for i, sub := range subs {
		warms[i] = cr.warmFor(sub)
	}
	tm.Encode += time.Since(encStart)
	sink := obs.FromContext(ctx)
	if sink.Enabled() {
		sink.EmitCtx(ctx, obs.Event{Name: "encode", Dur: tm.Encode, N: len(subs)})
		if reg := sink.Metrics(); reg != nil {
			reg.Histogram("latency.encode_ms").Observe(tm.Encode.Seconds() * 1e3)
		}
	}
	// Choose the execution order: the DAG schedule whenever it is enabled
	// and the dependency graph is sparse enough to expose concurrency.
	var dag *dssDAG
	var dagStats *DAGStats
	useDAG := false
	if !opt.DisableDAG && len(subs) > 1 {
		dagStart := time.Now()
		dag = buildDSSDAG(p, subs, opt.DisableDSS)
		useDAG = dag.density <= opt.dagDensityThreshold()
		dagStats = dag.stats(!useDAG)
		if sink.Enabled() {
			label := "scheduled"
			if !useDAG {
				label = "fallback"
			}
			sink.EmitCtx(ctx, obs.Event{
				Name: "dag", Label: label, Dur: time.Since(dagStart),
				N: dag.edges, Run: len(dag.waves), Value: dag.density, Extra: float64(dag.width),
			})
			if reg := sink.Metrics(); reg != nil {
				reg.Gauge("dag.waves").Set(float64(len(dag.waves)))
				reg.Gauge("dag.width").Set(float64(dag.width))
				// With wave-barrier scheduling the critical path in partial
				// problems equals the wave count; kept as its own gauge so
				// dashboards survive a move to event-driven scheduling.
				reg.Gauge("dag.critical_path").Set(float64(len(dag.waves)))
			}
		}
	}
	var sweeps int
	var reapplied float64
	var degs []Degradation
	if useDAG {
		sweeps, reapplied, degs, err = incrementalDAG(ctx, p, subs, preps, warms, dag, pending, ttlSol, &tm, opt, rec, rs)
	} else {
		sweeps, reapplied, degs, err = incrementalSequential(ctx, p, subs, preps, warms, pending, ttlSol, &tm, opt, rec, rs)
	}
	if err != nil {
		return nil, err
	}
	if reg := sink.Metrics(); reg != nil {
		var es encoding.EncodingStats
		for _, pp := range preps {
			s := pp.Stats()
			es.Materialised += s.Materialised
			es.Reweighted += s.Reweighted
		}
		reg.Counter("encode.materialise").Add(float64(es.Materialised))
		reg.Counter("encode.reweight").Add(float64(es.Reweighted))
	}
	out, err := finalize(p, ttlSol, "incremental", start)
	if err != nil {
		return nil, err
	}
	out.NumPartitions = len(subs)
	out.ReappliedSavings = reapplied
	out.Sweeps = sweeps
	out.Timings = tm
	out.Degradations = degs
	out.DAG = dagStats
	cr.commit(p, out, preps, sink)
	return out, nil
}

// incrementalSequential is the strictly sequential chain of Algorithm 2:
// partial problems in index order, one DSS pass over all remaining partial
// problems after each merge. It mutates ttlSol, pending and tm, and returns
// the performed sweeps, the re-applied savings magnitude and the
// degradations in sub index order.
func incrementalSequential(ctx context.Context, p *mqo.Problem, subs []*mqo.SubProblem, preps []*encoding.PreparedMQO, warms [][]int8, pending [][]mqo.Saving, ttlSol *mqo.Solution, tm *PhaseTimings, opt Options, rec *ckptRecorder, rs *resumeState) (int, float64, []Degradation, error) {
	sink := obs.FromContext(ctx)
	sweeps := 0
	var reapplied float64
	var degs []Degradation
	// dirty[i] is set whenever a DSS pass adjusts any cost of subs[i],
	// invalidating a speculatively materialised encoding. selected marks
	// the plans of the incumbent solution and is maintained incrementally
	// across merges (each merge only adds its own sub's selections), so a
	// DSS pass costs O(pending) rather than O(queries + pending).
	dirty := make([]bool, len(subs))
	selected := make([]bool, p.NumPlans())
	enc := preps[0].Encoding()
	// Overlapped encode time is accumulated separately: the goroutine runs
	// while the device anneals, so it adds phase work without wall-clock.
	var overlapEncNanos int64
	for i, sub := range subs {
		subCtx := ctx
		if sink.Enabled() {
			subCtx = obs.WithLabel(ctx, subLabel(i))
		}
		// Each partial problem is a "sub" span under the session (or wave)
		// span; the index keeps the id deterministic.
		var subSpan *obs.Span
		subCtx, subSpan = sink.StartSpanIndexed(subCtx, "sub", i)
		// Materialise the next encoding while the device works on this one.
		// Its costs are only touched by the dss call below, after the join.
		var specWG sync.WaitGroup
		var specEnc *encoding.MQOEncoding
		if i+1 < len(subs) {
			dirty[i+1] = false // the materialisation below reflects current costs
			specWG.Add(1)
			go func(pp *encoding.PreparedMQO) {
				defer specWG.Done()
				t0 := time.Now()
				specEnc = pp.Encoding()
				atomic.AddInt64(&overlapEncNanos, int64(time.Since(t0)))
			}(preps[i+1])
		}
		var best *mqo.Solution
		var performed int
		var st subTimings
		var subDeg *Degradation
		if dc := rs.sub(i); dc != nil {
			// Resume replay: the checkpoint holds this sub-problem's final
			// selections — reinstall them instead of re-running the device.
			// The merge and the DSS pass below run exactly as they would
			// have, so downstream cost adjustments stay float-identical.
			var derr error
			best, derr = dc.localSolution(sub)
			specWG.Wait()
			if derr != nil {
				return 0, 0, nil, derr
			}
			performed = dc.Sweeps
			subDeg = dc.Degraded
			if subDeg != nil {
				degs = append(degs, *subDeg)
			}
			if sink.Enabled() {
				sink.EmitCtx(subCtx, obs.Event{Name: "replay", Label: subLabel(i), Sweeps: performed})
			}
		} else {
			var err error
			best, performed, st, err = solveEncoded(subCtx, opt.Device, enc, opt.Runs, opt.partitionSweeps(len(subs), i), opt.Seed+int64(1000+i), warms[i], opt.Parallelism)
			specWG.Wait()
			if err != nil {
				if opt.FailFast || isPipelineError(err) {
					return 0, 0, nil, err
				}
				// Graceful degradation: the device is gone for this partial
				// problem, but the incumbent and the remaining sub-problems are
				// fine. Complete this one greedily on its DSS-adjusted costs and
				// carry on.
				var d Degradation
				best, d = degrade(subCtx, sub.Local, i, opt.Device.Name(), err)
				degs = append(degs, d)
				subDeg = &d
			}
		}
		sweeps += performed
		tm.Anneal += st.anneal
		tm.Decode += st.decode
		decStart := time.Now()
		global, err := sub.ToGlobal(p, best)
		if err != nil {
			return 0, 0, nil, err
		}
		if err := ttlSol.Merge(global); err != nil {
			return 0, 0, nil, err
		}
		for _, q := range sub.Queries {
			if pl := ttlSol.Selected[q]; pl != mqo.Unassigned {
				selected[pl] = true
			}
		}
		tm.Decode += time.Since(decStart)
		// An interrupted device solve returns its truncated best-so-far
		// without error, which must not enter a checkpoint: replaying it
		// would diverge from an uninterrupted run. Cancelled subs stay
		// unrecorded and simply re-solve after resume. Replayed subs carry
		// exact checkpoint values, so they record regardless.
		if subCtx.Err() == nil || rs.sub(i) != nil {
			rec.record(i, sub, global, performed, subDeg)
		}
		if sink.Enabled() {
			// Incumbent global cost after each merge: Cost skips unassigned
			// queries, so the trajectory of these events is the incremental
			// strategy's convergence at partial-problem granularity.
			cost := ttlSol.Cost(p)
			sink.EmitCtx(subCtx, obs.Event{Name: "merge", Label: subLabel(i), N: i + 1, Value: cost})
			subSpan.EndWith(obs.Event{Value: cost})
		}
		if i+1 < len(subs) {
			enc = specEnc
			if !opt.DisableDSS {
				dssStart := time.Now()
				applied := dss(selected, subs[i+1:], pending[i+1:], dirty[i+1:])
				dssDur := time.Since(dssStart)
				reapplied += applied
				tm.DSS += dssDur
				if sink.Enabled() {
					dirtied := 0
					for _, d := range dirty[i+1:] {
						if d {
							dirtied++
						}
					}
					sink.EmitCtx(ctx, obs.Event{Name: "dss", Label: subLabel(i), Dur: dssDur, Value: applied, N: dirtied})
					if reg := sink.Metrics(); reg != nil {
						reg.Counter("dss.passes").Add(1)
						reg.Counter("dss.applied").Add(applied)
					}
				}
			}
			if dirty[i+1] {
				// The pass adjusted the next sub-problem's costs after its
				// encoding was speculatively materialised: patch it with one
				// allocation-free reweight pass over the prepared skeleton.
				t0 := time.Now()
				enc = preps[i+1].Encoding()
				patch := time.Since(t0)
				tm.Encode += patch
				if sink.Enabled() {
					sink.EmitCtx(ctx, obs.Event{Name: "encode", Label: subLabel(i + 1), Dur: patch, N: 1})
				}
				dirty[i+1] = false
			}
		}
	}
	tm.Encode += time.Duration(atomic.LoadInt64(&overlapEncNanos))
	return sweeps, reapplied, degs, nil
}

// dss implements Algorithm 3: for every still-unsolved partial problem and
// every pending discarded saving, when one endpoint has been selected into
// the intermediate solution and the other endpoint is a plan of the
// unsolved problem, that plan's cost is reduced by the saving's value. The
// saving is then consumed and the sub-problem flagged dirty so cached
// encodings know to re-materialise. selected marks the plans of the
// intermediate solution; the caller maintains it across merges. Returns the
// re-applied magnitude.
func dss(selected []bool, remaining []*mqo.SubProblem, pending [][]mqo.Saving, dirty []bool) float64 {
	var reapplied float64
	for i, sub := range remaining {
		kept := pending[i][:0]
		for _, s := range pending[i] {
			plan, selPlan := -1, -1
			if _, in := sub.LocalPlan(s.P1); in {
				plan, selPlan = s.P1, s.P2
			} else if _, in := sub.LocalPlan(s.P2); in {
				plan, selPlan = s.P2, s.P1
			}
			if plan >= 0 && selected[selPlan] {
				sub.AdjustCost(plan, s.Value)
				reapplied += s.Value
				dirty[i] = true
				continue
			}
			kept = append(kept, s)
		}
		pending[i] = kept
	}
	return reapplied
}

// solveWhole solves an unpartitioned problem directly on the device.
func solveWhole(ctx context.Context, p *mqo.Problem, opt Options, strategy string, start time.Time) (*Outcome, error) {
	sub, err := mqo.Extract(p, allQueries(p))
	if err != nil {
		return nil, err
	}
	var tm PhaseTimings
	encStart := time.Now()
	pp, err := encoding.PrepareMQO(sub.Local)
	if err != nil {
		return nil, err
	}
	enc := pp.Encoding()
	tm.Encode = time.Since(encStart)
	best, performed, st, err := solveEncoded(ctx, opt.Device, enc, opt.Runs, opt.partitionSweeps(1, 0), opt.Seed, nil, opt.Parallelism)
	var degs []Degradation
	if err != nil {
		if opt.FailFast || isPipelineError(err) {
			return nil, err
		}
		var d Degradation
		best, d = degrade(ctx, sub.Local, -1, opt.Device.Name(), err)
		degs = append(degs, d)
	}
	tm.Anneal = st.anneal
	tm.Decode = st.decode
	decStart := time.Now()
	global, err := sub.ToGlobal(p, best)
	if err != nil {
		return nil, err
	}
	tm.Decode += time.Since(decStart)
	out, err := finalize(p, global, strategy, start)
	if err != nil {
		return nil, err
	}
	out.NumPartitions = 1
	out.Sweeps = performed
	out.Timings = tm
	out.Degradations = degs
	return out, nil
}

func allQueries(p *mqo.Problem) []int {
	qs := make([]int, p.NumQueries())
	for i := range qs {
		qs[i] = i
	}
	return qs
}
