package core

import (
	"context"
	"time"

	"incranneal/internal/mqo"
)

// SolveIncremental runs the paper's incremental optimisation with dynamic
// search steering (Algorithms 2 and 3). The problem is partitioned to the
// device capacity; partial problems are then solved in sequence, each
// encoded *after* DSS has folded the savings towards already-selected plans
// into its plan costs, and the best partial solution w.r.t. the incumbent
// total solution is merged in.
//
// Problems that already fit the device skip partitioning and are solved
// directly; the strategies then coincide.
func SolveIncremental(ctx context.Context, p *mqo.Problem, opt Options) (*Outcome, error) {
	start := time.Now()
	if !opt.needsPartitioning(p) {
		return solveWhole(ctx, p, opt, "incremental", start)
	}
	part, err := opt.partitionProblem(ctx, p)
	if err != nil {
		return nil, err
	}
	out, err := IncrementalOverSubProblems(ctx, p, part.SubProblems, opt)
	if err != nil {
		return nil, err
	}
	out.DiscardedSavings = part.DiscardedSavings
	out.Elapsed = time.Since(start)
	return out, nil
}

// IncrementalOverSubProblems runs Algorithm 2 over an already-partitioned
// problem, processing the partial problems in the given order. It is the
// optimisation phase of SolveIncremental, exposed for callers that control
// partitioning themselves. The sub-problems' adjusted costs are consumed
// (DSS mutates them); do not reuse sub across calls.
func IncrementalOverSubProblems(ctx context.Context, p *mqo.Problem, subs []*mqo.SubProblem, opt Options) (*Outcome, error) {
	start := time.Now()
	perSub := opt.perPartitionSweeps(len(subs))
	ttlSol := mqo.NewSolution(p)
	sweeps := 0
	var reapplied float64
	// pending[i] tracks the not-yet-applied discarded savings of subs[i];
	// DSS consumes a saving when it adjusts a plan cost, so the repeated
	// passes of Algorithm 3 never double-apply it.
	pending := make([][]mqo.Saving, len(subs))
	for i, sub := range subs {
		pending[i] = append([]mqo.Saving(nil), sub.Discarded...)
	}
	for i, sub := range subs {
		sols, performed, err := solveSub(ctx, opt.Device, sub, opt.Runs, perSub, opt.Seed+int64(1000+i), opt.Parallelism)
		if err != nil {
			return nil, err
		}
		sweeps += performed
		best, _ := bestLocal(sub, sols)
		global, err := sub.ToGlobal(p, best)
		if err != nil {
			return nil, err
		}
		if err := ttlSol.Merge(global); err != nil {
			return nil, err
		}
		if i+1 < len(subs) && !opt.DisableDSS {
			reapplied += dss(ttlSol, subs[i+1:], pending[i+1:])
		}
	}
	out, err := finalize(p, ttlSol, "incremental", start)
	if err != nil {
		return nil, err
	}
	out.NumPartitions = len(subs)
	out.ReappliedSavings = reapplied
	out.Sweeps = sweeps
	return out, nil
}

// dss implements Algorithm 3: for every still-unsolved partial problem and
// every pending discarded saving, when one endpoint has been selected into
// the intermediate solution and the other endpoint is a plan of the
// unsolved problem, that plan's cost is reduced by the saving's value. The
// saving is then consumed. Returns the re-applied magnitude.
func dss(intSol *mqo.Solution, remaining []*mqo.SubProblem, pending [][]mqo.Saving) float64 {
	selected := make(map[int]bool, len(intSol.Selected))
	for _, pl := range intSol.Selected {
		if pl != mqo.Unassigned {
			selected[pl] = true
		}
	}
	var reapplied float64
	for i, sub := range remaining {
		kept := pending[i][:0]
		for _, s := range pending[i] {
			plan, selPlan := -1, -1
			if _, in := sub.LocalPlan(s.P1); in {
				plan, selPlan = s.P1, s.P2
			} else if _, in := sub.LocalPlan(s.P2); in {
				plan, selPlan = s.P2, s.P1
			}
			if plan >= 0 && selected[selPlan] {
				sub.AdjustCost(plan, s.Value)
				reapplied += s.Value
				continue
			}
			kept = append(kept, s)
		}
		pending[i] = kept
	}
	return reapplied
}

// solveWhole solves an unpartitioned problem directly on the device.
func solveWhole(ctx context.Context, p *mqo.Problem, opt Options, strategy string, start time.Time) (*Outcome, error) {
	sub, err := mqo.Extract(p, allQueries(p))
	if err != nil {
		return nil, err
	}
	sols, performed, err := solveSub(ctx, opt.Device, sub, opt.Runs, opt.perPartitionSweeps(1), opt.Seed, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	best, _ := bestLocal(sub, sols)
	global, err := sub.ToGlobal(p, best)
	if err != nil {
		return nil, err
	}
	out, err := finalize(p, global, strategy, start)
	if err != nil {
		return nil, err
	}
	out.NumPartitions = 1
	out.Sweeps = performed
	return out, nil
}

func allQueries(p *mqo.Problem) []int {
	qs := make([]int, p.NumQueries())
	for i := range qs {
		qs[i] = i
	}
	return qs
}
