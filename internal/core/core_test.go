package core

import (
	"context"
	"math/rand"
	"testing"

	"incranneal/internal/da"
	"incranneal/internal/mqo"
	"incranneal/internal/sa"
	"incranneal/internal/solver"
)

// paperOptions returns a small-device configuration forcing the paper
// example to be split into two partitions of two queries each.
func paperOptions() Options {
	return Options{
		Device:   &da.Solver{CapacityVars: 4},
		Capacity: 4,
		Runs:     8,
		Seed:     1,
	}
}

func TestIncrementalRecoversPaperOptimum(t *testing.T) {
	// Example 4.7: processing part1 = (q1,q2) first and steering part2
	// with DSS recovers the global optimum of 25, while independent
	// processing yields 32.
	p := mqo.PaperExample()
	sub1, err := mqo.Extract(p, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := mqo.Extract(p, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	out, err := IncrementalOverSubProblems(context.Background(), p, []*mqo.SubProblem{sub1, sub2}, paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Cost != 25 {
		t.Errorf("incremental cost = %v, want 25", out.Cost)
	}
	want := []int{1, 3, 4, 6} // (p2, p4, p5, p7)
	for q, pl := range out.Solution.Selected {
		if pl != want[q] {
			t.Errorf("selection = %v, want %v", out.Solution.Selected, want)
			break
		}
	}
	// DSS must have re-applied both discarded savings (s27 and s45 → 10).
	if out.ReappliedSavings != 10 {
		t.Errorf("reapplied savings = %v, want 10", out.ReappliedSavings)
	}
	if out.NumPartitions != 2 {
		t.Errorf("partitions = %d, want 2", out.NumPartitions)
	}
}

func TestParallelYieldsPaperSuboptimal(t *testing.T) {
	// Example 4.6: independent processing of the two partitions merges to
	// (p2,p4,p6,p8) at cost 32.
	p := mqo.PaperExample()
	opt := paperOptions()
	opt.PartitionSolver = &da.Solver{CapacityVars: 64}
	out, err := SolveParallel(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cost != 32 {
		t.Errorf("parallel cost = %v, want 32", out.Cost)
	}
	if out.NumPartitions != 2 {
		t.Errorf("partitions = %d, want 2", out.NumPartitions)
	}
	if out.DiscardedSavings != 10 {
		t.Errorf("discarded = %v, want 10", out.DiscardedSavings)
	}
}

func TestIncrementalFullPipelineBeatsParallel(t *testing.T) {
	// End-to-end (partitioning on the annealer + DSS): incremental must
	// reach 25 when the annealer-found cut is the documented one, or at
	// worst match parallel.
	p := mqo.PaperExample()
	opt := paperOptions()
	opt.PartitionSolver = &da.Solver{CapacityVars: 64}
	inc, err := SolveIncremental(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SolveParallel(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Cost > par.Cost {
		t.Errorf("incremental (%v) worse than parallel (%v)", inc.Cost, par.Cost)
	}
	if inc.Cost != 25 && inc.Cost != 32 {
		t.Errorf("incremental cost = %v, want 25 (or 32 under the mirrored processing order)", inc.Cost)
	}
}

func TestDefaultStrategyOnSmallDevice(t *testing.T) {
	// 8 plans on a 4-variable DA: SolveDefault must route through the
	// vendor decomposition and still produce a valid solution.
	p := mqo.PaperExample()
	out, err := SolveDefault(context.Background(), p, Options{
		Device: &da.Solver{CapacityVars: 4},
		Runs:   4,
		Seed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Solution.Validate(p); err != nil {
		t.Fatalf("default solution invalid: %v", err)
	}
	if out.Cost > 36 {
		t.Errorf("default cost = %v, want ≤ 36", out.Cost)
	}
}

func TestDefaultStrategyRequiresLargeSolver(t *testing.T) {
	p := mqo.PaperExample()
	_, err := SolveDefault(context.Background(), p, Options{
		Device: &capacityOnlySolver{inner: &sa.Solver{}},
		Seed:   1,
	})
	if err == nil {
		t.Error("SolveDefault accepted capacity-limited device without vendor decomposition")
	}
}

// capacityOnlySolver wraps SA with an artificial 4-variable capacity and no
// SolveLarge, to exercise the error path.
type capacityOnlySolver struct{ inner *sa.Solver }

func (c *capacityOnlySolver) Name() string  { return "capped-sa" }
func (c *capacityOnlySolver) Capacity() int { return 4 }
func (c *capacityOnlySolver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	return c.inner.Solve(ctx, req)
}

func TestWithinCapacitySolvesDirectly(t *testing.T) {
	p := mqo.PaperExample()
	for _, solve := range []func(context.Context, *mqo.Problem, Options) (*Outcome, error){
		SolveIncremental, SolveParallel, SolveDefault,
	} {
		out, err := solve(context.Background(), p, Options{
			Device: &da.Solver{CapacityVars: 64},
			Runs:   8,
			Seed:   3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if out.NumPartitions != 1 {
			t.Errorf("%s: partitions = %d, want 1", out.Strategy, out.NumPartitions)
		}
		if out.Cost != 25 {
			t.Errorf("%s: cost = %v, want 25 (problem fits device)", out.Strategy, out.Cost)
		}
	}
}

func TestIncrementalOnRandomCommunityInstance(t *testing.T) {
	// A structured instance with two strong communities: incremental must
	// produce a valid complete solution no worse than parallel.
	rng := rand.New(rand.NewSource(9))
	p := communityProblem(rng, 12, 3)
	opt := Options{
		Device:      &da.Solver{CapacityVars: 18},
		Capacity:    18,
		Runs:        6,
		TotalSweeps: 8000,
		Seed:        4,
	}
	inc, err := SolveIncremental(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SolveParallel(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Cost > par.Cost+1e-9 {
		t.Errorf("incremental (%v) worse than parallel (%v) on community instance", inc.Cost, par.Cost)
	}
	if !inc.Solution.Complete() || !par.Solution.Complete() {
		t.Error("incomplete solutions")
	}
}

// communityProblem builds an instance with two dense communities and sparse
// cross links.
func communityProblem(rng *rand.Rand, queries, ppq int) *mqo.Problem {
	costs := make([][]float64, queries)
	for q := range costs {
		cs := make([]float64, ppq)
		for i := range cs {
			cs[i] = 20 + rng.Float64()*20
		}
		costs[q] = cs
	}
	community := func(q int) int { return q * 2 / queries }
	var savings []mqo.Saving
	for q1 := 0; q1 < queries; q1++ {
		for q2 := q1 + 1; q2 < queries; q2++ {
			density := 0.05
			if community(q1) == community(q2) {
				density = 0.6
			}
			for i := 0; i < ppq; i++ {
				for j := 0; j < ppq; j++ {
					if rng.Float64() < density {
						savings = append(savings, mqo.Saving{
							P1:    q1*ppq + i,
							P2:    q2*ppq + j,
							Value: 1 + rng.Float64()*9,
						})
					}
				}
			}
		}
	}
	p, err := mqo.NewProblem(costs, savings)
	if err != nil {
		panic(err)
	}
	return p
}
