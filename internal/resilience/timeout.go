package resilience

import (
	"context"
	"fmt"
	"time"

	"incranneal/internal/solver"
)

// Timeout bounds each solve with a per-call deadline. It leans on the
// device cancellation contract: every device in this repo checks its context
// between sweeps and returns its best-so-far samples when cancelled, so an
// expired deadline yields a usable (if shorter) result rather than an
// error. A device that truly produced nothing before the deadline surfaces
// as an empty Result, which the pipeline's degradation path repairs.
type Timeout struct {
	Inner solver.Solver
	// D is the per-solve deadline; values <= 0 disable the layer.
	D time.Duration
}

// NewTimeout wraps inner with a per-solve deadline d.
func NewTimeout(inner solver.Solver, d time.Duration) *Timeout {
	return &Timeout{Inner: inner, D: d}
}

func (t *Timeout) Name() string  { return t.Inner.Name() }
func (t *Timeout) Capacity() int { return t.Inner.Capacity() }

// Solve runs the inner solve under the deadline.
func (t *Timeout) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	return t.solve(ctx, req, t.Inner.Solve)
}

// SolveLarge runs the inner device's vendor decomposition under the
// deadline.
func (t *Timeout) SolveLarge(ctx context.Context, req solver.Request) (*solver.Result, error) {
	ls, ok := t.Inner.(solver.LargeSolver)
	if !ok {
		return nil, fmt.Errorf("resilience: device %s offers no default partitioning", t.Inner.Name())
	}
	return t.solve(ctx, req, ls.SolveLarge)
}

func (t *Timeout) solve(ctx context.Context, req solver.Request, inner func(context.Context, solver.Request) (*solver.Result, error)) (*solver.Result, error) {
	if t.D <= 0 {
		return inner(ctx, req)
	}
	tctx, cancel := context.WithTimeout(ctx, t.D)
	defer cancel()
	return inner(tctx, req)
}
