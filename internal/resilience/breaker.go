package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"incranneal/internal/obs"
	"incranneal/internal/solver"
)

// ErrOpen is returned (wrapped) when a tripped breaker rejects a solve
// without consulting the device. It is terminal by design: retrying a
// breaker-open failure on the same device would defeat the breaker, so
// recovery must escalate to the Fallback chain.
var ErrOpen = errors.New("resilience: circuit breaker open")

// Breaker is a consecutive-failure circuit breaker. After Threshold solves
// in a row fail, the circuit opens and further solves fail fast with
// ErrOpen. A Cooldown > 0 makes the breaker half-open after rejecting that
// many calls: one probe reaches the device, and its outcome closes or
// re-opens the circuit. Counting calls rather than wall-clock time keeps
// the breaker deterministic when solves are issued sequentially; with
// concurrent solves the trip point follows completion order (documented in
// DESIGN.md). With no faults the breaker never trips and is inert.
type Breaker struct {
	Inner     solver.Solver
	Threshold int
	Cooldown  int

	mu       sync.Mutex
	failures int // consecutive failures while closed
	open     bool
	rejected int // calls rejected since the circuit opened
	trips    int
}

// NewBreaker wraps inner, tripping after threshold consecutive failures and
// half-opening after cooldown rejected calls (0: stays open).
func NewBreaker(inner solver.Solver, threshold, cooldown int) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{Inner: inner, Threshold: threshold, Cooldown: cooldown}
}

func (b *Breaker) Name() string  { return b.Inner.Name() }
func (b *Breaker) Capacity() int { return b.Inner.Capacity() }

// Trips reports how many times the circuit has opened.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Solve consults the circuit, then the device.
func (b *Breaker) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	return b.solve(ctx, req, b.Inner.Solve)
}

// SolveLarge applies the same circuit to the inner device's vendor
// decomposition.
func (b *Breaker) SolveLarge(ctx context.Context, req solver.Request) (*solver.Result, error) {
	ls, ok := b.Inner.(solver.LargeSolver)
	if !ok {
		return nil, fmt.Errorf("resilience: device %s offers no default partitioning", b.Inner.Name())
	}
	return b.solve(ctx, req, ls.SolveLarge)
}

func (b *Breaker) solve(ctx context.Context, req solver.Request, inner func(context.Context, solver.Request) (*solver.Result, error)) (*solver.Result, error) {
	b.mu.Lock()
	if b.open {
		if b.Cooldown > 0 && b.rejected >= b.Cooldown {
			// Half-open: let this call probe the device.
			b.rejected = 0
		} else {
			b.rejected++
			b.mu.Unlock()
			return nil, fmt.Errorf("%w: device %s", ErrOpen, b.Inner.Name())
		}
	}
	b.mu.Unlock()

	res, err := inner(ctx, req)

	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.failures = 0
		b.open = false
		return res, nil
	}
	b.failures++
	if !b.open && b.failures >= b.Threshold {
		b.open = true
		b.rejected = 0
		b.trips++
		if sink := obs.FromContext(ctx); sink.Enabled() {
			sink.EmitCtx(ctx, obs.Event{Name: "trip", Device: b.Inner.Name(), Label: obs.LabelFromContext(ctx), N: b.failures})
			if reg := sink.Metrics(); reg != nil {
				reg.Counter("resilience.trips").Add(1)
			}
		}
	} else if b.open {
		// A failed half-open probe re-opens the circuit.
		b.rejected = 0
	}
	return nil, err
}
