package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"incranneal/internal/encoding"
	"incranneal/internal/faultinject"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
	"incranneal/internal/sa"
	"incranneal/internal/solver"
)

func paperRequest(t *testing.T) solver.Request {
	t.Helper()
	p := mqo.PaperExample()
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	return solver.Request{Model: enc.Model, Runs: 4, Sweeps: 100, Seed: 7}
}

// scriptSolver fails according to a per-call error script (nil = succeed),
// counting calls. Errors past the script's end repeat the last entry.
type scriptSolver struct {
	name   string
	cap    int
	script []error

	mu    sync.Mutex
	calls int
}

func (s *scriptSolver) Name() string { return s.name }
func (s *scriptSolver) Capacity() int {
	return s.cap
}

func (s *scriptSolver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	s.mu.Lock()
	i := s.calls
	s.calls++
	s.mu.Unlock()
	if len(s.script) > 0 {
		if i >= len(s.script) {
			i = len(s.script) - 1
		}
		if err := s.script[i]; err != nil {
			return nil, err
		}
	}
	n := 0
	if req.Model != nil {
		n = req.Model.NumVariables()
	}
	return &solver.Result{Samples: []solver.Sample{{Assignment: make([]int8, n), Energy: float64(s.calls)}}}, nil
}

func (s *scriptSolver) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func transientErr() error {
	return solver.MarkTransient(errors.New("flaky network"))
}

func TestRetryRecoversFromTransients(t *testing.T) {
	dev := &scriptSolver{name: "flaky", script: []error{transientErr(), transientErr(), nil}}
	r := NewRetry(dev, RetryConfig{Attempts: 3, Base: time.Microsecond})
	res, err := r.Solve(context.Background(), solver.Request{})
	if err != nil {
		t.Fatalf("retry failed to recover: %v", err)
	}
	if _, ok := res.Best(); !ok {
		t.Fatal("no samples after recovery")
	}
	if dev.callCount() != 3 {
		t.Errorf("calls = %d, want 3", dev.callCount())
	}
}

func TestRetryStopsAtAttemptBudget(t *testing.T) {
	dev := &scriptSolver{name: "dead", script: []error{transientErr()}}
	r := NewRetry(dev, RetryConfig{Attempts: 3, Base: time.Microsecond})
	_, err := r.Solve(context.Background(), solver.Request{})
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if dev.callCount() != 3 {
		t.Errorf("calls = %d, want 3", dev.callCount())
	}
	var ae interface{ Attempts() int }
	if !errors.As(err, &ae) || ae.Attempts() != 3 {
		t.Errorf("error %v does not carry attempt count 3", err)
	}
	if !solver.IsTransient(err) {
		t.Error("exhausted-transient error lost its transient marker")
	}
}

func TestRetryDoesNotRetryTerminalErrors(t *testing.T) {
	boom := errors.New("device on fire")
	dev := &scriptSolver{name: "burnt", script: []error{boom}}
	r := NewRetry(dev, RetryConfig{Attempts: 5, Base: time.Microsecond})
	_, err := r.Solve(context.Background(), solver.Request{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if dev.callCount() != 1 {
		t.Errorf("terminal error retried: %d calls", dev.callCount())
	}
}

func TestRetryBackoffDeterministic(t *testing.T) {
	// The jitter fraction must be a pure function of (seed, reqSeed,
	// attempt) — no wall clock, no global RNG.
	for attempt := 1; attempt <= 4; attempt++ {
		a := jitterFrac(11, 42, attempt)
		b := jitterFrac(11, 42, attempt)
		if a != b {
			t.Fatalf("jitterFrac not deterministic: %v vs %v", a, b)
		}
		if a < 0 || a >= 1 {
			t.Fatalf("jitterFrac out of range: %v", a)
		}
	}
	if jitterFrac(11, 42, 1) == jitterFrac(12, 42, 1) {
		t.Error("jitter ignores middleware seed")
	}
	if jitterFrac(11, 42, 1) == jitterFrac(11, 43, 1) {
		t.Error("jitter ignores request seed")
	}
}

func TestTimeoutReturnsBestSoFar(t *testing.T) {
	req := paperRequest(t)
	req.Sweeps = 1 << 22
	to := NewTimeout(&sa.Solver{}, 30*time.Millisecond)
	start := time.Now()
	res, err := to.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("timeout did not bound the solve")
	}
	if len(res.Samples) == 0 {
		t.Error("timed-out solve returned no best-so-far samples")
	}
}

func TestBreakerTripsAndFailsFast(t *testing.T) {
	dev := &scriptSolver{name: "down", script: []error{transientErr()}}
	b := NewBreaker(dev, 2, 0)
	for i := 0; i < 5; i++ {
		if _, err := b.Solve(context.Background(), solver.Request{}); err == nil {
			t.Fatal("dead device reported success")
		}
	}
	// Threshold 2: two real attempts, then the circuit rejects the rest.
	if dev.callCount() != 2 {
		t.Errorf("device saw %d calls, want 2", dev.callCount())
	}
	if b.Trips() != 1 {
		t.Errorf("trips = %d, want 1", b.Trips())
	}
	_, err := b.Solve(context.Background(), solver.Request{})
	if !errors.Is(err, ErrOpen) {
		t.Errorf("open-circuit error = %v, want ErrOpen", err)
	}
	if solver.IsTransient(err) {
		t.Error("ErrOpen must be terminal so recovery escalates to fallback")
	}
}

func TestBreakerHalfOpensAfterCooldown(t *testing.T) {
	dev := &scriptSolver{name: "recovering", script: []error{transientErr(), transientErr(), nil}}
	b := NewBreaker(dev, 2, 2)
	// Two failures trip the circuit.
	b.Solve(context.Background(), solver.Request{})
	b.Solve(context.Background(), solver.Request{})
	// Two rejected calls during cooldown.
	for i := 0; i < 2; i++ {
		if _, err := b.Solve(context.Background(), solver.Request{}); !errors.Is(err, ErrOpen) {
			t.Fatalf("cooldown call %d: err = %v, want ErrOpen", i, err)
		}
	}
	// Next call probes the (now recovered) device and closes the circuit.
	if _, err := b.Solve(context.Background(), solver.Request{}); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if _, err := b.Solve(context.Background(), solver.Request{}); err != nil {
		t.Fatalf("closed-circuit solve failed: %v", err)
	}
	if dev.callCount() != 4 {
		t.Errorf("device saw %d calls, want 4 (2 failures + probe + success)", dev.callCount())
	}
}

func TestFallbackEscalatesAcrossDevices(t *testing.T) {
	primary := &scriptSolver{name: "hw", script: []error{errors.New("gone")}}
	backup := &scriptSolver{name: "sw"}
	f := NewFallback([]solver.Solver{primary, backup})
	res, err := f.Solve(context.Background(), solver.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Best(); !ok {
		t.Fatal("no samples from backup device")
	}
	if backup.callCount() != 1 {
		t.Errorf("backup saw %d calls, want 1", backup.callCount())
	}
	if f.Name() != "fallback(hw,sw)" {
		t.Errorf("Name = %q", f.Name())
	}
}

func TestFallbackRespectsCapacity(t *testing.T) {
	req := paperRequest(t)
	small := &scriptSolver{name: "tiny", cap: 1}
	big := &scriptSolver{name: "big"}
	f := NewFallback([]solver.Solver{small, big})
	if _, err := f.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if small.callCount() != 0 {
		t.Error("over-capacity device was consulted")
	}
	if big.callCount() != 1 {
		t.Error("capacity-compatible fallback not consulted")
	}
	// Chain capacity is the primary's: partitioning sizes for the intended
	// device.
	if f.Capacity() != 1 {
		t.Errorf("Capacity = %d, want primary's 1", f.Capacity())
	}
}

// largeScript adds vendor decomposition to scriptSolver so the fallback's
// SolveLarge path can be exercised; SolveLarge follows the same error
// script as Solve.
type largeScript struct {
	scriptSolver
	largeCalls int
}

func (s *largeScript) SolveLarge(ctx context.Context, req solver.Request) (*solver.Result, error) {
	s.largeCalls++
	return s.Solve(ctx, req)
}

func TestFallbackSolveLargeUsesPrimaryDecomposition(t *testing.T) {
	// The model exceeds the primary's capacity by construction whenever core
	// reaches for SolveLarge, so the chain's capacity gate must not skip the
	// primary's own decomposition (regression: it once did, degrading every
	// default-strategy run the moment a fallback device was configured).
	req := paperRequest(t)
	primary := &largeScript{scriptSolver: scriptSolver{name: "hw", cap: 1}}
	backup := &scriptSolver{name: "sw"}
	f := NewFallback([]solver.Solver{primary, backup})
	if _, err := f.SolveLarge(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if primary.largeCalls != 1 {
		t.Errorf("primary decomposition called %d times, want 1", primary.largeCalls)
	}
	if backup.callCount() != 0 {
		t.Error("healthy primary decomposition escalated to the backup")
	}

	// A failed decomposition falls through to a plain device that fits the
	// model whole, even though that device offers no decomposition itself.
	failing := &largeScript{scriptSolver: scriptSolver{name: "hw", cap: 1, script: []error{errors.New("decomposition down")}}}
	f = NewFallback([]solver.Solver{failing, backup})
	if _, err := f.SolveLarge(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if backup.callCount() != 1 {
		t.Error("failed decomposition did not fall through to the plain backup")
	}

	// A plain fallback device the model does not fit is skipped with an
	// error, not consulted.
	tiny := &scriptSolver{name: "tiny", cap: 1}
	f = NewFallback([]solver.Solver{failing, tiny})
	if _, err := f.SolveLarge(context.Background(), req); err == nil {
		t.Fatal("chain with no viable large path reported success")
	}
	if tiny.callCount() != 0 {
		t.Error("over-capacity plain fallback was consulted for a large model")
	}
}

func TestFallbackJoinsAllErrors(t *testing.T) {
	e1, e2 := errors.New("hw down"), errors.New("sw down")
	f := NewFallback([]solver.Solver{
		&scriptSolver{name: "a", script: []error{e1}},
		&scriptSolver{name: "b", script: []error{e2}},
	})
	_, err := f.Solve(context.Background(), solver.Request{})
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Errorf("joined error %v hides a device failure", err)
	}
	var ae interface{ Attempts() int }
	if !errors.As(err, &ae) || ae.Attempts() != 2 {
		t.Errorf("error %v does not carry total attempts 2", err)
	}
}

func TestWrapComposition(t *testing.T) {
	dev := &sa.Solver{}
	if got := Wrap([]solver.Solver{dev}, Config{}); got != solver.Solver(dev) {
		t.Error("zero config must return the device unchanged")
	}
	if got := Wrap(nil, Config{}); got != nil {
		t.Error("empty device list must return nil")
	}
	full := Wrap([]solver.Solver{&sa.Solver{}, &scriptSolver{name: "alt"}}, Config{
		Retries: 2, SolveTimeout: time.Second, BreakerThreshold: 3,
	})
	fb, ok := full.(*Fallback)
	if !ok {
		t.Fatalf("outermost layer = %T, want *Fallback", full)
	}
	br, ok := fb.Devices[0].(*Breaker)
	if !ok {
		t.Fatalf("second layer = %T, want *Breaker", fb.Devices[0])
	}
	re, ok := br.Inner.(*Retry)
	if !ok {
		t.Fatalf("third layer = %T, want *Retry", br.Inner)
	}
	if _, ok := re.Inner.(*Timeout); !ok {
		t.Fatalf("fourth layer = %T, want *Timeout", re.Inner)
	}
}

// TestWrapNoFaultBitIdentity pins the core resilience invariant: with no
// faults, the full middleware stack returns bit-identical samples to the
// bare device for any Parallelism.
func TestWrapNoFaultBitIdentity(t *testing.T) {
	req := paperRequest(t)
	for _, par := range []int{-1, 1, 4} {
		req.Parallelism = par
		bare, err := (&sa.Solver{}).Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		wrapped := Wrap([]solver.Solver{&sa.Solver{}, &sa.Solver{BetaHot: 0.01}}, Config{
			Retries: 3, SolveTimeout: time.Minute, BreakerThreshold: 2, Seed: 5,
		})
		got, err := wrapped.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Samples) != len(bare.Samples) {
			t.Fatalf("parallelism %d: sample count %d vs %d", par, len(got.Samples), len(bare.Samples))
		}
		for i := range got.Samples {
			if got.Samples[i].Energy != bare.Samples[i].Energy {
				t.Fatalf("parallelism %d: sample %d energy diverged", par, i)
			}
			for v := range got.Samples[i].Assignment {
				if got.Samples[i].Assignment[v] != bare.Samples[i].Assignment[v] {
					t.Fatalf("parallelism %d: sample %d bit %d diverged", par, i, v)
				}
			}
		}
	}
}

// TestWrapRecoversInjectedFaults drives the full stack against the fault
// injector: transient faults are retried on the primary, a terminal kill
// escalates to the backup device, and the pipeline still gets samples.
func TestWrapRecoversInjectedFaults(t *testing.T) {
	req := paperRequest(t)
	primary := faultinject.New(&sa.Solver{}, faultinject.Config{TransientFirst: 2, TerminalAfter: 1})
	backup := &sa.Solver{}
	dev := Wrap([]solver.Solver{primary, backup}, Config{
		Retries: 3, RetryBase: time.Microsecond, BreakerThreshold: 5,
	})
	// Solve 1: two transient faults, then success on the third attempt.
	res, err := dev.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("transient faults not recovered: %v", err)
	}
	if _, ok := res.Best(); !ok {
		t.Fatal("no samples after retry recovery")
	}
	// Solve 2: the primary is now terminally dead; the chain must fall back.
	res, err = dev.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("terminal fault not escalated to backup: %v", err)
	}
	if _, ok := res.Best(); !ok {
		t.Fatal("no samples from backup")
	}
	st := primary.Stats()
	if st.Transients != 2 || st.Terminals == 0 {
		t.Errorf("injector stats = %+v", st)
	}
}

func TestMiddlewareEmitsObsEvents(t *testing.T) {
	reg := obs.NewRegistry()
	sink := obs.NewCollector(reg)
	ctx := obs.NewContext(context.Background(), sink)

	primary := &scriptSolver{name: "hw", script: []error{transientErr()}}
	backup := &scriptSolver{name: "sw"}
	dev := Wrap([]solver.Solver{primary, backup}, Config{
		Retries: 1, RetryBase: time.Microsecond, BreakerThreshold: 1,
	})
	if _, err := dev.Solve(ctx, solver.Request{}); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ev := range sink.Events() {
		counts[ev.Name]++
	}
	// One retry on the primary (attempt 1 -> 2), both attempts fail — one
	// exhausted solve trips the threshold-1 breaker -> fallback to sw.
	if counts["retry"] != 1 || counts["trip"] != 1 || counts["fallback"] != 1 {
		t.Errorf("event counts = %v, want retry/trip/fallback once each", counts)
	}
}

func TestLargeSolverPreservedThroughStack(t *testing.T) {
	// The stack must keep SolveLarge reachable so core.SolveDefault's type
	// assertion works on wrapped devices.
	var dev solver.Solver = Wrap([]solver.Solver{&sa.Solver{}}, Config{Retries: 1, SolveTimeout: time.Second, BreakerThreshold: 1})
	if _, ok := dev.(solver.LargeSolver); !ok {
		t.Fatal("wrapped device lost the LargeSolver interface")
	}
	// sa has no SolveLarge, so the call must fail cleanly, not panic.
	ls := dev.(solver.LargeSolver)
	if _, err := ls.SolveLarge(context.Background(), solver.Request{}); err == nil {
		t.Error("SolveLarge over a plain device must fail")
	}
}

func TestFallbackEmptyChain(t *testing.T) {
	f := NewFallback(nil)
	if _, err := f.Solve(context.Background(), solver.Request{}); err == nil {
		t.Error("empty chain reported success")
	}
	if f.Capacity() != 0 {
		t.Error("empty chain capacity != 0")
	}
}
