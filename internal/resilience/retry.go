package resilience

import (
	"context"
	"fmt"
	"time"

	"incranneal/internal/obs"
	"incranneal/internal/solver"
)

// RetryConfig bounds a Retry layer.
type RetryConfig struct {
	// Attempts is the total number of solve attempts (first try included).
	// Values below 1 mean 1.
	Attempts int
	// Base is the backoff before the second attempt; it doubles per
	// attempt, capped at Max, then stretched by up to +50% deterministic
	// jitter.
	Base time.Duration
	// Max caps the pre-jitter backoff.
	Max time.Duration
	// Seed drives the jitter (see jitterFrac).
	Seed int64
}

// Retry re-issues failed solves a bounded number of times with exponential
// backoff. Only transient errors (solver.IsTransient) are retried: terminal
// errors — capacity violations, programming errors, a tripped breaker —
// escalate immediately. The final error carries the attempt count via
// AttemptsError.
type Retry struct {
	Inner solver.Solver
	Cfg   RetryConfig
}

// NewRetry wraps inner with the bounded-retry policy cfg.
func NewRetry(inner solver.Solver, cfg RetryConfig) *Retry {
	if cfg.Attempts < 1 {
		cfg.Attempts = 1
	}
	return &Retry{Inner: inner, Cfg: cfg}
}

func (r *Retry) Name() string  { return r.Inner.Name() }
func (r *Retry) Capacity() int { return r.Inner.Capacity() }

// Solve attempts the inner solve up to Cfg.Attempts times.
func (r *Retry) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	return r.solve(ctx, req, r.Inner.Solve)
}

// SolveLarge retries the inner device's vendor decomposition under the same
// policy.
func (r *Retry) SolveLarge(ctx context.Context, req solver.Request) (*solver.Result, error) {
	ls, ok := r.Inner.(solver.LargeSolver)
	if !ok {
		return nil, fmt.Errorf("resilience: device %s offers no default partitioning", r.Inner.Name())
	}
	return r.solve(ctx, req, ls.SolveLarge)
}

func (r *Retry) solve(ctx context.Context, req solver.Request, inner func(context.Context, solver.Request) (*solver.Result, error)) (*solver.Result, error) {
	var err error
	for attempt := 1; ; attempt++ {
		var res *solver.Result
		res, err = inner(ctx, req)
		if err == nil {
			return res, nil
		}
		if !solver.IsTransient(err) || attempt >= r.Cfg.Attempts {
			return nil, withAttempts(err, attempt)
		}
		if sink := obs.FromContext(ctx); sink.Enabled() {
			sink.EmitCtx(ctx, obs.Event{Name: "retry", Device: r.Inner.Name(), Label: obs.LabelFromContext(ctx), Run: attempt})
			if reg := sink.Metrics(); reg != nil {
				reg.Counter("resilience.retries").Add(1)
			}
		}
		if !r.sleep(ctx, attempt, req.Seed) {
			// Context cancelled while backing off: report the solve error,
			// not the cancellation — the caller inspects ctx separately.
			return nil, withAttempts(err, attempt)
		}
	}
}

// sleep blocks for the attempt's backoff, returning false if the context
// was cancelled first.
func (r *Retry) sleep(ctx context.Context, attempt int, reqSeed int64) bool {
	d := r.Cfg.Base << (attempt - 1)
	if r.Cfg.Max > 0 && d > r.Cfg.Max {
		d = r.Cfg.Max
	}
	if d <= 0 {
		return ctx.Err() == nil
	}
	// Up to +50% deterministic jitter decorrelates co-scheduled retries
	// without breaking replayability.
	d += time.Duration(jitterFrac(r.Cfg.Seed, reqSeed, attempt) * 0.5 * float64(d))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
