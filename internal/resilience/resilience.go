// Package resilience provides composable middleware around the
// solver.Solver interface: bounded Retry with deterministic exponential
// backoff, a per-solve Timeout, a consecutive-failure circuit Breaker and an
// ordered device Fallback chain. Each middleware is itself a solver.Solver
// (and a solver.LargeSolver when its inner device is one), so layers stack
// freely; Wrap applies the canonical composition
//
//	Fallback( Breaker(Retry(Timeout(primary))), Breaker(Retry(Timeout(alt))), ... )
//
// i.e. per-device local recovery first (retry transient errors under a
// deadline, trip the breaker when the device looks dead), then cross-device
// escalation.
//
// Two invariants carry over from the device layer:
//
//   - Determinism off the failure path. With no faults, the first attempt
//     succeeds, the breaker stays closed and the primary device answers, so a
//     wrapped pipeline returns bit-identical samples to the bare device for
//     any Request.Parallelism (pinned by the conformance suite). Backoff
//     jitter is a pure function of the configured seed, the request seed and
//     the attempt index — never wall-clock or global RNG — so even failure
//     paths replay identically when device solves are issued sequentially.
//   - Error taxonomy. Only errors marked with solver.MarkTransient are
//     retried; everything else (capacity, programming errors, injected
//     terminal faults, breaker-open) escalates immediately to the next layer.
//
// All middleware emit obs events ("retry", "trip", "fallback") and counters
// when a sink is on the context, and emit nothing otherwise.
//
// State (breaker trip counts, retry budgets) lives inside the wrapped
// stack, not in globals: callers that need isolated failure domains build
// one stack per domain — the serving fleet (internal/serve) builds one per
// worker slot, so a device tripping on one slot does not poison the others.
package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"incranneal/internal/solver"
)

// Config parameterises the canonical Wrap composition. The zero value adds
// no middleware at all: Wrap then returns the primary device unchanged.
type Config struct {
	// Retries is the number of re-attempts after a failed solve (so
	// Retries=2 means up to 3 attempts). 0 disables the Retry layer.
	Retries int
	// RetryBase is the backoff before the first re-attempt; it doubles per
	// attempt. 0 means 5ms.
	RetryBase time.Duration
	// RetryMax caps the (pre-jitter) backoff. 0 means 250ms.
	RetryMax time.Duration
	// SolveTimeout bounds each device solve; on expiry the device returns
	// its best-so-far samples (the device cancellation contract). 0
	// disables the Timeout layer.
	SolveTimeout time.Duration
	// BreakerThreshold trips the circuit breaker after this many
	// consecutive failed solves. 0 disables the Breaker layer.
	BreakerThreshold int
	// BreakerCooldown is how many fast-failed solves a tripped breaker
	// rejects before letting a probe attempt through (half-open). 0 means
	// the breaker stays open once tripped.
	BreakerCooldown int
	// Seed drives the deterministic backoff jitter.
	Seed int64
}

func (c Config) retryBase() time.Duration {
	if c.RetryBase > 0 {
		return c.RetryBase
	}
	return 5 * time.Millisecond
}

func (c Config) retryMax() time.Duration {
	if c.RetryMax > 0 {
		return c.RetryMax
	}
	return 250 * time.Millisecond
}

// Wrap composes the configured middleware around each device and chains the
// devices into a Fallback (first device is the primary). With a zero Config
// and a single device, the device is returned unchanged.
func Wrap(devs []solver.Solver, cfg Config) solver.Solver {
	if len(devs) == 0 {
		return nil
	}
	wrapped := make([]solver.Solver, len(devs))
	for i, dev := range devs {
		s := dev
		if cfg.SolveTimeout > 0 {
			s = NewTimeout(s, cfg.SolveTimeout)
		}
		if cfg.Retries > 0 {
			s = NewRetry(s, RetryConfig{
				Attempts: cfg.Retries + 1,
				Base:     cfg.retryBase(),
				Max:      cfg.retryMax(),
				Seed:     cfg.Seed,
			})
		}
		if cfg.BreakerThreshold > 0 {
			s = NewBreaker(s, cfg.BreakerThreshold, cfg.BreakerCooldown)
		}
		wrapped[i] = s
	}
	if len(wrapped) == 1 {
		return wrapped[0]
	}
	return NewFallback(wrapped)
}

// AttemptsError reports how many attempts a Retry layer (or a Fallback
// chain) consumed before giving up. Callers that need the count without
// importing this package can extract it structurally:
//
//	var ae interface{ Attempts() int }
//	if errors.As(err, &ae) { n := ae.Attempts() }
type AttemptsError struct {
	Count int
	Err   error
}

func (e *AttemptsError) Error() string {
	return fmt.Sprintf("after %d attempts: %v", e.Count, e.Err)
}

func (e *AttemptsError) Unwrap() error { return e.Err }

// Attempts returns the number of solve attempts consumed.
func (e *AttemptsError) Attempts() int { return e.Count }

// withAttempts wraps err with an attempt count, collapsing nested counts
// into their sum so a Fallback over Retry layers reports total work.
func withAttempts(err error, n int) error {
	if err == nil {
		return nil
	}
	var prev *AttemptsError
	if errors.As(err, &prev) {
		// Keep the innermost cause; the outer layer owns the total.
		return &AttemptsError{Count: n, Err: prev.Err}
	}
	return &AttemptsError{Count: n, Err: err}
}

// attemptCount extracts a nested attempt count, defaulting to 1 (the solve
// itself) when none is recorded.
func attemptCount(err error) int {
	var ae *AttemptsError
	if errors.As(err, &ae) {
		return ae.Count
	}
	return 1
}

// jitterFrac returns a deterministic jitter fraction in [0, 1) derived from
// the middleware seed, the request seed and the attempt index. Pure
// function: the same triple always yields the same fraction, so backoff
// schedules replay identically run to run.
func jitterFrac(seed, reqSeed int64, attempt int) float64 {
	src := rand.NewSource(seed ^ (reqSeed * 0x9E3779B9) ^ int64(attempt)*0x85EBCA6B)
	return rand.New(src).Float64()
}
