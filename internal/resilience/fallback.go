package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"incranneal/internal/obs"
	"incranneal/internal/solver"
)

// Fallback tries an ordered chain of devices: the first (primary) device
// answers unless it fails, in which case the next capacity-compatible
// device is tried, and so on. Any failure — transient or terminal — moves
// down the chain; per-device retry policy belongs in a Retry layer *inside*
// the chain (see Wrap). The chain's error joins every device's error and
// carries the summed attempt count.
type Fallback struct {
	Devices []solver.Solver
}

// NewFallback chains devs in order; devs[0] is the primary.
func NewFallback(devs []solver.Solver) *Fallback {
	return &Fallback{Devices: devs}
}

// Name lists the chain, primary first.
func (f *Fallback) Name() string {
	names := make([]string, len(f.Devices))
	for i, d := range f.Devices {
		names[i] = d.Name()
	}
	return "fallback(" + strings.Join(names, ",") + ")"
}

// Capacity reports the primary device's capacity: partitioning decisions
// size sub-problems for the device the pipeline intends to use, and a
// fallback to a roomier software device never invalidates that sizing.
func (f *Fallback) Capacity() int {
	if len(f.Devices) == 0 {
		return 0
	}
	return f.Devices[0].Capacity()
}

// Solve tries each capacity-compatible device in order.
func (f *Fallback) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	return f.solve(ctx, req, func(dev solver.Solver) (*solver.Result, error) {
		if req.Model != nil {
			if err := solver.CheckCapacity(dev, req.Model); err != nil {
				return nil, err
			}
		}
		return dev.Solve(ctx, req)
	})
}

// SolveLarge tries each device's large-problem handling in order. The model
// exceeds the primary's capacity by construction (that is why the caller
// reached for SolveLarge), so no capacity gate applies to devices with their
// own decomposition; a device without one still serves when the model fits
// it whole, which lets an unbounded software device back a capacity-limited
// primary.
func (f *Fallback) SolveLarge(ctx context.Context, req solver.Request) (*solver.Result, error) {
	return f.solve(ctx, req, func(dev solver.Solver) (*solver.Result, error) {
		if ls, ok := dev.(solver.LargeSolver); ok {
			return ls.SolveLarge(ctx, req)
		}
		if req.Model != nil {
			if err := solver.CheckCapacity(dev, req.Model); err != nil {
				return nil, err
			}
		}
		return dev.Solve(ctx, req)
	})
}

// solve runs call over the chain in order; call owns capacity screening, so
// the two entry points can gate differently.
func (f *Fallback) solve(ctx context.Context, req solver.Request, call func(solver.Solver) (*solver.Result, error)) (*solver.Result, error) {
	if len(f.Devices) == 0 {
		return nil, errors.New("resilience: empty fallback chain")
	}
	var (
		errs     []error
		attempts int
	)
	for i, dev := range f.Devices {
		if i > 0 {
			if sink := obs.FromContext(ctx); sink.Enabled() {
				sink.EmitCtx(ctx, obs.Event{Name: "fallback", Device: dev.Name(), Label: obs.LabelFromContext(ctx), Run: i})
				if reg := sink.Metrics(); reg != nil {
					reg.Counter("resilience.fallbacks").Add(1)
				}
			}
		}
		res, err := call(dev)
		if err == nil {
			return res, nil
		}
		attempts += attemptCount(err)
		errs = append(errs, fmt.Errorf("device %s: %w", dev.Name(), err))
		if solver.Interrupted(ctx) {
			break
		}
	}
	if attempts < 1 {
		attempts = 1
	}
	// Wrap directly rather than via withAttempts: the joined error keeps
	// every device's failure visible while the outer count owns the total.
	return nil, &AttemptsError{Count: attempts, Err: errors.Join(errs...)}
}
