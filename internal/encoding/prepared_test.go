package encoding

import (
	"math/rand"
	"testing"

	"incranneal/internal/mqo"
)

// assertMatchesFresh checks that pp's materialised encoding equals a fresh
// EncodeMQO of the same (possibly cost-adjusted) problem state with exact
// float equality — the bit-identity contract that keeps pipeline results
// independent of whether encodings are rebuilt or reweighted.
func assertMatchesFresh(t *testing.T, pp *PreparedMQO, tag string) {
	t.Helper()
	got := pp.Encoding()
	want, err := EncodeMQO(pp.Problem)
	if err != nil {
		t.Fatalf("%s: fresh encode: %v", tag, err)
	}
	if got.Penalty != want.Penalty {
		t.Fatalf("%s: penalty %v, fresh %v", tag, got.Penalty, want.Penalty)
	}
	if got.Model.NumVariables() != want.Model.NumVariables() {
		t.Fatalf("%s: %d variables, fresh %d", tag, got.Model.NumVariables(), want.Model.NumVariables())
	}
	for i := 0; i < want.Model.NumVariables(); i++ {
		if got.Model.Linear(i) != want.Model.Linear(i) {
			t.Fatalf("%s: linear[%d] = %v, fresh %v", tag, i, got.Model.Linear(i), want.Model.Linear(i))
		}
	}
	gt, wt := got.Model.Terms(), want.Model.Terms()
	if len(gt) != len(wt) {
		t.Fatalf("%s: %d terms, fresh %d", tag, len(gt), len(wt))
	}
	for i := range wt {
		if gt[i] != wt[i] {
			t.Fatalf("%s: term[%d] = %+v, fresh %+v", tag, i, gt[i], wt[i])
		}
	}
}

func TestPrepareMQOMatchesFresh(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomSmallProblem(rng)
		all := make([]int, p.NumQueries())
		for i := range all {
			all[i] = i
		}
		sub, err := mqo.Extract(p, all)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := PrepareMQO(sub.Local)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesFresh(t, pp, "initial")
		// Arbitrary AdjustCost sequences, including ones that drive costs
		// negative (DSS can), must keep the reweighted model bit-identical
		// to a from-scratch encode after every pass.
		for round := 0; round < 5; round++ {
			for k := 1 + rng.Intn(6); k > 0; k-- {
				sub.AdjustCost(rng.Intn(sub.Local.NumPlans()), rng.Float64()*15-2)
			}
			assertMatchesFresh(t, pp, "after adjustments")
		}
	}
}

func TestPrepareMQOSkipsZeroSavings(t *testing.T) {
	// Builder.Build drops exact-zero quadratic terms, so the skeleton must
	// omit zero-valued savings to keep the term lists aligned.
	p, err := mqo.NewProblem(
		[][]float64{{3, 5}, {2, 4}, {6, 1}},
		[]mqo.Saving{{P1: 0, P2: 2, Value: 0}, {P1: 1, P2: 4, Value: 2.5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := PrepareMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesFresh(t, pp, "zero-saving instance")
}

func TestPreparedEncodingReusesModel(t *testing.T) {
	p := mqo.PaperExample()
	all := make([]int, p.NumQueries())
	for i := range all {
		all[i] = i
	}
	sub, err := mqo.Extract(p, all)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := PrepareMQO(sub.Local)
	if err != nil {
		t.Fatal(err)
	}
	first := pp.Encoding()
	sub.AdjustCost(0, 1.5)
	second := pp.Encoding()
	if first != second || first.Model != second.Model {
		t.Error("Encoding must rewrite and return the same buffers")
	}
	assertMatchesFresh(t, pp, "after reuse")
	// Re-materialising must not allocate: the whole point of the skeleton.
	if allocs := testing.AllocsPerRun(50, func() { pp.Encoding() }); allocs > 0 {
		t.Errorf("re-materialisation allocates %v objects per call, want 0", allocs)
	}
}

func TestPrepareMQORejectsEmptyProblem(t *testing.T) {
	if _, err := PrepareMQO(&mqo.Problem{}); err == nil {
		t.Error("PrepareMQO accepted an empty problem")
	}
}

func FuzzPrepareMQOReweight(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(42), uint8(0))
	f.Add(int64(7), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, rounds uint8) {
		rng := rand.New(rand.NewSource(seed))
		p := randomSmallProblem(rng)
		all := make([]int, p.NumQueries())
		for i := range all {
			all[i] = i
		}
		sub, err := mqo.Extract(p, all)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := PrepareMQO(sub.Local)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesFresh(t, pp, "initial")
		for r := 0; r < int(rounds%16); r++ {
			sub.AdjustCost(rng.Intn(sub.Local.NumPlans()), rng.Float64()*20-4)
			assertMatchesFresh(t, pp, "after adjustment")
		}
	})
}

func TestEncodePartitionCSRMatchesBuilder(t *testing.T) {
	check := func(t *testing.T, weights []float64, edges []WeightedEdge, scale float64) {
		t.Helper()
		got, err := EncodePartitionScaled(weights, edges, scale)
		if err != nil {
			t.Fatal(err)
		}
		want := encodePartitionScaledBuilder(weights, edges, scale)
		if got.LagrangeA != want.LagrangeA {
			t.Fatalf("lagrange %v, builder %v", got.LagrangeA, want.LagrangeA)
		}
		if got.Model.NumVariables() != want.Model.NumVariables() {
			t.Fatalf("%d variables, builder %d", got.Model.NumVariables(), want.Model.NumVariables())
		}
		for i := 0; i < want.Model.NumVariables(); i++ {
			if got.Model.Linear(i) != want.Model.Linear(i) {
				t.Fatalf("linear[%d] = %v, builder %v", i, got.Model.Linear(i), want.Model.Linear(i))
			}
		}
		gt, wt := got.Model.Terms(), want.Model.Terms()
		if len(gt) != len(wt) {
			t.Fatalf("%d terms, builder %d", len(gt), len(wt))
		}
		for i := range wt {
			if gt[i] != wt[i] {
				t.Fatalf("term[%d] = %+v, builder %+v", i, gt[i], wt[i])
			}
		}
	}
	// The paper's running example graph (Fig. 2 weights).
	check(t,
		[]float64{2, 2, 2, 2},
		[]WeightedEdge{{U: 0, V: 1, Weight: 10}, {U: 1, V: 2, Weight: 3}, {U: 2, V: 3, Weight: 8}},
		1)
	// Random graphs, including reversed and duplicate edges and ablation
	// Lagrange scales.
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 1 + float64(rng.Intn(5))
		}
		var edges []WeightedEdge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				for rng.Float64() < 0.4 {
					e := WeightedEdge{U: u, V: v, Weight: rng.Float64() * 9}
					if rng.Intn(2) == 0 {
						e.U, e.V = e.V, e.U
					}
					edges = append(edges, e)
				}
			}
		}
		for _, scale := range []float64{1, 0.5, 2} {
			check(t, weights, edges, scale)
		}
	}
}
