package encoding

import (
	"math"

	"incranneal/internal/mqo"
	"incranneal/internal/qubo"
)

// PreparedMQO is the structural skeleton of a problem's Trummer–Koch QUBO,
// built once per partial problem and re-materialised cheaply as dynamic
// search steering (Algorithm 3) mutates plan costs between partial solves.
//
// The key observation is that DSS only ever changes *linear* plan-cost
// coefficients and — through SufficientPenalty — the one-hot penalty A; the
// quadratic structure (one-hot cliques and savings terms) is invariant
// across the whole incremental phase. The skeleton therefore stores every
// quadratic coefficient as the pair (const, coeffOfA), so the model for any
// penalty A and any adjusted cost vector materialises in one
// O(variables + terms) pass: no map, no sort, and after the first
// materialisation no allocation (the qubo.Model buffer is rewritten in
// place via Model.Reweight).
//
// Materialised coefficients are bit-identical to a fresh EncodeMQO of the
// same (adjusted) problem — the float operations are performed in the same
// order — which keeps the whole pipeline's results independent of whether
// encodings are rebuilt or reweighted (pinned by TestPrepareMQOMatchesFresh
// and FuzzPrepareMQOReweight).
type PreparedMQO struct {
	// Problem is the encoded problem; its live (possibly DSS-adjusted)
	// costs are read at every materialisation.
	Problem *mqo.Problem
	// incident[pl] is the accumulated saving value incident to plan pl,
	// summed in the same order as SufficientPenalty so the derived penalty
	// matches bit for bit. Savings never change, so this is prepared once.
	incident []float64
	// Skeleton term structure in CSR order (I < J, lexicographic); the
	// coefficient of term t is termConst[t] + termCoeffA[t]·A. One-hot
	// clique terms are (0, 2); savings terms are (−value, 0). Zero-valued
	// savings are omitted, matching Builder.Build's zero-term drop.
	terms     []qubo.Term
	termConst []float64
	termCoefA []float64
	// Materialisation buffers, allocated on first Encoding call and
	// rewritten in place afterwards.
	enc    *MQOEncoding
	linear []float64
	coeffs []float64
	stats  EncodingStats
}

// EncodingStats counts how a prepared skeleton was used: Materialised is
// the number of full model builds (first Encoding call), Reweighted the
// number of in-place coefficient rewrites after DSS dirtied the costs. The
// pipeline's cache-effectiveness metrics aggregate these across skeletons.
type EncodingStats struct {
	Materialised, Reweighted int
}

// Stats returns the skeleton's materialisation counters.
func (pp *PreparedMQO) Stats() EncodingStats { return pp.stats }

// PrepareMQO builds the immutable encoding skeleton of p. The structure
// depends only on the query/plan layout and the savings pairs, both of which
// DSS never touches, so one skeleton serves every re-encoding of a partial
// problem across the incremental phase.
func PrepareMQO(p *mqo.Problem) (*PreparedMQO, error) {
	if p.NumQueries() == 0 {
		return nil, mqo.ErrEmptyProblem
	}
	n := p.NumPlans()
	pp := &PreparedMQO{Problem: p, incident: make([]float64, n)}
	savings := p.Savings()
	for _, s := range savings {
		pp.incident[s.P1] += s.Value
		pp.incident[s.P2] += s.Value
	}
	nTerms := 0
	for q := 0; q < p.NumQueries(); q++ {
		k := len(p.Plans(q))
		nTerms += k * (k - 1) / 2
	}
	for _, s := range savings {
		if s.Value != 0 {
			nTerms++
		}
	}
	pp.terms = make([]qubo.Term, 0, nTerms)
	pp.termConst = make([]float64, 0, nTerms)
	pp.termCoefA = make([]float64, 0, nTerms)
	// Emit directly in CSR order. Each query's plans are contiguous, so row
	// i first holds the one-hot clique partners (i, i+1..qEnd) and then the
	// savings partners, whose indices all belong to other queries' blocks
	// and therefore exceed qEnd; the globally sorted savings list yields
	// them in ascending order per row.
	si := 0
	for i := 0; i < n; i++ {
		plans := p.Plans(p.QueryOf(i))
		qEnd := plans[len(plans)-1] + 1
		for j := i + 1; j < qEnd; j++ {
			pp.terms = append(pp.terms, qubo.Term{I: i, J: j})
			pp.termConst = append(pp.termConst, 0)
			pp.termCoefA = append(pp.termCoefA, 2)
		}
		for ; si < len(savings) && savings[si].P1 == i; si++ {
			if savings[si].Value == 0 {
				continue
			}
			pp.terms = append(pp.terms, qubo.Term{I: i, J: savings[si].P2})
			pp.termConst = append(pp.termConst, -savings[si].Value)
			pp.termCoefA = append(pp.termCoefA, 0)
		}
	}
	return pp, nil
}

// Rebind points the skeleton at np — a problem with the same shape as the
// one it was prepared for (query/plan layout, savings pairs, and the same
// zero/non-zero saving pattern, since zero-valued savings emit no term) but
// possibly different weights — recomputing the value-dependent arrays in
// PrepareMQO's exact accumulation order. The materialisation buffers
// survive, so the next Encoding call is a single in-place reweight whose
// coefficients are bit-identical to a fresh PrepareMQO(np) followed by
// Encoding (pinned by TestRebindMatchesFresh). This is what lets the
// cross-solve cache (internal/solvecache) share skeletons between solves of
// recurring problem structures.
//
// Rebind returns false, leaving the receiver untouched, when np's shape
// differs — the caller prepares a fresh skeleton instead, so a cache-key
// collision can never corrupt an encoding.
func (pp *PreparedMQO) Rebind(np *mqo.Problem) bool {
	op := pp.Problem
	if np.NumQueries() != op.NumQueries() || np.NumPlans() != op.NumPlans() {
		return false
	}
	for q := 0; q < op.NumQueries(); q++ {
		if len(np.Plans(q)) != len(op.Plans(q)) {
			return false
		}
	}
	os, ns := op.Savings(), np.Savings()
	if len(ns) != len(os) {
		return false
	}
	for i, s := range os {
		if ns[i].P1 != s.P1 || ns[i].P2 != s.P2 || (ns[i].Value == 0) != (s.Value == 0) {
			return false
		}
	}
	// Shape verified: rebuild the incident sums and savings-term constants
	// from np's values, walking the same emission order as PrepareMQO so
	// term index ti tracks exactly the terms the savings produced.
	for i := range pp.incident {
		pp.incident[i] = 0
	}
	for _, s := range ns {
		pp.incident[s.P1] += s.Value
		pp.incident[s.P2] += s.Value
	}
	si, ti := 0, 0
	for i := 0; i < np.NumPlans(); i++ {
		plans := np.Plans(np.QueryOf(i))
		ti += plans[len(plans)-1] + 1 - (i + 1) // clique terms of row i: const 0, untouched
		for ; si < len(ns) && ns[si].P1 == i; si++ {
			if ns[si].Value == 0 {
				continue
			}
			pp.termConst[ti] = -ns[si].Value
			ti++
		}
	}
	pp.Problem = np
	if pp.enc != nil {
		pp.enc.Problem = np
	}
	return true
}

// Penalty derives the one-hot penalty A from the problem's current costs,
// bit-identical to SufficientPenalty (the incident-savings sums are
// prepared in the same accumulation order).
func (pp *PreparedMQO) Penalty() float64 {
	var bound float64
	for pl := 0; pl < pp.Problem.NumPlans(); pl++ {
		c := pp.Problem.Cost(pl)
		bound = math.Max(bound, pp.incident[pl]-c)
		bound = math.Max(bound, c)
	}
	return bound + 1
}

// NumTerms returns the number of quadratic terms in the skeleton.
func (pp *PreparedMQO) NumTerms() int { return len(pp.terms) }

// Encoding materialises the QUBO for the problem's current plan costs and
// the penalty they imply. The first call allocates the model; every later
// call rewrites the same buffers in place and returns the same *MQOEncoding,
// so callers must not hand the previous materialisation to a still-running
// solver. Coefficients equal a fresh EncodeMQO of the same problem state
// exactly.
func (pp *PreparedMQO) Encoding() *MQOEncoding {
	a := pp.Penalty()
	if pp.enc == nil {
		pp.stats.Materialised++
		pp.linear = make([]float64, pp.Problem.NumPlans())
		pp.coeffs = make([]float64, len(pp.terms))
		pp.fill(a)
		terms := make([]qubo.Term, len(pp.terms))
		copy(terms, pp.terms)
		for t := range terms {
			terms[t].Coeff = pp.coeffs[t]
		}
		linear := make([]float64, len(pp.linear))
		copy(linear, pp.linear)
		pp.enc = &MQOEncoding{
			Problem: pp.Problem,
			Model:   qubo.NewModelFromSortedTerms(linear, terms),
			Penalty: a,
		}
		return pp.enc
	}
	pp.stats.Reweighted++
	pp.fill(a)
	pp.enc.Model.Reweight(pp.linear, pp.coeffs)
	pp.enc.Penalty = a
	return pp.enc
}

// fill computes all coefficients for penalty a into the scratch buffers.
// Linear terms replicate EncodeMQO's accumulation (−A from the one-hot
// expansion, then the plan cost) and quadratic terms evaluate
// const + coeffOfA·A; both reproduce the Builder path's floats exactly.
func (pp *PreparedMQO) fill(a float64) {
	for pl := range pp.linear {
		pp.linear[pl] = -a + pp.Problem.Cost(pl)
	}
	for t := range pp.coeffs {
		pp.coeffs[t] = pp.termConst[t] + pp.termCoefA[t]*a
	}
}
