package encoding

import (
	"fmt"

	"incranneal/internal/qubo"
)

// WeightedEdge is an edge of a partitioning graph: the accumulated cost
// savings between the plans of two queries (Sec. 4.1.1).
type WeightedEdge struct {
	U, V   int
	Weight float64
}

// PartitionEncoding couples a partitioning-graph bisection QUBO with the
// data needed to decode device samples into two query sets.
type PartitionEncoding struct {
	Model *qubo.Model
	// NodeWeights[i] is ω_v of node i (the query's plan count).
	NodeWeights []float64
	// Edges is the weighted edge list the encoding was built from.
	Edges []WeightedEdge
	// LagrangeA is the multiplier ω_A of Theorem 4.5.
	LagrangeA float64
}

// EncodePartition builds the weighted graph-bisection QUBO of Sec. 4.1.2
// over spin variables s_i ∈ {−1,+1} (one per partitioning-graph node):
//
//	H_A = (Σ_i ω_vi·s_i)²           — balance: equal accumulated plan counts,
//	H_B = Σ_(u,v)∈E ω_e·(1−s_u·s_v)/2 — cut: discarded savings magnitude,
//	H   = ω_A·H_A + H_B.
//
// Minimising H_A yields two distinct query sets of equal accumulated plan
// weight (Theorem 4.2); minimising H_B minimises the savings magnitude
// discarded by the cut (Theorem 4.3); the Lagrange multiplier
// ω_A = max_i Σ_j ω_ij guarantees balanced minima (Theorem 4.5). The spin
// model is converted to an equivalent QUBO via s = 2x − 1 for the
// binary-variable devices.
func EncodePartition(nodeWeights []float64, edges []WeightedEdge) (*PartitionEncoding, error) {
	return EncodePartitionScaled(nodeWeights, edges, 1)
}

// EncodePartitionScaled builds the bisection QUBO with the Lagrange
// multiplier scaled to lagrangeScale·ω_A. Scales below 1 void the
// Theorem 4.5 guarantee and exist for ablation studies; scales above 1
// trade cut quality for stricter balance.
func EncodePartitionScaled(nodeWeights []float64, edges []WeightedEdge, lagrangeScale float64) (*PartitionEncoding, error) {
	n := len(nodeWeights)
	if n == 0 {
		return nil, fmt.Errorf("encoding: empty partitioning graph")
	}
	for i, w := range nodeWeights {
		if w <= 0 {
			return nil, fmt.Errorf("encoding: node %d has non-positive weight %v", i, w)
		}
	}
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n || e.U == e.V {
			return nil, fmt.Errorf("encoding: invalid partitioning edge (%d,%d)", e.U, e.V)
		}
		if e.Weight < 0 {
			return nil, fmt.Errorf("encoding: negative partitioning edge weight %v", e.Weight)
		}
	}
	if lagrangeScale <= 0 {
		return nil, fmt.Errorf("encoding: lagrange scale must be positive, got %v", lagrangeScale)
	}
	lagrange := lagrangeScale * LagrangeMultiplier(n, edges)
	// The balance term couples *every* spin pair, so the coupling matrix is
	// dense: accumulate it in a flat upper-triangular array and emit the
	// QUBO terms directly in CSR order, instead of round-tripping through
	// the map-backed Ising builder plus a sort at every recursion level of
	// the partitioning phase. The float operations replicate the builder
	// path exactly — balance couplings first, then the edge couplings in
	// slice order, then the s = 2x − 1 substitution over pairs in row-major
	// (= sorted-key) order — so the resulting model is bit-identical
	// (pinned by TestEncodePartitionCSRMatchesBuilder).
	coup := make([]float64, n*(n-1)/2)
	idx := func(i, j int) int { // i < j
		return i*(2*n-i-1)/2 + (j - i - 1)
	}
	// ω_A·H_A = ω_A·(Σ ω_i s_i)² = ω_A·Σ ω_i² + 2ω_A·Σ_{i<j} ω_i ω_j s_i s_j
	// (the constant shifts no minimum and is dropped).
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			coup[k] = 2 * lagrange * nodeWeights[i] * nodeWeights[j]
			k++
		}
	}
	// H_B = Σ ω_e/2 − Σ (ω_e/2)·s_u·s_v.
	for _, e := range edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		coup[idx(u, v)] += -e.Weight / 2
	}
	// Substitute s = 2x − 1: J·s_i·s_j = 4J·x_i·x_j − 2J·x_i − 2J·x_j + J.
	linear := make([]float64, n)
	terms := make([]qubo.Term, 0, len(coup))
	k = 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := coup[k]
			k++
			linear[i] += -2 * c
			linear[j] += -2 * c
			if qc := 4 * c; qc != 0 {
				terms = append(terms, qubo.Term{I: i, J: j, Coeff: qc})
			}
		}
	}
	return &PartitionEncoding{
		Model:       qubo.NewModelFromSortedTerms(linear, terms),
		NodeWeights: append([]float64(nil), nodeWeights...),
		Edges:       append([]WeightedEdge(nil), edges...),
		LagrangeA:   lagrange,
	}, nil
}

// encodePartitionScaledBuilder is the original map-backed Ising/Builder
// construction, kept as the reference implementation the CSR fast path is
// tested against bit for bit.
func encodePartitionScaledBuilder(nodeWeights []float64, edges []WeightedEdge, lagrangeScale float64) *PartitionEncoding {
	n := len(nodeWeights)
	lagrange := lagrangeScale * LagrangeMultiplier(n, edges)
	is := qubo.NewIsing(n)
	var sqSum float64
	for _, w := range nodeWeights {
		sqSum += w * w
	}
	is.AddConstant(lagrange * sqSum)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			is.AddCoupling(i, j, 2*lagrange*nodeWeights[i]*nodeWeights[j])
		}
	}
	for _, e := range edges {
		is.AddConstant(e.Weight / 2)
		is.AddCoupling(e.U, e.V, -e.Weight/2)
	}
	return &PartitionEncoding{
		Model:       is.ToQUBO(),
		NodeWeights: append([]float64(nil), nodeWeights...),
		Edges:       append([]WeightedEdge(nil), edges...),
		LagrangeA:   lagrange,
	}
}

// LagrangeMultiplier returns ω_A = max_{q_i} Σ_{q_j≠q_i} ω_ij — the largest
// accumulated edge weight incident to any single node — which per
// Theorem 4.5 makes the H_A penalty for any balance violation outweigh the
// maximum H_B benefit. A floor of 1 keeps the balance term active on
// edgeless graphs.
func LagrangeMultiplier(numNodes int, edges []WeightedEdge) float64 {
	incident := make([]float64, numNodes)
	for _, e := range edges {
		incident[e.U] += e.Weight
		incident[e.V] += e.Weight
	}
	var mx float64
	for _, w := range incident {
		if w > mx {
			mx = w
		}
	}
	if mx < 1 {
		mx = 1
	}
	return mx
}

// Decode splits the node indices into the two partitions implied by a
// device sample of the bisection QUBO: binary 1 corresponds to spin +1
// (first partition), binary 0 to spin −1 (second).
func (e *PartitionEncoding) Decode(assignment []int8) (part1, part2 []int, err error) {
	if len(assignment) != len(e.NodeWeights) {
		return nil, nil, fmt.Errorf("encoding: sample has %d variables, graph has %d nodes", len(assignment), len(e.NodeWeights))
	}
	for i, x := range assignment {
		if x != 0 {
			part1 = append(part1, i)
		} else {
			part2 = append(part2, i)
		}
	}
	return part1, part2, nil
}

// CutWeight returns the accumulated weight of edges crossing the given
// bipartition (part membership per node, true = part1) — the magnitude of
// savings a cut discards.
func (e *PartitionEncoding) CutWeight(inPart1 []bool) float64 {
	var cut float64
	for _, ed := range e.Edges {
		if inPart1[ed.U] != inPart1[ed.V] {
			cut += ed.Weight
		}
	}
	return cut
}

// Imbalance returns |Σ_{part1} ω_v − Σ_{part2} ω_v| for the given
// bipartition: zero for perfectly balanced plan counts.
func (e *PartitionEncoding) Imbalance(inPart1 []bool) float64 {
	var diff float64
	for i, w := range e.NodeWeights {
		if inPart1[i] {
			diff += w
		} else {
			diff -= w
		}
	}
	if diff < 0 {
		diff = -diff
	}
	return diff
}
