package encoding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"incranneal/internal/mqo"
)

// enumerate calls fn with every assignment of n binary variables (n ≤ 20).
func enumerate(n int, fn func(x []int8)) {
	x := make([]int8, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			x[i] = int8(mask >> i & 1)
		}
		fn(x)
	}
}

func TestEncodeMQOPaperExampleMinimum(t *testing.T) {
	p := mqo.PaperExample()
	enc, err := EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := enc.Model.NumVariables(); got != 8 {
		t.Fatalf("variables = %d, want 8", got)
	}
	// Exhaustively find the minimum-energy assignment; it must be the
	// valid optimal solution (p2,p4,p5,p7) at cost 25 (Example 3.1).
	var bestX []int8
	bestE := math.Inf(1)
	enumerate(8, func(x []int8) {
		if e := enc.Model.Energy(x); e < bestE {
			bestE = e
			bestX = append([]int8(nil), x...)
		}
	})
	if !enc.IsValidSample(bestX) {
		t.Fatalf("minimum-energy sample %v violates one-hot constraint", bestX)
	}
	sol, err := enc.Decode(bestX)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Cost(p); got != 25 {
		t.Errorf("decoded minimum cost = %v, want 25", got)
	}
	want := []int{1, 3, 4, 6}
	for q, pl := range sol.Selected {
		if pl != want[q] {
			t.Errorf("decoded selection = %v, want %v", sol.Selected, want)
			break
		}
	}
}

func TestEncodedEnergyTracksSolutionCost(t *testing.T) {
	// For valid assignments, energy differences equal cost differences
	// (the constraint term contributes a constant −? no: zero excess —
	// the expanded penalty contributes exactly −A per query, a constant).
	p := mqo.PaperExample()
	enc, err := EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct {
		sel []int
	}
	sols := []pair{
		{[]int{0, 2, 5, 7}}, // greedy, cost 34
		{[]int{1, 3, 4, 6}}, // optimal, cost 25
		{[]int{1, 3, 5, 7}}, // parallel merge, cost 32
	}
	var offset float64
	for i, s := range sols {
		x := make([]int8, p.NumPlans())
		for _, pl := range s.sel {
			x[pl] = 1
		}
		sol := &mqo.Solution{Selected: s.sel}
		diff := enc.Model.Energy(x) - sol.Cost(p)
		if i == 0 {
			offset = diff
			continue
		}
		if math.Abs(diff-offset) > 1e-9 {
			t.Errorf("energy−cost offset varies: %v vs %v", diff, offset)
		}
	}
}

func TestSufficientPenaltyGuaranteesValidMinimaProperty(t *testing.T) {
	// Property: on random small instances, every exhaustive minimum of the
	// encoded model satisfies the one-hot constraint.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomSmallProblem(rng)
		enc, err := EncodeMQO(p)
		if err != nil {
			return false
		}
		n := enc.Model.NumVariables()
		bestE := math.Inf(1)
		var bestX []int8
		enumerate(n, func(x []int8) {
			if e := enc.Model.Energy(x); e < bestE-1e-12 {
				bestE = e
				bestX = append([]int8(nil), x...)
			}
		})
		return enc.IsValidSample(bestX)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSufficientPenaltyWithNegativeCosts(t *testing.T) {
	// DSS can push plan costs below zero; the penalty derivation must
	// still keep minima valid. Build such an instance through AdjustCost.
	p := mqo.PaperExample()
	sub, err := mqo.Extract(p, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	sub.AdjustCost(4, 50) // c5 → −39
	sub.AdjustCost(6, 30) // c7 → −16
	enc, err := EncodeMQO(sub.Local)
	if err != nil {
		t.Fatal(err)
	}
	bestE := math.Inf(1)
	var bestX []int8
	enumerate(enc.Model.NumVariables(), func(x []int8) {
		if e := enc.Model.Energy(x); e < bestE {
			bestE = e
			bestX = append([]int8(nil), x...)
		}
	})
	if !enc.IsValidSample(bestX) {
		t.Errorf("minimum with negative costs is invalid: %v", bestX)
	}
}

func TestDecodeRepairsInvalidSamples(t *testing.T) {
	p := mqo.PaperExample()
	enc, err := EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	// All-zero sample: no plan selected anywhere.
	sol, err := enc.Decode(make([]int8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(p); err != nil || !sol.Complete() {
		t.Errorf("repair of all-zero sample failed: %v / complete=%v", err, sol.Complete())
	}
	// Over-selected sample.
	sol, err = enc.Decode([]int8{1, 1, 1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(p); err != nil || !sol.Complete() {
		t.Errorf("repair of all-one sample failed: %v / complete=%v", err, sol.Complete())
	}
	if _, err := enc.Decode([]int8{1}); err == nil {
		t.Error("Decode accepted short sample")
	}
}

func randomSmallProblem(rng *rand.Rand) *mqo.Problem {
	queries := 2 + rng.Intn(3)
	costs := make([][]float64, queries)
	ppq := 2 + rng.Intn(2)
	for q := range costs {
		cs := make([]float64, ppq)
		for i := range cs {
			cs[i] = 1 + rng.Float64()*19
		}
		costs[q] = cs
	}
	var savings []mqo.Saving
	for q1 := 0; q1 < queries; q1++ {
		for q2 := q1 + 1; q2 < queries; q2++ {
			for i := 0; i < ppq; i++ {
				for j := 0; j < ppq; j++ {
					if rng.Float64() < 0.5 {
						savings = append(savings, mqo.Saving{
							P1:    q1*ppq + i,
							P2:    q2*ppq + j,
							Value: 1 + rng.Float64()*9,
						})
					}
				}
			}
		}
	}
	p, err := mqo.NewProblem(costs, savings)
	if err != nil {
		panic(err)
	}
	return p
}

func TestEncodePartitionPaperEnergies(t *testing.T) {
	// Example 4.4: node weights all 2; edges ω12=8, ω14=5, ω23=5, ω34=8.
	weights := []float64{2, 2, 2, 2}
	edges := []WeightedEdge{
		{U: 0, V: 1, Weight: 8},
		{U: 0, V: 3, Weight: 5},
		{U: 1, V: 2, Weight: 5},
		{U: 2, V: 3, Weight: 8},
	}
	// Verify H_A and H_B on the spin formulation directly.
	hA := func(s []int8) float64 {
		var sum float64
		for i, w := range weights {
			sum += w * float64(s[i])
		}
		return sum * sum
	}
	hB := func(s []int8) float64 {
		var e float64
		for _, ed := range edges {
			e += ed.Weight * (1 - float64(s[ed.U])*float64(s[ed.V])) / 2
		}
		return e
	}
	// Balanced split (q1,q2)|(q3,q4): H_A = 0, H_B = 10.
	s := []int8{1, 1, -1, -1}
	if got := hA(s); got != 0 {
		t.Errorf("H_A balanced = %v, want 0", got)
	}
	if got := hB(s); got != 10 {
		t.Errorf("H_B (q1,q2)|(q3,q4) = %v, want 10", got)
	}
	// Imbalanced (q1,q2,q3)|(q4): H_A = 16.
	if got := hA([]int8{1, 1, 1, -1}); got != 16 {
		t.Errorf("H_A 3|1 = %v, want 16", got)
	}
	// Degenerate all|none: H_A = 64.
	if got := hA([]int8{1, 1, 1, 1}); got != 64 {
		t.Errorf("H_A 4|0 = %v, want 64", got)
	}
	// Alternative balanced splits: H_B = 16 and 26 (Example 4.4).
	if got := hB([]int8{1, -1, -1, 1}); got != 16 {
		t.Errorf("H_B (q1,q4)|(q2,q3) = %v, want 16", got)
	}
	if got := hB([]int8{1, -1, 1, -1}); got != 26 {
		t.Errorf("H_B (q1,q3)|(q2,q4) = %v, want 26", got)
	}

	// The QUBO built from the same data must attain its minimum exactly at
	// the two (symmetric) minimal cuts (q1,q2)|(q3,q4).
	enc, err := EncodePartition(weights, edges)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 4.5: ω_A = max incident weight = max(13, 13, 13, 13) = 13.
	if enc.LagrangeA != 13 {
		t.Errorf("LagrangeA = %v, want 13", enc.LagrangeA)
	}
	bestE := math.Inf(1)
	var minima [][]int8
	enumerate(4, func(x []int8) {
		e := enc.Model.Energy(x)
		switch {
		case e < bestE-1e-9:
			bestE = e
			minima = [][]int8{append([]int8(nil), x...)}
		case math.Abs(e-bestE) <= 1e-9:
			minima = append(minima, append([]int8(nil), x...))
		}
	})
	if len(minima) != 2 {
		t.Fatalf("expected 2 symmetric minima, got %d: %v", len(minima), minima)
	}
	for _, x := range minima {
		// Both minima must realise the cut {q1,q2} vs {q3,q4}.
		if x[0] != x[1] || x[2] != x[3] || x[0] == x[2] {
			t.Errorf("minimum %v is not the (q1,q2)|(q3,q4) cut", x)
		}
	}
}

func TestEncodePartitionRejectsBadInput(t *testing.T) {
	if _, err := EncodePartition(nil, nil); err == nil {
		t.Error("accepted empty graph")
	}
	if _, err := EncodePartition([]float64{0}, nil); err == nil {
		t.Error("accepted zero node weight")
	}
	if _, err := EncodePartition([]float64{1, 1}, []WeightedEdge{{U: 0, V: 0, Weight: 1}}); err == nil {
		t.Error("accepted self-loop")
	}
	if _, err := EncodePartition([]float64{1, 1}, []WeightedEdge{{U: 0, V: 1, Weight: -2}}); err == nil {
		t.Error("accepted negative edge weight")
	}
}

func TestLagrangeGuaranteesBalanceProperty(t *testing.T) {
	// Property (Theorem 4.5): with ω_A at the bound, every exhaustive
	// minimum of the partition QUBO has the minimum achievable imbalance
	// for equal node weights (zero for an even node count).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + 2*rng.Intn(3) // even: 4, 6, 8
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 1 + float64(rng.Intn(3))
		}
		var edges []WeightedEdge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.6 {
					edges = append(edges, WeightedEdge{U: i, V: j, Weight: 1 + rng.Float64()*9})
				}
			}
		}
		enc, err := EncodePartition(weights, edges)
		if err != nil {
			return false
		}
		// Find the minimum achievable imbalance over all cuts, then check
		// the QUBO minimum achieves it.
		minImb := math.Inf(1)
		in1 := make([]bool, n)
		enumerate(n, func(x []int8) {
			for i, xi := range x {
				in1[i] = xi != 0
			}
			if im := enc.Imbalance(in1); im < minImb {
				minImb = im
			}
		})
		bestE := math.Inf(1)
		var bestX []int8
		enumerate(n, func(x []int8) {
			if e := enc.Model.Energy(x); e < bestE {
				bestE = e
				bestX = append([]int8(nil), x...)
			}
		})
		for i, xi := range bestX {
			in1[i] = xi != 0
		}
		return enc.Imbalance(in1) == minImb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPartitionDecodeAndCutWeight(t *testing.T) {
	weights := []float64{2, 2, 2, 2}
	edges := []WeightedEdge{{U: 0, V: 1, Weight: 8}, {U: 2, V: 3, Weight: 8}, {U: 0, V: 3, Weight: 5}, {U: 1, V: 2, Weight: 5}}
	enc, err := EncodePartition(weights, edges)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2, err := enc.Decode([]int8{1, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != 2 || len(p2) != 2 || p1[0] != 0 || p1[1] != 1 {
		t.Errorf("decode = %v | %v, want [0 1] | [2 3]", p1, p2)
	}
	if got := enc.CutWeight([]bool{true, true, false, false}); got != 10 {
		t.Errorf("CutWeight = %v, want 10", got)
	}
	if _, _, err := enc.Decode([]int8{1}); err == nil {
		t.Error("Decode accepted short sample")
	}
}
