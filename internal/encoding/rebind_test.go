package encoding

import (
	"math/rand"
	"testing"

	"incranneal/internal/mqo"
)

// reweighted returns a copy of p with every plan cost and non-zero saving
// value jittered, preserving the shape (and the zero/non-zero saving
// pattern) exactly.
func reweighted(t *testing.T, p *mqo.Problem, rng *rand.Rand) *mqo.Problem {
	t.Helper()
	costs := make([][]float64, p.NumQueries())
	for q := range costs {
		cs := make([]float64, len(p.Plans(q)))
		for i, pl := range p.Plans(q) {
			cs[i] = p.Cost(pl) * (0.5 + rng.Float64())
		}
		costs[q] = cs
	}
	savings := append([]mqo.Saving(nil), p.Savings()...)
	for i := range savings {
		if savings[i].Value != 0 {
			savings[i].Value *= 0.5 + rng.Float64()
		}
	}
	np, err := mqo.NewProblem(costs, savings)
	if err != nil {
		t.Fatal(err)
	}
	return np
}

// TestRebindMatchesFresh pins the cross-solve skeleton-sharing contract: a
// skeleton rebound to a same-shape, different-weight problem materialises an
// encoding bit-identical to a fresh PrepareMQO of that problem.
func TestRebindMatchesFresh(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomSmallProblem(rng)
		pp, err := PrepareMQO(p)
		if err != nil {
			t.Fatal(err)
		}
		// Materialise once so Rebind exercises the buffer-reuse path too.
		pp.Encoding()
		for round := 0; round < 3; round++ {
			np := reweighted(t, p, rng)
			if !pp.Rebind(np) {
				t.Fatalf("seed %d round %d: Rebind rejected a same-shape problem", seed, round)
			}
			if pp.Problem != np {
				t.Fatalf("seed %d: Rebind did not adopt the new problem", seed)
			}
			assertMatchesFresh(t, pp, "after rebind")
		}
	}
}

func TestRebindZeroSavingPattern(t *testing.T) {
	base := [][]float64{{3, 5}, {2, 4}, {6, 1}}
	p1, err := mqo.NewProblem(base, []mqo.Saving{{P1: 0, P2: 2, Value: 0}, {P1: 1, P2: 4, Value: 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := PrepareMQO(p1)
	if err != nil {
		t.Fatal(err)
	}
	// Same pairs, same zero pattern, new value: must rebind and match fresh.
	p2, err := mqo.NewProblem(base, []mqo.Saving{{P1: 0, P2: 2, Value: 0}, {P1: 1, P2: 4, Value: 7.75}})
	if err != nil {
		t.Fatal(err)
	}
	if !pp.Rebind(p2) {
		t.Fatal("Rebind rejected a matching zero pattern")
	}
	assertMatchesFresh(t, pp, "zero pattern kept")
	// A zero saving turning non-zero changes the emitted term set: the
	// skeleton has no slot for it, so Rebind must refuse.
	p3, err := mqo.NewProblem(base, []mqo.Saving{{P1: 0, P2: 2, Value: 1}, {P1: 1, P2: 4, Value: 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	if pp.Rebind(p3) {
		t.Fatal("Rebind accepted a zero saving turned non-zero")
	}
	if pp.Problem != p2 {
		t.Fatal("failed Rebind mutated the receiver")
	}
	assertMatchesFresh(t, pp, "after refused rebind")
}

func TestRebindRejectsShapeChanges(t *testing.T) {
	p, err := mqo.NewProblem([][]float64{{3, 5}, {2, 4}}, []mqo.Saving{{P1: 0, P2: 2, Value: 2}})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := PrepareMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		costs   [][]float64
		savings []mqo.Saving
	}{
		{"extra query", [][]float64{{3, 5}, {2, 4}, {1}}, []mqo.Saving{{P1: 0, P2: 2, Value: 2}}},
		{"extra plan", [][]float64{{3, 5, 7}, {2, 4}}, []mqo.Saving{{P1: 0, P2: 3, Value: 2}}},
		{"rewired saving", [][]float64{{3, 5}, {2, 4}}, []mqo.Saving{{P1: 1, P2: 3, Value: 2}}},
		{"extra saving", [][]float64{{3, 5}, {2, 4}}, []mqo.Saving{{P1: 0, P2: 2, Value: 2}, {P1: 1, P2: 3, Value: 1}}},
		{"no savings", [][]float64{{3, 5}, {2, 4}}, nil},
	}
	for _, tc := range cases {
		np, err := mqo.NewProblem(tc.costs, tc.savings)
		if err != nil {
			t.Fatal(err)
		}
		if pp.Rebind(np) {
			t.Errorf("%s: Rebind accepted a shape change", tc.name)
		}
		if pp.Problem != p {
			t.Fatalf("%s: failed Rebind mutated the receiver", tc.name)
		}
	}
}
