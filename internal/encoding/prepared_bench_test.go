package encoding

import (
	"testing"

	"incranneal/internal/mqo"
)

// benchSub builds the re-encoding benchmark workload: a 64-query × 6-plan
// partial problem (384 variables, the scale of one DA partition) with dense
// savings, wrapped in a SubProblem so costs can be DSS-adjusted between
// encodes exactly like the incremental loop does.
func benchSub(b *testing.B) *mqo.SubProblem {
	b.Helper()
	const queries, ppq = 64, 6
	costs := make([][]float64, queries)
	for q := range costs {
		cs := make([]float64, ppq)
		for i := range cs {
			cs[i] = float64(10 + (q*7+i*3)%17)
		}
		costs[q] = cs
	}
	var savings []mqo.Saving
	for q1 := 0; q1 < queries; q1++ {
		for q2 := q1 + 1; q2 < queries && q2 < q1+8; q2++ {
			for i := 0; i < ppq; i += 2 {
				savings = append(savings, mqo.Saving{
					P1:    q1*ppq + i,
					P2:    q2*ppq + (i+1)%ppq,
					Value: float64(1 + (q1+q2+i)%9),
				})
			}
		}
	}
	p, err := mqo.NewProblem(costs, savings)
	if err != nil {
		b.Fatal(err)
	}
	all := make([]int, queries)
	for i := range all {
		all[i] = i
	}
	sub, err := mqo.Extract(p, all)
	if err != nil {
		b.Fatal(err)
	}
	return sub
}

// BenchmarkEncodeMQO measures the from-scratch map-backed encode of a
// DSS-adjusted partial problem — the work the incremental loop used to repeat
// for every partial problem after every DSS pass.
func BenchmarkEncodeMQO(b *testing.B) {
	sub := benchSub(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub.AdjustCost(i%sub.Local.NumPlans(), 0.001)
		enc, err := EncodeMQO(sub.Local)
		if err != nil {
			b.Fatal(err)
		}
		_ = enc
	}
}

// BenchmarkPrepareReweight measures the prepared-skeleton replacement: the
// same re-encode expressed as one in-place reweight of the cached model.
// Coefficients are bit-identical to BenchmarkEncodeMQO's output (pinned by
// TestPrepareMQOMatchesFresh).
func BenchmarkPrepareReweight(b *testing.B) {
	sub := benchSub(b)
	pp, err := PrepareMQO(sub.Local)
	if err != nil {
		b.Fatal(err)
	}
	pp.Encoding() // first materialisation allocates the buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub.AdjustCost(i%sub.Local.NumPlans(), 0.001)
		_ = pp.Encoding()
	}
}

// BenchmarkPrepareMQO measures the one-time skeleton construction, paid once
// per partial problem for the whole incremental phase.
func BenchmarkPrepareMQO(b *testing.B) {
	sub := benchSub(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PrepareMQO(sub.Local); err != nil {
			b.Fatal(err)
		}
	}
}
