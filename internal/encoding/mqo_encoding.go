// Package encoding transforms the repository's optimisation problems into
// the QUBO formalism required by quantum(-inspired) annealers (Sec. 2.1),
// and decodes device samples back into problem solutions.
//
// Two encodings are provided: the Trummer–Koch MQO encoding (VLDB'16) used
// by the optimisation phase (Algorithm 2, line 8), and the weighted
// graph-bisection encoding of Sec. 4.1.2 used by the partitioning phase.
package encoding

import (
	"fmt"
	"math"

	"incranneal/internal/mqo"
	"incranneal/internal/qubo"
)

// MQOEncoding couples an MQO problem with its QUBO model and the penalty
// weight used, allowing samples to be decoded and the encoding to be
// audited by tests.
type MQOEncoding struct {
	Problem *mqo.Problem
	Model   *qubo.Model
	// Penalty is the one-hot constraint weight A; it strictly exceeds any
	// energy benefit obtainable by violating the one-plan-per-query
	// constraint, so all minima of the model are valid solutions.
	Penalty float64
}

// EncodeMQO builds the Trummer–Koch QUBO for p: one binary variable per
// execution plan (x_p = 1 iff plan p is selected) and energy
//
//	H = A·Σ_q (1 − Σ_{p∈P_q} x_p)² + Σ_p c_p·x_p − Σ_{(p_i,p_j)∈S} s_ij·x_i·x_j.
//
// The first term enforces exactly one plan per query, the second charges
// execution costs and the third rewards realised savings, so minimum-energy
// configurations are optimal MQO solutions.
//
// The penalty weight A is derived from the instance (see SufficientPenalty)
// rather than hand-tuned, and remains sufficient when DSS has reduced plan
// costs below zero.
func EncodeMQO(p *mqo.Problem) (*MQOEncoding, error) {
	if p.NumQueries() == 0 {
		return nil, mqo.ErrEmptyProblem
	}
	a := SufficientPenalty(p)
	b := qubo.NewBuilder(p.NumPlans())
	for q := 0; q < p.NumQueries(); q++ {
		plans := p.Plans(q)
		// A·(1 − Σx)² expands to A − A·Σ_p x_p + 2A·Σ_{p<p'} x_p·x_p'
		// (using x² = x); the constant is dropped.
		for _, pl := range plans {
			b.AddLinear(pl, -a)
		}
		for i := 0; i < len(plans); i++ {
			for j := i + 1; j < len(plans); j++ {
				b.AddQuadratic(plans[i], plans[j], 2*a)
			}
		}
	}
	for pl := 0; pl < p.NumPlans(); pl++ {
		b.AddLinear(pl, p.Cost(pl))
	}
	for _, s := range p.Savings() {
		b.AddQuadratic(s.P1, s.P2, -s.Value)
	}
	return &MQOEncoding{Problem: p, Model: b.Build(), Penalty: a}, nil
}

// SufficientPenalty returns a one-hot penalty weight A guaranteeing that
// every minimum of the encoded model selects exactly one plan per query.
//
// Violations and their maximum energy benefit:
//   - selecting an extra plan p for an already-covered query raises the
//     constraint energy by at least A while gaining at most
//     Σ(savings incident to p) − c_p, so A must exceed
//     max_p (incident(p) − c_p);
//   - deselecting a query's only plan p raises the constraint energy by A
//     while gaining at most c_p (its savings only shrink the gain), so A
//     must exceed max_p c_p.
//
// Plan costs may be negative after DSS adjustments (Algorithm 3); both
// bounds account for that by using the signed cost.
func SufficientPenalty(p *mqo.Problem) float64 {
	var bound float64
	for pl := 0; pl < p.NumPlans(); pl++ {
		var incident float64
		for _, s := range p.SavingsOf(pl) {
			incident += s.Value
		}
		c := p.Cost(pl)
		bound = math.Max(bound, incident-c)
		bound = math.Max(bound, c)
	}
	return bound + 1
}

// Decode converts a device sample into a valid MQO solution, applying the
// validity post-processing of Sec. 4.2 when the sample violates the
// one-plan-per-query constraint (possible on noisy devices).
func (e *MQOEncoding) Decode(assignment []int8) (*mqo.Solution, error) {
	if len(assignment) != e.Problem.NumPlans() {
		return nil, fmt.Errorf("encoding: sample has %d variables, problem has %d plans", len(assignment), e.Problem.NumPlans())
	}
	selected := make([]bool, len(assignment))
	for i, x := range assignment {
		selected[i] = x != 0
	}
	return mqo.Repair(e.Problem, selected), nil
}

// DecodeInto is Decode reusing caller-provided buffers: selected and chosen
// must each hold at least NumPlans entries (both are overwritten) and into
// must cover the problem's queries. The hot per-sample decode loop of the
// pipeline allocates nothing through this path.
func (e *MQOEncoding) DecodeInto(assignment []int8, selected, chosen []bool, into *mqo.Solution) error {
	if len(assignment) != e.Problem.NumPlans() {
		return fmt.Errorf("encoding: sample has %d variables, problem has %d plans", len(assignment), e.Problem.NumPlans())
	}
	selected = selected[:len(assignment)]
	for i, x := range assignment {
		selected[i] = x != 0
	}
	mqo.RepairInto(e.Problem, selected, into, chosen)
	return nil
}

// IsValidSample reports whether a raw sample already selects exactly one
// plan per query, i.e. whether Decode's repair step is a no-op.
func (e *MQOEncoding) IsValidSample(assignment []int8) bool {
	if len(assignment) != e.Problem.NumPlans() {
		return false
	}
	for q := 0; q < e.Problem.NumQueries(); q++ {
		count := 0
		for _, pl := range e.Problem.Plans(q) {
			if assignment[pl] != 0 {
				count++
			}
		}
		if count != 1 {
			return false
		}
	}
	return true
}
