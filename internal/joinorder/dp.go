package joinorder

import (
	"fmt"
	"math"
	"math/bits"
)

// MaxDPRelations bounds the exact solver: the subset DP holds 2^n states.
const MaxDPRelations = 20

// OptimalOrder computes the cost-optimal left-deep join order by dynamic
// programming over relation subsets (Selinger-style), usable as the exact
// sub-solver of the partitioned pipeline and as a test oracle.
func OptimalOrder(g *QueryGraph) (Order, float64, error) {
	order, cost, err := optimalExtension(g, newPrefixState(g), allRelations(g))
	return order, cost, err
}

// optimalExtension computes the cheapest way to join the given relations
// (indices into g) onto an existing prefix, returning the extension order
// and its marginal C_out contribution. An empty prefix makes the first
// joined relation free, matching Order.Cost.
func optimalExtension(g *QueryGraph, prefix *prefixState, rels []int) (Order, float64, error) {
	n := len(rels)
	if n == 0 {
		return nil, 0, nil
	}
	if n > MaxDPRelations {
		return nil, 0, fmt.Errorf("joinorder: DP limited to %d relations, got %d", MaxDPRelations, n)
	}
	// cost[mask] = cheapest marginal cost of joining exactly the subset
	// mask onto prefix; last[mask] = relation joined last on that path.
	size := 1 << n
	cost := make([]float64, size)
	last := make([]int8, size)
	for m := range cost {
		cost[m] = math.Inf(1)
		last[m] = -1
	}
	cost[0] = 0
	// cards[mask] = intermediate cardinality of prefix ⋈ subset(mask),
	// computable incrementally: joining relation i onto mask multiplies by
	// card_i, the selectivities to the prefix, and those inside mask.
	cards := make([]float64, size)
	cards[0] = prefix.card
	// selToPrefix[i] = Π over joined prefix relations of sel(i, ·) × card_i.
	selToPrefix := make([]float64, n)
	for li, r := range rels {
		f := g.relations[r].Cardinality
		for j, in := range prefix.joined {
			if in {
				f *= g.sel[r][j]
			}
		}
		selToPrefix[li] = f
	}
	for mask := 1; mask < size; mask++ {
		m := mask
		for m != 0 {
			li := bits.TrailingZeros(uint(m))
			m &^= 1 << li
			prev := mask &^ (1 << li)
			if math.IsInf(cost[prev], 1) {
				continue
			}
			// Cardinality after joining rels[li] onto prefix ⋈ prev.
			card := cards[prev] * selToPrefix[li]
			pm := prev
			for pm != 0 {
				lj := bits.TrailingZeros(uint(pm))
				pm &^= 1 << lj
				card *= g.sel[rels[li]][rels[lj]]
			}
			// The first relation of an empty global prefix is a base scan,
			// not an intermediate result.
			marginal := card
			if prefix.count == 0 && prev == 0 {
				marginal = 0
			}
			if c := cost[prev] + marginal; c < cost[mask] {
				cost[mask] = c
				last[mask] = int8(li)
				cards[mask] = card
			}
		}
	}
	// Reconstruct the order.
	out := make(Order, 0, n)
	mask := size - 1
	for mask != 0 {
		li := int(last[mask])
		out = append(out, rels[li])
		mask &^= 1 << li
	}
	// Reverse: reconstruction walked from the full set backwards.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, cost[size-1], nil
}

func allRelations(g *QueryGraph) []int {
	rels := make([]int, g.NumRelations())
	for i := range rels {
		rels[i] = i
	}
	return rels
}
