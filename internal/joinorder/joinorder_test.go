package joinorder

import (
	"context"
	"math"
	"testing"
	"testing/quick"
)

func chainGraph(t *testing.T) *QueryGraph {
	t.Helper()
	g, err := NewQueryGraph(
		[]Relation{
			{Name: "a", Cardinality: 1000},
			{Name: "b", Cardinality: 100},
			{Name: "c", Cardinality: 10},
		},
		[]Predicate{
			{R1: 0, R2: 1, Selectivity: 0.01},
			{R1: 1, R2: 2, Selectivity: 0.1},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewQueryGraphValidation(t *testing.T) {
	if _, err := NewQueryGraph(nil, nil); err == nil {
		t.Error("accepted empty query")
	}
	if _, err := NewQueryGraph([]Relation{{Cardinality: -1}}, nil); err == nil {
		t.Error("accepted negative cardinality")
	}
	rels := []Relation{{Cardinality: 10}, {Cardinality: 10}}
	if _, err := NewQueryGraph(rels, []Predicate{{R1: 0, R2: 0, Selectivity: 0.5}}); err == nil {
		t.Error("accepted self-join predicate")
	}
	if _, err := NewQueryGraph(rels, []Predicate{{R1: 0, R2: 1, Selectivity: 0}}); err == nil {
		t.Error("accepted zero selectivity")
	}
	if _, err := NewQueryGraph(rels, []Predicate{{R1: 0, R2: 1, Selectivity: 1.5}}); err == nil {
		t.Error("accepted selectivity > 1")
	}
}

func TestOrderCostKnownValues(t *testing.T) {
	g := chainGraph(t)
	// Order a,b,c: after b → 1000·100·0.01 = 1000; after c →
	// 1000·10·0.1 = 1000. C_out = 2000.
	if got := (Order{0, 1, 2}).Cost(g); got != 2000 {
		t.Errorf("cost(a,b,c) = %v, want 2000", got)
	}
	// Order a,c,b: after c → 1000·10 (cross product) = 10000; after b →
	// 10000·100·0.01·0.1 = 1000. C_out = 11000.
	if got := (Order{0, 2, 1}).Cost(g); got != 11000 {
		t.Errorf("cost(a,c,b) = %v, want 11000", got)
	}
	// Order c,b,a: after b → 10·100·0.1 = 100; after a →
	// 100·1000·0.01 = 1000. C_out = 1100.
	if got := (Order{2, 1, 0}).Cost(g); got != 1100 {
		t.Errorf("cost(c,b,a) = %v, want 1100", got)
	}
}

func TestOrderValidate(t *testing.T) {
	g := chainGraph(t)
	if err := (Order{0, 1, 2}).Validate(g); err != nil {
		t.Errorf("valid order rejected: %v", err)
	}
	if err := (Order{0, 1}).Validate(g); err == nil {
		t.Error("short order accepted")
	}
	if err := (Order{0, 1, 1}).Validate(g); err == nil {
		t.Error("duplicate order accepted")
	}
}

func TestOptimalOrderOnChain(t *testing.T) {
	g := chainGraph(t)
	order, cost, err := OptimalOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 1100 {
		t.Errorf("optimal cost = %v, want 1100 (c,b,a)", cost)
	}
	if err := order.Validate(g); err != nil {
		t.Fatal(err)
	}
	if math.Abs(order.Cost(g)-cost) > 1e-9 {
		t.Errorf("DP cost %v disagrees with evaluation %v", cost, order.Cost(g))
	}
}

func TestOptimalOrderMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		topos := []Topology{Chain, Star, Cycle, Clique}
		g, err := Generate(topos[int(uint64(seed)%4)], 6, seed)
		if err != nil {
			return false
		}
		_, dpCost, err := OptimalOrder(g)
		if err != nil {
			return false
		}
		best := bruteForceCost(g)
		return math.Abs(dpCost-best) <= 1e-6*math.Max(1, best)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestOptimalOrderRejectsHugeDP(t *testing.T) {
	g, err := Generate(Chain, MaxDPRelations+2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := OptimalOrder(g); err == nil {
		t.Error("DP accepted oversized query")
	}
}

func TestGreedyOrderValidAndReasonable(t *testing.T) {
	f := func(seed int64) bool {
		g, err := Generate(Chain, 10, seed)
		if err != nil {
			return false
		}
		order, cost := GreedyOrder(g)
		if order.Validate(g) != nil {
			return false
		}
		return math.Abs(order.Cost(g)-cost) <= 1e-6*math.Max(1, cost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSolveWithinCapacityMatchesDP(t *testing.T) {
	g, err := Generate(Cycle, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), g, Options{Capacity: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, dpCost, err := OptimalOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 1 {
		t.Errorf("partitions = %d, want 1", res.Partitions)
	}
	if math.Abs(res.Cost-dpCost) > 1e-6*dpCost {
		t.Errorf("within-capacity solve cost %v, DP %v", res.Cost, dpCost)
	}
}

func TestSolvePartitionedCommunities(t *testing.T) {
	g, err := GenerateCommunities(4, 8, 5) // 32 relations
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), g, Options{Capacity: 10, Runs: 4, Sweeps: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions < 4 {
		t.Errorf("partitions = %d, want ≥ 4 for 32 relations at capacity 10", res.Partitions)
	}
	if err := res.Order.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Group-aligned partitions avoid cross-product blow-ups: the cost must
	// stay many orders of magnitude below what a scrambled decomposition
	// produces (~1e10 on this instance), even though the unpartitioned
	// greedy baseline — free to interleave groups — remains cheaper on
	// such an easy graph.
	if res.Cost > 1e6 {
		t.Errorf("partitioned cost %v suggests cross-product blow-ups", res.Cost)
	}
	// The identity-style worst case: a random permutation is far worse.
	worst := Order{}
	for r := g.NumRelations() - 1; r >= 0; r -= 2 {
		worst = append(worst, r)
	}
	for r := g.NumRelations() - 2; r >= 0; r -= 2 {
		worst = append(worst, r)
	}
	if wc := worst.Cost(g); res.Cost > wc {
		t.Errorf("partitioned cost %v worse than an interleaved permutation %v", res.Cost, wc)
	}
}

func TestSteeringHelpsOrDoesNotHurt(t *testing.T) {
	g, err := GenerateCommunities(3, 7, 9)
	if err != nil {
		t.Fatal(err)
	}
	with, err := Solve(context.Background(), g, Options{Capacity: 8, Runs: 4, Sweeps: 400, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Solve(context.Background(), g, Options{Capacity: 8, Runs: 4, Sweeps: 400, Seed: 4, DisableSteering: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Cost > without.Cost*(1+1e-9) {
		t.Errorf("steered cost %v worse than unsteered %v", with.Cost, without.Cost)
	}
}

func TestGenerateTopologies(t *testing.T) {
	for _, topo := range []Topology{Chain, Star, Cycle, Clique} {
		g, err := Generate(topo, 8, 1)
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		want := map[Topology]int{Chain: 7, Star: 7, Cycle: 8, Clique: 28}[topo]
		if got := len(g.Predicates()); got != want {
			t.Errorf("%s: %d predicates, want %d", topo, got, want)
		}
	}
	if _, err := Generate("nosuch", 5, 1); err == nil {
		t.Error("accepted unknown topology")
	}
	if _, err := Generate(Chain, 1, 1); err == nil {
		t.Error("accepted single-relation query")
	}
}

// bruteForceCost enumerates all left-deep orders of a small query.
func bruteForceCost(g *QueryGraph) float64 {
	n := g.NumRelations()
	perm := make(Order, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if c := perm.Cost(g); c < best {
				best = c
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}
