package joinorder

import (
	"fmt"
	"math"
	"math/rand"
)

// Topology names the standard query-graph shapes of the join-ordering
// literature (cf. the join order benchmark's classification).
type Topology string

const (
	// Chain connects relation i to i+1.
	Chain Topology = "chain"
	// Star connects relation 0 to every other relation.
	Star Topology = "star"
	// Cycle is a chain with the ends connected.
	Cycle Topology = "cycle"
	// Clique connects every relation pair.
	Clique Topology = "clique"
)

// Generate builds a random join query of the given topology: cardinalities
// are log-uniform in [10, 10⁶], selectivities log-uniform in [10⁻⁴, 0.5].
func Generate(topology Topology, relations int, seed int64) (*QueryGraph, error) {
	if relations < 2 {
		return nil, fmt.Errorf("joinorder: need at least 2 relations, got %d", relations)
	}
	rng := rand.New(rand.NewSource(seed))
	rels := make([]Relation, relations)
	for i := range rels {
		rels[i] = Relation{
			Name:        fmt.Sprintf("r%d", i),
			Cardinality: logUniform(rng, 10, 1e6),
		}
	}
	sel := func() float64 { return logUniform(rng, 1e-4, 0.5) }
	var preds []Predicate
	switch topology {
	case Chain:
		for i := 0; i+1 < relations; i++ {
			preds = append(preds, Predicate{R1: i, R2: i + 1, Selectivity: sel()})
		}
	case Star:
		for i := 1; i < relations; i++ {
			preds = append(preds, Predicate{R1: 0, R2: i, Selectivity: sel()})
		}
	case Cycle:
		for i := 0; i+1 < relations; i++ {
			preds = append(preds, Predicate{R1: i, R2: i + 1, Selectivity: sel()})
		}
		preds = append(preds, Predicate{R1: relations - 1, R2: 0, Selectivity: sel()})
	case Clique:
		for i := 0; i < relations; i++ {
			for j := i + 1; j < relations; j++ {
				preds = append(preds, Predicate{R1: i, R2: j, Selectivity: sel()})
			}
		}
	default:
		return nil, fmt.Errorf("joinorder: unknown topology %q", topology)
	}
	return NewQueryGraph(rels, preds)
}

// GenerateCommunities builds a join query of several chain-connected
// predicate-dense groups with sparse highly-unselective links between them
// — the JO analogue of the MQO community structure the partitioning
// exploits.
func GenerateCommunities(groups, relationsPerGroup int, seed int64) (*QueryGraph, error) {
	if groups < 1 || relationsPerGroup < 2 {
		return nil, fmt.Errorf("joinorder: invalid community shape %d×%d", groups, relationsPerGroup)
	}
	rng := rand.New(rand.NewSource(seed))
	n := groups * relationsPerGroup
	rels := make([]Relation, n)
	for i := range rels {
		rels[i] = Relation{Name: fmt.Sprintf("r%d", i), Cardinality: logUniform(rng, 10, 1e6)}
	}
	var preds []Predicate
	for gi := 0; gi < groups; gi++ {
		base := gi * relationsPerGroup
		// Dense selective predicates inside the group.
		for i := 0; i < relationsPerGroup; i++ {
			for j := i + 1; j < relationsPerGroup; j++ {
				if i+1 == j || rng.Float64() < 0.4 {
					preds = append(preds, Predicate{
						R1: base + i, R2: base + j,
						Selectivity: logUniform(rng, 1e-4, 1e-2),
					})
				}
			}
		}
		// One weak link to the next group.
		if gi+1 < groups {
			preds = append(preds, Predicate{
				R1: base + relationsPerGroup - 1, R2: base + relationsPerGroup,
				Selectivity: 0.5,
			})
		}
	}
	return NewQueryGraph(rels, preds)
}

func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo * math.Pow(hi/lo, rng.Float64())
}
