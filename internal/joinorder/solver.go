package joinorder

import (
	"context"
	"fmt"
	"math"
	"sort"

	"incranneal/internal/encoding"
	"incranneal/internal/sa"
	"incranneal/internal/solver"
)

// GreedyOrder is the GOO-style baseline: repeatedly join the relation with
// the cheapest marginal C_out contribution. It scales to any size and is
// the conventional-hardware comparison point for the partitioned pipeline.
func GreedyOrder(g *QueryGraph) (Order, float64) {
	ps := newPrefixState(g)
	out := make(Order, 0, g.NumRelations())
	for len(out) < g.NumRelations() {
		best, bestCost := -1, 0.0
		for r := 0; r < g.NumRelations(); r++ {
			if ps.joined[r] {
				continue
			}
			c := ps.extendCost(r)
			if best < 0 || c < bestCost {
				best, bestCost = r, c
			}
		}
		ps.extend(best)
		out = append(out, best)
	}
	return out, out.Cost(g)
}

// Options configures the partitioned incremental join-ordering solver.
type Options struct {
	// Capacity is the maximum number of relations per partition — the
	// size the exact sub-solver (or a future annealer encoding) can
	// handle. Zero means 12.
	Capacity int
	// Solver minimises the partitioning-graph bisection QUBOs; nil uses
	// classical simulated annealing.
	Solver solver.Solver
	// Runs and Sweeps budget each bisection solve.
	Runs, Sweeps int
	// Seed makes partitioning deterministic.
	Seed int64
	// DisableSteering orders each partition independently of the global
	// prefix (the parallel-processing analogue, for ablation).
	DisableSteering bool
}

func (o Options) capacity() int {
	if o.Capacity > 0 {
		return o.Capacity
	}
	return 12
}

// Result reports a partitioned join-ordering solve.
type Result struct {
	Order Order
	Cost  float64
	// Partitions is the number of relation groups the query was split
	// into (1 when it fit the sub-solver directly).
	Partitions int
	// CutSelectivityWeight is the accumulated importance (−log₁₀ sel) of
	// predicates crossing partition boundaries — the JO analogue of the
	// discarded savings magnitude.
	CutSelectivityWeight float64
}

// Solve orders a join query of arbitrary size following the paper's
// Sec. 7 recipe:
//
//  1. Build the JO partitioning graph: one node per relation, one edge per
//     predicate, weighted by the predicate's importance −log₁₀(sel) — the
//     information lost when the partitioning crosses it.
//  2. Recursively bisect the graph with the same annealer-backed weighted
//     graph-partitioning QUBO as the MQO pipeline (Sec. 4.1.2) until each
//     group fits the exact sub-solver.
//  3. Derive the total order incrementally: partitions are ordered one
//     after another, each continuing from the global prefix so that
//     cross-partition predicates to already-joined relations steer the
//     sub-ordering — the analogue of DSS.
func Solve(ctx context.Context, g *QueryGraph, opt Options) (*Result, error) {
	groups, cut, err := partitionRelations(ctx, g, opt)
	if err != nil {
		return nil, err
	}
	// Largest groups first, mirroring the MQO pipeline's anchoring.
	sort.SliceStable(groups, func(i, j int) bool { return len(groups[i]) > len(groups[j]) })
	ps := newPrefixState(g)
	total := make(Order, 0, g.NumRelations())
	for _, group := range groups {
		prefix := ps
		if opt.DisableSteering {
			prefix = newPrefixState(g)
		}
		ext, _, err := optimalExtension(g, prefix, group)
		if err != nil {
			return nil, err
		}
		for _, r := range ext {
			ps.extend(r)
		}
		total = append(total, ext...)
	}
	if err := total.Validate(g); err != nil {
		return nil, fmt.Errorf("joinorder: internal error: %w", err)
	}
	return &Result{Order: total, Cost: total.Cost(g), Partitions: len(groups), CutSelectivityWeight: cut}, nil
}

// partitionRelations recursively bisects the relation set to the capacity,
// reusing the MQO pipeline's weighted bisection encoding.
func partitionRelations(ctx context.Context, g *QueryGraph, opt Options) ([][]int, float64, error) {
	capacity := opt.capacity()
	dev := opt.Solver
	if dev == nil {
		dev = &sa.Solver{}
	}
	importance := func(i, j int) float64 {
		s := g.Selectivity(i, j)
		if s >= 1 {
			return 0
		}
		return -math.Log10(s)
	}
	var groups [][]int
	var cut float64
	seed := opt.Seed
	var recurse func(rels []int) error
	recurse = func(rels []int) error {
		if len(rels) <= capacity {
			groups = append(groups, rels)
			return nil
		}
		weights := make([]float64, len(rels))
		for i := range weights {
			weights[i] = 1
		}
		var edges []encoding.WeightedEdge
		for i := 0; i < len(rels); i++ {
			for j := i + 1; j < len(rels); j++ {
				if w := importance(rels[i], rels[j]); w > 0 {
					edges = append(edges, encoding.WeightedEdge{U: i, V: j, Weight: w})
				}
			}
		}
		enc, err := encoding.EncodePartition(weights, edges)
		if err != nil {
			return err
		}
		seed++
		res, err := dev.Solve(ctx, solver.Request{Model: enc.Model, Runs: opt.Runs, Sweeps: opt.Sweeps, Seed: seed})
		if err != nil {
			return err
		}
		var l1, l2 []int
		if best, ok := res.Best(); ok {
			l1, l2, err = enc.Decode(best.Assignment)
			if err != nil {
				return err
			}
		}
		if len(l1) == 0 || len(l2) == 0 {
			half := len(rels) / 2
			l1, l2 = l1[:0], l2[:0]
			for i := range rels {
				if i < half {
					l1 = append(l1, i)
				} else {
					l2 = append(l2, i)
				}
			}
		}
		// Post-processing (the JO analogue of Algorithm 1): annealers
		// freeze into one of many balanced cuts, so shift relations to the
		// side their predicates conform to, in several parses and both
		// orientations, keeping each side at a quarter of the subset.
		minSize := len(rels) / 4
		if minSize < 1 {
			minSize = 1
		}
		l1, l2 = refineBest(importance, rels, l1, l2, 4, minSize)
		in1 := make([]bool, len(rels))
		for _, li := range l1 {
			in1[li] = true
		}
		cut += enc.CutWeight(in1)
		toGlobal := func(local []int) []int {
			out := make([]int, len(local))
			for i, li := range local {
				out[i] = rels[li]
			}
			sort.Ints(out)
			return out
		}
		if err := recurse(toGlobal(l1)); err != nil {
			return err
		}
		return recurse(toGlobal(l2))
	}
	if err := recurse(allRelations(g)); err != nil {
		return nil, 0, err
	}
	return groups, cut, nil
}

// refineBest runs conformance refinement in both orientations and keeps
// the split with the lower cross-importance, mirroring the MQO pipeline's
// PostProcessBest.
func refineBest(importance func(i, j int) float64, rels []int, l1, l2 []int, parses, minSize int) ([]int, []int) {
	cutOf := func(a, b []int) float64 {
		var c float64
		for _, i := range a {
			for _, j := range b {
				c += importance(rels[i], rels[j])
			}
		}
		return c
	}
	a1, a2 := refine(importance, rels, l1, l2, parses, minSize)
	b2, b1 := refine(importance, rels, l2, l1, parses, minSize)
	if cutOf(a1, a2) <= cutOf(b1, b2) {
		return a1, a2
	}
	return b1, b2
}

// refine shifts relations from part1 to part2 whenever their accumulated
// predicate importance to part2 exceeds that to their own side, repeating
// for the given number of parses and never shrinking part1 below minSize.
func refine(importance func(i, j int) float64, rels []int, part1, part2 []int, parses, minSize int) ([]int, []int) {
	p1 := append([]int(nil), part1...)
	p2 := append([]int(nil), part2...)
	conf := func(li int, side []int) float64 {
		var c float64
		for _, lj := range side {
			if lj != li {
				c += importance(rels[li], rels[lj])
			}
		}
		return c
	}
	for parse := 0; parse < parses; parse++ {
		moved := false
		snapshot := append([]int(nil), p1...)
		for _, li := range snapshot {
			if len(p1) <= minSize {
				break
			}
			if conf(li, p1) < conf(li, p2) {
				for k, v := range p1 {
					if v == li {
						p1 = append(p1[:k], p1[k+1:]...)
						break
					}
				}
				p2 = append(p2, li)
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return p1, p2
}
