// Package joinorder generalises the paper's partitioning framework to join
// ordering (JO), the extension sketched in its Sec. 7: like MQO, join
// ordering has a graph representation — nodes are relations, edges are
// join predicates — so the same recipe applies: compress, partition on the
// annealer with minimal loss of information, and derive a total solution
// incrementally, steering each sub-ordering by what has been joined so far.
//
// The package provides the query-graph model with a C_out cost function
// over left-deep join orders, an exact dynamic-programming oracle and a
// greedy (GOO-style) baseline for small problems, and the partitioned
// incremental solver mirroring the MQO pipeline.
package joinorder

import (
	"fmt"
	"math"
)

// Relation is a base relation of a join query.
type Relation struct {
	Name        string
	Cardinality float64
}

// Predicate is a join predicate between two relations with a selectivity
// in (0, 1].
type Predicate struct {
	R1, R2      int
	Selectivity float64
}

// QueryGraph is a join query: relations plus join predicates. Relations
// without any predicate connecting them join as cross products.
type QueryGraph struct {
	relations  []Relation
	predicates []Predicate
	// sel[i][j] is the combined selectivity between relations i and j
	// (product over their predicates), or 1 when none exists.
	sel [][]float64
}

// NewQueryGraph validates and indexes a join query.
func NewQueryGraph(relations []Relation, predicates []Predicate) (*QueryGraph, error) {
	if len(relations) == 0 {
		return nil, fmt.Errorf("joinorder: no relations")
	}
	for i, r := range relations {
		if r.Cardinality <= 0 || math.IsNaN(r.Cardinality) || math.IsInf(r.Cardinality, 0) {
			return nil, fmt.Errorf("joinorder: relation %d (%s) has invalid cardinality %v", i, r.Name, r.Cardinality)
		}
	}
	g := &QueryGraph{relations: append([]Relation(nil), relations...)}
	n := len(relations)
	g.sel = make([][]float64, n)
	for i := range g.sel {
		g.sel[i] = make([]float64, n)
		for j := range g.sel[i] {
			g.sel[i][j] = 1
		}
	}
	for _, p := range predicates {
		if p.R1 < 0 || p.R1 >= n || p.R2 < 0 || p.R2 >= n || p.R1 == p.R2 {
			return nil, fmt.Errorf("joinorder: invalid predicate (%d,%d)", p.R1, p.R2)
		}
		if p.Selectivity <= 0 || p.Selectivity > 1 {
			return nil, fmt.Errorf("joinorder: predicate (%d,%d) has invalid selectivity %v", p.R1, p.R2, p.Selectivity)
		}
		g.predicates = append(g.predicates, p)
		g.sel[p.R1][p.R2] *= p.Selectivity
		g.sel[p.R2][p.R1] *= p.Selectivity
	}
	return g, nil
}

// NumRelations returns the number of base relations.
func (g *QueryGraph) NumRelations() int { return len(g.relations) }

// Relation returns relation i.
func (g *QueryGraph) Relation(i int) Relation { return g.relations[i] }

// Predicates returns the join predicates. The slice is owned by the graph.
func (g *QueryGraph) Predicates() []Predicate { return g.predicates }

// Selectivity returns the combined selectivity between two relations
// (1 when they share no predicate).
func (g *QueryGraph) Selectivity(i, j int) float64 { return g.sel[i][j] }

// Order is a left-deep join order: a permutation of the relation indices.
type Order []int

// Validate checks that o is a permutation of g's relations.
func (o Order) Validate(g *QueryGraph) error {
	if len(o) != g.NumRelations() {
		return fmt.Errorf("joinorder: order covers %d relations, query has %d", len(o), g.NumRelations())
	}
	seen := make([]bool, g.NumRelations())
	for _, r := range o {
		if r < 0 || r >= g.NumRelations() || seen[r] {
			return fmt.Errorf("joinorder: order %v is not a permutation", []int(o))
		}
		seen[r] = true
	}
	return nil
}

// Cost evaluates the C_out cost of the left-deep order: the sum of the
// cardinalities of all intermediate results. The cardinality after joining
// relation o[k] is the running product of base cardinalities times the
// selectivities of every predicate whose endpoints are both in the prefix.
func (o Order) Cost(g *QueryGraph) float64 {
	if len(o) == 0 {
		return 0
	}
	card := g.relations[o[0]].Cardinality
	var total float64
	for k := 1; k < len(o); k++ {
		card *= g.relations[o[k]].Cardinality
		for j := 0; j < k; j++ {
			card *= g.sel[o[k]][o[j]]
		}
		total += card
	}
	return total
}

// prefixState tracks an in-flight left-deep join: which relations are
// joined and the current intermediate cardinality. It supports the
// incremental solver, which continues a partition's ordering from the
// global prefix — the join-ordering analogue of DSS re-applying discarded
// information.
type prefixState struct {
	g      *QueryGraph
	joined []bool
	card   float64
	count  int
}

func newPrefixState(g *QueryGraph) *prefixState {
	return &prefixState{g: g, joined: make([]bool, g.NumRelations()), card: 1}
}

func (ps *prefixState) clone() *prefixState {
	cp := &prefixState{g: ps.g, joined: append([]bool(nil), ps.joined...), card: ps.card, count: ps.count}
	return cp
}

// extendCost returns the intermediate cardinality after joining r onto the
// current prefix (the marginal C_out contribution of r).
func (ps *prefixState) extendCost(r int) float64 {
	card := ps.card * ps.g.relations[r].Cardinality
	for j, in := range ps.joined {
		if in {
			card *= ps.g.sel[r][j]
		}
	}
	return card
}

// extend joins r onto the prefix.
func (ps *prefixState) extend(r int) {
	ps.card = ps.extendCost(r)
	ps.joined[r] = true
	ps.count++
}
