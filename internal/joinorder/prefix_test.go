package joinorder

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPrefixStateTracksOrderCost(t *testing.T) {
	// Property: extending a prefix relation by relation accumulates
	// exactly the marginal costs that Order.Cost sums.
	f := func(seed int64) bool {
		g, err := Generate(Cycle, 7, seed)
		if err != nil {
			return false
		}
		order := Order{3, 0, 5, 1, 6, 2, 4}
		ps := newPrefixState(g)
		var total float64
		for i, r := range order {
			c := ps.extendCost(r)
			if i > 0 {
				total += c
			}
			ps.extend(r)
		}
		want := order.Cost(g)
		return math.Abs(total-want) <= 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPrefixStateCloneIsIndependent(t *testing.T) {
	g, err := Generate(Chain, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	ps := newPrefixState(g)
	ps.extend(0)
	cp := ps.clone()
	ps.extend(1)
	if cp.count != 1 || cp.joined[1] {
		t.Error("clone shares state with original")
	}
	if ps.count != 2 {
		t.Errorf("original count = %d, want 2", ps.count)
	}
}

func TestOptimalExtensionContinuesPrefix(t *testing.T) {
	// Joining {b} onto a prefix already holding {a, c} must charge the
	// full cross-selectivity marginal cost.
	g := mustChain(t)
	ps := newPrefixState(g)
	ps.extend(0) // a (card 1000)
	ps.extend(2) // c (card 10) — cross product, card 10000
	ext, marginal, err := optimalExtension(g, ps, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 1 || ext[0] != 1 {
		t.Fatalf("extension = %v, want [1]", ext)
	}
	// 10000 · 100 · 0.01 · 0.1 = 1000.
	if marginal != 1000 {
		t.Errorf("marginal = %v, want 1000", marginal)
	}
}

func mustChain(t *testing.T) *QueryGraph {
	t.Helper()
	g, err := NewQueryGraph(
		[]Relation{{Name: "a", Cardinality: 1000}, {Name: "b", Cardinality: 100}, {Name: "c", Cardinality: 10}},
		[]Predicate{{R1: 0, R2: 1, Selectivity: 0.01}, {R1: 1, R2: 2, Selectivity: 0.1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
