package solvecache

import (
	"sync"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
)

// DefaultMaxEntries bounds the cache when New is given no explicit limit.
const DefaultMaxEntries = 64

// Stats are the cache's lifetime counters. All values are totals since
// construction; Publish mirrors them into an obs.Registry as gauges.
type Stats struct {
	// StructureHits / StructureMisses count Lookup outcomes.
	StructureHits, StructureMisses uint64
	// SkeletonHits / SkeletonMisses count TakeSkeleton outcomes: a hit
	// rebinds a pooled encoding skeleton, a miss falls back to a fresh
	// PrepareMQO.
	SkeletonHits, SkeletonMisses uint64
	// WarmStarts counts solves that seeded annealing runs from a cached
	// incumbent.
	WarmStarts uint64
	// Evictions counts entries dropped to keep the cache within bound.
	Evictions uint64
	// DeltaMigrations counts MigrateDelta calls that found and rewrote an
	// entry.
	DeltaMigrations uint64
}

// entry is the cached state of one problem structure. The cache lock only
// guards the entries map and LRU bookkeeping; the entry's own lock guards
// its content, so concurrent solves of different structures never contend.
type entry struct {
	mu sync.Mutex
	// costs and savings snapshot the weights of the last committed solve;
	// Lookup computes drift against them.
	costs, savings []float64
	// querySets is the committed partitioning: parent query indices per
	// capacity-conforming partial problem.
	querySets [][]int
	// incumbent is the last solve's plan selection per query
	// (mqo.Unassigned where a delta added a query no solve has covered
	// yet) and incumbentCost its cost at commit time.
	incumbent     []int
	incumbentCost float64
	// skeletons pools prepared encoding skeletons by sub-problem shape.
	// Multiple sub-problems of one solve can share a shape, hence a slice
	// per key. TakeSkeleton checks a skeleton out (exactly one owner);
	// Commit checks the solve's skeletons back in.
	skeletons map[Key][]*encoding.PreparedMQO

	lastUsed uint64 // cache-lock domain: LRU clock tick of the last touch
}

// Cache is the process-wide cross-solve cache. One handle is shared by
// every solve that should benefit from recurrence — a facade Session chain,
// the whole serve fleet — and all methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int
	clock   uint64
	entries map[Key]*entry
	stats   Stats
}

// New returns a cache bounded to maxEntries problem structures
// (DefaultMaxEntries when <= 0). Least-recently-used entries are evicted
// past the bound.
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{max: maxEntries, entries: make(map[Key]*entry)}
}

// Hit is the cached state matching one Lookup. QuerySets and Incumbent are
// deep copies owned by the caller; TakeSkeleton goes back to the shared
// entry.
type Hit struct {
	// QuerySets is the cached partitioning, ready for partition.Refit.
	QuerySets [][]int
	// Incumbent holds the previous solve's selected plan per query
	// (mqo.Unassigned for queries no committed solve covered).
	Incumbent []int
	// IncumbentCost is the incumbent's cost at commit time, under the
	// weights of that solve.
	IncumbentCost float64
	// Drift is the relative weight distance between the looked-up problem
	// and the cached solve's weights (see WeightDrift). 0 means the exact
	// same problem.
	Drift float64

	c *Cache
	e *entry
}

// Lookup returns the cached state for p's structure, or nil on a miss. The
// returned hit's drift is computed against the weights of the last
// committed solve of that structure.
func (c *Cache) Lookup(p *mqo.Problem) *Hit {
	if c == nil {
		return nil
	}
	k := StructureKey(p)
	c.mu.Lock()
	e := c.entries[k]
	if e == nil {
		c.stats.StructureMisses++
		c.mu.Unlock()
		return nil
	}
	c.clock++
	e.lastUsed = c.clock
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.costs) != p.NumPlans() || len(e.savings) != p.NumSavings() {
		// A structure-key collision (or an entry mid-migration): treat as a
		// miss rather than feed a foreign partitioning to Refit.
		c.mu.Lock()
		c.stats.StructureMisses++
		c.mu.Unlock()
		return nil
	}
	h := &Hit{
		QuerySets:     make([][]int, len(e.querySets)),
		Incumbent:     append([]int(nil), e.incumbent...),
		IncumbentCost: e.incumbentCost,
		Drift:         WeightDrift(p, e.costs, e.savings),
		c:             c,
		e:             e,
	}
	for i, qs := range e.querySets {
		h.QuerySets[i] = append([]int(nil), qs...)
	}
	c.mu.Lock()
	c.stats.StructureHits++
	c.mu.Unlock()
	return h
}

// TakeSkeleton checks a pooled encoding skeleton matching local's shape out
// of the hit's entry and rebinds it to local's weights. It returns nil when
// the pool holds none — or when the pooled skeleton's shape does not
// actually match (a fingerprint collision loses a skeleton, never
// correctness). A returned skeleton has exactly one owner until the next
// Commit checks it back in.
func (h *Hit) TakeSkeleton(local *mqo.Problem) *encoding.PreparedMQO {
	if h == nil {
		return nil
	}
	k := StructureKey(local)
	h.e.mu.Lock()
	var pp *encoding.PreparedMQO
	if pool := h.e.skeletons[k]; len(pool) > 0 {
		pp = pool[len(pool)-1]
		h.e.skeletons[k] = pool[:len(pool)-1]
	}
	h.e.mu.Unlock()
	if pp != nil && !pp.Rebind(local) {
		pp = nil
	}
	h.c.mu.Lock()
	if pp != nil {
		h.c.stats.SkeletonHits++
	} else {
		h.c.stats.SkeletonMisses++
	}
	h.c.mu.Unlock()
	return pp
}

// Commit records a completed solve of p: the capacity-conforming query
// sets, the final incumbent and its cost, the weight snapshot the next
// Lookup computes drift against, and the solve's prepared skeletons for
// reuse. It creates or refreshes the entry for p's structure, evicting the
// least-recently-used entry when the cache is over bound.
func (c *Cache) Commit(p *mqo.Problem, querySets [][]int, incumbent []int, cost float64, skeletons []*encoding.PreparedMQO) {
	if c == nil {
		return
	}
	k := StructureKey(p)
	c.mu.Lock()
	e := c.entries[k]
	if e == nil {
		e = &entry{}
		c.entries[k] = e
		for len(c.entries) > c.max {
			c.evictLocked(k)
		}
	}
	c.clock++
	e.lastUsed = c.clock
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	e.costs = e.costs[:0]
	for pl := 0; pl < p.NumPlans(); pl++ {
		e.costs = append(e.costs, p.Cost(pl))
	}
	e.savings = e.savings[:0]
	for _, s := range p.Savings() {
		e.savings = append(e.savings, s.Value)
	}
	e.querySets = make([][]int, len(querySets))
	for i, qs := range querySets {
		e.querySets[i] = append([]int(nil), qs...)
	}
	e.incumbent = append(e.incumbent[:0], incumbent...)
	e.incumbentCost = cost
	// Check the solve's skeletons back in wholesale: the previous pool is
	// dropped (checked-out skeletons were rebound into this solve and come
	// back through this slice), so the pool never grows past one solve's
	// worth per structure.
	e.skeletons = make(map[Key][]*encoding.PreparedMQO, len(skeletons))
	for _, pp := range skeletons {
		if pp == nil {
			continue
		}
		sk := StructureKey(pp.Problem)
		e.skeletons[sk] = append(e.skeletons[sk], pp)
	}
}

// evictLocked drops the least-recently-used entry other than keep. Caller
// holds c.mu.
func (c *Cache) evictLocked(keep Key) {
	var victim Key
	var victimAge uint64
	found := false
	for k, e := range c.entries {
		if k == keep {
			continue
		}
		if !found || e.lastUsed < victimAge {
			victim, victimAge, found = k, e.lastUsed, true
		}
	}
	if !found {
		return
	}
	delete(c.entries, victim)
	c.stats.Evictions++
}

// Invalidate drops the entry for p's structure, if any. The solve layer
// calls it when a cached partitioning fails to refit — the entry is
// corrupt or describes a different problem (collision) and must not be
// offered again.
func (c *Cache) Invalidate(p *mqo.Problem) {
	if c == nil {
		return
	}
	k := StructureKey(p)
	c.mu.Lock()
	if _, ok := c.entries[k]; ok {
		delete(c.entries, k)
		c.stats.Evictions++
	}
	c.mu.Unlock()
}

// RecordWarmStart counts one warm-started solve.
func (c *Cache) RecordWarmStart() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stats.WarmStarts++
	c.mu.Unlock()
}

// Stats returns a snapshot of the lifetime counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of cached problem structures.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Publish mirrors the counters into reg as "cache.*" gauges (totals, so
// republishing after every solve is idempotent). A nil registry or cache is
// a no-op.
func (c *Cache) Publish(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	s := c.Stats()
	reg.Gauge("cache.structure.hits").Set(float64(s.StructureHits))
	reg.Gauge("cache.structure.misses").Set(float64(s.StructureMisses))
	reg.Gauge("cache.skeleton.hits").Set(float64(s.SkeletonHits))
	reg.Gauge("cache.skeleton.misses").Set(float64(s.SkeletonMisses))
	reg.Gauge("cache.warm_starts").Set(float64(s.WarmStarts))
	reg.Gauge("cache.evictions").Set(float64(s.Evictions))
	reg.Gauge("cache.entries").Set(float64(c.Len()))
}
