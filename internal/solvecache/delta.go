package solvecache

import (
	"incranneal/internal/mqo"
)

// MigrateDelta rewrites the cached state of old's structure to match next,
// the problem obtained by applying a delta with index maps dm, instead of
// invalidating it. Removed queries leave their query sets; added queries
// greedily join the set holding the most saving mass towards them (a
// capacity-fitting set is preferred — when the best set would overflow, the
// next solve's partition.Refit re-bisects exactly that set, which is the
// delta API's "re-partition only the touched region" contract). The
// incumbent's surviving selections carry over for warm starts; the weight
// snapshot stays at the last *solved* weights (mapped into the new
// numbering) so the next Lookup still measures drift against the solve that
// produced the incumbent. Skeletons keep their shape keys: sets the delta
// did not touch rebind as usual, stale shapes simply miss.
//
// A no-op when old's structure is not cached. capacity is the partial-
// problem plan bound (core.Options.capacity()); <= 0 skips the fitting
// preference.
func (c *Cache) MigrateDelta(old, next *mqo.Problem, dm *mqo.DeltaMap, capacity int) {
	if c == nil || dm == nil {
		return
	}
	ko := StructureKey(old)
	kn := StructureKey(next)
	c.mu.Lock()
	e := c.entries[ko]
	if e == nil {
		c.mu.Unlock()
		return
	}
	if kn != ko {
		delete(c.entries, ko)
		c.entries[kn] = e // an existing entry for kn is superseded
	}
	c.clock++
	e.lastUsed = c.clock
	c.stats.DeltaMigrations++
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()

	// Query sets: map surviving members, drop emptied sets.
	var sets [][]int
	setOf := make([]int, next.NumQueries())
	for i := range setOf {
		setOf[i] = -1
	}
	for _, qs := range e.querySets {
		var mapped []int
		for _, q := range qs {
			if q < 0 || q >= len(dm.QueryMap) {
				continue
			}
			if nq := dm.QueryMap[q]; nq >= 0 {
				mapped = append(mapped, nq)
			}
		}
		if len(mapped) == 0 {
			continue
		}
		for _, nq := range mapped {
			setOf[nq] = len(sets)
		}
		sets = append(sets, mapped)
	}
	setWeight := make([]int, len(sets))
	for si, qs := range sets {
		for _, nq := range qs {
			setWeight[si] += len(next.Plans(nq))
		}
	}
	// Added queries: attach each to the set it shares the most saving mass
	// with (ties to the lowest set index, for determinism), preferring sets
	// it still fits into; no affinity means its own singleton set. Earlier
	// additions are visible to later ones through setOf, so chained savings
	// via intermediate deltas cluster naturally.
	for _, nq := range dm.AddedQueries {
		affinity := make(map[int]float64)
		for _, pl := range next.Plans(nq) {
			for _, s := range next.SavingsOf(pl) {
				other := s.P1
				if other == pl {
					other = s.P2
				}
				if si := setOf[next.QueryOf(other)]; si >= 0 {
					affinity[si] += s.Value
				}
			}
		}
		w := len(next.Plans(nq))
		best, bestFits, bestAff := -1, false, 0.0
		for si, aff := range affinity {
			if aff <= 0 {
				continue
			}
			fits := capacity <= 0 || setWeight[si]+w <= capacity
			better := false
			switch {
			case fits != bestFits:
				better = fits
			case aff != bestAff:
				better = aff > bestAff
			default:
				better = si < best
			}
			if best < 0 || better {
				best, bestFits, bestAff = si, fits, aff
			}
		}
		if best >= 0 {
			sets[best] = append(sets[best], nq)
			setWeight[best] += w
			setOf[nq] = best
		} else {
			setOf[nq] = len(sets)
			sets = append(sets, []int{nq})
			setWeight = append(setWeight, w)
		}
	}
	e.querySets = sets

	// Incumbent: surviving selections map through; added queries start
	// unassigned (warm starts leave their variables cold).
	newInc := make([]int, next.NumQueries())
	for i := range newInc {
		newInc[i] = mqo.Unassigned
	}
	for oldQ, sel := range e.incumbent {
		if oldQ >= len(dm.QueryMap) || sel < 0 || sel >= len(dm.PlanMap) {
			continue
		}
		if nq := dm.QueryMap[oldQ]; nq >= 0 {
			if np := dm.PlanMap[sel]; np >= 0 {
				newInc[nq] = np
			}
		}
	}
	e.incumbent = newInc

	// Weight snapshot: keep the last solve's weights, renumbered. Weights
	// the delta introduced (added plans, added savings) take the new
	// problem's values — they contribute zero drift, having no solved
	// counterpart to drift from.
	costs := make([]float64, next.NumPlans())
	for pl := 0; pl < next.NumPlans(); pl++ {
		costs[pl] = next.Cost(pl)
	}
	for oldPl, c0 := range e.costs {
		if oldPl < len(dm.PlanMap) {
			if np := dm.PlanMap[oldPl]; np >= 0 {
				costs[np] = c0
			}
		}
	}
	oldVals := make(map[[2]int]float64, len(e.savings))
	for i, s := range old.Savings() {
		if i >= len(e.savings) {
			break
		}
		n1, n2 := dm.PlanMap[s.P1], dm.PlanMap[s.P2]
		if n1 < 0 || n2 < 0 {
			continue
		}
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		oldVals[[2]int{n1, n2}] = e.savings[i]
	}
	savings := make([]float64, next.NumSavings())
	for i, s := range next.Savings() {
		if v, ok := oldVals[[2]int{s.P1, s.P2}]; ok {
			savings[i] = v
		} else {
			savings[i] = s.Value
		}
	}
	e.costs, e.savings = costs, savings
}
