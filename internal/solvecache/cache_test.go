package solvecache

import (
	"math"
	"math/rand"
	"testing"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
)

// prob builds a problem or fails the test.
func prob(t *testing.T, costs [][]float64, savings []mqo.Saving) *mqo.Problem {
	t.Helper()
	p, err := mqo.NewProblem(costs, savings)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func twoQuery(t *testing.T, c00, c01, c10, c11, sv float64) *mqo.Problem {
	return prob(t, [][]float64{{c00, c01}, {c10, c11}}, []mqo.Saving{{P1: 0, P2: 2, Value: sv}})
}

func TestStructureKeyShapeOnly(t *testing.T) {
	a := twoQuery(t, 3, 5, 2, 4, 1.5)
	b := twoQuery(t, 30, 50, 20, 40, 9.25) // same shape, different weights
	if StructureKey(a) != StructureKey(b) {
		t.Fatal("weight change altered the structure key")
	}
	if StructureKey(a) != StructureKey(a) {
		t.Fatal("key is not deterministic")
	}
	// Value 0 vs non-zero is a weight difference, not a structural one.
	z := twoQuery(t, 3, 5, 2, 4, 0)
	if StructureKey(a) != StructureKey(z) {
		t.Fatal("saving value zeroing altered the structure key")
	}
}

func TestStructureKeyStructureSensitive(t *testing.T) {
	base := twoQuery(t, 3, 5, 2, 4, 1.5)
	mutants := []*mqo.Problem{
		prob(t, [][]float64{{3, 5}, {2, 4}, {1}}, []mqo.Saving{{P1: 0, P2: 2, Value: 1.5}}),                        // extra query
		prob(t, [][]float64{{3, 5, 6}, {2, 4}}, []mqo.Saving{{P1: 0, P2: 3, Value: 1.5}}),                          // extra plan
		prob(t, [][]float64{{3, 5}, {2, 4}}, []mqo.Saving{{P1: 1, P2: 3, Value: 1.5}}),                             // rewired saving
		prob(t, [][]float64{{3, 5}, {2, 4}}, nil),                                                                  // dropped saving
		prob(t, [][]float64{{3, 5}, {2, 4}}, []mqo.Saving{{P1: 0, P2: 2, Value: 1.5}, {P1: 1, P2: 2, Value: 0.1}}), // extra saving
		prob(t, [][]float64{{3}, {5, 2, 4}}, []mqo.Saving{{P1: 0, P2: 1, Value: 1.5}}),                             // shifted plan split
	}
	bk := StructureKey(base)
	for i, m := range mutants {
		if StructureKey(m) == bk {
			t.Errorf("mutant %d: structural change did not alter the key", i)
		}
	}
}

func TestWeightDrift(t *testing.T) {
	p := twoQuery(t, 3, 5, 2, 4, 1.5)
	snapCosts := []float64{3, 5, 2, 4}
	snapSavings := []float64{1.5}
	if d := WeightDrift(p, snapCosts, snapSavings); d != 0 {
		t.Fatalf("identical weights: drift = %v, want 0", d)
	}
	// Every weight +5% exactly → relative L1 drift 0.05.
	q := twoQuery(t, 3*1.05, 5*1.05, 2*1.05, 4*1.05, 1.5*1.05)
	if d := WeightDrift(q, snapCosts, snapSavings); math.Abs(d-0.05) > 1e-12 {
		t.Fatalf("uniform +5%%: drift = %v, want 0.05", d)
	}
	// Zero-mass snapshot with non-zero current weights: +Inf, never NaN.
	if d := WeightDrift(p, []float64{0, 0, 0, 0}, []float64{0}); !math.IsInf(d, 1) {
		t.Fatalf("zero snapshot: drift = %v, want +Inf", d)
	}
}

func TestCommitLookupRoundTrip(t *testing.T) {
	c := New(0)
	p := twoQuery(t, 3, 5, 2, 4, 1.5)
	if c.Lookup(p) != nil {
		t.Fatal("lookup on an empty cache hit")
	}
	sets := [][]int{{0, 1}}
	inc := []int{0, 3}
	c.Commit(p, sets, inc, 6.5, nil)
	h := c.Lookup(p)
	if h == nil {
		t.Fatal("lookup after commit missed")
	}
	if len(h.QuerySets) != 1 || len(h.QuerySets[0]) != 2 || h.QuerySets[0][0] != 0 || h.QuerySets[0][1] != 1 {
		t.Fatalf("query sets round-tripped as %v", h.QuerySets)
	}
	if len(h.Incumbent) != 2 || h.Incumbent[0] != 0 || h.Incumbent[1] != 3 {
		t.Fatalf("incumbent round-tripped as %v", h.Incumbent)
	}
	if h.IncumbentCost != 6.5 {
		t.Fatalf("incumbent cost = %v, want 6.5", h.IncumbentCost)
	}
	if h.Drift != 0 {
		t.Fatalf("same-problem drift = %v, want 0", h.Drift)
	}
	// The hit owns deep copies: mutating them must not poison the entry.
	h.QuerySets[0][0] = 99
	h.Incumbent[0] = 99
	h2 := c.Lookup(p)
	if h2.QuerySets[0][0] != 0 || h2.Incumbent[0] != 0 {
		t.Fatal("hit copies alias the cached entry")
	}
	// Drift against the committed snapshot for a reweighted recurrence.
	q := twoQuery(t, 3*1.05, 5*1.05, 2*1.05, 4*1.05, 1.5*1.05)
	hd := c.Lookup(q)
	if hd == nil {
		t.Fatal("reweighted recurrence missed")
	}
	if math.Abs(hd.Drift-0.05) > 1e-12 {
		t.Fatalf("reweighted drift = %v, want 0.05", hd.Drift)
	}
	s := c.Stats()
	if s.StructureHits != 3 || s.StructureMisses != 1 {
		t.Fatalf("stats = %+v, want 3 hits / 1 miss", s)
	}
}

// TestLookupCollisionDefense plants a foreign entry under a problem's key —
// the in-process equivalent of a sha256 collision — and checks Lookup
// degrades to a miss instead of returning a partitioning for the wrong
// problem.
func TestLookupCollisionDefense(t *testing.T) {
	c := New(0)
	a := twoQuery(t, 3, 5, 2, 4, 1.5)
	c.Commit(a, [][]int{{0, 1}}, []int{0, 3}, 6.5, nil)
	b := prob(t, [][]float64{{1, 2, 3}, {4, 5, 6}, {7}}, nil) // different plan/saving counts
	c.mu.Lock()
	c.entries[StructureKey(b)] = c.entries[StructureKey(a)]
	c.mu.Unlock()
	if h := c.Lookup(b); h != nil {
		t.Fatalf("collision lookup returned a foreign hit: %+v", h)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	ps := []*mqo.Problem{
		prob(t, [][]float64{{1}}, nil),
		prob(t, [][]float64{{1}, {2}}, nil),
		prob(t, [][]float64{{1}, {2}, {3}}, nil),
	}
	c.Commit(ps[0], [][]int{{0}}, []int{0}, 1, nil)
	c.Commit(ps[1], [][]int{{0, 1}}, []int{0, 1}, 3, nil)
	// Touch ps[0] so ps[1] is the LRU victim when ps[2] lands.
	if c.Lookup(ps[0]) == nil {
		t.Fatal("ps[0] missing before eviction")
	}
	c.Commit(ps[2], [][]int{{0, 1, 2}}, []int{0, 1, 2}, 6, nil)
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if c.Lookup(ps[1]) != nil {
		t.Fatal("LRU entry survived eviction")
	}
	if c.Lookup(ps[0]) == nil || c.Lookup(ps[2]) == nil {
		t.Fatal("recently used entries were evicted")
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(0)
	p := twoQuery(t, 3, 5, 2, 4, 1.5)
	c.Commit(p, [][]int{{0, 1}}, []int{0, 3}, 6.5, nil)
	c.Invalidate(p)
	if c.Lookup(p) != nil {
		t.Fatal("invalidated entry still hits")
	}
	c.Invalidate(p) // idempotent on a missing entry
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

func TestTakeSkeletonPool(t *testing.T) {
	c := New(0)
	p := twoQuery(t, 3, 5, 2, 4, 1.5)
	pp, err := encoding.PrepareMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	c.Commit(p, [][]int{{0, 1}}, []int{0, 3}, 6.5, []*encoding.PreparedMQO{pp})
	h := c.Lookup(p)
	if h == nil {
		t.Fatal("lookup missed")
	}
	// Same shape, new weights: checkout rebinds in place.
	q := twoQuery(t, 4, 6, 3, 5, 2.5)
	got := h.TakeSkeleton(q)
	if got == nil {
		t.Fatal("pooled skeleton not returned")
	}
	if got.Problem != q {
		t.Fatal("returned skeleton not rebound to the local problem")
	}
	// Exactly one owner: a second checkout of the same shape misses.
	if h.TakeSkeleton(q) != nil {
		t.Fatal("skeleton checked out twice")
	}
	// Commit checks it back in for the next solve.
	c.Commit(p, [][]int{{0, 1}}, []int{0, 3}, 6.5, []*encoding.PreparedMQO{got})
	h2 := c.Lookup(p)
	if h2.TakeSkeleton(p) == nil {
		t.Fatal("recommitted skeleton not available")
	}
	s := c.Stats()
	if s.SkeletonHits != 2 || s.SkeletonMisses != 1 {
		t.Fatalf("skeleton stats = %+v, want 2 hits / 1 miss", s)
	}
}

// TestTakeSkeletonShapeMismatch pools a skeleton under a foreign shape key
// (collision stand-in); Rebind's validation must turn the checkout into a
// miss rather than hand back a wrong-shape skeleton.
func TestTakeSkeletonShapeMismatch(t *testing.T) {
	c := New(0)
	p := twoQuery(t, 3, 5, 2, 4, 1.5)
	pp, err := encoding.PrepareMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	c.Commit(p, [][]int{{0, 1}}, []int{0, 3}, 6.5, []*encoding.PreparedMQO{pp})
	other := prob(t, [][]float64{{1, 2, 3}, {4, 5}}, nil)
	c.mu.Lock()
	e := c.entries[StructureKey(p)]
	c.mu.Unlock()
	e.mu.Lock()
	e.skeletons[StructureKey(other)] = e.skeletons[StructureKey(p)]
	e.mu.Unlock()
	h := c.Lookup(p)
	if got := h.TakeSkeleton(other); got != nil {
		t.Fatal("shape-mismatched skeleton survived checkout")
	}
	if s := c.Stats(); s.SkeletonMisses != 1 {
		t.Fatalf("skeleton misses = %d, want 1", s.SkeletonMisses)
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	p := prob(t, [][]float64{{1}}, nil)
	if c.Lookup(p) != nil {
		t.Fatal("nil cache lookup hit")
	}
	c.Commit(p, nil, nil, 0, nil)
	c.Invalidate(p)
	c.RecordWarmStart()
	c.Publish(obs.NewRegistry())
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache reported state")
	}
	var h *Hit
	if h.TakeSkeleton(p) != nil {
		t.Fatal("nil hit returned a skeleton")
	}
}

func TestPublishGauges(t *testing.T) {
	c := New(0)
	p := twoQuery(t, 3, 5, 2, 4, 1.5)
	c.Lookup(p) // miss
	c.Commit(p, [][]int{{0, 1}}, []int{0, 3}, 6.5, nil)
	c.Lookup(p) // hit
	c.RecordWarmStart()
	reg := obs.NewRegistry()
	c.Publish(reg)
	want := map[string]float64{
		"cache.structure.hits":   1,
		"cache.structure.misses": 1,
		"cache.skeleton.hits":    0,
		"cache.skeleton.misses":  0,
		"cache.warm_starts":      1,
		"cache.evictions":        0,
		"cache.entries":          1,
	}
	for name, v := range want {
		if got := reg.Gauge(name).Value(); got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
}

func TestMigrateDelta(t *testing.T) {
	// Three queries, two plans each; savings chain 0-1 and 1-2.
	p := prob(t, [][]float64{{3, 5}, {2, 4}, {6, 1}},
		[]mqo.Saving{{P1: 0, P2: 2, Value: 1.5}, {P1: 3, P2: 4, Value: 2}})
	c := New(0)
	c.Commit(p, [][]int{{0, 1}, {2}}, []int{0, 3, 5}, 9, nil)

	// Remove query 0, add a query tied to old query 2 by saving mass.
	d := mqo.Delta{
		RemoveQueries: []int{0},
		AddQueries: []mqo.AddedQuery{{
			PlanCosts: []float64{7, 8},
			Savings:   []mqo.Saving{{P1: 0, P2: 4, Value: 3}}, // local plan 0 ↔ old plan 4 (query 2)
		}},
	}
	np, dm, err := d.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	c.MigrateDelta(p, np, dm, 100)

	if c.Lookup(p) != nil {
		t.Fatal("old structure still cached after migration")
	}
	h := c.Lookup(np)
	if h == nil {
		t.Fatal("migrated structure missed")
	}
	// Set {0,1} lost query 0 → {old 1} = new 0; set {old 2} = new 1 gains the
	// added query (new 2) by saving affinity.
	if len(h.QuerySets) != 2 {
		t.Fatalf("query sets = %v, want 2 sets", h.QuerySets)
	}
	if len(h.QuerySets[0]) != 1 || h.QuerySets[0][0] != 0 {
		t.Fatalf("surviving set = %v, want [0]", h.QuerySets[0])
	}
	if len(h.QuerySets[1]) != 2 || h.QuerySets[1][0] != 1 || h.QuerySets[1][1] != 2 {
		t.Fatalf("affinity set = %v, want [1 2]", h.QuerySets[1])
	}
	// Incumbent: old query 1's plan 3 renumbers to 1, old query 2's plan 5
	// renumbers to 3; the added query starts unassigned.
	if len(h.Incumbent) != 3 || h.Incumbent[0] != 1 || h.Incumbent[1] != 3 || h.Incumbent[2] != mqo.Unassigned {
		t.Fatalf("incumbent = %v, want [1 3 %d]", h.Incumbent, mqo.Unassigned)
	}
	// Surviving weights carried over unchanged → drift 0 on lookup of np.
	if h.Drift != 0 {
		t.Fatalf("post-migration drift = %v, want 0", h.Drift)
	}
	if s := c.Stats(); s.DeltaMigrations != 1 {
		t.Fatalf("delta migrations = %d, want 1", s.DeltaMigrations)
	}
}

func TestMigrateDeltaCapacityOverflow(t *testing.T) {
	// Both existing queries sit in one set of weight 4 (two plans each).
	p := prob(t, [][]float64{{3, 5}, {2, 4}},
		[]mqo.Saving{{P1: 0, P2: 2, Value: 1.5}})
	c := New(0)
	c.Commit(p, [][]int{{0, 1}}, []int{0, 3}, 9, nil)
	d := mqo.Delta{AddQueries: []mqo.AddedQuery{{
		PlanCosts: []float64{7, 8, 9},
		Savings:   []mqo.Saving{{P1: 0, P2: 0, Value: 3}},
	}}}
	np, dm, err := d.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 5: the affinity set (weight 4) cannot take 3 more plans, and
	// there is no fitting alternative — the query still joins its best
	// affinity set, leaving Refit to re-bisect exactly that set.
	c.MigrateDelta(p, np, dm, 5)
	h := c.Lookup(np)
	if h == nil {
		t.Fatal("migrated structure missed")
	}
	if len(h.QuerySets) != 1 || len(h.QuerySets[0]) != 3 {
		t.Fatalf("query sets = %v, want one merged set", h.QuerySets)
	}
}

func TestMigrateDeltaNoAffinitySingleton(t *testing.T) {
	p := prob(t, [][]float64{{3, 5}}, nil)
	c := New(0)
	c.Commit(p, [][]int{{0}}, []int{0}, 3, nil)
	d := mqo.Delta{AddQueries: []mqo.AddedQuery{{PlanCosts: []float64{1, 2}}}}
	np, dm, err := d.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	c.MigrateDelta(p, np, dm, 100)
	h := c.Lookup(np)
	if h == nil {
		t.Fatal("migrated structure missed")
	}
	if len(h.QuerySets) != 2 || len(h.QuerySets[1]) != 1 || h.QuerySets[1][0] != 1 {
		t.Fatalf("query sets = %v, want added query in its own set", h.QuerySets)
	}
}

func TestMigrateDeltaUncachedNoOp(t *testing.T) {
	c := New(0)
	p := prob(t, [][]float64{{3, 5}}, nil)
	d := mqo.Delta{AddQueries: []mqo.AddedQuery{{PlanCosts: []float64{1}}}}
	np, dm, err := d.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	c.MigrateDelta(p, np, dm, 100)
	if c.Len() != 0 {
		t.Fatal("migration of an uncached structure created an entry")
	}
	if s := c.Stats(); s.DeltaMigrations != 0 {
		t.Fatalf("delta migrations = %d, want 0", s.DeltaMigrations)
	}
}

func TestConcurrentCommitLookup(t *testing.T) {
	c := New(4)
	var ps []*mqo.Problem
	for n := 1; n <= 6; n++ {
		costs := make([][]float64, n)
		for i := range costs {
			costs[i] = []float64{float64(i + 1), float64(i + 2)}
		}
		ps = append(ps, prob(t, costs, nil))
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				p := ps[rng.Intn(len(ps))]
				if rng.Intn(2) == 0 {
					inc := make([]int, p.NumQueries())
					c.Commit(p, [][]int{}, inc, 1, nil)
				} else if h := c.Lookup(p); h != nil {
					if len(h.Incumbent) != p.NumQueries() {
						panic("foreign incumbent")
					}
				}
			}
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Len() > 4 {
		t.Fatalf("len = %d exceeds bound 4", c.Len())
	}
}
