package solvecache

import (
	"math/rand"
	"testing"

	"incranneal/internal/mqo"
)

// randomProblem derives a small random problem from rng: 1-5 queries, 1-4
// plans each, ~40% pairwise cross-query saving density.
func randomProblem(rng *rand.Rand) *mqo.Problem {
	nq := 1 + rng.Intn(5)
	costs := make([][]float64, nq)
	for q := range costs {
		row := make([]float64, 1+rng.Intn(4))
		for i := range row {
			row[i] = 1 + 19*rng.Float64()
		}
		costs[q] = row
	}
	p, err := mqo.NewProblem(costs, nil)
	if err != nil {
		panic(err)
	}
	var savings []mqo.Saving
	for p1 := 0; p1 < p.NumPlans(); p1++ {
		for p2 := p1 + 1; p2 < p.NumPlans(); p2++ {
			if p.QueryOf(p1) == p.QueryOf(p2) || rng.Float64() > 0.4 {
				continue
			}
			savings = append(savings, mqo.Saving{P1: p1, P2: p2, Value: 10 * rng.Float64()})
		}
	}
	p, err = mqo.NewProblem(costs, savings)
	if err != nil {
		panic(err)
	}
	return p
}

// FuzzStructureKey drives the fingerprint's core contract over random
// problems: pure weight changes never move the key, every structural
// mutation does, and WeightDrift of a reweighted copy is finite and
// non-negative.
func FuzzStructureKey(f *testing.F) {
	for s := int64(0); s < 8; s++ {
		f.Add(s, 0.1)
	}
	f.Fuzz(func(t *testing.T, seed int64, jitter float64) {
		if jitter < 0 {
			jitter = -jitter
		}
		if jitter > 0.9 {
			jitter = 0.9
		}
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng)
		key := StructureKey(p)

		// Weight-only mutation: same key.
		costs := make([][]float64, p.NumQueries())
		for q := range costs {
			row := make([]float64, len(p.Plans(q)))
			for i, pl := range p.Plans(q) {
				row[i] = p.Cost(pl) * (1 + jitter*(2*rng.Float64()-1))
			}
			costs[q] = row
		}
		savings := append([]mqo.Saving(nil), p.Savings()...)
		snapSavings := make([]float64, len(savings))
		for i := range savings {
			snapSavings[i] = savings[i].Value
			if savings[i].Value != 0 {
				savings[i].Value *= 1 + jitter*(2*rng.Float64()-1)
			}
		}
		rp, err := mqo.NewProblem(costs, savings)
		if err != nil {
			t.Fatal(err)
		}
		if StructureKey(rp) != key {
			t.Fatal("weight jitter moved the structure key")
		}
		snapCosts := make([]float64, p.NumPlans())
		for pl := range snapCosts {
			snapCosts[pl] = p.Cost(pl)
		}
		if d := WeightDrift(rp, snapCosts, snapSavings); d < 0 || d > 2*jitter+1e-9 {
			t.Fatalf("drift %v outside [0, %v]", d, 2*jitter)
		}

		// Structural mutations: the key must move.
		addQuery := func() *mqo.Problem {
			c2 := append(append([][]float64(nil), costs...), []float64{1})
			q, err := mqo.NewProblem(c2, savings)
			if err != nil {
				t.Fatal(err)
			}
			return q
		}
		addPlan := func() *mqo.Problem {
			c2 := make([][]float64, len(costs))
			copy(c2, costs)
			c2[len(c2)-1] = append(append([]float64(nil), c2[len(c2)-1]...), 1)
			// Savings reference global plan indices before the appended plan's
			// position only if they precede it; appending to the LAST query
			// keeps every existing index valid.
			q, err := mqo.NewProblem(c2, savings)
			if err != nil {
				t.Fatal(err)
			}
			return q
		}
		dropSaving := func() *mqo.Problem {
			if len(savings) == 0 {
				return nil
			}
			q, err := mqo.NewProblem(costs, savings[1:])
			if err != nil {
				t.Fatal(err)
			}
			return q
		}
		for i, mutate := range []func() *mqo.Problem{addQuery, addPlan, dropSaving} {
			m := mutate()
			if m == nil {
				continue
			}
			if StructureKey(m) == key {
				t.Fatalf("structural mutation %d kept the key", i)
			}
		}
	})
}
