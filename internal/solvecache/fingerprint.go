// Package solvecache is the cross-solve cache behind recurring MQO
// workloads: the same query batches return solve after solve with drifted
// cost weights, and everything expensive about a solve — the recursive
// annealer-backed partitioning, the per-sub-problem encoding skeletons,
// even a good starting point for the anneal itself — depends only on the
// problem *structure*, which those recurrences share. The cache extends the
// paper's within-solve insight (PR 3: structure is invariant, only weights
// move) across solves:
//
//   - Structure tier: a canonical shape-only fingerprint of the problem
//     keys the whole recursive partitioning. On a hit the solve skips
//     bisection entirely; partition.Refit only re-bisects query sets that
//     stopped fitting the capacity (none, on a plain recurrence).
//   - Skeleton tier: encoding.PreparedMQO skeletons are pooled per
//     sub-problem shape and rebound to the new weights in place, so a hit
//     solve never rebuilds a QUBO term structure.
//   - Warm-start tier: the previous incumbent's plan selections seed part
//     of the annealing runs when the relative weight drift is within a
//     configured bound (core.Options.WarmStartDrift).
//
// Correctness never rests on the fingerprint: a hash collision at the
// structure tier is caught by Refit's coverage validation (the cached query
// sets reference the wrong queries) and at the skeleton tier by Rebind's
// shape validation — both degrade to the cold path.
package solvecache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"incranneal/internal/mqo"
)

// Key is a structure fingerprint: a sha256 digest over a canonical
// serialisation of a problem's shape.
type Key [sha256.Size]byte

// Short returns an abbreviated hex form for logs and stats.
func (k Key) Short() string { return hex.EncodeToString(k[:6]) }

// StructureKey fingerprints the SHAPE of p: the number of queries, each
// query's plan count, and every saving's canonical plan pair. Cost and
// saving values are deliberately excluded — two recurrences of the same
// workload with drifted weights share a key — but the savings *pairs* are
// included, so adding, removing or re-wiring any saving changes the key.
// Problems store savings canonically sorted and de-duplicated, so equal
// shapes serialise identically.
func StructureKey(p *mqo.Problem) Key {
	h := sha256.New()
	var buf [8]byte
	u := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte("incranneal/structure/v1"))
	u(uint64(p.NumQueries()))
	for q := 0; q < p.NumQueries(); q++ {
		u(uint64(len(p.Plans(q))))
	}
	u(uint64(p.NumSavings()))
	for _, s := range p.Savings() {
		u(uint64(s.P1))
		u(uint64(s.P2))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// WeightDrift measures how far p's weights have moved from a cached
// snapshot of plan costs and saving values: the L1 distance over all
// weights, relative to the snapshot's L1 mass. 0 means bit-identical
// weights; a recurrence with every weight jittered ±5% lands near 0.05.
// Snapshot lengths must match p (the caller guarantees this via the
// structure key); weights present only on one side would be a structure
// change, not drift.
func WeightDrift(p *mqo.Problem, costs, savings []float64) float64 {
	var num, den float64
	for pl := 0; pl < p.NumPlans(); pl++ {
		num += math.Abs(p.Cost(pl) - costs[pl])
		den += math.Abs(costs[pl])
	}
	for i, s := range p.Savings() {
		num += math.Abs(s.Value - savings[i])
		den += math.Abs(savings[i])
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}
