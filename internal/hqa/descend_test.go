package hqa

import (
	"testing"

	"incranneal/internal/qubo"
)

func TestDescendReachesLocalMinimum(t *testing.T) {
	// f = −x0 − x1 + 3·x0·x1: minima at (1,0) and (0,1), energy −1.
	b := qubo.NewBuilder(2)
	b.AddLinear(0, -1)
	b.AddLinear(1, -1)
	b.AddQuadratic(0, 1, 3)
	m := b.Build()
	st := qubo.NewState(m) // all-zero start
	descend(st)
	if st.Energy() != -1 {
		t.Errorf("descend energy = %v, want −1", st.Energy())
	}
	// No single flip may improve further.
	for v := 0; v < 2; v++ {
		if st.DeltaEnergy(v) < 0 {
			t.Errorf("descend left improving flip at %d", v)
		}
	}
}

func TestDescendIdempotent(t *testing.T) {
	b := qubo.NewBuilder(5)
	for i := 0; i < 5; i++ {
		b.AddLinear(i, float64(i)-2)
	}
	for i := 0; i < 4; i++ {
		b.AddQuadratic(i, i+1, 1.5)
	}
	m := b.Build()
	st := qubo.NewState(m)
	descend(st)
	before := st.Energy()
	descend(st)
	if st.Energy() != before {
		t.Errorf("second descend changed energy: %v → %v", before, st.Energy())
	}
}

func TestSolverDefaults(t *testing.T) {
	s := &Solver{}
	if s.subCapacity() != QPUCapacity {
		t.Errorf("subCapacity = %d, want %d", s.subCapacity(), QPUCapacity)
	}
	if s.noise() != 0.03 {
		t.Errorf("noise = %v, want 0.03", s.noise())
	}
	if s.precisionBits() != 8 {
		t.Errorf("precisionBits = %d, want 8", s.precisionBits())
	}
	if s.qpuSteps() != 400 {
		t.Errorf("qpuSteps = %d, want 400", s.qpuSteps())
	}
}
