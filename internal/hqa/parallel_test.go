package hqa

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/solver"
)

// TestSolveDeterministicAcrossParallelism checks the hybrid restarts'
// worker pool: per-run RNGs derive from the seed before dispatch, so
// multi-run solves are bit-identical for every Parallelism setting.
func TestSolveDeterministicAcrossParallelism(t *testing.T) {
	p := mqo.PaperExample()
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	s := &Solver{DefaultIterations: 6, QPUSteps: 60}
	req := solver.Request{Model: enc.Model, Runs: 4, Seed: 42}
	var ref *solver.Result
	for _, par := range []int{-1, 1, 4, runtime.GOMAXPROCS(0)} {
		r := req
		r.Parallelism = par
		res, err := s.Solve(context.Background(), r)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(res.Samples) != 4 {
			t.Fatalf("parallelism %d: %d samples, want one per run", par, len(res.Samples))
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range res.Samples {
			if res.Samples[i].Energy != ref.Samples[i].Energy ||
				!reflect.DeepEqual(res.Samples[i].Assignment, ref.Samples[i].Assignment) {
				t.Fatalf("parallelism %d: sample %d differs", par, i)
			}
		}
	}
}

// TestSolveDefaultsToSingleRun keeps the service's historical shape: a
// request without Runs yields exactly one workflow and one sample.
func TestSolveDefaultsToSingleRun(t *testing.T) {
	p := mqo.PaperExample()
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	s := &Solver{DefaultIterations: 4, QPUSteps: 40}
	res, err := s.Solve(context.Background(), solver.Request{Model: enc.Model, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 1 {
		t.Fatalf("default run count produced %d samples, want 1", len(res.Samples))
	}
}
