// Package hqa simulates the D-Wave Hybrid Quantum Annealer (HQA) the paper
// benchmarks: a hybrid workflow (D-Wave tech report 14-1039A-B) that
// coordinates optimisation classically and repeatedly queries a quantum
// annealer on limited-size subproblems suggesting search-space regions to
// explore. The simulator reproduces the structure that determines the
// paper's results:
//
//   - a classical orchestration loop maintaining an incumbent assignment
//     and improving it by steepest descent;
//   - iterative extraction of high-impact subproblems no larger than the
//     QPU's effective capacity, solved by a *simulated QPU*: an annealer
//     whose couplings are perturbed by Gaussian control noise and truncated
//     to limited parameter precision, modelling the analog imperfections
//     (Sec. 1, "hardware noise ... solution accuracy quickly degrades");
//   - re-integration of subproblem solutions only when they improve the
//     incumbent; and
//   - a minimum-time-limit model growing with problem size, which is why
//     the paper could not afford HQA runs beyond 500 queries.
package hqa

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"incranneal/internal/obs"
	"incranneal/internal/qubo"
	"incranneal/internal/solver"
)

// QPUCapacity is the effective subproblem size of the simulated quantum
// annealer. Contemporary annealers feature roughly 5,600 qubits; after
// minor-embedding overhead the cliques they can host are far smaller, so
// hybrid solvers query subproblems of at most a few hundred variables.
const QPUCapacity = 256

// Solver simulates the hybrid quantum annealer. The zero value models the
// production service.
type Solver struct {
	// SubCapacity is the maximum subproblem size sent to the simulated
	// QPU; zero means QPUCapacity.
	SubCapacity int
	// Noise is the relative standard deviation of Gaussian control noise
	// applied to each coefficient before a QPU solve; zero means 0.03.
	Noise float64
	// PrecisionBits models the limited digital-to-analog precision of QPU
	// parameters; coefficients are quantised to this many bits relative to
	// the largest magnitude. Zero means 8 bits.
	PrecisionBits int
	// DefaultIterations is the hybrid-loop iteration budget when a request
	// leaves Sweeps zero; zero derives it from problem size.
	DefaultIterations int
	// Seedless QPU subsolves use this many annealing steps; zero means 400.
	QPUSteps int
}

// Name implements solver.Solver.
func (s *Solver) Name() string { return "hqa" }

// Capacity implements solver.Solver. The hybrid service accepts problems up
// to a million variables — effectively unbounded for MQO purposes — because
// the decomposition happens inside the solver.
func (s *Solver) Capacity() int { return 0 }

func (s *Solver) subCapacity() int {
	if s.SubCapacity > 0 {
		return s.SubCapacity
	}
	return QPUCapacity
}

func (s *Solver) noise() float64 {
	if s.Noise > 0 {
		return s.Noise
	}
	return 0.03
}

func (s *Solver) precisionBits() int {
	if s.PrecisionBits > 0 {
		return s.PrecisionBits
	}
	return 8
}

func (s *Solver) qpuSteps() int {
	if s.QPUSteps > 0 {
		return s.QPUSteps
	}
	return 400
}

func (s *Solver) iterations(req solver.Request) int {
	if req.Sweeps > 0 {
		return req.Sweeps
	}
	if s.DefaultIterations > 0 {
		return s.DefaultIterations
	}
	n := req.Model.NumVariables()
	it := n / s.subCapacity() * 4
	if it < 12 {
		it = 12
	}
	if it > 400 {
		it = 400
	}
	return it
}

// MinTimeLimit models the service's minimum optimisation time as a function
// of problem size: a 3 s floor plus a linear component for large problems.
// The paper chooses this minimum per problem; it is the reason HQA
// experiments stop at 500 queries.
func MinTimeLimit(numVariables int) time.Duration {
	base := 3 * time.Second
	if numVariables > 10000 {
		base += time.Duration(numVariables-10000) * time.Millisecond / 2
	}
	return base
}

// Solve implements solver.Solver. Request.Runs > 1 executes that many
// independent hybrid restarts on a bounded worker pool (one sample each);
// zero keeps the service's single-workflow behaviour. Per-run RNGs derive
// from the request seed before dispatch, so Samples are identical for
// every Parallelism setting.
func (s *Solver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	m := req.Model
	if m == nil || m.NumVariables() == 0 {
		return nil, fmt.Errorf("hqa: empty model")
	}
	start := time.Now()
	deadline := time.Time{}
	if req.TimeBudget > 0 {
		deadline = start.Add(req.TimeBudget)
	}
	runs := req.Runs
	if runs <= 0 {
		runs = 1
	}
	iters := s.iterations(req)
	sink := obs.FromContext(ctx)
	label := ""
	if sink.Enabled() {
		label = obs.LabelFromContext(ctx)
	}
	seeds := solver.RunSeeds(req.Seed, runs)
	samples := make([]solver.Sample, runs)
	sweepCounts := make([]int, runs)
	done := make([]bool, runs)
	body := func(run int) {
		if run > 0 && (solver.Interrupted(ctx) || (!deadline.IsZero() && time.Now().After(deadline))) {
			return
		}
		rt := sink.StartRun("hqa", label, run)
		rng := rand.New(rand.NewSource(seeds[run]))
		st := solver.InitialState(req, run, runs, rng)
		sample, sw := s.hybridRun(ctx, m, iters, st, rng, deadline, rt)
		samples[run], sweepCounts[run], done[run] = sample, sw, true
	}
	workers := solver.Workers(req.Parallelism)
	if sink.Enabled() {
		ps := solver.ForEachRunStats(runs, workers, body)
		sink.Pool("hqa", label, ps.Runs, ps.Workers, ps.Busy, ps.Wall)
	} else {
		solver.ForEachRun(runs, workers, body)
	}
	res := &solver.Result{}
	for run := range samples {
		if done[run] {
			res.Samples = append(res.Samples, samples[run])
			res.Sweeps += sweepCounts[run]
		}
	}
	res.SortSamples()
	res.Elapsed = time.Since(start)
	return res, nil
}

// hybridRun executes one classical-orchestration workflow: descend to a
// local minimum, then repeatedly carve out a high-impact subproblem, solve
// it on the simulated QPU and re-integrate improvements. rt records the
// incumbent trajectory (per hybrid iteration) and counts integrated QPU
// suggestions as "flips" out of the iterations proposed.
func (s *Solver) hybridRun(ctx context.Context, m *qubo.Model, iters int, st *qubo.State, rng *rand.Rand, deadline time.Time, rt *obs.RunTrace) (solver.Sample, int) {
	descend(st)
	var best qubo.BestTracker
	best.Observe(st)
	rt.Observe(0, best.Energy())
	sweeps := 0
	var integrated int64
	performedIters := 0
	for it := 0; it < iters; it++ {
		if solver.Interrupted(ctx) || (!deadline.IsZero() && time.Now().After(deadline)) {
			break
		}
		block := s.selectSubproblem(m, st, rng)
		sub := clampedSubModel(m, block, st)
		assignment, performed := s.qpuSolve(sub, rng)
		sweeps += performed
		// Integrate the QPU suggestion when it improves the incumbent.
		before := st.Energy()
		prev := make([]int8, len(block))
		for bi, v := range block {
			prev[bi] = st.Get(v)
			if st.Get(v) != assignment[bi] {
				st.Flip(v)
			}
		}
		descend(st)
		if st.Energy() >= before {
			for bi, v := range block {
				if st.Get(v) != prev[bi] {
					st.Flip(v)
				}
			}
		} else {
			integrated++
		}
		performedIters++
		if best.Observe(st) {
			rt.Observe(sweeps, best.Energy())
		}
	}
	rt.Finish(sweeps, integrated, int64(performedIters))
	return solver.Sample{Assignment: best.Assignment(), Energy: best.Energy()}, sweeps
}

// descend applies classical steepest descent to a local minimum: the
// cheap general-purpose half of the hybrid workflow.
func descend(st *qubo.State) {
	n := st.Model().NumVariables()
	for {
		improved := false
		for v := 0; v < n; v++ {
			if st.DeltaEnergy(v) < 0 {
				st.Flip(v)
				improved = true
			}
		}
		if !improved {
			return
		}
	}
}

// selectSubproblem extracts up to SubCapacity variables around the most
// "frustrated" region of the incumbent: variables whose flip would change
// the energy the least (close to a transition), expanded along the
// interaction graph — the hybrid framework's suggestion of which search
// region to explore next. A random offset varies the region per iteration.
func (s *Solver) selectSubproblem(m *qubo.Model, st *qubo.State, rng *rand.Rand) []int {
	n := m.NumVariables()
	capacity := s.subCapacity()
	if n <= capacity {
		block := make([]int, n)
		for i := range block {
			block[i] = i
		}
		return block
	}
	type scored struct {
		v     int
		score float64
	}
	sc := make([]scored, n)
	for v := 0; v < n; v++ {
		// Lower |ΔE| means the variable sits near a decision boundary;
		// jitter breaks ties and diversifies successive subproblems.
		sc[v] = scored{v: v, score: math.Abs(st.DeltaEnergy(v)) * (0.5 + rng.Float64())}
	}
	sort.Slice(sc, func(i, j int) bool { return sc[i].score < sc[j].score })
	block := make([]int, 0, capacity)
	seen := make(map[int]bool, capacity)
	for _, cand := range sc {
		if len(block) >= capacity {
			break
		}
		if !seen[cand.v] {
			seen[cand.v] = true
			block = append(block, cand.v)
		}
	}
	sort.Ints(block)
	return block
}

// qpuSolve simulates a quantum annealer solve of sub: coefficients are
// perturbed by Gaussian control noise and quantised to limited precision,
// then an anneal runs on the *perturbed* model. The device tracks its best
// state by the energies it can observe — the noisy ones — which is exactly
// how analog imperfections degrade solution accuracy; the caller
// re-evaluates the returned assignment on the true model before adopting it.
func (s *Solver) qpuSolve(sub *qubo.Model, rng *rand.Rand) ([]int8, int) {
	noisy := s.perturb(sub, rng)
	st := qubo.NewRandomState(noisy, rng)
	var best qubo.BestTracker
	best.Observe(st)
	steps := s.qpuSteps()
	hot, cold := noisy.MaxAbsCoefficient(), noisy.MaxAbsCoefficient()/200
	if hot == 0 {
		hot, cold = 1, 0.01
	}
	n := noisy.NumVariables()
	for step := 0; step < steps; step++ {
		temp := hot * math.Pow(cold/hot, float64(step)/float64(steps))
		for v := 0; v < n; v++ {
			delta := st.DeltaEnergy(v)
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				st.Flip(v)
			}
		}
		best.Observe(st)
	}
	return best.Assignment(), steps
}

// perturb applies the noise and precision model to a copy of sub.
func (s *Solver) perturb(sub *qubo.Model, rng *rand.Rand) *qubo.Model {
	scale := sub.MaxAbsCoefficient()
	if scale == 0 {
		return sub
	}
	sigma := s.noise() * scale
	levels := math.Exp2(float64(s.precisionBits() - 1))
	quant := scale / levels
	q := func(c float64) float64 {
		c += rng.NormFloat64() * sigma
		return math.Round(c/quant) * quant
	}
	b := qubo.NewBuilder(sub.NumVariables())
	for i := 0; i < sub.NumVariables(); i++ {
		if c := sub.Linear(i); c != 0 {
			b.AddLinear(i, q(c))
		}
	}
	for _, t := range sub.Terms() {
		b.AddQuadratic(t.I, t.J, q(t.Coeff))
	}
	return b.Build()
}

// clampedSubModel builds the sub-QUBO over block with all other variables
// clamped to their value in st (couplings to clamped-1 variables fold into
// linear terms).
func clampedSubModel(m *qubo.Model, block []int, st *qubo.State) *qubo.Model {
	localOf := make(map[int]int, len(block))
	for li, v := range block {
		localOf[v] = li
	}
	b := qubo.NewBuilder(len(block))
	for li, v := range block {
		b.AddLinear(li, m.Linear(v))
	}
	for _, t := range m.Terms() {
		li, inI := localOf[t.I]
		lj, inJ := localOf[t.J]
		switch {
		case inI && inJ:
			b.AddQuadratic(li, lj, t.Coeff)
		case inI && st.Get(t.J) != 0:
			b.AddLinear(li, t.Coeff)
		case inJ && st.Get(t.I) != 0:
			b.AddLinear(lj, t.Coeff)
		}
	}
	return b.Build()
}
