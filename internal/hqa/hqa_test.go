package hqa

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/qubo"
	"incranneal/internal/solver"
)

func TestSolvesPaperExampleToOptimum(t *testing.T) {
	p := mqo.PaperExample()
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	s := &Solver{}
	res, err := s.Solve(context.Background(), solver.Request{Model: enc.Model, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Best()
	sol, err := enc.Decode(best.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Cost(p); got != 25 {
		t.Errorf("HQA cost on paper example = %v, want 25", got)
	}
}

func TestNoCapacityLimit(t *testing.T) {
	s := &Solver{}
	if got := s.Capacity(); got != 0 {
		t.Errorf("Capacity = %d, want 0 (hybrid decomposes internally)", got)
	}
}

func TestSolveLargerThanQPUSubproblem(t *testing.T) {
	// A 40-variable model on an 8-variable simulated QPU exercises the
	// subproblem extraction loop.
	b := qubo.NewBuilder(40)
	for i := 0; i < 40; i++ {
		b.AddLinear(i, -1)
	}
	for i := 0; i < 39; i++ {
		b.AddQuadratic(i, i+1, 2)
	}
	m := b.Build()
	s := &Solver{SubCapacity: 8}
	res, err := s.Solve(context.Background(), solver.Request{Model: m, Sweeps: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	best, ok := res.Best()
	if !ok {
		t.Fatal("no samples")
	}
	if len(best.Assignment) != 40 {
		t.Fatalf("assignment length = %d, want 40", len(best.Assignment))
	}
	// Optimal is the alternating pattern with energy −20; the hybrid loop
	// with descent must land at or near it.
	if best.Energy > -18 {
		t.Errorf("energy = %v, want ≤ −18", best.Energy)
	}
}

func TestNoiseDegradesDevice(t *testing.T) {
	// The perturbed model must differ from the original for non-trivial
	// noise — otherwise the QPU model is a silent no-op.
	b := qubo.NewBuilder(4)
	b.AddLinear(0, 1)
	b.AddQuadratic(0, 1, -2)
	b.AddQuadratic(2, 3, 3)
	m := b.Build()
	s := &Solver{Noise: 0.2}
	rng := newTestRand(7)
	noisy := s.perturb(m, rng)
	same := math.Abs(noisy.Linear(0)-m.Linear(0)) < 1e-12
	for _, tm := range m.Terms() {
		var got float64
		for _, nt := range noisy.Terms() {
			if nt.I == tm.I && nt.J == tm.J {
				got = nt.Coeff
			}
		}
		if math.Abs(got-tm.Coeff) > 1e-12 {
			same = false
		}
	}
	if same {
		t.Error("perturb changed nothing at 20% noise")
	}
}

func TestPrecisionQuantisesCoefficients(t *testing.T) {
	b := qubo.NewBuilder(2)
	b.AddLinear(0, 1.23456789)
	b.AddQuadratic(0, 1, -0.98765432)
	m := b.Build()
	s := &Solver{Noise: 1e-12, PrecisionBits: 4}
	noisy := s.perturb(m, newTestRand(1))
	// With 4 bits the quantum is max/8; all coefficients must be integer
	// multiples of it.
	quant := m.MaxAbsCoefficient() / 8
	check := func(c float64) {
		ratio := c / quant
		if math.Abs(ratio-math.Round(ratio)) > 1e-6 {
			t.Errorf("coefficient %v is not on the %v grid", c, quant)
		}
	}
	check(noisy.Linear(0))
	for _, tm := range noisy.Terms() {
		check(tm.Coeff)
	}
}

func TestMinTimeLimitGrows(t *testing.T) {
	small := MinTimeLimit(100)
	large := MinTimeLimit(100000)
	if small != 3*time.Second {
		t.Errorf("MinTimeLimit(100) = %v, want 3s", small)
	}
	if large <= small {
		t.Errorf("MinTimeLimit must grow with size: %v vs %v", large, small)
	}
}

func TestSelectSubproblemWithinCapacity(t *testing.T) {
	b := qubo.NewBuilder(100)
	for i := 0; i < 99; i++ {
		b.AddQuadratic(i, i+1, -1)
	}
	m := b.Build()
	s := &Solver{SubCapacity: 16}
	st := qubo.NewRandomState(m, newTestRand(5))
	block := s.selectSubproblem(m, st, newTestRand(6))
	if len(block) != 16 {
		t.Fatalf("subproblem size = %d, want 16", len(block))
	}
	seen := map[int]bool{}
	for _, v := range block {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("bad subproblem block: %v", block)
		}
		seen[v] = true
	}
}

func TestRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := mqo.PaperExample()
	enc, _ := encoding.EncodeMQO(p)
	s := &Solver{}
	res, err := s.Solve(ctx, solver.Request{Model: enc.Model, Sweeps: 1000000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweeps != 0 {
		t.Errorf("performed %d QPU sweeps despite cancelled context", res.Sweeps)
	}
}

// newTestRand returns a seeded *rand.Rand for deterministic tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
