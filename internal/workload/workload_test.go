package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateSweepBasicShape(t *testing.T) {
	inst, err := GenerateSweep(SweepConfig{
		Queries: 30, PPQ: 4, Communities: 3,
		DensityLow: 0.2, DensityHigh: 0.8,
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := inst.Problem
	if p.NumQueries() != 30 || p.NumPlans() != 120 {
		t.Fatalf("shape = %d queries, %d plans", p.NumQueries(), p.NumPlans())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(inst.CommunityOf) != 30 || len(inst.CommunitySizes) != 3 {
		t.Fatalf("community metadata missing")
	}
	totalSize := 0
	for _, s := range inst.CommunitySizes {
		if s == 0 {
			t.Error("empty community")
		}
		totalSize += s
	}
	if totalSize != 30 {
		t.Errorf("community sizes sum to %d, want 30", totalSize)
	}
	for c, d := range inst.CommunityDensity {
		if d < 0.2 || d > 0.8 {
			t.Errorf("community %d density %v outside [0.2, 0.8]", c, d)
		}
	}
}

func TestGenerateSweepRejectsBadConfig(t *testing.T) {
	if _, err := GenerateSweep(SweepConfig{Queries: 0, PPQ: 2}); err == nil {
		t.Error("accepted zero queries")
	}
	if _, err := GenerateSweep(SweepConfig{Queries: 2, PPQ: 2, Communities: 5}); err == nil {
		t.Error("accepted more communities than queries")
	}
	if _, err := GenerateSweep(SweepConfig{Queries: 2, PPQ: 2, DensityLow: 0.9, DensityHigh: 0.1}); err == nil {
		t.Error("accepted inverted density interval")
	}
}

func TestGenerateSweepDeterministic(t *testing.T) {
	cfg := SweepConfig{Queries: 20, PPQ: 3, Communities: 2, DensityLow: 0.1, DensityHigh: 0.5, Seed: 42}
	a, err := GenerateSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Problem.NumSavings() != b.Problem.NumSavings() {
		t.Errorf("same seed produced %d vs %d savings", a.Problem.NumSavings(), b.Problem.NumSavings())
	}
}

func TestGenerateSweepEqualCommunities(t *testing.T) {
	inst, err := GenerateSweep(SweepConfig{
		Queries: 40, PPQ: 3, Communities: 4, EqualCommunities: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range inst.CommunitySizes {
		if s != 10 {
			t.Errorf("equal community %d has size %d, want 10", c, s)
		}
	}
}

func TestSweepDensityMatchesStatistics(t *testing.T) {
	// Within-community measured density should approximate the sampled
	// density; cross-community should approximate 0.05.
	inst, err := GenerateSweep(SweepConfig{
		Queries: 40, PPQ: 4, Communities: 2, EqualCommunities: true,
		DensityLow: 0.6, DensityHigh: 0.6, CrossDensity: 0.05, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := inst.Problem
	var inPairs, inSav, crossPairs, crossSav float64
	perPair := float64(4 * 4)
	for q1 := 0; q1 < p.NumQueries(); q1++ {
		for q2 := q1 + 1; q2 < p.NumQueries(); q2++ {
			if inst.CommunityOf[q1] == inst.CommunityOf[q2] {
				inPairs += perPair
			} else {
				crossPairs += perPair
			}
		}
	}
	for _, s := range p.Savings() {
		q1, q2 := p.QueryOf(s.P1), p.QueryOf(s.P2)
		if inst.CommunityOf[q1] == inst.CommunityOf[q2] {
			inSav++
		} else {
			crossSav++
		}
	}
	if got := inSav / inPairs; math.Abs(got-0.6) > 0.05 {
		t.Errorf("within-community density = %v, want ≈0.6", got)
	}
	if got := crossSav / crossPairs; math.Abs(got-0.05) > 0.02 {
		t.Errorf("cross-community density = %v, want ≈0.05", got)
	}
}

func TestSweepSavingAndCostRangesProperty(t *testing.T) {
	f := func(seed int64) bool {
		inst, err := GenerateSweep(SweepConfig{
			Queries: 15, PPQ: 3, Communities: 2,
			DensityLow: 0.1, DensityHigh: 0.4, Seed: seed,
		})
		if err != nil {
			return false
		}
		p := inst.Problem
		for _, s := range p.Savings() {
			if s.Value < 1 || s.Value > 10 {
				return false
			}
		}
		// Costs are base [1,20] plus a non-negative offset.
		for pl := 0; pl < p.NumPlans(); pl++ {
			if p.Cost(pl) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBinomialStatistics(t *testing.T) {
	rng := newRand(1)
	n, p := 1000, 0.3
	var sum float64
	trials := 200
	for i := 0; i < trials; i++ {
		sum += float64(binomial(rng, n, p))
	}
	mean := sum / float64(trials)
	if math.Abs(mean-300) > 15 {
		t.Errorf("binomial mean = %v, want ≈300", mean)
	}
	if got := binomial(rng, 10, 0); got != 0 {
		t.Errorf("binomial(n, 0) = %d", got)
	}
	if got := binomial(rng, 10, 1); got != 10 {
		t.Errorf("binomial(n, 1) = %d", got)
	}
}

func TestSamplePairsDistinct(t *testing.T) {
	rng := newRand(2)
	for _, k := range []int{1, 5, 50, 99, 120} {
		got := samplePairs(rng, 100, k)
		wantLen := k
		if k > 100 {
			wantLen = 100
		}
		if len(got) != wantLen {
			t.Fatalf("samplePairs(100, %d) returned %d values", k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= 100 || seen[v] {
				t.Fatalf("bad sample %v", got)
			}
			seen[v] = true
		}
	}
}

func TestGenerateBenchStructure(t *testing.T) {
	for name, cat := range Catalogues() {
		inst, err := GenerateBench(BenchConfig{Catalogue: cat, Queries: 40, PPQ: 3, Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := inst.Problem
		if p.NumQueries() != 40 {
			t.Fatalf("%s: queries = %d", name, p.NumQueries())
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Every query needs at least two relations.
		for q, rels := range inst.RelationsOf {
			if len(rels) < 2 {
				t.Errorf("%s: query %d has %d relations", name, q, len(rels))
			}
		}
		// Group shares must roughly match the catalogue.
		counts := make([]int, len(cat.Groups))
		for _, g := range inst.GroupOf {
			counts[g]++
		}
		for g, c := range counts {
			if c == 0 {
				t.Errorf("%s: group %d empty at 40 queries", name, g)
			}
		}
	}
}

func TestConformanceMetric(t *testing.T) {
	cat := TPCH()
	// Identical relation sets → conformance 1.
	if got := conformance(cat, []int{0, 1}, []int{0, 1}); got != 1 {
		t.Errorf("conformance of identical sets = %v, want 1", got)
	}
	// Disjoint sets → 0.
	if got := conformance(cat, []int{0}, []int{1}); got != 0 {
		t.Errorf("conformance of disjoint sets = %v, want 0", got)
	}
	// Partial overlap: lineitem (6001215) shared, orders (1500000) only in
	// one → 6001215 / 7501215.
	want := 6001215.0 / 7501215.0
	if got := conformance(cat, []int{0, 1}, []int{0}); math.Abs(got-want) > 1e-12 {
		t.Errorf("conformance = %v, want %v", got, want)
	}
}

func TestBenchSavingsFollowConformanceCommunities(t *testing.T) {
	// Queries of the same group must share savings far more often than
	// queries of different groups (community structure, Sec. 5.3.2).
	inst, err := GenerateBench(BenchConfig{Catalogue: JOB(), Queries: 60, PPQ: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	p := inst.Problem
	var inPairs, inSav, crossPairs, crossSav float64
	perPair := 9.0
	for q1 := 0; q1 < p.NumQueries(); q1++ {
		for q2 := q1 + 1; q2 < p.NumQueries(); q2++ {
			if inst.GroupOf[q1] == inst.GroupOf[q2] {
				inPairs += perPair
			} else {
				crossPairs += perPair
			}
		}
	}
	for _, s := range p.Savings() {
		q1, q2 := p.QueryOf(s.P1), p.QueryOf(s.P2)
		if inst.GroupOf[q1] == inst.GroupOf[q2] {
			inSav++
		} else {
			crossSav++
		}
	}
	if inPairs == 0 || crossPairs == 0 {
		t.Skip("degenerate grouping")
	}
	if inSav/inPairs <= 2*(crossSav/crossPairs) {
		t.Errorf("no community structure: within %v vs cross %v", inSav/inPairs, crossSav/crossPairs)
	}
}

func TestTPCHGroupSharesMatchPaper(t *testing.T) {
	// The paper reports TPC-H communities of ≈55%, ≈28%, ≈17%.
	cat := TPCH()
	wants := []float64{0.55, 0.28, 0.17}
	for i, g := range cat.Groups {
		if math.Abs(g.Share-wants[i]) > 1e-9 {
			t.Errorf("TPC-H group %d share = %v, want %v", i, g.Share, wants[i])
		}
	}
	var total float64
	for _, g := range cat.Groups {
		total += g.Share
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("TPC-H shares sum to %v", total)
	}
}

func TestGenerateBenchRejectsBadConfig(t *testing.T) {
	if _, err := GenerateBench(BenchConfig{Queries: 5, PPQ: 2}); err == nil {
		t.Error("accepted nil catalogue")
	}
	if _, err := GenerateBench(BenchConfig{Catalogue: TPCH(), Queries: 0, PPQ: 2}); err == nil {
		t.Error("accepted zero queries")
	}
}

// newRand returns a seeded random source for statistics tests.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
