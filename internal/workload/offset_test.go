package workload

import (
	"testing"
)

func TestOffsetGrowsWithExpectedSavings(t *testing.T) {
	// Denser instances must carry larger cost offsets (Sec. 5.2.1: offsets
	// compensate for growing savings so optimal costs stay roughly level).
	sparse, err := GenerateSweep(SweepConfig{
		Queries: 30, PPQ: 4, Communities: 1,
		DensityLow: 0.1, DensityHigh: 0.1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := GenerateSweep(SweepConfig{
		Queries: 30, PPQ: 4, Communities: 1,
		DensityLow: 0.9, DensityHigh: 0.9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds := dense.Problem.TotalPlanCost(); ds <= sparse.Problem.TotalPlanCost()*2 {
		t.Errorf("dense plan costs %v not offset above sparse %v", ds, sparse.Problem.TotalPlanCost())
	}
}

func TestOffsetFactorScales(t *testing.T) {
	base, err := GenerateSweep(SweepConfig{
		Queries: 20, PPQ: 3, Communities: 1,
		DensityLow: 0.5, DensityHigh: 0.5, OffsetFactor: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := GenerateSweep(SweepConfig{
		Queries: 20, PPQ: 3, Communities: 1,
		DensityLow: 0.5, DensityHigh: 0.5, OffsetFactor: 2, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if doubled.Problem.TotalPlanCost() <= base.Problem.TotalPlanCost() {
		t.Errorf("offset factor 2 did not raise costs: %v vs %v",
			doubled.Problem.TotalPlanCost(), base.Problem.TotalPlanCost())
	}
}

func TestGreedyStaysRoughlyLevelAcrossSizes(t *testing.T) {
	// The per-query normalisation goal: mean per-query solution cost for a
	// simple algorithm should stay within a small factor as |Q| grows.
	perQuery := func(queries int) float64 {
		in, err := GenerateSweep(SweepConfig{
			Queries: queries, PPQ: 4, Communities: 4,
			DensityLow: 0.05, DensityHigh: 0.6, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := greedyCost(in)
		return g / float64(queries)
	}
	small, large := perQuery(30), perQuery(120)
	if ratio := large / small; ratio > 4 || ratio < 0.25 {
		t.Errorf("per-query greedy cost drifts too much: %v vs %v", small, large)
	}
}

func greedyCost(in *Instance) float64 {
	p := in.Problem
	var total float64
	selected := make([]int, 0, p.NumQueries())
	for q := 0; q < p.NumQueries(); q++ {
		best, bestCost := -1, 0.0
		for _, pl := range p.Plans(q) {
			if best < 0 || p.Cost(pl) < bestCost {
				best, bestCost = pl, p.Cost(pl)
			}
		}
		selected = append(selected, best)
		total += bestCost
	}
	for _, s := range p.Savings() {
		sel1, sel2 := false, false
		for _, pl := range selected {
			if pl == s.P1 {
				sel1 = true
			}
			if pl == s.P2 {
				sel2 = true
			}
		}
		if sel1 && sel2 {
			total -= s.Value
		}
	}
	return total
}
