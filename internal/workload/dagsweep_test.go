package workload

import (
	"testing"
)

// TestGenerateDAGSweepTopology verifies the structural guarantee the DAG
// scheduler tests rely on: savings exist only within communities and across
// explicitly linked pairs, and the default topology is the two-wave stride.
func TestGenerateDAGSweepTopology(t *testing.T) {
	in, err := GenerateDAGSweep(DAGSweepConfig{
		Queries: 48, PPQ: 3, Communities: 8,
		IntraDensity: 0.4, CrossDensity: 0.2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := [][2]int{{0, 4}, {1, 5}, {2, 6}, {3, 7}}
	if len(in.Pairs) != len(wantPairs) {
		t.Fatalf("default stride pairs = %v, want %v", in.Pairs, wantPairs)
	}
	for i, pr := range wantPairs {
		if in.Pairs[i] != pr {
			t.Fatalf("default stride pairs = %v, want %v", in.Pairs, wantPairs)
		}
	}
	if got := len(in.Communities); got != 8 {
		t.Fatalf("communities = %d, want 8", got)
	}
	communityOf := make([]int, in.Problem.NumQueries())
	total := 0
	for c, qs := range in.Communities {
		if len(qs) != 6 {
			t.Errorf("community %d has %d queries, want 6", c, len(qs))
		}
		for i, q := range qs {
			if i > 0 && qs[i-1] >= q {
				t.Errorf("community %d queries not ascending: %v", c, qs)
			}
			communityOf[q] = c
			total++
		}
	}
	if total != 48 {
		t.Fatalf("communities cover %d queries, want 48", total)
	}
	linked := map[[2]int]bool{}
	for _, pr := range in.Pairs {
		linked[pr] = true
	}
	ppq := 3
	crossLinked := 0
	for _, sv := range in.Problem.Savings() {
		c1, c2 := communityOf[sv.P1/ppq], communityOf[sv.P2/ppq]
		if c1 == c2 {
			continue
		}
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		if !linked[[2]int{c1, c2}] {
			t.Fatalf("saving %v crosses unlinked communities (%d, %d)", sv, c1, c2)
		}
		crossLinked++
	}
	if crossLinked == 0 {
		t.Fatal("no cross-community savings generated; DSS joins would be vacuous")
	}

	// Determinism: same seed, same instance.
	again, err := GenerateDAGSweep(DAGSweepConfig{
		Queries: 48, PPQ: 3, Communities: 8,
		IntraDensity: 0.4, CrossDensity: 0.2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Problem.Savings()) != len(in.Problem.Savings()) {
		t.Fatalf("regeneration changed savings count: %d vs %d", len(again.Problem.Savings()), len(in.Problem.Savings()))
	}

	// Extraction: one sub per community, Discarded covering exactly the
	// cross-community savings of its linked pairs.
	subs, err := in.SubProblems()
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 8 {
		t.Fatalf("extracted %d subs, want 8", len(subs))
	}
	discarded := 0
	for _, sub := range subs {
		discarded += len(sub.Discarded)
	}
	// Every cross saving is discarded by both endpoint subs.
	if discarded != 2*crossLinked {
		t.Fatalf("discarded savings %d, want %d (2x %d cross savings)", discarded, 2*crossLinked, crossLinked)
	}
}

// TestGenerateDAGSweepExplicitPairs pins custom topologies and validation.
func TestGenerateDAGSweepExplicitPairs(t *testing.T) {
	in, err := GenerateDAGSweep(DAGSweepConfig{
		Queries: 12, PPQ: 2, Communities: 3,
		CommunityPairs: [][2]int{{0, 1}, {0, 2}, {1, 2}},
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Pairs) != 3 {
		t.Fatalf("pairs = %v", in.Pairs)
	}
	if _, err := GenerateDAGSweep(DAGSweepConfig{
		Queries: 12, PPQ: 2, Communities: 3,
		CommunityPairs: [][2]int{{2, 1}},
		Seed:           3,
	}); err == nil {
		t.Fatal("inverted pair accepted")
	}
	if _, err := GenerateDAGSweep(DAGSweepConfig{Queries: 2, PPQ: 2, Communities: 3}); err == nil {
		t.Fatal("more communities than queries accepted")
	}
}
