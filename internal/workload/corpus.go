package workload

import "fmt"

// The paper's evaluation corpus comprises 200 problems: a comprehensive
// parameter sweep ("140 distinct MQO problems, with three generated
// instances for each class") plus 60 problems generated from the TPC-H,
// LDBC BI and JOB query-optimisation benchmarks. CorpusSpec enumerates
// that corpus declaratively so it can be regenerated, persisted and
// shrunk proportionally for reduced-scale runs.

// CorpusEntry describes one problem of the corpus: exactly one of Sweep or
// Bench is set.
type CorpusEntry struct {
	// ID is a stable, human-readable identifier (directory-safe).
	ID string
	// Class groups the instances of one parameter combination.
	Class string
	// Sweep is the generator configuration for parameter-sweep entries.
	Sweep *SweepConfig
	// Bench is the generator configuration for benchmark-derived entries.
	Bench *BenchConfig
}

// Generate materialises the entry's problem.
func (e CorpusEntry) Generate() (*Instance, *BenchInstance, error) {
	switch {
	case e.Sweep != nil:
		in, err := GenerateSweep(*e.Sweep)
		return in, nil, err
	case e.Bench != nil:
		in, err := GenerateBench(*e.Bench)
		return nil, in, err
	default:
		return nil, nil, fmt.Errorf("workload: corpus entry %q has no generator", e.ID)
	}
}

// CorpusSpec controls the corpus dimensions; the zero value is invalid,
// use PaperCorpus or ScaledCorpus.
type CorpusSpec struct {
	// QuerySet, PPQSet, StandardPPQ: the sweep axes (Sec. 5.2).
	QuerySet    []int
	PPQSet      []int
	StandardPPQ int
	// CommunitySet for the community experiments.
	CommunitySet []int
	// DensityHighs for the density experiments (intervals [0.05, high]).
	DensityHighs []float64
	// Instances per class.
	Instances int
	// BenchInstances per (benchmark, query-count) class.
	BenchInstances int
	// BaseSeed offsets all generator seeds.
	BaseSeed int64
}

// PaperCorpus returns the full-scale corpus specification matching the
// paper's dimensions.
func PaperCorpus() CorpusSpec {
	return CorpusSpec{
		QuerySet:       []int{250, 500, 750, 1000},
		PPQSet:         []int{20, 30, 40},
		StandardPPQ:    30,
		CommunitySet:   []int{1, 2, 4, 6},
		DensityHighs:   []float64{0.25, 0.5, 0.75, 1.0},
		Instances:      3,
		BenchInstances: 5,
		BaseSeed:       1,
	}
}

// ScaledCorpus shrinks the paper corpus by the given divisor on the query
// axis (PPQ shrinks to a third), preserving class structure and counts.
func ScaledCorpus(queryDivisor int) CorpusSpec {
	if queryDivisor < 1 {
		queryDivisor = 1
	}
	s := PaperCorpus()
	for i, q := range s.QuerySet {
		s.QuerySet[i] = q / queryDivisor
		if s.QuerySet[i] < 8 {
			s.QuerySet[i] = 8
		}
	}
	for i, p := range s.PPQSet {
		s.PPQSet[i] = p / 3
	}
	s.StandardPPQ /= 3
	return s
}

// Entries enumerates the corpus:
//
//   - the scalability grid (queries × PPQ, 4 varying communities,
//     densities [0.05, 1]) — Fig. 3;
//   - the community grid (communities × {equal, varying} sizes at the
//     standard PPQ) — Fig. 4;
//   - the density grid (intervals [0.05, high] at the standard PPQ) —
//     Fig. 5;
//   - the benchmark scenarios (TPC-H, LDBC, JOB × query counts) — Fig. 6.
//
// With the paper's dimensions this yields 4·3 + 4·4·2 + 4·4 = 60 sweep
// classes × 3 instances = 180 sweep problems before de-duplication of the
// overlapping Fig. 3/Fig. 5 classes, and 3·4·5 = 60 benchmark problems.
func (s CorpusSpec) Entries() []CorpusEntry {
	var entries []CorpusEntry
	add := func(class string, inst int, cfg SweepConfig) {
		cfg.Seed = s.BaseSeed + classSeed64(class, inst)
		c := cfg
		entries = append(entries, CorpusEntry{
			ID:    fmt.Sprintf("%s-i%d", class, inst),
			Class: class,
			Sweep: &c,
		})
	}
	// Scalability grid (Fig. 3).
	for _, ppq := range s.PPQSet {
		for _, q := range s.QuerySet {
			class := fmt.Sprintf("scale-q%d-ppq%d", q, ppq)
			for i := 0; i < s.Instances; i++ {
				add(class, i, SweepConfig{
					Queries: q, PPQ: ppq, Communities: 4,
					DensityLow: 0.05, DensityHigh: 1.0,
				})
			}
		}
	}
	// Community grid (Fig. 4).
	for _, equal := range []bool{false, true} {
		label := "varying"
		if equal {
			label = "equal"
		}
		for _, comm := range s.CommunitySet {
			for _, q := range s.QuerySet {
				class := fmt.Sprintf("comm-%s-c%d-q%d", label, comm, q)
				for i := 0; i < s.Instances; i++ {
					add(class, i, SweepConfig{
						Queries: q, PPQ: s.StandardPPQ, Communities: comm,
						EqualCommunities: equal,
						DensityLow:       0.05, DensityHigh: 1.0,
					})
				}
			}
		}
	}
	// Density grid (Fig. 5).
	for _, high := range s.DensityHighs {
		for _, q := range s.QuerySet {
			class := fmt.Sprintf("dens-%.2f-q%d", high, q)
			for i := 0; i < s.Instances; i++ {
				add(class, i, SweepConfig{
					Queries: q, PPQ: s.StandardPPQ, Communities: 4,
					DensityLow: 0.05, DensityHigh: high,
				})
			}
		}
	}
	// Benchmark scenarios (Fig. 6).
	for _, bm := range []string{"tpch", "ldbc", "job"} {
		cat := Catalogues()[bm]
		for _, q := range s.QuerySet {
			class := fmt.Sprintf("bench-%s-q%d", bm, q)
			for i := 0; i < s.BenchInstances; i++ {
				cfg := BenchConfig{
					Catalogue: cat, Queries: q, PPQ: s.StandardPPQ,
					Seed: s.BaseSeed + classSeed64(class, i),
				}
				entries = append(entries, CorpusEntry{
					ID:    fmt.Sprintf("%s-i%d", class, i),
					Class: class,
					Bench: &cfg,
				})
			}
		}
	}
	return entries
}

// classSeed64 hashes a class label and instance index into a seed.
func classSeed64(class string, inst int) int64 {
	h := int64(1469598103934665603)
	for _, c := range class {
		h ^= int64(c)
		h *= 1099511628211
	}
	h ^= int64(inst) * 97
	if h < 0 {
		h = -h
	}
	return h
}
