package workload

// The catalogues below carry the statistics the extrapolation procedure of
// Sec. 5.3.1 needs from each query-optimisation benchmark: base-relation
// cardinalities, the relative frequency with which the benchmark's original
// queries reference each relation, and the community structure of the
// resulting conformance graphs that the paper reports (JOB ≈ two roughly
// equal communities, LDBC BI ≈ four equal ones, TPC-H ≈ one large (~55%),
// one moderate (~28%) and one small (~17%) community). The benchmarks'
// data and query sets themselves are not redistributable here; these
// statistical stand-ins drive the same generator the paper describes.

// TPCH returns the TPC-H catalogue (SF1 cardinalities; frequencies from
// the 22 official queries).
func TPCH() *Catalogue {
	return &Catalogue{
		Benchmark: "tpch",
		Relations: []Relation{
			{Name: "lineitem", Cardinality: 6001215, Frequency: 0.82}, // 0
			{Name: "orders", Cardinality: 1500000, Frequency: 0.55},   // 1
			{Name: "customer", Cardinality: 150000, Frequency: 0.36},  // 2
			{Name: "part", Cardinality: 200000, Frequency: 0.32},      // 3
			{Name: "partsupp", Cardinality: 800000, Frequency: 0.18},  // 4
			{Name: "supplier", Cardinality: 10000, Frequency: 0.36},   // 5
			{Name: "nation", Cardinality: 25, Frequency: 0.41},        // 6
			{Name: "region", Cardinality: 5, Frequency: 0.14},         // 7
		},
		Groups: []TemplateGroup{
			{Name: "order-analytics", Share: 0.55, Relations: []int{0, 1, 2, 6, 7}},
			{Name: "part-supply", Share: 0.28, Relations: []int{0, 3, 4, 5, 6}},
			{Name: "customer-market", Share: 0.17, Relations: []int{1, 2, 5, 6, 7}},
		},
	}
}

// JOB returns the join order benchmark catalogue (IMDB cardinalities;
// frequencies from the 113 JOB queries).
func JOB() *Catalogue {
	return &Catalogue{
		Benchmark: "job",
		Relations: []Relation{
			{Name: "title", Cardinality: 2528312, Frequency: 1.00},          // 0
			{Name: "cast_info", Cardinality: 36244344, Frequency: 0.55},     // 1
			{Name: "name", Cardinality: 4167491, Frequency: 0.45},           // 2
			{Name: "char_name", Cardinality: 3140339, Frequency: 0.25},      // 3
			{Name: "role_type", Cardinality: 12, Frequency: 0.30},           // 4
			{Name: "aka_name", Cardinality: 901343, Frequency: 0.15},        // 5
			{Name: "person_info", Cardinality: 2963664, Frequency: 0.12},    // 6
			{Name: "movie_companies", Cardinality: 2609129, Frequency: 0.6}, // 7
			{Name: "company_name", Cardinality: 234997, Frequency: 0.6},     // 8
			{Name: "company_type", Cardinality: 4, Frequency: 0.35},         // 9
			{Name: "movie_info", Cardinality: 14835720, Frequency: 0.55},    // 10
			{Name: "info_type", Cardinality: 113, Frequency: 0.55},          // 11
			{Name: "movie_keyword", Cardinality: 4523930, Frequency: 0.5},   // 12
			{Name: "keyword", Cardinality: 134170, Frequency: 0.5},          // 13
			{Name: "movie_info_idx", Cardinality: 1380035, Frequency: 0.3},  // 14
			{Name: "kind_type", Cardinality: 7, Frequency: 0.2},             // 15
		},
		Groups: []TemplateGroup{
			{Name: "cast-person", Share: 0.5, Relations: []int{0, 1, 2, 3, 4, 5, 6, 15}},
			{Name: "production-content", Share: 0.5, Relations: []int{0, 7, 8, 9, 10, 11, 12, 13, 14}},
		},
	}
}

// LDBC returns the LDBC Social Network Benchmark BI catalogue (SF1
// cardinalities; frequencies from the BI workload's read queries).
func LDBC() *Catalogue {
	return &Catalogue{
		Benchmark: "ldbc",
		Relations: []Relation{
			{Name: "person", Cardinality: 10995, Frequency: 0.85},         // 0
			{Name: "knows", Cardinality: 180623, Frequency: 0.45},         // 1
			{Name: "post", Cardinality: 1121816, Frequency: 0.60},         // 2
			{Name: "comment", Cardinality: 2172969, Frequency: 0.60},      // 3
			{Name: "forum", Cardinality: 99750, Frequency: 0.35},          // 4
			{Name: "forum_member", Cardinality: 1611869, Frequency: 0.30}, // 5
			{Name: "tag", Cardinality: 16080, Frequency: 0.55},            // 6
			{Name: "tagclass", Cardinality: 71, Frequency: 0.25},          // 7
			{Name: "likes", Cardinality: 2190095, Frequency: 0.25},        // 8
			{Name: "organisation", Cardinality: 7955, Frequency: 0.20},    // 9
			{Name: "place", Cardinality: 1460, Frequency: 0.40},           // 10
			{Name: "message_tag", Cardinality: 3902543, Frequency: 0.35},  // 11
		},
		Groups: []TemplateGroup{
			{Name: "message-content", Share: 0.25, Relations: []int{2, 3, 6, 7, 11}},
			{Name: "social-graph", Share: 0.25, Relations: []int{0, 1, 9, 10}},
			{Name: "forum-activity", Share: 0.25, Relations: []int{0, 2, 4, 5}},
			{Name: "engagement", Share: 0.25, Relations: []int{0, 3, 6, 8, 11}},
		},
	}
}

// Catalogues returns all built-in benchmark catalogues keyed by name.
func Catalogues() map[string]*Catalogue {
	return map[string]*Catalogue{
		"tpch": TPCH(),
		"job":  JOB(),
		"ldbc": LDBC(),
	}
}
