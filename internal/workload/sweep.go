// Package workload generates the MQO problem instances of the paper's
// empirical analysis: the comprehensive parameter sweep of Sec. 5.2
// (queries × plans-per-query × community structure × savings densities) and
// the scenarios extrapolated from conventional query-optimisation
// benchmarks of Sec. 5.3 (TPC-H, LDBC BI, JOB).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"incranneal/internal/mqo"
)

// SweepConfig parameterises the sweep generator (Sec. 5.2.1).
type SweepConfig struct {
	// Queries is |Q|; PPQ the number of alternative plans per query.
	Queries, PPQ int
	// Communities is the number of query communities the queries are
	// randomly distributed into; one community means a uniform instance.
	Communities int
	// EqualCommunities distributes queries evenly; otherwise community
	// sizes vary randomly (the realistic case per the paper).
	EqualCommunities bool
	// DensityLow/High delimit the interval each community's cost-savings
	// density is sampled from (the paper's largest interval is
	// [0.05, 1.0]).
	DensityLow, DensityHigh float64
	// CrossDensity is the savings density between plans of queries in
	// different communities; zero means the paper's 0.05.
	CrossDensity float64
	// SavingLow/High delimit the uniform saving magnitude range; zeros
	// mean the paper's [1, 10].
	SavingLow, SavingHigh float64
	// CostLow/High delimit the uniform base plan cost range; zeros mean
	// the paper's [1, 20].
	CostLow, CostHigh float64
	// OffsetFactor scales the cost offset added per plan to compensate for
	// growing savings magnitudes so that absolute optimal costs stay
	// roughly constant across problem dimensions (Sec. 5.2.1); zero means
	// 1. The paper notes the relative algorithm ranking is invariant to
	// this choice.
	OffsetFactor float64
	// Seed drives all sampling.
	Seed int64
}

func (c SweepConfig) withDefaults() (SweepConfig, error) {
	if c.Queries <= 0 || c.PPQ <= 0 {
		return c, fmt.Errorf("workload: queries and PPQ must be positive (got %d, %d)", c.Queries, c.PPQ)
	}
	if c.Communities <= 0 {
		c.Communities = 1
	}
	if c.Communities > c.Queries {
		return c, fmt.Errorf("workload: %d communities for %d queries", c.Communities, c.Queries)
	}
	if c.DensityLow <= 0 && c.DensityHigh <= 0 {
		c.DensityLow, c.DensityHigh = 0.05, 1.0
	}
	if c.DensityHigh < c.DensityLow || c.DensityLow < 0 || c.DensityHigh > 1 {
		return c, fmt.Errorf("workload: invalid density interval [%v, %v]", c.DensityLow, c.DensityHigh)
	}
	if c.CrossDensity <= 0 {
		c.CrossDensity = 0.05
	}
	if c.SavingLow <= 0 && c.SavingHigh <= 0 {
		c.SavingLow, c.SavingHigh = 1, 10
	}
	if c.CostLow <= 0 && c.CostHigh <= 0 {
		c.CostLow, c.CostHigh = 1, 20
	}
	if c.OffsetFactor <= 0 {
		c.OffsetFactor = 1
	}
	return c, nil
}

// Instance couples a generated problem with the ground-truth structure the
// generator embedded, for analysis and tests.
type Instance struct {
	Problem *mqo.Problem
	// CommunityOf[q] is the community index of query q.
	CommunityOf []int
	// CommunityDensity[c] is the sampled savings density of community c.
	CommunityDensity []float64
	// CommunitySizes[c] is the number of queries in community c.
	CommunitySizes []int
}

// GenerateSweep produces one parameter-sweep instance.
//
// Queries are randomly distributed into communities; plans of query pairs
// within community c share a saving with probability CommunityDensity[c]
// (sampled once per community from the configured interval), across
// communities with probability CrossDensity. Saving values are uniform in
// [SavingLow, SavingHigh]; plan costs are uniform in [CostLow, CostHigh]
// plus a per-query offset proportional to the query's expected realised
// savings, keeping optimal costs roughly level as dimensions grow.
func GenerateSweep(cfg SweepConfig) (*Instance, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	communityOf, sizes := assignCommunities(cfg, rng)
	density := make([]float64, cfg.Communities)
	for c := range density {
		density[c] = cfg.DensityLow + rng.Float64()*(cfg.DensityHigh-cfg.DensityLow)
	}
	meanSaving := (cfg.SavingLow + cfg.SavingHigh) / 2
	// expectedSavings[q] = Σ_{q'≠q} d(q,q')·PPQ·E[s]: the expected saving
	// mass between one plan of q and all plans of other queries; half of
	// the per-pair mass funds each endpoint's offset.
	expectedSavings := make([]float64, cfg.Queries)
	for q := 0; q < cfg.Queries; q++ {
		for c := 0; c < cfg.Communities; c++ {
			n := float64(sizes[c])
			d := cfg.CrossDensity
			if c == communityOf[q] {
				n--
				d = density[c]
			}
			expectedSavings[q] += n * d * float64(cfg.PPQ) * meanSaving
		}
	}
	planCosts := make([][]float64, cfg.Queries)
	for q := range planCosts {
		offset := cfg.OffsetFactor * expectedSavings[q] / 2
		costs := make([]float64, cfg.PPQ)
		for i := range costs {
			costs[i] = cfg.CostLow + rng.Float64()*(cfg.CostHigh-cfg.CostLow) + offset
		}
		planCosts[q] = costs
	}
	savings := sampleSavings(cfg, communityOf, density, rng)
	p, err := mqo.NewProblem(planCosts, savings)
	if err != nil {
		return nil, err
	}
	p.Name = fmt.Sprintf("sweep-q%d-ppq%d-c%d-d[%.2f,%.2f]-s%d", cfg.Queries, cfg.PPQ, cfg.Communities, cfg.DensityLow, cfg.DensityHigh, cfg.Seed)
	return &Instance{Problem: p, CommunityOf: communityOf, CommunityDensity: density, CommunitySizes: sizes}, nil
}

// assignCommunities distributes queries into communities, either evenly or
// with random proportions, guaranteeing every community at least one query.
func assignCommunities(cfg SweepConfig, rng *rand.Rand) ([]int, []int) {
	communityOf := make([]int, cfg.Queries)
	sizes := make([]int, cfg.Communities)
	if cfg.Communities == 1 {
		sizes[0] = cfg.Queries
		return communityOf, sizes
	}
	if cfg.EqualCommunities {
		perm := rng.Perm(cfg.Queries)
		for i, q := range perm {
			c := i % cfg.Communities
			communityOf[q] = c
			sizes[c]++
		}
		return communityOf, sizes
	}
	// Varying sizes: random proportions with a floor, then random
	// assignment by cumulative weight.
	weights := make([]float64, cfg.Communities)
	var total float64
	for c := range weights {
		weights[c] = 0.2 + rng.Float64() // floor keeps every community viable
		total += weights[c]
	}
	perm := rng.Perm(cfg.Queries)
	// Seed every community with one query, distribute the rest by weight.
	for c := 0; c < cfg.Communities; c++ {
		communityOf[perm[c]] = c
		sizes[c]++
	}
	for _, q := range perm[cfg.Communities:] {
		r := rng.Float64() * total
		acc := 0.0
		chosen := cfg.Communities - 1
		for c, w := range weights {
			acc += w
			if r < acc {
				chosen = c
				break
			}
		}
		communityOf[q] = chosen
		sizes[chosen]++
	}
	return communityOf, sizes
}

// sampleSavings draws the savings edge set: for each query pair the
// applicable density selects, per plan pair, whether a saving exists.
// Pair counts are sampled binomially and the pairs drawn without
// replacement, so large dense communities generate in O(#savings) rather
// than O(#possible pairs).
func sampleSavings(cfg SweepConfig, communityOf []int, density []float64, rng *rand.Rand) []mqo.Saving {
	var savings []mqo.Saving
	ppq := cfg.PPQ
	pairTotal := ppq * ppq
	for q1 := 0; q1 < cfg.Queries; q1++ {
		for q2 := q1 + 1; q2 < cfg.Queries; q2++ {
			d := cfg.CrossDensity
			if communityOf[q1] == communityOf[q2] {
				d = density[communityOf[q1]]
			}
			k := binomial(rng, pairTotal, d)
			if k == 0 {
				continue
			}
			for _, idx := range samplePairs(rng, pairTotal, k) {
				i, j := idx/ppq, idx%ppq
				savings = append(savings, mqo.Saving{
					P1:    q1*ppq + i,
					P2:    q2*ppq + j,
					Value: cfg.SavingLow + rng.Float64()*(cfg.SavingHigh-cfg.SavingLow),
				})
			}
		}
	}
	return savings
}

// binomial samples Binomial(n, p) — exactly for small n, via the normal
// approximation for large n where exact sampling would dominate runtime.
func binomial(rng *rand.Rand, n int, p float64) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	variance := mean * (1 - p)
	k := int(mean + rng.NormFloat64()*math.Sqrt(variance) + 0.5)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// samplePairs draws k distinct integers from [0, n) — by shuffling for
// dense draws, by rejection for sparse ones.
func samplePairs(rng *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if k > n/4 {
		perm := rng.Perm(n)
		return perm[:k]
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := rng.Intn(n)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
