package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"incranneal/internal/mqo"
)

// Relation is a base relation of a query-optimisation benchmark: its
// cardinality and the relative frequency with which the benchmark's
// original queries reference it. The extrapolation procedure of Sec. 5.3.1
// rests on exactly these two statistics.
type Relation struct {
	Name        string
	Cardinality int64
	// Frequency is the fraction of original benchmark queries featuring
	// the relation; a generated query includes the relation with this
	// probability.
	Frequency float64
}

// TemplateGroup models the community structure of a benchmark's query set:
// a subset of relations that a share of the original queries draws from.
// The paper observes JOB scenarios feature two roughly equal communities,
// LDBC four equal ones, and TPC-H a 55/28/17% split; groups reproduce those
// conformance-graph shapes.
type TemplateGroup struct {
	Name string
	// Share is the fraction of generated queries drawn from this group.
	Share float64
	// Relations indexes into the catalogue's relation list.
	Relations []int
}

// Catalogue bundles a benchmark's relation statistics.
type Catalogue struct {
	Benchmark string
	Relations []Relation
	Groups    []TemplateGroup
}

// BenchConfig parameterises the benchmark-derived generator.
type BenchConfig struct {
	Catalogue *Catalogue
	// Queries and PPQ as in the sweep generator.
	Queries, PPQ int
	// SavingLow/High and CostLow/High as in the sweep generator (zeros
	// mean [1,10] and [1,20]).
	SavingLow, SavingHigh float64
	CostLow, CostHigh     float64
	// OffsetFactor as in the sweep generator; zero means 1.
	OffsetFactor float64
	Seed         int64
}

// BenchInstance couples the generated problem with its conformance
// structure.
type BenchInstance struct {
	Problem *mqo.Problem
	// RelationsOf[q] lists the catalogue relation indices of generated
	// query q.
	RelationsOf [][]int
	// GroupOf[q] is the template group each query was drawn from — the
	// community ground truth.
	GroupOf []int
	// Conformance[q1][q2] is the overlap metric c_{q1,q2} of Sec. 5.3.1.
	Conformance [][]float64
}

// GenerateBench extrapolates an MQO scenario from a benchmark catalogue
// following Sec. 5.3.1: each generated query samples relations from its
// template group in proportion to their benchmark frequencies; the
// conformance of a query pair is the accumulated cardinality of their
// overlapping relations over the accumulated cardinality of all relations
// of either query; and a saving is assigned between a pair of their plans
// with probability equal to that conformance. Remaining parameters match
// the sweep generator.
func GenerateBench(cfg BenchConfig) (*BenchInstance, error) {
	if cfg.Catalogue == nil {
		return nil, fmt.Errorf("workload: nil catalogue")
	}
	if cfg.Queries <= 0 || cfg.PPQ <= 0 {
		return nil, fmt.Errorf("workload: queries and PPQ must be positive (got %d, %d)", cfg.Queries, cfg.PPQ)
	}
	if cfg.SavingLow <= 0 && cfg.SavingHigh <= 0 {
		cfg.SavingLow, cfg.SavingHigh = 1, 10
	}
	if cfg.CostLow <= 0 && cfg.CostHigh <= 0 {
		cfg.CostLow, cfg.CostHigh = 1, 20
	}
	if cfg.OffsetFactor <= 0 {
		cfg.OffsetFactor = 1
	}
	cat := cfg.Catalogue
	rng := rand.New(rand.NewSource(cfg.Seed))

	inst := &BenchInstance{
		RelationsOf: make([][]int, cfg.Queries),
		GroupOf:     make([]int, cfg.Queries),
	}
	for q := 0; q < cfg.Queries; q++ {
		g := sampleGroup(cat.Groups, rng)
		inst.GroupOf[q] = g
		inst.RelationsOf[q] = sampleRelations(cat, g, rng)
	}
	// Conformance c_{q1,q2} = Card_overlap / Card_total (Sec. 5.3.1).
	inst.Conformance = make([][]float64, cfg.Queries)
	for q := range inst.Conformance {
		inst.Conformance[q] = make([]float64, cfg.Queries)
	}
	for q1 := 0; q1 < cfg.Queries; q1++ {
		for q2 := q1 + 1; q2 < cfg.Queries; q2++ {
			c := conformance(cat, inst.RelationsOf[q1], inst.RelationsOf[q2])
			inst.Conformance[q1][q2] = c
			inst.Conformance[q2][q1] = c
		}
	}
	meanSaving := (cfg.SavingLow + cfg.SavingHigh) / 2
	planCosts := make([][]float64, cfg.Queries)
	for q := range planCosts {
		var expected float64
		for q2 := 0; q2 < cfg.Queries; q2++ {
			if q2 != q {
				expected += inst.Conformance[q][q2] * float64(cfg.PPQ) * meanSaving
			}
		}
		offset := cfg.OffsetFactor * expected / 2
		costs := make([]float64, cfg.PPQ)
		for i := range costs {
			costs[i] = cfg.CostLow + rng.Float64()*(cfg.CostHigh-cfg.CostLow) + offset
		}
		planCosts[q] = costs
	}
	var savings []mqo.Saving
	pairTotal := cfg.PPQ * cfg.PPQ
	for q1 := 0; q1 < cfg.Queries; q1++ {
		for q2 := q1 + 1; q2 < cfg.Queries; q2++ {
			d := inst.Conformance[q1][q2]
			k := binomial(rng, pairTotal, d)
			if k == 0 {
				continue
			}
			for _, idx := range samplePairs(rng, pairTotal, k) {
				i, j := idx/cfg.PPQ, idx%cfg.PPQ
				savings = append(savings, mqo.Saving{
					P1:    q1*cfg.PPQ + i,
					P2:    q2*cfg.PPQ + j,
					Value: cfg.SavingLow + rng.Float64()*(cfg.SavingHigh-cfg.SavingLow),
				})
			}
		}
	}
	p, err := mqo.NewProblem(planCosts, savings)
	if err != nil {
		return nil, err
	}
	p.Name = fmt.Sprintf("%s-q%d-ppq%d-s%d", cat.Benchmark, cfg.Queries, cfg.PPQ, cfg.Seed)
	inst.Problem = p
	return inst, nil
}

func sampleGroup(groups []TemplateGroup, rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for i, g := range groups {
		acc += g.Share
		if r < acc {
			return i
		}
	}
	return len(groups) - 1
}

// sampleRelations draws the relation set of one generated query: every
// relation of the query's template group is included with its benchmark
// frequency; at least two relations are guaranteed (falling back to the
// group's most frequent) so every query joins something.
func sampleRelations(cat *Catalogue, group int, rng *rand.Rand) []int {
	g := cat.Groups[group]
	var rels []int
	for _, ri := range g.Relations {
		if rng.Float64() < cat.Relations[ri].Frequency {
			rels = append(rels, ri)
		}
	}
	if len(rels) < 2 {
		byFreq := append([]int(nil), g.Relations...)
		sort.Slice(byFreq, func(a, b int) bool {
			return cat.Relations[byFreq[a]].Frequency > cat.Relations[byFreq[b]].Frequency
		})
		for _, ri := range byFreq {
			if len(rels) >= 2 {
				break
			}
			if !contains(rels, ri) {
				rels = append(rels, ri)
			}
		}
	}
	sort.Ints(rels)
	return rels
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// conformance computes Card_overlap/Card_total for two relation sets
// (sorted index slices).
func conformance(cat *Catalogue, r1, r2 []int) float64 {
	var overlap, total int64
	i, j := 0, 0
	for i < len(r1) && j < len(r2) {
		switch {
		case r1[i] == r2[j]:
			overlap += cat.Relations[r1[i]].Cardinality
			total += cat.Relations[r1[i]].Cardinality
			i++
			j++
		case r1[i] < r2[j]:
			total += cat.Relations[r1[i]].Cardinality
			i++
		default:
			total += cat.Relations[r2[j]].Cardinality
			j++
		}
	}
	for ; i < len(r1); i++ {
		total += cat.Relations[r1[i]].Cardinality
	}
	for ; j < len(r2); j++ {
		total += cat.Relations[r2[j]].Cardinality
	}
	if total == 0 {
		return 0
	}
	return float64(overlap) / float64(total)
}
