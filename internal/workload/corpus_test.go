package workload

import (
	"strings"
	"testing"
)

func TestPaperCorpusCounts(t *testing.T) {
	entries := PaperCorpus().Entries()
	var sweep, bench int
	classes := map[string]int{}
	ids := map[string]bool{}
	for _, e := range entries {
		if ids[e.ID] {
			t.Fatalf("duplicate corpus ID %q", e.ID)
		}
		ids[e.ID] = true
		classes[e.Class]++
		switch {
		case e.Sweep != nil:
			sweep++
		case e.Bench != nil:
			bench++
		default:
			t.Fatalf("entry %q has no generator", e.ID)
		}
	}
	// 12 scalability + 32 community + 16 density classes × 3 instances.
	if sweep != 60*3 {
		t.Errorf("sweep problems = %d, want 180", sweep)
	}
	// 3 benchmarks × 4 query counts × 5 instances (the paper's 60).
	if bench != 60 {
		t.Errorf("benchmark problems = %d, want 60", bench)
	}
	for class, n := range classes {
		want := 3
		if strings.HasPrefix(class, "bench-") {
			want = 5
		}
		if n != want {
			t.Errorf("class %q has %d instances, want %d", class, n, want)
		}
	}
}

func TestCorpusEntriesGenerate(t *testing.T) {
	// Generating a scaled-down corpus entry of each kind must succeed and
	// match the declared dimensions.
	spec := ScaledCorpus(16)
	entries := spec.Entries()
	var didSweep, didBench bool
	for _, e := range entries {
		if didSweep && didBench {
			break
		}
		if e.Sweep != nil && !didSweep {
			in, _, err := e.Generate()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if in.Problem.NumQueries() != e.Sweep.Queries {
				t.Errorf("%s: %d queries, want %d", e.ID, in.Problem.NumQueries(), e.Sweep.Queries)
			}
			didSweep = true
		}
		if e.Bench != nil && !didBench {
			_, in, err := e.Generate()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if in.Problem.NumQueries() != e.Bench.Queries {
				t.Errorf("%s: %d queries, want %d", e.ID, in.Problem.NumQueries(), e.Bench.Queries)
			}
			didBench = true
		}
	}
	if !didSweep || !didBench {
		t.Fatal("corpus missing sweep or benchmark entries")
	}
}

func TestCorpusSeedsAreStable(t *testing.T) {
	a := PaperCorpus().Entries()
	b := PaperCorpus().Entries()
	if len(a) != len(b) {
		t.Fatal("corpus size unstable")
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("corpus order unstable at %d: %s vs %s", i, a[i].ID, b[i].ID)
		}
		switch {
		case a[i].Sweep != nil:
			if a[i].Sweep.Seed != b[i].Sweep.Seed {
				t.Fatalf("%s: sweep seed unstable", a[i].ID)
			}
		case a[i].Bench != nil:
			if a[i].Bench.Seed != b[i].Bench.Seed {
				t.Fatalf("%s: bench seed unstable", a[i].ID)
			}
		}
	}
}

func TestScaledCorpusShrinks(t *testing.T) {
	s := ScaledCorpus(8)
	for i, q := range s.QuerySet {
		if q >= PaperCorpus().QuerySet[i] {
			t.Errorf("scaled query count %d not smaller than paper's %d", q, PaperCorpus().QuerySet[i])
		}
		if q < 8 {
			t.Errorf("scaled query count %d below floor", q)
		}
	}
	if s.StandardPPQ != 10 {
		t.Errorf("scaled standard PPQ = %d, want 10", s.StandardPPQ)
	}
}
