package workload

import (
	"fmt"
	"math/rand"

	"incranneal/internal/mqo"
)

// DAGSweepConfig parameterises GenerateDAGSweep: a sweep-style instance
// whose cross-community savings follow an explicit community topology
// instead of the uniform CrossDensity of GenerateSweep (which links every
// community pair and therefore yields a complete DSS dependency graph once
// partitioned). Extracting one sub-problem per community turns the
// community graph directly into the incremental scheduler's dependency DAG.
type DAGSweepConfig struct {
	// Queries is |Q|, split over Communities in contiguous, near-equal
	// blocks; PPQ the number of alternative plans per query.
	Queries, PPQ, Communities int
	// IntraDensity is the savings density between plans of queries within
	// one community; zero means 0.3.
	IntraDensity float64
	// CrossDensity is the savings density between plans of queries in
	// *linked* communities; unlinked pairs share no savings at all. Zero
	// means the paper's 0.05.
	CrossDensity float64
	// CommunityPairs lists the linked community pairs (a, b) with a < b.
	// Nil means the stride topology {(i, i+C/2) : i < C/2} — C/2 disjoint
	// dependencies, so the resulting DAG has two waves of width C/2, the
	// maximally concurrent schedule that still exercises DSS joins.
	CommunityPairs [][2]int
	// SavingLow/High and CostLow/High delimit the uniform saving and base
	// plan cost ranges; zeros mean the paper's [1, 10] and [1, 20].
	SavingLow, SavingHigh float64
	CostLow, CostHigh     float64
	// Seed drives all sampling.
	Seed int64
}

func (c DAGSweepConfig) withDefaults() (DAGSweepConfig, error) {
	if c.Queries <= 0 || c.PPQ <= 0 {
		return c, fmt.Errorf("workload: queries and PPQ must be positive (got %d, %d)", c.Queries, c.PPQ)
	}
	if c.Communities <= 0 {
		c.Communities = 1
	}
	if c.Communities > c.Queries {
		return c, fmt.Errorf("workload: %d communities for %d queries", c.Communities, c.Queries)
	}
	if c.IntraDensity <= 0 {
		c.IntraDensity = 0.3
	}
	if c.CrossDensity <= 0 {
		c.CrossDensity = 0.05
	}
	if c.IntraDensity > 1 || c.CrossDensity > 1 {
		return c, fmt.Errorf("workload: invalid densities intra=%v cross=%v", c.IntraDensity, c.CrossDensity)
	}
	if c.SavingLow <= 0 && c.SavingHigh <= 0 {
		c.SavingLow, c.SavingHigh = 1, 10
	}
	if c.CostLow <= 0 && c.CostHigh <= 0 {
		c.CostLow, c.CostHigh = 1, 20
	}
	if c.CommunityPairs == nil {
		half := c.Communities / 2
		for i := 0; i < half && half+i < c.Communities; i++ {
			c.CommunityPairs = append(c.CommunityPairs, [2]int{i, half + i})
		}
	}
	for _, pr := range c.CommunityPairs {
		if pr[0] < 0 || pr[1] >= c.Communities || pr[0] >= pr[1] {
			return c, fmt.Errorf("workload: invalid community pair %v", pr)
		}
	}
	return c, nil
}

// DAGInstance couples a generated problem with the community blocks and the
// linked pairs the generator embedded. Communities hold ascending parent
// query indices, so extracting them in order yields sub-problems whose DSS
// dependency DAG is exactly Pairs (oriented low index → high index).
type DAGInstance struct {
	Problem *mqo.Problem
	// Communities[c] lists the queries of community c, ascending.
	Communities [][]int
	// Pairs are the linked community pairs that may share savings.
	Pairs [][2]int
}

// SubProblems extracts one sub-problem per community, in community order —
// the partial-problem layout whose dependency DAG mirrors Pairs. The
// sub-problems are freshly extracted on every call (DSS consumes adjusted
// costs, so callers need a fresh set per solve).
func (in *DAGInstance) SubProblems() ([]*mqo.SubProblem, error) {
	subs := make([]*mqo.SubProblem, len(in.Communities))
	for c, qs := range in.Communities {
		sub, err := mqo.Extract(in.Problem, qs)
		if err != nil {
			return nil, err
		}
		subs[c] = sub
	}
	return subs, nil
}

// GenerateDAGSweep produces one topology-controlled sweep instance: queries
// are split over communities in contiguous blocks; plans of query pairs
// within a community share a saving with probability IntraDensity, plans
// across a *linked* community pair with probability CrossDensity, and never
// otherwise. Saving values and plan costs are uniform in their ranges.
func GenerateDAGSweep(cfg DAGSweepConfig) (*DAGInstance, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Contiguous near-equal blocks: the first Queries mod Communities
	// blocks take one extra query.
	comms := make([][]int, cfg.Communities)
	communityOf := make([]int, cfg.Queries)
	q := 0
	base, extra := cfg.Queries/cfg.Communities, cfg.Queries%cfg.Communities
	for c := range comms {
		sz := base
		if c < extra {
			sz++
		}
		for i := 0; i < sz; i++ {
			comms[c] = append(comms[c], q)
			communityOf[q] = c
			q++
		}
	}
	planCosts := make([][]float64, cfg.Queries)
	for q := range planCosts {
		costs := make([]float64, cfg.PPQ)
		for i := range costs {
			costs[i] = cfg.CostLow + rng.Float64()*(cfg.CostHigh-cfg.CostLow)
		}
		planCosts[q] = costs
	}
	linked := make(map[[2]int]bool, len(cfg.CommunityPairs))
	for _, pr := range cfg.CommunityPairs {
		linked[pr] = true
	}
	var savings []mqo.Saving
	ppq := cfg.PPQ
	pairTotal := ppq * ppq
	for q1 := 0; q1 < cfg.Queries; q1++ {
		for q2 := q1 + 1; q2 < cfg.Queries; q2++ {
			c1, c2 := communityOf[q1], communityOf[q2]
			var d float64
			switch {
			case c1 == c2:
				d = cfg.IntraDensity
			case linked[[2]int{c1, c2}]:
				d = cfg.CrossDensity
			default:
				continue
			}
			k := binomial(rng, pairTotal, d)
			if k == 0 {
				continue
			}
			for _, idx := range samplePairs(rng, pairTotal, k) {
				i, j := idx/ppq, idx%ppq
				savings = append(savings, mqo.Saving{
					P1:    q1*ppq + i,
					P2:    q2*ppq + j,
					Value: cfg.SavingLow + rng.Float64()*(cfg.SavingHigh-cfg.SavingLow),
				})
			}
		}
	}
	p, err := mqo.NewProblem(planCosts, savings)
	if err != nil {
		return nil, err
	}
	p.Name = fmt.Sprintf("dagsweep-q%d-ppq%d-c%d-e%d-s%d", cfg.Queries, cfg.PPQ, cfg.Communities, len(cfg.CommunityPairs), cfg.Seed)
	return &DAGInstance{Problem: p, Communities: comms, Pairs: cfg.CommunityPairs}, nil
}
