// Package tracetool reads the JSONL traces the obs package writes and
// reconstructs per-request span trees for offline analysis: phase
// breakdowns, critical paths through the DAG waves, slowest-request
// rankings and phase×device latency aggregates. It is the library behind
// cmd/mqotrace and the span-tree well-formedness tests.
//
// The input format is the obs JSONL event stream (one object per line).
// Span events carry "trace", "span" and optionally "parent" ids as
// fixed-width hex strings; point events carry "trace" and "parent" only.
// Un-traced events (no ids) are ignored — a mixed trace file from a
// partially instrumented run still parses.
package tracetool

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Event is one parsed JSONL trace line. Durations are in seconds, exactly
// as encoded; helpers convert to time.Duration.
type Event struct {
	T      float64           `json:"t"`
	Name   string            `json:"ev"`
	Device string            `json:"dev"`
	Label  string            `json:"label"`
	Run    int               `json:"run"`
	Dur    float64           `json:"dur"`
	Sweeps int               `json:"sweeps"`
	N      int               `json:"n"`
	Value  float64           `json:"value"`
	Extra  float64           `json:"extra"`
	Trace  string            `json:"trace"`
	Span   string            `json:"span"`
	Parent string            `json:"parent"`
	Attrs  map[string]string `json:"attrs"`
}

// Start and End are the event's offsets within its trace file's clock.
func (e *Event) Start() time.Duration { return time.Duration(e.T * float64(time.Second)) }
func (e *Event) End() time.Duration   { return e.Start() + e.Duration() }
func (e *Event) Duration() time.Duration {
	return time.Duration(e.Dur * float64(time.Second))
}

// Parse reads every event of a JSONL trace. Blank lines are skipped;
// malformed lines fail with their line number, since a truncated tail
// usually means a trace written without Sink.Close.
func Parse(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// Node is one span of a reconstructed tree, with its child spans and the
// point events (merge, dss, join, decode, degrade, ...) parented on it.
type Node struct {
	Event
	Children []*Node
	Points   []Event
}

// Trace is one request's reconstructed span forest. A well-formed trace
// has exactly one root (the serve "request" span, or the stand-alone
// session span); Orphans collects span events whose parent id never
// appeared — a tree invariant violation the tests assert empty.
type Trace struct {
	ID      string
	Roots   []*Node
	Spans   map[string]*Node
	Orphans []Event
}

// TotalDuration is the latest end offset over the trace's roots.
func (t *Trace) TotalDuration() time.Duration {
	var max time.Duration
	for _, r := range t.Roots {
		if d := r.Duration(); d > max {
			max = d
		}
	}
	return max
}

// BuildForest groups events by trace id and links spans into trees,
// preserving first-appearance order of traces. Events without a trace id
// are dropped; sibling order within a node is by start offset (stable for
// equal starts, so reconstruction is deterministic for a given file).
func BuildForest(events []Event) []*Trace {
	byID := map[string]*Trace{}
	var order []*Trace
	traceOf := func(id string) *Trace {
		t, ok := byID[id]
		if !ok {
			t = &Trace{ID: id, Spans: map[string]*Node{}}
			byID[id] = t
			order = append(order, t)
		}
		return t
	}
	// First pass: materialise span nodes (events carrying a span id).
	for _, e := range events {
		if e.Trace == "" || e.Span == "" {
			continue
		}
		traceOf(e.Trace).Spans[e.Span] = &Node{Event: e}
	}
	// Second pass: link children and attach point events.
	for _, e := range events {
		if e.Trace == "" {
			continue
		}
		t := traceOf(e.Trace)
		if e.Span != "" {
			n := t.Spans[e.Span]
			if e.Parent == "" {
				t.Roots = append(t.Roots, n)
			} else if p, ok := t.Spans[e.Parent]; ok {
				p.Children = append(p.Children, n)
			} else {
				t.Orphans = append(t.Orphans, e)
			}
			continue
		}
		if p, ok := t.Spans[e.Parent]; ok {
			p.Points = append(p.Points, e)
		} else {
			t.Orphans = append(t.Orphans, e)
		}
	}
	for _, t := range order {
		for _, n := range t.Spans {
			sort.SliceStable(n.Children, func(i, j int) bool {
				return n.Children[i].Start() < n.Children[j].Start()
			})
		}
		sort.SliceStable(t.Roots, func(i, j int) bool { return t.Roots[i].Start() < t.Roots[j].Start() })
	}
	return order
}

// WellFormed checks the span-tree invariants of every trace: at least one
// root, no orphaned span or point events (every parent id resolves), and
// no span that is its own ancestor. It returns the first violation.
func WellFormed(traces []*Trace) error {
	for _, t := range traces {
		if len(t.Roots) == 0 && len(t.Spans) > 0 {
			return fmt.Errorf("trace %s: no root span among %d spans", t.ID, len(t.Spans))
		}
		if len(t.Orphans) > 0 {
			o := t.Orphans[0]
			return fmt.Errorf("trace %s: %d orphaned events (first: %q parent %s)", t.ID, len(t.Orphans), o.Name, o.Parent)
		}
		reachable := 0
		seen := map[string]bool{}
		var walk func(n *Node) error
		walk = func(n *Node) error {
			if seen[n.Span] {
				return fmt.Errorf("trace %s: span %s reached twice (cycle or duplicate id)", t.ID, n.Span)
			}
			seen[n.Span] = true
			reachable++
			for _, c := range n.Children {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		}
		for _, r := range t.Roots {
			if err := walk(r); err != nil {
				return err
			}
		}
		if reachable != len(t.Spans) {
			return fmt.Errorf("trace %s: %d of %d spans unreachable from roots", t.ID, len(t.Spans)-reachable, len(t.Spans))
		}
	}
	return nil
}

// CriticalPath walks from root to a leaf, at each level descending into
// the child that ends last — the chain of spans that bounded the request's
// wall-clock. For the DAG schedule this descends through the last-ending
// wave into its slowest sub-problem and device solve.
func CriticalPath(root *Node) []*Node {
	path := []*Node{root}
	cur := root
	for len(cur.Children) > 0 {
		best := cur.Children[0]
		for _, c := range cur.Children[1:] {
			if c.End() > best.End() {
				best = c
			}
		}
		path = append(path, best)
		cur = best
	}
	return path
}

// PhaseBreakdown sums span durations by span name over a trace —
// inclusive durations, so nested phases (wave ⊃ sub ⊃ anneal) each report
// their own total and the table reads as "time attributable to phase X".
func PhaseBreakdown(t *Trace) map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, n := range t.Spans {
		out[n.Name] += n.Duration()
	}
	return out
}

// PhaseDevice is one cell of the aggregate phase×device latency summary.
type PhaseDevice struct {
	Phase, Device string
	Count         int
	Total         time.Duration
}

// AggregatePhaseDevice sums span durations by (phase, device) across all
// traces; spans without a device attribute aggregate under "-". Sorted by
// phase then device for stable rendering.
func AggregatePhaseDevice(traces []*Trace) []PhaseDevice {
	type key struct{ phase, dev string }
	agg := map[key]*PhaseDevice{}
	for _, t := range traces {
		for _, n := range t.Spans {
			dev := n.Device
			if dev == "" {
				dev = n.Attrs["device"]
			}
			if dev == "" {
				dev = "-"
			}
			k := key{n.Name, dev}
			c, ok := agg[k]
			if !ok {
				c = &PhaseDevice{Phase: n.Name, Device: dev}
				agg[k] = c
			}
			c.Count++
			c.Total += n.Duration()
		}
	}
	out := make([]PhaseDevice, 0, len(agg))
	for _, c := range agg {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Phase != out[j].Phase {
			return out[i].Phase < out[j].Phase
		}
		return out[i].Device < out[j].Device
	})
	return out
}
