package tracetool

import (
	"strings"
	"testing"
	"time"
)

// A hand-built two-request trace: request r1 (root → queue + worker →
// session → wave → sub → anneal, with a merge point event), request r2
// (smaller). Offsets in seconds; children end before parents, as emitted.
const sampleTrace = `
{"t":0.010,"ev":"queue","dur":0.005,"trace":"00000000000000a1","span":"0000000000000b02","parent":"0000000000000b01"}
{"t":0.020,"ev":"anneal","dev":"da","label":"sub01","dur":0.050,"trace":"00000000000000a1","span":"0000000000000b06","parent":"0000000000000b05"}
{"t":0.018,"ev":"sub","label":"sub01","dur":0.055,"trace":"00000000000000a1","span":"0000000000000b05","parent":"0000000000000b04"}
{"t":0.070,"ev":"merge","label":"sub01","n":1,"value":42.5,"trace":"00000000000000a1","parent":"0000000000000b04"}
{"t":0.016,"ev":"wave","label":"wave00","dur":0.060,"trace":"00000000000000a1","span":"0000000000000b04","parent":"0000000000000b03"}
{"t":0.015,"ev":"session","dur":0.070,"attrs":{"cache.tier":"cold"},"trace":"00000000000000a1","span":"0000000000000b03","parent":"0000000000000b07"}
{"t":0.015,"ev":"worker","dur":0.071,"attrs":{"slot":"0"},"trace":"00000000000000a1","span":"0000000000000b07","parent":"0000000000000b01"}
{"t":0.010,"ev":"request","dur":0.080,"attrs":{"id":"r000001"},"trace":"00000000000000a1","span":"0000000000000b01"}
{"t":0.100,"ev":"session","dur":0.020,"trace":"00000000000000a2","span":"0000000000000c01"}
{"t":0.101,"ev":"anneal","dev":"sa","dur":0.015,"trace":"00000000000000a2","span":"0000000000000c02","parent":"0000000000000c01"}
`

func parseSample(t *testing.T) []*Trace {
	t.Helper()
	events, err := Parse(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 10 {
		t.Fatalf("parsed %d events, want 10", len(events))
	}
	return BuildForest(events)
}

func TestBuildForestAndWellFormed(t *testing.T) {
	traces := parseSample(t)
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	if err := WellFormed(traces); err != nil {
		t.Fatalf("well-formed trace rejected: %v", err)
	}
	r1 := traces[0]
	if r1.ID != "00000000000000a1" || len(r1.Roots) != 1 {
		t.Fatalf("r1 = %s roots %d", r1.ID, len(r1.Roots))
	}
	root := r1.Roots[0]
	if root.Name != "request" || len(root.Children) != 2 {
		t.Fatalf("root %s has %d children, want queue+worker", root.Name, len(root.Children))
	}
	// Children sorted by start: queue (0.010) before worker (0.015).
	if root.Children[0].Name != "queue" || root.Children[1].Name != "worker" {
		t.Fatalf("child order: %s, %s", root.Children[0].Name, root.Children[1].Name)
	}
	// The merge point event landed on the wave span.
	wave := r1.Spans["0000000000000b04"]
	if len(wave.Points) != 1 || wave.Points[0].Name != "merge" {
		t.Fatalf("wave points = %+v", wave.Points)
	}
	if d := r1.TotalDuration(); d != 80*time.Millisecond {
		t.Fatalf("r1 total = %v", d)
	}
}

func TestCriticalPath(t *testing.T) {
	traces := parseSample(t)
	path := CriticalPath(traces[0].Roots[0])
	var names []string
	for _, n := range path {
		names = append(names, n.Name)
	}
	want := "request worker session wave sub anneal"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("critical path = %q, want %q", got, want)
	}
}

func TestPhaseBreakdownAndAggregate(t *testing.T) {
	traces := parseSample(t)
	bd := PhaseBreakdown(traces[0])
	if bd["anneal"] != 50*time.Millisecond || bd["queue"] != 5*time.Millisecond {
		t.Fatalf("breakdown = %v", bd)
	}
	agg := AggregatePhaseDevice(traces)
	var daAnneal, saAnneal *PhaseDevice
	for i := range agg {
		if agg[i].Phase == "anneal" && agg[i].Device == "da" {
			daAnneal = &agg[i]
		}
		if agg[i].Phase == "anneal" && agg[i].Device == "sa" {
			saAnneal = &agg[i]
		}
	}
	if daAnneal == nil || daAnneal.Count != 1 || daAnneal.Total != 50*time.Millisecond {
		t.Fatalf("da anneal aggregate = %+v", daAnneal)
	}
	if saAnneal == nil || saAnneal.Total != 15*time.Millisecond {
		t.Fatalf("sa anneal aggregate = %+v", saAnneal)
	}
}

func TestWellFormedDetectsOrphans(t *testing.T) {
	orphan := `{"t":0.1,"ev":"sub","dur":0.01,"trace":"00000000000000a9","span":"0000000000000d02","parent":"00000000000000ff"}
{"t":0.0,"ev":"request","dur":0.2,"trace":"00000000000000a9","span":"0000000000000d01"}
`
	events, err := Parse(strings.NewReader(orphan))
	if err != nil {
		t.Fatal(err)
	}
	if err := WellFormed(BuildForest(events)); err == nil {
		t.Fatal("orphaned span not detected")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := Parse(strings.NewReader("{\"t\":0.1,\"ev\":\"x\"}\n{broken\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestRenderers(t *testing.T) {
	traces := parseSample(t)
	var sb strings.Builder
	RenderSlowest(&sb, traces, 5)
	RenderCriticalPath(&sb, SortBySlowest(traces, 1)[0])
	RenderAggregate(&sb, traces)
	out := sb.String()
	for _, want := range []string{
		"slowest requests", "trace 00000000000000a1", "r000001",
		"critical path", "anneal", "phase x device", "da", "sa",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Slowest-first: r1 (80ms) before r2 (20ms).
	if strings.Index(out, "00000000000000a1") > strings.Index(out, "00000000000000a2") {
		t.Error("slowest request not ranked first")
	}
}
