package tracetool

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Reports rendered by cmd/mqotrace. All output is deterministic for a
// given trace file: ties break on trace id, never map order.

// ms renders a duration as fractional milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond)) }

// SortBySlowest orders traces by total duration descending (trace id
// ascending on ties) and returns the top n (all when n <= 0).
func SortBySlowest(traces []*Trace, n int) []*Trace {
	out := append([]*Trace(nil), traces...)
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := out[i].TotalDuration(), out[j].TotalDuration()
		if di != dj {
			return di > dj
		}
		return out[i].ID < out[j].ID
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// RenderSlowest writes the top-N slowest requests with their per-phase
// breakdown: one block per request, phases sorted by time descending.
func RenderSlowest(w io.Writer, traces []*Trace, n int) {
	top := SortBySlowest(traces, n)
	fmt.Fprintf(w, "slowest requests (%d of %d traces)\n", len(top), len(traces))
	for rank, t := range top {
		name, label := "?", ""
		if len(t.Roots) > 0 {
			name = t.Roots[0].Name
			label = t.Roots[0].Attrs["id"]
		}
		fmt.Fprintf(w, "%2d. trace %s  %s %s  total %s ms\n", rank+1, t.ID, name, label, ms(t.TotalDuration()))
		type phase struct {
			name string
			dur  time.Duration
		}
		var phases []phase
		for pn, d := range PhaseBreakdown(t) {
			phases = append(phases, phase{pn, d})
		}
		sort.Slice(phases, func(i, j int) bool {
			if phases[i].dur != phases[j].dur {
				return phases[i].dur > phases[j].dur
			}
			return phases[i].name < phases[j].name
		})
		for _, p := range phases {
			fmt.Fprintf(w, "      %-12s %10s ms\n", p.name, ms(p.dur))
		}
	}
}

// RenderCriticalPath writes the span chain that bounded the request's
// wall-clock, one line per level with start offset and duration.
func RenderCriticalPath(w io.Writer, t *Trace) {
	fmt.Fprintf(w, "critical path (trace %s):\n", t.ID)
	for _, root := range t.Roots {
		for depth, n := range CriticalPath(root) {
			label := n.Label
			if label == "" {
				label = n.Attrs["id"]
			}
			dev := n.Device
			if dev == "" {
				dev = n.Attrs["device"]
			}
			fmt.Fprintf(w, "  %*s%-10s %-8s %-6s start %8s ms  dur %8s ms\n",
				depth*2, "", n.Name, label, dev, ms(n.Start()), ms(n.Duration()))
		}
	}
}

// RenderAggregate writes the phase×device latency summary over all traces.
func RenderAggregate(w io.Writer, traces []*Trace) {
	agg := AggregatePhaseDevice(traces)
	fmt.Fprintf(w, "phase x device summary (%d traces)\n", len(traces))
	fmt.Fprintf(w, "  %-12s %-8s %8s %12s %12s\n", "phase", "device", "count", "total ms", "mean ms")
	for _, c := range agg {
		mean := time.Duration(0)
		if c.Count > 0 {
			mean = c.Total / time.Duration(c.Count)
		}
		fmt.Fprintf(w, "  %-12s %-8s %8d %12s %12s\n", c.Phase, c.Device, c.Count, ms(c.Total), ms(mean))
	}
}
