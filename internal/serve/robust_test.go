package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"incranneal/internal/core"
	"incranneal/internal/da"
	"incranneal/internal/faultinject"
	"incranneal/internal/obs"
	"incranneal/internal/solver"
)

// --- admission queue unit tests ----------------------------------------

func qjob(priority int) *job {
	return &job{priority: priority, sess: make(chan *core.Session, 1), result: make(chan jobResult, 1)}
}

func TestAdmissionQueueOrderAndDrain(t *testing.T) {
	q := newAdmissionQueue(8)
	low1, low2 := qjob(priorityLow), qjob(priorityLow)
	norm1, norm2 := qjob(priorityNormal), qjob(priorityNormal)
	high := qjob(priorityHigh)
	for _, j := range []*job{low1, norm1, low2, norm2, high} {
		if !q.push(j) {
			t.Fatal("push failed below capacity")
		}
	}
	// Dequeue: high first, then normals FIFO, then lows FIFO.
	want := []*job{high, norm1, norm2, low1, low2}
	for i, w := range want {
		j, ok := q.pop()
		if !ok || j != w {
			t.Fatalf("pop %d: got %p, want %p", i, j, w)
		}
	}

	// pushFront jumps the head of its class, and works after close.
	a, b, front := qjob(priorityNormal), qjob(priorityNormal), qjob(priorityNormal)
	q.push(a)
	q.push(b)
	q.close()
	if q.push(qjob(priorityNormal)) {
		t.Fatal("push succeeded on closed queue")
	}
	q.pushFront(front)
	order := []*job{front, a, b}
	for i, w := range order {
		j, ok := q.pop()
		if !ok || j != w {
			t.Fatalf("drain pop %d: got %p, want %p", i, j, w)
		}
	}
	// Closed and empty: pop reports done.
	if _, ok := q.pop(); ok {
		t.Fatal("pop returned a job from a closed empty queue")
	}
}

func TestAdmissionQueueRemoveExactlyOnce(t *testing.T) {
	q := newAdmissionQueue(4)
	j := qjob(priorityNormal)
	q.push(j)
	if !q.remove(j) {
		t.Fatal("first remove lost")
	}
	if q.remove(j) {
		t.Fatal("second remove won too")
	}
	if q.len() != 0 {
		t.Fatalf("queue len %d after remove", q.len())
	}
	// Capacity bound.
	q2 := newAdmissionQueue(1)
	if !q2.push(qjob(priorityLow)) || q2.push(qjob(priorityHigh)) {
		t.Fatal("capacity not enforced")
	}
}

// --- overload shedding ---------------------------------------------------

func TestShedderGate(t *testing.T) {
	sh := newShedder(10 * time.Millisecond)
	if sh.overloaded() {
		t.Fatal("empty shedder overloaded")
	}
	for i := 0; i < minShedSamples; i++ {
		sh.observe(time.Second)
	}
	if !sh.overloaded() {
		t.Fatal("p99 of 1s waits under a 10ms target not overloaded")
	}
	// A nil shedder (ShedTarget 0) never sheds.
	var off *shedder
	off.observe(time.Hour)
	if off.overloaded() {
		t.Fatal("nil shedder shed")
	}
}

func TestShedRejectsLowPriorityKeepsHigh(t *testing.T) {
	p := testProblem(t, 31)
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{
		Fleet: 1, ShedTarget: time.Millisecond,
		Sink: obs.NewSink(nil, reg),
	})
	// Saturate the shedder's window with hopeless queue waits.
	for i := 0; i < minShedSamples+2; i++ {
		s.shed.observe(time.Second)
	}

	resp, body := postSolve(t, ts.URL, SolveRequest{
		Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100, Seed: 1},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("normal priority under overload: status %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed rejection carries no Retry-After")
	}
	if !strings.Contains(string(body), "shedding") {
		t.Errorf("shed body %s does not name shedding", body)
	}
	if reg.Counter("serve.admission.shed").Value() == 0 {
		t.Error("shed counter not incremented")
	}

	// High priority sails through the same overload.
	resp, body = postSolve(t, ts.URL, SolveRequest{
		Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100, Seed: 1, Priority: "high"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("high priority under overload: status %d (%s), want 200", resp.StatusCode, body)
	}
}

func TestBadPriorityRejected(t *testing.T) {
	p := testProblem(t, 31)
	_, ts := newTestServer(t, Config{Fleet: 1})
	resp, body := postSolve(t, ts.URL, SolveRequest{
		Problem: p, Options: SolveOptions{Priority: "urgent"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d (%s), want 400", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "priority") {
		t.Errorf("error body %s does not name the priority", body)
	}
}

// --- watchdog ------------------------------------------------------------

// wedgedSolver ignores context cancellation entirely — the failure mode
// the watchdog exists for. unwedge releases every stuck solve.
type wedgedSolver struct {
	inner  solver.Solver
	wedged chan struct{}
}

func (ws *wedgedSolver) Name() string  { return "wedged(" + ws.inner.Name() + ")" }
func (ws *wedgedSolver) Capacity() int { return ws.inner.Capacity() }
func (ws *wedgedSolver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	<-ws.wedged // deliberately NOT selecting on ctx.Done()
	return ws.inner.Solve(context.Background(), req)
}

func TestWatchdogQuarantinesWedgedWorker(t *testing.T) {
	p := testProblem(t, 37)
	reg := obs.NewRegistry()
	wedge := &wedgedSolver{inner: &da.Solver{}, wedged: make(chan struct{})}
	var mu sync.Mutex
	wedgeOn := true
	s, ts := newTestServer(t, Config{
		Fleet:          1,
		WatchdogFactor: 1,
		WatchdogGrace:  100 * time.Millisecond,
		Sink:           obs.NewSink(nil, reg),
		NewDevice: func(string, int) (solver.Solver, error) {
			mu.Lock()
			defer mu.Unlock()
			if wedgeOn {
				return wedge, nil
			}
			return &da.Solver{}, nil
		},
	})
	defer close(wedge.wedged) // let the quarantined goroutine drain at test end

	resp, body := postSolve(t, ts.URL, SolveRequest{
		Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100, DeadlineMillis: 150},
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("wedged solve: status %d (%s), want 504", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "quarantined") {
		t.Errorf("error body %s does not mention quarantine", body)
	}
	if reg.Counter("serve.worker.quarantined").Value() != 1 {
		t.Errorf("quarantined counter %v, want 1", reg.Counter("serve.worker.quarantined").Value())
	}

	// The replacement slot builds fresh stacks; hand it a working device
	// and confirm the server still serves.
	mu.Lock()
	wedgeOn = false
	mu.Unlock()
	resp, body = postSolve(t, ts.URL, SolveRequest{
		Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100, Seed: 3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-quarantine solve: status %d (%s), want 200", resp.StatusCode, body)
	}
	_ = s
}

// --- chaos worker kills --------------------------------------------------

// TestChaosKillResumesBitIdentical is the serve-side face of the
// checkpoint tentpole: with the chaos harness killing every attempt it is
// allowed to, the final response still matches a standalone solve bit for
// bit, because each retry resumes from the killed attempt's checkpoint.
func TestChaosKillResumesBitIdentical(t *testing.T) {
	p := testProblem(t, 41)
	want, err := core.SolveIncremental(context.Background(), p, core.Options{
		Device: &da.Solver{CapacityVars: 40}, Capacity: 40, Runs: 2, TotalSweeps: 400, Seed: 9, Parallelism: -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	chaos := faultinject.NewChaos(faultinject.Config{KillWorkerEvery: 1})
	_, ts := newTestServer(t, Config{
		Fleet: 1, Capacity: 40, Parallelism: -1, MaxAttempts: 3, Chaos: chaos,
		Sink: obs.NewSink(nil, reg),
	})
	resp, body := postSolve(t, ts.URL, SolveRequest{
		Problem: p, Options: SolveOptions{Runs: 2, TotalSweeps: 400, Seed: 9},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	var got SolveResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost {
		t.Errorf("chaos-killed cost %v, standalone %v", got.Cost, want.Cost)
	}
	for q, pl := range got.Selected {
		if want.Solution.Selected[q] != pl {
			t.Fatalf("query %d: chaos-killed plan %d, standalone %d", q, pl, want.Solution.Selected[q])
		}
	}
	if got.Sweeps != want.Sweeps {
		t.Errorf("chaos-killed sweeps %d, standalone %d", got.Sweeps, want.Sweeps)
	}
	if kills := reg.Counter("serve.chaos.worker_kills").Value(); kills == 0 {
		t.Error("kill-worker-every=1 injected no kills")
	}
	if st := chaos.Stats(); st.WorkerKills == 0 {
		t.Error("chaos stats recorded no kills")
	}
}

// TestChaosKillStreamWellFormed checks the NDJSON protocol survives a
// kill-and-resume: every line parses, and the outcome line matches the
// standalone reference.
func TestChaosKillStreamWellFormed(t *testing.T) {
	p := testProblem(t, 43)
	want, err := core.SolveIncremental(context.Background(), p, core.Options{
		Device: &da.Solver{CapacityVars: 40}, Capacity: 40, Runs: 2, TotalSweeps: 400, Seed: 7, Parallelism: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	chaos := faultinject.NewChaos(faultinject.Config{KillWorkerEvery: 1})
	_, ts := newTestServer(t, Config{Fleet: 1, Capacity: 40, Parallelism: -1, MaxAttempts: 3, Chaos: chaos})

	body, err := json.Marshal(SolveRequest{
		Problem: p, Stream: true,
		Options: SolveOptions{Runs: 2, TotalSweeps: 400, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("malformed NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) < 2 || events[0].Type != "accepted" {
		t.Fatalf("stream shape wrong: %+v", events)
	}
	last := events[len(events)-1]
	if last.Type != "outcome" || last.Outcome == nil {
		t.Fatalf("stream does not end in an outcome: %+v", last)
	}
	if last.Outcome.Cost != want.Cost {
		t.Errorf("streamed chaos outcome cost %v, standalone %v", last.Outcome.Cost, want.Cost)
	}
}

// --- journal -------------------------------------------------------------

func TestJournalAcceptAndTombstone(t *testing.T) {
	p := testProblem(t, 47)
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Fleet: 1, JournalDir: dir})
	resp, body := postSolve(t, ts.URL, SolveRequest{
		Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100, Seed: 2},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	// Flush through Shutdown.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"op":"accept"`) || !strings.Contains(string(raw), `"op":"done"`) {
		t.Fatalf("journal missing accept/tombstone:\n%s", raw)
	}
	orphans, _, err := readOrphans(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 0 {
		t.Fatalf("answered request left %d orphans", len(orphans))
	}
}

// fabricateJournal writes accept records (and optional tombstones) the way
// a crashed daemon would have left them.
func fabricateJournal(t *testing.T, dir string, recs []journalRecord) {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, journalFile), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestJournalReplayAfterCrash(t *testing.T) {
	p := testProblem(t, 53)
	dir := t.TempDir()
	fabricateJournal(t, dir, []journalRecord{
		{Op: "accept", ID: "r000001", Priority: priorityNormal,
			Request: &SolveRequest{Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100, Seed: 5}}},
		{Op: "accept", ID: "r000002", Priority: priorityHigh,
			Request: &SolveRequest{Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100, Seed: 6}}},
		{Op: "accept", ID: "r000003", Priority: priorityNormal,
			Request: &SolveRequest{Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100, Seed: 7}}},
		{Op: "done", ID: "r000003"}, // already answered pre-crash
	})

	reg := obs.NewRegistry()
	gate := &gatedSolver{inner: &da.Solver{}, started: make(chan struct{}, 64), release: make(chan struct{})}
	s, ts := newTestServer(t, Config{
		Fleet: 1, JournalDir: dir,
		Sink:      obs.NewSink(nil, reg),
		NewDevice: func(string, int) (solver.Solver, error) { return gate, nil },
	})

	// While the replays are gated mid-solve the server is not ready...
	<-gate.started
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rz Readyz
	json.NewDecoder(resp.Body).Decode(&rz) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || rz.Status != "replaying" {
		t.Fatalf("/readyz during replay: status %d body %+v, want 503 replaying", resp.StatusCode, rz)
	}
	// ...but alive.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during replay: status %d, want 200", resp.StatusCode)
	}

	// Release every gated solve and wait for readiness.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case gate.release <- struct{}{}:
			case <-stop:
				return
			}
		}
	}()
	deadline := time.Now().Add(30 * time.Second)
	for s.replaying.Load() {
		if time.Now().After(deadline) {
			t.Fatal("replay did not finish")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after replay: status %d, want 200", resp.StatusCode)
	}

	if n := reg.Counter("serve.journal.replayed").Value(); n != 2 {
		t.Errorf("replayed counter %v, want 2 (r000003 was tombstoned)", n)
	}
	// New ids must not collide with journaled ones: the generator was
	// seeded past r000003.
	if id := s.ids.next(); id <= "r000003" {
		t.Errorf("post-replay id %s collides with journaled ids", id)
	}
	// Replays completed: both ids are tombstoned now.
	s.journal.mu.Lock()
	s.journal.w.Flush() //nolint:errcheck
	s.journal.mu.Unlock()
	orphans, _, err := readOrphans(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 0 {
		t.Fatalf("replayed requests left %d orphans", len(orphans))
	}
}

func TestJournalWriteFailureDegradesNotRejects(t *testing.T) {
	p := testProblem(t, 59)
	dir := t.TempDir()
	reg := obs.NewRegistry()
	chaos := faultinject.NewChaos(faultinject.Config{JournalFailEvery: 1})
	_, ts := newTestServer(t, Config{
		Fleet: 1, JournalDir: dir, Chaos: chaos,
		Sink: obs.NewSink(nil, reg),
	})
	resp, body := postSolve(t, ts.URL, SolveRequest{
		Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100, Seed: 8},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("journal-failed request: status %d (%s), want 200 — write failure must degrade, not reject", resp.StatusCode, body)
	}
	if reg.Counter("serve.journal.write_failures").Value() == 0 {
		t.Error("write_failures counter not incremented")
	}
	if chaos.Stats().JournalFailures == 0 {
		t.Error("chaos stats recorded no journal failures")
	}
}

// TestJournalDisabledUnchanged pins the compatibility satellite: without
// JournalDir the server writes nothing anywhere and /readyz is ready
// immediately.
func TestJournalDisabledUnchanged(t *testing.T) {
	p := testProblem(t, 61)
	s, ts := newTestServer(t, Config{Fleet: 1})
	if s.journal != nil {
		t.Fatal("journal exists without JournalDir")
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz without journal: %d", resp.StatusCode)
	}
	if resp, body := postSolve(t, ts.URL, SolveRequest{Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
}

// --- readiness during drain ---------------------------------------------

func TestReadyzDrainsBeforeHealthz(t *testing.T) {
	p := testProblem(t, 67)
	gate := &gatedSolver{inner: &da.Solver{}, started: make(chan struct{}, 64), release: make(chan struct{})}
	s, ts := newTestServer(t, Config{
		Fleet:     1,
		NewDevice: func(string, int) (solver.Solver, error) { return gate, nil },
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postSolve(t, ts.URL, SolveRequest{Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100}})
	}()
	<-gate.started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Draining with one in-flight job: /readyz says 503, /healthz stays 200.
	var sawDraining bool
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			break // listener may already be closing
		}
		var rz Readyz
		json.NewDecoder(resp.Body).Decode(&rz) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && rz.Status == "draining" {
			sawDraining = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawDraining {
		t.Error("/readyz never reported draining during shutdown")
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err == nil {
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/healthz during drain: %d, want 200", resp.StatusCode)
		}
		resp.Body.Close()
	}

	released := make(chan struct{})
	go func() {
		for {
			select {
			case gate.release <- struct{}{}:
			case <-released:
				return
			}
		}
	}()
	wg.Wait()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(released)
}

// --- priority end to end -------------------------------------------------

// seedOrderSolver records the request seed of every Solve it runs, so a
// test can reconstruct which job each fleet pickup belonged to.
type seedOrderSolver struct {
	inner solver.Solver
	gate  *gatedSolver
	mu    sync.Mutex
	seeds []int64
}

func (so *seedOrderSolver) Name() string  { return so.inner.Name() }
func (so *seedOrderSolver) Capacity() int { return so.inner.Capacity() }
func (so *seedOrderSolver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	so.mu.Lock()
	so.seeds = append(so.seeds, req.Seed)
	so.mu.Unlock()
	return so.gate.Solve(ctx, req)
}

// TestPriorityDequeueOrder holds the single fleet slot, queues one request
// per class in the order low → normal → high, then releases the slot and
// checks the fleet picked them up by class rank, not arrival order. Pickup
// order is reconstructed from the per-request solve seeds (job seeds are
// distinct, per-sub seeds are seed+1000+i).
func TestPriorityDequeueOrder(t *testing.T) {
	p := testProblem(t, 71)
	gate := &gatedSolver{inner: &da.Solver{}, started: make(chan struct{}, 256), release: make(chan struct{})}
	rec := &seedOrderSolver{inner: &da.Solver{}, gate: gate}
	s, ts := newTestServer(t, Config{
		Fleet: 1, QueueDepth: 8,
		NewDevice: func(string, int) (solver.Solver, error) { return rec, nil },
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postSolve(t, ts.URL, SolveRequest{Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100}})
	}()
	<-gate.started // slot busy; everything below queues

	classSeed := map[string]int64{"low": 100000, "normal": 200000, "high": 300000}
	post := func(priority string) {
		defer wg.Done()
		resp, body := postSolve(t, ts.URL, SolveRequest{
			Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100, Seed: classSeed[priority], Priority: priority},
		})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d (%s)", priority, resp.StatusCode, body)
		}
	}
	// Arrival order low → normal → high; ensure each is enqueued before
	// the next arrives so FIFO would invert the expected order.
	for _, pr := range []string{"low", "normal", "high"} {
		wg.Add(1)
		go post(pr)
		waitForQueued(t, s, pr)
	}

	done := make(chan struct{})
	go func() {
		for {
			select {
			case gate.release <- struct{}{}:
			case <-done:
				return
			}
		}
	}()
	wg.Wait()
	close(done)

	// First-seen order of each job's seed class across all device solves.
	rec.mu.Lock()
	seeds := append([]int64(nil), rec.seeds...)
	rec.mu.Unlock()
	var got []string
	seen := map[string]bool{}
	for _, sd := range seeds {
		for name, base := range classSeed {
			if sd >= base && sd < base+100000 && !seen[name] {
				seen[name] = true
				got = append(got, name)
			}
		}
	}
	want := []string{"high", "normal", "low"}
	if len(got) != 3 {
		t.Fatalf("saw %v pickups, want all three classes", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pickup order %v, want %v", got, want)
		}
	}
}

// waitForQueued blocks until the named priority class has one queued job.
func waitForQueued(t *testing.T, s *Server, priority string) {
	t.Helper()
	pr, _ := parsePriority(priority, priorityNormal)
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.queue.mu.Lock()
		n := len(s.queue.buckets[pr])
		s.queue.mu.Unlock()
		if n > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job with priority %s never queued", priority)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// --- spec errors surface through server construction ---------------------

func TestNewRejectsBadDefaultPriority(t *testing.T) {
	if _, err := New(Config{DefaultPriority: "asap"}); err == nil {
		t.Fatal("New accepted an unknown default priority")
	}
}

var _ = fmt.Sprintf // keep fmt imported if assertions above change
