package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"incranneal/internal/core"
	"incranneal/internal/da"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
	"incranneal/internal/solver"
	"incranneal/internal/workload"
)

func testProblem(t *testing.T, seed int64) *mqo.Problem {
	t.Helper()
	in, err := workload.GenerateSweep(workload.SweepConfig{
		Queries: 40, PPQ: 3, Communities: 4,
		DensityLow: 0.05, DensityHigh: 0.8, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in.Problem
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	return s, ts
}

func postSolve(t *testing.T, url string, req SolveRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestServeSolveMatchesStandalone pins the acceptance criterion: a problem
// solved through mqoserve yields a bit-identical Outcome to a standalone
// Solve with the same seed and options.
func TestServeSolveMatchesStandalone(t *testing.T) {
	p := testProblem(t, 11)
	opt := core.Options{
		Device:      &da.Solver{CapacityVars: 40},
		Capacity:    40,
		Runs:        4,
		TotalSweeps: 800,
		Seed:        5,
		Parallelism: -1,
	}
	want, err := core.SolveIncremental(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Capacity: 40, Fleet: 2, Parallelism: -1})
	resp, body := postSolve(t, ts.URL, SolveRequest{
		Problem: p,
		Options: SolveOptions{Runs: 4, TotalSweeps: 800, Seed: 5},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got SolveResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if got.Cost != want.Cost {
		t.Errorf("served cost %v, standalone %v", got.Cost, want.Cost)
	}
	if len(got.Selected) != len(want.Solution.Selected) {
		t.Fatalf("served %d selections, standalone %d", len(got.Selected), len(want.Solution.Selected))
	}
	for q, pl := range got.Selected {
		if want.Solution.Selected[q] != pl {
			t.Fatalf("query %d: served plan %d, standalone %d", q, pl, want.Solution.Selected[q])
		}
	}
	if got.Partitions != want.NumPartitions || got.Sweeps != want.Sweeps {
		t.Errorf("served stats {parts %d, sweeps %d}, standalone {parts %d, sweeps %d}",
			got.Partitions, got.Sweeps, want.NumPartitions, want.Sweeps)
	}
}

// TestServeStreamingIncumbents consumes the NDJSON stream and checks the
// event protocol: accepted, then incumbents with growing merge counts, then
// the outcome carrying the final cost.
func TestServeStreamingIncumbents(t *testing.T) {
	p := testProblem(t, 13)
	_, ts := newTestServer(t, Config{Capacity: 40, Parallelism: -1})

	body, err := json.Marshal(SolveRequest{
		Problem: p,
		Options: SolveOptions{Runs: 4, TotalSweeps: 800, Seed: 9},
		Stream:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q, want application/x-ndjson", ct)
	}

	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var e StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(events) < 3 {
		t.Fatalf("only %d events; want accepted + incumbents + outcome", len(events))
	}
	if events[0].Type != "accepted" || events[0].ID == "" {
		t.Errorf("first event %+v, want accepted with an id", events[0])
	}
	last := events[len(events)-1]
	if last.Type != "outcome" || last.Outcome == nil {
		t.Fatalf("last event %+v, want outcome", last)
	}
	prev := 0
	for _, e := range events[1 : len(events)-1] {
		if e.Type != "incumbent" {
			t.Fatalf("mid-stream event type %q, want incumbent", e.Type)
		}
		if e.Merged <= prev {
			t.Errorf("merge counts not increasing: %d after %d", e.Merged, prev)
		}
		prev = e.Merged
	}
	if last.Outcome.Cost == 0 {
		t.Error("outcome carries no cost")
	}
	if last.Outcome.Partitions != prev {
		t.Errorf("outcome partitions %d, last incumbent merged %d", last.Outcome.Partitions, prev)
	}
}

// gatedSolver blocks Solve until released, so tests can hold fleet slots
// busy and fill the queue deterministically.
type gatedSolver struct {
	inner   solver.Solver
	started chan struct{} // one send per Solve entered
	release chan struct{} // one receive unblocks one Solve
}

func (g *gatedSolver) Name() string  { return g.inner.Name() }
func (g *gatedSolver) Capacity() int { return g.inner.Capacity() }
func (g *gatedSolver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	g.started <- struct{}{}
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.inner.Solve(ctx, req)
}

// TestAdmissionRejectOnFull fills the single fleet slot and the queue, then
// checks the next request bounces with 503 + Retry-After.
func TestAdmissionRejectOnFull(t *testing.T) {
	p := testProblem(t, 17)
	gate := &gatedSolver{
		inner:   &da.Solver{},
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{
		Fleet:      1,
		QueueDepth: 1,
		Sink:       obs.NewSink(nil, reg),
		NewDevice:  func(string, int) (solver.Solver, error) { return gate, nil },
	})

	req := SolveRequest{Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupies the only fleet slot
		defer wg.Done()
		postSolve(t, ts.URL, req)
	}()
	<-gate.started // the slot is now provably busy

	// Fill the queue (depth 1). The worker is blocked, so this job stays
	// queued; enqueueing is synchronous so no race with the rejection below.
	ok, _ := s.admit(&job{
		id: "filler", problem: p, strategy: core.StrategyIncremental, device: "da",
		ctx: context.Background(), admitted: time.Now(),
		sess: make(chan *core.Session, 1), result: make(chan jobResult, 1),
	})
	if !ok {
		t.Fatal("filler job not admitted")
	}

	resp, body := postSolve(t, ts.URL, req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "queue full") {
		t.Errorf("error body %s, want queue full", body)
	}
	if n := reg.Counter("serve.admission.rejected_full").Value(); n == 0 {
		t.Error("rejected_full counter not incremented")
	}

	// Release the gate for the in-flight solve and the filler's runs.
	go func() {
		for {
			select {
			case gate.release <- struct{}{}:
			case <-time.After(5 * time.Second):
				return
			}
		}
	}()
	wg.Wait()
}

// TestDeadlineExpiredInQueue admits a request whose deadline lapses before
// a fleet slot frees up; it must be answered 504 without being solved.
func TestDeadlineExpiredInQueue(t *testing.T) {
	p := testProblem(t, 19)
	gate := &gatedSolver{
		inner:   &da.Solver{},
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{
		Fleet:      1,
		QueueDepth: 4,
		Sink:       obs.NewSink(nil, reg),
		NewDevice:  func(string, int) (solver.Solver, error) { return gate, nil },
	})

	req := SolveRequest{Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postSolve(t, ts.URL, req)
	}()
	<-gate.started

	// Queued behind the blocked slot with a 50 ms deadline. The response
	// can only arrive once the worker frees up, so post asynchronously,
	// let the deadline lapse while the job is provably still queued, then
	// release the gate.
	short := req
	short.Options.DeadlineMillis = 50
	type result struct {
		status int
		body   []byte
	}
	shortDone := make(chan result, 1)
	go func() {
		resp, body := postSolve(t, ts.URL, short)
		shortDone <- result{resp.StatusCode, body}
	}()
	time.Sleep(200 * time.Millisecond) // 50 ms deadline expires in queue
	go func() {
		for {
			select {
			case gate.release <- struct{}{}:
			case <-time.After(5 * time.Second):
				return
			}
		}
	}()

	r := <-shortDone
	if r.status != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", r.status, r.body)
	}
	var e errorBody
	if err := json.Unmarshal(r.body, &e); err != nil || !strings.Contains(e.Error, "expired in queue") {
		t.Errorf("error body %s, want expired in queue", r.body)
	}
	// The eager evictor should have pulled the job at its deadline
	// (evicted_expired); worker-side discovery (expired_in_queue) only
	// wins the race if the slot freed at the exact deadline instant.
	evicted := reg.Counter("serve.admission.evicted_expired").Value()
	expired := reg.Counter("serve.admission.expired_in_queue").Value()
	if evicted+expired == 0 {
		t.Error("neither evicted_expired nor expired_in_queue incremented")
	}
	if evicted == 0 {
		t.Error("eager evictor did not claim the provably expired queued job")
	}
	wg.Wait()
}

// TestGracefulShutdownDrains starts a solve, begins Shutdown mid-flight and
// checks (a) the in-flight request still gets its full answer, (b) new
// requests are rejected as draining, (c) Shutdown returns cleanly.
func TestGracefulShutdownDrains(t *testing.T) {
	p := testProblem(t, 23)
	gate := &gatedSolver{
		inner:   &da.Solver{},
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
	s, err := New(Config{
		Fleet:     1,
		NewDevice: func(string, int) (solver.Solver, error) { return gate, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := SolveRequest{Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100}}
	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 1)
	go func() {
		resp, body := postSolve(t, ts.URL, req)
		inflight <- result{resp.StatusCode, body}
	}()
	<-gate.started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Draining must reject new work immediately, while the old solve runs.
	for i := 0; ; i++ {
		resp, body := postSolve(t, ts.URL, req)
		if resp.StatusCode == http.StatusServiceUnavailable &&
			strings.Contains(string(body), "draining") {
			break
		}
		if i > 100 {
			t.Fatalf("never saw a draining rejection; last status %d (%s)", resp.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	go func() {
		for {
			select {
			case gate.release <- struct{}{}:
			case <-time.After(5 * time.Second):
				return
			}
		}
	}()

	r := <-inflight
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request got %d (%s), want its full answer", r.status, r.body)
	}
	var out SolveResponse
	if err := json.Unmarshal(r.body, &out); err != nil || len(out.Selected) != p.NumQueries() {
		t.Fatalf("drained response incomplete: %s", r.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServeBadRequests covers the 400 family: no body, no problem, unknown
// strategy, unknown device; plus 405 on GET.
func TestServeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := testProblem(t, 29)

	resp, err := http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve: %d, want 405", resp.StatusCode)
	}

	cases := []struct {
		name string
		body string
	}{
		{"empty body", ``},
		{"no problem", `{}`},
		{"bad strategy", mustJSON(t, SolveRequest{Problem: p, Options: SolveOptions{Strategy: "nope"}})},
		{"bad device", mustJSON(t, SolveRequest{Problem: p, Options: SolveOptions{Device: "qpu9000"}})},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestHealthzAndStatsz exercises the operational endpoints.
func TestHealthzAndStatsz(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Fleet: 3, QueueDepth: 7, Sink: obs.NewSink(nil, reg)})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Fleet != 3 || h.QueueCapacity != 7 {
		t.Errorf("healthz %+v", h)
	}

	p := testProblem(t, 31)
	postSolve(t, ts.URL, SolveRequest{Problem: p, Options: SolveOptions{Runs: 1, TotalSweeps: 100}})

	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := snap["serve.admission.accepted"]; !ok {
		t.Errorf("statsz missing serve.admission.accepted: %v", snap)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "draining" {
		t.Errorf("post-shutdown healthz status %q, want draining", h.Status)
	}
}

// TestConcurrentLoadDeterminism hammers a 2-slot fleet with identical
// seeded requests under contention and checks every response is identical —
// scheduling order must never leak into results.
func TestConcurrentLoadDeterminism(t *testing.T) {
	p := testProblem(t, 37)
	_, ts := newTestServer(t, Config{Capacity: 40, Fleet: 2, QueueDepth: 32, Parallelism: 2})

	const clients = 8
	costs := make([]float64, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postSolve(t, ts.URL, SolveRequest{
				Problem: p,
				Options: SolveOptions{Runs: 2, TotalSweeps: 400, Seed: 99},
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d (%s)", i, resp.StatusCode, body)
				return
			}
			var out SolveResponse
			if err := json.Unmarshal(body, &out); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			costs[i] = out.Cost
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if costs[i] != costs[0] {
			t.Fatalf("client %d cost %v, client 0 cost %v — scheduling leaked into results", i, costs[i], costs[0])
		}
	}
}
