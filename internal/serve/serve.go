// Package serve is the long-running MQO service: an HTTP/JSON daemon that
// multiplexes concurrent problem streams over a bounded fleet of solver
// instances. It turns the repository's one-shot pipeline into the shape a
// DBMS actually needs — a shared, capacity-limited optimisation resource
// fielding recurring query batches — with three load-bearing pieces:
//
//   - Admission control. Requests enter a bounded queue; when it is full
//     (or the server is draining for shutdown) they are rejected
//     immediately with 503 + Retry-After instead of piling up. Every
//     request carries a deadline, propagated as a context through queueing
//     and solving, so work whose client has given up is never performed.
//   - A shared device fleet. A fixed pool of workers — each owning its own
//     per-device middleware stacks (resilience retry/timeout/breaker
//     state is per fleet slot) — pulls admitted jobs off the queue. The
//     fleet size bounds concurrent solves exactly like
//     solver.ForEachRun's worker cap bounds concurrent runs; each solve's
//     own Request.Parallelism is divided across the fleet so a loaded
//     server does not oversubscribe the host.
//   - Streaming sessions. Each job runs as a core.Session, so clients can
//     consume the incumbent trajectory (one point per merged partial
//     problem — the PR 4 convergence data) as NDJSON while the solve is
//     still running, then receive the final Outcome.
//
// Determinism carries over from the pipeline: a problem solved through the
// server yields a bit-identical Outcome to a standalone Solve with the
// same options and seed, for any fleet size, queue depth or concurrent
// load, because per-solve seeds fix results regardless of which worker
// runs the job or when (TestServeSolveMatchesStandalone).
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"incranneal/internal/core"
	"incranneal/internal/da"
	"incranneal/internal/hqa"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
	"incranneal/internal/resilience"
	"incranneal/internal/sa"
	"incranneal/internal/solvecache"
	"incranneal/internal/solver"
	"incranneal/internal/va"
)

// Config parameterises a Server. The zero value is usable: a 2-worker DA
// fleet behind a 64-deep queue with a 60 s default deadline.
type Config struct {
	// QueueDepth bounds the admission queue: requests beyond the fleet's
	// in-flight capacity wait here, and when it is full new requests are
	// rejected with 503 + Retry-After. Zero means 64.
	QueueDepth int
	// Fleet is the number of solver workers — the maximum concurrently
	// executing solves. Zero means 2.
	Fleet int
	// Device is the fleet's default annealing device: da, da-pt, sa, hqa
	// or va. Empty means da. Requests may override per solve.
	Device string
	// Fallback lists spare devices tried in order when a solve's primary
	// device fails terminally (the resilience Fallback chain).
	Fallback []string
	// Capacity overrides the device variable capacity (0 = device
	// default); it bounds partial-problem size exactly as in core.Options.
	Capacity int
	// DefaultRuns is the per-request default for annealing runs per
	// (partial) problem. Zero means 16, the paper's setting.
	DefaultRuns int
	// DefaultSweeps is the per-request default total sweep budget (0 =
	// device defaults).
	DefaultSweeps int
	// DefaultDeadline applies to requests that carry none. Zero means 60s.
	DefaultDeadline time.Duration
	// MaxDeadline caps any requested deadline. Zero means 10m.
	MaxDeadline time.Duration
	// RetryAfter is the hint returned with 503 rejections. Zero means 1s.
	RetryAfter time.Duration
	// Retries, SolveTimeout and Breaker configure the per-device
	// resilience stack each fleet worker wraps around its devices (see
	// resilience.Config). All zero means bare devices — the stack is
	// bit-transparent on the no-fault path either way.
	Retries      int
	SolveTimeout time.Duration
	Breaker      int
	// Seed drives the resilience middleware's deterministic backoff
	// jitter (never results).
	Seed int64
	// Parallelism is the total worker-goroutine budget per solve,
	// divided across the fleet so concurrent solves do not oversubscribe
	// the host: each solve gets Workers(Parallelism)/Fleet (minimum
	// sequential). Zero means GOMAXPROCS. Results are identical for any
	// setting.
	Parallelism int
	// CacheEntries enables the cross-solve cache shared by the whole
	// fleet: solves of structurally identical problems skip recursive
	// partitioning and rebind cached encoding skeletons, bounded to this
	// many distinct problem structures (LRU). Zero disables caching —
	// the default, preserving the bit-identical-to-standalone contract
	// for every request sequence; negative selects the default bound.
	CacheEntries int
	// WarmStartDrift additionally seeds annealing runs from the cached
	// incumbent when the relative weight drift is within
	// (0, WarmStartDrift]. Only meaningful with CacheEntries set; zero
	// disables warm starts.
	WarmStartDrift float64
	// Sink receives trace events and metrics for every solve the server
	// runs (queue depth, admission outcomes and request latency are
	// recorded in its Registry). Nil disables observation.
	Sink *obs.Sink
	// NewDevice overrides device construction (tests inject gated or
	// faulty solvers). Nil uses the built-in devices.
	NewDevice func(name string, capacity int) (solver.Solver, error)
}

func (c Config) queueDepth() int { return orDefault(c.QueueDepth, 64) }
func (c Config) fleet() int      { return orDefault(c.Fleet, 2) }
func (c Config) device() string {
	if c.Device == "" {
		return "da"
	}
	return c.Device
}
func (c Config) defaultRuns() int { return orDefault(c.DefaultRuns, 16) }
func (c Config) defaultDeadline() time.Duration {
	if c.DefaultDeadline > 0 {
		return c.DefaultDeadline
	}
	return time.Minute
}
func (c Config) maxDeadline() time.Duration {
	if c.MaxDeadline > 0 {
		return c.MaxDeadline
	}
	return 10 * time.Minute
}
func (c Config) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return time.Second
}

func orDefault(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}

// jobResult is what a fleet worker reports back to the waiting handler.
type jobResult struct {
	out *core.Outcome
	err error
}

// job is one admitted solve travelling from handler to fleet worker.
type job struct {
	id       string
	problem  *mqo.Problem
	opt      core.Options // Device left nil; the worker fills it in
	strategy string
	device   string
	// ctx carries the request deadline, the client-disconnect signal and —
	// when the server observes — the request's root span.
	ctx      context.Context
	admitted time.Time
	// span is the request's root span; queueSpan covers admission to worker
	// pickup. Both nil when the server runs without a sink.
	span      *obs.Span
	queueSpan *obs.Span
	// sess hands the running Session to the handler (capacity 1; closed
	// without a send when the job dies before starting, e.g. its deadline
	// expired while queued).
	sess chan *core.Session
	// result delivers the final outcome or error (capacity 1).
	result chan jobResult
}

// Server multiplexes MQO solves over a bounded solver fleet behind an
// HTTP/JSON interface. Construct with New, expose with Handler, Serve or
// ListenAndServe, stop with Shutdown.
type Server struct {
	cfg   Config
	queue chan *job
	mux   *http.ServeMux
	// cache is the fleet-wide cross-solve cache (nil when disabled); all
	// workers share it so any slot can reuse any slot's partitionings,
	// skeletons and incumbents.
	cache *solvecache.Cache

	mu       sync.RWMutex
	draining bool

	workers  sync.WaitGroup // fleet workers
	inflight sync.WaitGroup // admitted jobs not yet answered

	httpSrv *http.Server
	ids     idGen
}

// New validates cfg, starts the fleet workers and returns a Server ready
// to accept requests. The returned server must eventually be Shutdown to
// stop the fleet.
func New(cfg Config) (*Server, error) {
	if _, err := cfg.newRawDevice(cfg.device()); err != nil {
		return nil, err
	}
	for _, fb := range cfg.Fallback {
		if _, err := cfg.newRawDevice(fb); err != nil {
			return nil, fmt.Errorf("fallback: %w", err)
		}
	}
	s := &Server{cfg: cfg, queue: make(chan *job, cfg.queueDepth())}
	if cfg.CacheEntries != 0 {
		n := cfg.CacheEntries
		if n < 0 {
			n = 0 // solvecache.New's default bound
		}
		s.cache = solvecache.New(n)
		s.cache.Publish(s.registry())
	}
	s.mux = s.routes()
	for i := 0; i < cfg.fleet(); i++ {
		s.workers.Add(1)
		go s.worker(i)
	}
	return s, nil
}

// newRawDevice constructs one bare device by name.
func (c Config) newRawDevice(name string) (solver.Solver, error) {
	if c.NewDevice != nil {
		return c.NewDevice(name, c.Capacity)
	}
	switch strings.TrimSpace(name) {
	case "", "da":
		return &da.Solver{CapacityVars: c.Capacity}, nil
	case "da-pt":
		return &ptDevice{Solver: &da.Solver{CapacityVars: c.Capacity}}, nil
	case "sa":
		return &sa.Solver{}, nil
	case "hqa":
		return &hqa.Solver{}, nil
	case "va":
		return &va.Solver{}, nil
	default:
		return nil, fmt.Errorf("serve: unknown device %q (want da, da-pt, sa, hqa or va)", name)
	}
}

// ptDevice routes Solve through the DA's parallel-tempering mode.
type ptDevice struct{ *da.Solver }

func (s *ptDevice) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	return s.SolvePT(ctx, req)
}

// newStack builds the full per-device middleware stack for one fleet
// slot: (primary, fallbacks...) under the configured resilience layers.
// Breaker and retry state live inside the returned stack, so each worker
// owning its own stacks keeps device health tracking per fleet slot.
func (s *Server) newStack(primary string, slot int) (solver.Solver, error) {
	devs := make([]solver.Solver, 0, 1+len(s.cfg.Fallback))
	prim, err := s.cfg.newRawDevice(primary)
	if err != nil {
		return nil, err
	}
	devs = append(devs, prim)
	for _, fb := range s.cfg.Fallback {
		dev, err := s.cfg.newRawDevice(fb)
		if err != nil {
			return nil, err
		}
		devs = append(devs, dev)
	}
	return resilience.Wrap(devs, resilience.Config{
		Retries:          s.cfg.Retries,
		SolveTimeout:     s.cfg.SolveTimeout,
		BreakerThreshold: s.cfg.Breaker,
		Seed:             s.cfg.Seed + int64(slot)*7919,
	}), nil
}

// perSolveParallelism divides the server's worker budget across the
// fleet, so Fleet concurrent solves together use about Parallelism
// goroutines. Minimum is sequential (-1 in the solver.Workers encoding);
// results never depend on the split.
func (s *Server) perSolveParallelism() int {
	share := solver.Workers(s.cfg.Parallelism) / s.cfg.fleet()
	if share < 1 {
		return -1
	}
	return share
}

// worker is one fleet slot: it pulls admitted jobs off the queue and runs
// each as a core.Session on its own device stacks until the queue closes.
func (s *Server) worker(slot int) {
	defer s.workers.Done()
	stacks := map[string]solver.Solver{}
	reg := s.registry()
	for j := range s.queue {
		reg.Gauge("serve.queue.depth").Set(float64(len(s.queue)))
		// Worker pickup closes the request's queue-wait span and feeds the
		// queue-wait quantile histogram regardless of how the job proceeds.
		wait := time.Since(j.admitted)
		j.queueSpan.End()
		reg.Histogram("serve.queue.wait_ms").Observe(wait.Seconds() * 1e3)
		if err := j.ctx.Err(); err != nil {
			// The client's deadline expired (or it disconnected) while the
			// job sat in the queue: answer without solving.
			reg.Counter("serve.admission.expired_in_queue").Add(1)
			j.span.Attr("expired", "queue")
			close(j.sess)
			j.result <- jobResult{err: fmt.Errorf("serve: request expired in queue after %v: %w", wait.Round(time.Millisecond), err)}
			continue
		}
		stack, ok := stacks[j.device]
		if !ok {
			var err error
			stack, err = s.newStack(j.device, slot)
			if err != nil {
				close(j.sess)
				j.result <- jobResult{err: err}
				continue
			}
			stacks[j.device] = stack
		}
		opt := j.opt
		opt.Device = stack
		if s.cache != nil {
			opt.Cache = s.cache
			opt.WarmStartDrift = s.cfg.WarmStartDrift
		}
		sess := core.NewSession(j.problem, opt)
		sess.Strategy = j.strategy
		ctx := j.ctx
		var wspan *obs.Span
		if s.cfg.Sink.Enabled() {
			ctx = obs.NewContext(ctx, s.cfg.Sink)
			// The worker-slot span covers device-stack residency: the session
			// span (and the whole pipeline tree) hangs off it. Slot
			// attribution answers "which fleet slot's breaker/retry state
			// served this request".
			ctx, wspan = s.cfg.Sink.StartSpan(ctx, "worker")
			wspan.Attr("slot", strconv.Itoa(slot)).Attr("device", j.device)
		}
		if err := sess.Start(ctx); err != nil {
			wspan.Attr("error", err.Error()).End()
			close(j.sess)
			j.result <- jobResult{err: err}
			continue
		}
		j.sess <- sess
		out, err := sess.Wait()
		if err == nil {
			wspan.Attr("cache.tier", out.Cache.Tier())
			reg.Histogram("serve.solve.latency_ms").Observe(out.Elapsed.Seconds() * 1e3)
		}
		wspan.End()
		j.result <- jobResult{out: out, err: err}
	}
}

// admit enqueues j unless the server is draining or the queue is full.
// The reason string feeds the admission-outcome metrics and the 503 body.
// On success the job is registered in the inflight WaitGroup while the
// lock is still held, so Shutdown (which takes the write lock before
// waiting) can never miss an admitted job; the handler must balance with
// inflight.Done once the response is written.
func (s *Server) admit(j *job) (ok bool, reason string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return false, "draining"
	}
	select {
	case s.queue <- j:
		s.inflight.Add(1)
		return true, ""
	default:
		return false, "queue full"
	}
}

func (s *Server) registry() *obs.Registry { return s.cfg.Sink.Metrics() }

// queueDepth reports the current number of queued (not yet running) jobs.
func (s *Server) queueDepth() int { return len(s.queue) }

// Handler returns the server's HTTP handler, for mounting on an existing
// listener or an httptest server.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.httpSrv = &http.Server{Handler: s.mux}
	srv := s.httpSrv
	s.mu.Unlock()
	return srv.Serve(l)
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains the server gracefully: new requests are rejected with
// 503 immediately, already-admitted jobs run to completion and their
// responses are delivered, then the fleet exits. ctx bounds the wait for
// in-flight work; on expiry the remaining solves are cancelled through
// their request contexts by the closing HTTP server.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	httpSrv := s.httpSrv
	s.mu.Unlock()
	if already {
		return nil
	}
	// No admit can be in flight past this point (admit holds the read
	// lock while enqueuing), so closing the queue is safe; workers drain
	// the remaining jobs and exit.
	close(s.queue)

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		s.workers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return ctx.Err()
	}
	if httpSrv != nil {
		return httpSrv.Shutdown(ctx)
	}
	return nil
}

// idGen issues short request ids (r000001, r000002, ...).
type idGen struct {
	mu sync.Mutex
	n  int64
}

func (g *idGen) next() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	return fmt.Sprintf("r%06d", g.n)
}
