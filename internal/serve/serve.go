// Package serve is the long-running MQO service: an HTTP/JSON daemon that
// multiplexes concurrent problem streams over a bounded fleet of solver
// instances. It turns the repository's one-shot pipeline into the shape a
// DBMS actually needs — a shared, capacity-limited optimisation resource
// fielding recurring query batches — with three load-bearing pieces:
//
//   - Admission control. Requests enter a bounded queue; when it is full
//     (or the server is draining for shutdown) they are rejected
//     immediately with 503 + Retry-After instead of piling up. Every
//     request carries a deadline, propagated as a context through queueing
//     and solving, so work whose client has given up is never performed.
//   - A shared device fleet. A fixed pool of workers — each owning its own
//     per-device middleware stacks (resilience retry/timeout/breaker
//     state is per fleet slot) — pulls admitted jobs off the queue. The
//     fleet size bounds concurrent solves exactly like
//     solver.ForEachRun's worker cap bounds concurrent runs; each solve's
//     own Request.Parallelism is divided across the fleet so a loaded
//     server does not oversubscribe the host.
//   - Streaming sessions. Each job runs as a core.Session, so clients can
//     consume the incumbent trajectory (one point per merged partial
//     problem — the PR 4 convergence data) as NDJSON while the solve is
//     still running, then receive the final Outcome.
//
// Determinism carries over from the pipeline: a problem solved through the
// server yields a bit-identical Outcome to a standalone Solve with the
// same options and seed, for any fleet size, queue depth or concurrent
// load, because per-solve seeds fix results regardless of which worker
// runs the job or when (TestServeSolveMatchesStandalone).
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"incranneal/internal/core"
	"incranneal/internal/da"
	"incranneal/internal/faultinject"
	"incranneal/internal/hqa"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
	"incranneal/internal/resilience"
	"incranneal/internal/sa"
	"incranneal/internal/solvecache"
	"incranneal/internal/solver"
	"incranneal/internal/va"
)

// Config parameterises a Server. The zero value is usable: a 2-worker DA
// fleet behind a 64-deep queue with a 60 s default deadline.
type Config struct {
	// QueueDepth bounds the admission queue: requests beyond the fleet's
	// in-flight capacity wait here, and when it is full new requests are
	// rejected with 503 + Retry-After. Zero means 64.
	QueueDepth int
	// Fleet is the number of solver workers — the maximum concurrently
	// executing solves. Zero means 2.
	Fleet int
	// Device is the fleet's default annealing device: da, da-pt, sa, hqa
	// or va. Empty means da. Requests may override per solve.
	Device string
	// Fallback lists spare devices tried in order when a solve's primary
	// device fails terminally (the resilience Fallback chain).
	Fallback []string
	// Capacity overrides the device variable capacity (0 = device
	// default); it bounds partial-problem size exactly as in core.Options.
	Capacity int
	// DefaultRuns is the per-request default for annealing runs per
	// (partial) problem. Zero means 16, the paper's setting.
	DefaultRuns int
	// DefaultSweeps is the per-request default total sweep budget (0 =
	// device defaults).
	DefaultSweeps int
	// DefaultDeadline applies to requests that carry none. Zero means 60s.
	DefaultDeadline time.Duration
	// MaxDeadline caps any requested deadline. Zero means 10m.
	MaxDeadline time.Duration
	// RetryAfter is the hint returned with 503 rejections. Zero means 1s.
	RetryAfter time.Duration
	// Retries, SolveTimeout and Breaker configure the per-device
	// resilience stack each fleet worker wraps around its devices (see
	// resilience.Config). All zero means bare devices — the stack is
	// bit-transparent on the no-fault path either way.
	Retries      int
	SolveTimeout time.Duration
	Breaker      int
	// Seed drives the resilience middleware's deterministic backoff
	// jitter (never results).
	Seed int64
	// Parallelism is the total worker-goroutine budget per solve,
	// divided across the fleet so concurrent solves do not oversubscribe
	// the host: each solve gets Workers(Parallelism)/Fleet (minimum
	// sequential). Zero means GOMAXPROCS. Results are identical for any
	// setting.
	Parallelism int
	// CacheEntries enables the cross-solve cache shared by the whole
	// fleet: solves of structurally identical problems skip recursive
	// partitioning and rebind cached encoding skeletons, bounded to this
	// many distinct problem structures (LRU). Zero disables caching —
	// the default, preserving the bit-identical-to-standalone contract
	// for every request sequence; negative selects the default bound.
	CacheEntries int
	// WarmStartDrift additionally seeds annealing runs from the cached
	// incumbent when the relative weight drift is within
	// (0, WarmStartDrift]. Only meaningful with CacheEntries set; zero
	// disables warm starts.
	WarmStartDrift float64
	// Sink receives trace events and metrics for every solve the server
	// runs (queue depth, admission outcomes and request latency are
	// recorded in its Registry). Nil disables observation.
	Sink *obs.Sink
	// NewDevice overrides device construction (tests inject gated or
	// faulty solvers). Nil uses the built-in devices.
	NewDevice func(name string, capacity int) (solver.Solver, error)

	// JournalDir enables the crash-safety journal: every accepted request
	// is fsync'd to JournalDir/queue.journal before admission and
	// tombstoned once answered, and a restarting server re-runs the
	// unanswered remainder (at-least-once). Empty disables journaling —
	// behaviour is then identical to a journal-less server.
	JournalDir string
	// CheckpointInterval throttles the per-solve checkpoint cadence used
	// for chaos-kill resume (core.Options.CheckpointInterval). Zero
	// checkpoints after every partial-problem merge.
	CheckpointInterval time.Duration
	// ShedTarget enables adaptive overload shedding: when the p99 queue
	// wait over a ~5s sliding window exceeds this target, low- and
	// normal-priority requests are rejected with 503 + Retry-After
	// (high-priority requests always pass). Zero disables shedding.
	ShedTarget time.Duration
	// DefaultPriority is the class of requests that carry none: low,
	// normal (the default) or high. Dequeue order is high before normal
	// before low, FIFO within a class.
	DefaultPriority string
	// WatchdogFactor arms a per-slot watchdog: a solve still running
	// after (remaining deadline at start) × WatchdogFactor has ignored
	// its cancellation, so the slot cancels it, waits WatchdogGrace, and
	// if the solve still has not returned abandons it — the client gets
	// an error, the slot is quarantined and a fresh worker (new device
	// stacks) replaces it. Zero disables the watchdog.
	WatchdogFactor float64
	// WatchdogGrace is the post-cancel wait before quarantining. Zero
	// means 2s.
	WatchdogGrace time.Duration
	// MaxAttempts bounds how many times one request may be (chaos-)killed
	// and requeued; the final attempt always runs unkilled. Zero means 3.
	MaxAttempts int
	// Chaos injects serve-layer faults — worker kills, slow workers,
	// journal write failures — for the chaos harness. Nil injects
	// nothing.
	Chaos *faultinject.Chaos
}

func (c Config) queueDepth() int { return orDefault(c.QueueDepth, 64) }
func (c Config) fleet() int      { return orDefault(c.Fleet, 2) }
func (c Config) device() string {
	if c.Device == "" {
		return "da"
	}
	return c.Device
}
func (c Config) defaultRuns() int { return orDefault(c.DefaultRuns, 16) }
func (c Config) defaultDeadline() time.Duration {
	if c.DefaultDeadline > 0 {
		return c.DefaultDeadline
	}
	return time.Minute
}
func (c Config) maxDeadline() time.Duration {
	if c.MaxDeadline > 0 {
		return c.MaxDeadline
	}
	return 10 * time.Minute
}
func (c Config) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return time.Second
}
func (c Config) maxAttempts() int { return orDefault(c.MaxAttempts, 3) }
func (c Config) watchdogGrace() time.Duration {
	if c.WatchdogGrace > 0 {
		return c.WatchdogGrace
	}
	return 2 * time.Second
}

func orDefault(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}

// jobResult is what a fleet worker reports back to the waiting handler.
type jobResult struct {
	out *core.Outcome
	err error
}

// job is one admitted solve travelling from handler to fleet worker.
type job struct {
	id       string
	problem  *mqo.Problem
	opt      core.Options // Device left nil; the worker fills it in
	strategy string
	device   string
	// ctx carries the request deadline, the client-disconnect signal and —
	// when the server observes — the request's root span.
	ctx      context.Context
	admitted time.Time
	// enqueued is when the current attempt entered the queue (admission or
	// chaos requeue); admitted stays the original admission time.
	enqueued time.Time
	// priority is the job's dequeue class (priorityLow/Normal/High).
	priority int
	// attempts counts solve attempts so far; chaos kills stop once
	// attempts+1 reaches the server's MaxAttempts.
	attempts int
	// replay marks a job rebuilt from the journal after a restart: its
	// original client is gone, so a background drainer consumes it.
	replay bool
	// span is the request's root span; queueSpan covers admission to worker
	// pickup. Both nil when the server runs without a sink.
	span      *obs.Span
	queueSpan *obs.Span
	// sess hands the running Session to the handler (capacity 1; closed
	// without a send when the job dies before starting, e.g. its deadline
	// expired while queued).
	sess chan *core.Session
	// result delivers the final outcome or error (capacity 1).
	result chan jobResult
}

// Server multiplexes MQO solves over a bounded solver fleet behind an
// HTTP/JSON interface. Construct with New, expose with Handler, Serve or
// ListenAndServe, stop with Shutdown.
type Server struct {
	cfg   Config
	queue *admissionQueue
	mux   *http.ServeMux
	// cache is the fleet-wide cross-solve cache (nil when disabled); all
	// workers share it so any slot can reuse any slot's partitionings,
	// skeletons and incumbents.
	cache *solvecache.Cache
	// shed gates admissions on observed queue waits (nil = no shedding).
	shed *shedder
	// journal is the crash-safety admission journal (nil = disabled).
	journal *journal

	mu       sync.RWMutex
	draining bool

	// replaying is true from startup until every journal-replayed request
	// has been answered; /readyz reports 503 meanwhile.
	replaying atomic.Bool
	replayWG  sync.WaitGroup

	workers  sync.WaitGroup // fleet workers
	inflight sync.WaitGroup // admitted jobs not yet answered

	httpSrv *http.Server
	ids     idGen
}

// New validates cfg, starts the fleet workers and returns a Server ready
// to accept requests. The returned server must eventually be Shutdown to
// stop the fleet.
func New(cfg Config) (*Server, error) {
	if _, err := cfg.newRawDevice(cfg.device()); err != nil {
		return nil, err
	}
	for _, fb := range cfg.Fallback {
		if _, err := cfg.newRawDevice(fb); err != nil {
			return nil, fmt.Errorf("fallback: %w", err)
		}
	}
	if _, ok := parsePriority(cfg.DefaultPriority, priorityNormal); !ok {
		return nil, fmt.Errorf("serve: unknown default priority %q (want low, normal or high)", cfg.DefaultPriority)
	}
	s := &Server{
		cfg:   cfg,
		queue: newAdmissionQueue(cfg.queueDepth()),
		shed:  newShedder(cfg.ShedTarget),
	}
	if cfg.CacheEntries != 0 {
		n := cfg.CacheEntries
		if n < 0 {
			n = 0 // solvecache.New's default bound
		}
		s.cache = solvecache.New(n)
		s.cache.Publish(s.registry())
	}
	s.mux = s.routes()

	var orphans []journalRecord
	if cfg.JournalDir != "" {
		var err error
		s.journal, orphans, err = openJournal(cfg.JournalDir, cfg.Chaos)
		if err != nil {
			return nil, err
		}
		s.ids.n = s.journal.maxID
	}
	for i := 0; i < cfg.fleet(); i++ {
		s.workers.Add(1)
		go s.worker(i)
	}
	if len(orphans) > 0 {
		s.replayOrphans(orphans)
	}
	return s, nil
}

// replayOrphans re-admits the journal's unanswered requests. Their clients
// are gone, so each job gets a background drainer that consumes the
// session and result, records the terminal metrics and tombstones the id.
// /readyz reports 503 until the last replay is answered.
func (s *Server) replayOrphans(orphans []journalRecord) {
	reg := s.registry()
	s.replaying.Store(true)
	for i := range orphans {
		rec := orphans[i]
		if rec.Request == nil || rec.Request.Problem == nil {
			s.journal.done(rec.ID)
			continue
		}
		// Replays run under a fresh default deadline: the journal does not
		// preserve how much of the original deadline was left, and a crashed
		// daemon's clock tells nothing useful about the client's.
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.defaultDeadline())
		j, errStatus := s.prepareJob(rec.Request, rec.ID, ctx)
		if errStatus != nil {
			cancel()
			s.journal.done(rec.ID)
			continue
		}
		j.priority = rec.Priority
		j.replay = true
		if ok, _ := s.admit(j); !ok {
			cancel()
			s.journal.done(rec.ID)
			continue
		}
		reg.Counter("serve.journal.replayed").Add(1)
		s.replayWG.Add(1)
		go func() {
			defer s.replayWG.Done()
			defer cancel()
			defer s.inflight.Done()
			if sess, ok := <-j.sess; ok && sess != nil {
				for range sess.Incumbents() {
				}
			}
			res := <-j.result
			s.finishMetrics(j, res)
		}()
	}
	go func() {
		s.replayWG.Wait()
		s.replaying.Store(false)
	}()
}

// newRawDevice constructs one bare device by name.
func (c Config) newRawDevice(name string) (solver.Solver, error) {
	if c.NewDevice != nil {
		return c.NewDevice(name, c.Capacity)
	}
	switch strings.TrimSpace(name) {
	case "", "da":
		return &da.Solver{CapacityVars: c.Capacity}, nil
	case "da-pt":
		return &ptDevice{Solver: &da.Solver{CapacityVars: c.Capacity}}, nil
	case "sa":
		return &sa.Solver{}, nil
	case "hqa":
		return &hqa.Solver{}, nil
	case "va":
		return &va.Solver{}, nil
	default:
		return nil, fmt.Errorf("serve: unknown device %q (want da, da-pt, sa, hqa or va)", name)
	}
}

// ptDevice routes Solve through the DA's parallel-tempering mode.
type ptDevice struct{ *da.Solver }

func (s *ptDevice) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	return s.SolvePT(ctx, req)
}

// newStack builds the full per-device middleware stack for one fleet
// slot: (primary, fallbacks...) under the configured resilience layers.
// Breaker and retry state live inside the returned stack, so each worker
// owning its own stacks keeps device health tracking per fleet slot.
func (s *Server) newStack(primary string, slot int) (solver.Solver, error) {
	devs := make([]solver.Solver, 0, 1+len(s.cfg.Fallback))
	prim, err := s.cfg.newRawDevice(primary)
	if err != nil {
		return nil, err
	}
	devs = append(devs, prim)
	for _, fb := range s.cfg.Fallback {
		dev, err := s.cfg.newRawDevice(fb)
		if err != nil {
			return nil, err
		}
		devs = append(devs, dev)
	}
	return resilience.Wrap(devs, resilience.Config{
		Retries:          s.cfg.Retries,
		SolveTimeout:     s.cfg.SolveTimeout,
		BreakerThreshold: s.cfg.Breaker,
		Seed:             s.cfg.Seed + int64(slot)*7919,
	}), nil
}

// perSolveParallelism divides the server's worker budget across the
// fleet, so Fleet concurrent solves together use about Parallelism
// goroutines. Minimum is sequential (-1 in the solver.Workers encoding);
// results never depend on the split.
func (s *Server) perSolveParallelism() int {
	share := solver.Workers(s.cfg.Parallelism) / s.cfg.fleet()
	if share < 1 {
		return -1
	}
	return share
}

// worker is one fleet slot: it pulls admitted jobs off the queue and runs
// each as a core.Session on its own device stacks until the queue closes.
// A quarantined slot (watchdog abandonment) exits after spawning its
// replacement, so wedged device state never serves another request.
func (s *Server) worker(slot int) {
	defer s.workers.Done()
	stacks := map[string]solver.Solver{}
	reg := s.registry()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		reg.Gauge("serve.queue.depth").Set(float64(s.queue.len()))
		// Worker pickup closes the request's queue-wait span and feeds the
		// queue-wait quantile histogram (and the shedder's window)
		// regardless of how the job proceeds.
		wait := time.Since(j.enqueued)
		j.queueSpan.End()
		j.queueSpan = nil
		reg.Histogram("serve.queue.wait_ms").Observe(wait.Seconds() * 1e3)
		s.shed.observe(wait)
		if err := j.ctx.Err(); err != nil {
			// The client's deadline expired (or it disconnected) while the
			// job sat in the queue: answer without solving.
			reg.Counter("serve.admission.expired_in_queue").Add(1)
			j.span.Attr("expired", "queue")
			close(j.sess)
			j.result <- jobResult{err: fmt.Errorf("serve: request expired in queue after %v: %w", wait.Round(time.Millisecond), err)}
			continue
		}
		if quarantined := s.runJob(slot, stacks, j); quarantined {
			reg.Counter("serve.worker.quarantined").Add(1)
			s.workers.Add(1)
			go s.worker(slot)
			return
		}
	}
}

// runJob executes one dequeued job on this slot's device stacks. It
// reports true when the slot must be quarantined: the solve ignored both
// its deadline and the watchdog's cancellation, so the worker abandoned it
// and a fresh slot (new stacks) takes over the queue.
func (s *Server) runJob(slot int, stacks map[string]solver.Solver, j *job) (quarantined bool) {
	reg := s.registry()
	// Chaos slow-worker: stall before the solve starts, driving queue
	// waits up so the shedder and watchdog paths see real pressure.
	if d := s.cfg.Chaos.SlowNextSolve(); d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-j.ctx.Done():
			t.Stop()
		}
	}
	stack, ok := stacks[j.device]
	if !ok {
		var err error
		stack, err = s.newStack(j.device, slot)
		if err != nil {
			close(j.sess)
			j.result <- jobResult{err: err}
			return false
		}
		stacks[j.device] = stack
	}
	opt := j.opt
	opt.Device = stack
	if s.cache != nil && opt.Resume == nil {
		opt.Cache = s.cache
		opt.WarmStartDrift = s.cfg.WarmStartDrift
	}

	// Chaos worker-kill: decide before the session is handed to the
	// client's handler, so the handler only ever sees the attempt that
	// runs to completion. A killed attempt is cancelled after its first
	// checkpoint, its (valid-but-divergent, best-so-far) result is
	// discarded, and the job requeues at the head of its class with
	// Options.Resume set — the next attempt replays the finished partial
	// problems bit-exactly and solves the rest. The final permitted
	// attempt always runs unkilled.
	kill := j.strategy == core.StrategyIncremental &&
		j.attempts+1 < s.cfg.maxAttempts() &&
		s.cfg.Chaos.KillNextSolve()
	var killCh chan struct{}
	if kill || j.strategy == core.StrategyIncremental {
		// Checkpointing is pure observation; enabling it whenever the
		// strategy supports it keeps kill and no-kill attempts on the
		// same code path.
		killCh = make(chan struct{}, 1)
		opt.CheckpointFunc = func(*core.Checkpoint) {
			select {
			case killCh <- struct{}{}:
			default:
			}
		}
		opt.CheckpointInterval = s.cfg.CheckpointInterval
	}

	solveCtx, cancel := context.WithCancel(j.ctx)
	defer cancel()
	sess := core.NewSession(j.problem, opt)
	sess.Strategy = j.strategy
	if j.strategy == core.StrategyIncremental {
		sess.EnableCheckpointing(s.cfg.CheckpointInterval)
	}
	ctx := solveCtx
	var wspan *obs.Span
	if s.cfg.Sink.Enabled() {
		ctx = obs.NewContext(ctx, s.cfg.Sink)
		// The worker-slot span covers device-stack residency: the session
		// span (and the whole pipeline tree) hangs off it. Slot
		// attribution answers "which fleet slot's breaker/retry state
		// served this request".
		ctx, wspan = s.cfg.Sink.StartSpan(ctx, "worker")
		wspan.Attr("slot", strconv.Itoa(slot)).Attr("device", j.device)
	}
	if err := sess.Start(ctx); err != nil {
		wspan.Attr("error", err.Error()).End()
		close(j.sess)
		j.result <- jobResult{err: err}
		return false
	}

	if kill {
		select {
		case <-killCh:
			// First checkpoint landed: kill the attempt and requeue from it.
			cancel()
			sess.Wait() //nolint:errcheck // the killed attempt's result is discarded by design
			if cp := sess.Checkpoint(); cp != nil {
				j.attempts++
				j.opt.Resume = cp
				reg.Counter("serve.chaos.worker_kills").Add(1)
				wspan.Attr("chaos", "killed").End()
				s.queue.pushFront(j)
				return false
			}
			// No restart point (shouldn't happen: the checkpoint fires the
			// kill). Fall through and answer with what the attempt produced.
		case <-sess.Done():
			// The solve finished before any checkpoint (unpartitioned
			// problem): nothing to kill, deliver normally.
		}
	}

	j.sess <- sess

	// Watchdog: a solve that runs past its remaining deadline times
	// WatchdogFactor has ignored context cancellation (the deadline fired
	// long ago). Cancel explicitly, grant a grace period, then abandon
	// the job — answer the client, quarantine the slot.
	if f := s.cfg.WatchdogFactor; f > 0 {
		if dl, ok := j.ctx.Deadline(); ok {
			budget := time.Duration(float64(time.Until(dl)) * f)
			if budget > 0 {
				wd := time.NewTimer(budget)
				select {
				case <-sess.Done():
					wd.Stop()
				case <-wd.C:
					cancel()
					grace := time.NewTimer(s.cfg.watchdogGrace())
					select {
					case <-sess.Done():
						grace.Stop()
					case <-grace.C:
						wspan.Attr("watchdog", "quarantined").End()
						j.result <- jobResult{err: fmt.Errorf(
							"serve: solve overran its deadline by %.1fx and ignored cancellation; worker slot %d quarantined",
							f, slot)}
						return true
					}
				}
			}
		}
	}

	out, err := sess.Wait()
	if err == nil {
		wspan.Attr("cache.tier", out.Cache.Tier())
		reg.Histogram("serve.solve.latency_ms").Observe(out.Elapsed.Seconds() * 1e3)
	}
	wspan.End()
	j.result <- jobResult{out: out, err: err}
	return false
}

// admit enqueues j unless the server is draining or the queue is full.
// The reason string feeds the admission-outcome metrics and the 503 body.
// On success the job is registered in the inflight WaitGroup while the
// lock is still held, so Shutdown (which takes the write lock before
// waiting) can never miss an admitted job; the handler must balance with
// inflight.Done once the response is written.
func (s *Server) admit(j *job) (ok bool, reason string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return false, "draining"
	}
	if !s.queue.push(j) {
		return false, "queue full"
	}
	s.inflight.Add(1)
	// Eager deadline eviction: when the request's context ends while the
	// job still sits in the queue, take it out immediately instead of
	// letting a worker discover the corpse at pickup. remove-vs-pop under
	// the queue mutex guarantees exactly one side answers the client.
	stop := context.AfterFunc(j.ctx, func() {
		if !s.queue.remove(j) {
			return // a worker (or chaos requeue) owns it
		}
		s.registry().Counter("serve.admission.evicted_expired").Add(1)
		j.queueSpan.Attr("evicted", "expired").End()
		j.span.Attr("expired", "queue")
		close(j.sess)
		j.result <- jobResult{err: fmt.Errorf(
			"serve: request expired in queue after %v: %w",
			time.Since(j.enqueued).Round(time.Millisecond), j.ctx.Err())}
	})
	_ = stop // the AfterFunc disarms itself with the request context
	return true, ""
}

func (s *Server) registry() *obs.Registry { return s.cfg.Sink.Metrics() }

// queueDepth reports the current number of queued (not yet running) jobs.
func (s *Server) queueDepth() int { return s.queue.len() }

// Handler returns the server's HTTP handler, for mounting on an existing
// listener or an httptest server.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.httpSrv = &http.Server{Handler: s.mux}
	srv := s.httpSrv
	s.mu.Unlock()
	return srv.Serve(l)
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains the server gracefully: new requests are rejected with
// 503 immediately, already-admitted jobs run to completion and their
// responses are delivered, then the fleet exits. ctx bounds the wait for
// in-flight work; on expiry the remaining solves are cancelled through
// their request contexts by the closing HTTP server.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	httpSrv := s.httpSrv
	s.mu.Unlock()
	if already {
		return nil
	}
	// No admit can be in flight past this point (admit holds the read
	// lock while enqueuing), so closing the queue is safe; workers drain
	// the remaining jobs and exit. Chaos requeues still land (pushFront
	// ignores the closed flag) and are drained before the fleet exits.
	s.queue.close()

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		s.workers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.journal.close()
	if httpSrv != nil {
		return httpSrv.Shutdown(ctx)
	}
	return nil
}

// idGen issues short request ids (r000001, r000002, ...).
type idGen struct {
	mu sync.Mutex
	n  int64
}

func (g *idGen) next() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	return fmt.Sprintf("r%06d", g.n)
}
