package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"incranneal/internal/faultinject"
)

// journalFile is the admission journal's name inside Config.JournalDir.
const journalFile = "queue.journal"

// journalRecord is one JSON line of the admission journal. Op "accept"
// carries the full request so a crashed daemon can re-run it; op "done" is
// the tombstone retiring an id once its response was written (success,
// failure and rejection alike).
type journalRecord struct {
	Op       string        `json:"op"` // "accept" or "done"
	ID       string        `json:"id"`
	Priority int           `json:"priority,omitempty"`
	Request  *SolveRequest `json:"request,omitempty"`
}

// journal is the append-only on-disk admission journal giving the daemon
// at-least-once request durability: every accepted request is journaled
// (fsync'd) before it is admitted, every answered request appends a
// tombstone, and a restarting daemon re-runs the accepted-but-untombstoned
// remainder. Tombstones are buffered appends without fsync — losing one to
// a crash merely replays a request that was already answered, which
// at-least-once permits, while fsyncing only accepts keeps the write on
// the admission path to a single flush.
//
// A nil *journal (no -journal-dir) makes every method a no-op, so the
// serving path threads it unconditionally and PR 7 behaviour is unchanged
// without the flag.
type journal struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	path  string
	chaos *faultinject.Chaos
	// maxID is the largest numeric id suffix seen at open (tombstoned
	// records included); the server seeds its id generator past it.
	maxID int64
}

// openJournal opens (creating if needed) the journal in dir, compacts it —
// tombstoned records are dropped, the survivors rewritten via tmp+rename —
// and returns the open journal plus the orphaned accepts awaiting replay,
// in their original admission order.
func openJournal(dir string, chaos *faultinject.Chaos) (*journal, []journalRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	orphans, maxID, err := readOrphans(path)
	if err != nil {
		return nil, nil, err
	}

	// Compact: the rewritten journal holds exactly the orphaned accepts.
	// tmp+rename keeps a crash mid-compaction from losing the journal — the
	// old file stays valid until the rename lands.
	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: journal compact: %w", err)
	}
	enc := json.NewEncoder(tf)
	for i := range orphans {
		if err := enc.Encode(&orphans[i]); err != nil {
			tf.Close()
			return nil, nil, fmt.Errorf("serve: journal compact: %w", err)
		}
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return nil, nil, fmt.Errorf("serve: journal compact: %w", err)
	}
	if err := tf.Close(); err != nil {
		return nil, nil, fmt.Errorf("serve: journal compact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, nil, fmt.Errorf("serve: journal compact: %w", err)
	}

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: journal open: %w", err)
	}
	return &journal{f: f, w: bufio.NewWriter(f), path: path, chaos: chaos, maxID: maxID}, orphans, nil
}

// readOrphans parses the journal at path and returns accepted records with
// no tombstone, in admission order, plus the largest numeric id suffix
// seen across ALL records (tombstoned included — the id generator must be
// seeded past retired ids too). A missing file is an empty journal; a
// torn trailing line (crash mid-append) is skipped, not fatal.
func readOrphans(path string) ([]journalRecord, int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("serve: journal read: %w", err)
	}
	defer f.Close()
	var accepts []journalRecord
	var maxID int64
	done := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			// Torn write from a crash mid-append: everything before it is
			// intact (appends are line-atomic in practice); skip the line.
			continue
		}
		if n := numericID(rec.ID); n > maxID {
			maxID = n
		}
		switch rec.Op {
		case "accept":
			accepts = append(accepts, rec)
		case "done":
			done[rec.ID] = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("serve: journal read: %w", err)
	}
	orphans := accepts[:0]
	for _, rec := range accepts {
		if !done[rec.ID] {
			orphans = append(orphans, rec)
		}
	}
	return orphans, maxID, nil
}

// accept journals an accepted request, fsync'd so the record survives the
// daemon: the caller only admits the job once this returns nil. Chaos
// journal-write faults surface here as errors.
func (jl *journal) accept(id string, priority int, req *SolveRequest) error {
	if jl == nil {
		return nil
	}
	if jl.chaos.FailNextJournalWrite() {
		return fmt.Errorf("serve: journal write: %w", faultinject.ErrInjected)
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	enc := json.NewEncoder(jl.w)
	if err := enc.Encode(&journalRecord{Op: "accept", ID: id, Priority: priority, Request: req}); err != nil {
		return fmt.Errorf("serve: journal write: %w", err)
	}
	if err := jl.w.Flush(); err != nil {
		return fmt.Errorf("serve: journal write: %w", err)
	}
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("serve: journal write: %w", err)
	}
	return nil
}

// done appends id's tombstone (buffered, no fsync — see the type comment).
func (jl *journal) done(id string) {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	json.NewEncoder(jl.w).Encode(&journalRecord{Op: "done", ID: id}) //nolint:errcheck
	jl.w.Flush()                                                     //nolint:errcheck
}

// close flushes and closes the journal file.
func (jl *journal) close() {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	jl.w.Flush() //nolint:errcheck
	jl.f.Close() //nolint:errcheck
}

// numericID parses the numeric suffix of an id in the server's r%06d
// scheme, 0 for anything else.
func numericID(id string) int64 {
	if !strings.HasPrefix(id, "r") {
		return 0
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}
